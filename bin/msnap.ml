(* msnap: a small CLI for poking at the simulated MemSnap machine.

   Subcommands:
     costs       print the calibrated hardware cost model
     persist     time msnap_persist for a dirty-set size sweep
     torture     crash-inject a region under load and verify recovery
     crashcheck  run the crash-schedule model checker over every engine
*)

module Sched = Msnap_sim.Sched
module Trace = Msnap_sim.Trace
module Costs = Msnap_sim.Costs
module Rng = Msnap_util.Rng
module Size = Msnap_util.Size
module Tbl = Msnap_util.Tbl
module Disk = Msnap_blockdev.Disk
module Stripe = Msnap_blockdev.Stripe
module Device = Msnap_blockdev.Device
module Store = Msnap_objstore.Store
module Phys = Msnap_vm.Phys
module Aspace = Msnap_vm.Aspace
module Msnap = Msnap_core.Msnap

let mk_machine ?(format = true) dev =
  let phys = Phys.create () in
  let aspace = Aspace.create phys in
  if format then Store.format dev;
  let k = Msnap.init ~store:(Store.mount dev) in
  Msnap.attach k aspace;
  k

let mk_dev () =
  Device.of_stripe
    (Stripe.create [ Disk.create ~size:(Size.mib 256) (); Disk.create ~size:(Size.mib 256) () ])

let costs () =
  let t = Tbl.create ~title:"calibrated cost model" ~headers:[ "Primitive"; "ns" ] in
  List.iter
    (fun (name, v) -> Tbl.row t [ name; string_of_int v ])
    [
      ("syscall", Costs.syscall);
      ("minor write fault", Costs.fault_entry);
      ("PTE update (isolated)", Costs.pte_update);
      ("PTE update (range scan)", Costs.pte_update_bulk);
      ("page-table walk (software)", Costs.pt_walk_sw);
      ("TLB shootdown (IPI)", Costs.tlb_shootdown);
      ("TLB full flush", Costs.tlb_flush_all);
      ("page copy (COW)", Costs.page_copy);
      ("disk command floor", Costs.disk_base);
      ("disk transfer / 64 KiB", Costs.disk_xfer (Size.kib 64));
      ("scatter/gather segment setup", Costs.io_initiate);
    ];
  Tbl.print t

(* Wrap [f] with trace collection when [--trace PATH] was given. The
   trace is host-side observability only: every simulated number the
   subcommand prints is identical with or without it. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
    Trace.enable ();
    Fun.protect f ~finally:(fun () ->
        Trace.disable ();
        let d = Trace.dump () in
        let oc = open_out path in
        Trace.export_json oc d;
        close_out oc;
        Printf.eprintf "[trace] %d events (%d dropped) -> %s\n%s%!"
          d.Trace.d_count
          d.Trace.d_dropped path
          (Trace.render_summary d))

let persist_sweep trace =
  with_trace trace @@ fun () ->
  let t =
    Tbl.create ~title:"msnap_persist latency by dirty-set size"
      ~headers:[ "Dirty"; "sync us"; "async us" ]
  in
  List.iter
    (fun kib ->
      let run mode =
        Sched.run (fun () ->
            let k = mk_machine (mk_dev ()) in
            let md = Msnap.open_region k ~name:"r" ~len:(Size.mib 64) () in
            let rng = Rng.create 1 in
            let total = ref 0 in
            for _ = 1 to 8 do
              let pages = max 1 (Size.kib kib / 4096) in
              let seen = Hashtbl.create pages in
              while Hashtbl.length seen < pages do
                Hashtbl.replace seen (Rng.int rng (Size.mib 64 / 4096)) ()
              done;
              Hashtbl.iter
                (fun p () -> Msnap.write k md ~off:(p * 4096) (Bytes.make 32 'x'))
                seen;
              let t0 = Sched.now () in
              ignore (Msnap.persist k ~region:md ~mode ());
              total := !total + (Sched.now () - t0);
              Sched.delay 5_000_000
            done;
            !total / 8)
      in
      Tbl.row t
        [ Size.pp (Size.kib kib); Tbl.us (run `Sync); Tbl.us (run `Async) ])
    [ 4; 16; 64; 256; 1024 ];
  Tbl.print t

let torture trace record_mode =
  with_trace trace @@ fun () ->
  let survived = ref 0 in
  for round = 1 to 10 do
    let ok =
      Sched.run (fun () ->
          let dev = mk_dev () in
          (* --record attaches an (unarmed) crash-schedule recorder:
             host-only observability, so every simulated value printed
             below must be identical with or without it — CI cmps the
             two stdouts. *)
          if record_mode then
            Device.attach_record dev (Msnap_blockdev.Record.create ());
          let k = mk_machine dev in
          let md = Msnap.open_region k ~name:"t" ~len:(Size.mib 1) () in
          let committed = ref 0 in
          let w =
            Sched.spawn (fun () ->
                try
                  for i = 0 to 10_000 do
                    let b = Bytes.create 8 in
                    Bytes.set_int64_le b 0 (Int64.of_int i);
                    Msnap.write k md ~off:((i mod 256) * 4096) b;
                    ignore (Msnap.persist k ~region:md ());
                    committed := i
                  done
                with Disk.Powered_off -> ())
          in
          Sched.delay (1_000_000 * round);
          Device.fail_power dev ~torn_seed:round;
          Sched.join w;
          Device.restore_power dev;
          let k2 = mk_machine ~format:false dev in
          let md2 = Msnap.open_region k2 ~name:"t" ~len:(Size.mib 1) () in
          (* The recovered page for the last committed write must hold it. *)
          let i = !committed in
          let v =
            Int64.to_int
              (Bytes.get_int64_le (Msnap.read k2 md2 ~off:((i mod 256) * 4096) ~len:8) 0)
          in
          v = i || v = i + 1)
    in
    Printf.printf "round %2d: %s\n%!" round (if ok then "consistent" else "CORRUPT");
    if ok then incr survived
  done;
  Printf.printf "%d/10 crash rounds recovered consistently\n" !survived;
  if !survived < 10 then exit 1

(* The crash-schedule model checker over the scripted engine workloads:
   record one crash-free run, then crash it at every durable boundary
   (three torn seeds each) and demand recovery lands on a candidate
   history step. Deterministic: the report for a given option set is
   byte-identical serially and with [-j]. *)
let crashcheck engines jobs max_points =
  let module Checker = Msnap_faults.Checker in
  let module W = Msnap_crashwl.Workloads in
  let workloads =
    match engines with
    | [] -> W.all
    | names ->
      List.map
        (fun n ->
          match W.by_name n with
          | Some w -> w
          | None ->
            Printf.eprintf "unknown engine %S (have: %s)\n" n
              (String.concat ", " W.names);
            exit 2)
        names
  in
  let opts = { Checker.default_opts with jobs; max_points } in
  let failed = ref false in
  List.iter
    (fun w ->
      let r = Checker.run ~opts w in
      print_string (Checker.pp_report r);
      flush stdout;
      if r.Checker.r_failures <> [] then failed := true)
    workloads;
  if !failed then exit 1

open Cmdliner

let trace =
  Arg.(value & opt (some string) None & info [ "trace" ]
         ~doc:"Record a Chrome trace_event timeline to $(docv) (host-side \
               only; simulated values are unchanged)." ~docv:"PATH")

let cmd =
  Cmd.group (Cmd.info "msnap" ~doc:"Explore the simulated MemSnap machine")
    [
      Cmd.v (Cmd.info "costs" ~doc:"Print the calibrated cost model")
        Term.(const costs $ const ());
      Cmd.v (Cmd.info "persist" ~doc:"Sweep msnap_persist latency")
        Term.(const persist_sweep $ trace);
      (let record_mode =
         Arg.(value & flag
              & info [ "record" ]
                  ~doc:"Attach a crash-schedule recorder to the device \
                        (host-side only; output must be unchanged).")
       in
       Cmd.v (Cmd.info "torture" ~doc:"Crash-inject and verify recovery")
         Term.(const torture $ trace $ record_mode));
      (let engines =
         Arg.(value & opt_all string []
              & info [ "e"; "engine" ]
                  ~doc:"Check only $(docv) (repeatable; default: all engines)."
                  ~docv:"NAME")
       in
       let jobs =
         Arg.(value & opt int 0
              & info [ "j"; "jobs" ]
                  ~doc:"Check crash points on $(docv) worker domains (0 = \
                        serial; the report is identical either way)."
                  ~docv:"N")
       in
       let max_points =
         Arg.(value & opt int Msnap_faults.Checker.default_opts.max_points
              & info [ "max-points" ]
                  ~doc:"Sample down to at most $(docv) crash points per \
                        engine (seeded, deterministic)."
                  ~docv:"N")
       in
       Cmd.v
         (Cmd.info "crashcheck"
            ~doc:"Crash every durable boundary of each engine's scripted \
                  workload and verify its recovery invariant")
         Term.(const crashcheck $ engines $ jobs $ max_points));
    ]

let () = exit (Cmd.eval cmd)
