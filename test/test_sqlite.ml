module Sched = Msnap_sim.Sched
module Size = Msnap_util.Size
module Rng = Msnap_util.Rng
module Disk = Msnap_blockdev.Disk
module Stripe = Msnap_blockdev.Stripe
module Device = Msnap_blockdev.Device
module Store = Msnap_objstore.Store
module Phys = Msnap_vm.Phys
module Aspace = Msnap_vm.Aspace
module Fs = Msnap_fs.Fs
module Msnap = Msnap_core.Msnap
module Page = Msnap_sqlite.Page
module Pager = Msnap_sqlite.Pager
module Btree = Msnap_sqlite.Btree
module Db = Msnap_sqlite.Db
module Backend_wal = Msnap_sqlite.Backend_wal
module Backend_msnap = Msnap_sqlite.Backend_msnap

(* Run the whole suite with the data plane's ownership-rule checks on:
   the device checksums every lent slice at issue and re-verifies at
   commit/tear, so any zero-copy violation fails the tests loudly. *)
let () = Msnap_util.Slice.debug_checks := true

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let check_opt = Alcotest.(check (option string))
let in_sim f () = Sched.run f

(* --- Page format --- *)

let test_page_leaf_cells () =
  let b = Bytes.create Page.size in
  Page.init b Page.Leaf;
  checkb "leaf" true (Page.kind_of b = Page.Leaf);
  checkb "ins0" true (Page.leaf_insert_at b 0 ~key:"b" ~value:"2");
  checkb "ins1" true (Page.leaf_insert_at b 0 ~key:"a" ~value:"1");
  checkb "ins2" true (Page.leaf_insert_at b 2 ~key:"c" ~value:"3");
  checki "ncells" 3 (Page.ncells b);
  let k, v = Page.leaf_cell b 0 in
  checks "k0" "a" k;
  checks "v0" "1" v;
  checks "k1" "b" (Page.leaf_key b 1);
  checks "k2" "c" (Page.leaf_key b 2)

let test_page_search () =
  let b = Bytes.create Page.size in
  Page.init b Page.Leaf;
  List.iteri
    (fun i k -> assert (Page.leaf_insert_at b i ~key:k ~value:"v"))
    [ "b"; "d"; "f" ];
  checkb "found" true (Page.search b "d" = `Found 1);
  checkb "before b" true (Page.search b "a" = `Insert_before 0);
  checkb "between" true (Page.search b "e" = `Insert_before 2);
  checkb "after" true (Page.search b "z" = `Insert_before 3)

let test_page_delete_and_compact () =
  let b = Bytes.create Page.size in
  Page.init b Page.Leaf;
  (* Fill, delete every other, then the freed space must be reusable. *)
  let v = String.make 100 'v' in
  let n = ref 0 in
  while Page.leaf_insert_at b !n ~key:(Printf.sprintf "k%04d" !n) ~value:v do
    incr n
  done;
  checkb "filled" true (!n > 30);
  let deleted = ref 0 in
  for i = !n - 1 downto 0 do
    if i mod 2 = 0 then begin
      Page.delete_at b i;
      incr deleted
    end
  done;
  checki "half deleted" (!n - !deleted) (Page.ncells b);
  (* Insert into the fragmented space: forces compaction. *)
  checkb "reuses space" true (Page.leaf_insert_at b 0 ~key:"a" ~value:v)

let test_page_interior () =
  let b = Bytes.create Page.size in
  Page.init b Page.Interior;
  assert (Page.interior_insert_at b 0 ~child:10 ~key:"m");
  Page.set_right_child b 20;
  let c, k = Page.interior_cell b 0 in
  checki "child" 10 c;
  checks "key" "m" k;
  checki "right" 20 (Page.right_child b)

(* --- Btree over an in-memory backend --- *)

let mem_backend () =
  let store = Hashtbl.create 64 in
  {
    Pager.b_label = "mem";
    b_read_page = (fun pgno -> Option.map Bytes.copy (Hashtbl.find_opt store pgno));
    b_commit =
      (fun pages ->
        List.iter (fun (pgno, b) -> Hashtbl.replace store pgno (Bytes.copy b)) pages);
  }

let with_tree f =
  Sched.run (fun () ->
      let pager = Pager.create (mem_backend ()) in
      Pager.begin_write pager;
      let tree = Btree.create pager in
      let r = f pager tree in
      Pager.commit pager;
      r)

let test_btree_insert_find () =
  ignore
    (with_tree (fun _ tree ->
         Btree.insert tree ~key:"hello" ~value:"world";
         check_opt "find" (Some "world") (Btree.find tree "hello");
         check_opt "missing" None (Btree.find tree "nope")))

let test_btree_update () =
  ignore
    (with_tree (fun _ tree ->
         Btree.insert tree ~key:"k" ~value:"v1";
         Btree.insert tree ~key:"k" ~value:"v2";
         check_opt "updated" (Some "v2") (Btree.find tree "k");
         checki "no duplicate" 1 (Btree.count tree)))

let test_btree_many_sequential () =
  ignore
    (with_tree (fun _ tree ->
         let n = 5_000 in
         for i = 0 to n - 1 do
           Btree.insert tree ~key:(Db.key_of_int i) ~value:(Printf.sprintf "val%d" i)
         done;
         checki "count" n (Btree.count tree);
         checkb "split happened" true (Btree.depth tree > 1);
         for i = 0 to n - 1 do
           match Btree.find tree (Db.key_of_int i) with
           | Some v -> Alcotest.(check string) "value" (Printf.sprintf "val%d" i) v
           | None -> Alcotest.failf "key %d lost" i
         done))

let test_btree_many_random () =
  ignore
    (with_tree (fun _ tree ->
         let rng = Rng.create 77 in
         let keys = Array.init 5_000 (fun i -> i) in
         Rng.shuffle rng keys;
         Array.iter
           (fun i ->
             Btree.insert tree ~key:(Db.key_of_int i) ~value:(string_of_int i))
           keys;
         checki "count" 5_000 (Btree.count tree);
         Array.iter
           (fun i ->
             check_opt "found" (Some (string_of_int i))
               (Btree.find tree (Db.key_of_int i)))
           keys))

let test_btree_iter_sorted () =
  ignore
    (with_tree (fun _ tree ->
         let rng = Rng.create 3 in
         let keys = Array.init 2_000 Fun.id in
         Rng.shuffle rng keys;
         Array.iter
           (fun i -> Btree.insert tree ~key:(Db.key_of_int i) ~value:"")
           keys;
         let prev = ref (-1) in
         let sorted = ref true in
         Btree.iter_range tree (fun k _ ->
             let i = Db.int_of_key k in
             if i <= !prev then sorted := false;
             prev := i);
         checkb "in order" true !sorted;
         checki "last" 1_999 !prev))

let test_btree_range () =
  ignore
    (with_tree (fun _ tree ->
         for i = 0 to 999 do
           Btree.insert tree ~key:(Db.key_of_int i) ~value:""
         done;
         let seen = ref 0 in
         Btree.iter_range tree ~lo:(Db.key_of_int 100) ~hi:(Db.key_of_int 199)
           (fun _ _ -> incr seen);
         checki "window" 100 !seen))

let test_btree_delete () =
  ignore
    (with_tree (fun _ tree ->
         for i = 0 to 999 do
           Btree.insert tree ~key:(Db.key_of_int i) ~value:"x"
         done;
         for i = 0 to 999 do
           if i mod 2 = 0 then checkb "deleted" true (Btree.delete tree (Db.key_of_int i))
         done;
         checkb "missing delete" false (Btree.delete tree (Db.key_of_int 0));
         checki "half left" 500 (Btree.count tree);
         check_opt "odd survives" (Some "x") (Btree.find tree (Db.key_of_int 501));
         check_opt "even gone" None (Btree.find tree (Db.key_of_int 500))))

let prop_btree_model =
  QCheck.Test.make ~count:60 ~name:"btree agrees with Map model"
    QCheck.(list_of_size Gen.(int_range 1 400)
              (pair (int_bound 500) (option (int_bound 10_000))))
    (fun ops ->
      with_tree (fun _ tree ->
          let module M = Map.Make (String) in
          let model = ref M.empty in
          List.iter
            (fun (k, v) ->
              let key = Db.key_of_int k in
              match v with
              | Some v ->
                Btree.insert tree ~key ~value:(string_of_int v);
                model := M.add key (string_of_int v) !model
              | None ->
                let existed = Btree.delete tree key in
                let model_had = M.mem key !model in
                model := M.remove key !model;
                if existed <> model_had then failwith "delete mismatch")
            ops;
          M.for_all (fun k v -> Btree.find tree k = Some v) !model
          && Btree.count tree = M.cardinal !model))

(* --- Db over both real backends --- *)

let mk_fs_env () =
  let dev =
    Device.of_stripe
    (Stripe.create [ Disk.create ~size:(Size.mib 128) (); Disk.create ~size:(Size.mib 128) () ])
  in
  Fs.mkfs dev ~kind:Fs.Ffs

let mk_msnap_env () =
  let dev =
    Device.of_stripe
    (Stripe.create [ Disk.create ~size:(Size.mib 128) (); Disk.create ~size:(Size.mib 128) () ])
  in
  let phys = Phys.create () in
  let aspace = Aspace.create phys in
  Store.format dev;
  let store = Store.mount dev in
  let k = Msnap.init ~store in
  Msnap.attach k aspace;
  (dev, k)

let exercise_db db =
  let tbl = Db.create_table db "users" in
  Db.with_write_txn db (fun () ->
      for i = 0 to 499 do
        Db.put tbl ~key:(Db.key_of_int i) ~value:(Printf.sprintf "user-%d" i)
      done);
  Db.with_write_txn db (fun () -> ignore (Db.delete tbl (Db.key_of_int 13)));
  check_opt "get" (Some "user-42") (Db.get tbl (Db.key_of_int 42));
  check_opt "deleted" None (Db.get tbl (Db.key_of_int 13));
  checki "count" 499 (Db.count tbl)

let test_db_over_wal () =
  in_sim (fun () ->
      let fs = mk_fs_env () in
      let be = Backend_wal.create fs ~db_name:"test.db" () in
      exercise_db (Db.open_db (Backend_wal.backend be)))
    ()

let test_db_over_msnap () =
  in_sim (fun () ->
      let _, k = mk_msnap_env () in
      let be = Backend_msnap.create k ~db_name:"test.db" ~max_pages:8192 in
      exercise_db (Db.open_db (Backend_msnap.backend be)))
    ()

let test_db_rollback () =
  in_sim (fun () ->
      let _, k = mk_msnap_env () in
      let be = Backend_msnap.create k ~db_name:"test.db" ~max_pages:8192 in
      let db = Db.open_db (Backend_msnap.backend be) in
      let tbl = Db.create_table db "t" in
      Db.with_write_txn db (fun () -> Db.put tbl ~key:"a" ~value:"1");
      (try
         Db.with_write_txn db (fun () ->
             Db.put tbl ~key:"b" ~value:"2";
             failwith "abort")
       with Failure _ -> ());
      check_opt "committed stays" (Some "1") (Db.get tbl "a");
      check_opt "aborted rolled back" None (Db.get tbl "b"))
    ()

let test_db_recovery_msnap () =
  in_sim (fun () ->
      let dev, k = mk_msnap_env () in
      let be = Backend_msnap.create k ~db_name:"app.db" ~max_pages:8192 in
      let db = Db.open_db (Backend_msnap.backend be) in
      let tbl = Db.create_table db "orders" in
      Db.with_write_txn db (fun () ->
          for i = 0 to 999 do
            Db.put tbl ~key:(Db.key_of_int i) ~value:(Printf.sprintf "order-%d" i)
          done);
      (* Reboot the machine; recover through a fresh MemSnap kernel. *)
      let phys = Phys.create () in
      let aspace = Aspace.create phys in
      let store = Store.mount dev in
      let k2 = Msnap.init ~store in
      Msnap.attach k2 aspace;
      let be2 = Backend_msnap.create k2 ~db_name:"app.db" ~max_pages:8192 in
      let db2 = Db.open_db (Backend_msnap.backend be2) in
      match Db.table db2 "orders" with
      | None -> Alcotest.fail "catalog lost"
      | Some tbl2 ->
        checki "all rows" 1_000 (Db.count tbl2);
        check_opt "row" (Some "order-123") (Db.get tbl2 (Db.key_of_int 123)))
    ()

let test_db_crash_uncommitted_lost_msnap () =
  in_sim (fun () ->
      let dev, k = mk_msnap_env () in
      let be = Backend_msnap.create k ~db_name:"app.db" ~max_pages:8192 in
      let db = Db.open_db (Backend_msnap.backend be) in
      let tbl = Db.create_table db "t" in
      Db.with_write_txn db (fun () -> Db.put tbl ~key:"safe" ~value:"yes");
      (* Open a transaction, write, and "crash" before commit. *)
      Pager.begin_write (Db.pager db);
      Db.put tbl ~key:"doomed" ~value:"yes";
      (* no commit; reboot *)
      let phys = Phys.create () in
      let aspace = Aspace.create phys in
      let store = Store.mount dev in
      let k2 = Msnap.init ~store in
      Msnap.attach k2 aspace;
      let be2 = Backend_msnap.create k2 ~db_name:"app.db" ~max_pages:8192 in
      let db2 = Db.open_db (Backend_msnap.backend be2) in
      match Db.table db2 "t" with
      | None -> Alcotest.fail "catalog lost"
      | Some tbl2 ->
        check_opt "committed" (Some "yes") (Db.get tbl2 "safe");
        check_opt "uncommitted gone" None (Db.get tbl2 "doomed"))
    ()

let test_wal_checkpoint_triggers () =
  in_sim (fun () ->
      let fs = mk_fs_env () in
      let be = Backend_wal.create fs ~db_name:"ck.db" ~checkpoint_threshold:(Size.kib 256) () in
      let db = Db.open_db (Backend_wal.backend be) in
      let tbl = Db.create_table db "t" in
      let v = String.make 128 'v' in
      for i = 0 to 499 do
        Db.with_write_txn db (fun () ->
            Db.put tbl ~key:(Db.key_of_int i) ~value:v)
      done;
      checkb "checkpoints ran" true (Backend_wal.checkpoints_done be > 0);
      (* Data survives checkpointing. *)
      check_opt "row" (Some v) (Db.get tbl (Db.key_of_int 250)))
    ()

let test_msnap_fewer_calls_than_wal () =
  in_sim (fun () ->
      (* The Table 7 effect in miniature: the same workload needs an fsync
         + writes per txn on the baseline, one msnap_persist on MemSnap. *)
      Msnap_sim.Metrics.reset ();
      let fs = mk_fs_env () in
      let be = Backend_wal.create fs ~db_name:"w.db" () in
      let db = Db.open_db (Backend_wal.backend be) in
      let tbl = Db.create_table db "t" in
      for i = 0 to 99 do
        Db.with_write_txn db (fun () -> Db.put tbl ~key:(Db.key_of_int i) ~value:"v")
      done;
      let fsyncs = Msnap_sim.Metrics.count Msnap_sim.Probe.db_fsync in
      let writes = Msnap_sim.Metrics.count Msnap_sim.Probe.db_write in
      Msnap_sim.Metrics.reset ();
      let _, k = mk_msnap_env () in
      let be2 = Backend_msnap.create k ~db_name:"m.db" ~max_pages:8192 in
      let db2 = Db.open_db (Backend_msnap.backend be2) in
      let tbl2 = Db.create_table db2 "t" in
      for i = 0 to 99 do
        Db.with_write_txn db2 (fun () -> Db.put tbl2 ~key:(Db.key_of_int i) ~value:"v")
      done;
      let persists = Msnap_sim.Metrics.count Msnap_sim.Probe.db_memsnap in
      checkb "baseline fsyncs per txn" true (fsyncs >= 100);
      checkb "baseline writes amplified" true (writes > 100);
      checkb "memsnap single call per txn" true (persists <= 102);
      checki "no fsync under memsnap" 0 (Msnap_sim.Metrics.count Msnap_sim.Probe.db_fsync))
    ()

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "sqlite"
    [
      ( "page",
        [
          tc "leaf cells" test_page_leaf_cells;
          tc "search" test_page_search;
          tc "delete/compact" test_page_delete_and_compact;
          tc "interior" test_page_interior;
        ] );
      ( "btree",
        [
          tc "insert/find" test_btree_insert_find;
          tc "update" test_btree_update;
          tc "sequential 5k" test_btree_many_sequential;
          tc "random 5k" test_btree_many_random;
          tc "iter sorted" test_btree_iter_sorted;
          tc "range" test_btree_range;
          tc "delete" test_btree_delete;
          QCheck_alcotest.to_alcotest prop_btree_model;
        ] );
      ( "db",
        [
          tc "over wal backend" test_db_over_wal;
          tc "over msnap backend" test_db_over_msnap;
          tc "rollback" test_db_rollback;
          tc "recovery (msnap)" test_db_recovery_msnap;
          tc "crash loses uncommitted" test_db_crash_uncommitted_lost_msnap;
          tc "wal checkpoints" test_wal_checkpoint_triggers;
          tc "call counts" test_msnap_fewer_calls_than_wal;
        ] );
    ]
