module Sched = Msnap_sim.Sched
module Size = Msnap_util.Size
module Rng = Msnap_util.Rng
module Disk = Msnap_blockdev.Disk
module Stripe = Msnap_blockdev.Stripe
module Device = Msnap_blockdev.Device
module Phys = Msnap_vm.Phys
module Aspace = Msnap_vm.Aspace
module Fs = Msnap_fs.Fs

(* Run the whole suite with the data plane's ownership-rule checks on:
   the device checksums every lent slice at issue and re-verifies at
   commit/tear, so any zero-copy violation fails the tests loudly. *)
let () = Msnap_util.Slice.debug_checks := true

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let in_sim f () = Sched.run f

let mk_fs ?(kind = Fs.Ffs) ?(mib = 64) () =
  let dev =
    Device.of_stripe
    (Stripe.create [ Disk.create ~name:"d0" ~size:(Size.mib mib) ();
        Disk.create ~name:"d1" ~size:(Size.mib mib) () ])
  in
  Fs.mkfs dev ~kind

let test_write_read_roundtrip kind () =
  in_sim (fun () ->
      let fs = mk_fs ~kind () in
      let f = Fs.open_file fs "file" in
      Fs.write fs f ~off:1000 (Bytes.of_string "hello fs");
      checks "roundtrip" "hello fs"
        (Bytes.to_string (Fs.read fs f ~off:1000 ~len:8));
      checki "size" 1008 (Fs.size fs f))
    ()

let test_holes_read_zero () =
  in_sim (fun () ->
      let fs = mk_fs () in
      let f = Fs.open_file fs "sparse" in
      Fs.write fs f ~off:(Size.mib 1) (Bytes.of_string "tail");
      let hole = Fs.read fs f ~off:0 ~len:16 in
      checkb "zeros" true (Bytes.for_all (fun c -> c = '\000') hole))
    ()

let test_fsync_persists_to_device kind () =
  in_sim (fun () ->
      let fs = mk_fs ~kind () in
      let f = Fs.open_file fs "durable" in
      Fs.write fs f ~off:0 (Bytes.make 8192 'D');
      let before = Fs.bytes_written_to_disk fs in
      Fs.fsync fs f;
      checkb "io happened" true (Fs.bytes_written_to_disk fs > before);
      (* Clean after fsync: another fsync writes nothing. *)
      let mid = Fs.bytes_written_to_disk fs in
      Fs.fsync fs f;
      checki "no new data io" mid (Fs.bytes_written_to_disk fs))
    ()

let test_read_back_after_eviction () =
  in_sim (fun () ->
      let fs = mk_fs () in
      Fs.set_cache_capacity fs 4;
      let f = Fs.open_file fs "big" in
      let rng = Rng.create 9 in
      let chunk = Rng.bytes rng (Fs.fs_block_size fs) in
      (* Fill 8 fs-blocks (twice the cache), fsync, then read the first
         back: it must come from the device, not the cache. *)
      for i = 0 to 7 do
        Fs.write fs f ~off:(i * Fs.fs_block_size fs) chunk;
        Fs.fsync fs f
      done;
      checkb "evicted" true (Fs.resident_blocks fs f < 8);
      let back = Fs.read fs f ~off:0 ~len:(Fs.fs_block_size fs) in
      checkb "device copy correct" true (Bytes.equal chunk back))
    ()

let test_rmw_on_uncached_partial_write () =
  in_sim (fun () ->
      let fs = mk_fs () in
      Fs.set_cache_capacity fs 2;
      let f = Fs.open_file fs "rmw" in
      let bs = Fs.fs_block_size fs in
      (* Write 8 full blocks, fsync, evict. *)
      for i = 0 to 7 do
        Fs.write fs f ~off:(i * bs) (Bytes.make bs 'A')
      done;
      Fs.fsync fs f;
      let rmw0 = Fs.rmw_reads fs in
      (* Sub-block write to an evicted block: read-modify-write. *)
      Fs.write fs f ~off:0 (Bytes.of_string "B");
      checkb "rmw read charged" true (Fs.rmw_reads fs > rmw0);
      Fs.fsync fs f;
      (* Old contents preserved around the small write. *)
      let back = Fs.read fs f ~off:0 ~len:4 in
      checks "merged" "BAAA" (Bytes.to_string back))
    ()

let test_random_slower_than_seq kind () =
  in_sim (fun () ->
      (* The Table 6 effect: N random 4 KiB page writes + fsync cost much
         more than the same bytes written sequentially. *)
      let fs = mk_fs ~kind ~mib:256 () in
      Fs.set_cache_capacity fs 8;
      let f = Fs.open_file fs "bench" in
      let bs = Fs.fs_block_size fs in
      (* Preallocate a 64 MiB file. *)
      let prealloc = Bytes.make bs 'P' in
      for i = 0 to (Size.mib 64 / bs) - 1 do
        Fs.write fs f ~off:(i * bs) prealloc;
        if i mod 8 = 7 then Fs.fsync fs f
      done;
      Fs.fsync fs f;
      let rng = Rng.create 4 in
      let page = Bytes.make 4096 'x' in
      let t0 = Sched.now () in
      for i = 0 to 15 do
        Fs.write fs f ~off:(i * 4096) page
      done;
      Fs.fsync fs f;
      let seq = Sched.now () - t0 in
      let t1 = Sched.now () in
      for _ = 0 to 15 do
        let blk = Rng.int rng (Size.mib 64 / 4096) in
        Fs.write fs f ~off:(blk * 4096) page
      done;
      Fs.fsync fs f;
      let random = Sched.now () - t1 in
      checkb
        (Printf.sprintf "random (%d) slower than seq (%d)" random seq)
        true
        (random > 3 * seq))
    ()

let test_truncate () =
  in_sim (fun () ->
      let fs = mk_fs () in
      let f = Fs.open_file fs "t" in
      Fs.write fs f ~off:0 (Bytes.make (Size.kib 100) 'T');
      Fs.fsync fs f;
      Fs.truncate fs f 10;
      checki "size" 10 (Fs.size fs f);
      Fs.write fs f ~off:0 (Bytes.of_string "z");
      Fs.fsync fs f;
      let back = Fs.read fs f ~off:0 ~len:10 in
      checks "kept prefix" "zTTTTTTTTT" (Bytes.to_string back))
    ()

let test_remove () =
  in_sim (fun () ->
      let fs = mk_fs () in
      let f = Fs.open_file fs "gone" in
      Fs.write fs f ~off:0 (Bytes.make 4096 'g');
      Fs.fsync fs f;
      checkb "exists" true (Fs.exists fs "gone");
      Fs.remove fs "gone";
      checkb "removed" false (Fs.exists fs "gone"))
    ()

let test_resident_scan_cost_grows () =
  in_sim (fun () ->
      (* Fig. 5's baseline effect: fsync of one dirty page costs more when
         the file has a large resident set. *)
      let fs = mk_fs ~mib:256 () in
      let cost_with_resident blocks =
        let f = Fs.open_file fs (Printf.sprintf "f%d" blocks) in
        let bs = Fs.fs_block_size fs in
        for i = 0 to blocks - 1 do
          Fs.write fs f ~off:(i * bs) (Bytes.make bs 'r')
        done;
        Fs.fsync fs f;
        Fs.write fs f ~off:0 (Bytes.of_string "d");
        let t0 = Sched.now () in
        Fs.fsync fs f;
        Sched.now () - t0
      in
      let small = cost_with_resident 8 in
      let large = cost_with_resident 1024 in
      checkb "scan cost grows with residency" true (large > small))
    ()

let test_mmap_read_write () =
  in_sim (fun () ->
      let fs = mk_fs () in
      let f = Fs.open_file fs "mapped" in
      Fs.write fs f ~off:0 (Bytes.of_string "disk data!");
      Fs.fsync fs f;
      let phys = Phys.create () in
      let a = Aspace.create phys in
      ignore (Fs.mmap fs f a ~va:0x7000_0000 ~len:(Size.kib 16));
      (* Reads see file contents. *)
      checks "page-in" "disk data!"
        (Bytes.to_string (Aspace.read a ~va:0x7000_0000 ~len:10));
      (* Writes through the mapping reach the file after msync. *)
      Aspace.write a ~va:0x7000_0000 (Bytes.of_string "MMAP");
      Fs.msync fs f;
      checks "msync wrote through" "MMAP data!"
        (Bytes.to_string (Fs.read fs f ~off:0 ~len:10)))
    ()

let test_msync_retracks () =
  in_sim (fun () ->
      let fs = mk_fs () in
      let f = Fs.open_file fs "mapped" in
      let phys = Phys.create () in
      let a = Aspace.create phys in
      ignore (Fs.mmap fs f a ~va:0x7000_0000 ~len:(Size.kib 16));
      Aspace.write a ~va:0x7000_0000 (Bytes.of_string "one");
      Fs.msync fs f;
      let io1 = Fs.bytes_written_to_disk fs in
      (* Nothing dirty: msync writes nothing new. *)
      Fs.msync fs f;
      checki "clean msync" io1 (Fs.bytes_written_to_disk fs);
      (* Dirty again after re-protection: tracked and flushed. *)
      Aspace.write a ~va:0x7000_0000 (Bytes.of_string "two");
      Fs.msync fs f;
      checkb "re-tracked" true (Fs.bytes_written_to_disk fs > io1);
      checks "content" "two" (Bytes.to_string (Fs.read fs f ~off:0 ~len:3)))
    ()

let test_zfs_cow_allocates_fresh () =
  in_sim (fun () ->
      let fs = mk_fs ~kind:Fs.Zfs () in
      let f = Fs.open_file fs "cow" in
      Fs.write fs f ~off:0 (Bytes.make 4096 'a');
      Fs.fsync fs f;
      let w1 = Fs.bytes_written_to_disk fs in
      Fs.write fs f ~off:0 (Bytes.make 4096 'b');
      Fs.fsync fs f;
      (* COW rewrites the record somewhere new; data still correct. *)
      checkb "second sync wrote" true (Fs.bytes_written_to_disk fs > w1);
      checks "content" "b" (Bytes.to_string (Fs.read fs f ~off:0 ~len:1)))
    ()

let test_sync_meta_writes () =
  in_sim (fun () ->
      let fs = mk_fs () in
      let f = Fs.open_file fs "meta-test" in
      Fs.write fs f ~off:0 (Bytes.make 4096 'm');
      Fs.fsync fs f;
      let before = Fs.bytes_written_to_disk fs in
      Fs.sync_meta fs;
      checkb "metadata flushed to device" true (Fs.bytes_written_to_disk fs > before))
    ()

let test_fdatasync_cheaper_than_fsync () =
  in_sim (fun () ->
      let fs = mk_fs () in
      let f = Fs.open_file fs "f" in
      let time_one sync =
        Fs.write fs f ~off:0 (Bytes.make 4096 'x');
        let t0 = Sched.now () in
        sync ();
        Sched.now () - t0
      in
      let full = time_one (fun () -> Fs.fsync fs f) in
      let data_only = time_one (fun () -> Fs.fdatasync fs f) in
      checkb "fdatasync not slower" true (data_only <= full))
    ()

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "fs"
    [
      ( "ffs",
        [
          tc "roundtrip" (test_write_read_roundtrip Fs.Ffs);
          tc "holes" test_holes_read_zero;
          tc "fsync persists" (test_fsync_persists_to_device Fs.Ffs);
          tc "eviction" test_read_back_after_eviction;
          tc "rmw" test_rmw_on_uncached_partial_write;
          tc "random slower" (test_random_slower_than_seq Fs.Ffs);
          tc "truncate" test_truncate;
          tc "remove" test_remove;
          tc "resident scan" test_resident_scan_cost_grows;
          tc "sync_meta" test_sync_meta_writes;
          tc "fdatasync" test_fdatasync_cheaper_than_fsync;
        ] );
      ( "zfs",
        [
          tc "roundtrip" (test_write_read_roundtrip Fs.Zfs);
          tc "fsync persists" (test_fsync_persists_to_device Fs.Zfs);
          tc "random slower" (test_random_slower_than_seq Fs.Zfs);
          tc "cow fresh blocks" test_zfs_cow_allocates_fresh;
        ] );
      ( "mmap",
        [
          tc "read/write" test_mmap_read_write;
          tc "msync retracks" test_msync_retracks;
        ] );
    ]
