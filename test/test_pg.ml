module Sched = Msnap_sim.Sched
module Size = Msnap_util.Size
module Disk = Msnap_blockdev.Disk
module Stripe = Msnap_blockdev.Stripe
module Device = Msnap_blockdev.Device
module Store = Msnap_objstore.Store
module Phys = Msnap_vm.Phys
module Aspace = Msnap_vm.Aspace
module Fs = Msnap_fs.Fs
module Msnap = Msnap_core.Msnap
module Bufmgr = Msnap_pg.Bufmgr
module Storage = Msnap_pg.Storage
module Heap = Msnap_pg.Heap
module Pg = Msnap_pg.Pg

(* Run the whole suite with the data plane's ownership-rule checks on:
   the device checksums every lent slice at issue and re-verifies at
   commit/tear, so any zero-copy violation fails the tests loudly. *)
let () = Msnap_util.Slice.debug_checks := true

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let check_opt = Alcotest.(check (option string))
let in_sim f () = Sched.run f

let mk_dev () =
  Device.of_stripe
    (Stripe.create [ Disk.create ~name:"d0" ~size:(Size.mib 256) ();
      Disk.create ~name:"d1" ~size:(Size.mib 256) () ])

let mk_fs () = Fs.mkfs (mk_dev ()) ~kind:Fs.Ffs

let mk_msnap () =
  let dev = mk_dev () in
  let phys = Phys.create () in
  let aspace = Aspace.create phys in
  Store.format dev;
  let store = Store.mount dev in
  let k = Msnap.init ~store in
  Msnap.attach k aspace;
  k

let each_storage f =
  List.iter
    (fun mk -> Sched.run (fun () -> f (mk ())))
    [
      (fun () -> Storage.ffs (mk_fs ()) ());
      (fun () ->
        let fs = mk_fs () in
        let phys = Phys.create () in
        Storage.ffs_mmap fs (Aspace.create phys) ());
      (fun () ->
        let fs = mk_fs () in
        let phys = Phys.create () in
        Storage.ffs_mmap_bufdirect fs (Aspace.create phys) ());
      (fun () -> Storage.memsnap (mk_msnap ()));
    ]

(* --- Bufmgr --- *)

let test_bufmgr_caching () =
  in_sim (fun () ->
      let reads = ref 0 and writes = ref 0 in
      let smgr =
        {
          Bufmgr.s_label = "counting";
          s_read = (fun ~rel:_ ~blockno:_ -> incr reads; Bytes.make Bufmgr.block_size '\000');
          s_write = (fun ~rel:_ ~blockno:_ _ -> incr writes);
          s_flush = (fun ~rel:_ -> ());
        }
      in
      let bm = Bufmgr.create ~nbuffers:4 smgr in
      let b = Bufmgr.read_buffer bm ~rel:"r" ~blockno:0 in
      Bytes.set b 0 'X';
      Bufmgr.mark_dirty bm ~rel:"r" ~blockno:0;
      ignore (Bufmgr.read_buffer bm ~rel:"r" ~blockno:0);
      checki "cached" 1 !reads;
      (* Fill past capacity: eviction must write back the dirty victim. *)
      for i = 1 to 8 do
        ignore (Bufmgr.read_buffer bm ~rel:"r" ~blockno:i)
      done;
      checkb "evictions happened" true (Bufmgr.resident bm <= 5);
      Bufmgr.flush_all bm;
      checki "dirty flushed" 0 (Bufmgr.dirty_count bm))
    ()

(* --- Heap over every storage variant --- *)

let test_heap_insert_fetch () =
  each_storage (fun st ->
      let h = Heap.create st ~rel:"t" in
      let tid1 = Heap.insert h ~xmin:5 "hello" in
      let tid2 = Heap.insert h ~xmin:6 "world" in
      (match Heap.fetch h tid1 with
      | Some (xmin, xmax, data) ->
        checki "xmin" 5 xmin;
        checki "xmax live" 0 xmax;
        Alcotest.(check string) "data" "hello" data
      | None -> Alcotest.fail "tuple lost");
      (match Heap.fetch h tid2 with
      | Some (_, _, data) -> Alcotest.(check string) "data2" "world" data
      | None -> Alcotest.fail "tuple lost");
      checkb "bad tid" true (Heap.fetch h (0, 99) = None);
      Heap.set_xmax h tid1 7;
      match Heap.fetch h tid1 with
      | Some (_, xmax, _) -> checki "xmax stamped" 7 xmax
      | None -> Alcotest.fail "tuple lost")

let test_heap_spills_blocks () =
  each_storage (fun st ->
      let h = Heap.create st ~rel:"big" in
      let data = String.make 1000 'd' in
      for i = 1 to 50 do
        ignore (Heap.insert h ~xmin:i data)
      done;
      checkb "multiple blocks" true (Heap.nblocks h > 1);
      let seen = ref 0 in
      for b = 0 to Heap.nblocks h - 1 do
        Heap.iter_block h b (fun _ _ _ d ->
            if d = data then incr seen)
      done;
      checki "all tuples" 50 !seen)

(* --- Pg transactions / MVCC --- *)

let test_pg_insert_lookup () =
  each_storage (fun st ->
      let db = Pg.open_db st in
      Pg.with_txn db (fun txn ->
          Pg.insert db txn ~table:"acct" ~key:"alice" "100");
      Pg.with_txn db (fun txn ->
          check_opt "committed visible" (Some "100")
            (Pg.lookup db txn ~table:"acct" ~key:"alice");
          check_opt "missing" None (Pg.lookup db txn ~table:"acct" ~key:"bob")))

let test_pg_update_versions () =
  each_storage (fun st ->
      let db = Pg.open_db st in
      Pg.with_txn db (fun txn -> Pg.insert db txn ~table:"acct" ~key:"a" "1");
      Pg.with_txn db (fun txn ->
          checkb "updated" true (Pg.update db txn ~table:"acct" ~key:"a" "2"));
      Pg.with_txn db (fun txn ->
          check_opt "newest version" (Some "2")
            (Pg.lookup db txn ~table:"acct" ~key:"a"));
      Pg.with_txn db (fun txn ->
          checkb "update missing row" false
            (Pg.update db txn ~table:"acct" ~key:"zzz" "x")))

let test_pg_own_writes_visible () =
  each_storage (fun st ->
      let db = Pg.open_db st in
      Pg.with_txn db (fun txn ->
          Pg.insert db txn ~table:"t" ~key:"k" "v";
          check_opt "own insert" (Some "v") (Pg.lookup db txn ~table:"t" ~key:"k");
          ignore (Pg.update db txn ~table:"t" ~key:"k" "v2");
          check_opt "own update" (Some "v2") (Pg.lookup db txn ~table:"t" ~key:"k")))

let test_pg_abort_invisible () =
  each_storage (fun st ->
      let db = Pg.open_db st in
      (try
         Pg.with_txn db (fun txn ->
             Pg.insert db txn ~table:"t" ~key:"doomed" "x";
             failwith "rollback")
       with Failure _ -> ());
      Pg.with_txn db (fun txn ->
          check_opt "aborted invisible" None
            (Pg.lookup db txn ~table:"t" ~key:"doomed")))

let test_pg_snapshot_isolation () =
  Sched.run (fun () ->
      let db = Pg.open_db (Storage.memsnap (mk_msnap ())) in
      Pg.with_txn db (fun txn -> Pg.insert db txn ~table:"t" ~key:"k" "old");
      (* A long-running reader should not see a concurrent writer's commit
         made after the reader's snapshot. *)
      let observed = ref None in
      let reader_started = Msnap_sim.Sync.Ivar.create () in
      let writer_done = Msnap_sim.Sync.Ivar.create () in
      let reader =
        Sched.spawn (fun () ->
            Pg.with_txn db (fun txn ->
                Msnap_sim.Sync.Ivar.fill reader_started ();
                (* Wait until the writer commits. *)
                Msnap_sim.Sync.Ivar.read writer_done;
                observed := Pg.lookup db txn ~table:"t" ~key:"k"))
      in
      let writer =
        Sched.spawn (fun () ->
            Msnap_sim.Sync.Ivar.read reader_started;
            Pg.with_txn db (fun txn ->
                ignore (Pg.update db txn ~table:"t" ~key:"k" "new"));
            Msnap_sim.Sync.Ivar.fill writer_done ())
      in
      Sched.join writer;
      Sched.join reader;
      check_opt "snapshot-stable read" (Some "old") !observed;
      Pg.with_txn db (fun txn ->
          check_opt "later txn sees new" (Some "new")
            (Pg.lookup db txn ~table:"t" ~key:"k")))

let test_pg_row_locks_serialize () =
  Sched.run (fun () ->
      let db = Pg.open_db (Storage.memsnap (mk_msnap ())) in
      Pg.with_txn db (fun txn -> Pg.insert db txn ~table:"t" ~key:"ctr" "0");
      let ts =
        List.init 8 (fun _ ->
            Sched.spawn (fun () ->
                for _ = 1 to 5 do
                  Pg.with_txn db (fun txn ->
                      ignore
                        (Pg.update_with db txn ~table:"t" ~key:"ctr"
                           (fun v -> string_of_int (int_of_string v + 1))))
                done))
      in
      List.iter Sched.join ts;
      Pg.with_txn db (fun txn ->
          check_opt "no lost updates" (Some "40")
            (Pg.lookup db txn ~table:"t" ~key:"ctr")))

let test_pg_wal_checkpointing () =
  Sched.run (fun () ->
      Msnap_sim.Metrics.reset ();
      let st = Storage.ffs (mk_fs ()) ~wal_checkpoint_bytes:(Size.kib 256) () in
      let db = Pg.open_db st in
      let data = String.make 200 'x' in
      for i = 0 to 599 do
        Pg.with_txn db (fun txn ->
            Pg.insert db txn ~table:"t" ~key:(string_of_int i) data)
      done;
      checkb "checkpoints ran" true (Msnap_sim.Metrics.count Msnap_sim.Probe.db_pg_checkpoint > 0);
      checkb "wal fsyncs per commit" true (Msnap_sim.Metrics.count Msnap_sim.Probe.db_fsync >= 600);
      (* Data still correct after checkpoints. *)
      Pg.with_txn db (fun txn ->
          check_opt "row survives" (Some data)
            (Pg.lookup db txn ~table:"t" ~key:"123")))

let test_pg_memsnap_no_wal () =
  Sched.run (fun () ->
      Msnap_sim.Metrics.reset ();
      let db = Pg.open_db (Storage.memsnap (mk_msnap ())) in
      for i = 0 to 49 do
        Pg.with_txn db (fun txn ->
            Pg.insert db txn ~table:"t" ~key:(string_of_int i) "v")
      done;
      checki "no wal writes" 0 (Msnap_sim.Metrics.count Msnap_sim.Probe.db_write);
      checki "no fsync" 0 (Msnap_sim.Metrics.count Msnap_sim.Probe.db_fsync);
      checkb "persists instead" true (Msnap_sim.Metrics.count Msnap_sim.Probe.db_memsnap >= 50))

let test_pg_write_amplification_gap () =
  Sched.run (fun () ->
      (* The Fig. 6 effect: baseline disk bytes (WAL + checkpoints) far
         exceed memsnap's (dirty pages only). *)
      let run mk_st =
        let dev = mk_dev () in
        let st, dev =
          match mk_st with
          | `Ffs ->
            let fs = Fs.mkfs dev ~kind:Fs.Ffs in
            (Storage.ffs fs ~wal_checkpoint_bytes:(Size.kib 512) (), dev)
          | `Memsnap ->
            let phys = Phys.create () in
            let aspace = Aspace.create phys in
            Store.format dev;
            let store = Store.mount dev in
            let k = Msnap.init ~store in
            Msnap.attach k aspace;
            (Storage.memsnap k, dev)
        in
        let db = Pg.open_db st in
        let data = String.make 100 'x' in
        for i = 0 to 199 do
          Pg.with_txn db (fun txn ->
              Pg.insert db txn ~table:"t" ~key:(string_of_int (i mod 40)) data)
        done;
        (Device.stats dev).Disk.bytes_written
      in
      let base = run `Ffs in
      let ms = run `Memsnap in
      checkb
        (Printf.sprintf "memsnap writes less (base=%d ms=%d)" base ms)
        true (ms * 2 < base))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "pg"
    [
      ("bufmgr", [ tc "caching/eviction" test_bufmgr_caching ]);
      ( "heap",
        [
          tc "insert/fetch (all variants)" (fun () -> test_heap_insert_fetch ());
          tc "spills blocks (all variants)" (fun () -> test_heap_spills_blocks ());
        ] );
      ( "mvcc",
        [
          tc "insert/lookup" (fun () -> test_pg_insert_lookup ());
          tc "update versions" (fun () -> test_pg_update_versions ());
          tc "own writes" (fun () -> test_pg_own_writes_visible ());
          tc "abort invisible" (fun () -> test_pg_abort_invisible ());
          tc "snapshot isolation" test_pg_snapshot_isolation;
          tc "row locks" test_pg_row_locks_serialize;
        ] );
      ( "persistence",
        [
          tc "wal checkpoints" test_pg_wal_checkpointing;
          tc "memsnap no wal" test_pg_memsnap_no_wal;
          tc "write amplification" test_pg_write_amplification_gap;
        ] );
    ]
