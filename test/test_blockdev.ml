module Sched = Msnap_sim.Sched
module Costs = Msnap_sim.Costs
module Size = Msnap_util.Size
module Disk = Msnap_blockdev.Disk
module Stripe = Msnap_blockdev.Stripe
module Device = Msnap_blockdev.Device

(* Run the whole suite with the data plane's ownership-rule checks on:
   the device checksums every lent slice at issue and re-verifies at
   commit/tear, so any zero-copy violation fails the tests loudly. *)
let () = Msnap_util.Slice.debug_checks := true

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let check_bytes = Alcotest.(check string)

let in_sim f () = Sched.run f

let mk_disk ?(size = Size.mib 4) () = Disk.create ~size ()

let test_write_read () =
  in_sim (fun () ->
      let d = mk_disk () in
      let data = Bytes.of_string "hello block device" in
      Disk.write d ~off:8192 data;
      let back = Disk.read d ~off:8192 ~len:(Bytes.length data) in
      check_bytes "roundtrip" "hello block device" (Bytes.to_string back))
    ()

let test_latency_model () =
  in_sim (fun () ->
      let d = mk_disk () in
      let t0 = Sched.now () in
      Disk.write d ~off:0 (Bytes.create 4096);
      let t = Sched.now () - t0 in
      (* 4 KiB: base + xfer = 15500 + 1843 *)
      checki "4k latency" (Costs.disk_base + Costs.disk_xfer 4096) t)
    ()

let test_vectored_single_command () =
  in_sim (fun () ->
      let d = mk_disk () in
      let t0 = Sched.now () in
      Disk.writev d
        [ (0, Disk.Slice.of_bytes (Bytes.create 4096));
          (65536, Disk.Slice.of_bytes (Bytes.create 4096)) ];
      let vectored = Sched.now () - t0 in
      let t1 = Sched.now () in
      Disk.write d ~off:0 (Bytes.create 4096);
      Disk.write d ~off:65536 (Bytes.create 4096);
      let separate = Sched.now () - t1 in
      checkb "one base latency, not two" true (vectored < separate);
      checki "vectored = base + 2 xfers" (Costs.disk_base + Costs.disk_xfer 8192)
        vectored)
    ()

let test_channels_limit_concurrency () =
  in_sim (fun () ->
      let d = mk_disk () in
      (* 2x disk_channels concurrent 4 KiB writes: second wave queues. *)
      let n = 2 * Costs.disk_channels in
      let t0 = Sched.now () in
      let ts =
        List.init n (fun i ->
            Sched.spawn (fun () ->
                Disk.write d ~off:(i * 4096) (Bytes.create 4096)))
      in
      List.iter Sched.join ts;
      let elapsed = Sched.now () - t0 in
      let one = Costs.disk_base + Costs.disk_xfer 4096 in
      checki "two service rounds" (2 * one) elapsed)
    ()

let test_out_of_range () =
  in_sim (fun () ->
      let d = mk_disk ~size:8192 () in
      let raised =
        try
          Disk.write d ~off:8000 (Bytes.create 4096);
          false
        with Invalid_argument _ -> true
      in
      checkb "raises" true raised)
    ()

let test_stats () =
  in_sim (fun () ->
      let d = mk_disk () in
      Disk.write d ~off:0 (Bytes.create 4096);
      ignore (Disk.read d ~off:0 ~len:512);
      let s = Disk.stats d in
      checki "writes" 1 s.Disk.writes;
      checki "reads" 1 s.Disk.reads;
      checki "bytes written" 4096 s.Disk.bytes_written;
      checki "bytes read" 512 s.Disk.bytes_read;
      Disk.reset_stats d;
      checki "reset" 0 (Disk.stats d).Disk.writes)
    ()

let test_write_buffer_snapshot () =
  (* The device must capture the buffer at submission: later mutation of
     the caller's bytes must not leak to the medium. *)
  in_sim (fun () ->
      let d = mk_disk () in
      let b = Bytes.of_string "AAAA" in
      let t = Sched.spawn (fun () -> Disk.write d ~off:0 b) in
      (* Let the writer submit, then mutate while the IO is in flight. *)
      Sched.delay 1;
      Bytes.set b 0 'Z';
      Sched.join t;
      check_bytes "snapshot" "AAAA"
        (Bytes.to_string (Disk.read d ~off:0 ~len:4)))
    ()

let test_power_failure_blocks_io () =
  in_sim (fun () ->
      let d = mk_disk () in
      Disk.fail_power d ~torn_seed:1;
      let raised = try Disk.write d ~off:0 (Bytes.create 512); false with Disk.Powered_off -> true in
      checkb "write rejected" true raised;
      Disk.restore_power d;
      Disk.write d ~off:0 (Bytes.create 512))
    ()

let test_torn_write () =
  in_sim (fun () ->
      let d = mk_disk () in
      (* Fill with 'O', then crash mid-flight of an 8-sector overwrite. *)
      Disk.write d ~off:0 (Bytes.make 4096 'O');
      let writer =
        Sched.spawn (fun () ->
            try Disk.write d ~off:0 (Bytes.make 4096 'N')
            with Disk.Powered_off -> ())
      in
      (* Let the write get half way. *)
      Sched.delay ((Costs.disk_base + Costs.disk_xfer 4096) / 2);
      Disk.fail_power d ~torn_seed:7;
      Sched.join writer;
      Disk.restore_power d;
      let back = Bytes.to_string (Disk.read d ~off:0 ~len:4096) in
      (* Every sector is entirely old or entirely new. *)
      let sectors = 4096 / Costs.sector in
      let mixed = ref false and any_new = ref false and any_old = ref false in
      for s = 0 to sectors - 1 do
        let seg = String.sub back (s * Costs.sector) Costs.sector in
        let all c = String.for_all (fun x -> x = c) seg in
        if all 'N' then any_new := true
        else if all 'O' then any_old := true
        else mixed := true
      done;
      checkb "sector atomicity" false !mixed;
      checkb "prefix semantics: new sectors before old" true
        (let seen_old = ref false in
         let ok = ref true in
         for s = 0 to sectors - 1 do
           let seg = String.sub back (s * Costs.sector) Costs.sector in
           if String.for_all (fun x -> x = 'O') seg then seen_old := true
           else if !seen_old then ok := false
         done;
         !ok);
      ignore (!any_new, !any_old))
    ()

(* --- Stripe --- *)

let mk_stripe ?(unit_size = Size.kib 64) ?(n = 2) ?(disk_size = Size.mib 4) () =
  Stripe.create ~unit_size
    (List.init n (fun i -> Disk.create ~name:(Printf.sprintf "d%d" i) ~size:disk_size ()))

let test_stripe_roundtrip () =
  in_sim (fun () ->
      let s = mk_stripe () in
      let rng = Msnap_util.Rng.create 5 in
      (* Spans several stripe units and a device boundary. *)
      let data = Msnap_util.Rng.bytes rng (Size.kib 200) in
      Stripe.write s ~off:(Size.kib 30) data;
      let back = Stripe.read s ~off:(Size.kib 30) ~len:(Size.kib 200) in
      checkb "roundtrip" true (Bytes.equal data back))
    ()

let test_stripe_size () =
  in_sim (fun () ->
      let s = mk_stripe () in
      checki "size" (Size.mib 8) (Stripe.size s))
    ()

let test_stripe_parallelism () =
  in_sim (fun () ->
      let s = mk_stripe () in
      (* A 128 KiB aligned write spans both devices: latency ~ one 64 KiB
         command, not one 128 KiB command. *)
      let t0 = Sched.now () in
      Stripe.write s ~off:0 (Bytes.create (Size.kib 128));
      let t = Sched.now () - t0 in
      let one_dev = Costs.disk_base + Costs.disk_xfer (Size.kib 64) in
      checkb "parallel across devices" true (t <= one_dev + 2_000))
    ()

let test_stripe_single_unit_one_device () =
  in_sim (fun () ->
      let s = mk_stripe () in
      Stripe.write s ~off:0 (Bytes.create (Size.kib 64));
      let st = Stripe.stats s in
      checki "one command" 1 st.Disk.writes)
    ()

let test_stripe_crash () =
  in_sim (fun () ->
      let s = mk_stripe () in
      Stripe.write s ~off:0 (Bytes.make 512 'A');
      Stripe.fail_power s ~torn_seed:3;
      let raised = try Stripe.write s ~off:0 (Bytes.create 512); false with Disk.Powered_off -> true in
      checkb "off" true raised;
      Stripe.restore_power s;
      check_bytes "data survives" (String.make 512 'A')
        (Bytes.to_string (Stripe.read s ~off:0 ~len:512)))
    ()

(* --- zero-copy crash equivalence --- *)

module Slice = Msnap_util.Slice

(* Replay one crashing vectored write and return the whole recovered
   medium. [copy_at_issue] selects the reference data plane (the
   pre-slice implementation: snapshot every segment into a private
   buffer when the command is issued); [false] is the zero-copy path
   under test, whose slices alias [backing] directly. Crash timing and
   the torn-prefix choice depend only on geometry, elapsed time and the
   seed — identical across both variants — so equal recovered media
   proves the commit/tear-time copy from live slices is equivalent to an
   issue-time snapshot. *)
let crash_replay ~copy_at_issue ~disk_size ~init ~segs ~backing ~delay ~seed =
  Sched.run (fun () ->
      let d = Disk.create ~size:disk_size () in
      List.iter (fun (off, data) -> Disk.write d ~off data) init;
      let slices =
        List.map
          (fun (off, pos, len) ->
            let s =
              if copy_at_issue then Slice.of_bytes (Bytes.sub backing pos len)
              else Slice.make backing ~pos ~len
            in
            (off, s))
          segs
      in
      let writer =
        Sched.spawn (fun () ->
            try Disk.writev d slices with Disk.Powered_off -> ())
      in
      Sched.delay delay;
      Disk.fail_power d ~torn_seed:seed;
      Sched.join writer;
      Disk.restore_power d;
      Disk.read d ~off:0 ~len:disk_size)

let test_torn_prefix_sweep () =
  (* One 8-sector command over a sweep of crash points and seeds: every
     sector-prefix length 0..8 must be realized by some crash, and every
     recovered medium must equal the copy-at-issue reference. *)
  let nsec = 8 in
  let len = nsec * Costs.sector in
  let disk_size = Size.kib 64 in
  let init = [ (0, Bytes.make len 'O') ] in
  (* Sector k of the payload is filled with byte k+1, so the committed
     prefix length can be read back from the medium. *)
  let backing =
    Bytes.init len (fun i -> Char.chr (1 + (i / Costs.sector)))
  in
  let segs = [ (0, 0, len) ] in
  let dur = Costs.disk_base + Costs.disk_xfer len in
  let seen = Array.make (nsec + 1) false in
  for step = 0 to 16 do
    let delay = dur * step / 16 in
    for seed = 0 to 15 do
      let zc =
        crash_replay ~copy_at_issue:false ~disk_size ~init ~segs ~backing
          ~delay ~seed
      in
      let ref_ =
        crash_replay ~copy_at_issue:true ~disk_size ~init ~segs ~backing
          ~delay ~seed
      in
      checkb "zero-copy recovery = copy-at-issue recovery" true
        (Bytes.equal zc ref_);
      (* Count the committed prefix and check it is a strict prefix:
         new sectors, then old, never interleaved. *)
      let prefix = ref 0 and in_prefix = ref true in
      for s = 0 to nsec - 1 do
        let c = Bytes.get zc (s * Costs.sector) in
        if !in_prefix && c = Char.chr (1 + s) then incr prefix
        else begin
          in_prefix := false;
          checkb "suffix is old data" true (c = 'O')
        end
      done;
      seen.(!prefix) <- true
    done
  done;
  Array.iteri
    (fun i hit ->
      checkb (Printf.sprintf "prefix of %d sectors realized" i) true hit)
    seen

(* Property: for arbitrary scatter lists whose segments alias (and
   overlap within) one shared backing buffer, a crash at an arbitrary
   point recovers the same medium as the pre-slice copy-at-issue
   implementation. *)
let prop_zero_copy_crash_equivalence =
  let open QCheck in
  let gen =
    Gen.(
      let* nsegs = int_range 1 4 in
      let backing_len = 16 * Costs.sector in
      let* segs =
        list_repeat nsegs
          (let* len = int_range 1 (4 * Costs.sector) in
           let* pos = int_range 0 (backing_len - len) in
           let* off_sec = int_range 0 48 in
           return (off_sec * Costs.sector, pos, len))
      in
      let* delay_pct = int_range 0 100 in
      let* seed = int_range 0 1_000_000 in
      return (segs, delay_pct, seed))
  in
  QCheck.Test.make ~count:100
    ~name:"crashing writev over aliased slices = copy-at-issue recovery"
    (make gen)
    (fun (segs, delay_pct, seed) ->
      let disk_size = Size.kib 64 in
      let backing_len = 16 * Costs.sector in
      let rng = Msnap_util.Rng.create (seed lxor 0xA11A5) in
      let backing = Msnap_util.Rng.bytes rng backing_len in
      let init = [ (0, Msnap_util.Rng.bytes rng disk_size) ] in
      let total = List.fold_left (fun a (_, _, l) -> a + l) 0 segs in
      let dur = Costs.disk_base + Costs.disk_xfer total in
      let delay = dur * delay_pct / 100 in
      let zc =
        crash_replay ~copy_at_issue:false ~disk_size ~init ~segs ~backing
          ~delay ~seed
      in
      let ref_ =
        crash_replay ~copy_at_issue:true ~disk_size ~init ~segs ~backing
          ~delay ~seed
      in
      Bytes.equal zc ref_)

(* Property: splitting one contiguous write into adjacent segments (the
   shape the object store's sorted batches produce) must be equivalent to
   the single merged write — same recovered image AND same virtual-time
   cost — no matter where the cuts fall or where the run lands relative
   to stripe-unit and device boundaries. This pins down the write
   coalescing in Stripe/Disk: merging is a host-side optimization. *)
let prop_coalesce_equivalence =
  let open QCheck in
  let gen =
    Gen.(
      let* total_sec = int_range 1 64 in
      let* ncuts = int_range 0 6 in
      let* cuts = list_repeat ncuts (int_range 1 (max 1 ((total_sec * Costs.sector) - 1))) in
      let* off_sec = int_range 0 192 in
      let* seed = int_range 0 1_000_000 in
      return (total_sec, cuts, off_sec, seed))
  in
  QCheck.Test.make ~count:100
    ~name:"adjacent split writev = merged write (image and cost)"
    (make gen)
    (fun (total_sec, cuts, off_sec, seed) ->
      let len = total_sec * Costs.sector in
      let off = off_sec * Costs.sector in
      let backing = Msnap_util.Rng.bytes (Msnap_util.Rng.create seed) len in
      let bounds =
        List.sort_uniq compare ((0 :: List.filter (fun c -> c < len) cuts) @ [ len ])
      in
      let rec to_segs = function
        | a :: (b :: _ as tl) ->
          (off + a, Slice.make backing ~pos:a ~len:(b - a)) :: to_segs tl
        | _ -> []
      in
      let run segs =
        Sched.run (fun () ->
            let s = mk_stripe ~disk_size:(Size.kib 256) () in
            let t0 = Sched.now () in
            Stripe.writev s segs;
            let dur = Sched.now () - t0 in
            (dur, Stripe.read s ~off ~len))
      in
      let split = run (to_segs bounds) in
      let merged = run [ (off, Slice.make backing ~pos:0 ~len) ] in
      fst split = fst merged && Bytes.equal (snd split) (snd merged))

(* --- Device: one interface over both backends --- *)

(* The packed Device must forward every operation unchanged: same data,
   same virtual-time cost, same stats as calling the backend directly. *)
let test_device_disk_parity () =
  let direct =
    Sched.run (fun () ->
        let d = mk_disk () in
        Disk.write d ~off:4096 (Bytes.make 512 'q');
        let b = Disk.read d ~off:4096 ~len:512 in
        Disk.flush d;
        (Bytes.to_string b, Sched.now (), (Disk.stats d).Disk.writes))
  in
  let wrapped =
    Sched.run (fun () ->
        let dev = Device.of_disk (mk_disk ()) in
        Device.write dev ~off:4096 (Bytes.make 512 'q');
        let b = Device.read dev ~off:4096 ~len:512 in
        Device.flush dev;
        (Bytes.to_string b, Sched.now (), (Device.stats dev).Disk.writes))
  in
  Alcotest.(check (triple string int int)) "disk parity" direct wrapped

let test_device_stripe_parity () =
  let mk () =
    Stripe.create
      [ Disk.create ~size:(Size.mib 4) (); Disk.create ~size:(Size.mib 4) () ]
  in
  let direct =
    Sched.run (fun () ->
        let s = mk () in
        Stripe.write s ~off:0 (Bytes.make (Size.kib 256) 'w');
        let b = Stripe.read s ~off:(Size.kib 64) ~len:128 in
        Stripe.flush s;
        (Bytes.to_string b, Sched.now (), Stripe.size s))
  in
  let wrapped =
    Sched.run (fun () ->
        let dev = Device.of_stripe (mk ()) in
        Device.write dev ~off:0 (Bytes.make (Size.kib 256) 'w');
        let b = Device.read dev ~off:(Size.kib 64) ~len:128 in
        Device.flush dev;
        (Bytes.to_string b, Sched.now (), Device.size dev))
  in
  Alcotest.(check (triple string int int)) "stripe parity" direct wrapped

let test_device_power_failure () =
  Sched.run (fun () ->
      let dev = Device.of_disk (mk_disk ()) in
      Device.write dev ~off:0 (Bytes.make 512 'x');
      Device.fail_power dev ~torn_seed:1;
      checkb "write raises when off" true
        (match Device.write dev ~off:0 (Bytes.make 512 'y') with
        | () -> false
        | exception Disk.Powered_off -> true);
      Device.restore_power dev;
      check_bytes "survives the cycle" (String.make 512 'x')
        (Bytes.to_string (Device.read dev ~off:0 ~len:512)))

let test_device_barrier_orders () =
  (* Both current backends implement barrier as a queue drain: after it
     returns, everything previously issued is durable. *)
  Sched.run (fun () ->
      let dev = Device.of_stripe
          (Stripe.create [ Disk.create ~size:(Size.mib 4) () ])
      in
      Device.write dev ~off:0 (Bytes.make 4096 'b');
      Device.barrier dev;
      Device.fail_power dev ~torn_seed:3;
      Device.restore_power dev;
      check_bytes "barriered write durable" (String.make 8 'b')
        (Bytes.to_string (Device.read dev ~off:0 ~len:8)))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "blockdev"
    [
      ( "disk",
        [
          tc "write/read" test_write_read;
          tc "latency model" test_latency_model;
          tc "vectored IO" test_vectored_single_command;
          tc "channel limit" test_channels_limit_concurrency;
          tc "out of range" test_out_of_range;
          tc "stats" test_stats;
          tc "buffer snapshot" test_write_buffer_snapshot;
          tc "power failure" test_power_failure_blocks_io;
          tc "torn write" test_torn_write;
          tc "torn prefix sweep (zero-copy = snapshot)" test_torn_prefix_sweep;
          QCheck_alcotest.to_alcotest prop_zero_copy_crash_equivalence;
        ] );
      ( "stripe",
        [
          tc "roundtrip" test_stripe_roundtrip;
          tc "size" test_stripe_size;
          tc "parallelism" test_stripe_parallelism;
          tc "single unit" test_stripe_single_unit_one_device;
          tc "crash" test_stripe_crash;
          QCheck_alcotest.to_alcotest prop_coalesce_equivalence;
        ] );
      ( "device",
        [
          tc "disk parity" test_device_disk_parity;
          tc "stripe parity" test_device_stripe_parity;
          tc "power failure through wrapper" test_device_power_failure;
          tc "barrier makes prior IO durable" test_device_barrier_orders;
        ] );
    ]
