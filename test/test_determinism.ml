(* Determinism regression test: the same experiment program run twice in
   one process must produce identical simulated time, identical CPU
   accounting, and an identical rendered table. This is what proves the
   scheduler/VM host-side fast paths (inline clock advance, cached
   accounting cells, TLB Ptloc reuse, binary-search mapping lookup,
   sparse disk media) change nothing observable in simulation — and that
   no cross-run mutable state (engine, metrics) leaks between runs. *)

module Sched = Msnap_sim.Sched
module Metrics = Msnap_sim.Metrics
module Trace = Msnap_sim.Trace
module Rng = Msnap_util.Rng
module Tbl = Msnap_util.Tbl
module Size = Msnap_util.Size
module Disk = Msnap_blockdev.Disk
module Stripe = Msnap_blockdev.Stripe
module Device = Msnap_blockdev.Device
module Store = Msnap_objstore.Store
module Phys = Msnap_vm.Phys
module Aspace = Msnap_vm.Aspace
module Msnap = Msnap_core.Msnap
module Aurora = Msnap_aurora.Aurora

(* Run the whole suite with the data plane's ownership-rule checks on:
   the device checksums every lent slice at issue and re-verifies at
   commit/tear, so any zero-copy violation fails the tests loudly. *)
let () = Msnap_util.Slice.debug_checks := true

let page = 4096

let mk_dev () =
  Device.of_stripe
    (Stripe.create [ Disk.create ~name:"nvme0" ~size:(Size.mib 64) ();
      Disk.create ~name:"nvme1" ~size:(Size.mib 64) () ])

let mk_msnap () =
  let dev = mk_dev () in
  let phys = Phys.create () in
  let aspace = Aspace.create phys in
  Store.format dev;
  let store = Store.mount dev in
  let k = Msnap.init ~store in
  Msnap.attach k aspace;
  k

let mk_aurora () =
  let dev = mk_dev () in
  let phys = Phys.create () in
  let aspace = Aspace.create phys in
  Store.format dev;
  let store = Store.mount dev in
  Aurora.Kernel.create ~aspace ~store ()

let dirty_random_pages k md rng ~region_pages ~pages =
  let chosen = Hashtbl.create pages in
  while Hashtbl.length chosen < pages do
    Hashtbl.replace chosen (Rng.int rng region_pages) ()
  done;
  Hashtbl.iter
    (fun p () -> Msnap.write k md ~off:(p * page) (Bytes.make 64 'd'))
    chosen

type trace = {
  sim_ns : int list; (* per-cell simulated results *)
  accounts : (string * (string * int) list) list; (* per-run CPU reports *)
  table_digest : string;
  counters : (string * int) list;
  crashes : (string * string) list; (* crash scenario -> recovery digest *)
}

(* One self-contained MemSnap persist measurement: mean persist latency
   over 3 dirtyings of [dirty_pages] random pages. Body of a [Sched.run];
   also used as a parallel-cell body below. *)
let ms_measure ~region_pages ~dirty_pages () =
  let k = mk_msnap () in
  let md = Msnap.open_region k ~name:"bench" ~len:(region_pages * page) () in
  for i = 0 to region_pages - 1 do
    Msnap.write k md ~off:(i * page) (Bytes.make 16 'p')
  done;
  ignore (Msnap.persist k ~region:md ());
  let rng = Rng.create 7 in
  let total = ref 0 in
  for _ = 1 to 3 do
    dirty_random_pages k md rng ~region_pages ~pages:dirty_pages;
    let t0 = Sched.now () in
    ignore (Msnap.persist k ~region:md ());
    total := !total + (Sched.now () - t0)
  done;
  (!total / 3, Sched.account_report ())

(* The Aurora counterpart: time 3 region checkpoints. *)
let au_measure ~region_pages ~dirty_pages () =
  let k = mk_aurora () in
  Aurora.Kernel.register_thread k;
  let r =
    Aurora.Region.create k ~name:"bench" ~va:0x5000_0000_0000
      ~len:(region_pages * page)
  in
  for i = 0 to region_pages - 1 do
    Aurora.Region.write r ~off:(i * page) (Bytes.make 16 'p')
  done;
  Aurora.Region.checkpoint r;
  let rng = Rng.create 8 in
  let t0 = Sched.now () in
  for _ = 1 to 3 do
    let chosen = Hashtbl.create dirty_pages in
    while Hashtbl.length chosen < dirty_pages do
      Hashtbl.replace chosen (Rng.int rng region_pages) ()
    done;
    Hashtbl.iter
      (fun p () -> Aurora.Region.write r ~off:(p * page) (Bytes.make 64 'd'))
      chosen;
    Aurora.Region.checkpoint r
  done;
  (Sched.now () - t0, Sched.account_report ())

(* A reduced fig3: sweep dirty-set sizes over MemSnap persist and Aurora
   region checkpoints, plus a multi-threaded MemSnap phase, recording
   everything observable. *)
let fig3_reduced () =
  let region_pages = 512 in
  let sim_ns = ref [] and accounts = ref [] in
  let record name v report =
    sim_ns := v :: !sim_ns;
    accounts := (name, report) :: !accounts
  in
  let t =
    Tbl.create ~title:"determinism sweep"
      ~headers:[ "dirty"; "memsnap"; "aurora" ]
  in
  List.iter
    (fun dirty_pages ->
      let ms, ms_report =
        Sched.run (fun () -> ms_measure ~region_pages ~dirty_pages ())
      in
      let au, au_report =
        Sched.run (fun () -> au_measure ~region_pages ~dirty_pages ())
      in
      record (Printf.sprintf "memsnap/%d" dirty_pages) ms ms_report;
      record (Printf.sprintf "aurora/%d" dirty_pages) au au_report;
      Tbl.row t
        [ string_of_int dirty_pages; Tbl.us ms; Tbl.us au ])
    [ 1; 4; 16 ];
  (* Multi-threaded phase: concurrent writers sharing one region, with
     persists racing the dirtying stores. *)
  Metrics.reset ();
  let mt_ns, mt_report =
    Sched.run (fun () ->
        let k = mk_msnap () in
        let md =
          Msnap.open_region k ~name:"mt" ~len:(region_pages * page) ()
        in
        let ts =
          List.init 4 (fun i ->
              Sched.spawn ~name:(Printf.sprintf "w%d" i) (fun () ->
                  let rng = Rng.create (100 + i) in
                  for _ = 1 to 20 do
                    let p = Rng.int rng region_pages in
                    Msnap.write k md ~off:(p * page) (Bytes.make 32 'm');
                    Sched.delay (Rng.int rng 2000);
                    Metrics.incr
                      (Msnap_sim.Probe.make Msnap_sim.Probe.Host "mt.writes")
                  done))
        in
        ignore (Msnap.persist k ~region:md ());
        List.iter Sched.join ts;
        ignore (Msnap.persist k ~region:md ());
        (Sched.now (), Sched.account_report ()))
  in
  record "mt" mt_ns mt_report;
  (* Crash-injection phase: power-fail the device while a μCheckpoint's
     zero-copy commit (scatter/gather straight over the page frames) is
     in flight, remount, and digest everything recoverable. The tear
     happens while writer threads keep dirtying the region, so this
     exercises the ownership rule end to end: checkpoint-in-progress COW
     must keep the in-flight frames stable, and the torn sector prefix
     must be identical on both runs. *)
  let crashes =
    List.map
      (fun crash_delay ->
        let region_pages = 128 in
        let sim_end, digest =
          Sched.run (fun () ->
              let dev = mk_dev () in
              let phys = Phys.create () in
              let aspace = Aspace.create phys in
              Store.format dev;
              let store = Store.mount dev in
              let k = Msnap.init ~store in
              Msnap.attach k aspace;
              let md =
                Msnap.open_region k ~name:"crash" ~len:(region_pages * page) ()
              in
              for i = 0 to region_pages - 1 do
                Msnap.write k md ~off:(i * page) (Bytes.make 32 'a')
              done;
              ignore (Msnap.persist k ~region:md ());
              let persister =
                Sched.spawn ~name:"persister" (fun () ->
                    try
                      let rng = Rng.create 42 in
                      for _ = 1 to 64 do
                        let p = Rng.int rng region_pages in
                        Msnap.write k md ~off:(p * page) (Bytes.make 64 'z')
                      done;
                      ignore (Msnap.persist k ~region:md ())
                    with Disk.Powered_off -> ())
              in
              let racer =
                Sched.spawn ~name:"racer" (fun () ->
                    try
                      let rng = Rng.create 43 in
                      for _ = 1 to 64 do
                        let p = Rng.int rng region_pages in
                        Msnap.write k md ~off:(p * page) (Bytes.make 48 'r');
                        Sched.delay (Rng.int rng 5_000)
                      done
                    with Disk.Powered_off -> ())
              in
              Sched.delay crash_delay;
              Device.fail_power dev ~torn_seed:crash_delay;
              Sched.join persister;
              Sched.join racer;
              Device.restore_power dev;
              let store2 = Store.mount dev in
              let buf = Buffer.create (region_pages * page) in
              (match Store.open_obj store2 ~name:"crash" with
              | None -> Buffer.add_string buf "no-object"
              | Some o ->
                Buffer.add_string buf (string_of_int (Store.epoch o));
                for i = 0 to region_pages - 1 do
                  match Store.read_block store2 o i with
                  | Some b -> Buffer.add_bytes buf b
                  | None -> Buffer.add_string buf "hole"
                done);
              (Sched.now (), Digest.to_hex (Digest.string (Buffer.contents buf))))
        in
        ( Printf.sprintf "crash@%dns" crash_delay,
          Printf.sprintf "%s/end=%d" digest sim_end ))
      [ 30_000; 120_000; 400_000 ]
  in
  {
    sim_ns = List.rev !sim_ns;
    accounts = List.rev !accounts;
    table_digest = Digest.to_hex (Digest.string (Tbl.render t));
    counters =
      (* The pool.* counters are host state (hit/miss depends on what
         earlier runs parked in the buffer pool), not simulated values:
         a second in-process run legitimately sees more hits. *)
      List.filter
        (fun (name, _) -> not (String.starts_with ~prefix:"pool." name))
        (Metrics.counters ());
    crashes;
  }

(* Everything observable must be byte-identical whether the run was
   traced or not: tracing is host-side observability and must never
   perturb simulated values ("host work may change, simulated work may
   not"). Run once untraced and once under a verbose trace. *)
let test_identical_traced_untraced () =
  let a = fig3_reduced () in
  Trace.enable ~verbose:true ();
  let b = fig3_reduced () in
  Trace.disable ();
  Alcotest.(check bool)
    "trace actually recorded" true
    (Trace.event_count () > 0);
  Alcotest.(check (list int)) "sim-time totals" a.sim_ns b.sim_ns;
  List.iter2
    (fun (na, ra) (nb, rb) ->
      Alcotest.(check string) "phase name" na nb;
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "account report (%s)" na)
        ra rb)
    a.accounts b.accounts;
  Alcotest.(check string) "table digest" a.table_digest b.table_digest;
  Alcotest.(check (list (pair string int))) "metrics" a.counters b.counters;
  Alcotest.(check (list (pair string string)))
    "crash-injection recovery digests" a.crashes b.crashes

let test_identical_twice () =
  let a = fig3_reduced () in
  let b = fig3_reduced () in
  Alcotest.(check (list int)) "sim-time totals" a.sim_ns b.sim_ns;
  List.iter2
    (fun (na, ra) (nb, rb) ->
      Alcotest.(check string) "phase name" na nb;
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "account report (%s)" na)
        ra rb)
    a.accounts b.accounts;
  Alcotest.(check string) "table digest" a.table_digest b.table_digest;
  Alcotest.(check (list (pair string int))) "metrics" a.counters b.counters;
  Alcotest.(check (list (pair string string)))
    "crash-injection recovery digests" a.crashes b.crashes

(* --- cell-level parallelism ---

   The same sweep expressed as independent simulation cells on the
   domain task pool. The contract under test: how many pool workers
   exist (0 = serial inline execution, the reference) is pure host
   policy — every simulated value, CPU account, merged metric, and
   merged trace byte must be identical at any worker count, traced or
   not. *)

module Cell = Msnap_sim.Cell
module Taskpool = Msnap_util.Taskpool

type cellrun = {
  c_vals : (string * int) list; (* cell label -> simulated ns *)
  c_accounts : (string * (string * int) list) list;
  c_counters : (string * int) list;
  c_trace_events : int;
  c_trace_digest : string;
}

(* Digest everything a merged trace exposes: the exact per-probe
   summary plus every event's probe/timestamp/duration/tid/flow/arg
   columns, in buffer order. *)
let trace_digest () =
  let d = Trace.dump () in
  let b = Buffer.create 65536 in
  Buffer.add_string b (Trace.render_summary d);
  let addi v =
    Buffer.add_string b (string_of_int v);
    Buffer.add_char b ';'
  in
  Array.iter addi d.Trace.d_probe;
  Array.iter addi d.Trace.d_ts;
  Array.iter addi d.Trace.d_dur;
  Array.iter addi d.Trace.d_tid;
  Array.iter addi d.Trace.d_flow;
  Array.iter (fun k -> Buffer.add_string b k) d.Trace.d_ak;
  Array.iter addi d.Trace.d_av;
  Digest.to_hex (Digest.string (Buffer.contents b))

let cell_run ~workers ~traced =
  Taskpool.shutdown ();
  Taskpool.ensure_workers workers;
  Metrics.reset ();
  Sched.set_trace_base 0;
  if traced then Trace.enable ~verbose:true ();
  let region_pages = 256 in
  let pend =
    List.concat_map
      (fun dirty_pages ->
        [
          ( Printf.sprintf "memsnap/%d" dirty_pages,
            Cell.submit (fun () ->
                Sched.run (fun () -> ms_measure ~region_pages ~dirty_pages ()))
          );
          ( Printf.sprintf "aurora/%d" dirty_pages,
            Cell.submit (fun () ->
                Sched.run (fun () -> au_measure ~region_pages ~dirty_pages ()))
          );
        ])
      [ 1; 4; 16 ]
  in
  (* Force in submission order — the program order a serial run has. *)
  let forced = List.map (fun (n, p) -> (n, Cell.force p)) pend in
  let counters =
    List.filter
      (fun (name, _) -> not (String.starts_with ~prefix:"pool." name))
      (Metrics.counters ())
  in
  let n_ev = if traced then Trace.event_count () else 0 in
  let td = if traced then trace_digest () else "" in
  if traced then Trace.disable ();
  Taskpool.shutdown ();
  {
    c_vals = List.map (fun (n, (v, _)) -> (n, v)) forced;
    c_accounts = List.map (fun (n, (_, r)) -> (n, r)) forced;
    c_counters = counters;
    c_trace_events = n_ev;
    c_trace_digest = td;
  }

let check_cellrun name a b =
  Alcotest.(check (list (pair string int)))
    (name ^ ": simulated values") a.c_vals b.c_vals;
  List.iter2
    (fun (na, ra) (nb, rb) ->
      Alcotest.(check string) (name ^ ": cell label") na nb;
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "%s: account report (%s)" name na)
        ra rb)
    a.c_accounts b.c_accounts;
  Alcotest.(check (list (pair string int)))
    (name ^ ": merged metrics") a.c_counters b.c_counters;
  Alcotest.(check int) (name ^ ": trace events") a.c_trace_events
    b.c_trace_events;
  Alcotest.(check string)
    (name ^ ": trace digest") a.c_trace_digest b.c_trace_digest

let test_cells_parallel_identical () =
  let serial = cell_run ~workers:0 ~traced:false in
  check_cellrun "1 worker vs serial" serial (cell_run ~workers:1 ~traced:false);
  check_cellrun "3 workers vs serial" serial (cell_run ~workers:3 ~traced:false)

let test_cells_traced_identical () =
  let serial = cell_run ~workers:0 ~traced:true in
  Alcotest.(check bool)
    "trace actually recorded" true
    (serial.c_trace_events > 0);
  check_cellrun "3 workers vs serial (traced)" serial
    (cell_run ~workers:3 ~traced:true);
  (* Tracing itself must not move a simulated value. *)
  let untraced = cell_run ~workers:0 ~traced:false in
  Alcotest.(check (list (pair string int)))
    "traced vs untraced: simulated values" untraced.c_vals serial.c_vals

let () =
  Alcotest.run "determinism"
    [
      ( "fig3-reduced",
        [
          Alcotest.test_case "identical across two in-process runs" `Quick
            test_identical_twice;
          Alcotest.test_case "identical with tracing on vs off" `Quick
            test_identical_traced_untraced;
        ] );
      ( "cells",
        [
          Alcotest.test_case "cell-parallel identical at any worker count"
            `Quick test_cells_parallel_identical;
          Alcotest.test_case "cell-parallel identical under tracing" `Quick
            test_cells_traced_identical;
        ] );
    ]
