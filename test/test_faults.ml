(* The crash-schedule checker's foundation: offline image reconstruction
   must be byte-identical to a live power failure at the same boundary,
   and recording must never perturb the simulation it observes. *)

module Sched = Msnap_sim.Sched
module Rng = Msnap_util.Rng
module Size = Msnap_util.Size
module Disk = Msnap_blockdev.Disk
module Stripe = Msnap_blockdev.Stripe
module Device = Msnap_blockdev.Device
module Record = Msnap_blockdev.Record
module History = Msnap_faults.History
module Image = Msnap_faults.Image
module Checker = Msnap_faults.Checker

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let mk_disk () = Device.of_disk (Disk.create ~size:(Size.mib 4) ())

let mk_stripe () =
  Device.of_stripe
    (Stripe.create
       [ Disk.create ~size:(Size.mib 2) (); Disk.create ~size:(Size.mib 2) () ])

(* A deterministic raw-device script with genuine concurrency: three
   writers with interleaved in-flight commands, so a crash at any
   boundary tears a non-trivial set of outstanding writes. Flushes are
   serialized through one mutex ([flush] drains every device channel,
   so two concurrent drains would deadlock — same discipline the file
   systems use). Every writer swallows [Powered_off]: the script runs
   to completion whether or not a live crash fires mid-way. *)
let script dev =
  let sectors = Device.size dev / 512 in
  let flush_lock = Msnap_sim.Sync.Mutex.create () in
  let writer id =
    let rng = Rng.create (40 + id) in
    try
      for i = 0 to 79 do
        let nsec = 1 + Rng.int rng 8 in
        let off = 512 * Rng.int rng (sectors - nsec) in
        let b = Bytes.make (512 * nsec) (Char.chr (Char.code 'a' + ((id + i) mod 26))) in
        Device.write dev ~off b;
        if i mod 9 = id then
          Msnap_sim.Sync.Mutex.with_lock flush_lock (fun () ->
              Device.flush dev)
      done
    with Disk.Powered_off -> ()
  in
  let ts = List.init 3 (fun id -> Sched.spawn (fun () -> writer id)) in
  List.iter Sched.join ts;
  try Device.barrier dev with Disk.Powered_off -> ()

(* Raw media of every member disk, concatenated in member order. *)
let snapshot dev =
  List.init (Device.members dev) (fun m ->
      Device.peek dev ~member:m ~off:0
        ~len:(Device.member_size dev ~member:m))

(* The crash-free recording pass: the schedule history plus the final
   media image and final virtual time. *)
let record_pass mk =
  Sched.run (fun () ->
      let dev = mk () in
      let record = Record.create () in
      Device.attach_record dev record;
      script dev;
      Device.detach_record dev;
      let img = snapshot dev in
      let now = Sched.now () in
      Device.dispose dev;
      (record, img, now))

(* A live armed crash: same script, recorder set to fire the power
   failure the instant boundary [prefix] lands. *)
let live_pass mk ~prefix ~torn_seed =
  Sched.run (fun () ->
      let dev = mk () in
      let record = Record.create () in
      Device.attach_record dev record;
      Record.arm record ~prefix ~torn_seed;
      script dev;
      let fired = Record.fired record in
      if fired then Device.restore_power dev;
      Device.detach_record dev;
      let img = snapshot dev in
      Device.dispose dev;
      (fired, img))

(* Offline reconstruction of the same crash from the recorded run. *)
let offline_pass mk record ~prefix ~torn_seed =
  Sched.run (fun () ->
      let dev = mk () in
      Image.materialize record ~prefix ~torn_seed dev;
      let img = snapshot dev in
      Device.dispose dev;
      img)

let first_diff a b =
  let rec go m =
    match m with
    | [] -> None
    | (i, x, y) :: tl ->
      if Bytes.equal x y then go tl
      else
        let n = min (Bytes.length x) (Bytes.length y) in
        let off = ref 0 in
        while !off < n && Bytes.get x !off = Bytes.get y !off do incr off done;
        Some (i, !off)
  in
  go (List.mapi (fun i (x, y) -> (i, x, y)) (List.combine a b))

(* The parity property pinning [Image.materialize]: for every boundary
   prefix and torn seed, the reconstructed image equals the live
   armed-crash image byte for byte. *)
let prop_image_parity name mk =
  let record, _, _ = record_pass mk in
  let boundaries = Record.boundaries record in
  let open QCheck in
  let gen =
    Gen.(
      let* prefix = int_range 0 (boundaries - 1) in
      let* torn_seed = int_range 0 999 in
      return (prefix, torn_seed))
  in
  QCheck.Test.make ~count:60
    ~name:(name ^ ": materialize = live fail_power at every boundary")
    (make gen)
    (fun (prefix, torn_seed) ->
      let fired, live = live_pass mk ~prefix ~torn_seed in
      let offline = offline_pass mk record ~prefix ~torn_seed in
      if not fired then
        QCheck.Test.fail_reportf "arm(%d,%d) never fired" prefix torn_seed;
      match first_diff live offline with
      | None -> true
      | Some (m, off) ->
        QCheck.Test.fail_reportf
          "prefix=%d torn_seed=%d: member %d differs at byte %d" prefix
          torn_seed m off)

(* Recording is host-only observability: a recorded run must leave
   byte-identical media and the identical virtual clock behind. *)
let test_recording_is_invisible () =
  let unrecorded mk =
    Sched.run (fun () ->
        let dev = mk () in
        script dev;
        let img = snapshot dev in
        let now = Sched.now () in
        Device.dispose dev;
        (img, now))
  in
  List.iter
    (fun (name, mk) ->
      let _, rec_img, rec_now = record_pass mk in
      let plain_img, plain_now = unrecorded mk in
      checki (name ^ " virtual time unchanged by recording") plain_now rec_now;
      checkb (name ^ " media unchanged by recording") true
        (first_diff rec_img plain_img = None))
    [ ("disk", mk_disk); ("stripe", mk_stripe) ]

let test_record_boundaries () =
  let record, _, _ = record_pass mk_stripe in
  (* 3 writers x 80 writes, each commit one boundary, plus flushes. *)
  checkb "every write commit is a boundary" true
    (Record.boundaries record > 240);
  checkb "commands recorded" true (Record.commands record >= 240)

let test_materialize_prefix_range () =
  let record, _, _ = record_pass mk_disk in
  let boundaries = Record.boundaries record in
  Sched.run (fun () ->
      let dev = mk_disk () in
      checkb "out-of-range prefix rejected" true
        (match Image.materialize record ~prefix:boundaries ~torn_seed:1 dev with
        | exception Invalid_argument _ -> true
        | () -> false);
      Device.dispose dev)

(* Full-prefix reconstruction = the crash-free final image (modulo the
   torn tails of commands that never committed, which the barrier at
   script end drains — so there are none). *)
let test_materialize_full_prefix () =
  List.iter
    (fun (name, mk) ->
      let record, final, _ = record_pass mk in
      let img =
        offline_pass mk record
          ~prefix:(Record.boundaries record - 1)
          ~torn_seed:7
      in
      checkb (name ^ " full prefix = final image") true
        (first_diff img final = None))
    [ ("disk", mk_disk); ("stripe", mk_stripe) ]

(* End-to-end checker smoke on a real engine workload: the serial and
   parallel runs must produce the identical report, and the invariant
   must hold at every point. *)
let test_checker_end_to_end () =
  let opts = { Checker.default_opts with max_points = 60 } in
  let w = Msnap_crashwl.Workloads.objstore_workload in
  let serial = Checker.run ~opts w in
  let parallel = Checker.run ~opts:{ opts with jobs = 2 } w in
  checkb "no failures" true (serial.Checker.r_failures = []);
  checki "points visited" 60 serial.Checker.r_points;
  checkb "serial = parallel report" true
    (Checker.pp_report serial = Checker.pp_report parallel)

let () =
  Alcotest.run "faults"
    [
      ( "image-parity",
        [
          QCheck_alcotest.to_alcotest (prop_image_parity "disk" mk_disk);
          QCheck_alcotest.to_alcotest (prop_image_parity "stripe" mk_stripe);
        ] );
      ( "recording",
        [
          Alcotest.test_case "recording invisible" `Quick
            test_recording_is_invisible;
          Alcotest.test_case "boundaries captured" `Quick
            test_record_boundaries;
        ] );
      ( "materialize",
        [
          Alcotest.test_case "prefix range" `Quick
            test_materialize_prefix_range;
          Alcotest.test_case "full prefix" `Quick
            test_materialize_full_prefix;
        ] );
      ( "checker",
        [
          Alcotest.test_case "end to end" `Quick test_checker_end_to_end;
        ] );
    ]
