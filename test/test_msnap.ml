module Sched = Msnap_sim.Sched
module Size = Msnap_util.Size
module Disk = Msnap_blockdev.Disk
module Stripe = Msnap_blockdev.Stripe
module Device = Msnap_blockdev.Device
module Store = Msnap_objstore.Store
module Phys = Msnap_vm.Phys
module Aspace = Msnap_vm.Aspace
module Msnap = Msnap_core.Msnap

(* Run the whole suite with the data plane's ownership-rule checks on:
   the device checksums every lent slice at issue and re-verifies at
   commit/tear, so any zero-copy violation fails the tests loudly. *)
let () = Msnap_util.Slice.debug_checks := true

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let in_sim f () = Sched.run f

let mk_dev ?(mib = 32) () =
  Device.of_stripe
    (Stripe.create [ Disk.create ~name:"d0" ~size:(Size.mib mib) ();
      Disk.create ~name:"d1" ~size:(Size.mib mib) () ])

(* A fresh "machine": physical memory, one process, a formatted store and
   a MemSnap kernel. *)
let mk_machine ?(format = true) dev =
  let phys = Phys.create () in
  let aspace = Aspace.create ~name:"proc0" phys in
  if format then Store.format dev;
  let store = Store.mount dev in
  let k = Msnap.init ~store in
  Msnap.attach k aspace;
  (k, aspace, phys)

let str_read k md ~off ~len = Bytes.to_string (Msnap.read k md ~off ~len)

let test_open_write_read () =
  in_sim (fun () ->
      let k, _, _ = mk_machine (mk_dev ()) in
      let md = Msnap.open_region k ~name:"db" ~len:(Size.kib 64) () in
      checkb "high arena address" true (Msnap.addr md >= Msnap_vm.Addr.msnap_base);
      Msnap.write_string k md ~off:100 "persistent data";
      checks "roundtrip" "persistent data" (str_read k md ~off:100 ~len:15))
    ()

let test_dirty_tracking () =
  in_sim (fun () ->
      let k, _, _ = mk_machine (mk_dev ()) in
      let md = Msnap.open_region k ~name:"db" ~len:(Size.kib 64) () in
      checki "clean" 0 (Msnap.dirty_count k);
      Msnap.write_string k md ~off:0 "a";
      Msnap.write_string k md ~off:10 "b"; (* same page: no new entry *)
      checki "one page" 1 (Msnap.dirty_count k);
      Msnap.write_string k md ~off:4096 "c";
      checki "two pages" 2 (Msnap.dirty_count k);
      ignore (Msnap.persist k ());
      checki "empty after persist" 0 (Msnap.dirty_count k);
      Msnap.write_string k md ~off:0 "d";
      checki "re-armed" 1 (Msnap.dirty_count k))
    ()

let test_persist_durable () =
  in_sim (fun () ->
      let dev = mk_dev () in
      let k, _, _ = mk_machine dev in
      let md = Msnap.open_region k ~name:"db" ~len:(Size.kib 64) () in
      let va = Msnap.addr md in
      Msnap.write_string k md ~off:0 "survive me";
      let e = Msnap.persist k ~region:md () in
      checkb "epoch issued" true (e > 0);
      checki "durable" e (Msnap.durable_epoch md);
      (* "Reboot": fresh machine over the same device. *)
      let k2, _, _ = mk_machine ~format:false dev in
      let md2 = Msnap.open_region k2 ~name:"db" ~len:(Size.kib 64) () in
      checki "same fixed address" va (Msnap.addr md2);
      checks "data recovered" "survive me" (str_read k2 md2 ~off:0 ~len:10))
    ()

let test_unpersisted_lost () =
  in_sim (fun () ->
      let dev = mk_dev () in
      let k, _, _ = mk_machine dev in
      let md = Msnap.open_region k ~name:"db" ~len:(Size.kib 64) () in
      Msnap.write_string k md ~off:0 "committed";
      ignore (Msnap.persist k ());
      Msnap.write_string k md ~off:0 "uncommitt";
      (* no persist: reboot *)
      let k2, _, _ = mk_machine ~format:false dev in
      let md2 = Msnap.open_region k2 ~name:"db" ~len:(Size.kib 64) () in
      checks "only committed state" "committed" (str_read k2 md2 ~off:0 ~len:9))
    ()

let test_per_thread_isolation () =
  in_sim (fun () ->
      let dev = mk_dev () in
      let k, _, _ = mk_machine dev in
      let md = Msnap.open_region k ~name:"db" ~len:(Size.kib 64) () in
      (* Thread A dirties page 0, thread B dirties page 1. B persists: only
         B's page must reach the disk. *)
      let a =
        Sched.spawn ~name:"A" (fun () ->
            Msnap.write_string k md ~off:0 "AAAA";
            Sched.delay 1_000_000 (* stay alive; do not persist *))
      in
      Sched.delay 100;
      let b =
        Sched.spawn ~name:"B" (fun () ->
            Msnap.write_string k md ~off:4096 "BBBB";
            ignore (Msnap.persist k ()))
      in
      Sched.join b;
      Sched.join a;
      let k2, _, _ = mk_machine ~format:false dev in
      let md2 = Msnap.open_region k2 ~name:"db" ~len:(Size.kib 64) () in
      checks "B's page persisted" "BBBB" (str_read k2 md2 ~off:4096 ~len:4);
      checks "A's page not included" "\000\000\000\000" (str_read k2 md2 ~off:0 ~len:4))
    ()

let test_global_scope () =
  in_sim (fun () ->
      let dev = mk_dev () in
      let k, _, _ = mk_machine dev in
      let md = Msnap.open_region k ~name:"db" ~len:(Size.kib 64) () in
      let a =
        Sched.spawn ~name:"A" (fun () ->
            Msnap.write_string k md ~off:0 "AAAA";
            Sched.delay 1_000_000)
      in
      Sched.delay 10_000; (* let A's tracking fault complete *)
      (* MS_GLOBAL from main picks up A's dirty set too. *)
      ignore (Msnap.persist k ~scope:`Global ());
      Sched.join a;
      let k2, _, _ = mk_machine ~format:false dev in
      let md2 = Msnap.open_region k2 ~name:"db" ~len:(Size.kib 64) () in
      checks "A's page included" "AAAA" (str_read k2 md2 ~off:0 ~len:4))
    ()

let test_region_filter () =
  in_sim (fun () ->
      let dev = mk_dev () in
      let k, _, _ = mk_machine dev in
      let r1 = Msnap.open_region k ~name:"r1" ~len:(Size.kib 16) () in
      let r2 = Msnap.open_region k ~name:"r2" ~len:(Size.kib 16) () in
      Msnap.write_string k r1 ~off:0 "one";
      Msnap.write_string k r2 ~off:0 "two";
      ignore (Msnap.persist k ~region:r1 ());
      checki "r2 still dirty" 1 (Msnap.dirty_count k);
      checkb "r1 durable" true (Msnap.durable_epoch r1 > 0);
      checki "r2 not committed" 0 (Msnap.durable_epoch r2);
      (* Descriptor -1: persist everything. *)
      ignore (Msnap.persist k ());
      checki "all flushed" 0 (Msnap.dirty_count k);
      checkb "r2 durable now" true (Msnap.durable_epoch r2 > 0))
    ()

let test_async_wait () =
  in_sim (fun () ->
      let dev = mk_dev () in
      let k, _, _ = mk_machine dev in
      let md = Msnap.open_region k ~name:"db" ~len:(Size.kib 64) () in
      Msnap.write_string k md ~off:0 "async";
      let t0 = Sched.now () in
      let e = Msnap.persist k ~region:md ~mode:`Async () in
      let initiated = Sched.now () - t0 in
      checkb "returns before IO" true (initiated < 20_000);
      checkb "not yet durable" true (Msnap.durable_epoch md < e);
      Msnap.wait k md e;
      checkb "durable after wait" true (Msnap.durable_epoch md >= e);
      (* Waiting again is a no-op; waiting for a never-issued epoch fails. *)
      Msnap.wait k md e;
      checkb "future epoch rejected" true
        (try Msnap.wait k md (e + 100); false with Invalid_argument _ -> true))
    ()

let test_async_latency_vs_sync () =
  in_sim (fun () ->
      let dev = mk_dev () in
      let k, _, _ = mk_machine dev in
      let md = Msnap.open_region k ~name:"db" ~len:(Size.mib 1) () in
      (* 16 pages dirty: async call must cost microseconds (CPU only),
         sync must include the IO (tens of microseconds). *)
      let dirty () =
        for i = 0 to 15 do
          Msnap.write_string k md ~off:(i * 4096) "x"
        done
      in
      dirty ();
      let t0 = Sched.now () in
      let e = Msnap.persist k ~region:md ~mode:`Async () in
      let async_ns = Sched.now () - t0 in
      Msnap.wait k md e;
      dirty ();
      let t1 = Sched.now () in
      ignore (Msnap.persist k ~region:md ());
      let sync_ns = Sched.now () - t1 in
      checkb "async is CPU-only" true (async_ns < 15_000);
      checkb "sync includes disk" true (sync_ns > 30_000 && sync_ns < 120_000))
    ()

let test_cow_in_flight () =
  in_sim (fun () ->
      let dev = mk_dev () in
      let k, _, _ = mk_machine dev in
      let md = Msnap.open_region k ~name:"db" ~len:(Size.kib 64) () in
      Msnap.write_string k md ~off:0 "OLD!";
      let e = Msnap.persist k ~region:md ~mode:`Async () in
      (* Write the same page while its μCheckpoint is in flight: must not
         block, must not corrupt the checkpoint. *)
      Msnap.write_string k md ~off:0 "NEW!";
      checks "memory sees the new data" "NEW!" (str_read k md ~off:0 ~len:4);
      Msnap.wait k md e;
      (* Reboot: epoch e must contain OLD!, not NEW!. *)
      let k2, _, _ = mk_machine ~format:false dev in
      let md2 = Msnap.open_region k2 ~name:"db" ~len:(Size.kib 64) () in
      checks "checkpoint is the old data" "OLD!" (str_read k2 md2 ~off:0 ~len:4))
    ()

let test_cow_then_second_persist () =
  in_sim (fun () ->
      let dev = mk_dev () in
      let k, _, _ = mk_machine dev in
      let md = Msnap.open_region k ~name:"db" ~len:(Size.kib 64) () in
      Msnap.write_string k md ~off:0 "OLD!";
      let e1 = Msnap.persist k ~region:md ~mode:`Async () in
      Msnap.write_string k md ~off:0 "NEW!";
      checki "COW re-tracked the page" 1 (Msnap.dirty_count k);
      let e2 = Msnap.persist k ~region:md () in
      checkb "second epoch later" true (e2 > e1);
      let k2, _, _ = mk_machine ~format:false dev in
      let md2 = Msnap.open_region k2 ~name:"db" ~len:(Size.kib 64) () in
      checks "final state is the new data" "NEW!" (str_read k2 md2 ~off:0 ~len:4))
    ()

let test_no_frame_leak_after_cow () =
  in_sim (fun () ->
      let dev = mk_dev () in
      let k, _, phys = mk_machine dev in
      let md = Msnap.open_region k ~name:"db" ~len:(Size.kib 64) () in
      Msnap.write_string k md ~off:0 "x";
      ignore (Msnap.persist k ~region:md ());
      let baseline = Phys.live_frames phys in
      for _ = 1 to 10 do
        let e = Msnap.persist k ~region:md ~mode:`Async () in
        ignore e;
        Msnap.write_string k md ~off:0 "y";
        ignore (Msnap.persist k ~region:md ())
      done;
      checkb "frames bounded" true (Phys.live_frames phys <= baseline + 2))
    ()

let test_property_violation_cross_process () =
  in_sim (fun () ->
      let dev = mk_dev () in
      let phys = Phys.create () in
      let a1 = Aspace.create ~name:"p1" phys in
      let a2 = Aspace.create ~name:"p2" phys in
      Store.format dev;
      let store = Store.mount dev in
      let k = Msnap.init ~store in
      Msnap.attach k a1;
      Msnap.attach k a2;
      let md = Msnap.open_region k ~name:"shm" ~len:(Size.kib 16) () in
      Msnap.map_into k md a2;
      let va = Msnap.addr md in
      (* Thread in p1 dirties the page. *)
      let t1 =
        Sched.spawn (fun () ->
            Aspace.write a1 ~va (Bytes.of_string "A");
            Sched.delay 1_000)
      in
      Sched.delay 10;
      (* A second thread writing via p2 faults on p2's own PTE: strict mode
         detects the property-③ violation. *)
      let violated = ref false in
      let t2 =
        Sched.spawn (fun () ->
            try Aspace.write a2 ~va (Bytes.of_string "B")
            with Msnap.Property_violation _ -> violated := true)
      in
      Sched.join t2;
      Sched.join t1;
      checkb "violation detected" true !violated;
      (* Relaxed mode (MVCC databases) allows it. *)
      Msnap.set_strict k false;
      let t3 = Sched.spawn (fun () -> Aspace.write a2 ~va (Bytes.of_string "B")) in
      Sched.join t3;
      checkb "relaxed allows" true (Bytes.to_string (Aspace.read a1 ~va ~len:1) = "B"))
    ()

let test_shared_region_cow_redirects_all_processes () =
  in_sim (fun () ->
      let dev = mk_dev () in
      let phys = Phys.create () in
      let a1 = Aspace.create ~name:"p1" phys in
      let a2 = Aspace.create ~name:"p2" phys in
      Store.format dev;
      let store = Store.mount dev in
      let k = Msnap.init ~store in
      Msnap.set_strict k false;
      Msnap.attach k a1;
      Msnap.attach k a2;
      let md = Msnap.open_region k ~name:"shm" ~len:(Size.kib 16) () in
      Msnap.map_into k md a2;
      let va = Msnap.addr md in
      Aspace.write a1 ~va (Bytes.of_string "OLD!");
      (* Fault the page into p2 as well. *)
      checkb "shared read" true (Bytes.to_string (Aspace.read a2 ~va ~len:4) = "OLD!");
      let e = Msnap.persist k ~region:md ~mode:`Async () in
      (* COW during flight, from p1; p2 must observe the new frame too. *)
      Aspace.write a1 ~va (Bytes.of_string "NEW!");
      checks "p2 sees the copy" "NEW!" (Bytes.to_string (Aspace.read a2 ~va ~len:4));
      Msnap.wait k md e)
    ()

let test_crash_during_persist () =
  in_sim (fun () ->
      let dev = mk_dev () in
      let k, _, _ = mk_machine dev in
      let md = Msnap.open_region k ~name:"db" ~len:(Size.kib 64) () in
      Msnap.write_string k md ~off:0 "stable";
      ignore (Msnap.persist k ~region:md ());
      let e1 = Msnap.durable_epoch md in
      Msnap.write_string k md ~off:0 "doomed";
      let crasher =
        Sched.spawn (fun () ->
            try ignore (Msnap.persist k ~region:md ())
            with Disk.Powered_off -> ())
      in
      Sched.delay 18_000; (* mid-IO *)
      Device.fail_power dev ~torn_seed:5;
      Sched.join crasher;
      Device.restore_power dev;
      let k2, _, _ = mk_machine ~format:false dev in
      let md2 = Msnap.open_region k2 ~name:"db" ~len:(Size.kib 64) () in
      (* Either epoch e1 with the old data, or a newer epoch with the new. *)
      if Msnap.durable_epoch md2 = e1 then
        checks "old epoch intact" "stable" (str_read k2 md2 ~off:0 ~len:6)
      else checks "new epoch complete" "doomed" (str_read k2 md2 ~off:0 ~len:6))
    ()

let test_multi_region_pointer_stability () =
  in_sim (fun () ->
      let dev = mk_dev () in
      let k, _, _ = mk_machine dev in
      let r1 = Msnap.open_region k ~name:"index" ~len:(Size.kib 16) () in
      let r2 = Msnap.open_region k ~name:"data" ~len:(Size.kib 16) () in
      (* Store a pointer to r2's payload inside r1, paper-style. *)
      let payload_va = Msnap.addr r2 + 512 in
      let ptr = Bytes.create 8 in
      Bytes.set_int64_le ptr 0 (Int64.of_int payload_va);
      Msnap.write k r1 ~off:0 ptr;
      Msnap.write_string k r2 ~off:512 "pointee";
      ignore (Msnap.persist k ());
      let k2, aspace2, _ = mk_machine ~format:false dev in
      let r1' = Msnap.open_region k2 ~name:"index" ~len:(Size.kib 16) () in
      let _r2' = Msnap.open_region k2 ~name:"data" ~len:(Size.kib 16) () in
      let ptr' = Msnap.read k2 r1' ~off:0 ~len:8 in
      let va = Int64.to_int (Bytes.get_int64_le ptr' 0) in
      checki "pointer unchanged" payload_va va;
      (* Dereference through the address space: still valid. *)
      checks "dereferences" "pointee"
        (Bytes.to_string (Aspace.read aspace2 ~va ~len:7)))
    ()

let test_persist_nothing () =
  in_sim (fun () ->
      let dev = mk_dev () in
      let k, _, _ = mk_machine dev in
      let md = Msnap.open_region k ~name:"db" ~len:(Size.kib 16) () in
      let e = Msnap.persist k ~region:md () in
      checki "no-op persist returns durable epoch" (Msnap.durable_epoch md) e)
    ()

let test_open_bounds () =
  in_sim (fun () ->
      let dev = mk_dev () in
      let k, _, _ = mk_machine dev in
      let md = Msnap.open_region k ~name:"db" ~len:(Size.kib 16) () in
      checkb "oob write" true
        (try Msnap.write_string k md ~off:(Size.kib 16) "x"; false
         with Invalid_argument _ -> true);
      checkb "double open" true
        (try ignore (Msnap.open_region k ~name:"db" ~len:4096 ()); false
         with Invalid_argument _ -> true))
    ()

let prop_persist_recover_random =
  QCheck.Test.make ~count:20 ~name:"random writes+persists recover exactly"
    QCheck.(list_of_size Gen.(int_range 1 30)
              (pair (int_bound 15) (int_bound 255)))
    (fun ops ->
      Sched.run (fun () ->
          let dev = mk_dev () in
          let k, _, _ = mk_machine dev in
          let md = Msnap.open_region k ~name:"db" ~len:(Size.kib 64) () in
          let model = Bytes.make (Size.kib 64) '\000' in
          List.iteri
            (fun i (page, v) ->
              let data = Bytes.make 16 (Char.chr v) in
              Msnap.write k md ~off:(page * 4096) data;
              Bytes.blit data 0 model (page * 4096) 16;
              if i mod 3 = 0 then ignore (Msnap.persist k ()))
            ops;
          ignore (Msnap.persist k ());
          let k2, _, _ = mk_machine ~format:false dev in
          let md2 = Msnap.open_region k2 ~name:"db" ~len:(Size.kib 64) () in
          Bytes.equal model (Msnap.read k2 md2 ~off:0 ~len:(Size.kib 64))))

let prop_dirty_model =
  (* Differential for the flat dirty arenas and per-region frame arrays:
     random (possibly page-crossing) writes across two regions, with a
     set-of-(region, page) Hashtbl as the reference dirty tracker (the
     shape of the old per-thread Hashtbl dirty sets). After every write
     the arena's counts must equal the model's; persist empties both;
     the frame arrays must serve back exactly a flat shadow buffer. *)
  QCheck.Test.make ~count:20 ~name:"dirty arena + frames agree with set model"
    QCheck.(list_of_size Gen.(int_range 1 40)
              (pair (int_bound 15) (pair (int_bound 4089) (int_bound 255))))
    (fun ops ->
      Sched.run (fun () ->
          let dev = mk_dev () in
          let k, _, _ = mk_machine dev in
          let rlen = Size.kib 64 in
          let mds =
            [| Msnap.open_region k ~name:"a" ~len:rlen ();
               Msnap.open_region k ~name:"b" ~len:rlen () |]
          in
          let shadow = [| Bytes.make rlen '\000'; Bytes.make rlen '\000' |] in
          let dirty = Hashtbl.create 64 in
          let ok = ref true in
          List.iteri
            (fun i (page, (jitter, v)) ->
              let r = i mod 2 in
              let off = min (page * 4096 + jitter) (rlen - 16) in
              let data = Bytes.make 16 (Char.chr v) in
              Msnap.write k mds.(r) ~off data;
              Bytes.blit data 0 shadow.(r) off 16;
              for p = off / 4096 to (off + 15) / 4096 do
                Hashtbl.replace dirty (r, p) ()
              done;
              let model_of r =
                Hashtbl.fold (fun (r', _) () n -> if r' = r then n + 1 else n)
                  dirty 0
              in
              ok := !ok
                    && Msnap.dirty_count k = Hashtbl.length dirty
                    && Msnap.dirty_count_of_region k mds.(0) = model_of 0
                    && Msnap.dirty_count_of_region k mds.(1) = model_of 1;
              if i mod 7 = 6 then begin
                ignore (Msnap.persist k ());
                Hashtbl.reset dirty;
                ok := !ok && Msnap.dirty_count k = 0
              end)
            ops;
          !ok
          && Bytes.equal shadow.(0) (Msnap.read k mds.(0) ~off:0 ~len:rlen)
          && Bytes.equal shadow.(1) (Msnap.read k mds.(1) ~off:0 ~len:rlen)))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "msnap"
    [
      ( "api",
        [
          tc "open/write/read" test_open_write_read;
          tc "dirty tracking" test_dirty_tracking;
          tc "persist durable" test_persist_durable;
          tc "unpersisted lost" test_unpersisted_lost;
          tc "region filter" test_region_filter;
          tc "async wait" test_async_wait;
          tc "async latency" test_async_latency_vs_sync;
          tc "persist nothing" test_persist_nothing;
          tc "bounds" test_open_bounds;
        ] );
      ( "threads",
        [
          tc "per-thread isolation" test_per_thread_isolation;
          tc "global scope" test_global_scope;
          tc "violation detected" test_property_violation_cross_process;
        ] );
      ( "cow",
        [
          tc "in-flight cow" test_cow_in_flight;
          tc "cow then persist" test_cow_then_second_persist;
          tc "no frame leak" test_no_frame_leak_after_cow;
          tc "shared-region cow" test_shared_region_cow_redirects_all_processes;
        ] );
      ( "recovery",
        [
          tc "crash during persist" test_crash_during_persist;
          tc "pointer stability" test_multi_region_pointer_stability;
          QCheck_alcotest.to_alcotest prop_persist_recover_random;
          QCheck_alcotest.to_alcotest prop_dirty_model;
        ] );
    ]
