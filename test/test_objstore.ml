module Sched = Msnap_sim.Sched
module Sync = Msnap_sim.Sync
module Size = Msnap_util.Size
module Rng = Msnap_util.Rng
module Disk = Msnap_blockdev.Disk
module Stripe = Msnap_blockdev.Stripe
module Device = Msnap_blockdev.Device
module Layout = Msnap_objstore.Layout
module Alloc = Msnap_objstore.Alloc
module Radix = Msnap_objstore.Radix
module Store = Msnap_objstore.Store

(* Run the whole suite with the data plane's ownership-rule checks on:
   the device checksums every lent slice at issue and re-verifies at
   commit/tear, so any zero-copy violation fails the tests loudly. *)
let () = Msnap_util.Slice.debug_checks := true

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let in_sim f () = Sched.run f

let mk_dev ?(mib = 16) () =
  Device.of_stripe
    (Stripe.create [ Disk.create ~name:"d0" ~size:(Size.mib mib) ();
      Disk.create ~name:"d1" ~size:(Size.mib mib) () ])

let mk_store ?mib () =
  let dev = mk_dev ?mib () in
  Store.format dev;
  (dev, Store.mount dev)

let page c = Bytes.make 4096 c

(* --- Layout --- *)

let test_layout_superblock () =
  let sb = { Layout.generation = 42; directory_block = 7; total_blocks = 100 } in
  match Layout.superblock_of_bytes (Layout.superblock_to_bytes sb) with
  | Some sb' ->
    checki "gen" 42 sb'.Layout.generation;
    checki "dir" 7 sb'.Layout.directory_block;
    checki "total" 100 sb'.Layout.total_blocks
  | None -> Alcotest.fail "roundtrip failed"

let test_layout_superblock_corrupt () =
  let b = Layout.superblock_to_bytes
      { Layout.generation = 1; directory_block = 0; total_blocks = 10 } in
  Bytes.set b 9 'X';
  checkb "detected" true (Layout.superblock_of_bytes b = None)

let test_layout_header () =
  let h =
    { Layout.obj_id = 3; obj_name = "region/db"; epoch = 17; root_block = 55;
      height = 2; size_bytes = 1 lsl 20; meta = 0xBEEF }
  in
  match Layout.header_of_bytes (Layout.header_to_bytes h) with
  | Some h' ->
    checks "name" "region/db" h'.Layout.obj_name;
    checki "epoch" 17 h'.Layout.epoch;
    checki "root" 55 h'.Layout.root_block;
    checki "height" 2 h'.Layout.height;
    checki "size" (1 lsl 20) h'.Layout.size_bytes;
    checki "meta" 0xBEEF h'.Layout.meta
  | None -> Alcotest.fail "roundtrip failed"

let test_layout_directory () =
  let entries = [ ("a", 10); ("much-longer-name", 20); ("z", 30) ] in
  let back = Layout.directory_of_bytes (Layout.directory_to_bytes entries) in
  Alcotest.(check (list (pair string int))) "roundtrip" entries back

(* --- Alloc --- *)

let test_alloc_contiguous () =
  let a = Alloc.create ~total_blocks:100 in
  let run = Alloc.alloc_run a 5 in
  checki "len" 5 (List.length run);
  let sorted = List.sort compare run in
  Alcotest.(check (list int)) "ascending contiguous" sorted run;
  (match run with
  | first :: _ ->
    checkb "contiguous" true
      (List.for_all2 (fun b i -> b = first + i) run (List.init 5 Fun.id))
  | [] -> Alcotest.fail "empty");
  List.iter (fun b -> checkb "allocated" true (Alloc.is_allocated a b)) run

let test_alloc_exhaustion () =
  let a = Alloc.create ~total_blocks:10 in
  let avail = Alloc.free_blocks a in
  ignore (Alloc.alloc_run a avail);
  checkb "out of space" true
    (try ignore (Alloc.alloc_run a 1); false with Alloc.Out_of_space -> true)

let test_alloc_deferred_free () =
  let a = Alloc.create ~total_blocks:16 in
  let run = Alloc.alloc_run a 4 in
  let before = Alloc.free_blocks a in
  Alloc.free_deferred a run;
  checki "not yet freed" before (Alloc.free_blocks a);
  Alloc.apply_deferred a;
  checki "freed" (before + 4) (Alloc.free_blocks a)

let test_alloc_fragmented_fallback () =
  let a = Alloc.create ~total_blocks:32 in
  let run = Alloc.alloc_run a 20 in
  (* Free every other block, then ask for a run bigger than any hole. *)
  let evens = List.filteri (fun i _ -> i mod 2 = 0) run in
  Alloc.free_deferred a evens;
  Alloc.apply_deferred a;
  let got = Alloc.alloc_run a 8 in
  checki "still serves scattered" 8 (List.length got)

(* --- Radix --- *)

let mem_radix () =
  (* In-memory node store for unit-testing the tree in isolation. *)
  let nodes = Hashtbl.create 16 in
  let next = ref 1 in
  let alloc n =
    List.init n (fun i -> !next + i) |> fun l ->
    next := !next + n;
    l
  in
  let read_node b = Hashtbl.find nodes b in
  let apply (r : Radix.update_result) =
    List.iter (fun (b, n) -> Hashtbl.replace nodes b n) r.Radix.node_writes
  in
  (read_node, alloc, apply)

let test_radix_lookup_empty () =
  let read_node, _, _ = mem_radix () in
  checki "hole" 0 (Radix.lookup ~read_node ~root:0 ~height:0 5)

let test_radix_insert_lookup () =
  let read_node, alloc, apply = mem_radix () in
  let r = Radix.update_batch ~read_node ~alloc ~root:0 ~height:0
      [ (0, 1000); (5, 1005); (511, 1511) ] in
  apply r;
  checki "height 1" 1 r.Radix.new_height;
  checki "k0" 1000 (Radix.lookup ~read_node ~root:r.Radix.new_root ~height:1 0);
  checki "k5" 1005 (Radix.lookup ~read_node ~root:r.Radix.new_root ~height:1 5);
  checki "k511" 1511 (Radix.lookup ~read_node ~root:r.Radix.new_root ~height:1 511);
  checki "hole" 0 (Radix.lookup ~read_node ~root:r.Radix.new_root ~height:1 7)

let test_radix_growth_preserves () =
  let read_node, alloc, apply = mem_radix () in
  let r1 = Radix.update_batch ~read_node ~alloc ~root:0 ~height:0 [ (3, 333) ] in
  apply r1;
  (* Index beyond height-1 capacity forces growth; old keys must survive. *)
  let r2 = Radix.update_batch ~read_node ~alloc ~root:r1.Radix.new_root
      ~height:r1.Radix.new_height [ (100_000, 777) ] in
  apply r2;
  checkb "grew" true (r2.Radix.new_height > r1.Radix.new_height);
  checki "old key" 333
    (Radix.lookup ~read_node ~root:r2.Radix.new_root ~height:r2.Radix.new_height 3);
  checki "new key" 777
    (Radix.lookup ~read_node ~root:r2.Radix.new_root ~height:r2.Radix.new_height 100_000)

let test_radix_cow_preserves_old_root () =
  let read_node, alloc, apply = mem_radix () in
  let r1 = Radix.update_batch ~read_node ~alloc ~root:0 ~height:0 [ (0, 100) ] in
  apply r1;
  let r2 = Radix.update_batch ~read_node ~alloc ~root:r1.Radix.new_root
      ~height:1 [ (0, 200) ] in
  apply r2;
  (* Old tree still answers with the old value: COW. *)
  checki "old epoch view" 100
    (Radix.lookup ~read_node ~root:r1.Radix.new_root ~height:1 0);
  checki "new epoch view" 200
    (Radix.lookup ~read_node ~root:r2.Radix.new_root ~height:1 0);
  checkb "old root freed" true (List.mem r1.Radix.new_root r2.Radix.freed);
  checkb "old data freed" true (List.mem 100 r2.Radix.freed)

let test_radix_iter () =
  let read_node, alloc, apply = mem_radix () in
  let updates = [ (1, 11); (600, 66); (262144, 99) ] in
  let r = Radix.update_batch ~read_node ~alloc ~root:0 ~height:0 updates in
  apply r;
  let acc = ref [] in
  Radix.iter ~read_node ~root:r.Radix.new_root ~height:r.Radix.new_height
    ~f:(fun ~index ~block -> acc := (index, block) :: !acc);
  Alcotest.(check (list (pair int int))) "all present" updates (List.rev !acc)

let prop_radix_model =
  QCheck.Test.make ~count:100 ~name:"radix agrees with assoc model"
    QCheck.(list_of_size Gen.(int_range 1 60)
              (pair (int_bound 100_000) (int_range 1 1_000_000)))
    (fun ops ->
      let read_node, alloc, apply = mem_radix () in
      let root = ref 0 and height = ref 0 in
      let model = Hashtbl.create 16 in
      (* Apply in several batches to exercise COW chains. *)
      let rec batches = function
        | [] -> ()
        | l ->
          let n = min 7 (List.length l) in
          let batch = List.filteri (fun i _ -> i < n) l in
          let rest = List.filteri (fun i _ -> i >= n) l in
          (* Last write per index wins within a batch. *)
          let r = Radix.update_batch ~read_node ~alloc ~root:!root
              ~height:!height batch in
          apply r;
          root := r.Radix.new_root;
          height := r.Radix.new_height;
          List.iter (fun (i, v) -> Hashtbl.replace model i v) batch;
          batches rest
      in
      batches ops;
      Hashtbl.fold
        (fun i v ok ->
          ok && Radix.lookup ~read_node ~root:!root ~height:!height i = v)
        model true)

(* --- Store --- *)

let test_store_create_open () =
  in_sim (fun () ->
      let _, s = mk_store () in
      let o = Store.create s ~name:"obj1" () in
      checki "epoch 0" 0 (Store.epoch o);
      checkb "open finds it" true (Store.open_obj s ~name:"obj1" <> None);
      checkb "missing is None" true (Store.open_obj s ~name:"nope" = None);
      checkb "dup create raises" true
        (try ignore (Store.create s ~name:"obj1" ()); false
         with Invalid_argument _ -> true))
    ()

let test_store_commit_read () =
  in_sim (fun () ->
      let _, s = mk_store () in
      let o = Store.create s ~name:"o" () in
      let e = Store.commit s o [ (0, page 'A'); (9, page 'B') ] in
      checki "epoch bumped" e (Store.epoch o);
      checkb "epoch > 0" true (e > 0);
      (match Store.read_block s o 0 with
      | Some b -> checkb "A" true (Bytes.for_all (fun c -> c = 'A') b)
      | None -> Alcotest.fail "missing block 0");
      (match Store.read_block s o 9 with
      | Some b -> checkb "B" true (Bytes.for_all (fun c -> c = 'B') b)
      | None -> Alcotest.fail "missing block 9");
      checkb "hole" true (Store.read_block s o 5 = None);
      checki "size tracks" (10 * 4096) (Store.size_bytes o))
    ()

let test_store_overwrite () =
  in_sim (fun () ->
      let _, s = mk_store () in
      let o = Store.create s ~name:"o" () in
      ignore (Store.commit s o [ (3, page 'X') ]);
      ignore (Store.commit s o [ (3, page 'Y') ]);
      match Store.read_block s o 3 with
      | Some b -> checkb "latest" true (Bytes.for_all (fun c -> c = 'Y') b)
      | None -> Alcotest.fail "missing")
    ()

let test_store_epochs_monotonic () =
  in_sim (fun () ->
      let _, s = mk_store () in
      let o = Store.create s ~name:"o" () in
      let e1 = Store.commit s o [ (0, page 'A') ] in
      let e2 = Store.commit s o [ (1, page 'B') ] in
      checkb "monotonic" true (e2 > e1))
    ()

let test_store_remount () =
  in_sim (fun () ->
      let dev, s = mk_store () in
      let o = Store.create s ~name:"persisted" ~meta:0x1234 () in
      ignore (Store.commit s o [ (0, page 'P'); (100, page 'Q') ]);
      (* Remount from the same device: everything must come back. *)
      let s2 = Store.mount dev in
      match Store.open_obj s2 ~name:"persisted" with
      | None -> Alcotest.fail "object lost"
      | Some o2 ->
        checki "meta" 0x1234 (Store.meta o2);
        checki "epoch" (Store.epoch o) (Store.epoch o2);
        (match Store.read_block s2 o2 100 with
        | Some b -> checkb "data" true (Bytes.for_all (fun c -> c = 'Q') b)
        | None -> Alcotest.fail "data lost"))
    ()

let test_store_delete () =
  in_sim (fun () ->
      let dev, s = mk_store () in
      let o = Store.create s ~name:"tmp" () in
      ignore (Store.commit s o [ (0, page 'T') ]);
      let free_before = Store.free_blocks s in
      Store.delete s o;
      checkb "blocks reclaimed" true (Store.free_blocks s > free_before);
      checkb "gone" true (Store.open_obj s ~name:"tmp" = None);
      let s2 = Store.mount dev in
      checkb "gone after remount" true (Store.open_obj s2 ~name:"tmp" = None))
    ()

let test_store_multiple_objects_independent () =
  in_sim (fun () ->
      let _, s = mk_store () in
      let a = Store.create s ~name:"a" () in
      let b = Store.create s ~name:"b" () in
      ignore (Store.commit s a [ (0, page 'A') ]);
      ignore (Store.commit s b [ (0, page 'B') ]);
      (match Store.read_block s a 0 with
      | Some x -> checkb "a" true (Bytes.for_all (fun c -> c = 'A') x)
      | None -> Alcotest.fail "a missing");
      match Store.read_block s b 0 with
      | Some x -> checkb "b" true (Bytes.for_all (fun c -> c = 'B') x)
      | None -> Alcotest.fail "b missing")
    ()

let test_store_async_commit () =
  in_sim (fun () ->
      let _, s = mk_store () in
      let o = Store.create s ~name:"o" () in
      let e, ticket = Store.commit_async s o [ (0, page 'Z') ] in
      checkb "not durable yet" true (Store.epoch o < e);
      Store.wait ticket;
      checkb "durable" true (Store.epoch o >= e))
    ()

let test_store_concurrent_commits_same_object () =
  in_sim (fun () ->
      let _, s = mk_store () in
      let o = Store.create s ~name:"o" () in
      let n = 16 in
      let ts =
        List.init n (fun i ->
            Sched.spawn (fun () ->
                ignore (Store.commit s o [ (i, Bytes.make 4096 (Char.chr (65 + i))) ])))
      in
      List.iter Sched.join ts;
      for i = 0 to n - 1 do
        match Store.read_block s o i with
        | Some b ->
          checkb (Printf.sprintf "block %d" i) true
            (Bytes.for_all (fun c -> c = Char.chr (65 + i)) b)
        | None -> Alcotest.fail "missing block"
      done;
      checkb "epoch advanced" true (Store.epoch o >= 1))
    ()

let test_store_group_commit_batches () =
  in_sim (fun () ->
      (* Concurrent commits to one object must not serialize into N full
         header writes each costing a disk command; with flat combining,
         total time for 16 concurrent 4 KiB commits stays well under 16x
         a single sync commit. *)
      let _, s = mk_store () in
      let o = Store.create s ~name:"o" () in
      let t0 = Sched.now () in
      ignore (Store.commit s o [ (999, page 'W') ]);
      let single = Sched.now () - t0 in
      let t1 = Sched.now () in
      let ts =
        List.init 16 (fun i ->
            Sched.spawn (fun () -> ignore (Store.commit s o [ (i, page 'X') ])))
      in
      List.iter Sched.join ts;
      let batch16 = Sched.now () - t1 in
      checkb "flat combining pays off" true (batch16 < 8 * single))
    ()

let test_store_crash_mid_commit () =
  in_sim (fun () ->
      let dev, s = mk_store () in
      let o = Store.create s ~name:"o" () in
      ignore (Store.commit s o [ (0, page 'G') ]);
      let e1 = Store.epoch o in
      (* Crash while the second commit's IO is in flight. *)
      let w =
        Sched.spawn (fun () ->
            try ignore (Store.commit s o [ (0, page 'H'); (1, page 'I') ])
            with Disk.Powered_off -> ())
      in
      Sched.delay 20_000;
      Device.fail_power dev ~torn_seed:11;
      Sched.join w;
      Device.restore_power dev;
      let s2 = Store.mount dev in
      match Store.open_obj s2 ~name:"o" with
      | None -> Alcotest.fail "object lost"
      | Some o2 ->
        (* Either the old epoch with old data, or the new epoch with all
           new data — never a mix. *)
        let b0 = Store.read_block s2 o2 0 in
        if Store.epoch o2 = e1 then begin
          match b0 with
          | Some b -> checkb "old data intact" true (Bytes.for_all (fun c -> c = 'G') b)
          | None -> Alcotest.fail "old data lost"
        end
        else begin
          (match b0 with
          | Some b -> checkb "new b0" true (Bytes.for_all (fun c -> c = 'H') b)
          | None -> Alcotest.fail "new data missing");
          match Store.read_block s2 o2 1 with
          | Some b -> checkb "new b1" true (Bytes.for_all (fun c -> c = 'I') b)
          | None -> Alcotest.fail "new data missing"
        end)
    ()

let prop_store_crash_any_point =
  (* Run a stream of commits, crash at a random time, remount, and verify
     the recovered object equals some prefix of committed states. *)
  QCheck.Test.make ~count:25 ~name:"crash anywhere recovers a committed epoch"
    QCheck.(pair (int_bound 1_000_000) (int_range 1 12))
    (fun (crash_offset, ncommits) ->
      Sched.run (fun () ->
          let dev, s =
            let dev = mk_dev () in
            Store.format dev;
            (dev, Store.mount dev)
          in
          let o = Store.create s ~name:"o" () in
          (* Model: epoch -> expected contents of block 0. *)
          let committed = Hashtbl.create 8 in
          Hashtbl.replace committed 0 None;
          let w =
            Sched.spawn (fun () ->
                try
                  for i = 1 to ncommits do
                    let c = Char.chr (64 + i) in
                    let e = Store.commit s o [ (0, Bytes.make 4096 c) ] in
                    Hashtbl.replace committed e (Some c)
                  done
                with Disk.Powered_off -> ())
          in
          Sched.delay (10_000 + crash_offset);
          Device.fail_power dev ~torn_seed:crash_offset;
          Sched.join w;
          Device.restore_power dev;
          let s2 = Store.mount dev in
          match Store.open_obj s2 ~name:"o" with
          | None -> false
          | Some o2 -> (
            let e = Store.epoch o2 in
            match Hashtbl.find_opt committed e with
            | None ->
              (* The epoch on disk must be one the writer initiated; with
                 group commit, epochs may skip but must be <= last issued. *)
              e <= ncommits
              &&
              (match Store.read_block s2 o2 0 with
              | Some b ->
                let c = Bytes.get b 0 in
                c >= 'A' && c <= Char.chr (64 + ncommits)
                && Bytes.for_all (fun x -> x = c) b
              | None -> false)
            | Some None -> Store.read_block s2 o2 0 = None
            | Some (Some c) -> (
              match Store.read_block s2 o2 0 with
              | Some b -> Bytes.for_all (fun x -> x = c) b
              | None -> false))))

let test_store_set_meta_durable () =
  in_sim (fun () ->
      let dev, s = mk_store () in
      let o = Store.create s ~name:"o" ~meta:7 () in
      checki "initial meta" 7 (Store.meta o);
      Store.set_meta s o 99;
      let s2 = Store.mount dev in
      match Store.open_obj s2 ~name:"o" with
      | Some o2 -> checki "meta durable" 99 (Store.meta o2)
      | None -> Alcotest.fail "object lost")
    ()

let test_store_list_objects () =
  in_sim (fun () ->
      let _, s = mk_store () in
      ignore (Store.create s ~name:"b" ());
      ignore (Store.create s ~name:"a" ());
      ignore (Store.create s ~name:"c" ());
      Alcotest.(check (list string)) "sorted names" [ "a"; "b"; "c" ]
        (Store.list_objects s))
    ()

let test_store_grow_persists_size () =
  in_sim (fun () ->
      let dev, s = mk_store () in
      let o = Store.create s ~name:"o" () in
      Store.grow s o ~size_bytes:123_456;
      (* Size is folded into the next commit's header. *)
      ignore (Store.commit s o [ (0, page 'z') ]);
      let s2 = Store.mount dev in
      match Store.open_obj s2 ~name:"o" with
      | Some o2 -> checki "size persisted" 123_456 (Store.size_bytes o2)
      | None -> Alcotest.fail "object lost")
    ()

let test_store_no_superblock_is_corrupt () =
  in_sim (fun () ->
      let dev = mk_dev () in
      checkb "corrupt" true
        (try ignore (Store.mount dev); false with Store.Corrupt _ -> true))
    ()

let test_store_space_reuse () =
  in_sim (fun () ->
      (* Repeated overwrites must not leak space: free count returns to a
         steady state. *)
      let _, s = mk_store ~mib:4 () in
      let o = Store.create s ~name:"o" () in
      ignore (Store.commit s o [ (0, page 'A') ]);
      let free1 = Store.free_blocks s in
      for _ = 1 to 50 do
        ignore (Store.commit s o [ (0, page 'B') ])
      done;
      let free2 = Store.free_blocks s in
      checki "no leak" free1 free2)
    ()

let test_store_large_sparse_object () =
  in_sim (fun () ->
      let _, s = mk_store () in
      let o = Store.create s ~name:"sparse" () in
      (* Far index: forces a 3-level tree. *)
      let idx = 300_000 in
      ignore (Store.commit s o [ (idx, page 'S') ]);
      (match Store.read_block s o idx with
      | Some b -> checkb "data" true (Bytes.for_all (fun c -> c = 'S') b)
      | None -> Alcotest.fail "missing");
      checkb "holes stay holes" true (Store.read_block s o (idx - 1) = None))
    ()

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "objstore"
    [
      ( "layout",
        [
          tc "superblock roundtrip" test_layout_superblock;
          tc "superblock corruption" test_layout_superblock_corrupt;
          tc "header roundtrip" test_layout_header;
          tc "directory roundtrip" test_layout_directory;
        ] );
      ( "alloc",
        [
          tc "contiguous runs" test_alloc_contiguous;
          tc "exhaustion" test_alloc_exhaustion;
          tc "deferred free" test_alloc_deferred_free;
          tc "fragmented fallback" test_alloc_fragmented_fallback;
        ] );
      ( "radix",
        [
          tc "lookup empty" test_radix_lookup_empty;
          tc "insert/lookup" test_radix_insert_lookup;
          tc "growth preserves" test_radix_growth_preserves;
          tc "cow preserves old root" test_radix_cow_preserves_old_root;
          tc "iter" test_radix_iter;
          QCheck_alcotest.to_alcotest prop_radix_model;
        ] );
      ( "store",
        [
          tc "create/open" test_store_create_open;
          tc "commit/read" test_store_commit_read;
          tc "overwrite" test_store_overwrite;
          tc "epochs monotonic" test_store_epochs_monotonic;
          tc "remount" test_store_remount;
          tc "delete" test_store_delete;
          tc "objects independent" test_store_multiple_objects_independent;
          tc "async commit" test_store_async_commit;
          tc "concurrent same-object" test_store_concurrent_commits_same_object;
          tc "group commit" test_store_group_commit_batches;
          tc "crash mid-commit" test_store_crash_mid_commit;
          tc "mount without format" test_store_no_superblock_is_corrupt;
          tc "set_meta durable" test_store_set_meta_durable;
          tc "list objects" test_store_list_objects;
          tc "grow persists size" test_store_grow_persists_size;
          tc "space reuse" test_store_space_reuse;
          tc "sparse object" test_store_large_sparse_object;
          QCheck_alcotest.to_alcotest prop_store_crash_any_point;
        ] );
    ]
