module Rng = Msnap_util.Rng
module Dist = Msnap_util.Dist
module Histogram = Msnap_util.Histogram
module Bits = Msnap_util.Bits
module Tbl = Msnap_util.Tbl
module Size = Msnap_util.Size

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_matters () =
  let a = Rng.create 1 and b = Rng.create 2 in
  checkb "different seed, different value" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    checkb "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_in () =
  let rng = Rng.create 7 in
  for _ = 1 to 1_000 do
    let v = Rng.int_in rng (-5) 5 in
    checkb "in range" true (v >= -5 && v <= 5)
  done

let test_rng_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 10_000 do
    let f = Rng.float rng in
    checkb "[0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  checkb "split streams differ" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_uniformity () =
  (* Chi-square-ish sanity: 16 buckets over 64k draws each ~4096. *)
  let rng = Rng.create 99 in
  let buckets = Array.make 16 0 in
  for _ = 1 to 65536 do
    let v = Rng.int rng 16 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter (fun c -> checkb "bucket near uniform" true (c > 3600 && c < 4600)) buckets

let test_rng_shuffle_permutes () =
  let rng = Rng.create 3 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 100 Fun.id) sorted

let test_rng_bytes_len () =
  let rng = Rng.create 1 in
  checki "length" 33 (Bytes.length (Rng.bytes rng 33))

(* The unboxed splitmix64 (Rng, Wire.checksum) must be bit-exact with
   the boxed Int64 formulation it replaced: RNG draw sequences and
   on-media checksum bytes are simulated values. This is the Int64
   reference. *)
module Ref64 = struct
  let mix z =
    let open Int64 in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int seed }

  let bits64 t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    mix t.state

  let split t = { state = bits64 t }
  let int t bound = Int64.to_int (bits64 t) land max_int mod bound
  let int_in t lo hi = lo + int t (hi - lo + 1)

  let float t =
    Int64.to_float (Int64.shift_right_logical (bits64 t) 11) *. 0x1p-53

  let bool t = Int64.logand (bits64 t) 1L = 1L

  let checksum ?(init = 0x5DEECE66D) b ~pos ~len =
    let h = ref (mix (Int64.of_int init)) in
    let word = ref 0 in
    let full = len / 8 in
    for i = 0 to full - 1 do
      h := mix (Int64.add !h (Bytes.get_int64_le b (pos + (i * 8))))
    done;
    for i = pos + (full * 8) to pos + len - 1 do
      word := (!word lsl 8) lor Char.code (Bytes.get b i)
    done;
    if len mod 8 <> 0 then h := mix (Int64.add !h (Int64.of_int !word));
    Int64.to_int (mix (Int64.add !h (Int64.of_int len))) land max_int
end

let prop_rng_differential =
  QCheck.Test.make ~count:200 ~name:"rng matches Int64 reference"
    QCheck.(small_int)
    (fun seed ->
      (* Exercise negative seeds too. *)
      let seed = if seed mod 3 = 0 then -seed * 7919 else seed in
      let a = Rng.create seed and r = Ref64.create seed in
      let ok = ref true in
      for i = 1 to 200 do
        (match i mod 5 with
        | 0 -> ok := !ok && Rng.bits64 a = Ref64.bits64 r
        | 1 -> ok := !ok && Rng.int a (1 + i) = Ref64.int r (1 + i)
        | 2 -> ok := !ok && Rng.float a = Ref64.float r
        | 3 -> ok := !ok && Rng.bool a = Ref64.bool r
        | _ -> ok := !ok && Rng.int_in a (-3) 999 = Ref64.int_in r (-3) 999)
      done;
      (* split: both the child stream and the advanced parent agree. *)
      let a2 = Rng.split a and r2 = Ref64.split r in
      for _ = 1 to 50 do
        ok := !ok && Rng.bits64 a2 = Ref64.bits64 r2;
        ok := !ok && Rng.bits64 a = Ref64.bits64 r
      done;
      (* bytes/string draw per-byte like [int _ 256]. *)
      let s = Rng.string a 32 in
      for i = 0 to 31 do
        ok := !ok && Char.code s.[i] = Ref64.int r 256
      done;
      !ok)

let prop_checksum_differential =
  QCheck.Test.make ~count:500 ~name:"wire checksum matches Int64 reference"
    QCheck.(pair (bytes_of_size Gen.(int_range 0 600)) small_int)
    (fun (b, salt) ->
      let pos = salt mod 8 mod (Bytes.length b + 1) in
      let len = Bytes.length b - pos in
      let init = if salt mod 3 = 0 then salt * 7919 land max_int else 0x5DEECE66D in
      Msnap_util.Wire.checksum ~init b ~pos ~len
      = Ref64.checksum ~init b ~pos ~len)

let test_checksum_long () =
  (* Cover multi-page lengths (beyond qcheck's small payloads) and
     chained inits, as the WAL uses them. *)
  let rng = Rng.create 4242 in
  let b = Rng.bytes rng 16384 in
  let prev = ref 0x5DEECE66D in
  List.iter
    (fun len ->
      let a = Msnap_util.Wire.checksum ~init:!prev b ~pos:3 ~len in
      let r = Ref64.checksum ~init:!prev b ~pos:3 ~len in
      checkb "chained checksum" true (a = r);
      prev := a)
    [ 4096; 4097; 8192; 12288; 16381 ]

let test_rng_alloc_free () =
  let rng = Rng.create 7 in
  ignore (Rng.int rng 10);
  let m0 = Gc.minor_words () in
  for _ = 1 to 1000 do
    ignore (Rng.int rng 1000)
  done;
  checkb "Rng.int allocates nothing" true (Gc.minor_words () -. m0 = 0.0)

(* --- Keyfmt / Intern --- *)

module Keyfmt = Msnap_util.Keyfmt
module Intern = Msnap_util.Intern

let prop_keyfmt_differential =
  (* The full driver key grammar, against its sprintf reference. *)
  QCheck.Test.make ~count:500 ~name:"keyfmt matches sprintf"
    QCheck.(quad small_nat small_nat small_nat small_nat)
    (fun (a, b, c, d) ->
      let render f =
        let t = Keyfmt.scratch () in
        f t;
        Keyfmt.str t
      in
      render (fun t -> Keyfmt.dec t ~width:20 a) = Printf.sprintf "%020d" a
      && render (fun t ->
             Keyfmt.char t 'w';
             Keyfmt.dec t ~width:4 a;
             Keyfmt.lit t "-d";
             Keyfmt.dec t ~width:2 b;
             Keyfmt.lit t "-c";
             Keyfmt.dec t ~width:5 c)
         = Printf.sprintf "w%04d-d%02d-c%05d" a b c
      && render (fun t ->
             Keyfmt.char t 'o';
             Keyfmt.dec t ~width:9 d;
             Keyfmt.lit t "-l";
             Keyfmt.dec t ~width:2 b)
         = Printf.sprintf "o%09d-l%02d" d b
      && render (fun t ->
             Keyfmt.lit t "item=";
             Keyfmt.dec t ~width:0 a;
             Keyfmt.lit t " qty=";
             Keyfmt.dec t ~width:0 b)
         = Printf.sprintf "item=%d qty=%d" a b
      && render (fun t ->
             Keyfmt.lit t "sub";
             Keyfmt.dec t ~width:8 c)
         = Printf.sprintf "sub%08d" c)

let prop_keyfmt_negative =
  QCheck.Test.make ~count:200 ~name:"keyfmt dec handles negatives"
    QCheck.(pair int (int_range 0 12))
    (fun (v, width) ->
      let t = Keyfmt.scratch () in
      Keyfmt.dec t ~width v;
      Keyfmt.str t = Printf.sprintf "%0*d" width v)

let test_keyfmt_table () =
  let t = Keyfmt.table 100 (fun b i -> Keyfmt.dec b ~width:20 i) in
  for i = 0 to 99 do
    check Alcotest.string "table entry" (Printf.sprintf "%020d" i) t.(i)
  done

let prop_intern_content_identity =
  QCheck.Test.make ~count:200 ~name:"intern fill content identity"
    QCheck.(pair (int_range 0 300) (int_range 0 255))
    (fun (n, code) ->
      let c = Char.chr code in
      let a = Intern.fill n c in
      (* content equal to the String.make it replaces, and the repeat
         call returns the same physical string (no new allocation). *)
      a = String.make n c && Intern.fill n c == a)

let test_intern_memo () =
  let calls = ref 0 in
  let f =
    Intern.memo ~max:10 (fun i ->
        incr calls;
        string_of_int (i * i))
  in
  check Alcotest.string "memo value" "49" (f 7);
  check Alcotest.string "memo repeat" "49" (f 7);
  checki "rendered once" 1 !calls;
  checkb "cached physical identity" true (f 7 == f 7);
  (* out of range falls through, uncached *)
  check Alcotest.string "out of range" "144" (f 12);
  check Alcotest.string "out of range repeat" "144" (f 12);
  checki "uncached calls" 3 !calls

(* --- Dist --- *)

let test_dist_domains () =
  let rng = Rng.create 21 in
  List.iter
    (fun d ->
      for _ = 1 to 5_000 do
        let v = Dist.sample d rng in
        checkb "in domain" true (v >= 0 && v < Dist.domain d)
      done)
    [ Dist.uniform 1000; Dist.zipf 1000; Dist.pareto 1000; Dist.latest 1000 ]

let test_zipf_skew () =
  (* Under theta=0.99, the hottest key should dominate a uniform one. *)
  let rng = Rng.create 33 in
  let d = Dist.zipf 10_000 in
  let zero = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Dist.sample d rng = 0 then incr zero
  done;
  checkb "head heavily hit" true (!zero > n / 100)

let test_pareto_skew () =
  let rng = Rng.create 34 in
  let d = Dist.pareto 10_000 in
  let low = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Dist.sample d rng < 2_000 then incr low
  done;
  checkb "mass concentrated low" true (!low > n / 2)

let test_latest_skew () =
  let rng = Rng.create 35 in
  let d = Dist.latest 10_000 in
  let high = ref 0 in
  for _ = 1 to 20_000 do
    if Dist.sample d rng > 8_000 then incr high
  done;
  checkb "mass concentrated high" true (!high > 10_000)

(* --- Histogram --- *)

let test_hist_exact_small () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1; 2; 3; 4; 5 ];
  checki "count" 5 (Histogram.count h);
  check Alcotest.(float 0.001) "mean" 3.0 (Histogram.mean h);
  checki "max" 5 (Histogram.max_value h);
  checki "min" 1 (Histogram.min_value h);
  checki "p50" 3 (Histogram.percentile h 50.0)

let test_hist_p99 () =
  let h = Histogram.create () in
  for i = 1 to 1000 do
    Histogram.add h i
  done;
  let p99 = Histogram.percentile h 99.0 in
  checkb "p99 ~990" true (p99 >= 985 && p99 <= 1000)

let test_hist_relative_error () =
  let h = Histogram.create () in
  Histogram.add h 1_000_000;
  let p = Histogram.percentile h 100.0 in
  checkb "bounded error" true (abs (p - 1_000_000) <= 1_000_000 / 16)

let test_hist_empty () =
  let h = Histogram.create () in
  checki "count" 0 (Histogram.count h);
  checki "p99 empty" 0 (Histogram.percentile h 99.0);
  check Alcotest.(float 0.0) "mean" 0.0 (Histogram.mean h)

let test_hist_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  Histogram.add a 10;
  Histogram.add b 20;
  Histogram.merge a b;
  checki "count" 2 (Histogram.count a);
  checki "max" 20 (Histogram.max_value a)

let test_hist_clear () =
  let h = Histogram.create () in
  Histogram.add h 5;
  Histogram.clear h;
  checki "count" 0 (Histogram.count h)

let test_hist_negative_clamped () =
  let h = Histogram.create () in
  Histogram.add h (-5);
  checki "clamped" 0 (Histogram.min_value h)

let prop_hist_percentile_monotone =
  QCheck.Test.make ~count:200 ~name:"percentile monotone in p"
    QCheck.(list_of_size Gen.(int_range 1 100) (int_bound 1_000_000))
    (fun samples ->
      QCheck.assume (samples <> []);
      let h = Histogram.create () in
      List.iter (Histogram.add h) samples;
      let prev = ref 0 in
      List.for_all
        (fun p ->
          let v = Histogram.percentile h (float_of_int p) in
          let ok = v >= !prev in
          prev := v;
          ok)
        [ 1; 10; 25; 50; 75; 90; 99; 100 ])

let prop_hist_percentile_bounds =
  QCheck.Test.make ~count:200 ~name:"p100 within bucket error of max"
    QCheck.(list_of_size Gen.(int_range 1 50) (int_bound 10_000_000))
    (fun samples ->
      QCheck.assume (samples <> []);
      let h = Histogram.create () in
      List.iter (Histogram.add h) samples;
      let mx = List.fold_left max 0 samples in
      Histogram.percentile h 100.0 <= mx && Histogram.max_value h = mx)

(* --- Bits --- *)

let test_bits_clz () =
  checki "clz 1" 62 (Bits.clz 1);
  checki "clz 0" 63 (Bits.clz 0);
  checki "clz 2^62" 0 (Bits.clz (1 lsl 62));
  checki "clz 255" 55 (Bits.clz 255)

let test_bits_ceil_log2 () =
  checki "1" 0 (Bits.ceil_log2 1);
  checki "2" 1 (Bits.ceil_log2 2);
  checki "3" 2 (Bits.ceil_log2 3);
  checki "4" 2 (Bits.ceil_log2 4);
  checki "1025" 11 (Bits.ceil_log2 1025)

let test_bits_round () =
  checki "up" 8192 (Bits.round_up 4097 4096);
  checki "up exact" 4096 (Bits.round_up 4096 4096);
  checki "down" 4096 (Bits.round_down 8191 4096);
  checkb "pow2" true (Bits.is_pow2 4096);
  checkb "not pow2" false (Bits.is_pow2 4097)

let prop_clz_consistent =
  QCheck.Test.make ~count:500 ~name:"clz agrees with float log"
    QCheck.(int_range 1 max_int)
    (fun v ->
      let msb = 62 - Bits.clz v in
      v >= 1 lsl msb && (msb >= 61 || v < 1 lsl (msb + 1)))

(* --- Tbl / Size --- *)

let test_tbl_render () =
  let t = Tbl.create ~title:"T" ~headers:[ "a"; "bb" ] in
  Tbl.row t [ "x"; "1" ];
  Tbl.rule t;
  Tbl.row t [ "y" ];
  Tbl.note t "n";
  let s = Tbl.render t in
  checkb "has title" true (String.length s > 0 && String.sub s 0 1 = "T");
  checkb "has note" true
    (String.length s > 10
    && (let rec find i =
          i + 5 <= String.length s
          && (String.sub s i 5 = "note:" || find (i + 1))
        in
        find 0))

let test_fmt_helpers () =
  check Alcotest.string "us" "51.4" (Tbl.us 51_400);
  check Alcotest.string "us_short small" "156" (Tbl.us_short 156_000);
  check Alcotest.string "us_short K" "1.9K" (Tbl.us_short 1_900_000);
  check Alcotest.string "kcount" "63.1 K" (Tbl.kcount 63_100);
  check Alcotest.string "pct" "29.15%" (Tbl.pct 29.15)

let test_size () =
  checki "kib" 4096 (Size.kib 4);
  checki "mib" 1048576 (Size.mib 1);
  check Alcotest.string "pp KiB" "4 KiB" (Size.pp 4096);
  check Alcotest.string "pp MiB" "1 MiB" (Size.pp (Size.mib 1));
  check Alcotest.string "pp B" "100 B" (Size.pp 100)

(* --- Itab / Iring / Fvec: flat hot-path structures --- *)

module Itab = Msnap_util.Itab
module Iring = Msnap_util.Iring
module Fvec = Msnap_util.Fvec

let test_itab_basics () =
  let t = Itab.create ~absent:(-1) () in
  checki "miss returns sentinel" (-1) (Itab.find t 5);
  checkb "not mem" false (Itab.mem t 5);
  Itab.set t 5 50;
  Itab.set t 0 7;
  checki "find" 50 (Itab.find t 5);
  checki "find key 0" 7 (Itab.find t 0);
  checki "length" 2 (Itab.length t);
  Itab.set t 5 51;
  checki "overwrite keeps length" 2 (Itab.length t);
  checki "overwritten" 51 (Itab.find t 5);
  Itab.remove t 5;
  checkb "removed" false (Itab.mem t 5);
  checki "length after remove" 1 (Itab.length t);
  Itab.remove t 5;
  checki "double remove harmless" 1 (Itab.length t);
  Itab.clear t;
  checki "cleared" 0 (Itab.length t);
  checki "find after clear" (-1) (Itab.find t 0)

let test_itab_slots () =
  let t = Itab.create ~absent:(-1) () in
  Itab.set t 9 90;
  let s = Itab.slot t 9 in
  checkb "slot found" true (s >= 0);
  checki "slot_value" 90 (Itab.slot_value t s);
  Itab.set_slot t s 91;
  checki "set_slot visible via find" 91 (Itab.find t 9);
  checki "absent slot" (-1) (Itab.slot t 10)

let test_itab_growth_and_tombstones () =
  (* Many insert/remove cycles over a growing key range: exercises
     rehash-on-grow and tombstone reuse in the open-addressed probe
     sequence. *)
  let t = Itab.create ~initial:4 ~absent:(-1) () in
  for k = 0 to 999 do
    Itab.set t k (k * 3)
  done;
  checki "grew to 1000" 1000 (Itab.length t);
  for k = 0 to 999 do
    if k mod 2 = 0 then Itab.remove t k
  done;
  checki "half removed" 500 (Itab.length t);
  for k = 0 to 999 do
    checki "survivors intact" (if k mod 2 = 0 then -1 else k * 3) (Itab.find t k)
  done;
  (* Re-insert through the tombstones. *)
  for k = 0 to 999 do
    Itab.set t k (k + 1)
  done;
  checki "refilled" 1000 (Itab.length t);
  let seen = ref 0 in
  Itab.iter (fun k v -> incr seen; checki "iter pair" (k + 1) v) t;
  checki "iter visits all" 1000 !seen

let prop_itab_model =
  (* Differential: random set/remove/clear sequences against
     (int, int) Hashtbl — contents and length must always agree. *)
  QCheck.Test.make ~count:300 ~name:"itab agrees with Hashtbl model"
    QCheck.(list_of_size Gen.(int_range 1 120)
              (pair (int_bound 9) (pair (int_bound 48) (int_bound 1000))))
    (fun ops ->
      let t = Itab.create ~initial:2 ~absent:(-1) () in
      let model : (int, int) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (kind, (key, v)) ->
          match kind with
          | 0 | 1 | 2 | 3 | 4 ->
            Itab.set t key v;
            Hashtbl.replace model key v
          | 5 | 6 | 7 ->
            Itab.remove t key;
            Hashtbl.remove model key
          | 8 ->
            ignore (Itab.find t key);
            ignore (Itab.mem t key)
          | _ ->
            Itab.clear t;
            Hashtbl.reset model)
        ops;
      Itab.length t = Hashtbl.length model
      && List.for_all
           (fun key ->
             Itab.mem t key = Hashtbl.mem model key
             && Itab.find t key
                = (match Hashtbl.find_opt model key with
                  | Some v -> v
                  | None -> -1))
           (List.init 49 Fun.id))

let test_iring_fifo () =
  let r = Iring.create ~initial:2 () in
  checkb "empty" true (Iring.is_empty r);
  checki "pop empty" (-1) (Iring.pop r);
  for i = 1 to 10 do
    Iring.push r i
  done;
  checki "length" 10 (Iring.length r);
  for i = 1 to 10 do
    checki "FIFO order" i (Iring.pop r)
  done;
  checkb "drained" true (Iring.is_empty r);
  Iring.push r 42;
  Iring.clear r;
  checkb "cleared" true (Iring.is_empty r);
  checki "pop after clear" (-1) (Iring.pop r)

let prop_iring_model =
  (* Differential: random push/pop sequences against int Queue. The ring
     grows while wrapped, so interleavings matter. *)
  QCheck.Test.make ~count:300 ~name:"iring agrees with Queue model"
    QCheck.(list_of_size Gen.(int_range 1 200) (int_bound 20))
    (fun ops ->
      let r = Iring.create ~initial:2 () in
      let q : int Queue.t = Queue.create () in
      List.for_all
        (fun v ->
          if v < 14 then begin
            Iring.push r v;
            Queue.push v q;
            true
          end
          else
            let expect = if Queue.is_empty q then -1 else Queue.pop q in
            Iring.pop r = expect && Iring.length r = Queue.length q)
        ops
      && Iring.length r = Queue.length q)

let test_fvec_basics () =
  let v : int Fvec.t = Fvec.create () in
  checkb "empty" true (Fvec.is_empty v);
  for i = 0 to 9 do
    Fvec.push v i
  done;
  checki "length" 10 (Fvec.length v);
  checki "get" 7 (Fvec.get v 7);
  Fvec.set v 7 70;
  checki "set" 70 (Fvec.get v 7);
  checki "pop" 9 (Fvec.pop v);
  checki "pop shrinks" 9 (Fvec.length v);
  checkb "exists" true (Fvec.exists (fun x -> x = 70) v);
  checkb "not exists" false (Fvec.exists (fun x -> x = 9) v);
  let sum = ref 0 in
  Fvec.iter (fun x -> sum := !sum + x) v;
  checki "iter sum" (0 + 1 + 2 + 3 + 4 + 5 + 6 + 70 + 8) !sum;
  Fvec.clear v;
  checki "cleared" 0 (Fvec.length v);
  Fvec.push v 1;
  checki "reusable after clear" 1 (Fvec.length v);
  Fvec.reset v;
  checki "reset" 0 (Fvec.length v)

let test_fvec_swap_remove () =
  let v : int Fvec.t = Fvec.create () in
  List.iter (Fvec.push v) [ 10; 11; 12; 13 ];
  Fvec.swap_remove v 1; (* last element moves into slot 1 *)
  Alcotest.(check (list int)) "swap" [ 10; 13; 12 ] (Fvec.to_list v);
  Fvec.swap_remove v 2; (* removing the last is a plain pop *)
  Alcotest.(check (list int)) "remove last" [ 10; 13 ] (Fvec.to_list v)

let test_fvec_remove_at () =
  let v : int Fvec.t = Fvec.create () in
  List.iter (Fvec.push v) [ 10; 11; 12; 13 ];
  Fvec.remove_at v 1;
  Alcotest.(check (list int)) "order preserved" [ 10; 12; 13 ] (Fvec.to_list v);
  Fvec.remove_at v 2;
  Alcotest.(check (list int)) "remove last" [ 10; 12 ] (Fvec.to_list v);
  Fvec.remove_at v 0;
  Alcotest.(check (list int)) "remove head" [ 12 ] (Fvec.to_list v)

let test_fvec_index_phys () =
  let v : bytes Fvec.t = Fvec.create () in
  let a = Bytes.of_string "a" and b = Bytes.of_string "a" in
  Fvec.push v a;
  Fvec.push v b;
  checki "finds by identity" 0 (Fvec.index_phys v a);
  checki "structural equal but distinct" 1 (Fvec.index_phys v b);
  checki "absent" (-1) (Fvec.index_phys v (Bytes.of_string "a"))

let prop_fvec_remove_model =
  (* Differential: random push/remove_at/swap_remove/pop against a plain
     list model (remove_at must keep order; swap_remove moves the tail
     element into the hole). *)
  QCheck.Test.make ~count:300 ~name:"fvec agrees with list model"
    QCheck.(list_of_size Gen.(int_range 1 150)
              (pair (int_bound 9) (int_bound 1000)))
    (fun ops ->
      let v : int Fvec.t = Fvec.create () in
      let model = ref [] in
      let remove_nth i l = List.filteri (fun j _ -> j <> i) l in
      List.iter
        (fun (kind, x) ->
          let n = Fvec.length v in
          match kind with
          | 0 | 1 | 2 | 3 | 4 ->
            Fvec.push v x;
            model := !model @ [ x ]
          | 5 | 6 when n > 0 ->
            let i = x mod n in
            Fvec.remove_at v i;
            model := remove_nth i !model
          | 7 when n > 0 ->
            let i = x mod n in
            Fvec.swap_remove v i;
            let last = List.nth !model (n - 1) in
            model :=
              remove_nth (n - 1) (List.mapi (fun j y -> if j = i then last else y) !model)
          | 8 when n > 0 ->
            let got = Fvec.pop v in
            let expect = List.nth !model (n - 1) in
            if got <> expect then failwith "pop mismatch";
            model := remove_nth (n - 1) !model
          | _ -> ())
        ops;
      Fvec.to_list v = !model)

(* --- Slice --- *)

module Slice = Msnap_util.Slice

let test_slice_windows () =
  let b = Bytes.of_string "abcdefgh" in
  let s = Slice.make b ~pos:2 ~len:4 in
  checki "length" 4 (Slice.length s);
  check Alcotest.string "contents" "cdef" (Slice.to_string s);
  let t = Slice.sub s ~pos:1 ~len:2 in
  check Alcotest.string "sub" "de" (Slice.to_string t);
  (* Windows alias the backing buffer, in both directions. *)
  Bytes.set b 3 'X';
  check Alcotest.string "aliases parent" "Xe" (Slice.to_string (Slice.sub s ~pos:1 ~len:2));
  Slice.fill t 'z';
  check Alcotest.string "mutation visible in backing" "abczzfgh" (Bytes.to_string b);
  let raised = try ignore (Slice.make b ~pos:6 ~len:4); false with Invalid_argument _ -> true in
  checkb "bounds checked" true raised

let test_slice_blits () =
  let b = Bytes.of_string "0123456789" in
  let s = Slice.make b ~pos:2 ~len:6 in
  let dst = Bytes.make 4 '.' in
  Slice.blit_to_bytes s ~src_pos:1 dst ~dst_pos:0 ~len:4;
  check Alcotest.string "blit out" "3456" (Bytes.to_string dst);
  Slice.blit_from_bytes (Bytes.of_string "AB") ~src_pos:0 s ~dst_pos:2 ~len:2;
  check Alcotest.string "blit in" "0123AB6789" (Bytes.to_string b);
  check Alcotest.string "through window" "23AB67" (Slice.to_string s)

let test_slice_ownership () =
  let b = Bytes.of_string "payload!" in
  let s = Slice.of_bytes b in
  Slice.debug_checks := true;
  Fun.protect ~finally:(fun () -> Slice.debug_checks := false) (fun () ->
      let ck = Slice.checksum s in
      Slice.borrow s;
      checki "borrow count" 1 (Slice.borrows s);
      let raised = try Slice.fill s 'x'; false with Slice.Borrowed _ -> true in
      checkb "mutation while lent raises" true raised;
      checkb "bytes unchanged" true (Bytes.to_string b = "payload!");
      Slice.release s;
      checki "released" 0 (Slice.borrows s);
      Slice.fill s 'x';
      checkb "mutable after release" true (Bytes.to_string b = "xxxxxxxx");
      checkb "checksum tracks content" true (Slice.checksum s <> ck))

let test_slice_of_string () =
  (* Zero-copy string view: readable, never mutated by the IO stack. *)
  let s = Slice.of_string "hello" in
  check Alcotest.string "view" "hello" (Slice.to_string s);
  checki "len" 5 (Slice.length s)

(* --- Pool --- *)

module Pool = Msnap_util.Pool

(* Run [f] with pool state of this domain reset around it and the debug
   checks pinned to [debug]. *)
let with_pool ?(debug = false) f =
  Pool.clear ();
  let saved = !Pool.debug_checks in
  Pool.debug_checks := debug;
  Fun.protect
    ~finally:(fun () ->
      Pool.debug_checks := saved;
      Pool.clear ())
    f

let test_pool_reuse_and_stats () =
  with_pool (fun () ->
      let n = 3 * 4096 in
      let a = Pool.alloc n in
      let b = Pool.alloc n in
      checki "sized" n (Bytes.length a);
      Pool.recycle a;
      let c = Pool.alloc n in
      checkb "hit returns the parked buffer" true (c == a);
      let st = List.find (fun s -> s.Pool.cs_size = n) (Pool.stats ()) in
      checki "misses" 2 st.Pool.cs_misses;
      checki "hits" 1 st.Pool.cs_hits;
      checki "recycles" 1 st.Pool.cs_recycles;
      checki "outstanding" 2 st.Pool.cs_outstanding;
      checki "retained" 0 st.Pool.cs_retained;
      Pool.recycle b;
      Pool.recycle c;
      let t = Pool.totals () in
      checki "none outstanding" 0 t.Pool.t_outstanding;
      checki "retained bytes" (2 * n) t.Pool.t_retained_bytes)

let test_pool_small_not_pooled () =
  with_pool (fun () ->
      let a = Pool.alloc 64 in
      Pool.recycle a;
      let b = Pool.alloc 64 in
      checkb "small buffers are plain allocations" true (a != b);
      checki "no class created" 0 (List.length (Pool.stats ())))

let test_pool_alloc_zeroed () =
  with_pool (fun () ->
      let all_zero b = Bytes.for_all (fun c -> c = '\000') b in
      let a = Pool.alloc 8192 in
      Bytes.fill a 0 8192 'x';
      Pool.recycle a;
      let b = Pool.alloc_zeroed 8192 in
      checkb "reuses the dirty buffer" true (b == a);
      checkb "zeroed on reuse" true (all_zero b);
      checkb "small zeroed" true (all_zero (Pool.alloc_zeroed 100)))

let test_pool_double_recycle_detected () =
  with_pool ~debug:true (fun () ->
      let b = Pool.alloc 8192 in
      Pool.recycle b;
      checkb "double recycle raises" true
        (match Pool.recycle b with
        | () -> false
        | exception Pool.Violation _ -> true))

let test_pool_use_after_recycle_detected () =
  with_pool ~debug:true (fun () ->
      let b = Pool.alloc 8192 in
      Pool.recycle b;
      (* A stale holder writes through the parked buffer... *)
      Bytes.set b 4097 '!';
      (* ...and the next alloc of that class catches the torn poison. *)
      checkb "use-after-recycle raises at realloc" true
        (match Pool.alloc 8192 with
        | _ -> false
        | exception Pool.Violation _ -> true))

(* Differential property: a program that funnels its buffers through the
   pool sees exactly the bytes a fresh-allocation version sees, live
   buffers never alias, and the debug poison never leaks into allocated
   buffers — across random alloc/recycle interleavings, both with and
   without the checks enabled. *)
let prop_pool_differential =
  let open QCheck in
  let sizes = [| 4096; 8192; 512; 3 * 4096 |] in
  let gen =
    Gen.(
      pair bool
        (list_size (int_range 1 80) (pair (int_range 0 3) (int_range 0 255))))
  in
  QCheck.Test.make ~count:200
    ~name:"pooled buffers are indistinguishable from fresh allocations"
    (make gen)
    (fun (debug, ops) ->
      with_pool ~debug (fun () ->
          (* Each live entry pairs a pooled buffer with a fresh-alloc
             model holding the same expected contents. *)
          let live = ref [] in
          let ok = ref true in
          List.iter
            (fun (si, x) ->
              if x land 1 = 0 || !live = [] then begin
                let n = sizes.(si) in
                let b = if x land 2 = 0 then Pool.alloc n else Pool.alloc_zeroed n in
                if x land 2 <> 0 then
                  ok := !ok && Bytes.for_all (fun c -> c = '\000') b;
                (* Live buffers must never alias each other. *)
                List.iter (fun (b', _) -> ok := !ok && b != b') !live;
                let fill = Char.chr x in
                Bytes.fill b 0 n fill;
                live := (b, Bytes.make n fill) :: !live
              end
              else begin
                match !live with
                | (b, model) :: rest ->
                  ok := !ok && Bytes.equal b model;
                  live := rest;
                  Pool.recycle b
                | [] -> ()
              end)
            ops;
          List.iter (fun (b, model) -> ok := !ok && Bytes.equal b model) !live;
          List.iter (fun (b, _) -> Pool.recycle b) !live;
          !ok && (Pool.totals ()).Pool.t_outstanding = 0))

(* --- Taskpool --- *)

module Taskpool = Msnap_util.Taskpool

(* With zero workers nothing runs until [await]; then each task runs
   inline, in program order — serial execution is the degenerate case,
   not a separate code path. *)
let test_tp_inline_serial () =
  Taskpool.shutdown ();
  let order = ref [] in
  let ts =
    List.init 5 (fun i ->
        Taskpool.submit (fun () ->
            order := i :: !order;
            i * i))
  in
  checki "nothing ran before await" 0 (List.length !order);
  let rs = List.map Taskpool.await ts in
  check Alcotest.(list int) "results" [ 0; 1; 4; 9; 16 ] rs;
  check
    Alcotest.(list int)
    "inline execution order = program order" [ 0; 1; 2; 3; 4 ]
    (List.rev !order)

exception Boom of int

let test_tp_exception () =
  Fun.protect ~finally:Taskpool.shutdown (fun () ->
      Taskpool.ensure_workers 2;
      checkb "worker_count grew" true (Taskpool.worker_count () >= 2);
      let bad = Taskpool.submit (fun () -> raise (Boom 7)) in
      let good = Taskpool.submit (fun () -> 41 + 1) in
      (match Taskpool.await bad with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 7 -> ()
      | exception e -> raise e);
      checki "other tasks unaffected" 42 (Taskpool.await good);
      (* The pool stays usable after a task raised. *)
      checki "pool survives" 5 (Taskpool.await (Taskpool.submit (fun () -> 5))))

(* Fork/join nesting: Heavy tasks submit and await Light subtasks — the
   shape the bench runner uses (experiments awaiting their cells while
   helping run other queued cells). *)
let test_tp_nested () =
  Fun.protect ~finally:Taskpool.shutdown (fun () ->
      Taskpool.ensure_workers 2;
      let outer =
        List.init 4 (fun i ->
            Taskpool.submit ~cls:Taskpool.Heavy (fun () ->
                let subs =
                  List.init 5 (fun j ->
                      Taskpool.submit (fun () -> (i * 10) + j))
                in
                List.fold_left (fun a t -> a + Taskpool.await t) 0 subs))
      in
      List.iteri
        (fun i t ->
          checki "nested fork/join sum" ((5 * (i * 10)) + 10)
            (Taskpool.await t))
        outer)

(* Model property: for any worker count and task list, awaiting in
   submission order yields exactly the submitted computations' results
   (none lost, duplicated, or reordered) and every body ran exactly
   once — whether tasks ran inline, on a worker, or were stolen. *)
let prop_tp_model =
  let open QCheck in
  let gen =
    Gen.(pair (int_range 0 3) (list_size (int_range 0 40) small_int))
  in
  let chew x =
    let h = ref x in
    for i = 1 to 50 do
      h := (!h * 31) + i
    done;
    !h
  in
  QCheck.Test.make ~count:25
    ~name:"taskpool delivers every result in submission order" (make gen)
    (fun (workers, xs) ->
      Fun.protect ~finally:Taskpool.shutdown (fun () ->
          Taskpool.ensure_workers workers;
          let ran = Atomic.make 0 in
          let ts =
            List.map
              (fun x ->
                Taskpool.submit (fun () ->
                    Atomic.incr ran;
                    (x, chew x)))
              xs
          in
          let rs = List.map Taskpool.await ts in
          rs = List.map (fun x -> (x, chew x)) xs
          && Atomic.get ran = List.length xs))

(* --- Twheel (vs the reference heap) --- *)

module Twheel = Msnap_util.Twheel

(* Verbatim copy of the scheduler's previous run queue (lib/sim/pq.ml):
   a binary heap over (prio, seq) with an insertion sequence number for
   FIFO order among equal priorities. The timing wheel must match it
   pop for pop. *)
module Ref_pq = struct
  type 'a entry = { prio : int; seq : int; value : 'a }

  type 'a t = {
    mutable data : 'a entry array;
    mutable size : int;
    mutable next_seq : int;
  }

  let dummy_entry : unit entry = { prio = 0; seq = 0; value = () }
  let dummy () : 'a entry = Obj.magic dummy_entry
  let create () = { data = [||]; size = 0; next_seq = 0 }
  let is_empty t = t.size = 0

  let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

  let grow t =
    let cap = Array.length t.data in
    if t.size = cap then begin
      let ncap = if cap = 0 then 16 else cap * 2 in
      let nd = Array.make ncap (dummy ()) in
      Array.blit t.data 0 nd 0 t.size;
      t.data <- nd
    end

  let push t ~prio value =
    let e = { prio; seq = t.next_seq; value } in
    t.next_seq <- t.next_seq + 1;
    grow t;
    let i = ref t.size in
    t.size <- t.size + 1;
    t.data.(!i) <- e;
    let continue_ = ref true in
    while !continue_ && !i > 0 do
      let parent = (!i - 1) / 2 in
      if less t.data.(!i) t.data.(parent) then begin
        let tmp = t.data.(parent) in
        t.data.(parent) <- t.data.(!i);
        t.data.(!i) <- tmp;
        i := parent
      end
      else continue_ := false
    done

  let pop t =
    if t.size = 0 then None
    else begin
      let top = t.data.(0) in
      t.size <- t.size - 1;
      if t.size > 0 then begin
        t.data.(0) <- t.data.(t.size);
        t.data.(t.size) <- dummy ();
        let i = ref 0 in
        let continue_ = ref true in
        while !continue_ do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < t.size && less t.data.(l) t.data.(!smallest) then
            smallest := l;
          if r < t.size && less t.data.(r) t.data.(!smallest) then
            smallest := r;
          if !smallest <> !i then begin
            let tmp = t.data.(!smallest) in
            t.data.(!smallest) <- t.data.(!i);
            t.data.(!i) <- tmp;
            i := !smallest
          end
          else continue_ := false
        done
      end
      else t.data.(0) <- dummy ();
      Some top.value
    end

  let min_prio t = if t.size = 0 then None else Some t.data.(0).prio
end

(* Equal priorities pop in push order, including across an interleaved
   pop that advances the wheel's "now" between the pushes. *)
let test_twheel_fifo_ties () =
  let tw = Twheel.create ~initial:2 () in
  Twheel.push tw ~prio:10 "a";
  Twheel.push tw ~prio:10 "b";
  Twheel.push tw ~prio:5 "x";
  check Alcotest.string "lowest first" "x" (Twheel.pop_min tw);
  Twheel.push tw ~prio:10 "c";
  Twheel.push tw ~prio:7 "y";
  check Alcotest.string "y" "y" (Twheel.pop_min tw);
  check Alcotest.string "a" "a" (Twheel.pop_min tw);
  check Alcotest.string "b" "b" (Twheel.pop_min tw);
  check Alcotest.string "c" "c" (Twheel.pop_min tw);
  checkb "empty" true (Twheel.is_empty tw);
  checki "empty min" (-1) (Twheel.min_prio tw)

(* Far-apart priorities exercise the upper levels and the cascade. *)
let test_twheel_levels () =
  let tw = Twheel.create () in
  let prios = [ 0; 1; 31; 32; 1_000; 32_768; 1_000_000; 1_073_741_824 ] in
  List.iteri (fun i p -> Twheel.push tw ~prio:p i) prios;
  List.iteri
    (fun i p ->
      checki "min tracks" p (Twheel.min_prio tw);
      checki "pop order" i (Twheel.pop_min tw))
    prios

(* Differential property: drive the wheel and the reference heap with an
   identical monotone op sequence — pushes at now + delta (frequent
   delta 0 bursts for the equal-priority tie-break, occasional huge
   deltas for multi-level cascades), pops that advance "now" — and
   require the same value pop for pop and the same min_prio at every
   step. The wheel's internal (prio, seq) order audit is armed
   throughout. *)
let prop_twheel_differential =
  let open QCheck in
  let op =
    Gen.(
      frequency
        [
          (3, pair (return 0) (return 0)); (* pop *)
          (3, pair (return 1) (return 0)); (* push, same prio as "now" *)
          (4, pair (return 2) (int_range 0 200)); (* push, nearby *)
          (1, pair (return 3) (int_range 0 2_000)); (* push, far: levels *)
        ])
  in
  QCheck.Test.make ~count:500
    ~name:"twheel matches the reference heap pop for pop"
    (make Gen.(list_size (int_range 0 400) op))
    (fun ops ->
      let saved = !Msnap_util.Slice.debug_checks in
      Msnap_util.Slice.debug_checks := true;
      Fun.protect
        ~finally:(fun () -> Msnap_util.Slice.debug_checks := saved)
        (fun () ->
          let tw = Twheel.create ~initial:2 () in
          let pq = Ref_pq.create () in
          let now = ref 0 in
          let next = ref 0 in
          let mins_agree () =
            Twheel.min_prio tw
            = (match Ref_pq.min_prio pq with Some p -> p | None -> -1)
          in
          let step (kind, delta) =
            if kind = 0 then
              if Ref_pq.is_empty pq then Twheel.is_empty tw
              else begin
                now := Twheel.min_prio tw;
                let v = Twheel.pop_min tw in
                Some v = Ref_pq.pop pq && mins_agree ()
              end
            else begin
              (* kind 3 spreads pushes across wheel levels *)
              let prio = !now + (if kind = 3 then delta * 524_287 else delta) in
              let v = !next in
              incr next;
              Twheel.push tw ~prio v;
              Ref_pq.push pq ~prio v;
              mins_agree ()
            end
          in
          List.for_all step ops
          &&
          (* drain: every remaining entry in identical order *)
          let rec drain () =
            if Ref_pq.is_empty pq then Twheel.is_empty tw
            else
              Some (Twheel.pop_min tw) = Ref_pq.pop pq
              && mins_agree () && drain ()
          in
          drain ()))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "util"
    [
      ( "rng",
        [
          tc "deterministic" test_rng_deterministic;
          tc "seed matters" test_rng_seed_matters;
          tc "int bounds" test_rng_int_bounds;
          tc "int_in bounds" test_rng_int_in;
          tc "float range" test_rng_float_range;
          tc "split independent" test_rng_split_independent;
          tc "uniformity" test_rng_uniformity;
          tc "shuffle permutes" test_rng_shuffle_permutes;
          tc "bytes length" test_rng_bytes_len;
          tc "int draws allocation-free" test_rng_alloc_free;
          QCheck_alcotest.to_alcotest prop_rng_differential;
        ] );
      ( "wire",
        [
          tc "checksum long/chained" test_checksum_long;
          QCheck_alcotest.to_alcotest prop_checksum_differential;
        ] );
      ( "keyfmt",
        [
          tc "table" test_keyfmt_table;
          QCheck_alcotest.to_alcotest prop_keyfmt_differential;
          QCheck_alcotest.to_alcotest prop_keyfmt_negative;
        ] );
      ( "intern",
        [
          tc "memo" test_intern_memo;
          QCheck_alcotest.to_alcotest prop_intern_content_identity;
        ] );
      ( "dist",
        [
          tc "domains" test_dist_domains;
          tc "zipf skew" test_zipf_skew;
          tc "pareto skew" test_pareto_skew;
          tc "latest skew" test_latest_skew;
        ] );
      ( "histogram",
        [
          tc "exact small" test_hist_exact_small;
          tc "p99" test_hist_p99;
          tc "relative error" test_hist_relative_error;
          tc "empty" test_hist_empty;
          tc "merge" test_hist_merge;
          tc "clear" test_hist_clear;
          tc "negative clamped" test_hist_negative_clamped;
          QCheck_alcotest.to_alcotest prop_hist_percentile_monotone;
          QCheck_alcotest.to_alcotest prop_hist_percentile_bounds;
        ] );
      ( "bits",
        [
          tc "clz" test_bits_clz;
          tc "ceil_log2" test_bits_ceil_log2;
          tc "round" test_bits_round;
          QCheck_alcotest.to_alcotest prop_clz_consistent;
        ] );
      ( "flat",
        [
          tc "itab basics" test_itab_basics;
          tc "itab slots" test_itab_slots;
          tc "itab growth/tombstones" test_itab_growth_and_tombstones;
          QCheck_alcotest.to_alcotest prop_itab_model;
          tc "iring fifo" test_iring_fifo;
          QCheck_alcotest.to_alcotest prop_iring_model;
          tc "fvec basics" test_fvec_basics;
          tc "fvec swap_remove" test_fvec_swap_remove;
          tc "fvec remove_at" test_fvec_remove_at;
          tc "fvec index_phys" test_fvec_index_phys;
          QCheck_alcotest.to_alcotest prop_fvec_remove_model;
        ] );
      ( "slice",
        [
          tc "windows alias the backing buffer" test_slice_windows;
          tc "blits" test_slice_blits;
          tc "ownership: borrow blocks mutation" test_slice_ownership;
          tc "of_string view" test_slice_of_string;
        ] );
      ( "pool",
        [
          tc "reuse and stats" test_pool_reuse_and_stats;
          tc "small buffers bypass" test_pool_small_not_pooled;
          tc "alloc_zeroed" test_pool_alloc_zeroed;
          tc "double recycle detected" test_pool_double_recycle_detected;
          tc "use-after-recycle detected" test_pool_use_after_recycle_detected;
          QCheck_alcotest.to_alcotest prop_pool_differential;
        ] );
      ( "taskpool",
        [
          tc "zero workers run inline at await" test_tp_inline_serial;
          tc "exception propagation" test_tp_exception;
          tc "fork/join nesting" test_tp_nested;
          QCheck_alcotest.to_alcotest prop_tp_model;
        ] );
      ( "twheel",
        [
          tc "equal-priority FIFO across interleaved pops"
            test_twheel_fifo_ties;
          tc "multi-level cascade order" test_twheel_levels;
          QCheck_alcotest.to_alcotest prop_twheel_differential;
        ] );
      ( "tbl",
        [
          tc "render" test_tbl_render;
          tc "fmt helpers" test_fmt_helpers;
          tc "size" test_size;
        ] );
    ]
