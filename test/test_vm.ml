module Sched = Msnap_sim.Sched
module Addr = Msnap_vm.Addr
module Pte = Msnap_vm.Pte
module Ptloc = Msnap_vm.Ptloc
module Ptable = Msnap_vm.Ptable
module Phys = Msnap_vm.Phys
module Tlb = Msnap_vm.Tlb
module Aspace = Msnap_vm.Aspace
module Protect = Msnap_vm.Protect
module Size = Msnap_util.Size

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let in_sim f () = Sched.run f

(* --- Addr --- *)

let test_addr_arith () =
  checki "vpn" 2 (Addr.vpn_of_va 8192);
  checki "va" 8192 (Addr.va_of_vpn 2);
  checki "offset" 123 (Addr.page_offset (8192 + 123));
  checki "align down" 8192 (Addr.page_align_down (8192 + 123));
  checki "align up" 12288 (Addr.page_align_up (8192 + 123));
  checki "align up exact" 8192 (Addr.page_align_up 8192);
  checki "one page" 1 (Addr.pages_spanned ~off:0 ~len:4096);
  checki "straddle" 2 (Addr.pages_spanned ~off:4000 ~len:200);
  checki "empty" 0 (Addr.pages_spanned ~off:0 ~len:0)

let test_addr_index () =
  let vpn = (3 lsl 27) lor (5 lsl 18) lor (7 lsl 9) lor 11 in
  checki "l3" 3 (Addr.index ~level:3 vpn);
  checki "l2" 5 (Addr.index ~level:2 vpn);
  checki "l1" 7 (Addr.index ~level:1 vpn);
  checki "l0" 11 (Addr.index ~level:0 vpn)

(* --- Pte --- *)

let test_pte_bits () =
  let pte = Pte.make ~frame:42 ~writable:false in
  checkb "present" true (Pte.present pte);
  checkb "ro" false (Pte.writable pte);
  checki "frame" 42 (Pte.frame pte);
  let pte = Pte.set_writable pte true in
  checkb "now writable" true (Pte.writable pte);
  checki "frame preserved" 42 (Pte.frame pte);
  let pte = Pte.set_cow pte true in
  checkb "cow" true (Pte.cow pte);
  let pte = Pte.set_frame pte 99 in
  checki "new frame" 99 (Pte.frame pte);
  checkb "flags preserved" true (Pte.cow pte && Pte.writable pte);
  checkb "empty not present" false (Pte.present Pte.empty)

(* --- Ptable --- *)

let test_ptable_walk_set_lookup () =
  let pt = Ptable.create () in
  checki "empty" Pte.empty (Ptable.lookup pt 12345);
  let pte = Pte.make ~frame:7 ~writable:true in
  Ptable.set pt 12345 pte;
  checki "set/lookup" pte (Ptable.lookup pt 12345);
  checkb "find_loc" true (Ptable.find_loc pt 12345 <> None);
  checkb "find_loc absent leaf" true (Ptable.find_loc pt 99_999_999 = None)

let test_ptable_loc_stable () =
  let pt = Ptable.create () in
  Ptable.set pt 100 (Pte.make ~frame:1 ~writable:true);
  let loc1 = Ptable.walk pt 100 in
  (* Populate neighbours; the recorded slot must stay valid. *)
  for vpn = 101 to 600 do
    Ptable.set pt vpn (Pte.make ~frame:vpn ~writable:false)
  done;
  let loc2 = Ptable.walk pt 100 in
  checkb "same slot" true (Ptloc.same loc1 loc2);
  checki "readable through old loc" 1 (Pte.frame (Ptloc.get loc1))

let test_ptable_scan_range () =
  let pt = Ptable.create () in
  List.iter (fun vpn -> Ptable.set pt vpn (Pte.make ~frame:vpn ~writable:true))
    [ 10; 20; 600; 200_000 ];
  let seen = ref [] in
  let visited = Ptable.scan_range pt ~vpn:0 ~n:300_000 ~f:(fun vpn _ -> seen := vpn :: !seen) in
  Alcotest.(check (list int)) "all present found" [ 10; 20; 600; 200_000 ] (List.rev !seen);
  (* Visited counts whole leaves that exist: 3 leaves x 512 slots (10 and
     20 share a leaf; 600 and 200000 in separate leaves). *)
  checki "slots inspected" (3 * 512) visited;
  (* A clipped scan only sees its window. *)
  let seen = ref [] in
  ignore (Ptable.scan_range pt ~vpn:15 ~n:590 ~f:(fun vpn _ -> seen := vpn :: !seen));
  Alcotest.(check (list int)) "clipped" [ 20; 600 ] (List.rev !seen)

let prop_ptable_model =
  QCheck.Test.make ~count:100 ~name:"page table agrees with assoc model"
    QCheck.(list_of_size Gen.(int_range 1 50)
              (pair (int_bound 1_000_000) (int_range 1 10_000)))
    (fun ops ->
      let pt = Ptable.create () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (vpn, frame) ->
          Ptable.set pt vpn (Pte.make ~frame ~writable:true);
          Hashtbl.replace model vpn frame)
        ops;
      Hashtbl.fold
        (fun vpn frame ok -> ok && Pte.frame (Ptable.lookup pt vpn) = frame)
        model true)

(* --- Phys --- *)

let test_phys_alloc_free () =
  in_sim (fun () ->
      let phys = Phys.create () in
      let p1 = Phys.alloc phys in
      let p2 = Phys.alloc phys in
      checkb "distinct frames" true (p1.Phys.frame <> p2.Phys.frame);
      checki "live" 2 (Phys.live_frames phys);
      Phys.free phys p1;
      checki "after free" 1 (Phys.live_frames phys);
      let p3 = Phys.alloc phys in
      checki "frame reused" p1.Phys.frame p3.Phys.frame;
      checkb "reused frame zeroed" true (Bytes.for_all (fun c -> c = '\000') p3.Phys.data);
      checki "peak" 2 (Phys.peak_frames phys))
    ()

let test_phys_copy () =
  in_sim (fun () ->
      let phys = Phys.create () in
      let src = Phys.alloc phys in
      Bytes.fill src.Phys.data 0 4096 'S';
      let dst = Phys.copy_page phys src in
      checkb "copied" true (Bytes.equal src.Phys.data dst.Phys.data);
      Bytes.set src.Phys.data 0 'X';
      checkb "independent" true (Bytes.get dst.Phys.data 0 = 'S'))
    ()

let test_phys_rmap () =
  in_sim (fun () ->
      let phys = Phys.create () in
      let p = Phys.alloc phys in
      let slots = Array.make 512 0 in
      let l1 = Ptloc.make slots 1 and l2 = Ptloc.make slots 2 in
      Phys.rmap_add p l1;
      Phys.rmap_add p l2;
      checki "two mappings" 2 (Phys.rmap_length p);
      Phys.rmap_remove p l1;
      checki "one left" 1 (Phys.rmap_length p);
      checkb "right one" true (Ptloc.same (Phys.rmap_get p 0) l2))
    ()

(* --- Tlb --- *)

let test_tlb_hit_miss () =
  in_sim (fun () ->
      let tlb = Tlb.create ~entries:4 ~absent:() () in
      checkb "first access misses" false (Tlb.access tlb 1);
      checkb "second hits" true (Tlb.access tlb 1);
      Tlb.invalidate_page tlb 1;
      checkb "after invalidate" false (Tlb.access tlb 1);
      checki "misses" 2 (Tlb.misses tlb);
      checki "hits" 1 (Tlb.hits tlb))
    ()

let test_tlb_eviction () =
  in_sim (fun () ->
      let tlb = Tlb.create ~entries:2 ~absent:() () in
      ignore (Tlb.access tlb 1);
      ignore (Tlb.access tlb 2);
      ignore (Tlb.access tlb 3); (* evicts 1 (FIFO) *)
      checkb "1 evicted" false (Tlb.access tlb 1))
    ()

let test_tlb_shootdown_cost () =
  in_sim (fun () ->
      let tlb = Tlb.create ~absent:() () in
      ignore (Tlb.access tlb 5);
      let t0 = Sched.now () in
      Tlb.shootdown tlb [ 5 ];
      checkb "selective cost charged" true (Sched.now () - t0 > 0);
      checkb "invalidated" false (Tlb.access tlb 5);
      (* Above the threshold: full flush. *)
      let many = List.init 200 Fun.id in
      List.iter (fun v -> ignore (Tlb.access tlb v)) many;
      Tlb.shootdown tlb many;
      checkb "flushed" false (Tlb.access tlb 100))
    ()

(* Reference TLB: the previous Hashtbl + Queue implementation, re-stated
   as a model. Hit/miss counts, eviction decisions and the FIFO's stale
   entries (invalidate removes only from the table; a re-inserted page
   duplicates its ring slot) are simulated values, so the flat
   Itab + Iring version must agree on every operation. *)
module Tlb_ref = struct
  type 'a t = {
    tab : (int, 'a) Hashtbl.t;
    fifo : int Queue.t;
    capacity : int;
    absent : 'a;
    mutable last : 'a;
    mutable hits : int;
    mutable misses : int;
  }

  let create ~entries ~absent () =
    { tab = Hashtbl.create entries; fifo = Queue.create ();
      capacity = entries; absent; last = absent; hits = 0; misses = 0 }

  let probe t vpn =
    match Hashtbl.find_opt t.tab vpn with
    | Some p ->
      t.hits <- t.hits + 1;
      t.last <- p;
      true
    | None ->
      t.misses <- t.misses + 1;
      t.last <- t.absent;
      false

  let hit_payload t = t.last

  let insert t vpn payload =
    if not (Hashtbl.mem t.tab vpn) then begin
      if Hashtbl.length t.tab >= t.capacity && not (Queue.is_empty t.fifo)
      then Hashtbl.remove t.tab (Queue.pop t.fifo);
      Queue.push vpn t.fifo
    end;
    Hashtbl.replace t.tab vpn payload

  let update t vpn payload =
    if Hashtbl.mem t.tab vpn then Hashtbl.replace t.tab vpn payload

  let access t vpn =
    if probe t vpn then true
    else begin
      insert t vpn t.absent;
      false
    end

  let invalidate_page t vpn = Hashtbl.remove t.tab vpn

  let flush t =
    Hashtbl.reset t.tab;
    Queue.clear t.fifo
end

let prop_tlb_model =
  (* Differential: random op sequences over a small TLB (capacity 4,
     12 pages, so evictions and stale-FIFO interactions are constant).
     After every op the hit/miss counters must agree; at the end every
     page must probe identically with the same payload. *)
  QCheck.Test.make ~count:400 ~name:"flat tlb agrees with Hashtbl+Queue model"
    QCheck.(list_of_size Gen.(int_range 1 120)
              (pair (int_bound 9) (pair (int_bound 11) (int_bound 999))))
    (fun ops ->
      let tlb = Tlb.create ~entries:4 ~absent:(-1) () in
      let m = Tlb_ref.create ~entries:4 ~absent:(-1) () in
      List.for_all
        (fun (kind, (vpn, payload)) ->
          let step_ok =
            match kind with
            | 0 | 1 | 2 | 3 ->
              let h = Tlb.probe tlb vpn and h' = Tlb_ref.probe m vpn in
              if not h then Tlb.insert tlb vpn payload;
              if not h' then Tlb_ref.insert m vpn payload;
              h = h' && Tlb.hit_payload tlb = Tlb_ref.hit_payload m
            | 4 | 5 | 6 ->
              Tlb.access tlb vpn = Tlb_ref.access m vpn
            | 7 ->
              Tlb.invalidate_page tlb vpn;
              Tlb_ref.invalidate_page m vpn;
              true
            | 8 ->
              Tlb.update tlb vpn payload;
              Tlb_ref.update m vpn payload;
              true
            | _ ->
              Tlb.flush tlb;
              Tlb_ref.flush m;
              true
          in
          step_ok && Tlb.hits tlb = m.Tlb_ref.hits
          && Tlb.misses tlb = m.Tlb_ref.misses)
        ops
      && List.for_all
           (fun vpn ->
             Tlb.probe tlb vpn = Tlb_ref.probe m vpn
             && Tlb.hit_payload tlb = Tlb_ref.hit_payload m)
           (List.init 12 Fun.id))

(* --- Aspace --- *)

let mk_aspace () =
  let phys = Phys.create () in
  (phys, Aspace.create phys)

let test_aspace_write_read () =
  in_sim (fun () ->
      let _, a = mk_aspace () in
      let va = 0x10000 in
      ignore (Aspace.map a ~name:"m" ~va ~len:(Size.kib 64) ());
      let data = Bytes.of_string "hello virtual memory" in
      Aspace.write a ~va:(va + 100) data;
      let back = Aspace.read a ~va:(va + 100) ~len:(Bytes.length data) in
      checkb "roundtrip" true (Bytes.equal data back))
    ()

let test_aspace_cross_page_write () =
  in_sim (fun () ->
      let _, a = mk_aspace () in
      let va = 0x10000 in
      ignore (Aspace.map a ~name:"m" ~va ~len:(Size.kib 64) ());
      let data = Bytes.make 6000 'Z' in
      Aspace.write a ~va:(va + 3000) data;
      let back = Aspace.read a ~va:(va + 3000) ~len:6000 in
      checkb "spans pages" true (Bytes.equal data back))
    ()

let test_aspace_pager () =
  in_sim (fun () ->
      let _, a = mk_aspace () in
      let pager =
        { Aspace.page_in = (fun rel -> `Bytes (Bytes.make 4096 (Char.chr (65 + rel)))) }
      in
      ignore (Aspace.map a ~name:"m" ~va:0x20000 ~len:(Size.kib 16) ~pager ());
      let b = Aspace.read a ~va:(0x20000 + 4096) ~len:4 in
      checkb "paged in from pager" true (Bytes.to_string b = "BBBB"))
    ()

let test_aspace_segfault () =
  in_sim (fun () ->
      let _, a = mk_aspace () in
      checkb "unmapped access raises" true
        (try ignore (Aspace.read a ~va:0x999000 ~len:1); false
         with Invalid_argument _ -> true))
    ()

let test_aspace_many_mappings () =
  (* Exercises the sorted-array binary search and last-hit cache: many
     disjoint mappings, accesses hopping between them, holes in between. *)
  in_sim (fun () ->
      let _, a = mk_aspace () in
      let base = 0x100000 in
      let stride = Size.kib 64 in
      let n = 16 in
      for i = 0 to n - 1 do
        (* 32 KiB mapped, 32 KiB hole between consecutive mappings. *)
        ignore
          (Aspace.map a
             ~name:(Printf.sprintf "m%d" i)
             ~va:(base + (i * stride)) ~len:(Size.kib 32) ())
      done;
      (* Write a distinct byte into each mapping, in shuffled order. *)
      let order = [ 7; 0; 15; 3; 3; 12; 1; 8; 14; 2; 9; 11; 4; 13; 6; 5; 10 ] in
      List.iter
        (fun i ->
          Aspace.write a ~va:(base + (i * stride) + 17)
            (Bytes.make 3 (Char.chr (65 + i))))
        order;
      List.iter
        (fun i ->
          let b = Aspace.read a ~va:(base + (i * stride) + 17) ~len:3 in
          checkb
            (Printf.sprintf "mapping %d contents" i)
            true
            (Bytes.to_string b = String.make 3 (Char.chr (65 + i))))
        order;
      (* Hole between mappings still faults. *)
      checkb "hole segfaults" true
        (try
           ignore (Aspace.read a ~va:(base + Size.kib 40) ~len:1);
           false
         with Invalid_argument _ -> true);
      (* Below the first and above the last mapping too. *)
      checkb "below segfaults" true
        (try
           ignore (Aspace.read a ~va:(base - Size.kib 4) ~len:1);
           false
         with Invalid_argument _ -> true);
      checkb "above segfaults" true
        (try
           ignore (Aspace.read a ~va:(base + (n * stride) + Size.kib 36) ~len:1);
           false
         with Invalid_argument _ -> true);
      (* find_mapping still works on the sorted array. *)
      checkb "find_mapping" true (Aspace.find_mapping a ~name:"m9" <> None);
      (* Unmap one and confirm its range faults while neighbors survive. *)
      (match Aspace.find_mapping a ~name:"m3" with
      | Some m -> Aspace.unmap a m
      | None -> Alcotest.fail "m3 missing");
      checkb "unmapped faults" true
        (try
           ignore (Aspace.read a ~va:(base + (3 * stride) + 17) ~len:1);
           false
         with Invalid_argument _ -> true);
      let b = Aspace.read a ~va:(base + (2 * stride) + 17) ~len:3 in
      checkb "neighbor intact" true (Bytes.to_string b = "CCC"))
    ()

let test_aspace_overlap_rejected () =
  in_sim (fun () ->
      let _, a = mk_aspace () in
      ignore (Aspace.map a ~name:"m1" ~va:0x10000 ~len:(Size.kib 16) ());
      checkb "overlap" true
        (try ignore (Aspace.map a ~name:"m2" ~va:0x12000 ~len:(Size.kib 16) ()); false
         with Invalid_argument _ -> true))
    ()

let test_aspace_readonly_mapping () =
  in_sim (fun () ->
      let _, a = mk_aspace () in
      ignore (Aspace.map a ~name:"ro" ~va:0x10000 ~len:4096 ~writable:false ());
      ignore (Aspace.read a ~va:0x10000 ~len:4);
      checkb "write rejected" true
        (try Aspace.write a ~va:0x10000 (Bytes.make 1 'x'); false
         with Invalid_argument _ -> true))
    ()

let test_aspace_fault_handler_called_once_per_page () =
  in_sim (fun () ->
      let _, a = mk_aspace () in
      let faults = ref 0 in
      let handler (f : Aspace.fault) =
        incr faults;
        Ptloc.set f.Aspace.f_loc (Pte.set_writable (Ptloc.get f.Aspace.f_loc) true)
      in
      ignore
        (Aspace.map a ~name:"m" ~va:0x10000 ~len:(Size.kib 16)
           ~new_pages_writable:false ~on_write_fault:handler ());
      Aspace.write a ~va:0x10000 (Bytes.make 10 'a');
      Aspace.write a ~va:0x10100 (Bytes.make 10 'b');
      checki "one fault for the page" 1 !faults;
      Aspace.write a ~va:0x11000 (Bytes.make 10 'c');
      checki "second page faults" 2 !faults;
      (* Re-protect and write again: a new fault. *)
      Aspace.protect_page a ~vpn:(Addr.vpn_of_va 0x10000);
      Aspace.shootdown a [ Addr.vpn_of_va 0x10000 ];
      Aspace.write a ~va:0x10000 (Bytes.make 10 'd');
      checki "re-armed" 3 !faults)
    ()

let test_aspace_shared_frame () =
  in_sim (fun () ->
      let phys = Phys.create () in
      let a1 = Aspace.create ~name:"p1" phys in
      let a2 = Aspace.create ~name:"p2" phys in
      let frame = Phys.alloc phys in
      Bytes.fill frame.Phys.data 0 4096 'S';
      let pager = { Aspace.page_in = (fun _ -> `Page frame) } in
      ignore (Aspace.map a1 ~name:"shm" ~va:0x40000 ~len:4096 ~pager ());
      ignore (Aspace.map a2 ~name:"shm" ~va:0x40000 ~len:4096 ~pager ());
      Aspace.write a1 ~va:0x40000 (Bytes.of_string "XY");
      let b = Aspace.read a2 ~va:0x40000 ~len:2 in
      checkb "visible across processes" true (Bytes.to_string b = "XY");
      checki "rmap has both" 2 (Phys.rmap_length frame))
    ()

let test_aspace_unmap_frees () =
  in_sim (fun () ->
      let phys, a = mk_aspace () in
      let m = Aspace.map a ~name:"m" ~va:0x10000 ~len:(Size.kib 64) () in
      Aspace.write a ~va:0x10000 (Bytes.make (Size.kib 64) 'x');
      checki "frames live" 16 (Phys.live_frames phys);
      Aspace.unmap a m;
      checki "frames freed" 0 (Phys.live_frames phys);
      ignore (Aspace.map a ~name:"m2" ~va:0x10000 ~len:4096 ()))
    ()

let test_pages_of_range () =
  in_sim (fun () ->
      let _, a = mk_aspace () in
      ignore (Aspace.map a ~name:"m" ~va:0x10000 ~len:(Size.kib 64) ());
      Aspace.write a ~va:0x10000 (Bytes.make 1 'a');
      Aspace.write a ~va:0x14000 (Bytes.make 1 'b');
      let pages = Aspace.pages_of_range a ~va:0x10000 ~len:(Size.kib 64) in
      checki "two resident" 2 (List.length pages))
    ()

(* --- Protect strategies (Fig. 1 mechanics) --- *)

let setup_dirty_mapping ~mapping_pages ~dirty_pages =
  let phys = Phys.create () in
  let a = Aspace.create phys in
  let va = 0x4000_0000 in
  let dirty = ref [] in
  let handler (f : Aspace.fault) =
    Ptloc.set f.Aspace.f_loc (Pte.set_writable (Ptloc.get f.Aspace.f_loc) true);
    dirty := (f.Aspace.f_vpn, f.Aspace.f_loc) :: !dirty
  in
  ignore
    (Aspace.map a ~name:"m" ~va ~len:(mapping_pages * 4096)
       ~new_pages_writable:false ~on_write_fault:handler ());
  (* Dirty [dirty_pages] spread across the mapping. *)
  let stride = max 1 (mapping_pages / dirty_pages) in
  for i = 0 to dirty_pages - 1 do
    Aspace.write a ~va:(va + (i * stride * 4096)) (Bytes.make 8 'd')
  done;
  (a, va, mapping_pages * 4096, List.rev !dirty)

let test_protect_all_strategies_protect () =
  in_sim (fun () ->
      List.iter
        (fun strat ->
          let a, va, len, dirty = setup_dirty_mapping ~mapping_pages:512 ~dirty_pages:16 in
          let n =
            match strat with
            | `Scan -> Protect.scan_mapping a ~mapping_va:va ~mapping_len:len dirty
            | `PerPage -> Protect.per_page_walk a dirty
            | `Trace -> Protect.trace_buffer a dirty
          in
          checki "all protected" 16 n;
          (* Every dirty page is read-only again. *)
          List.iter
            (fun (_, loc) -> checkb "ro" false (Pte.writable (Ptloc.get loc)))
            dirty)
        [ `Scan; `PerPage; `Trace ])
    ()

let test_protect_cost_ordering () =
  in_sim (fun () ->
      (* Small dirty set in a large mapping: trace < per-page < scan. *)
      let cost strat =
        let a, va, len, dirty =
          setup_dirty_mapping ~mapping_pages:(256 * 1024) ~dirty_pages:4
        in
        let t0 = Sched.now () in
        ignore
          (match strat with
          | `Scan -> Protect.scan_mapping a ~mapping_va:va ~mapping_len:len dirty
          | `PerPage -> Protect.per_page_walk a dirty
          | `Trace -> Protect.trace_buffer a dirty);
        Sched.now () - t0
      in
      let scan = cost `Scan and per_page = cost `PerPage and trace = cost `Trace in
      checkb "scan slowest" true (scan > per_page);
      checkb "trace fastest" true (per_page > trace))
    ()

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "vm"
    [
      ("addr", [ tc "arith" test_addr_arith; tc "index" test_addr_index ]);
      ("pte", [ tc "bits" test_pte_bits ]);
      ( "ptable",
        [
          tc "walk/set/lookup" test_ptable_walk_set_lookup;
          tc "loc stable" test_ptable_loc_stable;
          tc "scan_range" test_ptable_scan_range;
          QCheck_alcotest.to_alcotest prop_ptable_model;
        ] );
      ( "phys",
        [
          tc "alloc/free" test_phys_alloc_free;
          tc "copy" test_phys_copy;
          tc "rmap" test_phys_rmap;
        ] );
      ( "tlb",
        [
          tc "hit/miss" test_tlb_hit_miss;
          tc "eviction" test_tlb_eviction;
          tc "shootdown" test_tlb_shootdown_cost;
          QCheck_alcotest.to_alcotest prop_tlb_model;
        ] );
      ( "aspace",
        [
          tc "write/read" test_aspace_write_read;
          tc "cross page" test_aspace_cross_page_write;
          tc "pager" test_aspace_pager;
          tc "segfault" test_aspace_segfault;
          tc "many mappings / binary search" test_aspace_many_mappings;
          tc "overlap" test_aspace_overlap_rejected;
          tc "read-only mapping" test_aspace_readonly_mapping;
          tc "fault once per page" test_aspace_fault_handler_called_once_per_page;
          tc "shared frame" test_aspace_shared_frame;
          tc "unmap frees" test_aspace_unmap_frees;
          tc "pages_of_range" test_pages_of_range;
        ] );
      ( "protect",
        [
          tc "strategies protect" test_protect_all_strategies_protect;
          tc "cost ordering" test_protect_cost_ordering;
        ] );
    ]
