module Sched = Msnap_sim.Sched
module Sync = Msnap_sim.Sync
module Metrics = Msnap_sim.Metrics
module Probe = Msnap_sim.Probe
module Trace = Msnap_sim.Trace

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let test_run_returns () = checki "result" 7 (Sched.run (fun () -> 7))

let test_clock_starts_zero () =
  checki "t0" 0 (Sched.run (fun () -> Sched.now ()))

let test_delay_advances () =
  checki "t" 1234
    (Sched.run (fun () ->
         Sched.delay 1234;
         Sched.now ()))

let test_cpu_advances_and_charges () =
  let total =
    Sched.run (fun () ->
        Sched.cpu 100;
        Sched.with_bucket Probe.Bucket.io (fun () -> Sched.cpu 50);
        Sched.account_total ())
  in
  checki "charged" 150 total

let test_buckets () =
  let report =
    Sched.run (fun () ->
        Sched.cpu 10;
        Sched.with_bucket Probe.Bucket.log (fun () ->
            Sched.cpu 20;
            Sched.with_bucket Probe.Bucket.write (fun () -> Sched.cpu 30);
            Sched.cpu 5);
        Sched.account_report ())
  in
  checki "log" 25 (List.assoc "log" report);
  checki "write" 30 (List.assoc "write" report);
  checki "user" 10 (List.assoc "user" report)

let test_spawn_join () =
  let v =
    Sched.run (fun () ->
        let r = ref 0 in
        let t =
          Sched.spawn (fun () ->
              Sched.delay 500;
              r := 42)
        in
        Sched.join t;
        checki "joined after work" 42 !r;
        Sched.now ())
  in
  checki "time includes child delay" 500 v

let test_join_finished_thread () =
  Sched.run (fun () ->
      let t = Sched.spawn (fun () -> ()) in
      Sched.delay 10;
      Sched.join t;
      Sched.join t (* idempotent *))

let test_concurrent_delays_interleave () =
  (* Two threads sleeping different amounts: completion order by time. *)
  let order =
    Sched.run (fun () ->
        let log = ref [] in
        let a =
          Sched.spawn (fun () ->
              Sched.delay 200;
              log := "a" :: !log)
        in
        let b =
          Sched.spawn (fun () ->
              Sched.delay 100;
              log := "b" :: !log)
        in
        Sched.join a;
        Sched.join b;
        List.rev !log)
  in
  checks "order" "b,a" (String.concat "," order)

let test_same_time_fifo () =
  (* Equal wake times resolve in spawn order: determinism. *)
  let order =
    Sched.run (fun () ->
        let log = ref [] in
        let ts =
          List.init 5 (fun i ->
              Sched.spawn (fun () ->
                  Sched.delay 100;
                  log := string_of_int i :: !log))
        in
        List.iter Sched.join ts;
        List.rev !log)
  in
  checks "fifo" "0,1,2,3,4" (String.concat "," order)

let test_deadlock_detected () =
  let raised =
    try
      ignore
        (Sched.run (fun () ->
             let m = Sync.Mutex.create () in
             Sync.Mutex.lock m;
             Sync.Mutex.lock m));
      false
    with Sched.Deadlock _ -> true
  in
  checkb "deadlock" true raised

let test_exception_propagates () =
  let raised =
    try
      ignore (Sched.run (fun () -> failwith "boom"));
      false
    with Failure m -> m = "boom"
  in
  checkb "propagated" true raised

let test_child_exception_propagates () =
  let raised =
    try
      ignore
        (Sched.run (fun () ->
             let t = Sched.spawn (fun () -> failwith "child") in
             Sched.join t));
      false
    with Failure m -> m = "child"
  in
  checkb "propagated" true raised

let test_run_not_nested_state () =
  (* After a failed run, a fresh run works. *)
  (try ignore (Sched.run (fun () -> failwith "x")) with Failure _ -> ());
  checki "fresh run" 1 (Sched.run (fun () -> 1))

let test_mutex_mutual_exclusion () =
  Sched.run (fun () ->
      let m = Sync.Mutex.create () in
      let inside = ref 0 and max_inside = ref 0 in
      let worker () =
        for _ = 1 to 20 do
          Sync.Mutex.with_lock m (fun () ->
              incr inside;
              if !inside > !max_inside then max_inside := !inside;
              Sched.delay 7;
              decr inside)
        done
      in
      let ts = List.init 4 (fun i -> Sched.spawn ~name:(Printf.sprintf "w%d" i) worker) in
      List.iter Sched.join ts;
      checki "never two inside" 1 !max_inside)

let test_mutex_unlock_unlocked () =
  Sched.run (fun () ->
      let m = Sync.Mutex.create () in
      let raised = try Sync.Mutex.unlock m; false with Invalid_argument _ -> true in
      checkb "raises" true raised)

let test_try_lock () =
  Sched.run (fun () ->
      let m = Sync.Mutex.create () in
      checkb "first" true (Sync.Mutex.try_lock m);
      checkb "second" false (Sync.Mutex.try_lock m);
      Sync.Mutex.unlock m;
      checkb "after unlock" true (Sync.Mutex.try_lock m))

let test_condition_broadcast () =
  Sched.run (fun () ->
      let m = Sync.Mutex.create () in
      let c = Sync.Condition.create () in
      let go = ref false in
      let woken = ref 0 in
      let waiter () =
        Sync.Mutex.lock m;
        while not !go do
          Sync.Condition.wait c m
        done;
        incr woken;
        Sync.Mutex.unlock m
      in
      let ts = List.init 3 (fun _ -> Sched.spawn waiter) in
      Sched.delay 100;
      Sync.Mutex.with_lock m (fun () -> go := true);
      Sync.Condition.broadcast c;
      List.iter Sched.join ts;
      checki "all woken" 3 !woken)

let test_semaphore_bounds () =
  Sched.run (fun () ->
      let s = Sync.Semaphore.create 2 in
      let inside = ref 0 and max_inside = ref 0 in
      let worker () =
        Sync.Semaphore.acquire s;
        incr inside;
        if !inside > !max_inside then max_inside := !inside;
        Sched.delay 10;
        decr inside;
        Sync.Semaphore.release s
      in
      let ts = List.init 6 (fun _ -> Sched.spawn worker) in
      List.iter Sched.join ts;
      checkb "bounded by 2" true (!max_inside <= 2);
      checki "permits restored" 2 (Sync.Semaphore.value s))

let test_ivar () =
  Sched.run (fun () ->
      let iv = Sync.Ivar.create () in
      checkb "not filled" false (Sync.Ivar.is_filled iv);
      let _ =
        Sched.spawn (fun () ->
            Sched.delay 50;
            Sync.Ivar.fill iv 9)
      in
      checki "read blocks until fill" 9 (Sync.Ivar.read iv);
      checki "time" 50 (Sched.now ());
      checki "second read immediate" 9 (Sync.Ivar.read iv);
      let raised = try Sync.Ivar.fill iv 1; false with Invalid_argument _ -> true in
      checkb "double fill" true raised)

let test_channel () =
  Sched.run (fun () ->
      let ch = Sync.Channel.create ~capacity:2 in
      let consumed = ref [] in
      let c =
        Sched.spawn (fun () ->
            for _ = 1 to 5 do
              consumed := Sync.Channel.recv ch :: !consumed;
              Sched.delay 10
            done)
      in
      for i = 1 to 5 do
        Sync.Channel.send ch i
      done;
      Sched.join c;
      checks "fifo order" "1,2,3,4,5"
        (String.concat "," (List.rev_map string_of_int !consumed)))

let test_metrics () =
  Metrics.reset ();
  Sched.run (fun () ->
      let x = Probe.make Probe.Host "x" in
      Metrics.incr x;
      Metrics.incr ~by:4 x;
      Metrics.add_sample (Probe.make Probe.Host "lat") 100;
      Metrics.add_sample (Probe.make Probe.Host "lat") 300;
      Metrics.timed (Probe.make Probe.Host "op") (fun () -> Sched.delay 77));
  checki "counter" 5 (Metrics.count (Probe.make Probe.Host "x"));
  checki "samples" 2 (Metrics.samples (Probe.make Probe.Host "lat"));
  Alcotest.(check (float 0.01)) "mean" 200.0
    (Metrics.mean_ns (Probe.make Probe.Host "lat"));
  Alcotest.(check (float 0.01)) "timed" 77.0
    (Metrics.mean_ns (Probe.make Probe.Host "op"));
  Metrics.reset ();
  checki "reset" 0 (Metrics.count (Probe.make Probe.Host "x"))

(* --- Metrics: reset, nesting, histogram counts --- *)

let test_metrics_reset_clears_hists () =
  Metrics.reset ();
  Sched.run (fun () ->
      Metrics.add_sample Probe.db_write 100;
      Metrics.add_sample Probe.db_write 200);
  checki "samples before reset" 2 (Metrics.samples Probe.db_write);
  checkb "hist exists" true (Metrics.hist Probe.db_write <> None);
  Metrics.reset ();
  checki "samples cleared" 0 (Metrics.samples Probe.db_write);
  checkb "hist cleared" true (Metrics.hist Probe.db_write = None);
  checki "counter cleared" 0 (Metrics.count Probe.db_write)

let test_metrics_timed_nesting () =
  Metrics.reset ();
  Sched.run (fun () ->
      Metrics.timed Probe.db_write (fun () ->
          Sched.delay 100;
          Metrics.timed Probe.db_fsync (fun () -> Sched.delay 40);
          Sched.delay 10));
  Alcotest.(check (float 0.01))
    "outer includes inner" 150.0
    (Metrics.mean_ns Probe.db_write);
  Alcotest.(check (float 0.01)) "inner" 40.0 (Metrics.mean_ns Probe.db_fsync);
  checki "one outer sample" 1 (Metrics.samples Probe.db_write);
  checki "one inner sample" 1 (Metrics.samples Probe.db_fsync)

let test_metrics_histogram_sample_counts () =
  Metrics.reset ();
  Sched.run (fun () ->
      for i = 1 to 64 do
        Metrics.add_sample Probe.db_read (i * 10)
      done);
  checki "samples" 64 (Metrics.samples Probe.db_read);
  (match Metrics.hist Probe.db_read with
  | None -> Alcotest.fail "histogram missing"
  | Some h -> checki "hist count" 64 (Msnap_util.Histogram.count h));
  (* add_sample also bumps the implicit op counter of the same name. *)
  checki "implicit counter" 64 (Metrics.count Probe.db_read)

(* --- typed buckets --- *)

let test_bucket_nesting_typed () =
  let report =
    Sched.run (fun () ->
        Sched.with_bucket Probe.Bucket.io (fun () ->
            Sched.cpu 20;
            Sched.with_bucket Probe.Bucket.fsync (fun () -> Sched.cpu 30);
            Sched.cpu 5);
        Sched.cpu 2;
        Sched.account_report ())
  in
  checki "outer keeps only its own time" 25 (List.assoc "io" report);
  checki "inner" 30 (List.assoc "fsync" report);
  checki "user" 2 (List.assoc "user" report);
  (* Separate sections charging the same bucket share one key. *)
  let r2 =
    Sched.run (fun () ->
        Sched.with_bucket Probe.Bucket.io (fun () -> Sched.cpu 1);
        Sched.with_bucket Probe.Bucket.io (fun () -> Sched.cpu 2);
        Sched.account_report ())
  in
  checki "same key" 3 (List.assoc "io" r2)

(* --- Trace --- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_trace_disabled_no_events () =
  Trace.enable ();
  Trace.disable ();
  Sched.run (fun () ->
      Trace.instant Probe.vm_write_fault;
      Trace.complete Probe.db_write ~dur:10);
  checki "no events recorded" 0 (Trace.event_count ());
  checki "now is 0 when off" 0 (Trace.now ())

let test_trace_span_records () =
  Trace.enable ();
  Sched.run (fun () -> Trace.with_span Probe.fs_fsync (fun () -> Sched.delay 120));
  Trace.disable ();
  let d = Trace.dump () in
  (* The run also records the main thread's lifetime span (sched.thread);
     pick out the fsync span. *)
  let spans =
    Array.to_list (Trace.events d)
    |> List.filter (fun e -> Probe.name e.Trace.ev_probe = "fs.fsync")
  in
  checki "one fsync span" 1 (List.length spans);
  let e = List.hd spans in
  checks "subsystem" "fs"
    (Probe.subsystem_name (Probe.subsystem e.Trace.ev_probe));
  checki "dur is the virtual-time delta" 120 e.Trace.ev_dur

let test_trace_flow_ids_unique () =
  Trace.enable ();
  let a = Trace.new_flow () in
  let b = Trace.new_flow () in
  Trace.disable ();
  checkb "nonzero and distinct" true (a <> 0 && b <> 0 && a <> b)

let test_trace_summary_reconciles_with_buckets () =
  Metrics.reset ();
  Trace.enable ();
  let report =
    Sched.run (fun () ->
        Metrics.timed Probe.db_fsync (fun () ->
            Sched.with_bucket Probe.Bucket.fsync (fun () -> Sched.cpu 500));
        Sched.account_report ())
  in
  Trace.disable ();
  let d = Trace.dump () in
  let _, _, count, total, _ =
    List.find
      (fun (sub, name, _, _, _) -> sub = "db" && name = "fsync")
      d.Trace.d_summary
  in
  checki "one span" 1 count;
  checki "span total equals the fsync bucket charge"
    (List.assoc "fsync" report)
    total

let test_trace_export_json () =
  Trace.enable ();
  Sched.run (fun () ->
      let flow = Trace.new_flow () in
      Trace.instant Probe.msnap_first_fault ~flow:(flow, Trace.Flow_start);
      Trace.with_span Probe.db_write (fun () -> Sched.delay 10);
      Trace.instant Probe.msnap_durable ~flow:(flow, Trace.Flow_end));
  Trace.disable ();
  let d = Trace.dump () in
  let path = Filename.temp_file "msnap_trace" ".json" in
  let oc = open_out path in
  Trace.export_json oc d;
  close_out oc;
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  List.iter
    (fun sub -> checkb sub true (contains s sub))
    [
      {|"traceEvents"|}; {|"ph":"X"|}; {|"ph":"i"|}; {|"ph":"s"|}; {|"ph":"f"|};
      {|"cat":"db"|}; {|"cat":"msnap"|}; {|"name":"msnap.first_fault"|};
      {|"displayTimeUnit"|};
    ]

let test_trace_buffer_cap_keeps_summary_exact () =
  Trace.enable ~limit:8 ();
  Sched.run (fun () ->
      for _ = 1 to 20 do
        Trace.complete Probe.db_write ~dur:5
      done);
  Trace.disable ();
  let d = Trace.dump () in
  checki "buffer capped" 8 d.Trace.d_count;
  (* 20 writes + the main thread's lifetime span, 8 kept. *)
  checki "overflow counted" 13 d.Trace.d_dropped;
  let _, _, count, total, _ =
    List.find
      (fun (sub, name, _, _, _) -> sub = "db" && name = "write")
      d.Trace.d_summary
  in
  checki "summary counts all emissions" 20 count;
  checki "summary total exact past the cap" 100 total

module Pq = Msnap_sim.Pq

let test_pq_order () =
  (* Interleaved pushes and pops must drain in (prio, insertion) order —
     exercises the vacated-slot clearing in pop. *)
  let q = Pq.create () in
  let popped = ref [] in
  let r = ref 12345 in
  let next () =
    r := (!r * 1103515245) + 12345;
    (!r lsr 16) land 0xff
  in
  for round = 0 to 4 do
    for _ = 1 to 50 do
      let p = next () in
      Pq.push q ~prio:p p
    done;
    for _ = 1 to 20 + round do
      match Pq.pop q with
      | Some v -> popped := v :: !popped
      | None -> Alcotest.fail "premature empty"
    done
  done;
  let rec drain () =
    match Pq.pop q with
    | Some v ->
      popped := v :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  checkb "empty" true (Pq.is_empty q);
  checki "popped all" 250 (List.length !popped);
  (* Each drained batch must be sorted w.r.t. what was in the queue; a
     global check: total multiset is preserved. *)
  let sum = List.fold_left ( + ) 0 !popped in
  checkb "sum positive" true (sum > 0)

let test_pq_fifo_ties () =
  let q = Pq.create () in
  List.iteri (fun i v -> ignore i; Pq.push q ~prio:7 v) [ "a"; "b"; "c"; "d" ];
  let out = List.init 4 (fun _ -> Option.get (Pq.pop q)) in
  checks "tie order" "a,b,c,d" (String.concat "," out)

let test_delay_fast_path_ordering () =
  (* A thread advancing via the inline fast path must still lose the race
     to work already queued at the same instant. *)
  let order =
    Sched.run (fun () ->
        let log = ref [] in
        let a =
          Sched.spawn ~name:"a" (fun () ->
              Sched.delay 100;
              log := "a" :: !log)
        in
        let b =
          Sched.spawn ~name:"b" (fun () ->
              (* Lands exactly on a's wake time: a was enqueued first, so a
                 must still run first even though b could fast-path. *)
              Sched.delay 60;
              Sched.delay 40;
              log := "b" :: !log)
        in
        Sched.join a;
        Sched.join b;
        List.rev !log)
  in
  checks "order" "a,b" (String.concat "," order)

(* --- waker pooling --- *)

let test_waker_pool_reuse () =
  (* A channel ping-pong parks thousands of times, but only a handful of
     threads are ever parked at once: nearly every park must be served
     from the per-engine waker free list, not a fresh allocation. *)
  let _, _, al0, re0 = Sched.host_counters () in
  Sched.run (fun () ->
      let ch = Sync.Channel.create ~capacity:1 in
      let a =
        Sched.spawn ~name:"send" (fun () ->
            for i = 1 to 2_000 do
              Sync.Channel.send ch i
            done)
      in
      let b =
        Sched.spawn ~name:"recv" (fun () ->
            for _ = 1 to 2_000 do
              ignore (Sync.Channel.recv ch)
            done)
      in
      Sched.join a;
      Sched.join b);
  let _, _, al1, re1 = Sched.host_counters () in
  checkb "few fresh wakers" true (al1 - al0 <= 8);
  checkb "parks served from the free list" true (re1 - re0 > 1_000)

let test_host_counters_ev_vs_ctx () =
  (* A lone thread yielding to itself pops run-queue events that hand the
     CPU straight back: events tick, context switches must not. *)
  let e0, c0, _, _ = Sched.host_counters () in
  Sched.run (fun () ->
      for _ = 1 to 50 do
        Sched.yield ()
      done);
  let e1, c1, _, _ = Sched.host_counters () in
  checkb "yields popped as events" true (e1 - e0 >= 50);
  checkb "self-resumes are not switches" true (c1 - c0 <= 2)

let test_waker_stale_wake_detected () =
  (* Wakers are recycled when their thread resumes; waking one after that
     point would target whatever park reused it. Under debug_checks the
     free list is disabled and released wakers are poisoned, so the
     stale wake surfaces as Violation. A double wake *before* the
     resume stays a legal no-op. *)
  let saved = !Msnap_util.Slice.debug_checks in
  Msnap_util.Slice.debug_checks := true;
  Fun.protect
    ~finally:(fun () -> Msnap_util.Slice.debug_checks := saved)
    (fun () ->
      Sched.run (fun () ->
          let leaked = ref None in
          let t =
            Sched.spawn ~name:"parker" (fun () ->
                Sched.suspend (fun w -> leaked := Some w))
          in
          Sched.yield ();
          let w = Option.get !leaked in
          Sched.wake w;
          Sched.wake w;
          (* still pre-resume: a no-op *)
          Sched.join t;
          match Sched.wake w with
          | () -> Alcotest.fail "stale wake not detected"
          | exception Sched.Violation _ -> ()))

let test_cpu_charges_across_threads_same_bucket () =
  (* Two threads charging the same bucket: the cached cells must alias the
     same counter. *)
  let report =
    Sched.run (fun () ->
        let w () = Sched.with_bucket Probe.Bucket.io (fun () -> Sched.cpu 30) in
        let t1 = Sched.spawn w in
        let t2 = Sched.spawn w in
        Sched.join t1;
        Sched.join t2;
        Sched.account_report ())
  in
  checki "io" 60 (List.assoc "io" report)

let test_account_report_only_charged_buckets () =
  (* Buckets appear in the report only once charged — entering a bucket
     without spending CPU must not materialize it. *)
  let report =
    Sched.run (fun () ->
        Sched.with_bucket Probe.Bucket.page_faults (fun () -> ());
        Sched.cpu 5;
        Sched.account_report ())
  in
  checkb "silent absent" true (List.assoc_opt "page faults" report = None);
  checki "user" 5 (List.assoc "user" report)

let test_determinism_end_to_end () =
  (* The same program must produce the identical trace twice. *)
  let program () =
    Sched.run (fun () ->
        let acc = ref [] in
        let m = Sync.Mutex.create () in
        let ts =
          List.init 8 (fun i ->
              Sched.spawn (fun () ->
                  Sched.delay ((i * 37) mod 5 * 10);
                  Sync.Mutex.with_lock m (fun () ->
                      Sched.cpu 13;
                      acc := (i, Sched.now ()) :: !acc)))
        in
        List.iter Sched.join ts;
        !acc)
  in
  Alcotest.(check (list (pair int int))) "identical" (program ()) (program ())

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "sim"
    [
      ( "sched",
        [
          tc "run returns" test_run_returns;
          tc "clock zero" test_clock_starts_zero;
          tc "delay" test_delay_advances;
          tc "cpu charges" test_cpu_advances_and_charges;
          tc "buckets" test_buckets;
          tc "spawn/join" test_spawn_join;
          tc "join finished" test_join_finished_thread;
          tc "interleave" test_concurrent_delays_interleave;
          tc "fifo ties" test_same_time_fifo;
          tc "deadlock" test_deadlock_detected;
          tc "exception" test_exception_propagates;
          tc "child exception" test_child_exception_propagates;
          tc "reusable after failure" test_run_not_nested_state;
          tc "delay fast path ordering" test_delay_fast_path_ordering;
          tc "shared bucket cells" test_cpu_charges_across_threads_same_bucket;
          tc "lazy bucket creation" test_account_report_only_charged_buckets;
          tc "typed bucket nesting" test_bucket_nesting_typed;
          tc "determinism" test_determinism_end_to_end;
        ] );
      ( "pq",
        [
          tc "interleaved order" test_pq_order;
          tc "fifo ties" test_pq_fifo_ties;
        ] );
      ( "waker",
        [
          tc "pool reuse" test_waker_pool_reuse;
          tc "stale wake detected" test_waker_stale_wake_detected;
          tc "events vs context switches" test_host_counters_ev_vs_ctx;
        ] );
      ( "sync",
        [
          tc "mutex exclusion" test_mutex_mutual_exclusion;
          tc "unlock unlocked" test_mutex_unlock_unlocked;
          tc "try_lock" test_try_lock;
          tc "cond broadcast" test_condition_broadcast;
          tc "semaphore" test_semaphore_bounds;
          tc "ivar" test_ivar;
          tc "channel" test_channel;
        ] );
      ( "metrics",
        [
          tc "counters and samples" test_metrics;
          tc "reset clears histograms" test_metrics_reset_clears_hists;
          tc "timed nesting" test_metrics_timed_nesting;
          tc "histogram sample counts" test_metrics_histogram_sample_counts;
        ] );
      ( "trace",
        [
          tc "disabled records nothing" test_trace_disabled_no_events;
          tc "span records probe and dur" test_trace_span_records;
          tc "flow ids unique" test_trace_flow_ids_unique;
          tc "summary reconciles buckets" test_trace_summary_reconciles_with_buckets;
          tc "export json shape" test_trace_export_json;
          tc "summary exact past cap" test_trace_buffer_cap_keeps_summary_exact;
        ] );
    ]
