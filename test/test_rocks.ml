module Sched = Msnap_sim.Sched
module Size = Msnap_util.Size
module Rng = Msnap_util.Rng
module Disk = Msnap_blockdev.Disk
module Stripe = Msnap_blockdev.Stripe
module Device = Msnap_blockdev.Device
module Store = Msnap_objstore.Store
module Phys = Msnap_vm.Phys
module Aspace = Msnap_vm.Aspace
module Fs = Msnap_fs.Fs
module Msnap = Msnap_core.Msnap
module Aurora = Msnap_aurora.Aurora
module Skiplist = Msnap_rocks.Skiplist
module Pskiplist = Msnap_rocks.Pskiplist
module Sstable = Msnap_rocks.Sstable
module Lsm = Msnap_rocks.Lsm
module Rocks = Msnap_rocks.Rocks

(* Run the whole suite with the data plane's ownership-rule checks on:
   the device checksums every lent slice at issue and re-verifies at
   commit/tear, so any zero-copy violation fails the tests loudly. *)
let () = Msnap_util.Slice.debug_checks := true

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let check_opt = Alcotest.(check (option string))
let in_sim f () = Sched.run f

(* --- volatile skiplist --- *)

let test_skiplist_basic () =
  in_sim (fun () ->
      let s = Skiplist.create () in
      Skiplist.insert s ~key:"b" ~value:"2";
      Skiplist.insert s ~key:"a" ~value:"1";
      Skiplist.insert s ~key:"c" ~value:"3";
      check_opt "find" (Some "2") (Skiplist.find s "b");
      check_opt "missing" None (Skiplist.find s "x");
      checki "count" 3 (Skiplist.count s);
      Skiplist.insert s ~key:"b" ~value:"22";
      check_opt "updated" (Some "22") (Skiplist.find s "b");
      checki "no dup" 3 (Skiplist.count s);
      checkb "delete" true (Skiplist.delete s "a");
      checkb "delete missing" false (Skiplist.delete s "a");
      checki "after delete" 2 (Skiplist.count s))
    ()

let test_skiplist_order () =
  in_sim (fun () ->
      let s = Skiplist.create () in
      let rng = Rng.create 5 in
      let keys = Array.init 2000 (fun i -> Printf.sprintf "%08d" i) in
      Rng.shuffle rng keys;
      Array.iter (fun k -> Skiplist.insert s ~key:k ~value:k) keys;
      let prev = ref "" in
      let ordered = ref true in
      Skiplist.iter s (fun k _ ->
          if k <= !prev then ordered := false;
          prev := k);
      checkb "sorted" true !ordered;
      checki "count" 2000 (Skiplist.count s);
      (* iter_from starts at the bound. *)
      let first = ref "" in
      Skiplist.iter_from s "00001000" (fun k _ ->
          first := k;
          false);
      Alcotest.(check string) "lower bound" "00001000" !first)
    ()

let prop_skiplist_model =
  QCheck.Test.make ~count:60 ~name:"skiplist agrees with Map model"
    QCheck.(list_of_size Gen.(int_range 1 300)
              (pair (int_bound 200) (option (int_bound 1000))))
    (fun ops ->
      Sched.run (fun () ->
          let module M = Map.Make (String) in
          let s = Skiplist.create () in
          let model = ref M.empty in
          List.iter
            (fun (k, v) ->
              let key = Printf.sprintf "%06d" k in
              match v with
              | Some v ->
                Skiplist.insert s ~key ~value:(string_of_int v);
                model := M.add key (string_of_int v) !model
              | None ->
                ignore (Skiplist.delete s key);
                model := M.remove key !model)
            ops;
          M.for_all (fun k v -> Skiplist.find s k = Some v) !model
          && Skiplist.count s = M.cardinal !model))

(* Reference MemTable: the original option-boxed skip list, kept
   verbatim as the oracle for the sentinel-node rewrite. Same RNG
   stream (same seed, one [Rng.int _ 4] run per fresh insert), so the
   tower heights — and therefore every [Sched.cpu] probe charge — must
   line up exactly with the production structure. *)
module Ref_skiplist = struct
  let max_level = 12

  type node = {
    key : string;
    mutable value : string;
    mutable deleted : bool;
    next : node option array;
  }

  type t = {
    head : node;
    rng : Rng.t;
    mutable level : int;
    mutable count : int;
    mutable bytes : int;
  }

  let hop_cost = 25

  let create ?(seed = 0x5C1B) () =
    {
      head = { key = ""; value = ""; deleted = false;
               next = Array.make max_level None };
      rng = Rng.create seed;
      level = 1;
      count = 0;
      bytes = 0;
    }

  let random_level t =
    let rec go l = if l < max_level && Rng.int t.rng 4 = 0 then go (l + 1) else l in
    go 1

  let find_path t key =
    let update = Array.make max_level t.head in
    let x = ref t.head in
    for lvl = t.level - 1 downto 0 do
      let continue_ = ref true in
      while !continue_ do
        Sched.cpu hop_cost;
        match !x.next.(lvl) with
        | Some n when n.key < key -> x := n
        | Some _ | None -> continue_ := false
      done;
      update.(lvl) <- !x
    done;
    update

  let insert t ~key ~value =
    let update = find_path t key in
    match update.(0).next.(0) with
    | Some n when n.key = key ->
      t.bytes <- t.bytes + String.length value - String.length n.value;
      n.value <- value;
      if n.deleted then begin
        n.deleted <- false;
        t.count <- t.count + 1
      end
    | Some _ | None ->
      let lvl = random_level t in
      if lvl > t.level then t.level <- lvl;
      let node = { key; value; deleted = false; next = Array.make lvl None } in
      for i = 0 to lvl - 1 do
        node.next.(i) <- update.(i).next.(i);
        update.(i).next.(i) <- Some node
      done;
      t.count <- t.count + 1;
      t.bytes <- t.bytes + String.length key + String.length value + (16 * lvl)

  let find t key =
    let update = find_path t key in
    match update.(0).next.(0) with
    | Some n when n.key = key && not n.deleted -> Some n.value
    | Some _ | None -> None

  let delete t key =
    let update = find_path t key in
    match update.(0).next.(0) with
    | Some n when n.key = key && not n.deleted ->
      n.deleted <- true;
      t.count <- t.count - 1;
      true
    | Some _ | None -> false

  let iter_from t key f =
    let update = find_path t key in
    let rec visit = function
      | None -> ()
      | Some n ->
        Sched.cpu hop_cost;
        if n.deleted then visit n.next.(0)
        else if f n.key n.value then visit n.next.(0)
    in
    visit update.(0).next.(0)

  let iter t f =
    let rec go = function
      | None -> ()
      | Some n ->
        if not n.deleted then f n.key n.value;
        go n.next.(0)
    in
    go t.head.next.(0)

  let count t = t.count
  let approximate_bytes t = t.bytes

  let clear t =
    Array.fill t.head.next 0 max_level None;
    t.level <- 1;
    t.count <- 0;
    t.bytes <- 0
end

(* Op streams over a small key pool (forcing updates, deletes and
   delete→reinsert cycles), long enough that [random_level] grows the
   index past level 1. Every observable — results, dump order, count,
   byte estimate, and the simulated nanoseconds each op charges via
   [Sched.cpu] — must match the reference exactly. *)
let prop_skiplist_vs_reference =
  let op_gen =
    QCheck.Gen.(
      frequency
        [
          (5, map (fun k -> `Insert k) (int_bound 120));
          (2, map (fun k -> `Delete k) (int_bound 120));
          (2, map (fun k -> `Find k) (int_bound 120));
          (1, map2 (fun k n -> `Iter_from (k, n)) (int_bound 120) (int_bound 20));
          (1, return `Clear);
        ])
  in
  let print_op = function
    | `Insert k -> Printf.sprintf "ins %d" k
    | `Delete k -> Printf.sprintf "del %d" k
    | `Find k -> Printf.sprintf "find %d" k
    | `Iter_from (k, n) -> Printf.sprintf "iter %d/%d" k n
    | `Clear -> "clear"
  in
  QCheck.Test.make ~count:40 ~name:"skiplist matches reference op-for-op"
    (QCheck.make ~print:QCheck.Print.(list print_op)
       QCheck.Gen.(list_size (int_range 50 600) op_gen))
    (fun ops ->
      Sched.run (fun () ->
          let seed = 0xD1FF in
          let s = Skiplist.create ~seed () in
          let r = Ref_skiplist.create ~seed () in
          let serial = ref 0 in
          let dump iter t =
            let acc = ref [] in
            iter t (fun k v -> acc := (k, v) :: !acc);
            List.rev !acc
          in
          let timed f =
            let t0 = Sched.now () in
            let x = f () in
            (x, Sched.now () - t0)
          in
          let ok = ref true in
          let check_eq a b = if a <> b then ok := false in
          List.iter
            (fun op ->
              (match op with
              | `Insert k ->
                let key = Printf.sprintf "%06d" k in
                incr serial;
                let value = Printf.sprintf "v%d" !serial in
                let ((), tn) = timed (fun () -> Skiplist.insert s ~key ~value) in
                let ((), tr) =
                  timed (fun () -> Ref_skiplist.insert r ~key ~value)
                in
                check_eq tn tr
              | `Delete k ->
                let key = Printf.sprintf "%06d" k in
                let bn, tn = timed (fun () -> Skiplist.delete s key) in
                let br, tr = timed (fun () -> Ref_skiplist.delete r key) in
                check_eq bn br;
                check_eq tn tr
              | `Find k ->
                let key = Printf.sprintf "%06d" k in
                let vn, tn = timed (fun () -> Skiplist.find s key) in
                let vr, tr = timed (fun () -> Ref_skiplist.find r key) in
                check_eq vn vr;
                check_eq tn tr
              | `Iter_from (k, n) ->
                let key = Printf.sprintf "%06d" k in
                let window iter_from t =
                  let acc = ref [] and taken = ref 0 in
                  iter_from t key (fun k v ->
                      if !taken < n then begin
                        acc := (k, v) :: !acc;
                        incr taken;
                        true
                      end
                      else false);
                  List.rev !acc
                in
                let wn, tn = timed (fun () -> window Skiplist.iter_from s) in
                let wr, tr =
                  timed (fun () -> window Ref_skiplist.iter_from r)
                in
                check_eq wn wr;
                check_eq tn tr
              | `Clear ->
                Skiplist.clear s;
                Ref_skiplist.clear r);
              check_eq (Skiplist.count s) (Ref_skiplist.count r);
              check_eq (Skiplist.approximate_bytes s)
                (Ref_skiplist.approximate_bytes r))
            ops;
          check_eq (dump Skiplist.iter s) (dump Ref_skiplist.iter r);
          !ok))

(* --- environments --- *)

let mk_dev ?(mib = 256) () =
  Device.of_stripe
    (Stripe.create [ Disk.create ~name:"d0" ~size:(Size.mib mib) ();
      Disk.create ~name:"d1" ~size:(Size.mib mib) () ])

let mk_fs () = Fs.mkfs (mk_dev ()) ~kind:Fs.Ffs

let mk_msnap ?(format = true) dev =
  let phys = Phys.create () in
  let aspace = Aspace.create phys in
  if format then Store.format dev;
  let store = Store.mount dev in
  let k = Msnap.init ~store in
  Msnap.attach k aspace;
  k

let mk_aurora dev =
  let phys = Phys.create () in
  let aspace = Aspace.create phys in
  Store.format dev;
  let store = Store.mount dev in
  Aurora.Kernel.create ~aspace ~store ()

let small_config = { Rocks.memtable_flush_bytes = Size.kib 64; region_pages = 4096 }

(* --- persistent skiplist --- *)

let mk_pskiplist () =
  let k = mk_msnap (mk_dev ()) in
  let md = Msnap.open_region k ~name:"ps" ~len:(4096 * 4096) () in
  let ops =
    {
      Pskiplist.ro_write = (fun ~off b -> Msnap.write k md ~off b);
      ro_read_into =
        (fun ~off buf ~pos ~len -> Msnap.read_into k md ~off buf ~pos ~len);
      ro_persist = (fun () -> ignore (Msnap.persist k ~region:md ()));
      ro_pages = 4096;
    }
  in
  (k, md, Pskiplist.create ops)

let test_pskiplist_basic () =
  in_sim (fun () ->
      let _, _, ps = mk_pskiplist () in
      Pskiplist.insert ps ~key:"beta" ~value:"2";
      Pskiplist.insert ps ~key:"alpha" ~value:"1";
      check_opt "find" (Some "1") (Pskiplist.find ps "alpha");
      check_opt "missing" None (Pskiplist.find ps "zeta");
      Pskiplist.insert ps ~key:"alpha" ~value:"1b";
      check_opt "update" (Some "1b") (Pskiplist.find ps "alpha");
      checki "count" 2 (Pskiplist.count ps);
      checkb "delete" true (Pskiplist.delete ps "alpha");
      check_opt "gone" None (Pskiplist.find ps "alpha"))
    ()

let test_pskiplist_recovery () =
  in_sim (fun () ->
      let dev = mk_dev () in
      let k = mk_msnap dev in
      let md = Msnap.open_region k ~name:"ps" ~len:(4096 * 4096) () in
      let ops =
        {
          Pskiplist.ro_write = (fun ~off b -> Msnap.write k md ~off b);
          ro_read_into =
        (fun ~off buf ~pos ~len -> Msnap.read_into k md ~off buf ~pos ~len);
          ro_persist = (fun () -> ignore (Msnap.persist k ~region:md ()));
          ro_pages = 4096;
        }
      in
      let ps = Pskiplist.create ops in
      for i = 0 to 199 do
        Pskiplist.insert ps ~key:(Printf.sprintf "%04d" i) ~value:(Printf.sprintf "v%d" i)
      done;
      (* Reboot; rebuild the index from the persisted linked list. *)
      let k2 = mk_msnap ~format:false dev in
      let md2 = Msnap.open_region k2 ~name:"ps" ~len:(4096 * 4096) () in
      let ops2 =
        {
          Pskiplist.ro_write = (fun ~off b -> Msnap.write k2 md2 ~off b);
          ro_read_into =
            (fun ~off buf ~pos ~len ->
              Msnap.read_into k2 md2 ~off buf ~pos ~len);
          ro_persist = (fun () -> ignore (Msnap.persist k2 ~region:md2 ()));
          ro_pages = 4096;
        }
      in
      let ps2 = Pskiplist.recover ops2 in
      checki "count recovered" 200 (Pskiplist.count ps2);
      check_opt "value" (Some "v123") (Pskiplist.find ps2 "0123");
      (* Still writable after recovery. *)
      Pskiplist.insert ps2 ~key:"9999" ~value:"new";
      check_opt "post-recovery insert" (Some "new") (Pskiplist.find ps2 "9999"))
    ()

(* --- sstable / lsm --- *)

let test_sstable_roundtrip () =
  in_sim (fun () ->
      let fs = mk_fs () in
      let pairs =
        List.init 500 (fun i -> (Printf.sprintf "%06d" i, Some (Printf.sprintf "v%d" i)))
      in
      let sst = Sstable.build fs ~name:"t.sst" pairs in
      checki "count" 500 (Sstable.count sst);
      checkb "get mid" true (Sstable.get sst "000250" = Some (Some "v250"));
      checkb "absent" true (Sstable.get sst "zzz" = None);
      checkb "absent low" true (Sstable.get sst "000000x" = None);
      let n = ref 0 in
      Sstable.iter sst (fun _ _ -> incr n);
      checki "iter all" 500 !n)
    ()

let test_sstable_tombstone () =
  in_sim (fun () ->
      let fs = mk_fs () in
      let sst = Sstable.build fs ~name:"t.sst" [ ("a", Some "1"); ("b", None) ] in
      checkb "tombstone" true (Sstable.get sst "b" = Some None))
    ()

let test_lsm_shadowing_and_compaction () =
  in_sim (fun () ->
      let fs = mk_fs () in
      let lsm = Lsm.create fs ~name:"l" in
      Lsm.add_run lsm [ ("a", Some "old"); ("b", Some "1") ];
      Lsm.add_run lsm [ ("a", Some "new") ];
      checkb "newest wins" true (Lsm.get lsm "a" = Some (Some "new"));
      Lsm.add_run lsm [ ("b", None) ];
      checkb "tombstone shadows" true (Lsm.get lsm "b" = Some None);
      (* Force compaction (trigger = 4). *)
      Lsm.add_run lsm [ ("c", Some "3") ];
      checkb "compacted" true (Lsm.compactions lsm >= 1);
      checki "l0 emptied" 0 (Lsm.l0_runs lsm);
      checkb "post-compaction reads" true (Lsm.get lsm "a" = Some (Some "new"));
      checkb "tombstone dropped after full merge" true (Lsm.get lsm "b" = None))
    ()

(* --- the three backends behave identically --- *)

let exercise db =
  Rocks.put db ~key:"k1" ~value:"v1";
  Rocks.put db ~key:"k3" ~value:"v3";
  Rocks.put_batch db [ ("k2", "v2"); ("k4", "v4") ];
  check_opt "get" (Some "2" |> Option.map (fun _ -> "v2")) (Rocks.get db "k2");
  check_opt "missing" None (Rocks.get db "nope");
  Rocks.delete db "k3";
  check_opt "deleted" None (Rocks.get db "k3");
  let window = Rocks.seek db "k1" ~n:10 in
  Alcotest.(check (list (pair string string)))
    "seek window"
    [ ("k1", "v1"); ("k2", "v2"); ("k4", "v4") ]
    window;
  checki "count" 3 (Rocks.count db)

let test_rocks_baseline () =
  in_sim (fun () -> exercise (Rocks.open_db (Rocks.Baseline (mk_fs ())) ~name:"db")) ()

let test_rocks_memsnap () =
  in_sim (fun () ->
      exercise
        (Rocks.open_db ~config:small_config (Rocks.Memsnap (mk_msnap (mk_dev ()))) ~name:"db"))
    ()

let test_rocks_aurora () =
  in_sim (fun () ->
      exercise
        (Rocks.open_db ~config:small_config (Rocks.Aurora (mk_aurora (mk_dev ()))) ~name:"db"))
    ()

let test_baseline_flush_and_compaction_under_load () =
  in_sim (fun () ->
      let db = Rocks.open_db ~config:small_config (Rocks.Baseline (mk_fs ())) ~name:"db" in
      let v = String.make 100 'v' in
      for i = 0 to 4_000 do
        Rocks.put db ~key:(Printf.sprintf "%08d" (i * 7919 mod 4000)) ~value:v
      done;
      checkb "flushed" true (Rocks.flushes db > 0);
      checkb "compacted" true (Rocks.compactions db > 0);
      (* Data correct across memtable + L0 + L1. *)
      check_opt "read back" (Some v) (Rocks.get db (Printf.sprintf "%08d" 42)))
    ()

let test_rocks_memsnap_recovery () =
  in_sim (fun () ->
      let dev = mk_dev () in
      let k = mk_msnap dev in
      let db = Rocks.open_db ~config:small_config (Rocks.Memsnap k) ~name:"db" in
      for i = 0 to 299 do
        Rocks.put db ~key:(Printf.sprintf "%05d" i) ~value:(string_of_int i)
      done;
      let module RR = (val Rocks.recoverable ~config:small_config ~name:"db" ()) in
      let r = RR.recover dev in
      let db2 = r.Rocks.db in
      checki "count" 300 (Rocks.count db2);
      check_opt "value" (Some "123") (Rocks.get db2 "00123");
      RR.dispose r)
    ()

(* §7.2's torture test: concurrent increment transactions, then verify
   the sum; then again with a crash. *)
let increment_run ?(guard = fun f -> f ()) ~threads ~keys ~txns ~incr_keys db
    rng_seed =
  (* Each thread owns a disjoint key slice: the upper layers of a real
     database serialize read-modify-writes with transaction locks, which
     this harness does not model; property (3) only covers page-level
     overwrites. *)
  let slice = keys / threads in
  let acked = ref 0 in
  let ts =
    List.init threads (fun t ->
        Sched.spawn ~name:(Printf.sprintf "w%d" t) (fun () ->
            guard (fun () ->
            let rng = Rng.create (rng_seed + t) in
            for _ = 1 to txns do
              let chosen =
                List.init incr_keys (fun _ -> (t * slice) + Rng.int rng slice)
                |> List.sort_uniq compare
              in
              let batch =
                List.map
                  (fun ki ->
                    let key = Printf.sprintf "%06d" ki in
                    let v =
                      match Rocks.get db key with
                      | Some v -> int_of_string v
                      | None -> 0
                    in
                    (key, string_of_int (v + 1)))
                  chosen
              in
              Rocks.put_batch db batch;
              acked := !acked + List.length batch
            done)))
  in
  List.iter Sched.join ts;
  !acked

let sum_values db keys =
  let total = ref 0 in
  for ki = 0 to keys - 1 do
    match Rocks.get db (Printf.sprintf "%06d" ki) with
    | Some v -> total := !total + int_of_string v
    | None -> ()
  done;
  !total

let test_increment_consistency () =
  in_sim (fun () ->
      let k = mk_msnap (mk_dev ()) in
      let db = Rocks.open_db ~config:small_config (Rocks.Memsnap k) ~name:"db" in
      (* Threads pick disjoint key ranges per txn via sort_uniq + the
         per-node locks; sum of values must equal acked increments. *)
      let acked = increment_run ~threads:4 ~keys:64 ~txns:25 ~incr_keys:4 db 99 in
      checki "sum matches acks" acked (sum_values db 64))
    ()

let test_increment_crash_consistency () =
  in_sim (fun () ->
      let dev = mk_dev () in
      let k = mk_msnap dev in
      let db = Rocks.open_db ~config:small_config (Rocks.Memsnap k) ~name:"db" in
      (* Run increments in background; pull the plug mid-run. *)
      let stop_exn = ref false in
      let guard f =
        try f () with Disk.Powered_off -> stop_exn := true
      in
      let worker =
        Sched.spawn ~name:"torture" (fun () ->
            ignore
              (increment_run ~guard ~threads:1 ~keys:32 ~txns:500 ~incr_keys:3 db 7))
      in
      Sched.delay 3_000_000;
      Device.fail_power dev ~torn_seed:123;
      Sched.join worker;
      Device.restore_power dev;
      (* Recover and verify: every key's value must be a valid integer,
         and the state must be a transaction-consistent prefix: since each
         batch commits atomically, the recovered sum is the number of
         committed increments — necessarily <= issued ones, and readable
         without corruption. *)
      let module RR = (val Rocks.recoverable ~config:small_config ~name:"db" ()) in
      let r = RR.recover dev in
      let db2 = r.Rocks.db in
      let sum = sum_values db2 32 in
      checkb "recovered uncorrupted, non-trivial prefix" true (sum >= 0);
      checkb "made progress before crash" true (sum > 0);
      RR.dispose r)
    ()

let test_aurora_serializes_checkpoints () =
  in_sim (fun () ->
      (* Concurrent writers: Aurora flat-combines, MemSnap proceeds in
         parallel — MemSnap should finish the same work much faster. *)
      let run backend =
        let db = Rocks.open_db ~config:small_config backend ~name:"db" in
        (* Populate first: Aurora's shadow/collapse cost is proportional
           to the *resident* mapping, not the dirty set. *)
        Rocks.put_batch db
          (List.init 1500 (fun i -> (Printf.sprintf "fill%06d" i, "x")));
        let t0 = Sched.now () in
        let ts =
          List.init 8 (fun t ->
              Sched.spawn (fun () ->
                  for i = 0 to 19 do
                    Rocks.put db
                      ~key:(Printf.sprintf "%02d-%03d" t i)
                      ~value:"payload"
                  done))
        in
        List.iter Sched.join ts;
        Sched.now () - t0
      in
      let memsnap_ns = run (Rocks.Memsnap (mk_msnap (mk_dev ()))) in
      let aurora_ns = run (Rocks.Aurora (mk_aurora (mk_dev ()))) in
      checkb
        (Printf.sprintf "aurora (%d) slower than memsnap (%d)" aurora_ns memsnap_ns)
        true
        (aurora_ns > 2 * memsnap_ns))
    ()

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "rocks"
    [
      ( "skiplist",
        [
          tc "basic" test_skiplist_basic;
          tc "order" test_skiplist_order;
          QCheck_alcotest.to_alcotest prop_skiplist_model;
          QCheck_alcotest.to_alcotest prop_skiplist_vs_reference;
        ] );
      ( "pskiplist",
        [
          tc "basic" test_pskiplist_basic;
          tc "recovery" test_pskiplist_recovery;
        ] );
      ( "sstable",
        [
          tc "roundtrip" test_sstable_roundtrip;
          tc "tombstone" test_sstable_tombstone;
        ] );
      ("lsm", [ tc "shadowing+compaction" test_lsm_shadowing_and_compaction ]);
      ( "db",
        [
          tc "baseline" test_rocks_baseline;
          tc "memsnap" test_rocks_memsnap;
          tc "aurora" test_rocks_aurora;
          tc "flush/compaction" test_baseline_flush_and_compaction_under_load;
          tc "memsnap recovery" test_rocks_memsnap_recovery;
          tc "aurora serializes" test_aurora_serializes_checkpoints;
        ] );
      ( "torture",
        [
          tc "increment consistency" test_increment_consistency;
          tc "crash consistency" test_increment_crash_consistency;
        ] );
    ]
