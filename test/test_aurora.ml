module Sched = Msnap_sim.Sched
module Size = Msnap_util.Size
module Disk = Msnap_blockdev.Disk
module Stripe = Msnap_blockdev.Stripe
module Device = Msnap_blockdev.Device
module Store = Msnap_objstore.Store
module Phys = Msnap_vm.Phys
module Aspace = Msnap_vm.Aspace
module Aurora = Msnap_aurora.Aurora

(* Run the whole suite with the data plane's ownership-rule checks on:
   the device checksums every lent slice at issue and re-verifies at
   commit/tear, so any zero-copy violation fails the tests loudly. *)
let () = Msnap_util.Slice.debug_checks := true

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let in_sim f () = Sched.run f

let mk_dev () =
  Device.of_stripe
    (Stripe.create [ Disk.create ~name:"d0" ~size:(Size.mib 32) ();
      Disk.create ~name:"d1" ~size:(Size.mib 32) () ])

let mk_kernel ?(format = true) ?other_mapped_pages dev =
  let phys = Phys.create () in
  let aspace = Aspace.create phys in
  if format then Store.format dev;
  let store = Store.mount dev in
  (Aurora.Kernel.create ~aspace ~store ?other_mapped_pages (), aspace)

let test_region_write_read () =
  in_sim (fun () ->
      let k, _ = mk_kernel (mk_dev ()) in
      let r = Aurora.Region.create k ~name:"r" ~va:0x5000_0000 ~len:(Size.kib 64) in
      Aurora.Region.write r ~off:123 (Bytes.of_string "aurora");
      checks "roundtrip" "aurora"
        (Bytes.to_string (Aurora.Region.read r ~off:123 ~len:6)))
    ()

let test_checkpoint_persists () =
  in_sim (fun () ->
      let dev = mk_dev () in
      let k, _ = mk_kernel dev in
      let r = Aurora.Region.create k ~name:"r" ~va:0x5000_0000 ~len:(Size.kib 64) in
      Aurora.Region.write r ~off:0 (Bytes.of_string "ckpt");
      Aurora.Region.checkpoint r;
      (* Reboot. *)
      let k2, _ = mk_kernel ~format:false dev in
      let r2 = Aurora.Region.create k2 ~name:"r" ~va:0x5000_0000 ~len:(Size.kib 64) in
      checks "recovered" "ckpt"
        (Bytes.to_string (Aurora.Region.read r2 ~off:0 ~len:4)))
    ()

let test_incremental_checkpoint () =
  in_sim (fun () ->
      let dev = mk_dev () in
      let k, _ = mk_kernel dev in
      let r = Aurora.Region.create k ~name:"r" ~va:0x5000_0000 ~len:(Size.kib 64) in
      Aurora.Region.write r ~off:0 (Bytes.make 4096 'a');
      Aurora.Region.checkpoint r;
      (* Dirty exactly one page of many: checkpoint flushes only it. *)
      Aurora.Region.write r ~off:(8 * 4096) (Bytes.make 10 'b');
      let t0 = Sched.now () in
      Aurora.Region.checkpoint r;
      let small = Sched.now () - t0 in
      (* Dirty 12 pages: flush is bigger but both scan the same mapping. *)
      for i = 0 to 11 do
        Aurora.Region.write r ~off:(i * 4096) (Bytes.make 10 'c')
      done;
      let t1 = Sched.now () in
      Aurora.Region.checkpoint r;
      let large = Sched.now () - t1 in
      checkb "incremental: larger dirty set costs more IO" true (large > small))
    ()

let test_breakdown_phases () =
  in_sim (fun () ->
      let k, _ = mk_kernel (mk_dev ()) in
      Aurora.Kernel.register_thread k;
      let r = Aurora.Region.create k ~name:"r" ~va:0x5000_0000 ~len:(Size.mib 8) in
      (* Populate the mapping densely so shadow/collapse have the page
         population a real heap mapping would. *)
      for i = 0 to 1023 do
        Aurora.Region.write r ~off:(i * 4096 * 2) (Bytes.make 64 'p')
      done;
      (* Clean the population, then measure a 64 KiB-dirty checkpoint. *)
      Aurora.Region.checkpoint r;
      Aurora.Region.write r ~off:0 (Bytes.make (Size.kib 64) 'd');
      Aurora.Region.checkpoint r;
      match Aurora.Region.last_breakdown r with
      | None -> Alcotest.fail "no breakdown"
      | Some b ->
        checkb "stall > 0" true (b.Aurora.Region.stall > 0);
        checkb "shadow > 0" true (b.Aurora.Region.shadow > 0);
        checkb "io > 0" true (b.Aurora.Region.io > 0);
        checkb "collapse > 0" true (b.Aurora.Region.collapse > 0);
        (* Table 2's signature: shadow+collapse dominate the IO. *)
        checkb "shadowing overhead dominates" true
          (b.Aurora.Region.shadow + b.Aurora.Region.collapse > b.Aurora.Region.io))
    ()

let test_shadow_cost_scales_with_mapping () =
  in_sim (fun () ->
      let k, _ = mk_kernel (mk_dev ()) in
      let ckpt_cost ~name ~va ~pages =
        let r = Aurora.Region.create k ~name ~va ~len:(pages * 4096) in
        (* Populate everything; dirty only one page. *)
        for i = 0 to pages - 1 do
          Aurora.Region.write r ~off:(i * 4096) (Bytes.make 8 'x')
        done;
        Aurora.Region.checkpoint r;
        Aurora.Region.write r ~off:0 (Bytes.make 8 'y');
        let t0 = Sched.now () in
        Aurora.Region.checkpoint r;
        Sched.now () - t0
      in
      let small = ckpt_cost ~name:"small" ~va:0x5000_0000 ~pages:64 in
      let big = ckpt_cost ~name:"big" ~va:0x6000_0000 ~pages:4096 in
      (* Same 1-page dirty set, 64x mapping: checkpoint must get much
         slower — the fixed cost MemSnap avoids. *)
      checkb "cost scales with mapping size" true (big > 3 * small))
    ()

let test_cow_during_flight () =
  in_sim (fun () ->
      let dev = mk_dev () in
      let k, _ = mk_kernel dev in
      let r = Aurora.Region.create k ~name:"r" ~va:0x5000_0000 ~len:(Size.kib 64) in
      Aurora.Region.write r ~off:0 (Bytes.of_string "OLD!");
      (* Run the checkpoint in a thread; write during its IO window. *)
      let c = Sched.spawn (fun () -> Aurora.Region.checkpoint r) in
      Sched.delay 25_000; (* past shadow, inside IO *)
      Aurora.Region.write r ~off:0 (Bytes.of_string "NEW!");
      Sched.join c;
      checks "memory has new data" "NEW!"
        (Bytes.to_string (Aurora.Region.read r ~off:0 ~len:4));
      let k2, _ = mk_kernel ~format:false dev in
      let r2 = Aurora.Region.create k2 ~name:"r" ~va:0x5000_0000 ~len:(Size.kib 64) in
      checks "checkpoint captured old data" "OLD!"
        (Bytes.to_string (Aurora.Region.read r2 ~off:0 ~len:4)))
    ()

let test_writes_stall_during_stop_the_world () =
  in_sim (fun () ->
      let k, _ = mk_kernel (mk_dev ()) in
      Aurora.Kernel.register_thread k;
      let r = Aurora.Region.create k ~name:"r" ~va:0x5000_0000 ~len:(Size.mib 4) in
      for i = 0 to 1023 do
        Aurora.Region.write r ~off:(i * 4096) (Bytes.make 8 'x')
      done;
      let c = Sched.spawn (fun () -> Aurora.Region.checkpoint r) in
      Sched.delay 100; (* let the checkpoint stop the world *)
      let t0 = Sched.now () in
      Aurora.Region.write r ~off:0 (Bytes.make 8 'y');
      let stalled = Sched.now () - t0 in
      Sched.join c;
      checkb "writer stalled through shadowing" true (stalled > 1_000))
    ()

let test_flat_combining () =
  in_sim (fun () ->
      let k, _ = mk_kernel (mk_dev ()) in
      let r = Aurora.Region.create k ~name:"r" ~va:0x5000_0000 ~len:(Size.kib 64) in
      let done_count = ref 0 in
      let ts =
        List.init 8 (fun i ->
            Sched.spawn (fun () ->
                Aurora.Region.write r ~off:(i * 4096) (Bytes.make 8 'z');
                Aurora.Region.checkpoint r;
                incr done_count))
      in
      List.iter Sched.join ts;
      checki "all callers complete" 8 !done_count)
    ()

let test_app_checkpoint_slower_than_region () =
  in_sim (fun () ->
      let k, _ = mk_kernel ~other_mapped_pages:65536 (mk_dev ()) in
      let r = Aurora.Region.create k ~name:"r" ~va:0x5000_0000 ~len:(Size.kib 256) in
      Aurora.Region.write r ~off:0 (Bytes.make 4096 'a');
      Aurora.Region.checkpoint r;
      Aurora.Region.write r ~off:0 (Bytes.make 4096 'b');
      let t0 = Sched.now () in
      Aurora.Region.checkpoint r;
      let region_ns = Sched.now () - t0 in
      Aurora.Region.write r ~off:0 (Bytes.make 4096 'c');
      let t1 = Sched.now () in
      Aurora.checkpoint_app k;
      let app_ns = Sched.now () - t1 in
      checkb "app checkpoint order of magnitude slower" true (app_ns > 5 * region_ns))
    ()

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "aurora"
    [
      ( "region",
        [
          tc "write/read" test_region_write_read;
          tc "checkpoint persists" test_checkpoint_persists;
          tc "incremental" test_incremental_checkpoint;
        ] );
      ( "shadowing",
        [
          tc "breakdown phases" test_breakdown_phases;
          tc "cost scales with mapping" test_shadow_cost_scales_with_mapping;
          tc "cow during flight" test_cow_during_flight;
          tc "stop-the-world stalls writers" test_writes_stall_during_stop_the_world;
          tc "flat combining" test_flat_combining;
        ] );
      ("app", [ tc "app ckpt slower" test_app_checkpoint_slower_than_region ]);
    ]
