(* Quickstart: the MemSnap API in five minutes.

   Build a simulated machine, open a persistent region, modify it in
   place, persist with one call, pull the plug, and recover — no file API,
   no WAL, pointers intact.

   Run with: dune exec examples/quickstart.exe *)

module Sched = Msnap_sim.Sched
module Size = Msnap_util.Size
module Disk = Msnap_blockdev.Disk
module Stripe = Msnap_blockdev.Stripe
module Device = Msnap_blockdev.Device
module Store = Msnap_objstore.Store
module Phys = Msnap_vm.Phys
module Aspace = Msnap_vm.Aspace
module Msnap = Msnap_core.Msnap

let say fmt = Printf.printf (fmt ^^ "\n%!")

(* One "machine": two striped NVMe devices, physical memory, a process. *)
let boot ?(format = false) dev =
  let phys = Phys.create () in
  let aspace = Aspace.create phys in
  if format then Store.format dev;
  let kernel = Msnap.init ~store:(Store.mount dev) in
  Msnap.attach kernel aspace;
  kernel

let () =
  Sched.run @@ fun () ->
  let dev =
    Device.of_stripe
    (Stripe.create [ Disk.create ~name:"nvme0" ~size:(Size.mib 64) ();
        Disk.create ~name:"nvme1" ~size:(Size.mib 64) () ])
  in

  say "== first boot ==";
  let k = boot ~format:true dev in

  (* msnap_open: create a persistent region. It gets a fixed virtual
     address, so pointers into it stay valid across reboots. *)
  let md = Msnap.open_region k ~name:"my-data" ~len:(Size.kib 256) () in
  say "region %S mapped at 0x%x (%s)" (Msnap.name md) (Msnap.addr md)
    (Size.pp (Msnap.length md));

  (* Modify memory in place. The kernel tracks the dirty pages of this
     thread transparently — no write() calls, no logging code. *)
  Msnap.write_string k md ~off:0 "balance=100";
  Msnap.write_string k md ~off:4096 "audit: opened account";
  say "dirtied %d pages by plain stores" (Msnap.dirty_count k);

  (* msnap_persist: one call makes the transaction durable, atomically. *)
  let t0 = Sched.now () in
  let epoch = Msnap.persist k ~region:md () in
  say "persisted as epoch %d in %.1f us" epoch
    (float_of_int (Sched.now () - t0) /. 1e3);

  (* More work that we do NOT persist... *)
  Msnap.write_string k md ~off:0 "balance=999999";
  say "uncommitted tamper in memory: %S"
    (Bytes.to_string (Msnap.read k md ~off:0 ~len:14));

  say "== power failure! ==";
  Device.fail_power dev ~torn_seed:42;
  Device.restore_power dev;

  say "== reboot and recover ==";
  let k2 = boot dev in
  let md2 = Msnap.open_region k2 ~name:"my-data" ~len:(Size.kib 256) () in
  say "region recovered at 0x%x (same address: %b)" (Msnap.addr md2)
    (Msnap.addr md2 = Msnap.addr md);
  say "page 0: %S" (Bytes.to_string (Msnap.read k2 md2 ~off:0 ~len:11));
  say "page 1: %S" (Bytes.to_string (Msnap.read k2 md2 ~off:4096 ~len:21));
  say "the persisted epoch survived; the tamper did not."
