(* An embedded SQL-style database on the MemSnap plugin (§7.1).

   The same B-tree storage engine runs over either persistence backend;
   here we use the MemSnap one: the database file is a persistent region,
   every transaction commit is a μCheckpoint, and there is no WAL file and
   no checkpointing. We run a small order-management app, compare the
   system-call profile against the file-API baseline, and recover after a
   crash.

   Run with: dune exec examples/sqlite_app.exe *)

module Sched = Msnap_sim.Sched
module Metrics = Msnap_sim.Metrics
module Probe = Msnap_sim.Probe
module Size = Msnap_util.Size
module Disk = Msnap_blockdev.Disk
module Stripe = Msnap_blockdev.Stripe
module Device = Msnap_blockdev.Device
module Store = Msnap_objstore.Store
module Phys = Msnap_vm.Phys
module Aspace = Msnap_vm.Aspace
module Fs = Msnap_fs.Fs
module Msnap = Msnap_core.Msnap
module Db = Msnap_sqlite.Db
module Backend_wal = Msnap_sqlite.Backend_wal
module Backend_msnap = Msnap_sqlite.Backend_msnap

let say fmt = Printf.printf (fmt ^^ "\n%!")

let mk_dev () =
  Device.of_stripe
    (Stripe.create [ Disk.create ~size:(Size.mib 128) (); Disk.create ~size:(Size.mib 128) () ])

let app_workload db =
  let orders = Db.create_table db "orders" in
  let customers = Db.create_table db "customers" in
  for c = 0 to 49 do
    Db.with_write_txn db (fun () ->
        Db.put customers ~key:(Db.key_of_int c) ~value:(Printf.sprintf "customer-%d" c))
  done;
  for o = 0 to 499 do
    Db.with_write_txn db (fun () ->
        Db.put orders ~key:(Db.key_of_int o)
          ~value:(Printf.sprintf "order %d by customer %d" o (o mod 50)))
  done

let () =
  Sched.run @@ fun () ->
  (* Baseline: WAL file + checkpoints over the file API. *)
  Metrics.reset ();
  let fs = Fs.mkfs (mk_dev ()) ~kind:Fs.Ffs in
  let wal_db = Db.open_db (Backend_wal.backend (Backend_wal.create fs ~db_name:"app.db" ())) in
  app_workload wal_db;
  say "baseline (WAL+checkpoint): %4d fsync, %5d write, mean fsync %.0f us"
    (Metrics.count Probe.db_fsync) (Metrics.count Probe.db_write)
    (Metrics.mean_ns Probe.db_fsync /. 1e3);

  (* MemSnap plugin: same storage engine, no files. *)
  Metrics.reset ();
  let dev = mk_dev () in
  let phys = Phys.create () in
  let aspace = Aspace.create phys in
  Store.format dev;
  let k = Msnap.init ~store:(Store.mount dev) in
  Msnap.attach k aspace;
  let be = Backend_msnap.create k ~db_name:"app.db" ~max_pages:16384 in
  let ms_db = Db.open_db (Backend_msnap.backend be) in
  app_workload ms_db;
  say "memsnap plugin:            %4d msnap_persist, 0 fsync, mean persist %.0f us"
    (Metrics.count Probe.db_memsnap)
    (Metrics.mean_ns Probe.db_memsnap /. 1e3);

  say "== crash and recover the memsnap database ==";
  Device.fail_power dev ~torn_seed:99;
  Device.restore_power dev;
  let phys2 = Phys.create () in
  let aspace2 = Aspace.create phys2 in
  let k2 = Msnap.init ~store:(Store.mount dev) in
  Msnap.attach k2 aspace2;
  let be2 = Backend_msnap.create k2 ~db_name:"app.db" ~max_pages:16384 in
  let db2 = Db.open_db (Backend_msnap.backend be2) in
  let orders = Option.get (Db.table db2 "orders") in
  say "orders recovered: %d rows; order 123 = %S" (Db.count orders)
    (Option.get (Db.get orders (Db.key_of_int 123)));
  assert (Db.count orders = 500)
