(* A WAL-free key-value store (the §7.2 design, as a library user).

   The RocksDB case-study backend is reusable on its own: a persistent
   skip list in a MemSnap region, one μCheckpoint per write batch, no
   write-ahead log, no SSTables, no compaction. This example runs a small
   update-heavy workload, crashes, recovers (rebuilding the skip-pointer
   index from the persisted linked list) and verifies the data.

   Run with: dune exec examples/kv_store.exe *)

module Sched = Msnap_sim.Sched
module Rng = Msnap_util.Rng
module Size = Msnap_util.Size
module Disk = Msnap_blockdev.Disk
module Stripe = Msnap_blockdev.Stripe
module Device = Msnap_blockdev.Device
module Store = Msnap_objstore.Store
module Phys = Msnap_vm.Phys
module Aspace = Msnap_vm.Aspace
module Msnap = Msnap_core.Msnap
module Rocks = Msnap_rocks.Rocks

let say fmt = Printf.printf (fmt ^^ "\n%!")

let boot dev =
  let phys = Phys.create () in
  let aspace = Aspace.create phys in
  Store.format dev;
  let kernel = Msnap.init ~store:(Store.mount dev) in
  Msnap.attach kernel aspace;
  kernel

let config = { Rocks.default_config with region_pages = 8192 }

let () =
  Sched.run @@ fun () ->
  let dev =
    Device.of_stripe
    (Stripe.create [ Disk.create ~size:(Size.mib 128) (); Disk.create ~size:(Size.mib 128) () ])
  in
  let k = boot dev in
  let db = Rocks.open_db ~config (Rocks.Memsnap k) ~name:"kv" in

  say "== loading 1000 keys (each put is one durable μCheckpoint) ==";
  let t0 = Sched.now () in
  for i = 0 to 999 do
    Rocks.put db ~key:(Printf.sprintf "user:%04d" i)
      ~value:(Printf.sprintf "{\"id\": %d, \"visits\": 0}" i)
  done;
  say "loaded in %.2f ms of simulated time (%.1f us per durable put)"
    (float_of_int (Sched.now () - t0) /. 1e6)
    (float_of_int (Sched.now () - t0) /. 1e3 /. 1000.);

  (* Atomic multi-key transaction: a WriteCommitted batch is one
     μCheckpoint. *)
  Rocks.put_batch db
    [ ("user:0001", "{\"id\": 1, \"visits\": 7}");
      ("user:0002", "{\"id\": 2, \"visits\": 3}");
      ("audit:last", "updated 1 and 2 together") ];
  say "batch committed atomically";

  (* Ordered scans work straight off the persistent skip list. *)
  let window = Rocks.seek db "user:0500" ~n:3 in
  say "seek(user:0500, 3):";
  List.iter (fun (key, v) -> say "  %s -> %s" key v) window;

  say "== crash ==";
  Device.fail_power dev ~torn_seed:3;
  Device.restore_power dev;

  say "== recover: remount the store, remap the region, rebuild skip pointers ==";
  let module RR = (val Rocks.recoverable ~config ~name:"kv" ()) in
  let t0 = Sched.now () in
  let r = RR.recover dev in
  let db2 = r.Rocks.db in
  say "recovered %d keys in %.2f ms" (Rocks.count db2)
    (float_of_int (Sched.now () - t0) /. 1e6);
  say "user:0001 = %s" (Option.get (Rocks.get db2 "user:0001"));
  say "audit:last = %s" (Option.get (Rocks.get db2 "audit:last"));
  assert (Rocks.count db2 = 1001)
