(* A bank ledger with fearless persistence.

   Every account lives on its own page of a MemSnap region (property ②);
   a transfer dirties exactly two pages and commits them atomically with
   one msnap_persist — multi-page atomicity that fsync cannot give
   (§2: "file systems lack the ability to atomically update multiple
   files"). We hammer the ledger with concurrent transfers, crash the
   machine mid-flight, recover, and check that money was neither created
   nor destroyed.

   Run with: dune exec examples/bank_ledger.exe *)

module Sched = Msnap_sim.Sched
module Sync = Msnap_sim.Sync
module Rng = Msnap_util.Rng
module Size = Msnap_util.Size
module Disk = Msnap_blockdev.Disk
module Stripe = Msnap_blockdev.Stripe
module Device = Msnap_blockdev.Device
module Store = Msnap_objstore.Store
module Phys = Msnap_vm.Phys
module Aspace = Msnap_vm.Aspace
module Msnap = Msnap_core.Msnap

let say fmt = Printf.printf (fmt ^^ "\n%!")

let accounts = 32
let initial_balance = 1_000
let page = 4096

let boot ?(format = false) dev =
  let phys = Phys.create () in
  let aspace = Aspace.create phys in
  if format then Store.format dev;
  let kernel = Msnap.init ~store:(Store.mount dev) in
  Msnap.attach kernel aspace;
  kernel

let read_balance k md acct =
  Int64.to_int (Bytes.get_int64_le (Msnap.read k md ~off:(acct * page) ~len:8) 0)

let write_balance k md acct v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Msnap.write k md ~off:(acct * page) b

let total k md =
  let sum = ref 0 in
  for a = 0 to accounts - 1 do
    sum := !sum + read_balance k md a
  done;
  !sum

let () =
  Sched.run @@ fun () ->
  let dev =
    Device.of_stripe
    (Stripe.create [ Disk.create ~size:(Size.mib 64) (); Disk.create ~size:(Size.mib 64) () ])
  in
  let k = boot ~format:true dev in
  let md = Msnap.open_region k ~name:"ledger" ~len:(accounts * page) () in

  (* Fund the accounts and persist the opening state. *)
  for a = 0 to accounts - 1 do
    write_balance k md a initial_balance
  done;
  ignore (Msnap.persist k ~region:md ());
  say "opened %d accounts, total %d" accounts (total k md);

  (* Concurrent tellers transfer money. Each account has a lock (property
     ③: an account page is not re-dirtied while its μCheckpoint could be
     pending), and each transfer is one atomic two-page μCheckpoint. *)
  let locks = Array.init accounts (fun _ -> Sync.Mutex.create ()) in
  let transfers_done = ref 0 in
  let teller id =
    let rng = Rng.create (900 + id) in
    try
      while true do
        let a = Rng.int rng accounts in
        let b = (a + 1 + Rng.int rng (accounts - 1)) mod accounts in
        let lo, hi = (min a b, max a b) in
        Sync.Mutex.lock locks.(lo);
        Sync.Mutex.lock locks.(hi);
        (* Release the account locks even when the power fails mid-
           transfer, so the other tellers can observe the outage too. *)
        Fun.protect
          ~finally:(fun () ->
            Sync.Mutex.unlock locks.(hi);
            Sync.Mutex.unlock locks.(lo))
          (fun () ->
            let amount = 1 + Rng.int rng 50 in
            let ba = read_balance k md a in
            if ba >= amount then begin
              write_balance k md a (ba - amount);
              write_balance k md b (read_balance k md b + amount);
              ignore (Msnap.persist k ~region:md ());
              incr transfers_done
            end)
      done
    with Msnap_blockdev.Disk.Powered_off -> ()
  in
  let tellers = List.init 4 (fun i -> Sched.spawn ~name:"teller" (fun () -> teller i)) in

  (* Let them run, then pull the plug mid-transfer. *)
  Sched.delay 40_000_000;
  say "crash after %d acknowledged transfers..." !transfers_done;
  Device.fail_power dev ~torn_seed:7;
  List.iter Sched.join tellers;
  Device.restore_power dev;

  let k2 = boot dev in
  let md2 = Msnap.open_region k2 ~name:"ledger" ~len:(accounts * page) () in
  let recovered = total k2 md2 in
  say "recovered total: %d (expected %d) -> %s" recovered
    (accounts * initial_balance)
    (if recovered = accounts * initial_balance then "conserved: no torn transfer"
     else "MONEY LEAKED - atomicity violated!");
  assert (recovered = accounts * initial_balance)
