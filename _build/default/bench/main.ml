(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation. Run everything with `dune exec bench/main.exe`, or one
   experiment with `-e table6` etc. *)

let experiments =
  [
    ("table1", ("RocksDB baseline CPU breakdown", Exp_rocks.table1));
    ("table2", ("Aurora region checkpoint breakdown", Exp_micro.table2));
    ("fig1", ("page-protection strategies", Exp_micro.fig1));
    ("table5", ("msnap_persist breakdown", Exp_micro.table5));
    ("table6", ("persistence API latency", Exp_micro.table6));
    ("fig3", ("MemSnap vs Aurora checkpoint latency", Exp_micro.fig3));
    ("table7", ("SQLite dbbench syscalls", Exp_sqlite.table7));
    ("table8", ("SQLite dbbench CPU + wall clock", Exp_sqlite.table8));
    ("fig4", ("SQLite txn latency vs size", Exp_sqlite.fig4));
    ("fig5", ("SQLite TATP throughput vs DB size", Exp_sqlite.fig5));
    ("table9", ("RocksDB MixGraph comparison", Exp_rocks.table9));
    ("table10", ("MemSnap vs Aurora persist cost", Exp_micro.table10));
    ("fig6", ("PostgreSQL TPC-C variants", Exp_pg.fig6));
    ("bechamel", ("wall-clock micro-suite", Bechamel_suite.run));
  ]

let run_one name =
  match List.assoc_opt name experiments with
  | Some (_, f) -> f ()
  | None ->
    Printf.eprintf "unknown experiment %s; available: %s\n" name
      (String.concat ", " (List.map fst experiments));
    exit 1

let run names =
  (match names with
  | [] ->
    print_endline "MemSnap reproduction: regenerating every table and figure";
    List.iter (fun (_, (_, f)) -> f ()) experiments
  | names -> List.iter run_one names);
  print_endline "\ndone."

open Cmdliner

let names =
  Arg.(value & opt_all string [] & info [ "e"; "experiment" ]
         ~doc:"Experiment id (table1..table10, fig1..fig6, bechamel). \
               Repeatable; default runs all.")

let cmd =
  Cmd.v
    (Cmd.info "memsnap-bench"
       ~doc:"Reproduce the MemSnap paper's evaluation tables and figures")
    Term.(const run $ names)

let () = exit (Cmd.eval cmd)
