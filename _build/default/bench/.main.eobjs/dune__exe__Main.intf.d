bench/main.mli:
