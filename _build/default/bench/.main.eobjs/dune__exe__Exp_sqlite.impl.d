bench/exp_sqlite.ml: Env Fs Histogram List Metrics Msnap_sqlite Msnap_workloads Printf Rng Sched Size String Tbl
