bench/exp_micro.ml: Addr Aspace Aurora Bytes Env Fs Hashtbl List Metrics Msnap Msnap_vm Phys Rng Sched Size Stripe Tbl
