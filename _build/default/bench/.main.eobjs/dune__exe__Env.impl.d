bench/env.ml: Bytes Hashtbl List Msnap_aurora Msnap_blockdev Msnap_core Msnap_fs Msnap_objstore Msnap_sim Msnap_util Msnap_vm Printf
