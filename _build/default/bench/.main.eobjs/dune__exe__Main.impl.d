bench/main.ml: Arg Bechamel_suite Cmd Cmdliner Exp_micro Exp_pg Exp_rocks Exp_sqlite List Printf String Term
