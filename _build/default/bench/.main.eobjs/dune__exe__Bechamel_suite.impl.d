bench/bechamel_suite.ml: Analyze Bechamel Benchmark Hashtbl Instance Int64 List Measure Msnap_objstore Msnap_util Printf Staged Test Time Toolkit
