bench/exp_rocks.ml: Aurora Bytes Env Fs Histogram List Metrics Msnap_rocks Msnap_util Msnap_workloads Printf Rng Sched Size Tbl
