bench/exp_pg.ml: Aspace Disk Env Fs List Metrics Msnap_pg Msnap_workloads Phys Printf Rng Sched String Stripe Tbl
