(** B+tree over pager pages — the SQLite table structure.

    Keys and values are byte strings; keys order by [compare] (encode
    integers big-endian to sort numerically). One key+value pair must fit
    comfortably in a page (≤ 1 KiB combined; SQLite would use overflow
    pages beyond that, which the workloads here never need).

    Deletes do not rebalance (SQLite also leaves pages underfull and
    reclaims lazily); lookups and scans remain correct. *)

type t

val create : Pager.t -> t
(** Allocate an empty tree (root is a fresh leaf). Requires an open
    transaction. *)

val open_tree : Pager.t -> root:int -> t

val root : t -> int
(** Stable root page number (never changes across splits). *)

val insert : t -> key:string -> value:string -> unit
(** Insert or replace. Requires an open transaction. *)

val find : t -> string -> string option

val delete : t -> string -> bool
(** [true] if the key existed. Requires an open transaction. *)

val iter_range : t -> ?lo:string -> ?hi:string -> (string -> string -> unit) -> unit
(** In-order visit of pairs with [lo <= key <= hi]. *)

val count : t -> int
(** Number of key/value pairs (full scan). *)

val depth : t -> int
