lib/db_sqlite/page.ml: Bytes Char Int32 List String
