lib/db_sqlite/pager.ml: Bytes Hashtbl List Msnap_sim Page
