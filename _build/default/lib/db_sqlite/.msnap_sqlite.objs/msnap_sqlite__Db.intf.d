lib/db_sqlite/db.mli: Pager
