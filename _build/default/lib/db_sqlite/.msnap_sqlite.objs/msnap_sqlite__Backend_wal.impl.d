lib/db_sqlite/backend_wal.ml: Bytes Hashtbl List Msnap_fs Msnap_sim Msnap_util Page Pager
