lib/db_sqlite/backend_msnap.mli: Msnap_core Pager
