lib/db_sqlite/btree.ml: Bytes Msnap_sim Page Pager String
