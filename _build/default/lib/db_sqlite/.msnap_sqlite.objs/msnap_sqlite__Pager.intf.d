lib/db_sqlite/pager.mli: Bytes
