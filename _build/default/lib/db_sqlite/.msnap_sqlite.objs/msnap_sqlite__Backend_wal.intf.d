lib/db_sqlite/backend_wal.mli: Msnap_fs Pager
