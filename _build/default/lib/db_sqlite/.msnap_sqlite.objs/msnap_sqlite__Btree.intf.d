lib/db_sqlite/btree.mli: Pager
