lib/db_sqlite/backend_msnap.ml: List Msnap_core Msnap_sim Page Pager
