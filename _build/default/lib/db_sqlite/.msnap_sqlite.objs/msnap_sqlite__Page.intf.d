lib/db_sqlite/page.mli: Bytes
