lib/db_sqlite/db.ml: Btree Bytes Hashtbl Int32 Int64 List Page Pager String
