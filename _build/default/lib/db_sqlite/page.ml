type kind = Leaf | Interior

let size = 4096
let header_size = 11

let u8 b off = Char.code (Bytes.get b off)
let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))
let u16 b off = Bytes.get_uint16_le b off
let set_u16 b off v = Bytes.set_uint16_le b off v
let u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff
let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let kind_of b = if u8 b 0 = 1 then Leaf else Interior

let ncells b = u16 b 1
let set_ncells b v = set_u16 b 1 v
let content_start b = u16 b 3
let set_content_start b v = set_u16 b 3 v
let frag b = u16 b 5
let set_frag b v = set_u16 b 5 v
let right_child b = u32 b 7
let set_right_child b v = set_u32 b 7 v

let init b kind =
  Bytes.fill b 0 size '\000';
  set_u8 b 0 (match kind with Leaf -> 1 | Interior -> 2);
  set_ncells b 0;
  set_content_start b size;
  set_frag b 0;
  set_right_child b 0

let ptr_off i = header_size + (2 * i)
let cell_ptr b i = u16 b (ptr_off i)
let set_cell_ptr b i v = set_u16 b (ptr_off i) v

let leaf_cell_size ~key ~value = 4 + String.length key + String.length value
let interior_cell_size ~key = 6 + String.length key

let cell_span b off =
  match kind_of b with
  | Leaf -> 4 + u16 b off + u16 b (off + 2)
  | Interior -> 6 + u16 b (off + 4)

let leaf_cell b i =
  let off = cell_ptr b i in
  let klen = u16 b off and vlen = u16 b (off + 2) in
  (Bytes.sub_string b (off + 4) klen, Bytes.sub_string b (off + 4 + klen) vlen)

let leaf_key b i =
  let off = cell_ptr b i in
  let klen = u16 b off in
  Bytes.sub_string b (off + 4) klen

let interior_cell b i =
  let off = cell_ptr b i in
  let child = u32 b off in
  let klen = u16 b (off + 4) in
  (child, Bytes.sub_string b (off + 6) klen)

let key_at b i =
  match kind_of b with Leaf -> leaf_key b i | Interior -> snd (interior_cell b i)

(* Contiguous free bytes between the pointer array and the cell content. *)
let gap b = content_start b - (header_size + (2 * ncells b))

let free_space b = gap b + frag b - 2

(* Rewrite the page with cells packed at the tail, dropping fragmentation. *)
let compact b =
  let n = ncells b in
  let cells =
    List.init n (fun i ->
        let off = cell_ptr b i in
        Bytes.sub b off (cell_span b off))
  in
  let tail = ref size in
  List.iteri
    (fun i cell ->
      tail := !tail - Bytes.length cell;
      Bytes.blit cell 0 b !tail (Bytes.length cell);
      set_cell_ptr b i !tail)
    cells;
  set_content_start b !tail;
  set_frag b 0

let alloc_cell b bytes_needed =
  if gap b < bytes_needed + 2 then compact b;
  if gap b < bytes_needed + 2 then None
  else begin
    let off = content_start b - bytes_needed in
    set_content_start b off;
    Some off
  end

let shift_ptrs_right b i =
  let n = ncells b in
  for j = n downto i + 1 do
    set_cell_ptr b j (cell_ptr b (j - 1))
  done

let leaf_insert_at b i ~key ~value =
  let need = leaf_cell_size ~key ~value in
  match alloc_cell b need with
  | None -> false
  | Some off ->
    shift_ptrs_right b i;
    set_cell_ptr b i off;
    set_ncells b (ncells b + 1);
    set_u16 b off (String.length key);
    set_u16 b (off + 2) (String.length value);
    Bytes.blit_string key 0 b (off + 4) (String.length key);
    Bytes.blit_string value 0 b (off + 4 + String.length key) (String.length value);
    true

let interior_insert_at b i ~child ~key =
  let need = interior_cell_size ~key in
  match alloc_cell b need with
  | None -> false
  | Some off ->
    shift_ptrs_right b i;
    set_cell_ptr b i off;
    set_ncells b (ncells b + 1);
    set_u32 b off child;
    set_u16 b (off + 4) (String.length key);
    Bytes.blit_string key 0 b (off + 6) (String.length key);
    true

let delete_at b i =
  let n = ncells b in
  let off = cell_ptr b i in
  let span = cell_span b off in
  set_frag b (frag b + span);
  for j = i to n - 2 do
    set_cell_ptr b j (cell_ptr b (j + 1))
  done;
  set_ncells b (n - 1);
  if off = content_start b then set_content_start b (off + span)

let search b key =
  let n = ncells b in
  let rec go lo hi =
    (* Invariant: keys before [lo] are < key, keys from [hi] are > key. *)
    if lo >= hi then `Insert_before lo
    else begin
      let mid = (lo + hi) / 2 in
      let c = compare (key_at b mid) key in
      if c = 0 then `Found mid
      else if c < 0 then go (mid + 1) hi
      else go lo mid
    end
  in
  go 0 n
