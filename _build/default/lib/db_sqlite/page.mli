(** Slotted-page format for the B+tree, SQLite-style.

    A 4 KiB page is either a leaf (cells carry key+value) or an interior
    node (cells carry child+separator key; keys ≤ separator live in that
    child, keys greater than every separator live in [right_child]). Cell
    pointers grow from the header; cell bodies grow from the page tail.

    Layout:
    {v
    0      u8   page type (1 = leaf, 2 = interior)
    1-2    u16  cell count
    3-4    u16  content start (lowest used tail offset)
    5-6    u16  fragmented free bytes
    7-10   u32  right child page (interior only)
    11..   u16  cell pointer array
    v} *)

type kind = Leaf | Interior

val size : int (* 4096 *)
val header_size : int

val init : Bytes.t -> kind -> unit
val kind_of : Bytes.t -> kind
val ncells : Bytes.t -> int
val right_child : Bytes.t -> int
val set_right_child : Bytes.t -> int -> unit

val free_space : Bytes.t -> int
(** Usable bytes for one more cell (pointer included), after compaction. *)

val leaf_cell : Bytes.t -> int -> string * string
(** [leaf_cell page i] is the i-th (key, value). *)

val leaf_key : Bytes.t -> int -> string

val interior_cell : Bytes.t -> int -> int * string
(** [(child, separator_key)]. *)

val leaf_insert_at : Bytes.t -> int -> key:string -> value:string -> bool
(** Insert at cell index [i]; [false] if the page is full even after
    compaction. *)

val interior_insert_at : Bytes.t -> int -> child:int -> key:string -> bool

val delete_at : Bytes.t -> int -> unit

val leaf_cell_size : key:string -> value:string -> int
val interior_cell_size : key:string -> int

val search : Bytes.t -> string -> [ `Found of int | `Insert_before of int ]
(** Binary search among cell keys. *)
