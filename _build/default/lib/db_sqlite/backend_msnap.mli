(** The MemSnap plugin: the paper's §7.1 integration.

    The database lives in one MemSnap persistent region indexed by page
    number; the pager's cache plays the volatile "WAL" role. Commit moves
    the transaction's dirty pages into the region and issues a single
    [msnap_persist] — no WAL file, no checkpointing, ever.

    Persist calls are recorded under the Metrics name ["memsnap"]. *)

type t

val create : Msnap_core.Msnap.t -> db_name:string -> max_pages:int -> t

val backend : t -> Pager.backend

val region : t -> Msnap_core.Msnap.md
