module Sched = Msnap_sim.Sched

type t = { pager : Pager.t; root : int }

(* Userspace cost of examining one node (binary search, comparisons). *)
let node_visit_cost = 250

let max_pair_size = 1024

let create pager =
  let root = Pager.alloc_page pager in
  Page.init (Pager.page_for_write pager root) Page.Leaf;
  { pager; root }

let open_tree pager ~root = { pager; root }

let root t = t.root

(* Child page that covers [key] in an interior node. *)
let child_for b key =
  match Page.search b key with
  | `Found i -> fst (Page.interior_cell b i)
  | `Insert_before i ->
    if i < Page.ncells b then fst (Page.interior_cell b i)
    else Page.right_child b

let find t key =
  let rec go pgno =
    Sched.cpu node_visit_cost;
    let b = Pager.get_page t.pager pgno in
    match Page.kind_of b with
    | Page.Leaf -> (
      match Page.search b key with
      | `Found i -> Some (snd (Page.leaf_cell b i))
      | `Insert_before _ -> None)
    | Page.Interior -> go (child_for b key)
  in
  go t.root

(* Split [pgno] (already full) into itself (low half) and a fresh right
   page. Returns [(separator, right_pgno)]; keys <= separator stay left. *)
let split t pgno =
  let b = Pager.page_for_write t.pager pgno in
  let right_pg = Pager.alloc_page t.pager in
  let rb = Pager.page_for_write t.pager right_pg in
  let n = Page.ncells b in
  let mid = n / 2 in
  match Page.kind_of b with
  | Page.Leaf ->
    Page.init rb Page.Leaf;
    (* Move cells [mid..n) to the right page. *)
    for i = mid to n - 1 do
      let k, v = Page.leaf_cell b i in
      assert (Page.leaf_insert_at rb (i - mid) ~key:k ~value:v)
    done;
    for _ = mid to n - 1 do
      Page.delete_at b (Page.ncells b - 1)
    done;
    let sep = Page.leaf_key b (Page.ncells b - 1) in
    (sep, right_pg)
  | Page.Interior ->
    Page.init rb Page.Interior;
    (* The middle separator is promoted; its child becomes the left
       page's right child. *)
    let promoted_child, promoted_key = Page.interior_cell b mid in
    ignore promoted_child;
    for i = mid + 1 to n - 1 do
      let c, k = Page.interior_cell b i in
      assert (Page.interior_insert_at rb (i - mid - 1) ~child:c ~key:k)
    done;
    Page.set_right_child rb (Page.right_child b);
    let mid_child, _ = Page.interior_cell b mid in
    for _ = mid to n - 1 do
      Page.delete_at b (Page.ncells b - 1)
    done;
    Page.set_right_child b mid_child;
    (promoted_key, right_pg)

(* Link a freshly split child into an interior node: [child] kept the
   keys <= sep, [new_right] took the rest. The cell pointing to [child]
   (or the right-child slot) is rewired to [(child, sep); (new_right,
   old separator)]. Returns [`Full] (without mutating) when the node
   lacks space, [`Not_here] when the child is not referenced here. *)
let try_link b ~child ~sep ~new_right =
  let n = Page.ncells b in
  let rec find i =
    if i >= n then None
    else if fst (Page.interior_cell b i) = child then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
    let _, old_key = Page.interior_cell b i in
    (* Net new space: the (child, sep) cell plus slack for re-inserting
       the old cell after the delete. *)
    if Page.free_space b
       < Page.interior_cell_size ~key:sep + Page.interior_cell_size ~key:old_key + 8
    then `Full
    else begin
      Page.delete_at b i;
      if not (Page.interior_insert_at b i ~child ~key:sep) then
        failwith "Btree: link lost space";
      if not (Page.interior_insert_at b (i + 1) ~child:new_right ~key:old_key)
      then failwith "Btree: link lost space";
      `Ok
    end
  | None ->
    if Page.right_child b = child then begin
      if Page.free_space b < Page.interior_cell_size ~key:sep + 8 then `Full
      else begin
        if not (Page.interior_insert_at b n ~child ~key:sep) then
          failwith "Btree: link lost space";
        Page.set_right_child b new_right;
        `Ok
      end
    end
    else `Not_here

(* Insert into the subtree; on child split, returns the (separator,
   new_right_page) the caller must link. *)
let rec insert_into t pgno key value =
  Sched.cpu node_visit_cost;
  let b = Pager.get_page t.pager pgno in
  match Page.kind_of b with
  | Page.Leaf -> (
    let b = Pager.page_for_write t.pager pgno in
    (match Page.search b key with
    | `Found i -> Page.delete_at b i
    | `Insert_before _ -> ());
    match Page.search b key with
    | `Found _ -> assert false
    | `Insert_before i ->
      if Page.leaf_insert_at b i ~key ~value then None
      else begin
        let sep, right_pg = split t pgno in
        let target_pg = if key <= sep then pgno else right_pg in
        let tb = Pager.page_for_write t.pager target_pg in
        (match Page.search tb key with
        | `Found _ -> assert false
        | `Insert_before j ->
          if not (Page.leaf_insert_at tb j ~key ~value) then
            failwith "Btree.insert: pair exceeds page capacity");
        Some (sep, right_pg)
      end)
  | Page.Interior -> (
    let child = child_for b key in
    match insert_into t child key value with
    | None -> None
    | Some (sep, new_right) -> (
      let b = Pager.page_for_write t.pager pgno in
      match try_link b ~child ~sep ~new_right with
      | `Ok -> None
      | `Not_here -> failwith "Btree: child vanished from parent"
      | `Full ->
        (* Split this interior node, then link into whichever half now
           references the child. *)
        let up_sep, up_right = split t pgno in
        let lb = Pager.page_for_write t.pager pgno in
        let result =
          match try_link lb ~child ~sep ~new_right with
          | `Ok -> `Ok
          | `Full -> failwith "Btree: no space after interior split"
          | `Not_here -> (
            let rb = Pager.page_for_write t.pager up_right in
            match try_link rb ~child ~sep ~new_right with
            | `Ok -> `Ok
            | `Full -> failwith "Btree: no space after interior split"
            | `Not_here -> failwith "Btree: child vanished in split")
        in
        (match result with `Ok -> ());
        Some (up_sep, up_right)))

let insert t ~key ~value =
  if String.length key + String.length value > max_pair_size then
    invalid_arg "Btree.insert: pair too large";
  match insert_into t t.root key value with
  | None -> ()
  | Some (sep, right_pg) ->
    (* Root split: keep the root page number stable by moving the root's
       contents to a fresh left page and re-initializing the root as an
       interior node over (left, right). *)
    let rootb = Pager.page_for_write t.pager t.root in
    let left_pg = Pager.alloc_page t.pager in
    let leftb = Pager.page_for_write t.pager left_pg in
    Bytes.blit rootb 0 leftb 0 Page.size;
    Page.init rootb Page.Interior;
    assert (Page.interior_insert_at rootb 0 ~child:left_pg ~key:sep);
    Page.set_right_child rootb right_pg

let delete t key =
  let rec go pgno =
    Sched.cpu node_visit_cost;
    let b = Pager.get_page t.pager pgno in
    match Page.kind_of b with
    | Page.Leaf -> (
      match Page.search b key with
      | `Found i ->
        let b = Pager.page_for_write t.pager pgno in
        Page.delete_at b i;
        true
      | `Insert_before _ -> false)
    | Page.Interior -> go (child_for b key)
  in
  go t.root

let iter_range t ?lo ?hi f =
  let below_hi k = match hi with None -> true | Some h -> k <= h in
  let above_lo k = match lo with None -> true | Some l -> k >= l in
  let rec go pgno =
    Sched.cpu node_visit_cost;
    let b = Pager.get_page t.pager pgno in
    match Page.kind_of b with
    | Page.Leaf ->
      for i = 0 to Page.ncells b - 1 do
        let k, v = Page.leaf_cell b i in
        if above_lo k && below_hi k then f k v
      done
    | Page.Interior ->
      (* Visit children whose key range intersects [lo, hi]. Cell i's
         subtree holds keys <= key_i (and > key_{i-1}). *)
      let n = Page.ncells b in
      let rec visit i =
        if i < n then begin
          let child, k = Page.interior_cell b i in
          let lo_ok = match lo with None -> true | Some l -> l <= k in
          if lo_ok then go child;
          let hi_done = match hi with None -> false | Some h -> k >= h in
          if not hi_done then visit (i + 1)
        end
        else go (Page.right_child b)
      in
      visit 0
  in
  go t.root

let count t =
  let n = ref 0 in
  iter_range t (fun _ _ -> incr n);
  !n

let depth t =
  let rec go pgno acc =
    let b = Pager.get_page t.pager pgno in
    match Page.kind_of b with
    | Page.Leaf -> acc
    | Page.Interior ->
      if Page.ncells b > 0 then go (fst (Page.interior_cell b 0)) (acc + 1)
      else go (Page.right_child b) (acc + 1)
  in
  go t.root 1
