lib/aurora/aurora.ml: Bytes List Msnap_objstore Msnap_sim Msnap_vm Option
