lib/aurora/aurora.mli: Bytes Msnap_objstore Msnap_vm
