(** Block allocator for the object store.

    A bitmap allocator with a rotating cursor that prefers contiguous runs,
    so μCheckpoint data lands sequentially on disk — the property that lets
    MemSnap turn random page updates into sequential IO (§3, "translates
    random object updates into sequential writes").

    The bitmap is volatile: it is rebuilt at mount by walking every
    object's radix tree (log-structured recovery). Blocks freed by a COW
    commit are quarantined until the commit's header is durable, because
    until then the previous tree still references them. *)

type t

val create : total_blocks:int -> t
(** All blocks above [Layout.first_data_block] start free. *)

val alloc_run : t -> int -> int list
(** [alloc_run t n] allocates [n] blocks, contiguous if possible, in
    ascending order. Raises [Out_of_space] otherwise. *)

val mark_allocated : t -> int -> unit
(** Used during mount while walking trees. Idempotent. *)

val free_deferred : t -> int list -> unit
(** Quarantine blocks of the superseded epoch. *)

val apply_deferred : t -> unit
(** Actually free quarantined blocks — call once the commit that
    dereferenced them is durable. *)

val is_allocated : t -> int -> bool
val free_blocks : t -> int
val total_blocks : t -> int

exception Out_of_space
