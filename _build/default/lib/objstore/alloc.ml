(* The store's allocator is the generic block allocator with the
   superblock area reserved. *)

module Balloc = Msnap_blockdev.Balloc

exception Out_of_space = Balloc.Out_of_space

type t = Balloc.t

let create ~total_blocks =
  Balloc.create ~total_blocks ~reserved:Layout.first_data_block

let alloc_run = Balloc.alloc_run
let mark_allocated = Balloc.mark_allocated
let free_deferred = Balloc.free_deferred
let apply_deferred = Balloc.apply_deferred
let is_allocated = Balloc.is_allocated
let free_blocks = Balloc.free_blocks
let total_blocks = Balloc.total_blocks
