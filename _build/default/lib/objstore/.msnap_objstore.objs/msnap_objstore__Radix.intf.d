lib/objstore/radix.mli: Bytes
