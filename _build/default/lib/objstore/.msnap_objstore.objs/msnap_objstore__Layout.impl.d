lib/objstore/layout.ml: Bytes Char Int64 List String
