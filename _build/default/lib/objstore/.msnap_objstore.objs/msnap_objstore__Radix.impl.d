lib/objstore/radix.ml: Array Bytes Hashtbl Int64 Layout List
