lib/objstore/store.mli: Bytes Msnap_blockdev
