lib/objstore/layout.mli: Bytes
