lib/objstore/store.ml: Alloc Bytes Hashtbl Layout List Msnap_blockdev Msnap_sim Printf Radix
