lib/objstore/alloc.ml: Layout Msnap_blockdev
