lib/objstore/alloc.mli:
