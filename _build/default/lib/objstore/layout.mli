(** On-disk layout constants and record serialization for the object store.

    The volume is an array of 4 KiB blocks:
    - blocks 0 and 1 hold the two alternating superblock copies;
    - everything above {!first_data_block} is allocatable.

    Commit records (superblocks and object headers) fit in one 512-byte
    sector and carry a checksum, so writing one is atomic under the disk's
    sector-atomicity guarantee — this is the entire crash-consistency story
    of the store: data and COW tree nodes land in free space first, then a
    single sector flips the object to its new epoch. *)

val block_size : int (* 4096 *)
val block_shift : int
val sb_blocks : int (* 2 *)
val first_data_block : int
val ptr_size : int (* 8 *)
val radix_fanout : int (* 512 *)
val name_max : int (* 200 *)

val checksum : Bytes.t -> pos:int -> len:int -> int64
(** FNV-1a over a byte range. *)

type superblock = {
  generation : int;
  directory_block : int;  (** 0 = empty store *)
  total_blocks : int;
}

val superblock_to_bytes : superblock -> Bytes.t
(** One sector, checksummed. *)

val superblock_of_bytes : Bytes.t -> superblock option
(** [None] if the magic or checksum is wrong. *)

type header = {
  obj_id : int;
  obj_name : string;
  epoch : int;
  root_block : int;  (** 0 = empty object *)
  height : int;
  size_bytes : int;
  meta : int;
      (** Opaque user metadata persisted with the object; MemSnap stores
          the region's fixed mapping address here so recovery can remap it
          at the same virtual address. *)
}

val header_to_bytes : header -> Bytes.t
val header_of_bytes : Bytes.t -> header option

val directory_to_bytes : (string * int) list -> Bytes.t
(** [(name, header_block)] entries serialized into one block. *)

val directory_of_bytes : Bytes.t -> (string * int) list

val max_directory_entries : int
