let block_size = 4096
let block_shift = 12
let sb_blocks = 2
let first_data_block = 2
let ptr_size = 8
let radix_fanout = block_size / ptr_size
let name_max = 200

let sector = 512

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let checksum b ~pos ~len =
  let h = ref fnv_offset in
  for i = pos to pos + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bytes.get b i)));
    h := Int64.mul !h fnv_prime
  done;
  !h

let sb_magic = 0x4D534E41505342L (* "MSNAPSB" *)
let hdr_magic = 0x4D534E41504F42L (* "MSNAPOB" *)

type superblock = {
  generation : int;
  directory_block : int;
  total_blocks : int;
}

(* Sector layout: magic, generation, directory, total, checksum-of-first-
   (sector-8) bytes stored in the last 8 bytes. *)
let seal sector_bytes =
  let c = checksum sector_bytes ~pos:0 ~len:(sector - 8) in
  Bytes.set_int64_le sector_bytes (sector - 8) c;
  sector_bytes

let sealed_ok sector_bytes =
  Bytes.length sector_bytes >= sector
  && Bytes.get_int64_le sector_bytes (sector - 8)
     = checksum sector_bytes ~pos:0 ~len:(sector - 8)

let superblock_to_bytes sb =
  let b = Bytes.make sector '\000' in
  Bytes.set_int64_le b 0 sb_magic;
  Bytes.set_int64_le b 8 (Int64.of_int sb.generation);
  Bytes.set_int64_le b 16 (Int64.of_int sb.directory_block);
  Bytes.set_int64_le b 24 (Int64.of_int sb.total_blocks);
  seal b

let superblock_of_bytes b =
  if (not (sealed_ok b)) || Bytes.get_int64_le b 0 <> sb_magic then None
  else
    Some
      {
        generation = Int64.to_int (Bytes.get_int64_le b 8);
        directory_block = Int64.to_int (Bytes.get_int64_le b 16);
        total_blocks = Int64.to_int (Bytes.get_int64_le b 24);
      }

type header = {
  obj_id : int;
  obj_name : string;
  epoch : int;
  root_block : int;
  height : int;
  size_bytes : int;
  meta : int;
}

let header_to_bytes h =
  if String.length h.obj_name > name_max then
    invalid_arg "Layout.header_to_bytes: name too long";
  let b = Bytes.make sector '\000' in
  Bytes.set_int64_le b 0 hdr_magic;
  Bytes.set_int64_le b 8 (Int64.of_int h.obj_id);
  Bytes.set_int64_le b 16 (Int64.of_int h.epoch);
  Bytes.set_int64_le b 24 (Int64.of_int h.root_block);
  Bytes.set_int64_le b 32 (Int64.of_int h.height);
  Bytes.set_int64_le b 40 (Int64.of_int h.size_bytes);
  Bytes.set_int64_le b 48 (Int64.of_int h.meta);
  Bytes.set_int64_le b 56 (Int64.of_int (String.length h.obj_name));
  Bytes.blit_string h.obj_name 0 b 64 (String.length h.obj_name);
  seal b

let header_of_bytes b =
  if (not (sealed_ok b)) || Bytes.get_int64_le b 0 <> hdr_magic then None
  else begin
    let name_len = Int64.to_int (Bytes.get_int64_le b 56) in
    if name_len < 0 || name_len > name_max then None
    else
      Some
        {
          obj_id = Int64.to_int (Bytes.get_int64_le b 8);
          epoch = Int64.to_int (Bytes.get_int64_le b 16);
          root_block = Int64.to_int (Bytes.get_int64_le b 24);
          height = Int64.to_int (Bytes.get_int64_le b 32);
          size_bytes = Int64.to_int (Bytes.get_int64_le b 40);
          meta = Int64.to_int (Bytes.get_int64_le b 48);
          obj_name = Bytes.sub_string b 64 name_len;
        }
  end

(* Directory block: count, then per entry [header_block; name_len; name
   bytes padded to 8]. *)
let max_directory_entries = 128

let directory_to_bytes entries =
  if List.length entries > max_directory_entries then
    invalid_arg "Layout.directory_to_bytes: too many objects";
  let b = Bytes.make block_size '\000' in
  Bytes.set_int64_le b 0 (Int64.of_int (List.length entries));
  let pos = ref 8 in
  List.iter
    (fun (name, hblock) ->
      let nlen = String.length name in
      if nlen > name_max then invalid_arg "directory: name too long";
      Bytes.set_int64_le b !pos (Int64.of_int hblock);
      Bytes.set_int64_le b (!pos + 8) (Int64.of_int nlen);
      Bytes.blit_string name 0 b (!pos + 16) nlen;
      pos := !pos + 16 + ((nlen + 7) / 8 * 8))
    entries;
  b

let directory_of_bytes b =
  let count = Int64.to_int (Bytes.get_int64_le b 0) in
  let pos = ref 8 in
  List.init count (fun _ ->
      let hblock = Int64.to_int (Bytes.get_int64_le b !pos) in
      let nlen = Int64.to_int (Bytes.get_int64_le b (!pos + 8)) in
      let name = Bytes.sub_string b (!pos + 16) nlen in
      pos := !pos + 16 + ((nlen + 7) / 8 * 8);
      (name, hblock))
