module Sched = Msnap_sim.Sched
module Costs = Msnap_sim.Costs

let block_size = 8192

type smgr = {
  s_label : string;
  s_read : rel:string -> blockno:int -> Bytes.t;
  s_write : rel:string -> blockno:int -> Bytes.t -> unit;
  s_flush : rel:string -> unit;
}

type buf = {
  b_rel : string;
  b_blockno : int;
  b_data : Bytes.t;
  mutable b_dirty : bool;
  mutable b_usage : int;
}

type t = {
  smgr : smgr;
  buffers : (string * int, buf) Hashtbl.t;
  capacity : int;
  mutable clock : (string * int) list; (* crude sweep order: insertion *)
}

let create ?(nbuffers = 2048) smgr =
  { smgr; buffers = Hashtbl.create nbuffers; capacity = nbuffers; clock = [] }

let smgr_label t = t.smgr.s_label

let evict_one t =
  (* Clock sweep: decrement usage along the ring; evict the first zero. *)
  let rec sweep passes = function
    | [] -> if passes < 2 then sweep (passes + 1) t.clock else ()
    | key :: rest -> (
      match Hashtbl.find_opt t.buffers key with
      | None ->
        t.clock <- List.filter (fun k -> k <> key) t.clock;
        sweep passes rest
      | Some b ->
        if b.b_usage > 0 then begin
          b.b_usage <- b.b_usage - 1;
          sweep passes rest
        end
        else begin
          if b.b_dirty then begin
            t.smgr.s_write ~rel:b.b_rel ~blockno:b.b_blockno b.b_data;
            b.b_dirty <- false
          end;
          Hashtbl.remove t.buffers key;
          t.clock <- List.filter (fun k -> k <> key) t.clock
        end)
  in
  sweep 0 t.clock

let read_buffer t ~rel ~blockno =
  Sched.cpu Costs.buffer_cache_lookup;
  let key = (rel, blockno) in
  match Hashtbl.find_opt t.buffers key with
  | Some b ->
    b.b_usage <- min 5 (b.b_usage + 1);
    b.b_data
  | None ->
    if Hashtbl.length t.buffers >= t.capacity then evict_one t;
    let data = t.smgr.s_read ~rel ~blockno in
    let b = { b_rel = rel; b_blockno = blockno; b_data = data; b_dirty = false; b_usage = 1 } in
    Hashtbl.replace t.buffers key b;
    t.clock <- key :: t.clock;
    b.b_data

let mark_dirty t ~rel ~blockno =
  match Hashtbl.find_opt t.buffers (rel, blockno) with
  | Some b -> b.b_dirty <- true
  | None -> ()

let flush_rel t ~rel =
  Hashtbl.iter
    (fun _ b ->
      if b.b_dirty && b.b_rel = rel then begin
        t.smgr.s_write ~rel:b.b_rel ~blockno:b.b_blockno b.b_data;
        b.b_dirty <- false
      end)
    t.buffers;
  t.smgr.s_flush ~rel

let flush_all t =
  let rels = Hashtbl.create 8 in
  Hashtbl.iter (fun (rel, _) _ -> Hashtbl.replace rels rel ()) t.buffers;
  Hashtbl.iter (fun rel () -> flush_rel t ~rel) rels

let dirty_count t =
  Hashtbl.fold (fun _ b acc -> if b.b_dirty then acc + 1 else acc) t.buffers 0

let resident t = Hashtbl.length t.buffers
