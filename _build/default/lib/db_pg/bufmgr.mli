(** PostgreSQL-style shared buffer manager: 8 KiB buffers, clock-sweep
    eviction, over a storage-manager (smgr) pair of read/write callbacks.

    Used by the baseline file variant; the mmap/bufdirect/MemSnap variants
    of §7.3 bypass it entirely (see {!Storage}), which is exactly the
    simplification the paper credits MemSnap with. *)

val block_size : int (* 8192 *)

type smgr = {
  s_label : string;
  s_read : rel:string -> blockno:int -> Bytes.t;
      (** Fetch an 8 KiB block (zero block if never written). *)
  s_write : rel:string -> blockno:int -> Bytes.t -> unit;
      (** Write back one block (checkpoint/eviction path). *)
  s_flush : rel:string -> unit;  (** fsync one relation. *)
}

type t

val create : ?nbuffers:int -> smgr -> t
(** [nbuffers] defaults to 2048 (16 MiB of shared buffers). *)

val read_buffer : t -> rel:string -> blockno:int -> Bytes.t
(** Return the buffer for a block, faulting it in and evicting (with
    write-back of dirty victims) as needed. *)

val mark_dirty : t -> rel:string -> blockno:int -> unit

val flush_rel : t -> rel:string -> unit
(** Checkpoint path: write back the relation's dirty buffers and flush. *)

val flush_all : t -> unit

val dirty_count : t -> int
val resident : t -> int
val smgr_label : t -> string
