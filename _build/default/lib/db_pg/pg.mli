(** The PostgreSQL-style database: transactions, MVCC visibility, tables
    with key access — the upper layer that stays identical across the four
    §7.3 storage variants.

    Transactions get a transaction id and a snapshot; reads see the newest
    version committed at snapshot time (plus their own writes); updates
    take a row lock held until commit, stamp [xmax] on the old version and
    append a new one. Commit durability is the storage variant's
    {!Storage.commit} (WAL fsync or [msnap_persist]).

    Indexes are volatile hash indexes (rebuilt at startup in a real
    system); index maintenance costs CPU but not IO in every variant, so
    the Fig. 6 comparison stays apples-to-apples. *)

type t
type txn

val open_db : Storage.t -> t

val storage : t -> Storage.t

val with_txn : t -> (txn -> 'a) -> 'a
(** Begin, run, commit; aborts (releasing row locks, leaving the
    transaction uncommitted in the clog) if the callback raises. *)

val xid : txn -> int

(** {2 Statements (inside a transaction)} *)

val insert : t -> txn -> table:string -> key:string -> string -> unit
val lookup : t -> txn -> table:string -> key:string -> string option
val update : t -> txn -> table:string -> key:string -> string -> bool
(** [false] if no visible row. Blocks on the row lock if another
    transaction is updating the same key. *)

val update_with : t -> txn -> table:string -> key:string -> (string -> string) -> bool
(** Read-modify-write under the row lock. *)

val committed_txns : t -> int
val tables : t -> string list
