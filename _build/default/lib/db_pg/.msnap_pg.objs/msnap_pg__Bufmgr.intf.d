lib/db_pg/bufmgr.mli: Bytes
