lib/db_pg/pg.ml: Hashtbl Heap List Msnap_sim Option Storage
