lib/db_pg/bufmgr.ml: Bytes Hashtbl List Msnap_sim
