lib/db_pg/heap.mli: Storage
