lib/db_pg/heap.ml: Bufmgr Bytes Int32 Msnap_sim Storage String
