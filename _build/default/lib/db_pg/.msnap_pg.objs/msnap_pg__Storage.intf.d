lib/db_pg/storage.mli: Bytes Msnap_core Msnap_fs Msnap_vm
