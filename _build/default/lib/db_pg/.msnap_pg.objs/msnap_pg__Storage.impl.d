lib/db_pg/storage.ml: Bufmgr Bytes Hashtbl Msnap_core Msnap_fs Msnap_sim Msnap_util Msnap_vm
