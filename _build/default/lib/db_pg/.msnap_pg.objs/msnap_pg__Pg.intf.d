lib/db_pg/pg.mli: Storage
