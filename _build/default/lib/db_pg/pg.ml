module Sync = Msnap_sim.Sync
module Sched = Msnap_sim.Sched

(* Parser/planner/executor CPU per statement: PostgreSQL spends far more
   time above the storage engine than in it, which is why the paper's
   Fig. 6 persistence deltas are small percentages (its storage backend
   alone is 600 KSLOC). *)
let statement_cost = 25_000

type row_lock = { mutex : Sync.Mutex.t; mutable holder : int }

type t = {
  st : Storage.t;
  heaps : (string, Heap.t) Hashtbl.t;
  (* Volatile hash index: key -> version tids, newest first. *)
  indexes : (string, (string, Heap.tid list) Hashtbl.t) Hashtbl.t;
  row_locks : (string * string, row_lock) Hashtbl.t;
  clog : (int, bool) Hashtbl.t; (* xid -> committed *)
  mutable next_xid : int;
  mutable n_committed : int;
}

type txn = {
  t_xid : int;
  snapshot : int; (* xids < snapshot with committed clog are visible *)
  mutable held_locks : row_lock list;
}

let open_db st =
  {
    st;
    heaps = Hashtbl.create 16;
    indexes = Hashtbl.create 16;
    row_locks = Hashtbl.create 256;
    clog = Hashtbl.create 1024;
    next_xid = 1;
    n_committed = 0;
  }

let storage t = t.st
let xid txn = txn.t_xid
let committed_txns t = t.n_committed

let tables t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.heaps [] |> List.sort compare

let heap t table =
  match Hashtbl.find_opt t.heaps table with
  | Some h -> h
  | None ->
    let h = Heap.create t.st ~rel:table in
    Hashtbl.replace t.heaps table h;
    Hashtbl.replace t.indexes table (Hashtbl.create 1024);
    h

let index t table =
  ignore (heap t table);
  Hashtbl.find t.indexes table

let committed t xid = Hashtbl.find_opt t.clog xid = Some true

(* MVCC visibility: the version is visible when its inserter is this
   transaction or committed before the snapshot, and no visible deleter
   has stamped it. *)
let visible t txn ~xmin ~xmax =
  let insert_visible =
    xmin = txn.t_xid || (committed t xmin && xmin < txn.snapshot)
  in
  let delete_visible =
    xmax <> 0 && (xmax = txn.t_xid || (committed t xmax && xmax < txn.snapshot))
  in
  insert_visible && not delete_visible

let begin_txn t =
  let x = t.next_xid in
  t.next_xid <- x + 1;
  Hashtbl.replace t.clog x false;
  { t_xid = x; snapshot = x; held_locks = [] }

let release_locks txn =
  List.iter
    (fun l ->
      l.holder <- -1;
      Sync.Mutex.unlock l.mutex)
    txn.held_locks;
  txn.held_locks <- []

let commit_txn t txn =
  (* Durability point first (WAL fsync / msnap_persist), then the commit
     becomes visible and the row locks drop. *)
  Storage.commit t.st;
  Hashtbl.replace t.clog txn.t_xid true;
  t.n_committed <- t.n_committed + 1;
  release_locks txn;
  Storage.checkpoint_tick t.st

let abort_txn t txn =
  Hashtbl.replace t.clog txn.t_xid false;
  release_locks txn

let with_txn t f =
  let txn = begin_txn t in
  match f txn with
  | v ->
    commit_txn t txn;
    v
  | exception exn ->
    abort_txn t txn;
    raise exn

let row_lock t txn ~table ~key =
  let lk =
    match Hashtbl.find_opt t.row_locks (table, key) with
    | Some l -> l
    | None ->
      let l = { mutex = Sync.Mutex.create (); holder = -1 } in
      Hashtbl.replace t.row_locks (table, key) l;
      l
  in
  if lk.holder <> txn.t_xid then begin
    Sync.Mutex.lock lk.mutex;
    lk.holder <- txn.t_xid;
    txn.held_locks <- lk :: txn.held_locks
  end

let insert t txn ~table ~key data =
  Sched.cpu statement_cost;
  let h = heap t table in
  row_lock t txn ~table ~key;
  let tid = Heap.insert h ~xmin:txn.t_xid data in
  let idx = index t table in
  Sched.cpu 200;
  let versions = Option.value ~default:[] (Hashtbl.find_opt idx key) in
  Hashtbl.replace idx key (tid :: versions)

let visible_version t txn ~table ~key =
  Sched.cpu statement_cost;
  let h = heap t table in
  let idx = index t table in
  Sched.cpu 200;
  match Hashtbl.find_opt idx key with
  | None -> None
  | Some versions ->
    let rec probe = function
      | [] -> None
      | tid :: rest -> (
        match Heap.fetch h tid with
        | Some (xmin, xmax, data) when visible t txn ~xmin ~xmax ->
          Some (tid, data)
        | Some _ | None -> probe rest)
    in
    probe versions

let lookup t txn ~table ~key =
  Option.map snd (visible_version t txn ~table ~key)

let update t txn ~table ~key data =
  row_lock t txn ~table ~key;
  match visible_version t txn ~table ~key with
  | None -> false
  | Some (old_tid, _) ->
    let h = heap t table in
    Heap.set_xmax h old_tid txn.t_xid;
    let tid = Heap.insert h ~xmin:txn.t_xid data in
    let idx = index t table in
    let versions = Option.value ~default:[] (Hashtbl.find_opt idx key) in
    Hashtbl.replace idx key (tid :: versions);
    true

let update_with t txn ~table ~key f =
  row_lock t txn ~table ~key;
  match visible_version t txn ~table ~key with
  | None -> false
  | Some (_, old_data) -> update t txn ~table ~key (f old_data)
