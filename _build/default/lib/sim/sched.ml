type thread = {
  id : int;
  tname : string;
  mutable finished : bool;
  mutable joiners : waker list;
  mutable acct : string;
}

and waker = {
  w_thread : thread;
  mutable fired : bool;
  w_engine : engine;
}

and engine = {
  mutable clock : int;
  runq : (unit -> unit) Pq.t;
  mutable live : int;
  mutable cur : thread option;
  mutable next_tid : int;
  mutable failure : exn option;
  buckets : (string, int ref) Hashtbl.t;
  (* Parked continuations, keyed by their waker. Pruned on fire so the
     list stays proportional to the number of parked threads. *)
  mutable parked : (waker * (unit -> unit)) list;
}

type tid = thread

exception Deadlock of string

type _ Effect.t +=
  | Delay : int -> unit Effect.t
  | Suspend : (waker -> unit) -> unit Effect.t

let engine_ref : engine option ref = ref None

let engine () =
  match !engine_ref with
  | Some e -> e
  | None -> invalid_arg "Sched: not inside Sched.run"

let now () = (engine ()).clock

let self () =
  match (engine ()).cur with
  | Some t -> t
  | None -> invalid_arg "Sched.self: no current thread"

let tid_int t = t.id
let name t = t.tname

let schedule e ~at action = Pq.push e.runq ~prio:at action

let wake w =
  if not w.fired then begin
    w.fired <- true;
    let e = w.w_engine in
    let rec take acc = function
      | [] -> (None, List.rev acc)
      | (w', act) :: rest when w' == w -> (Some act, List.rev_append acc rest)
      | pair :: rest -> take (pair :: acc) rest
    in
    let action, remaining = take [] e.parked in
    e.parked <- remaining;
    match action with
    | Some act -> schedule e ~at:e.clock act
    | None -> ()
  end

(* Run [body] as a coroutine belonging to [t]. Each effect performed by the
   body enqueues its continuation and unwinds to the scheduler loop. *)
let start_thread e t body =
  let open Effect.Deep in
  let resume_as t k () =
    e.cur <- Some t;
    continue k ()
  in
  let handler =
    {
      retc =
        (fun () ->
          t.finished <- true;
          e.live <- e.live - 1;
          let js = t.joiners in
          t.joiners <- [];
          List.iter wake js);
      exnc =
        (fun exn ->
          t.finished <- true;
          e.live <- e.live - 1;
          if e.failure = None then e.failure <- Some exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay ns ->
            Some
              (fun (k : (a, unit) continuation) ->
                schedule e ~at:(e.clock + ns) (resume_as t k))
          | Suspend f ->
            Some
              (fun (k : (a, unit) continuation) ->
                let w = { w_thread = t; fired = false; w_engine = e } in
                e.parked <- (w, resume_as t k) :: e.parked;
                f w)
          | _ -> None);
    }
  in
  match_with body () handler

let suspend f = Effect.perform (Suspend f)
let delay ns = if ns > 0 then Effect.perform (Delay ns)
let yield () = Effect.perform (Delay 0)

let spawn ?(name = "thread") body =
  let e = engine () in
  let t =
    {
      id = e.next_tid;
      tname = name;
      finished = false;
      joiners = [];
      acct = "user";
    }
  in
  e.next_tid <- e.next_tid + 1;
  e.live <- e.live + 1;
  schedule e ~at:e.clock (fun () ->
      e.cur <- Some t;
      start_thread e t body);
  t

let join target =
  if not target.finished then
    suspend (fun w -> target.joiners <- w :: target.joiners)

let bucket () = (self ()).acct

let charge e name ns =
  match Hashtbl.find_opt e.buckets name with
  | Some r -> r := !r + ns
  | None -> Hashtbl.add e.buckets name (ref ns)

let cpu ns =
  if ns > 0 then begin
    let e = engine () in
    charge e (self ()).acct ns;
    delay ns
  end

let with_bucket name f =
  let t = self () in
  let saved = t.acct in
  t.acct <- name;
  Fun.protect ~finally:(fun () -> t.acct <- saved) f

let account_report () =
  let e = engine () in
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) e.buckets []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let account_total () =
  List.fold_left (fun acc (_, v) -> acc + v) 0 (account_report ())

let run main =
  if !engine_ref <> None then invalid_arg "Sched.run: nested run";
  let e =
    {
      clock = 0;
      runq = Pq.create ();
      live = 0;
      cur = None;
      next_tid = 0;
      failure = None;
      buckets = Hashtbl.create 17;
      parked = [];
    }
  in
  engine_ref := Some e;
  let result = ref None in
  ignore (spawn ~name:"main" (fun () -> result := Some (main ())));
  let finalize () = engine_ref := None in
  let deadlock () =
    let parked = List.map (fun (w, _) -> w.w_thread.tname) e.parked in
    finalize ();
    raise
      (Deadlock
         (Printf.sprintf "%d thread(s) blocked forever: %s" e.live
            (String.concat ", " parked)))
  in
  let rec loop () =
    if e.failure <> None then ()
    else
      match Pq.min_prio e.runq with
      | None -> if e.live > 0 then deadlock ()
      | Some at ->
        if at > e.clock then e.clock <- at;
        (match Pq.pop e.runq with
        | Some action -> action ()
        | None -> assert false);
        loop ()
  in
  (try loop ()
   with exn ->
     finalize ();
     raise exn);
  let failure = e.failure in
  finalize ();
  match failure with
  | Some exn -> raise exn
  | None -> (
    match !result with
    | Some v -> v
    | None -> failwith "Sched.run: main thread did not complete")
