(** Minimal binary min-heap priority queue keyed by integer priority.

    Ties are broken by insertion order (a monotonically increasing sequence
    number), which is what makes the scheduler deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> prio:int -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the element with the smallest [(prio, seq)]. *)

val min_prio : 'a t -> int option
