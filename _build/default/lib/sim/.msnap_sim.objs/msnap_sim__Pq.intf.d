lib/sim/pq.mli:
