lib/sim/costs.mli:
