lib/sim/costs.ml:
