lib/sim/sync.ml: Fun List Queue Sched
