lib/sim/sync.mli:
