lib/sim/metrics.mli: Msnap_util
