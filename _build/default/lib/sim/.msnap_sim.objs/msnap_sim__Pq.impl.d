lib/sim/pq.ml: Array
