lib/sim/sched.mli:
