lib/sim/metrics.ml: Hashtbl List Msnap_util Sched String
