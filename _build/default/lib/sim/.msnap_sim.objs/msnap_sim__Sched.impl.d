lib/sim/sched.ml: Effect Fun Hashtbl List Pq Printf String
