(** Synchronization primitives in virtual time.

    FIFO-fair and deterministic: waiters are woken in arrival order at the
    current virtual instant. *)

module Mutex : sig
  type t

  val create : unit -> t
  val lock : t -> unit
  val unlock : t -> unit
  (** Raises [Invalid_argument] if the mutex is not held. *)

  val try_lock : t -> bool
  val with_lock : t -> (unit -> 'a) -> 'a
  val is_locked : t -> bool
end

module Condition : sig
  type t

  val create : unit -> t

  val wait : t -> Mutex.t -> unit
  (** Atomically release the mutex and block; re-acquires before return. *)

  val signal : t -> unit
  val broadcast : t -> unit
end

module Semaphore : sig
  type t

  val create : int -> t
  val acquire : t -> unit
  val release : t -> unit
  val try_acquire : t -> bool
  val value : t -> int
end

(** Single-assignment cell: the rendezvous used for asynchronous IO
    completion ([msnap_wait], disk interrupts). *)
module Ivar : sig
  type 'a t

  val create : unit -> 'a t

  val fill : 'a t -> 'a -> unit
  (** Raises [Invalid_argument] if already filled. *)

  val read : 'a t -> 'a
  (** Block until filled; immediate if already filled. *)

  val is_filled : 'a t -> bool
  val peek : 'a t -> 'a option
end

(** Bounded FIFO channel between threads. *)
module Channel : sig
  type 'a t

  val create : capacity:int -> 'a t
  val send : 'a t -> 'a -> unit
  val recv : 'a t -> 'a
  val try_recv : 'a t -> 'a option
  val length : 'a t -> int
end
