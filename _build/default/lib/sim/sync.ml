module Mutex = struct
  type t = { mutable locked : bool; waiters : Sched.waker Queue.t }

  let create () = { locked = false; waiters = Queue.create () }

  let lock t =
    if not t.locked then t.locked <- true
    else Sched.suspend (fun w -> Queue.add w t.waiters)
  (* Ownership passes directly to the woken waiter: [locked] stays true. *)

  let unlock t =
    if not t.locked then invalid_arg "Mutex.unlock: not locked";
    match Queue.take_opt t.waiters with
    | Some w -> Sched.wake w
    | None -> t.locked <- false

  let try_lock t =
    if t.locked then false
    else begin
      t.locked <- true;
      true
    end

  let with_lock t f =
    lock t;
    Fun.protect ~finally:(fun () -> unlock t) f

  let is_locked t = t.locked
end

module Condition = struct
  type t = { waiters : Sched.waker Queue.t }

  let create () = { waiters = Queue.create () }

  let wait t m =
    (* Park first, then release the mutex, so a signal between unlock and
       park cannot be lost. Sched.suspend registers synchronously. *)
    Sched.suspend (fun w ->
        Queue.add w t.waiters;
        Mutex.unlock m);
    Mutex.lock m

  let signal t =
    match Queue.take_opt t.waiters with
    | Some w -> Sched.wake w
    | None -> ()

  let broadcast t =
    let ws = Queue.to_seq t.waiters |> List.of_seq in
    Queue.clear t.waiters;
    List.iter Sched.wake ws
end

module Semaphore = struct
  type t = { mutable count : int; waiters : Sched.waker Queue.t }

  let create n =
    assert (n >= 0);
    { count = n; waiters = Queue.create () }

  let acquire t =
    if t.count > 0 then t.count <- t.count - 1
    else Sched.suspend (fun w -> Queue.add w t.waiters)
  (* The released permit passes directly to the woken waiter. *)

  let release t =
    match Queue.take_opt t.waiters with
    | Some w -> Sched.wake w
    | None -> t.count <- t.count + 1

  let try_acquire t =
    if t.count > 0 then begin
      t.count <- t.count - 1;
      true
    end
    else false

  let value t = t.count
end

module Ivar = struct
  type 'a t = { mutable value : 'a option; mutable waiters : Sched.waker list }

  let create () = { value = None; waiters = [] }

  let fill t v =
    if t.value <> None then invalid_arg "Ivar.fill: already filled";
    t.value <- Some v;
    let ws = List.rev t.waiters in
    t.waiters <- [];
    List.iter Sched.wake ws

  let read t =
    match t.value with
    | Some v -> v
    | None ->
      Sched.suspend (fun w -> t.waiters <- w :: t.waiters);
      (match t.value with
      | Some v -> v
      | None -> assert false)

  let is_filled t = t.value <> None
  let peek t = t.value
end

module Channel = struct
  type 'a t = {
    items : 'a Queue.t;
    capacity : int;
    mutable senders : Sched.waker list;
    mutable receivers : Sched.waker list;
  }

  let create ~capacity =
    assert (capacity > 0);
    { items = Queue.create (); capacity; senders = []; receivers = [] }

  let wake_one l =
    match l with
    | [] -> []
    | w :: rest ->
      Sched.wake w;
      rest

  let rec send t v =
    if Queue.length t.items < t.capacity then begin
      Queue.add v t.items;
      t.receivers <- wake_one (List.rev t.receivers) |> List.rev
    end
    else begin
      Sched.suspend (fun w -> t.senders <- w :: t.senders);
      send t v
    end

  let rec recv t =
    match Queue.take_opt t.items with
    | Some v ->
      t.senders <- wake_one (List.rev t.senders) |> List.rev;
      v
    | None ->
      Sched.suspend (fun w -> t.receivers <- w :: t.receivers);
      recv t

  let try_recv t =
    match Queue.take_opt t.items with
    | Some v ->
      t.senders <- wake_one (List.rev t.senders) |> List.rev;
      Some v
    | None -> None

  let length t = Queue.length t.items
end
