module Histogram = Msnap_util.Histogram

let counters_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 32
let hists_tbl : (string, Histogram.t) Hashtbl.t = Hashtbl.create 32

let reset () =
  Hashtbl.reset counters_tbl;
  Hashtbl.reset hists_tbl

let incr ?(by = 1) name =
  match Hashtbl.find_opt counters_tbl name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add counters_tbl name (ref by)

let count name =
  match Hashtbl.find_opt counters_tbl name with Some r -> !r | None -> 0

let get_hist name =
  match Hashtbl.find_opt hists_tbl name with
  | Some h -> h
  | None ->
    let h = Histogram.create () in
    Hashtbl.add hists_tbl name h;
    h

let add_sample name ns =
  incr name;
  Histogram.add (get_hist name) ns

let hist name = Hashtbl.find_opt hists_tbl name

let mean_ns name =
  match hist name with Some h -> Histogram.mean h | None -> 0.0

let samples name =
  match hist name with Some h -> Histogram.count h | None -> 0

let counters () =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) counters_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let timed name f =
  let t0 = Sched.now () in
  let r = f () in
  add_sample name (Sched.now () - t0);
  r
