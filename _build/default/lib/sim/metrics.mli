(** Named counters and latency histograms for experiment reporting.

    The case studies instrument their persistence calls ("fsync", "write",
    "memsnap", ...) through this registry; the benchmark harness reads the
    totals to regenerate the paper's syscall-count tables (Tables 7 and 9).
    State is global to the process — call {!reset} between experiments. *)

val reset : unit -> unit

val incr : ?by:int -> string -> unit
(** Bump a counter. *)

val count : string -> int
(** Current value (0 if never bumped). *)

val add_sample : string -> int -> unit
(** Record one latency sample (ns) under a name; also bumps the implicit
    op counter of that name. *)

val hist : string -> Msnap_util.Histogram.t option

val mean_ns : string -> float
(** Mean of the samples recorded under a name (0 if none). *)

val samples : string -> int

val counters : unit -> (string * int) list
(** All counters, sorted by name. *)

val timed : string -> (unit -> 'a) -> 'a
(** Run the callback, recording its elapsed virtual time as a sample. *)
