let syscall = 400
let memcpy_per_byte = 1 (* used via [memcpy] below: ~12 GiB/s *)

let memcpy n = (n + 11) / 12

let fault_entry = 900
let pte_visit = 6
let pte_update = 120
let pt_walk = 30
let pt_walk_sw = 360
let tlb_shootdown = 3_000
let tlb_invalidate_page = 100
let tlb_flush_all = 8_000
let tlb_flush_threshold = 64
let page_alloc = 500
let page_copy = 800

(* Device: latency = disk_base + size * num / den.
   Calibration against Table 6 "Disk" (one outstanding IO, 64 KiB stripe
   over two devices, so a 4 KiB..64 KiB IO lands on one device):
     4 KiB  -> 15500 + 4096*0.45  = 17.3 us   (paper: 17)
     64 KiB -> 15500 + 65536*0.45 = 45.0 us   (paper: 44) *)
let disk_base = 15_500
let disk_per_byte_num = 45
let disk_per_byte_den = 100
let disk_xfer n = n * disk_per_byte_num / disk_per_byte_den
let disk_channels = 8
let sector = 512

let buffer_cache_lookup = 300
let vfs_call = 350
let rangelock = 250
let journal_entry = 1_200
let fsync_resident_scan_per_page = 12
let cow_indirect_update = 450

let ctx_switch = 1_500
let thread_stop_signal = 2_000

let io_initiate = 400
let cow_node_cpu = 300

let pte_update_bulk = 25
