(** Calibrated hardware/kernel cost model (nanoseconds).

    One place holds every latency constant the simulator charges, so the
    whole reproduction can be re-calibrated against different hardware by
    editing this module. The defaults are fitted to the paper's testbed
    (dual Xeon Silver 4116, two striped Intel 900P PCIe SSDs):

    - the direct-IO column of Table 6 pins the device model
      (4 KiB = 17 µs ... 64 KiB = 44 µs);
    - Table 5 pins the per-page protection-reset and IO-initiation costs
      (5.1 µs / 16 pages, 6.5 µs initiation);
    - Table 2 pins Aurora's stall and shadowing costs.

    Everything else (fsync paths, WAL amplification, checkpoint stalls) is
    emergent from executing the algorithms and charging these primitives. *)

(** {2 CPU primitives} *)

val syscall : int
(** Kernel entry/exit. *)

val memcpy_per_byte : int
(** Userspace copy bandwidth, in ns per 16 bytes charged per byte via
    {!memcpy}. *)

val memcpy : int -> int
(** [memcpy n] is the time to copy [n] bytes (~12 GiB/s). *)

(** {2 Virtual-memory primitives} *)

val fault_entry : int
(** Trap + fault-handler dispatch for a minor write fault. *)

val pte_visit : int
(** Read one PTE during a sequential, prefetch-friendly scan of a leaf
    node (the "traverse the mapping's page tables" baseline of Fig. 1). *)

val pte_update : int
(** Read-modify-write one PTE in place (one cache line touch). This is the
    per-page cost of the trace-buffer strategy. *)

val pt_walk : int
(** Hardware TLB-miss walk (page-structure caches warm). *)

val pt_walk_sw : int
(** Software walk from the root with table locking — the per-page cost of
    resetting protection without a trace buffer (4 dependent cache misses
    plus lock). *)

val tlb_shootdown : int
(** Fixed IPI cost of a selective TLB shootdown. *)

val tlb_invalidate_page : int
(** Per-page invalidation added to a selective shootdown. *)

val tlb_flush_all : int
(** Full TLB flush, used above {!tlb_flush_threshold} pages. *)

val tlb_flush_threshold : int

val page_alloc : int
(** Allocate + zero a 4 KiB frame. *)

val page_copy : int
(** Copy a 4 KiB frame (COW fault body). *)

(** {2 Storage device (one Intel 900P-class NVMe SSD)} *)

val disk_base : int
(** Per-command latency floor. *)

val disk_per_byte_num : int
val disk_per_byte_den : int
(** Transfer time is [size * num / den] ns (~2.2 GiB/s per device). *)

val disk_xfer : int -> int
(** [disk_xfer n] transfer component for [n] bytes. *)

val disk_channels : int
(** Commands one device can service concurrently. *)

val sector : int
(** Atomic write unit of the device, bytes. *)

(** {2 Kernel IO stack} *)

val buffer_cache_lookup : int
val vfs_call : int
(** VFS dispatch overhead per file-system operation. *)

val rangelock : int
(** File range-lock acquire+release per write. *)

val journal_entry : int
(** CPU cost to construct one journal record (FFS soft updates). *)

val fsync_resident_scan_per_page : int
(** fsync/msync scans the file's resident page list to find dirty pages;
    this is the per-resident-page cost. It is why baseline fsync slows
    down as the mapped file grows (Fig. 5). *)

val cow_indirect_update : int
(** ZFS-style COW: CPU cost to re-write one indirect block in memory. *)

(** {2 Scheduling} *)

val ctx_switch : int
val thread_stop_signal : int
(** Cost to interrupt one running thread at a safe point (Aurora's
    stop-all-threads barrier charges this per thread). *)

(** {2 Object store} *)

val io_initiate : int
(** CPU cost to prepare one scatter/gather segment of a vectored IO
    (Table 5 "Initiating Writes": ~6.5 us / 16 pages). *)

val cow_node_cpu : int
(** CPU cost to COW-update one radix-tree node in memory. *)

val pte_update_bulk : int
(** Read-modify-write one PTE inside a tight range loop (prefetched,
    amortized locking) — what mapping-wide scans like Aurora's shadowing
    pay per present page, as opposed to {!pte_update} for isolated
    updates. *)
