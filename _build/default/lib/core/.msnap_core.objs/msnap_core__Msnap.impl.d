lib/core/msnap.ml: Bytes Hashtbl List Msnap_objstore Msnap_sim Msnap_util Msnap_vm Printf
