lib/core/msnap.mli: Bytes Msnap_objstore Msnap_vm
