lib/workloads/workloads.mli: Msnap_util
