lib/workloads/workloads.ml: Char List Msnap_util String
