(** Workload generators for the paper's evaluation benchmarks.

    Pure op-stream generators: each [next] draws the parameters of one
    operation/transaction from a seeded {!Msnap_util.Rng.t}, and the
    benchmark harness applies it to whichever database is under test. *)

(** dbbench (§7.1): batched KV writes, 128-byte values, transactions of a
    configured byte size, sequential or random key order. *)
module Dbbench : sig
  type t

  val create :
    ?value_size:int ->
    nkeys:int ->
    txn_bytes:int ->
    pattern:[ `Seq | `Random ] ->
    unit ->
    t

  val next_txn : t -> Msnap_util.Rng.t -> (int * string) list
  (** One write transaction: key/value pairs summing to ~[txn_bytes]. *)

  val value_size : t -> int
end

(** TATP (§7.1): telecom OLTP, 80% read / 20% write over four tables. *)
module Tatp : sig
  type op =
    | Get_subscriber_data of int
    | Get_new_destination of int
    | Get_access_data of int
    | Update_subscriber_data of int  (** flips bit_1 + access info *)
    | Update_location of int  (** overwrites vlr_location *)
    | Insert_call_forwarding of int
    | Delete_call_forwarding of int

  val next : subscribers:int -> Msnap_util.Rng.t -> op
  (** Standard mix: 35/10/35 reads, 2/14/2/2 writes. *)

  val is_write : op -> bool
end

(** MixGraph (§7.2): Facebook's social-graph KV mix — 84% Get / 14% Put /
    3% Seek (83/14/3 here so the mix sums to 100), uniform read keys,
    Pareto-distributed write keys. *)
module Mixgraph : sig
  type op =
    | Get of int
    | Put of int * string
    | Seek of int * int  (** start key, scan length *)

  type t

  val create : ?value_size:int -> nkeys:int -> unit -> t
  val next : t -> Msnap_util.Rng.t -> op
end

(** sysbench-style TPC-C subset (§7.3): the five transaction profiles with
    the standard 45/43/4/4/4 mix. *)
module Tpcc : sig
  type txn =
    | New_order of { w : int; d : int; c : int; items : (int * int) list }
        (** (item id, quantity) lines *)
    | Payment of { w : int; d : int; c : int; amount : int }
    | Order_status of { w : int; d : int; c : int }
    | Delivery of { w : int; carrier : int }
    | Stock_level of { w : int; d : int; threshold : int }

  val districts_per_warehouse : int (* 10 *)
  val customers_per_district : int (* scaled: 300 *)
  val items : int (* scaled: 1000 *)

  val next : warehouses:int -> Msnap_util.Rng.t -> txn
  val is_write : txn -> bool
end
