lib/fs/fs.ml: Buffer Bytes Hashtbl List Msnap_blockdev Msnap_sim Msnap_util Msnap_vm Printf
