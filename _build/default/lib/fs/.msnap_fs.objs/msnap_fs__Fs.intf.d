lib/fs/fs.mli: Bytes Msnap_blockdev Msnap_vm
