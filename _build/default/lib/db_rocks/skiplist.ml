module Sched = Msnap_sim.Sched
module Rng = Msnap_util.Rng

let max_level = 12

type node = {
  key : string;
  mutable value : string;
  mutable deleted : bool;
  next : node option array; (* length = node's level *)
}

type t = {
  head : node;
  rng : Rng.t;
  mutable level : int;
  mutable count : int;
  mutable bytes : int;
}

(* Userspace cost of one pointer chase + comparison. *)
let hop_cost = 25

let create ?(seed = 0x5C1B) () =
  {
    head = { key = ""; value = ""; deleted = false;
             next = Array.make max_level None };
    rng = Rng.create seed;
    level = 1;
    count = 0;
    bytes = 0;
  }

let random_level t =
  let rec go l = if l < max_level && Rng.int t.rng 4 = 0 then go (l + 1) else l in
  go 1

(* Predecessors of [key] at every level. *)
let find_path t key =
  let update = Array.make max_level t.head in
  let x = ref t.head in
  for lvl = t.level - 1 downto 0 do
    let continue_ = ref true in
    while !continue_ do
      Sched.cpu hop_cost;
      match !x.next.(lvl) with
      | Some n when n.key < key -> x := n
      | Some _ | None -> continue_ := false
    done;
    update.(lvl) <- !x
  done;
  update

let next_of_path update = update.(0).next.(0)

let insert t ~key ~value =
  let update = find_path t key in
  match next_of_path update with
  | Some n when n.key = key ->
    t.bytes <- t.bytes + String.length value - String.length n.value;
    n.value <- value;
    if n.deleted then begin
      n.deleted <- false;
      t.count <- t.count + 1
    end
  | Some _ | None ->
    let lvl = random_level t in
    if lvl > t.level then begin
      t.level <- lvl;
      (* head already covers all levels *)
    end;
    let node =
      { key; value; deleted = false; next = Array.make lvl None }
    in
    for i = 0 to lvl - 1 do
      node.next.(i) <- update.(i).next.(i);
      update.(i).next.(i) <- Some node
    done;
    t.count <- t.count + 1;
    t.bytes <- t.bytes + String.length key + String.length value + (16 * lvl)

let find t key =
  let update = find_path t key in
  match next_of_path update with
  | Some n when n.key = key && not n.deleted -> Some n.value
  | Some _ | None -> None

let delete t key =
  let update = find_path t key in
  match next_of_path update with
  | Some n when n.key = key && not n.deleted ->
    n.deleted <- true;
    t.count <- t.count - 1;
    true
  | Some _ | None -> false

let iter_from t key f =
  let update = find_path t key in
  let rec visit = function
    | None -> ()
    | Some n ->
      Sched.cpu hop_cost;
      if n.deleted then visit n.next.(0)
      else if f n.key n.value then visit n.next.(0)
  in
  visit update.(0).next.(0)

let iter t f =
  let rec go = function
    | None -> ()
    | Some n ->
      if not n.deleted then f n.key n.value;
      go n.next.(0)
  in
  go t.head.next.(0)

let count t = t.count
let approximate_bytes t = t.bytes

let clear t =
  Array.fill t.head.next 0 max_level None;
  t.level <- 1;
  t.count <- 0;
  t.bytes <- 0
