(** Volatile skip list — RocksDB's baseline MemTable structure. *)

type t

val create : ?seed:int -> unit -> t

val insert : t -> key:string -> value:string -> unit
(** Insert or replace. *)

val find : t -> string -> string option
val delete : t -> string -> bool

val iter_from : t -> string -> (string -> string -> bool) -> unit
(** Visit pairs with key >= the bound, in order, while the callback
    returns [true]. *)

val iter : t -> (string -> string -> unit) -> unit
val count : t -> int
val approximate_bytes : t -> int
val clear : t -> unit
