(** The two-level LSM tree of the baseline RocksDB.

    MemTable flushes produce overlapping L0 runs; when {!l0_trigger} runs
    accumulate, a background-style compaction merges every L0 run with the
    single sorted L1 run (newest shadows oldest, tombstones drop out). The
    extra IO compaction generates is the garbage-collection cost §2
    attributes to LSM designs. *)

type t

val l0_trigger : int

val create : Msnap_fs.Fs.t -> name:string -> t

val add_run : t -> (string * string option) list -> unit
(** Flush a MemTable: write one L0 SSTable, compacting if due. *)

val get : t -> string -> string option option
(** Newest-first: [None] = absent everywhere, [Some None] = tombstone. *)

val collect_from : t -> string -> n:int -> (string * string) list
(** Up to [n] live pairs with key >= bound, merged across runs. *)

val l0_runs : t -> int
val compactions : t -> int
val total_bytes : t -> int
