(** Sorted string table files — RocksDB's on-disk run format.

    A file of sorted records with a sparse in-memory index (one entry per
    {!index_stride} records). Point lookups binary-search the index and
    read one segment; iteration streams segments sequentially. Values are
    stored with a tombstone tag so deletes shadow older runs. *)

type t

val index_stride : int

val build :
  Msnap_fs.Fs.t -> name:string -> (string * string option) list -> t
(** Write a run from sorted [(key, value-or-tombstone)] pairs. *)

val name : t -> string
val count : t -> int
val bytes : t -> int
val min_key : t -> string
val max_key : t -> string

val get : t -> string -> string option option
(** [None] = key absent here; [Some None] = tombstone; [Some (Some v)]. *)

val iter : t -> (string -> string option -> unit) -> unit

val remove : t -> unit
(** Delete the backing file (post-compaction). *)
