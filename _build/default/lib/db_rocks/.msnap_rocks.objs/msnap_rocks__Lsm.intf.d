lib/db_rocks/lsm.mli: Msnap_fs
