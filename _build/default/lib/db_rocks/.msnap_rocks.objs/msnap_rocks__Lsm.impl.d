lib/db_rocks/lsm.ml: Hashtbl List Msnap_fs Msnap_sim Option Printf Sstable
