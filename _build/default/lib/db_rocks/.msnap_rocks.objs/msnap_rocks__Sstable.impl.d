lib/db_rocks/sstable.ml: Array Buffer Bytes List Msnap_fs String
