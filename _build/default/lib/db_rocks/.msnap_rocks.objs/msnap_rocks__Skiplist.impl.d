lib/db_rocks/skiplist.ml: Array Msnap_sim Msnap_util String
