lib/db_rocks/rocks.ml: Bytes Hashtbl List Lsm Msnap_aurora Msnap_core Msnap_fs Msnap_sim Pskiplist Skiplist String
