lib/db_rocks/skiplist.mli:
