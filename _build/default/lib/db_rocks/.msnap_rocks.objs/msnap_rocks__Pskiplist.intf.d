lib/db_rocks/pskiplist.mli: Bytes
