lib/db_rocks/rocks.mli: Msnap_aurora Msnap_core Msnap_fs
