lib/db_rocks/pskiplist.ml: Array Bytes Int32 List Map Msnap_sim Msnap_util String
