lib/db_rocks/sstable.mli: Msnap_fs
