lib/blockdev/balloc.ml: Bytes Char List
