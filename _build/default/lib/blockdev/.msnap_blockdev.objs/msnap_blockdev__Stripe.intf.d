lib/blockdev/stripe.mli: Bytes Disk
