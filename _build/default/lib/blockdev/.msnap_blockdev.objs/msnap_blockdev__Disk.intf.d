lib/blockdev/disk.mli: Bytes
