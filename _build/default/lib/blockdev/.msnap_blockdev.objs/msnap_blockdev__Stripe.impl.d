lib/blockdev/stripe.ml: Array Bytes Disk List Msnap_sim Msnap_util Printf
