lib/blockdev/balloc.mli:
