lib/blockdev/disk.ml: Bytes Float Fun List Msnap_sim Msnap_util Printf
