(** Generic block allocator shared by the object store and the file
    systems.

    A bitmap with a rotating cursor that prefers contiguous runs (so
    sequential allocations land sequentially on disk), plus deferred frees
    for COW users: blocks superseded by a copy-on-write update must stay
    allocated until the commit that dereferenced them is durable. *)

type t

exception Out_of_space

val create : total_blocks:int -> reserved:int -> t
(** Blocks [0, reserved) are permanently allocated (superblocks, journal
    areas, ...). *)

val alloc_run : t -> int -> int list
(** Allocate [n] blocks, contiguous if possible, ascending order. *)

val free_now : t -> int list -> unit
(** Immediately free blocks (in-place file systems). *)

val mark_allocated : t -> int -> unit
(** Idempotent; used while rebuilding state at mount. *)

val free_deferred : t -> int list -> unit
val apply_deferred : t -> unit

val is_allocated : t -> int -> bool
val free_blocks : t -> int
val total_blocks : t -> int
