exception Out_of_space

type t = {
  total : int;
  reserved : int;
  bitmap : Bytes.t; (* 1 bit per block; 1 = allocated *)
  mutable cursor : int;
  mutable nfree : int;
  mutable deferred : int list;
}

let get_bit t i =
  Char.code (Bytes.get t.bitmap (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set_bit t i v =
  let byte = Char.code (Bytes.get t.bitmap (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte = if v then byte lor mask else byte land lnot mask in
  Bytes.set t.bitmap (i lsr 3) (Char.chr byte)

let create ~total_blocks ~reserved =
  assert (reserved >= 0 && reserved <= total_blocks);
  let t =
    {
      total = total_blocks;
      reserved;
      bitmap = Bytes.make ((total_blocks + 7) / 8) '\000';
      cursor = reserved;
      nfree = total_blocks - reserved;
      deferred = [];
    }
  in
  for i = 0 to reserved - 1 do
    set_bit t i true
  done;
  t

let is_allocated t i = get_bit t i

let mark_allocated t i =
  if not (get_bit t i) then begin
    set_bit t i true;
    t.nfree <- t.nfree - 1
  end

let free_blocks t = t.nfree
let total_blocks t = t.total

(* Find [n] contiguous free blocks in [from, limit); None if no run. *)
let find_run t ~from ~limit n =
  let i = ref from in
  let result = ref None in
  while !result = None && !i + n <= limit do
    let j = ref 0 in
    while !j < n && not (get_bit t (!i + !j)) do
      incr j
    done;
    if !j = n then result := Some !i else i := !i + !j + 1
  done;
  !result

let take t i =
  assert (not (get_bit t i));
  set_bit t i true;
  t.nfree <- t.nfree - 1

let alloc_run t n =
  if n = 0 then []
  else if n > t.nfree then raise Out_of_space
  else begin
    let run =
      match find_run t ~from:t.cursor ~limit:t.total n with
      | Some i -> Some i
      | None -> find_run t ~from:t.reserved ~limit:t.cursor n
    in
    match run with
    | Some start ->
      let blocks = List.init n (fun k -> start + k) in
      List.iter (take t) blocks;
      t.cursor <- start + n;
      if t.cursor >= t.total then t.cursor <- t.reserved;
      blocks
    | None ->
      (* Fragmented: fall back to scattered singles from the cursor. *)
      let acc = ref [] in
      let found = ref 0 in
      let scan from limit =
        let i = ref from in
        while !found < n && !i < limit do
          if not (get_bit t !i) then begin
            take t !i;
            acc := !i :: !acc;
            incr found
          end;
          incr i
        done
      in
      scan t.cursor t.total;
      scan t.reserved t.cursor;
      if !found < n then begin
        List.iter
          (fun b ->
            set_bit t b false;
            t.nfree <- t.nfree + 1)
          !acc;
        raise Out_of_space
      end;
      List.rev !acc
  end

let free_now t blocks =
  List.iter
    (fun i ->
      if get_bit t i then begin
        set_bit t i false;
        t.nfree <- t.nfree + 1
      end)
    blocks

let free_deferred t blocks = t.deferred <- List.rev_append blocks t.deferred

let apply_deferred t =
  free_now t t.deferred;
  t.deferred <- []
