(** Latency histograms with bounded relative error.

    Log-bucketed (HDR-style) histogram over non-negative integer samples,
    used to report the average / p50 / p99 / max latencies that the paper's
    evaluation tables quote. Buckets have ~2% relative width so percentile
    error is bounded independent of the value range. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Record one sample (e.g. nanoseconds). Negative samples are clamped to 0. *)

val merge : t -> t -> unit
(** [merge dst src] folds [src]'s samples into [dst]. *)

val count : t -> int
val mean : t -> float
val max_value : t -> int
val min_value : t -> int

val percentile : t -> float -> int
(** [percentile t 99.0] is an upper bound of the p99 sample, accurate to the
    bucket width. Returns [0] on an empty histogram. *)

val clear : t -> unit
