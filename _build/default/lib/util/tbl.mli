(** ASCII table rendering for the benchmark harness.

    Every paper table/figure reproduction prints through this module so the
    bench output has one consistent look. Columns are sized to fit their
    widest cell; numeric cells are right-aligned. *)

type t

val create : title:string -> headers:string list -> t

val row : t -> string list -> unit
(** Append a row. Rows shorter than the header list are padded. *)

val rule : t -> unit
(** Append a horizontal separator at this position. *)

val note : t -> string -> unit
(** Append a free-form footnote shown under the table. *)

val render : t -> string

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

(** {2 Cell formatting helpers} *)

val us : int -> string
(** Render nanoseconds as microseconds: ["51.4"]. *)

val us_short : int -> string
(** Render nanoseconds adaptively like the paper: ["156"], ["1.9K"] (µs). *)

val fixed : int -> float -> string
(** [fixed d v] is [v] with [d] decimals. *)

val pct : float -> string
(** ["29.15%"] style. *)

val kcount : int -> string
(** Count in thousands: ["63.1 K"]. *)
