(** Small bit-twiddling helpers shared across the simulator. *)

val clz : int -> int
(** Count of leading zero bits in the 63-bit OCaml integer representation
    (i.e. [clz 1 = 62]). [clz 0 = 63]. *)

val ceil_log2 : int -> int
(** Smallest [k] with [2^k >= n]. Requires [n >= 1]. *)

val is_pow2 : int -> bool

val round_up : int -> int -> int
(** [round_up v quantum] rounds [v] up to a multiple of [quantum]. *)

val round_down : int -> int -> int
