let clz v =
  if v = 0 then 63
  else begin
    let n = ref 0 in
    let v = ref v in
    if !v land 0x7FFFFFFF00000000 = 0 then begin n := !n + 31; v := !v lsl 31 end;
    if !v land 0x7FFF800000000000 = 0 then begin n := !n + 16; v := !v lsl 16 end;
    if !v land 0x7F80000000000000 = 0 then begin n := !n + 8; v := !v lsl 8 end;
    if !v land 0x7800000000000000 = 0 then begin n := !n + 4; v := !v lsl 4 end;
    if !v land 0x6000000000000000 = 0 then begin n := !n + 2; v := !v lsl 2 end;
    if !v land 0x4000000000000000 = 0 then n := !n + 1;
    !n
  end

let ceil_log2 n =
  assert (n >= 1);
  if n = 1 then 0 else 63 - clz (n - 1)

let is_pow2 n = n > 0 && n land (n - 1) = 0

let round_up v quantum = (v + quantum - 1) / quantum * quantum

let round_down v quantum = v / quantum * quantum
