lib/util/bits.ml:
