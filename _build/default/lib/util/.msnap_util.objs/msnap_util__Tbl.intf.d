lib/util/tbl.mli:
