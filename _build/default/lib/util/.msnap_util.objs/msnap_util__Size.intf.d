lib/util/size.mli:
