lib/util/histogram.mli:
