lib/util/size.ml: Printf
