lib/util/bits.mli:
