(** Byte-size constants and formatting. *)

val kib : int -> int
val mib : int -> int
val gib : int -> int

val pp : int -> string
(** ["4 KiB"], ["1 MiB"], ["512 B"]. Exact multiples only get a unit. *)
