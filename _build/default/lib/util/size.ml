let kib n = n * 1024
let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024

let pp n =
  if n >= 1 lsl 30 && n mod (1 lsl 30) = 0 then Printf.sprintf "%d GiB" (n lsr 30)
  else if n >= 1 lsl 20 && n mod (1 lsl 20) = 0 then Printf.sprintf "%d MiB" (n lsr 20)
  else if n >= 1 lsl 10 && n mod (1 lsl 10) = 0 then Printf.sprintf "%d KiB" (n lsr 10)
  else Printf.sprintf "%d B" n
