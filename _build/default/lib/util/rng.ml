type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_seed t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

(* splitmix64 finalizer *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t = mix (next_seed t)

let split t = { state = bits64 t }

let int t bound =
  assert (bound > 0);
  (* Mask to 62 bits so the value fits OCaml's native positive int range. *)
  let v = Int64.to_int (bits64 t) land max_int in
  v mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v *. 0x1p-53

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (int t 256))
  done;
  b
