type line =
  | Row of string list
  | Rule

type t = {
  title : string;
  headers : string list;
  mutable lines : line list; (* reversed *)
  mutable notes : string list; (* reversed *)
}

let create ~title ~headers = { title; headers; lines = []; notes = [] }

let row t cells = t.lines <- Row cells :: t.lines

let rule t = t.lines <- Rule :: t.lines

let note t s = t.notes <- s :: t.notes

let is_numeric s =
  s <> ""
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+'
                 || c = '%' || c = 'K' || c = 'M' || c = 'x' || c = ' ')
       s
  && (let c = s.[0] in (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.')

let render t =
  let ncols = List.length t.headers in
  let pad cells =
    let len = List.length cells in
    if len >= ncols then cells else cells @ List.init (ncols - len) (fun _ -> "")
  in
  let rows =
    List.rev_map (function Row c -> Row (pad c) | Rule -> Rule) t.lines
  in
  let widths = Array.of_list (List.map String.length t.headers) in
  let update = function
    | Rule -> ()
    | Row cells ->
      List.iteri
        (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
        cells
  in
  List.iter update rows;
  let buf = Buffer.create 1024 in
  let total = Array.fold_left ( + ) 0 widths + (3 * (ncols - 1)) in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  let hline () =
    Buffer.add_string buf (String.make total '-');
    Buffer.add_char buf '\n'
  in
  hline ();
  let emit_row cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf " | ";
        let w = widths.(i) in
        let padding = String.make (w - String.length c) ' ' in
        if i > 0 && is_numeric c then begin
          Buffer.add_string buf padding;
          Buffer.add_string buf c
        end
        else begin
          Buffer.add_string buf c;
          Buffer.add_string buf padding
        end)
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  hline ();
  List.iter (function Row cells -> emit_row cells | Rule -> hline ()) rows;
  hline ();
  List.iter
    (fun n ->
      Buffer.add_string buf "  note: ";
      Buffer.add_string buf n;
      Buffer.add_char buf '\n')
    (List.rev t.notes);
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let fixed d v = Printf.sprintf "%.*f" d v

let us ns = fixed 1 (float_of_int ns /. 1e3)

let us_short ns =
  let v = float_of_int ns /. 1e3 in
  if v < 1000.0 then Printf.sprintf "%.0f" v
  else if v < 100_000.0 then Printf.sprintf "%.1fK" (v /. 1e3)
  else Printf.sprintf "%.0fK" (v /. 1e3)

let pct v = Printf.sprintf "%.2f%%" v

let kcount n = Printf.sprintf "%.1f K" (float_of_int n /. 1e3)
