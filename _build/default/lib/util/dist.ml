type kind =
  | Uniform
  | Zipf of { theta : float; zetan : float; alpha : float; eta : float }
  | Pareto of { shape : float; scale : float }
  | Latest of { theta : float; zetan : float; alpha : float; eta : float }

type t = { n : int; kind : kind }

let zeta n theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !acc

let zipf_params n theta =
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
    /. (1.0 -. (zeta2 /. zetan))
  in
  (zetan, alpha, eta)

let uniform n =
  assert (n > 0);
  { n; kind = Uniform }

let zipf ?(theta = 0.99) n =
  assert (n > 0);
  let zetan, alpha, eta = zipf_params n theta in
  { n; kind = Zipf { theta; zetan; alpha; eta } }

let pareto ?(shape = 0.2) ?scale n =
  assert (n > 0);
  let scale = match scale with Some s -> s | None -> float_of_int n /. 10.0 in
  { n; kind = Pareto { shape; scale } }

let latest n =
  assert (n > 0);
  let theta = 0.99 in
  let zetan, alpha, eta = zipf_params n theta in
  { n; kind = Latest { theta; zetan; alpha; eta } }

let sample_zipf n theta zetan alpha eta rng =
  let u = Rng.float rng in
  let uz = u *. zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 theta then 1
  else
    let v =
      float_of_int n *. Float.pow ((eta *. u) -. eta +. 1.0) alpha
    in
    let k = int_of_float v in
    if k < 0 then 0 else if k >= n then n - 1 else k

let sample t rng =
  match t.kind with
  | Uniform -> Rng.int rng t.n
  | Zipf { theta; zetan; alpha; eta } -> sample_zipf t.n theta zetan alpha eta rng
  | Latest { theta; zetan; alpha; eta } ->
    t.n - 1 - sample_zipf t.n theta zetan alpha eta rng
  | Pareto { shape; scale } ->
    let u = Rng.float rng in
    (* Inverse CDF of the generalized Pareto distribution. *)
    let x =
      if Float.abs shape < 1e-9 then -.scale *. Float.log (1.0 -. u)
      else scale *. (Float.pow (1.0 -. u) (-.shape) -. 1.0) /. shape
    in
    let k = int_of_float x in
    if k < 0 then 0 else if k >= t.n then t.n - 1 else k

let domain t = t.n
