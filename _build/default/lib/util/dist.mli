(** Random variate distributions used by the workload generators.

    MixGraph draws write keys from a generalized Pareto distribution and
    read keys from a power model; TATP and dbbench use uniform and Zipfian
    access. All samplers draw from a caller-supplied {!Rng.t}. *)

type t
(** A sampler over the integer domain [\[0, n)]. *)

val uniform : int -> t
(** Every key equally likely. *)

val zipf : ?theta:float -> int -> t
(** Zipfian over [n] items with skew [theta] (default [0.99], the YCSB
    convention). Uses the Gray et al. rejection-free method with
    precomputed zeta constants. *)

val pareto : ?shape:float -> ?scale:float -> int -> t
(** Generalized Pareto over [\[0, n)], matching the key-distance model used
    by Facebook's MixGraph characterization. Samples are clamped to the
    domain. Default [shape = 0.2], [scale = n/10]. *)

val latest : int -> t
(** Skewed towards the highest keys ("read latest" pattern): [n - 1 - zipf]. *)

val sample : t -> Rng.t -> int
(** Draw one key. *)

val domain : t -> int
(** The [n] the sampler was built with. *)
