module Costs = Msnap_sim.Costs
module Sched = Msnap_sim.Sched

type t = {
  entries : (int, unit) Hashtbl.t;
  fifo : int Queue.t;
  capacity : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(entries = 1536) () =
  { entries = Hashtbl.create entries; fifo = Queue.create (); capacity = entries;
    hits = 0; misses = 0 }

let access t vpn =
  if Hashtbl.mem t.entries vpn then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    if Hashtbl.length t.entries >= t.capacity then begin
      match Queue.take_opt t.fifo with
      | Some victim -> Hashtbl.remove t.entries victim
      | None -> ()
    end;
    Hashtbl.replace t.entries vpn ();
    Queue.add vpn t.fifo;
    false
  end

let invalidate_page t vpn = Hashtbl.remove t.entries vpn

let flush t =
  Hashtbl.reset t.entries;
  Queue.clear t.fifo

let shootdown t vpns =
  let n = List.length vpns in
  if n = 0 then ()
  else if n <= Costs.tlb_flush_threshold then begin
    Sched.cpu (Costs.tlb_shootdown + (n * Costs.tlb_invalidate_page));
    List.iter (invalidate_page t) vpns
  end
  else begin
    Sched.cpu (Costs.tlb_shootdown + Costs.tlb_flush_all);
    flush t
  end

let hits t = t.hits
let misses t = t.misses
