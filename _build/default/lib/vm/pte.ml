type t = int

let bit_present = 1
let bit_writable = 2
let bit_cow = 4
let bit_accessed = 8

let empty = 0

let present t = t land bit_present <> 0
let writable t = t land bit_writable <> 0
let cow t = t land bit_cow <> 0
let accessed t = t land bit_accessed <> 0

let make ~frame ~writable =
  (frame lsl Addr.page_shift) lor bit_present
  lor (if writable then bit_writable else 0)

let frame t = t lsr Addr.page_shift

let set_bit t bit v = if v then t lor bit else t land lnot bit

let set_writable t v = set_bit t bit_writable v
let set_cow t v = set_bit t bit_cow v
let set_accessed t v = set_bit t bit_accessed v

let set_frame t f =
  (f lsl Addr.page_shift) lor (t land (Addr.page_size - 1))

let pp t =
  if not (present t) then "<not present>"
  else
    Printf.sprintf "frame=%d%s%s%s" (frame t)
      (if writable t then " W" else " RO")
      (if cow t then " COW" else "")
      (if accessed t then " A" else "")
