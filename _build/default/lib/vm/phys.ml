module Costs = Msnap_sim.Costs
module Sched = Msnap_sim.Sched

type page = {
  frame : int;
  data : Bytes.t;
  mutable ckpt_in_progress : bool;
  mutable rmap : Ptloc.t list;
  mutable owner : int;
}

type t = {
  mutable pages : page option array;
  mutable next : int;
  mutable free_list : page list;
  mutable live : int;
  mutable peak : int;
}

let create () =
  { pages = Array.make 1024 None; next = 0; free_list = []; live = 0; peak = 0 }

let bump_live t =
  t.live <- t.live + 1;
  if t.live > t.peak then t.peak <- t.live

let alloc t =
  Sched.cpu Costs.page_alloc;
  match t.free_list with
  | p :: rest ->
    t.free_list <- rest;
    Bytes.fill p.data 0 Addr.page_size '\000';
    p.ckpt_in_progress <- false;
    p.owner <- -1;
    bump_live t;
    p
  | [] ->
    let frame = t.next in
    t.next <- t.next + 1;
    if frame >= Array.length t.pages then begin
      let np = Array.make (2 * Array.length t.pages) None in
      Array.blit t.pages 0 np 0 (Array.length t.pages);
      t.pages <- np
    end;
    let p =
      {
        frame;
        data = Bytes.make Addr.page_size '\000';
        ckpt_in_progress = false;
        rmap = [];
        owner = -1;
      }
    in
    t.pages.(frame) <- Some p;
    bump_live t;
    p

let free t p =
  assert (p.rmap = []);
  p.ckpt_in_progress <- false;
  p.owner <- -1;
  t.free_list <- p :: t.free_list;
  t.live <- t.live - 1

let get t frame =
  match t.pages.(frame) with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Phys.get: frame %d never allocated" frame)

let copy_page t src =
  let dst = alloc t in
  Sched.cpu Costs.page_copy;
  Bytes.blit src.data 0 dst.data 0 Addr.page_size;
  dst

let live_frames t = t.live
let peak_frames t = t.peak

let rmap_add page loc = page.rmap <- loc :: page.rmap

let rmap_remove page loc =
  page.rmap <- List.filter (fun l -> not (Ptloc.same l loc)) page.rmap
