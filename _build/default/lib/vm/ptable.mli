(** 4-level radix page table.

    Mirrors the x86-64 structure: inner nodes fan out 512 ways; leaves hold
    PTE words. The module exposes both the translations and the *shape* of
    the table, because the paper's Figure 1 compares protection-reset
    strategies by how they traverse it:

    - scanning a whole mapping's PTE slots ([scan_range]),
    - walking from the root once per page ([walk]),
    - or revisiting a recorded slot directly ({!Ptloc}).

    Traversal cost is charged by the caller from the visit counts these
    functions return, keeping policy out of the data structure. *)

type t

val create : unit -> t

val lookup : t -> int -> Pte.t
(** [lookup t vpn] is the PTE (possibly {!Pte.empty}); no allocation. *)

val walk : t -> int -> Ptloc.t
(** Walk from the root to the PTE slot for [vpn], allocating intermediate
    nodes as needed. 4 node visits. *)

val find_loc : t -> int -> Ptloc.t option
(** Like {!walk} but without allocating: [None] if no leaf exists. *)

val set : t -> int -> Pte.t -> unit

val scan_range : t -> vpn:int -> n:int -> f:(int -> Ptloc.t -> unit) -> int
(** Visit every *present* PTE in [vpn, vpn+n); returns the number of PTE
    slots inspected (present or not, in existing leaves), which is the cost
    driver of the baseline "traverse the mapping's page tables" strategy.
    Absent subtrees are skipped the way real scans skip empty PML entries,
    but each existing leaf contributes its full slot count. *)

val node_count : t -> int
(** Allocated nodes (all levels), for memory accounting. *)
