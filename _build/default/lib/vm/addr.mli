(** Virtual-address constants and arithmetic.

    The simulated MMU uses the x86-64 4-level layout: 4 KiB pages, 9 bits
    of index per level, 48-bit virtual addresses. MemSnap regions live at
    the high end of the address space so that persisted pointers stay valid
    across restarts (the paper maps regions at unique fixed addresses). *)

val page_size : int (* 4096 *)
val page_shift : int (* 12 *)
val levels : int (* 4 *)
val index_bits : int (* 9 *)
val fanout : int (* 512 *)

val va_bits : int (* 48 *)

val msnap_base : int
(** Base virtual address of the MemSnap region arena (high canonical half
    as far as a 48-bit sim allows). *)

val vpn_of_va : int -> int
val va_of_vpn : int -> int
val page_offset : int -> int
val page_align_down : int -> int
val page_align_up : int -> int
val pages_spanned : off:int -> len:int -> int
(** Number of pages touched by the byte range [off, off+len). *)

val index : level:int -> int -> int
(** [index ~level vpn] is the radix index of [vpn] at [level] (0 = leaf,
    [levels-1] = root). *)
