type node =
  | Leaf of int array
  | Inner of node option array

type t = { root : node option array; mutable nodes : int }

let create () = { root = Array.make Addr.fanout None; nodes = 1 }

let lookup t vpn =
  let rec go level children =
    let i = Addr.index ~level vpn in
    match children.(i) with
    | None -> Pte.empty
    | Some (Leaf slots) -> slots.(Addr.index ~level:0 vpn)
    | Some (Inner ch) -> go (level - 1) ch
  in
  go (Addr.levels - 1) t.root

let walk t vpn =
  let rec go level children =
    let i = Addr.index ~level vpn in
    if level = 1 then begin
      let slots =
        match children.(i) with
        | Some (Leaf slots) -> slots
        | Some (Inner _) -> assert false
        | None ->
          let slots = Array.make Addr.fanout Pte.empty in
          children.(i) <- Some (Leaf slots);
          t.nodes <- t.nodes + 1;
          slots
      in
      Ptloc.make slots (Addr.index ~level:0 vpn)
    end
    else
      let ch =
        match children.(i) with
        | Some (Inner ch) -> ch
        | Some (Leaf _) -> assert false
        | None ->
          let ch = Array.make Addr.fanout None in
          children.(i) <- Some (Inner ch);
          t.nodes <- t.nodes + 1;
          ch
      in
      go (level - 1) ch
  in
  go (Addr.levels - 1) t.root

let find_loc t vpn =
  let rec go level children =
    let i = Addr.index ~level vpn in
    match children.(i) with
    | None -> None
    | Some (Leaf slots) -> Some (Ptloc.make slots (Addr.index ~level:0 vpn))
    | Some (Inner ch) -> go (level - 1) ch
  in
  go (Addr.levels - 1) t.root

let set t vpn pte = Ptloc.set (walk t vpn) pte

let scan_range t ~vpn ~n ~f =
  let visited = ref 0 in
  let first = vpn and last = vpn + n - 1 in
  (* Recursive descent over the radix tree, clipping to [first, last]. *)
  let rec go level children base =
    let span = 1 lsl (level * Addr.index_bits) in
    for i = 0 to Addr.fanout - 1 do
      let lo = base + (i * span) in
      let hi = lo + span - 1 in
      if hi >= first && lo <= last then begin
        match children.(i) with
        | None -> ()
        | Some (Leaf slots) ->
          for s = 0 to Addr.fanout - 1 do
            let v = lo + s in
            if v >= first && v <= last then begin
              incr visited;
              if Pte.present slots.(s) then f v (Ptloc.make slots s)
            end
          done
        | Some (Inner ch) -> go (level - 1) ch lo
      end
    done
  in
  go (Addr.levels - 1) t.root 0;
  !visited

let node_count t = t.nodes
