module Costs = Msnap_sim.Costs
module Sched = Msnap_sim.Sched

type dirty = (int * Ptloc.t) list

let clear_writable loc =
  let pte = Ptloc.get loc in
  if Pte.present pte && Pte.writable pte then begin
    Ptloc.set loc (Pte.set_writable pte false);
    true
  end
  else false

let finish t dirty protected_count =
  Aspace.shootdown t (List.map fst dirty);
  protected_count

let scan_mapping t ~mapping_va ~mapping_len dirty =
  let vpn = Addr.vpn_of_va mapping_va in
  let n = Addr.pages_spanned ~off:mapping_va ~len:mapping_len in
  let protected_count = ref 0 in
  let visited =
    Ptable.scan_range (Aspace.page_table t) ~vpn ~n ~f:(fun _ loc ->
        if Pte.writable (Ptloc.get loc) then begin
          Sched.cpu Costs.pte_update_bulk;
          if clear_writable loc then incr protected_count
        end)
  in
  Sched.cpu (visited * Costs.pte_visit);
  finish t dirty !protected_count

let per_page_walk t dirty =
  let pt = Aspace.page_table t in
  let protected_count = ref 0 in
  List.iter
    (fun (vpn, _) ->
      Sched.cpu (Costs.pt_walk_sw + Costs.pte_update);
      match Ptable.find_loc pt vpn with
      | Some loc -> if clear_writable loc then incr protected_count
      | None -> ())
    dirty;
  finish t dirty !protected_count

let trace_buffer t dirty =
  let protected_count = ref 0 in
  List.iter
    (fun (_, loc) ->
      Sched.cpu Costs.pte_update;
      if clear_writable loc then incr protected_count)
    dirty;
  finish t dirty !protected_count
