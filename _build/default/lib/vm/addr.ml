let page_size = 4096
let page_shift = 12
let levels = 4
let index_bits = 9
let fanout = 1 lsl index_bits
let va_bits = 48

(* 0x7000_0000_0000: near the top of the 47-bit user half. *)
let msnap_base = 0x7000 lsl 32

let vpn_of_va va = va lsr page_shift
let va_of_vpn vpn = vpn lsl page_shift
let page_offset va = va land (page_size - 1)
let page_align_down va = va land lnot (page_size - 1)
let page_align_up va = (va + page_size - 1) land lnot (page_size - 1)

let pages_spanned ~off ~len =
  if len = 0 then 0
  else (vpn_of_va (off + len - 1)) - vpn_of_va off + 1

let index ~level vpn = (vpn lsr (level * index_bits)) land (fanout - 1)
