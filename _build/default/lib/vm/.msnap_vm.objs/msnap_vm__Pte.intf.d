lib/vm/pte.mli:
