lib/vm/tlb.mli:
