lib/vm/pte.ml: Addr Printf
