lib/vm/ptloc.mli: Pte
