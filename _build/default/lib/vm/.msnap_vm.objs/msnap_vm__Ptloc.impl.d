lib/vm/ptloc.ml: Array
