lib/vm/protect.ml: Addr Aspace List Msnap_sim Ptable Pte Ptloc
