lib/vm/tlb.ml: Hashtbl List Msnap_sim Queue
