lib/vm/protect.mli: Aspace Ptloc
