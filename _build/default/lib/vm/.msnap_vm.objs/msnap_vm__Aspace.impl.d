lib/vm/aspace.ml: Addr Bytes List Msnap_sim Phys Printf Ptable Pte Ptloc Tlb
