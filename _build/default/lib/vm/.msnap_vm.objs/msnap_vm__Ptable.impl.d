lib/vm/ptable.ml: Addr Array Pte Ptloc
