lib/vm/addr.ml:
