lib/vm/phys.ml: Addr Array Bytes List Msnap_sim Printf Ptloc
