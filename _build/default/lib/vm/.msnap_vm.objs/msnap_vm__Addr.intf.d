lib/vm/addr.mli:
