lib/vm/ptable.mli: Pte Ptloc
