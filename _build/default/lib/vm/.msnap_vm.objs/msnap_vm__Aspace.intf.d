lib/vm/aspace.mli: Bytes Phys Ptable Ptloc Tlb
