lib/vm/phys.mli: Bytes Ptloc
