(** Translation lookaside buffer model.

    Tracks which translations are cached so that access costs and
    shootdowns are charged faithfully: a hit costs nothing extra, a miss
    charges a page-table walk, and protection changes must invalidate —
    selectively below [Costs.tlb_flush_threshold] pages, a full flush
    above, matching MemSnap's policy in §3. *)

type t

val create : ?entries:int -> unit -> t
(** Default capacity 1536 (Skylake-SP L2 STLB). FIFO replacement. *)

val access : t -> int -> bool
(** [access t vpn] returns [true] on hit; on miss, inserts the entry
    (evicting FIFO) and returns [false]. The caller charges walk cost. *)

val invalidate_page : t -> int -> unit
val flush : t -> unit

val shootdown : t -> int list -> unit
(** Invalidate the given pages, charging IPI + per-page costs, or a full
    flush if the list exceeds the threshold. *)

val hits : t -> int
val misses : t -> int
