(** Physical memory: frame allocation and [vm_page] metadata.

    Each frame is a real 4 KiB [Bytes.t] plus the per-page metadata MemSnap
    needs: the "checkpoint in progress" flag (§3) and the reverse mappings
    used to find every page table referencing the frame. *)

type page = {
  frame : int;
  data : Bytes.t;
  mutable ckpt_in_progress : bool;
  mutable rmap : Ptloc.t list;
      (** Every PTE currently mapping this frame. *)
  mutable owner : int;
      (** Thread id of the dirty-set owner, or [-1]. Used by MemSnap to
          detect property-③ violations in debug checks. *)
}

type t

val create : unit -> t

val alloc : t -> page
(** Allocate a zeroed frame, charging [Costs.page_alloc]. *)

val free : t -> page -> unit
(** Return a frame to the free list. The caller must have removed it from
    every page table ([rmap] must be empty). *)

val get : t -> int -> page
(** Frame metadata by frame number. *)

val copy_page : t -> page -> page
(** Allocate a frame and copy [src]'s contents into it (the COW fault
    body), charging [Costs.page_copy]. *)

val live_frames : t -> int
val peak_frames : t -> int

val rmap_add : page -> Ptloc.t -> unit
val rmap_remove : page -> Ptloc.t -> unit
