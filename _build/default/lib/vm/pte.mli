(** Page-table entry words.

    A PTE is a plain integer: flag bits in the low bits, the physical frame
    number above {!Addr.page_shift}. The [writable] bit is the hardware
    write-permission bit MemSnap clears to arm dirty tracking; [cow] is the
    software bit Aurora's shadowing uses. *)

type t = int

val empty : t

val present : t -> bool
val writable : t -> bool
val cow : t -> bool
val accessed : t -> bool

val make : frame:int -> writable:bool -> t
val frame : t -> int

val set_writable : t -> bool -> t
val set_cow : t -> bool -> t
val set_accessed : t -> bool -> t
val set_frame : t -> int -> t

val pp : t -> string
