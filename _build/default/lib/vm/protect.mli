(** The three strategies for re-applying read protection to a dirty set
    (Figure 1 of the paper).

    After a μCheckpoint is issued, every flushed page must become read-only
    again so the next write re-arms tracking. The paper compares:

    - {!scan_mapping}: traverse the mapping's page tables and protect dirty
      pages found along the way — cost proportional to the *mapping* size;
    - {!per_page_walk}: walk from the root once per dirty page — cost
      proportional to the dirty set, but each walk is 4 dependent misses
      plus locking;
    - {!trace_buffer}: revisit the PTE slots recorded at fault time — one
      in-place update per dirty page.

    All three end with one TLB shootdown for the dirty pages. Each returns
    the number of PTEs protected. *)

type dirty = (int * Ptloc.t) list
(** Dirty set as [(vpn, recorded PTE location)]. *)

val scan_mapping : Aspace.t -> mapping_va:int -> mapping_len:int -> dirty -> int

val per_page_walk : Aspace.t -> dirty -> int

val trace_buffer : Aspace.t -> dirty -> int
