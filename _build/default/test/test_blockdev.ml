module Sched = Msnap_sim.Sched
module Costs = Msnap_sim.Costs
module Size = Msnap_util.Size
module Disk = Msnap_blockdev.Disk
module Stripe = Msnap_blockdev.Stripe

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let check_bytes = Alcotest.(check string)

let in_sim f () = Sched.run f

let mk_disk ?(size = Size.mib 4) () = Disk.create ~size ()

let test_write_read () =
  in_sim (fun () ->
      let d = mk_disk () in
      let data = Bytes.of_string "hello block device" in
      Disk.write d ~off:8192 data;
      let back = Disk.read d ~off:8192 ~len:(Bytes.length data) in
      check_bytes "roundtrip" "hello block device" (Bytes.to_string back))
    ()

let test_latency_model () =
  in_sim (fun () ->
      let d = mk_disk () in
      let t0 = Sched.now () in
      Disk.write d ~off:0 (Bytes.create 4096);
      let t = Sched.now () - t0 in
      (* 4 KiB: base + xfer = 15500 + 1843 *)
      checki "4k latency" (Costs.disk_base + Costs.disk_xfer 4096) t)
    ()

let test_vectored_single_command () =
  in_sim (fun () ->
      let d = mk_disk () in
      let t0 = Sched.now () in
      Disk.writev d [ (0, Bytes.create 4096); (65536, Bytes.create 4096) ];
      let vectored = Sched.now () - t0 in
      let t1 = Sched.now () in
      Disk.write d ~off:0 (Bytes.create 4096);
      Disk.write d ~off:65536 (Bytes.create 4096);
      let separate = Sched.now () - t1 in
      checkb "one base latency, not two" true (vectored < separate);
      checki "vectored = base + 2 xfers" (Costs.disk_base + Costs.disk_xfer 8192)
        vectored)
    ()

let test_channels_limit_concurrency () =
  in_sim (fun () ->
      let d = mk_disk () in
      (* 2x disk_channels concurrent 4 KiB writes: second wave queues. *)
      let n = 2 * Costs.disk_channels in
      let t0 = Sched.now () in
      let ts =
        List.init n (fun i ->
            Sched.spawn (fun () ->
                Disk.write d ~off:(i * 4096) (Bytes.create 4096)))
      in
      List.iter Sched.join ts;
      let elapsed = Sched.now () - t0 in
      let one = Costs.disk_base + Costs.disk_xfer 4096 in
      checki "two service rounds" (2 * one) elapsed)
    ()

let test_out_of_range () =
  in_sim (fun () ->
      let d = mk_disk ~size:8192 () in
      let raised =
        try
          Disk.write d ~off:8000 (Bytes.create 4096);
          false
        with Invalid_argument _ -> true
      in
      checkb "raises" true raised)
    ()

let test_stats () =
  in_sim (fun () ->
      let d = mk_disk () in
      Disk.write d ~off:0 (Bytes.create 4096);
      ignore (Disk.read d ~off:0 ~len:512);
      let s = Disk.stats d in
      checki "writes" 1 s.Disk.writes;
      checki "reads" 1 s.Disk.reads;
      checki "bytes written" 4096 s.Disk.bytes_written;
      checki "bytes read" 512 s.Disk.bytes_read;
      Disk.reset_stats d;
      checki "reset" 0 (Disk.stats d).Disk.writes)
    ()

let test_write_buffer_snapshot () =
  (* The device must capture the buffer at submission: later mutation of
     the caller's bytes must not leak to the medium. *)
  in_sim (fun () ->
      let d = mk_disk () in
      let b = Bytes.of_string "AAAA" in
      let t = Sched.spawn (fun () -> Disk.write d ~off:0 b) in
      (* Let the writer submit, then mutate while the IO is in flight. *)
      Sched.delay 1;
      Bytes.set b 0 'Z';
      Sched.join t;
      check_bytes "snapshot" "AAAA"
        (Bytes.to_string (Disk.read d ~off:0 ~len:4)))
    ()

let test_power_failure_blocks_io () =
  in_sim (fun () ->
      let d = mk_disk () in
      Disk.fail_power d ~torn_seed:1;
      let raised = try Disk.write d ~off:0 (Bytes.create 512); false with Disk.Powered_off -> true in
      checkb "write rejected" true raised;
      Disk.restore_power d;
      Disk.write d ~off:0 (Bytes.create 512))
    ()

let test_torn_write () =
  in_sim (fun () ->
      let d = mk_disk () in
      (* Fill with 'O', then crash mid-flight of an 8-sector overwrite. *)
      Disk.write d ~off:0 (Bytes.make 4096 'O');
      let writer =
        Sched.spawn (fun () ->
            try Disk.write d ~off:0 (Bytes.make 4096 'N')
            with Disk.Powered_off -> ())
      in
      (* Let the write get half way. *)
      Sched.delay ((Costs.disk_base + Costs.disk_xfer 4096) / 2);
      Disk.fail_power d ~torn_seed:7;
      Sched.join writer;
      Disk.restore_power d;
      let back = Bytes.to_string (Disk.read d ~off:0 ~len:4096) in
      (* Every sector is entirely old or entirely new. *)
      let sectors = 4096 / Costs.sector in
      let mixed = ref false and any_new = ref false and any_old = ref false in
      for s = 0 to sectors - 1 do
        let seg = String.sub back (s * Costs.sector) Costs.sector in
        let all c = String.for_all (fun x -> x = c) seg in
        if all 'N' then any_new := true
        else if all 'O' then any_old := true
        else mixed := true
      done;
      checkb "sector atomicity" false !mixed;
      checkb "prefix semantics: new sectors before old" true
        (let seen_old = ref false in
         let ok = ref true in
         for s = 0 to sectors - 1 do
           let seg = String.sub back (s * Costs.sector) Costs.sector in
           if String.for_all (fun x -> x = 'O') seg then seen_old := true
           else if !seen_old then ok := false
         done;
         !ok);
      ignore (!any_new, !any_old))
    ()

(* --- Stripe --- *)

let mk_stripe ?(unit_size = Size.kib 64) ?(n = 2) ?(disk_size = Size.mib 4) () =
  Stripe.create ~unit_size
    (List.init n (fun i -> Disk.create ~name:(Printf.sprintf "d%d" i) ~size:disk_size ()))

let test_stripe_roundtrip () =
  in_sim (fun () ->
      let s = mk_stripe () in
      let rng = Msnap_util.Rng.create 5 in
      (* Spans several stripe units and a device boundary. *)
      let data = Msnap_util.Rng.bytes rng (Size.kib 200) in
      Stripe.write s ~off:(Size.kib 30) data;
      let back = Stripe.read s ~off:(Size.kib 30) ~len:(Size.kib 200) in
      checkb "roundtrip" true (Bytes.equal data back))
    ()

let test_stripe_size () =
  in_sim (fun () ->
      let s = mk_stripe () in
      checki "size" (Size.mib 8) (Stripe.size s))
    ()

let test_stripe_parallelism () =
  in_sim (fun () ->
      let s = mk_stripe () in
      (* A 128 KiB aligned write spans both devices: latency ~ one 64 KiB
         command, not one 128 KiB command. *)
      let t0 = Sched.now () in
      Stripe.write s ~off:0 (Bytes.create (Size.kib 128));
      let t = Sched.now () - t0 in
      let one_dev = Costs.disk_base + Costs.disk_xfer (Size.kib 64) in
      checkb "parallel across devices" true (t <= one_dev + 2_000))
    ()

let test_stripe_single_unit_one_device () =
  in_sim (fun () ->
      let s = mk_stripe () in
      Stripe.write s ~off:0 (Bytes.create (Size.kib 64));
      let st = Stripe.stats s in
      checki "one command" 1 st.Disk.writes)
    ()

let test_stripe_crash () =
  in_sim (fun () ->
      let s = mk_stripe () in
      Stripe.write s ~off:0 (Bytes.make 512 'A');
      Stripe.fail_power s ~torn_seed:3;
      let raised = try Stripe.write s ~off:0 (Bytes.create 512); false with Disk.Powered_off -> true in
      checkb "off" true raised;
      Stripe.restore_power s;
      check_bytes "data survives" (String.make 512 'A')
        (Bytes.to_string (Stripe.read s ~off:0 ~len:512)))
    ()

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "blockdev"
    [
      ( "disk",
        [
          tc "write/read" test_write_read;
          tc "latency model" test_latency_model;
          tc "vectored IO" test_vectored_single_command;
          tc "channel limit" test_channels_limit_concurrency;
          tc "out of range" test_out_of_range;
          tc "stats" test_stats;
          tc "buffer snapshot" test_write_buffer_snapshot;
          tc "power failure" test_power_failure_blocks_io;
          tc "torn write" test_torn_write;
        ] );
      ( "stripe",
        [
          tc "roundtrip" test_stripe_roundtrip;
          tc "size" test_stripe_size;
          tc "parallelism" test_stripe_parallelism;
          tc "single unit" test_stripe_single_unit_one_device;
          tc "crash" test_stripe_crash;
        ] );
    ]
