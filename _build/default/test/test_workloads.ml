module Rng = Msnap_util.Rng
module W = Msnap_workloads.Workloads

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- dbbench --- *)

let test_dbbench_txn_size () =
  let wl = W.Dbbench.create ~nkeys:1000 ~txn_bytes:4096 ~pattern:`Random () in
  let rng = Rng.create 1 in
  let txn = W.Dbbench.next_txn wl rng in
  (* 4096 / (8 + 128) = 30 pairs *)
  checki "pairs per txn" 30 (List.length txn);
  List.iter
    (fun (k, v) ->
      checkb "key in range" true (k >= 0 && k < 1000);
      checki "value size" (W.Dbbench.value_size wl) (String.length v))
    txn

let test_dbbench_seq_wraps () =
  let wl = W.Dbbench.create ~nkeys:10 ~txn_bytes:4096 ~pattern:`Seq () in
  let rng = Rng.create 1 in
  let keys = List.map fst (W.Dbbench.next_txn wl rng) in
  Alcotest.(check (list int)) "sequential with wrap"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 0; 1; 2; 3;
      4; 5; 6; 7; 8; 9 ]
    keys

let test_dbbench_min_one_pair () =
  let wl = W.Dbbench.create ~value_size:128 ~nkeys:10 ~txn_bytes:1 ~pattern:`Random () in
  let rng = Rng.create 1 in
  checkb "at least one pair" true (List.length (W.Dbbench.next_txn wl rng) >= 1)

(* --- TATP --- *)

let test_tatp_mix () =
  let rng = Rng.create 2 in
  let n = 50_000 in
  let writes = ref 0 in
  for _ = 1 to n do
    if W.Tatp.is_write (W.Tatp.next ~subscribers:1000 rng) then incr writes
  done;
  (* Standard TATP: 20% writes. *)
  let frac = float_of_int !writes /. float_of_int n in
  checkb (Printf.sprintf "write fraction ~0.20 (got %.3f)" frac) true
    (frac > 0.17 && frac < 0.23)

let test_tatp_subscribers_in_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let s =
      match W.Tatp.next ~subscribers:77 rng with
      | W.Tatp.Get_subscriber_data s | W.Tatp.Get_new_destination s
      | W.Tatp.Get_access_data s | W.Tatp.Update_subscriber_data s
      | W.Tatp.Update_location s | W.Tatp.Insert_call_forwarding s
      | W.Tatp.Delete_call_forwarding s -> s
    in
    checkb "in range" true (s >= 0 && s < 77)
  done

(* --- MixGraph --- *)

let test_mixgraph_mix () =
  let wl = W.Mixgraph.create ~nkeys:10_000 () in
  let rng = Rng.create 4 in
  let n = 50_000 in
  let gets = ref 0 and puts = ref 0 and seeks = ref 0 in
  for _ = 1 to n do
    match W.Mixgraph.next wl rng with
    | W.Mixgraph.Get _ -> incr gets
    | W.Mixgraph.Put _ -> incr puts
    | W.Mixgraph.Seek _ -> incr seeks
  done;
  let pct r = 100.0 *. float_of_int !r /. float_of_int n in
  checkb (Printf.sprintf "gets ~83%% (%.1f)" (pct gets)) true
    (pct gets > 80.0 && pct gets < 86.0);
  checkb (Printf.sprintf "puts ~14%% (%.1f)" (pct puts)) true
    (pct puts > 11.0 && pct puts < 17.0);
  checkb (Printf.sprintf "seeks ~3%% (%.1f)" (pct seeks)) true
    (pct seeks > 1.0 && pct seeks < 5.0)

let test_mixgraph_put_keys_skewed () =
  (* Puts draw from the Pareto key-distance model: low keys dominate. *)
  let wl = W.Mixgraph.create ~nkeys:10_000 () in
  let rng = Rng.create 5 in
  let low = ref 0 and total = ref 0 in
  while !total < 2_000 do
    match W.Mixgraph.next wl rng with
    | W.Mixgraph.Put (k, _) ->
      incr total;
      if k < 2_000 then incr low
    | _ -> ()
  done;
  checkb "pareto skew" true (!low > !total / 2)

(* --- TPC-C --- *)

let test_tpcc_mix () =
  let rng = Rng.create 6 in
  let n = 50_000 in
  let counts = Hashtbl.create 5 in
  let bump k = Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)) in
  for _ = 1 to n do
    match W.Tpcc.next ~warehouses:4 rng with
    | W.Tpcc.New_order _ -> bump "no"
    | W.Tpcc.Payment _ -> bump "pay"
    | W.Tpcc.Order_status _ -> bump "os"
    | W.Tpcc.Delivery _ -> bump "del"
    | W.Tpcc.Stock_level _ -> bump "sl"
  done;
  let pct k = 100.0 *. float_of_int (Hashtbl.find counts k) /. float_of_int n in
  checkb "new_order ~45%" true (pct "no" > 42.0 && pct "no" < 48.0);
  checkb "payment ~43%" true (pct "pay" > 40.0 && pct "pay" < 46.0);
  checkb "order_status ~4%" true (pct "os" > 2.0 && pct "os" < 6.0);
  checkb "delivery ~4%" true (pct "del" > 2.0 && pct "del" < 6.0);
  checkb "stock_level ~4%" true (pct "sl" > 2.0 && pct "sl" < 6.0)

let test_tpcc_new_order_lines () =
  let rng = Rng.create 7 in
  let found = ref false in
  while not !found do
    match W.Tpcc.next ~warehouses:2 rng with
    | W.Tpcc.New_order { w; d; c; items } ->
      found := true;
      checkb "warehouse" true (w >= 0 && w < 2);
      checkb "district" true (d >= 0 && d < W.Tpcc.districts_per_warehouse);
      checkb "customer" true (c >= 0 && c < W.Tpcc.customers_per_district);
      checkb "5-15 lines" true (List.length items >= 5 && List.length items <= 15);
      List.iter
        (fun (item, qty) ->
          checkb "item" true (item >= 0 && item < W.Tpcc.items);
          checkb "qty" true (qty >= 1 && qty <= 10))
        items
    | _ -> ()
  done

let test_tpcc_write_classification () =
  checkb "new_order writes" true
    (W.Tpcc.is_write (W.Tpcc.New_order { w = 0; d = 0; c = 0; items = [] }));
  checkb "order_status reads" false
    (W.Tpcc.is_write (W.Tpcc.Order_status { w = 0; d = 0; c = 0 }))

let test_generators_deterministic () =
  let stream seed =
    let wl = W.Mixgraph.create ~nkeys:100 () in
    let rng = Rng.create seed in
    List.init 50 (fun _ ->
        match W.Mixgraph.next wl rng with
        | W.Mixgraph.Get k -> k
        | W.Mixgraph.Put (k, _) -> 1000 + k
        | W.Mixgraph.Seek (k, n) -> 2000 + k + n)
  in
  Alcotest.(check (list int)) "same seed, same ops" (stream 9) (stream 9);
  checkb "different seed differs" true (stream 9 <> stream 10)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "workloads"
    [
      ( "dbbench",
        [
          tc "txn size" test_dbbench_txn_size;
          tc "sequential wraps" test_dbbench_seq_wraps;
          tc "min one pair" test_dbbench_min_one_pair;
        ] );
      ( "tatp",
        [
          tc "80/20 mix" test_tatp_mix;
          tc "subscriber range" test_tatp_subscribers_in_range;
        ] );
      ( "mixgraph",
        [
          tc "83/14/3 mix" test_mixgraph_mix;
          tc "pareto puts" test_mixgraph_put_keys_skewed;
        ] );
      ( "tpcc",
        [
          tc "45/43/4/4/4 mix" test_tpcc_mix;
          tc "new_order shape" test_tpcc_new_order_lines;
          tc "write classification" test_tpcc_write_classification;
        ] );
      ("determinism", [ tc "seeded streams" test_generators_deterministic ]);
    ]
