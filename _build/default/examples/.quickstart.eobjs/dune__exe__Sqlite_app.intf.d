examples/sqlite_app.mli:
