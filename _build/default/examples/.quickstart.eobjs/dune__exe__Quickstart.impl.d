examples/quickstart.ml: Bytes Msnap_blockdev Msnap_core Msnap_objstore Msnap_sim Msnap_util Msnap_vm Printf
