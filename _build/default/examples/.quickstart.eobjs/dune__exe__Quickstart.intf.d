examples/quickstart.mli:
