examples/bank_ledger.ml: Array Bytes Fun Int64 List Msnap_blockdev Msnap_core Msnap_objstore Msnap_sim Msnap_util Msnap_vm Printf
