examples/kv_store.ml: List Msnap_blockdev Msnap_core Msnap_objstore Msnap_rocks Msnap_sim Msnap_util Msnap_vm Option Printf
