examples/sqlite_app.ml: Msnap_blockdev Msnap_core Msnap_fs Msnap_objstore Msnap_sim Msnap_sqlite Msnap_util Msnap_vm Option Printf
