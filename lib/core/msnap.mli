(** MemSnap: per-thread μCheckpoints — the paper's core contribution.

    The API mirrors Table 4 of the paper:

    {v
    msnap_open (name, &addr, len, flags) -> md      open_region / recover
    msnap_persist (md, flags) -> epoch              persist
    msnap_wait (md, epoch)                          wait
    v}

    Mechanisms implemented exactly as §3 describes:

    - {b Hardware-assisted per-thread dirty tracking}: region pages start
      read-only; the first store takes a minor write fault whose handler
      appends the page to the *calling thread's* dirty list and records the
      PTE's location in the thread's trace buffer.
    - {b μCheckpoints}: [persist] takes the calling thread's dirty set (or
      one region's slice of it), flags each page "checkpoint in progress",
      resets read-protection by revisiting the recorded PTE slots directly
      (no page-table walks), issues one TLB shootdown, and commits the
      pages to the COW object store as one atomic epoch.
    - {b Unified COW}: a store to a page whose checkpoint is in flight is
      redirected to a fresh frame — across *every* process mapping the page
      (the physical page's reverse mappings) — so neither the writer nor
      the flush ever blocks on the other.
    - {b Fixed addresses}: regions always map at the same virtual address
      (persisted in the object metadata), so pointers inside persistent
      data stay valid across crashes.

    Thread identity comes from the simulator scheduler; every API entry
    must run inside [Sched.run]. *)

type t
(** The MemSnap kernel state: attached address spaces, per-thread dirty
    sets, and the backing object store. *)

type md
(** Region descriptor (opaque, like a POSIX shm descriptor). *)

type epoch = int

val init : store:Msnap_objstore.Store.t -> t

val attach : t -> Msnap_vm.Aspace.t -> unit
(** Let a (simulated) process use MemSnap regions. The first attached
    aspace is the default for [open_region]. *)

(** {2 The API of Table 4} *)

val open_region : t -> ?aspace:Msnap_vm.Aspace.t -> name:string -> len:int -> unit -> md
(** [msnap_open]: create or open the region. An existing region is mapped
    back at its original fixed address and its pages lazily fault in from
    the last committed μCheckpoint; a new region is placed in the MemSnap
    arena at the high end of the address space. *)

val persist :
  t ->
  ?region:md ->
  ?mode:[ `Sync | `Async ] ->
  ?scope:[ `Thread | `Global ] ->
  unit ->
  epoch
(** [msnap_persist]. Defaults: the paper's defaults — synchronous, calling
    thread's dirty set, all regions ([?region] = the descriptor-[-1]
    form). Returns the epoch the μCheckpoint will commit as (for the named
    region, or the last region committed when [?region] is omitted). *)

val wait : t -> md -> epoch -> unit
(** [msnap_wait]: block until the region's durable epoch reaches [epoch].
    Raises if that μCheckpoint failed (device power loss). *)

(** {2 Region access}

    Applications hold the base address and read/write the mapping through
    their address space; these helpers do exactly that. *)

val addr : md -> int
val length : md -> int
val name : md -> string
val durable_epoch : md -> epoch

val write : t -> md -> off:int -> Bytes.t -> unit
val read : t -> md -> off:int -> len:int -> Bytes.t

val read_into : t -> md -> off:int -> Bytes.t -> pos:int -> len:int -> unit
(** [read] into a caller-owned buffer — same charges, no allocation. *)

val write_slice : t -> md -> off:int -> Msnap_util.Slice.t -> unit
(** Store through the region mapping without staging: the slice's bytes
    feed the per-page copies directly (same charges as {!write} of that
    length). *)

val write_string : t -> md -> off:int -> string -> unit
(** Zero-copy over {!write_slice} — no [Bytes.of_string] staging. *)

val map_into : t -> md -> Msnap_vm.Aspace.t -> unit
(** Map an existing region into another attached process at the same fixed
    address (PostgreSQL's shared-buffer arrangement). *)

(** {2 Introspection (tests, benches)} *)

val dirty_count : t -> int
(** Pages currently in the calling thread's dirty set. *)

val dirty_count_of_region : t -> md -> int

val tracked_threads : t -> int

exception Property_violation of string
(** Raised (when [strict] checking is on) if two threads dirty the same
    page without an intervening persist — the condition Fig. 2's property
    ③ obliges applications to prevent. *)

val set_strict : t -> bool -> unit
(** Default on. *)

val region_by_name : t -> string -> md option
(** Already-open region by name. *)

(** {2 Crash recovery ({!Msnap_faults})} *)

val cell_max : int
(** Longest value {!cell_write} accepts (the 256-byte slot minus its
    length prefix). *)

val cell_write : t -> md -> off:int -> string -> unit
(** Store a value in the fixed-size cell at [off]: every update writes
    the full 256-byte slot, so the command stream a crash workload
    issues is independent of the value lengths. *)

val cell_read : t -> md -> off:int -> string option
(** [None] when the slot's length prefix is out of range (torn or
    unwritten media that slipped past recovery). *)

type recovered = {
  rec_kernel : t;
  rec_md : md;
  rec_phys : Msnap_vm.Phys.t;
}
(** A kernel+region rebuilt from a post-crash device, with the physical
    memory [recover] allocated for it. *)

val recoverable :
  region:string -> len:int -> cells:(string * int) list ->
  (module Msnap_faults.Recoverable.S with type t = recovered)
(** The crash-recovery contract for MemSnap itself: [recover] mounts
    the store, boots a fresh kernel and remaps [region];
    [check] reads every [(label, offset)] cell and compares against the
    history's candidate steps. *)
