module Sched = Msnap_sim.Sched
module Sync = Msnap_sim.Sync
module Costs = Msnap_sim.Costs
module Metrics = Msnap_sim.Metrics
module Trace = Msnap_sim.Trace
module Probe = Msnap_sim.Probe
module Aspace = Msnap_vm.Aspace
module Addr = Msnap_vm.Addr
module Phys = Msnap_vm.Phys
module Pte = Msnap_vm.Pte
module Ptloc = Msnap_vm.Ptloc
module Tlb = Msnap_vm.Tlb
module Slice = Msnap_util.Slice
module Store = Msnap_objstore.Store

exception Property_violation of string

type epoch = int

type entry = {
  e_vpn : int;
  e_rel : int;
  e_page : Phys.page;
  e_region : region;
}

and region = {
  r_name : string;
  r_va : int;
  r_len : int;
  r_obj : Store.obj;
  r_kernel : t;
  frames : (int, Phys.page) Hashtbl.t; (* rel page -> shared frame *)
  populating : (int, Phys.page Sync.Ivar.t) Hashtbl.t;
      (* busy-page lock: concurrent faults on the same missing page wait
         for the first to materialize the frame *)
  mutable r_aspaces : Aspace.t list;
  tickets : (int, Store.ticket) Hashtbl.t; (* epoch -> in-flight commit *)
  mutable r_flow : int;
      (* Trace flow id of the pending (not yet persisted) Î¼Checkpoint:
         allocated at the first tracked fault while tracing, consumed by
         the persist that takes the dirty set. Host-only; 0 = none. *)
}

and t = {
  store : Store.t;
  mutable phys : Phys.t option;
  mutable aspaces : Aspace.t list;
  regions : (string, region) Hashtbl.t;
  dirty : (int, entry list ref) Hashtbl.t; (* thread id -> dirty set *)
  mutable strict : bool;
  mutable arena_cursor : int;
  fault_lock : Sync.Mutex.t;
      (* Serializes write-fault handling: the COW path blocks (page copy),
         and two concurrent faults on the same in-flight page must not
         both duplicate it. Real kernels hold the page busy lock here. *)
}

type md = region

let init ~store =
  {
    store;
    phys = None;
    aspaces = [];
    regions = Hashtbl.create 8;
    dirty = Hashtbl.create 16;
    strict = true;
    arena_cursor = Addr.msnap_base;
    fault_lock = Sync.Mutex.create ();
  }

let set_strict t v = t.strict <- v

let kernel_phys t =
  match t.phys with
  | Some p -> p
  | None -> invalid_arg "Msnap: no process attached"

let attach t aspace =
  (match t.phys with
  | None -> t.phys <- Some (Aspace.phys aspace)
  | Some p ->
    if not (p == Aspace.phys aspace) then
      invalid_arg "Msnap.attach: address spaces must share physical memory");
  t.aspaces <- t.aspaces @ [ aspace ]

let default_aspace t =
  match t.aspaces with
  | a :: _ -> a
  | [] -> invalid_arg "Msnap: no process attached"

(* --- dirty set tracking --- *)

let dirty_list t tid =
  match Hashtbl.find_opt t.dirty tid with
  | Some l -> l
  | None ->
    let l = ref [] in
    Hashtbl.add t.dirty tid l;
    l

let track t r ~vpn ~rel page =
  let tid = Sched.tid_int (Sched.self ()) in
  if t.strict && page.Phys.owner >= 0 && page.Phys.owner <> tid then
    raise
      (Property_violation
         (Printf.sprintf
            "region %s page %d: dirtied by thread %d while thread %d's write \
             is unpersisted"
            r.r_name rel tid page.Phys.owner));
  page.Phys.owner <- tid;
  let l = dirty_list t tid in
  l := { e_vpn = vpn; e_rel = rel; e_page = page; e_region = r } :: !l;
  if Trace.is_on () && r.r_flow = 0 then begin
    (* First tracked fault of this Î¼Checkpoint: open its causality flow.
       Every later stage (PTE reset, device commit, durable epoch) links
       to this id. *)
    r.r_flow <- Trace.new_flow ();
    Trace.instant Probe.msnap_first_fault ~flow:(r.r_flow, Trace.Flow_start)
      ~args:[ ("region", Trace.S r.r_name); ("rel_page", Trace.I rel) ]
  end

(* The MemSnap write-fault handler: dirty tracking, plus the unified COW
   path for pages whose μCheckpoint is in flight (§3). Runs under the
   kernel fault lock; the faulting frame is re-resolved there because a
   concurrent fault may already have COWed or unprotected the page. *)
let on_write_fault t r (fault : Aspace.fault) =
  Sync.Mutex.with_lock t.fault_lock @@ fun () ->
  let pte = Ptloc.get fault.Aspace.f_loc in
  let page = Phys.get (kernel_phys t) (Pte.frame pte) in
  let rel = Aspace.mapping_of_fault_rel_page fault in
  if Pte.writable pte then
    (* A concurrent fault already handled this page. *)
    ()
  else if page.Phys.ckpt_in_progress then begin
    (* Redirect the writer (and every other mapping of this frame) to a
       fresh copy; the original keeps feeding the in-flight IO. *)
    let copy = Phys.copy_page (kernel_phys t) page in
    List.iter
      (fun loc ->
        Sched.cpu Costs.pte_update;
        let pte = Ptloc.get loc in
        Ptloc.set loc (Pte.set_frame pte copy.Phys.frame);
        Phys.rmap_add copy loc)
      page.Phys.rmap;
    page.Phys.rmap <- [];
    Hashtbl.replace r.frames rel copy;
    (* Make the faulting PTE writable; other processes keep read-only
       PTEs so their first store still takes a tracking fault. *)
    Ptloc.set fault.Aspace.f_loc
      (Pte.set_writable (Ptloc.get fault.Aspace.f_loc) true);
    track t r ~vpn:fault.Aspace.f_vpn ~rel copy
  end
  else begin
    (* Plain tracking fault. A page already writable in another process's
       page table but read-only here means cross-process sharing; track it
       for this thread unless it is already in an unpersisted set. *)
    if page.Phys.owner >= 0 && page.Phys.owner <> Sched.tid_int (Sched.self ())
    then begin
      if t.strict then
        raise
          (Property_violation
             (Printf.sprintf
                "region %s page %d: concurrent unpersisted writers" r.r_name rel));
      (* Relaxed mode (MVCC databases): ride along with the existing
         owner's dirty entry. *)
      Ptloc.set fault.Aspace.f_loc
        (Pte.set_writable (Ptloc.get fault.Aspace.f_loc) true)
    end
    else begin
      Ptloc.set fault.Aspace.f_loc
        (Pte.set_writable (Ptloc.get fault.Aspace.f_loc) true);
      track t r ~vpn:fault.Aspace.f_vpn ~rel page
    end
  end

(* --- regions --- *)

let region_pager t r =
  { Aspace.page_in =
      (fun rel ->
        match Hashtbl.find_opt r.frames rel with
        | Some p -> `Page p
        | None -> (
          match Hashtbl.find_opt r.populating rel with
          | Some iv -> `Page (Sync.Ivar.read iv)
          | None ->
            let iv = Sync.Ivar.create () in
            Hashtbl.replace r.populating rel iv;
            let p = Phys.alloc (kernel_phys t) in
            (* Read the block straight into the frame; the memcpy charge
               models the kernel copying from the IO buffer into the
               page, exactly as the staged read did. *)
            if Store.read_block_into t.store r.r_obj rel p.Phys.data then
              Sched.cpu (Costs.memcpy Addr.page_size);
            Hashtbl.replace r.frames rel p;
            Hashtbl.remove r.populating rel;
            Sync.Ivar.fill iv p;
            `Page p))
  }

let map_region_into t r aspace =
  let m =
    Aspace.map aspace ~name:("msnap:" ^ r.r_name) ~va:r.r_va ~len:r.r_len
      ~writable:true ~new_pages_writable:false ~pager:(region_pager t r)
      ~on_write_fault:(on_write_fault t r) ()
  in
  ignore m;
  r.r_aspaces <- r.r_aspaces @ [ aspace ]

let arena_align = 1 lsl 21 (* regions start on 2 MiB boundaries *)

let open_region t ?aspace ~name ~len () =
  if Hashtbl.mem t.regions name then
    invalid_arg (Printf.sprintf "Msnap.open_region: %s already open" name);
  let aspace = match aspace with Some a -> a | None -> default_aspace t in
  Sched.cpu Costs.syscall;
  let obj, va, len =
    match Store.open_obj t.store ~name with
    | Some obj ->
      (* Recover: same fixed address, at least the persisted size. *)
      let va = Store.meta obj in
      (obj, va, max len (Store.size_bytes obj))
    | None ->
      let va = Msnap_util.Bits.round_up t.arena_cursor arena_align in
      let obj = Store.create t.store ~name ~meta:va () in
      Store.grow t.store obj ~size_bytes:len;
      (obj, va, len)
  in
  let end_va = Msnap_util.Bits.round_up (va + len) arena_align in
  if end_va > t.arena_cursor then t.arena_cursor <- end_va;
  let r =
    { r_name = name; r_va = va; r_len = Addr.page_align_up len; r_obj = obj;
      r_kernel = t; frames = Hashtbl.create 256; populating = Hashtbl.create 8;
      r_aspaces = []; tickets = Hashtbl.create 8; r_flow = 0 }
  in
  Hashtbl.replace t.regions name r;
  map_region_into t r aspace;
  r

let map_into t r aspace = map_region_into t r aspace

let addr r = r.r_va
let length r = r.r_len
let name r = r.r_name
let durable_epoch r = Store.epoch r.r_obj

let write t r ~off data =
  if off < 0 || off + Bytes.length data > r.r_len then
    invalid_arg "Msnap.write: out of range";
  ignore t;
  match r.r_aspaces with
  | a :: _ -> Aspace.write a ~va:(r.r_va + off) data
  | [] -> invalid_arg "Msnap.write: region not mapped"

let write_slice t r ~off s =
  let len = Slice.length s in
  if off < 0 || off + len > r.r_len then
    invalid_arg "Msnap.write_slice: out of range";
  ignore t;
  match r.r_aspaces with
  | a :: _ ->
    Aspace.write_sub a ~va:(r.r_va + off) (Slice.buf s) ~pos:(Slice.pos s) ~len
  | [] -> invalid_arg "Msnap.write_slice: region not mapped"

(* Zero-copy: the string's bytes feed Aspace's per-page copy directly —
   no intermediate [Bytes.of_string]. *)
let write_string t r ~off s = write_slice t r ~off (Slice.of_string s)

let read t r ~off ~len =
  if off < 0 || off + len > r.r_len then invalid_arg "Msnap.read: out of range";
  ignore t;
  match r.r_aspaces with
  | a :: _ -> Aspace.read a ~va:(r.r_va + off) ~len
  | [] -> invalid_arg "Msnap.read: region not mapped"

(* --- persist --- *)

(* Reset tracking for the taken entries: flag pages in-progress and flip
   every PTE mapping them back to read-only, straight from the recorded
   locations (trace buffer), then one shootdown per address space. *)
let reset_tracking t entries =
  ignore t;
  let by_aspace = Hashtbl.create 4 in
  List.iter
    (fun e ->
      e.e_page.Phys.ckpt_in_progress <- true;
      e.e_page.Phys.owner <- -1;
      List.iter
        (fun loc ->
          Sched.cpu Costs.pte_update;
          Ptloc.set loc (Pte.set_writable (Ptloc.get loc) false))
        e.e_page.Phys.rmap;
      List.iter
        (fun a ->
          let l =
            match Hashtbl.find_opt by_aspace (Aspace.name a) with
            | Some l -> l
            | None ->
              let l = ref (a, []) in
              Hashtbl.add by_aspace (Aspace.name a) l;
              l
          in
          let a', vpns = !l in
          l := (a', e.e_vpn :: vpns))
        e.e_region.r_aspaces)
    entries;
  if Trace.is_on () then begin
    (* One flow step per region whose PTEs were just reset. *)
    let per_region = Hashtbl.create 4 in
    List.iter
      (fun e ->
        let r = e.e_region in
        let c =
          match Hashtbl.find_opt per_region r.r_name with
          | Some c -> c
          | None ->
            let c = ref (r, 0) in
            Hashtbl.add per_region r.r_name c;
            c
        in
        let r', n = !c in
        c := (r', n + 1))
      entries;
    Hashtbl.iter
      (fun _ c ->
        let r, n = !c in
        if r.r_flow <> 0 then
          Trace.instant Probe.msnap_pte_reset ~flow:(r.r_flow, Trace.Flow_step)
            ~args:[ ("region", Trace.S r.r_name); ("pages", Trace.I n) ])
      per_region
  end;
  (* One shootdown round covers all CPUs; invalidate each TLB. *)
  let charged = ref false in
  Hashtbl.iter
    (fun _ l ->
      let a, vpns = !l in
      if not !charged then begin
        charged := true;
        Aspace.shootdown a vpns
      end
      else List.iter (Tlb.invalidate_page (Aspace.tlb a)) vpns)
    by_aspace

(* Completion: once the μCheckpoint is durable, clear the in-progress
   flags and free frames that a concurrent COW orphaned. *)
let complete_entries t entries =
  let phys = kernel_phys t in
  List.iter
    (fun e ->
      e.e_page.Phys.ckpt_in_progress <- false;
      if e.e_page.Phys.rmap = [] then begin
        match Hashtbl.find_opt e.e_region.frames e.e_rel with
        | Some p when p == e.e_page -> () (* still the live frame *)
        | _ -> Phys.free phys e.e_page
      end)
    entries

let take_entries t ~scope ~region =
  let in_scope e =
    match region with None -> true | Some r -> e.e_region == r
  in
  let tids =
    match scope with
    | `Thread -> [ Sched.tid_int (Sched.self ()) ]
    | `Global -> Hashtbl.fold (fun tid _ acc -> tid :: acc) t.dirty []
  in
  List.concat_map
    (fun tid ->
      match Hashtbl.find_opt t.dirty tid with
      | None -> []
      | Some l ->
        let taken, kept = List.partition in_scope !l in
        l := kept;
        taken)
    tids

let persist t ?region ?(mode = `Sync) ?(scope = `Thread) () =
  Sched.with_bucket Probe.Bucket.memsnap (fun () ->
      Sched.cpu Costs.syscall;
      Metrics.incr Probe.msnap_persist;
      let t0 = Sched.now () in
      let entries = take_entries t ~scope ~region in
      if Trace.is_on () then begin
        let seen = Hashtbl.create 4 in
        List.iter
          (fun e ->
            let r = e.e_region in
            if (not (Hashtbl.mem seen r.r_name)) && r.r_flow <> 0 then begin
              Hashtbl.add seen r.r_name ();
              Trace.instant Probe.msnap_take_dirty
                ~flow:(r.r_flow, Trace.Flow_step)
                ~args:[ ("region", Trace.S r.r_name) ]
            end)
          entries
      end;
      reset_tracking t entries;
      let d_reset = Sched.now () - t0 in
      Metrics.add_sample Probe.msnap_persist_reset d_reset;
      Trace.complete Probe.msnap_persist_reset ~dur:d_reset;
      (* Group by region and commit each group as one μCheckpoint. *)
      let by_region = Hashtbl.create 4 in
      let regions_in_order = ref [] in
      List.iter
        (fun e ->
          match Hashtbl.find_opt by_region e.e_region.r_name with
          | Some l -> l := e :: !l
          | None ->
            Hashtbl.add by_region e.e_region.r_name (ref [ e ]);
            regions_in_order := e.e_region :: !regions_in_order)
        entries;
      let t1 = Sched.now () in
      let commits =
        List.map
          (fun r ->
            let es = !(Hashtbl.find by_region r.r_name) in
            let pages = List.map (fun e -> (e.e_rel, e.e_page.Phys.data)) es in
            (* Consume the region's pending flow: faults arriving from
               here on belong to the next Î¼Checkpoint. *)
            let flow = r.r_flow in
            r.r_flow <- 0;
            let ep, ticket = Store.commit_async ~flow t.store r.r_obj pages in
            Hashtbl.replace r.tickets ep ticket;
            (r, ep, ticket, es, flow))
          (List.rev !regions_in_order)
      in
      let d_init = Sched.now () - t1 in
      Metrics.add_sample Probe.msnap_persist_initiate d_init;
      Trace.complete Probe.msnap_persist_initiate ~dur:d_init;
      let result_epoch =
        match region with
        | Some r -> (
          match List.find_opt (fun (r', _, _, _, _) -> r' == r) commits with
          | Some (_, ep, _, _, _) -> ep
          | None -> durable_epoch r)
        | None ->
          List.fold_left (fun acc (_, ep, _, _, _) -> max acc ep) 0 commits
      in
      let finish () =
        List.iter
          (fun (r, ep, ticket, es, flow) ->
            (match Store.wait ticket with
            | () -> Hashtbl.remove r.tickets ep
            | exception exn ->
              (* Keep the ticket so msnap_wait observes the failure. *)
              complete_entries t es;
              raise exn);
            complete_entries t es;
            if Trace.is_on () && flow <> 0 then
              Trace.instant Probe.msnap_durable ~flow:(flow, Trace.Flow_end)
                ~args:[ ("region", Trace.S r.r_name); ("epoch", Trace.I ep) ])
          commits
      in
      (match mode with
      | `Sync ->
        let t2 = Sched.now () in
        finish ();
        let d_wait = Sched.now () - t2 in
        Metrics.add_sample Probe.msnap_persist_wait d_wait;
        Trace.complete Probe.msnap_persist_wait ~dur:d_wait
      | `Async ->
        if commits <> [] then
          ignore
            (Sched.spawn ~name:"msnap-complete" (fun () ->
                 try finish () with _ -> ())));
      let d_total = Sched.now () - t0 in
      Metrics.add_sample Probe.msnap_persist_total d_total;
      Trace.complete Probe.msnap_persist_total ~dur:d_total;
      result_epoch)

let wait t r epoch =
  ignore t;
  Sched.cpu Costs.syscall;
  Metrics.incr Probe.msnap_wait;
  let rec loop () =
    if durable_epoch r < epoch then begin
      (* Find the smallest in-flight epoch that covers the request. *)
      let best =
        Hashtbl.fold
          (fun ep ticket acc ->
            if ep >= epoch then
              match acc with
              | Some (ep', _) when ep' <= ep -> acc
              | _ -> Some (ep, ticket)
            else acc)
          r.tickets None
      in
      match best with
      | Some (_, ticket) ->
        Store.wait ticket;
        loop ()
      | None ->
        invalid_arg
          (Printf.sprintf "Msnap.wait: epoch %d of region %s was never issued"
             epoch r.r_name)
    end
  in
  loop ()

(* --- introspection --- *)

let dirty_count t =
  match Hashtbl.find_opt t.dirty (Sched.tid_int (Sched.self ())) with
  | Some l -> List.length !l
  | None -> 0

let dirty_count_of_region t r =
  Hashtbl.fold
    (fun _ l acc ->
      acc + List.length (List.filter (fun e -> e.e_region == r) !l))
    t.dirty 0

let tracked_threads t =
  Hashtbl.fold (fun _ l acc -> if !l <> [] then acc + 1 else acc) t.dirty 0

let region_by_name t name = Hashtbl.find_opt t.regions name
