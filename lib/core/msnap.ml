module Sched = Msnap_sim.Sched
module Sync = Msnap_sim.Sync
module Costs = Msnap_sim.Costs
module Metrics = Msnap_sim.Metrics
module Trace = Msnap_sim.Trace
module Probe = Msnap_sim.Probe
module Aspace = Msnap_vm.Aspace
module Addr = Msnap_vm.Addr
module Phys = Msnap_vm.Phys
module Pte = Msnap_vm.Pte
module Ptloc = Msnap_vm.Ptloc
module Tlb = Msnap_vm.Tlb
module Slice = Msnap_util.Slice
module Store = Msnap_objstore.Store

exception Property_violation of string

type epoch = int

(* A dirty set is a struct-of-arrays arena: one slot per tracked page,
   parallel columns for the vpn, the rel page, the frame and the region.
   Appending (one per tracking fault) writes four cells; taking the set
   moves slots into a pooled "taken" arena — neither allocates in steady
   state. Slots are stored oldest-first; the old representation was a
   newest-first [entry list], so consumers that depend on entry order
   (it feeds commit grouping, a simulated value) scan downward. *)
type dset = {
  mutable d_vpn : int array;
  mutable d_rel : int array;
  mutable d_page : Phys.page array;
  mutable d_reg : region array;
  mutable d_len : int;
}

and region = {
  r_name : string;
  r_va : int;
  r_len : int;
  r_obj : Store.obj;
  r_kernel : t;
  frames : Phys.page array; (* rel page -> shared frame; null_page = none *)
  populating : Phys.page Sync.Ivar.t option array;
      (* busy-page lock: concurrent faults on the same missing page wait
         for the first to materialize the frame *)
  mutable r_aspaces : Aspace.t list;
  tickets : (int, Store.ticket) Hashtbl.t; (* epoch -> in-flight commit *)
  mutable r_flow : int;
      (* Trace flow id of the pending (not yet persisted) Î¼Checkpoint:
         allocated at the first tracked fault while tracing, consumed by
         the persist that takes the dirty set. Host-only; 0 = none. *)
}

and t = {
  store : Store.t;
  mutable phys : Phys.t option;
  mutable aspaces : Aspace.t list;
  regions : (string, region) Hashtbl.t;
  dirty : (int, dset) Hashtbl.t;
      (* thread id -> dirty set. Still a Hashtbl: [take_entries] folds
         over the tids, and that fold order feeds entry concatenation —
         a simulated value. Only the per-thread values went flat. *)
  spare : dset list ref;
      (* free list of taken arenas, reused across persists *)
  mutable strict : bool;
  mutable arena_cursor : int;
  fault_lock : Sync.Mutex.t;
      (* Serializes write-fault handling: the COW path blocks (page copy),
         and two concurrent faults on the same in-flight page must not
         both duplicate it. Real kernels hold the page busy lock here. *)
}

type md = region

let dset_create () =
  { d_vpn = [||]; d_rel = [||]; d_page = [||]; d_reg = [||]; d_len = 0 }

let grow_column a cap ncap fill =
  let na = Array.make ncap fill in
  Array.blit a 0 na 0 cap;
  na

let dset_push d ~vpn ~rel page reg =
  let cap = Array.length d.d_vpn in
  if d.d_len = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    d.d_vpn <- grow_column d.d_vpn cap ncap 0;
    d.d_rel <- grow_column d.d_rel cap ncap 0;
    d.d_page <- grow_column d.d_page cap ncap page;
    d.d_reg <- grow_column d.d_reg cap ncap reg
  end;
  let i = d.d_len in
  d.d_vpn.(i) <- vpn;
  d.d_rel.(i) <- rel;
  d.d_page.(i) <- page;
  d.d_reg.(i) <- reg;
  d.d_len <- i + 1

let init ~store =
  {
    store;
    phys = None;
    aspaces = [];
    regions = Hashtbl.create 8;
    dirty = Hashtbl.create 16;
    spare = ref [];
    strict = true;
    arena_cursor = Addr.msnap_base;
    fault_lock = Sync.Mutex.create ();
  }

let set_strict t v = t.strict <- v

let kernel_phys t =
  match t.phys with
  | Some p -> p
  | None -> invalid_arg "Msnap: no process attached"

let attach t aspace =
  (match t.phys with
  | None -> t.phys <- Some (Aspace.phys aspace)
  | Some p ->
    if not (p == Aspace.phys aspace) then
      invalid_arg "Msnap.attach: address spaces must share physical memory");
  t.aspaces <- t.aspaces @ [ aspace ]

let default_aspace t =
  match t.aspaces with
  | a :: _ -> a
  | [] -> invalid_arg "Msnap: no process attached"

(* --- dirty set tracking --- *)

let dirty_set t tid =
  match Hashtbl.find_opt t.dirty tid with
  | Some d -> d
  | None ->
    let d = dset_create () in
    Hashtbl.add t.dirty tid d;
    d

let track t r ~vpn ~rel page =
  let tid = Sched.tid_int (Sched.self ()) in
  if t.strict && page.Phys.owner >= 0 && page.Phys.owner <> tid then
    raise
      (Property_violation
         (Printf.sprintf
            "region %s page %d: dirtied by thread %d while thread %d's write \
             is unpersisted"
            r.r_name rel tid page.Phys.owner));
  page.Phys.owner <- tid;
  dset_push (dirty_set t tid) ~vpn ~rel page r;
  if Trace.is_on () && r.r_flow = 0 then begin
    (* First tracked fault of this Î¼Checkpoint: open its causality flow.
       Every later stage (PTE reset, device commit, durable epoch) links
       to this id. *)
    r.r_flow <- Trace.new_flow ();
    Trace.instant Probe.msnap_first_fault ~flow:(r.r_flow, Trace.Flow_start)
      ~args:[ ("region", Trace.S r.r_name); ("rel_page", Trace.I rel) ]
  end

(* The MemSnap write-fault handler: dirty tracking, plus the unified COW
   path for pages whose μCheckpoint is in flight (§3). Runs under the
   kernel fault lock; the faulting frame is re-resolved there because a
   concurrent fault may already have COWed or unprotected the page. *)
let on_write_fault t r (fault : Aspace.fault) =
  Sync.Mutex.with_lock t.fault_lock @@ fun () ->
  let pte = Ptloc.get fault.Aspace.f_loc in
  let page = Phys.get (kernel_phys t) (Pte.frame pte) in
  let rel = Aspace.mapping_of_fault_rel_page fault in
  if Pte.writable pte then
    (* A concurrent fault already handled this page. *)
    ()
  else if page.Phys.ckpt_in_progress then begin
    (* Redirect the writer (and every other mapping of this frame) to a
       fresh copy; the original keeps feeding the in-flight IO. *)
    let copy = Phys.copy_page (kernel_phys t) page in
    Phys.rmap_iter
      (fun loc ->
        Sched.cpu Costs.pte_update;
        let pte = Ptloc.get loc in
        Ptloc.set loc (Pte.set_frame pte copy.Phys.frame);
        Phys.rmap_add copy loc)
      page;
    Phys.rmap_clear page;
    r.frames.(rel) <- copy;
    (* Make the faulting PTE writable; other processes keep read-only
       PTEs so their first store still takes a tracking fault. *)
    Ptloc.set fault.Aspace.f_loc
      (Pte.set_writable (Ptloc.get fault.Aspace.f_loc) true);
    track t r ~vpn:fault.Aspace.f_vpn ~rel copy
  end
  else begin
    (* Plain tracking fault. A page already writable in another process's
       page table but read-only here means cross-process sharing; track it
       for this thread unless it is already in an unpersisted set. *)
    if page.Phys.owner >= 0 && page.Phys.owner <> Sched.tid_int (Sched.self ())
    then begin
      if t.strict then
        raise
          (Property_violation
             (Printf.sprintf
                "region %s page %d: concurrent unpersisted writers" r.r_name rel));
      (* Relaxed mode (MVCC databases): ride along with the existing
         owner's dirty entry. *)
      Ptloc.set fault.Aspace.f_loc
        (Pte.set_writable (Ptloc.get fault.Aspace.f_loc) true)
    end
    else begin
      Ptloc.set fault.Aspace.f_loc
        (Pte.set_writable (Ptloc.get fault.Aspace.f_loc) true);
      track t r ~vpn:fault.Aspace.f_vpn ~rel page
    end
  end

(* --- regions --- *)

let region_pager t r =
  { Aspace.page_in =
      (fun rel ->
        let p = r.frames.(rel) in
        if not (Phys.is_null p) then `Page p
        else
          match r.populating.(rel) with
          | Some iv -> `Page (Sync.Ivar.read iv)
          | None ->
            let iv = Sync.Ivar.create () in
            r.populating.(rel) <- Some iv;
            let p = Phys.alloc (kernel_phys t) in
            (* Read the block straight into the frame; the memcpy charge
               models the kernel copying from the IO buffer into the
               page, exactly as the staged read did. *)
            if Store.read_block_into t.store r.r_obj rel p.Phys.data then
              Sched.cpu (Costs.memcpy Addr.page_size);
            r.frames.(rel) <- p;
            r.populating.(rel) <- None;
            Sync.Ivar.fill iv p;
            `Page p)
  }

let map_region_into t r aspace =
  let m =
    Aspace.map aspace ~name:("msnap:" ^ r.r_name) ~va:r.r_va ~len:r.r_len
      ~writable:true ~new_pages_writable:false ~pager:(region_pager t r)
      ~on_write_fault:(on_write_fault t r) ()
  in
  ignore m;
  r.r_aspaces <- r.r_aspaces @ [ aspace ]

let arena_align = 1 lsl 21 (* regions start on 2 MiB boundaries *)

let open_region t ?aspace ~name ~len () =
  if Hashtbl.mem t.regions name then
    invalid_arg (Printf.sprintf "Msnap.open_region: %s already open" name);
  let aspace = match aspace with Some a -> a | None -> default_aspace t in
  Sched.cpu Costs.syscall;
  let obj, va, len =
    match Store.open_obj t.store ~name with
    | Some obj ->
      (* Recover: same fixed address, at least the persisted size. *)
      let va = Store.meta obj in
      (obj, va, max len (Store.size_bytes obj))
    | None ->
      let va = Msnap_util.Bits.round_up t.arena_cursor arena_align in
      let obj = Store.create t.store ~name ~meta:va () in
      Store.grow t.store obj ~size_bytes:len;
      (obj, va, len)
  in
  let end_va = Msnap_util.Bits.round_up (va + len) arena_align in
  if end_va > t.arena_cursor then t.arena_cursor <- end_va;
  let r_len = Addr.page_align_up len in
  let npages = r_len / Addr.page_size in
  let r =
    { r_name = name; r_va = va; r_len; r_obj = obj; r_kernel = t;
      frames = Array.make npages Phys.null_page;
      populating = Array.make npages None;
      r_aspaces = []; tickets = Hashtbl.create 8; r_flow = 0 }
  in
  Hashtbl.replace t.regions name r;
  map_region_into t r aspace;
  r

let map_into t r aspace = map_region_into t r aspace

let addr r = r.r_va
let length r = r.r_len
let name r = r.r_name
let durable_epoch r = Store.epoch r.r_obj

let write t r ~off data =
  if off < 0 || off + Bytes.length data > r.r_len then
    invalid_arg "Msnap.write: out of range";
  ignore t;
  match r.r_aspaces with
  | a :: _ -> Aspace.write a ~va:(r.r_va + off) data
  | [] -> invalid_arg "Msnap.write: region not mapped"

let write_slice t r ~off s =
  let len = Slice.length s in
  if off < 0 || off + len > r.r_len then
    invalid_arg "Msnap.write_slice: out of range";
  ignore t;
  match r.r_aspaces with
  | a :: _ ->
    Aspace.write_sub a ~va:(r.r_va + off) (Slice.buf s) ~pos:(Slice.pos s) ~len
  | [] -> invalid_arg "Msnap.write_slice: region not mapped"

(* Zero-copy: the string's bytes feed Aspace's per-page copy directly —
   no intermediate [Bytes.of_string]. *)
let write_string t r ~off s = write_slice t r ~off (Slice.of_string s)

let read t r ~off ~len =
  if off < 0 || off + len > r.r_len then invalid_arg "Msnap.read: out of range";
  ignore t;
  match r.r_aspaces with
  | a :: _ -> Aspace.read a ~va:(r.r_va + off) ~len
  | [] -> invalid_arg "Msnap.read: region not mapped"

(* Same charges as [read], into a caller-owned buffer. *)
let read_into t r ~off buf ~pos ~len =
  if off < 0 || off + len > r.r_len then
    invalid_arg "Msnap.read_into: out of range";
  ignore t;
  match r.r_aspaces with
  | a :: _ -> Aspace.read_into a ~va:(r.r_va + off) buf ~pos ~len
  | [] -> invalid_arg "Msnap.read_into: region not mapped"

(* --- persist --- *)

(* Reset tracking for the taken entries: flag pages in-progress and flip
   every PTE mapping them back to read-only, straight from the recorded
   locations (trace buffer), then one shootdown per address space. *)
let reset_tracking t taken =
  ignore t;
  let by_aspace = Hashtbl.create 4 in
  for i = 0 to taken.d_len - 1 do
    let page = taken.d_page.(i) in
    page.Phys.ckpt_in_progress <- true;
    page.Phys.owner <- -1;
    Phys.rmap_iter
      (fun loc ->
        Sched.cpu Costs.pte_update;
        Ptloc.set loc (Pte.set_writable (Ptloc.get loc) false))
      page;
    List.iter
      (fun a ->
        let l =
          match Hashtbl.find_opt by_aspace (Aspace.name a) with
          | Some l -> l
          | None ->
            let l = ref (a, []) in
            Hashtbl.add by_aspace (Aspace.name a) l;
            l
        in
        let a', vpns = !l in
        l := (a', taken.d_vpn.(i) :: vpns))
      taken.d_reg.(i).r_aspaces
  done;
  if Trace.is_on () then begin
    (* One flow step per region whose PTEs were just reset. *)
    let per_region = Hashtbl.create 4 in
    for i = 0 to taken.d_len - 1 do
      let r = taken.d_reg.(i) in
      let c =
        match Hashtbl.find_opt per_region r.r_name with
        | Some c -> c
        | None ->
          let c = ref (r, 0) in
          Hashtbl.add per_region r.r_name c;
          c
      in
      let r', n = !c in
      c := (r', n + 1)
    done;
    Hashtbl.iter
      (fun _ c ->
        let r, n = !c in
        if r.r_flow <> 0 then
          Trace.instant Probe.msnap_pte_reset ~flow:(r.r_flow, Trace.Flow_step)
            ~args:[ ("region", Trace.S r.r_name); ("pages", Trace.I n) ])
      per_region
  end;
  (* One shootdown round covers all CPUs; invalidate each TLB. *)
  let charged = ref false in
  Hashtbl.iter
    (fun _ l ->
      let a, vpns = !l in
      if not !charged then begin
        charged := true;
        Aspace.shootdown a vpns
      end
      else List.iter (Tlb.invalidate_page (Aspace.tlb a)) vpns)
    by_aspace

(* Completion: once the μCheckpoint is durable, clear the in-progress
   flags and free frames that a concurrent COW orphaned. [idxs] selects
   one commit's slots of the taken arena. *)
let complete_entries t taken idxs =
  let phys = kernel_phys t in
  List.iter
    (fun i ->
      let page = taken.d_page.(i) in
      page.Phys.ckpt_in_progress <- false;
      if Phys.rmap_is_empty page then begin
        let live = taken.d_reg.(i).frames.(taken.d_rel.(i)) in
        if not (live == page) (* still the live frame? *) then
          Phys.free phys page
      end)
    idxs

(* Move every in-scope slot of the per-thread dirty sets into a pooled
   "taken" arena, keeping the rest. The taken arena's slot order equals
   the old [entry list] order — per thread newest-first, threads in the
   dirty-table fold order — because that order flows into commit
   grouping, a simulated value. Steady-state this allocates nothing:
   the arena comes from [t.spare] and goes back once durable. *)
let take_entries t ~scope ~region =
  let taken =
    match !(t.spare) with
    | d :: rest ->
      t.spare := rest;
      d
    | [] -> dset_create ()
  in
  let take_tid tid =
    match Hashtbl.find_opt t.dirty tid with
    | None -> ()
    | Some d ->
      (* Downward scan: the list head was the newest entry. *)
      for i = d.d_len - 1 downto 0 do
        let in_scope =
          match region with None -> true | Some r -> d.d_reg.(i) == r
        in
        if in_scope then
          dset_push taken ~vpn:d.d_vpn.(i) ~rel:d.d_rel.(i) d.d_page.(i)
            d.d_reg.(i)
      done;
      (* Compact the kept slots in place, preserving their order. *)
      let j = ref 0 in
      for i = 0 to d.d_len - 1 do
        let in_scope =
          match region with None -> true | Some r -> d.d_reg.(i) == r
        in
        if not in_scope then begin
          if !j < i then begin
            d.d_vpn.(!j) <- d.d_vpn.(i);
            d.d_rel.(!j) <- d.d_rel.(i);
            d.d_page.(!j) <- d.d_page.(i);
            d.d_reg.(!j) <- d.d_reg.(i)
          end;
          incr j
        end
      done;
      d.d_len <- !j
  in
  (match scope with
  | `Thread -> take_tid (Sched.tid_int (Sched.self ()))
  | `Global ->
    (* Fold over tids first: mutating values mid-fold is fine for the
       stdlib Hashtbl, but the tid order itself must stay exactly the
       old fold order. *)
    let tids = Hashtbl.fold (fun tid _ acc -> tid :: acc) t.dirty [] in
    List.iter take_tid tids);
  taken

let release_taken t taken =
  taken.d_len <- 0;
  t.spare := taken :: !(t.spare)

let persist t ?region ?(mode = `Sync) ?(scope = `Thread) () =
  Sched.with_bucket Probe.Bucket.memsnap (fun () ->
      Sched.cpu Costs.syscall;
      Metrics.incr Probe.msnap_persist;
      let t0 = Sched.now () in
      let taken = take_entries t ~scope ~region in
      if Trace.is_on () then begin
        let seen = Hashtbl.create 4 in
        for i = 0 to taken.d_len - 1 do
          let r = taken.d_reg.(i) in
          if (not (Hashtbl.mem seen r.r_name)) && r.r_flow <> 0 then begin
            Hashtbl.add seen r.r_name ();
            Trace.instant Probe.msnap_take_dirty
              ~flow:(r.r_flow, Trace.Flow_step)
              ~args:[ ("region", Trace.S r.r_name) ]
          end
        done
      end;
      reset_tracking t taken;
      let d_reset = Sched.now () - t0 in
      Metrics.add_sample Probe.msnap_persist_reset d_reset;
      Trace.complete Probe.msnap_persist_reset ~dur:d_reset;
      (* Group by region and commit each group as one μCheckpoint. The
         per-region slot lists are consed during the forward scan, so
         they come out scan-reversed — exactly the order the old
         entry-list version fed to [Store.commit_async]. *)
      let by_region = Hashtbl.create 4 in
      let regions_in_order = ref [] in
      for i = 0 to taken.d_len - 1 do
        let r = taken.d_reg.(i) in
        match Hashtbl.find_opt by_region r.r_name with
        | Some l -> l := i :: !l
        | None ->
          Hashtbl.add by_region r.r_name (ref [ i ]);
          regions_in_order := r :: !regions_in_order
      done;
      let t1 = Sched.now () in
      let commits =
        List.map
          (fun r ->
            let idxs = !(Hashtbl.find by_region r.r_name) in
            let pages =
              List.map
                (fun i -> (taken.d_rel.(i), taken.d_page.(i).Phys.data))
                idxs
            in
            (* Consume the region's pending flow: faults arriving from
               here on belong to the next Î¼Checkpoint. *)
            let flow = r.r_flow in
            r.r_flow <- 0;
            let ep, ticket = Store.commit_async ~flow t.store r.r_obj pages in
            Hashtbl.replace r.tickets ep ticket;
            (r, ep, ticket, idxs, flow))
          (List.rev !regions_in_order)
      in
      let d_init = Sched.now () - t1 in
      Metrics.add_sample Probe.msnap_persist_initiate d_init;
      Trace.complete Probe.msnap_persist_initiate ~dur:d_init;
      let result_epoch =
        match region with
        | Some r -> (
          match List.find_opt (fun (r', _, _, _, _) -> r' == r) commits with
          | Some (_, ep, _, _, _) -> ep
          | None -> durable_epoch r)
        | None ->
          List.fold_left (fun acc (_, ep, _, _, _) -> max acc ep) 0 commits
      in
      let finish () =
        List.iter
          (fun (r, ep, ticket, idxs, flow) ->
            (match Store.wait ticket with
            | () -> Hashtbl.remove r.tickets ep
            | exception exn ->
              (* Keep the ticket so msnap_wait observes the failure.
                 The taken arena is not recycled: later commits still
                 reference it. *)
              complete_entries t taken idxs;
              raise exn);
            complete_entries t taken idxs;
            if Trace.is_on () && flow <> 0 then
              Trace.instant Probe.msnap_durable ~flow:(flow, Trace.Flow_end)
                ~args:[ ("region", Trace.S r.r_name); ("epoch", Trace.I ep) ])
          commits;
        release_taken t taken
      in
      (match mode with
      | `Sync ->
        let t2 = Sched.now () in
        finish ();
        let d_wait = Sched.now () - t2 in
        Metrics.add_sample Probe.msnap_persist_wait d_wait;
        Trace.complete Probe.msnap_persist_wait ~dur:d_wait
      | `Async ->
        if commits = [] then release_taken t taken
        else
          ignore
            (Sched.spawn ~name:"msnap-complete" (fun () ->
                 try finish () with _ -> ())));
      let d_total = Sched.now () - t0 in
      Metrics.add_sample Probe.msnap_persist_total d_total;
      Trace.complete Probe.msnap_persist_total ~dur:d_total;
      result_epoch)

let wait t r epoch =
  ignore t;
  Sched.cpu Costs.syscall;
  Metrics.incr Probe.msnap_wait;
  let rec loop () =
    if durable_epoch r < epoch then begin
      (* Find the smallest in-flight epoch that covers the request. *)
      let best =
        Hashtbl.fold
          (fun ep ticket acc ->
            if ep >= epoch then
              match acc with
              | Some (ep', _) when ep' <= ep -> acc
              | _ -> Some (ep, ticket)
            else acc)
          r.tickets None
      in
      match best with
      | Some (_, ticket) ->
        Store.wait ticket;
        loop ()
      | None ->
        invalid_arg
          (Printf.sprintf "Msnap.wait: epoch %d of region %s was never issued"
             epoch r.r_name)
    end
  in
  loop ()

(* --- introspection --- *)

let dirty_count t =
  match Hashtbl.find_opt t.dirty (Sched.tid_int (Sched.self ())) with
  | Some d -> d.d_len
  | None -> 0

let dirty_count_of_region t r =
  Hashtbl.fold
    (fun _ d acc ->
      let n = ref 0 in
      for i = 0 to d.d_len - 1 do
        if d.d_reg.(i) == r then incr n
      done;
      acc + !n)
    t.dirty 0

let tracked_threads t =
  Hashtbl.fold (fun _ d acc -> if d.d_len > 0 then acc + 1 else acc) t.dirty 0

let region_by_name t name = Hashtbl.find_opt t.regions name

(* --- crash recovery contract --- *)

(* Fixed-size value cells for crash workloads: a 256-byte slot holding a
   u16 length + payload. The fixed footprint keeps every cell update the
   same simulated write size regardless of the value, so a workload's
   command stream depends only on its script. *)

let cell_cap = 256
let cell_max = cell_cap - 2

let cell_write t md ~off v =
  if String.length v > cell_max then invalid_arg "Msnap.cell_write: too long";
  let b = Bytes.make cell_cap '\000' in
  Bytes.set_uint16_le b 0 (String.length v);
  Bytes.blit_string v 0 b 2 (String.length v);
  write t md ~off b

let cell_read t md ~off =
  let b = read t md ~off ~len:cell_cap in
  let n = Bytes.get_uint16_le b 0 in
  if n > cell_max then None else Some (Bytes.sub_string b 2 n)

type recovered = {
  rec_kernel : t;
  rec_md : md;
  rec_phys : Phys.t;
}

let recoverable ~region ~len ~cells =
  (module struct
    type t = recovered

    let label = "msnap"

    (* Boot a whole fresh machine over the post-crash device: mount the
       object store (no valid superblock -> unmountable), init a kernel,
       remap the region at its fixed address. Pages fault back in from
       the last committed μCheckpoint on access. *)
    let recover dev =
      let phys = Phys.create () in
      let aspace = Aspace.create phys in
      let store =
        try Store.mount dev
        with Store.Corrupt msg ->
          Phys.dispose phys;
          raise (Msnap_faults.Recoverable.Unmountable msg)
      in
      let k = init ~store in
      attach k aspace;
      let md = open_region k ~name:region ~len () in
      { rec_kernel = k; rec_md = md; rec_phys = phys }

    let check r history =
      let state =
        List.map
          (fun (lbl, off) ->
            match cell_read r.rec_kernel r.rec_md ~off with
            | Some v -> (lbl, v)
            | None ->
              Msnap_faults.Recoverable.fail
                "msnap: cell %s at +%#x recovered with a garbage length"
                lbl off)
          cells
      in
      Msnap_faults.Recoverable.check_state ~label history state

    let dispose r = Phys.dispose r.rec_phys
  end : Msnap_faults.Recoverable.S with type t = recovered)
