module Sched = Msnap_sim.Sched
module Trace = Msnap_sim.Trace
module Probe = Msnap_sim.Probe
module Sync = Msnap_sim.Sync
module Costs = Msnap_sim.Costs
module Aspace = Msnap_vm.Aspace
module Addr = Msnap_vm.Addr
module Phys = Msnap_vm.Phys
module Pte = Msnap_vm.Pte
module Ptloc = Msnap_vm.Ptloc
module Ptable = Msnap_vm.Ptable
module Store = Msnap_objstore.Store
module Pool = Msnap_util.Pool

module Kernel = struct
  type t = {
    aspace : Aspace.t;
    store : Store.t;
    other_mapped_pages : int;
    mutable threads : int;
    mutable stopped : bool;
    world_mutex : Sync.Mutex.t;
    world_resumed : Sync.Condition.t;
    fault_lock : Sync.Mutex.t;
        (* Serializes COW fault handling: two faults on the same shadowed
           page must not both duplicate it. *)
    mutable regions : region list;
  }

  and region = {
    k : t;
    r_name : string;
    r_va : int;
    r_len : int;
    mapping : Aspace.mapping;
    obj : Store.obj;
    (* Flat combining: one checkpoint runs at a time; callers that arrive
       meanwhile are satisfied by the next round. *)
    mutable waiters : unit Sync.Ivar.t list;
    mutable ckpt_running : bool;
    mutable shadow_frames : (int * Phys.page) list;
        (* Snapshot frames of the in-flight checkpoint: (rel page, frame). *)
    mutable cow_copies : Phys.page list;
        (* Original frames replaced by COW during the flight; freed at
           collapse. *)
    mutable breakdown : (int * int * int * int) option;
  }

  let create ~aspace ~store ?(other_mapped_pages = 65536) () =
    {
      aspace;
      store;
      other_mapped_pages;
      threads = 0;
      stopped = false;
      world_mutex = Sync.Mutex.create ();
      world_resumed = Sync.Condition.create ();
      fault_lock = Sync.Mutex.create ();
      regions = [];
    }

  let register_thread t = t.threads <- t.threads + 1
  let thread_count t = t.threads

  (* Application threads park here while the world is stopped. *)
  let wait_world t =
    if t.stopped then
      Sync.Mutex.with_lock t.world_mutex (fun () ->
          while t.stopped do
            Sync.Condition.wait t.world_resumed t.world_mutex
          done)

  let stop_world t =
    (* Threads are parked from the moment the IPIs go out; the stall cost
       is the wait for the last one to reach its safe point. *)
    t.stopped <- true;
    Sched.cpu (max 1 t.threads * Costs.thread_stop_signal)

  let resume_world t =
    t.stopped <- false;
    Sync.Mutex.with_lock t.world_mutex (fun () ->
        Sync.Condition.broadcast t.world_resumed)
end

module Region = struct
  open Kernel

  type t = Kernel.region

  type breakdown = { stall : int; shadow : int; io : int; collapse : int }

  (* Write fault during an in-flight checkpoint: redirect the writer to a
     fresh copy so the shadow frame stays stable ("shadow object"). The
     faulting frame is re-resolved under the kernel fault lock because a
     concurrent fault may already have COWed or unprotected the page. *)
  let on_write_fault k (fault : Aspace.fault) =
    Sync.Mutex.with_lock k.fault_lock @@ fun () ->
    let aspace = fault.Aspace.f_aspace in
    let pte = Ptloc.get fault.Aspace.f_loc in
    let page = Phys.get (Aspace.phys aspace) (Pte.frame pte) in
    if Pte.writable pte then ()
    else if page.Phys.ckpt_in_progress then begin
      if Trace.is_on () then
        Trace.instant Probe.aurora_cow_fault
          ~argi:("vpn", fault.Aspace.f_vpn);
      let copy = Phys.copy_page (Aspace.phys aspace) page in
      Phys.rmap_remove page fault.Aspace.f_loc;
      Phys.rmap_add copy fault.Aspace.f_loc;
      let pte = Ptloc.get fault.Aspace.f_loc in
      Ptloc.set fault.Aspace.f_loc
        (Pte.set_writable (Pte.set_frame pte copy.Phys.frame) true)
    end
    else
      Ptloc.set fault.Aspace.f_loc
        (Pte.set_writable (Ptloc.get fault.Aspace.f_loc) true)

  let create k ~name ~va ~len =
    let obj =
      match Store.open_obj k.store ~name with
      | Some o -> o
      | None -> Store.create k.store ~name ~meta:va ()
    in
    let pager =
      { Aspace.page_in =
          (fun rel ->
            (* Pooled staging instead of [read_block]'s fresh block, and
               the frame filled here instead of via [`Bytes]: the charge
               sequence (radix lookup, device read, frame alloc, then a
               page-sized memcpy) is exactly what the allocating path
               produced. *)
            let staging = Pool.alloc Msnap_objstore.Layout.block_size in
            Fun.protect
              ~finally:(fun () -> Pool.recycle staging)
              (fun () ->
                if Store.read_block_into k.store obj rel staging then begin
                  let p = Phys.alloc (Aspace.phys k.aspace) in
                  Sched.cpu (Costs.memcpy Addr.page_size);
                  Bytes.blit staging 0 p.Phys.data 0 Addr.page_size;
                  `Page p
                end
                else `Zero))
      }
    in
    let mapping =
      Aspace.map k.aspace ~name:("aurora:" ^ name) ~va ~len ~writable:true
        ~new_pages_writable:false ~pager ~on_write_fault:(on_write_fault k) ()
    in
    let r =
      { k; r_name = name; r_va = va; r_len = len; mapping; obj; waiters = [];
        ckpt_running = false; shadow_frames = []; cow_copies = [];
        breakdown = None }
    in
    k.regions <- r :: k.regions;
    r

  let base r = r.r_va
  let length r = r.r_len

  let write r ~off data =
    if off < 0 || off + Bytes.length data > r.r_len then
      invalid_arg "Aurora.Region.write: out of range";
    wait_world r.k;
    Aspace.write r.k.aspace ~va:(r.r_va + off) data

  let read r ~off ~len =
    if off < 0 || off + len > r.r_len then
      invalid_arg "Aurora.Region.read: out of range";
    Aspace.read r.k.aspace ~va:(r.r_va + off) ~len

  (* Same charges as [read], into a caller-owned buffer. *)
  let read_into r ~off buf ~pos ~len =
    if off < 0 || off + len > r.r_len then
      invalid_arg "Aurora.Region.read_into: out of range";
    Aspace.read_into r.k.aspace ~va:(r.r_va + off) buf ~pos ~len

  (* Shadow one region: collect the dirty set and COW-protect every
     present page. Returns the dirty (rel, frame) list. Runs with the
     world stopped. *)
  let shadow_region r =
    let aspace = r.k.aspace in
    let pt = Aspace.page_table aspace in
    let phys = Aspace.phys aspace in
    let start_vpn = Addr.vpn_of_va r.r_va in
    let npages = Addr.pages_spanned ~off:r.r_va ~len:r.r_len in
    let dirty = ref [] in
    let present = ref 0 in
    let visited =
      Ptable.scan_range pt ~vpn:start_vpn ~n:npages ~f:(fun vpn loc ->
          incr present;
          let pte = Ptloc.get loc in
          let page = Phys.get phys (Pte.frame pte) in
          if Pte.writable pte then
            dirty := (vpn - start_vpn, page) :: !dirty;
          page.Phys.ckpt_in_progress <- true;
          Ptloc.set loc (Pte.set_cow (Pte.set_writable pte false) true))
    in
    Sched.cpu ((visited * Costs.pte_visit) + (!present * Costs.pte_update_bulk));
    Msnap_vm.Tlb.flush (Aspace.tlb aspace);
    Sched.cpu Costs.tlb_flush_all;
    r.shadow_frames <- List.rev !dirty;
    r.shadow_frames

  (* Collapse the shadow object back into the base: another pass over the
     whole mapping merging page lists, plus freeing COW copies. *)
  let collapse_region r =
    let aspace = r.k.aspace in
    let pt = Aspace.page_table aspace in
    let phys = Aspace.phys aspace in
    let start_vpn = Addr.vpn_of_va r.r_va in
    let npages = Addr.pages_spanned ~off:r.r_va ~len:r.r_len in
    let present = ref 0 in
    let visited =
      Ptable.scan_range pt ~vpn:start_vpn ~n:npages ~f:(fun _ loc ->
          incr present;
          let pte = Ptloc.get loc in
          let page = Phys.get phys (Pte.frame pte) in
          page.Phys.ckpt_in_progress <- false;
          Ptloc.set loc (Pte.set_cow pte false))
    in
    (* Merging the shadow's page list into the base costs a visit per
       page plus the list manipulation. *)
    Sched.cpu ((visited * Costs.pte_visit) + (!present * Costs.pte_update_bulk));
    List.iter
      (fun (_, page) ->
        page.Phys.ckpt_in_progress <- false;
        if Phys.rmap_is_empty page then Phys.free phys page)
      r.shadow_frames;
    List.iter (fun p -> if Phys.rmap_is_empty p then Phys.free phys p) r.cow_copies;
    r.cow_copies <- [];
    r.shadow_frames <- []

  let flush_dirty r dirty =
    (* Zero-copy: the commit's scatter/gather list references the page
       frames themselves. Safe under the ownership rule — every dirty
       frame has [ckpt_in_progress] set, so writers COW away from it
       while the IO is in flight, and [collapse_region] (which may free
       orphaned frames) only runs after the commit returns. *)
    let pages = List.map (fun (rel, page) -> (rel, page.Phys.data)) dirty in
    if pages <> [] then ignore (Store.commit r.k.store r.obj pages)

  (* One full checkpoint round. *)
  let run_checkpoint r =
    let t0 = Sched.now () in
    stop_world r.k;
    let t_stall = Sched.now () in
    (* Each phase span is emitted the moment it ends so its reconstructed
       start (now - dur) lands where the phase actually began. *)
    if Trace.is_on () then
      Trace.complete Probe.aurora_stall ~dur:(t_stall - t0)
        ~argi:("threads", r.k.threads);
    let dirty = shadow_region r in
    let t_shadow = Sched.now () in
    if Trace.is_on () then
      Trace.complete Probe.aurora_shadow ~dur:(t_shadow - t_stall)
        ~argi:("dirty_pages", List.length dirty);
    resume_world r.k;
    flush_dirty r dirty;
    let t_io = Sched.now () in
    if Trace.is_on () then
      Trace.complete Probe.aurora_io ~dur:(t_io - t_shadow);
    collapse_region r;
    let t_collapse = Sched.now () in
    r.breakdown <-
      Some (t_stall - t0, t_shadow - t_stall, t_io - t_shadow, t_collapse - t_io);
    if Trace.is_on () then begin
      Trace.complete Probe.aurora_collapse ~dur:(t_collapse - t_io);
      Trace.complete Probe.aurora_checkpoint ~dur:(t_collapse - t0)
        ~args:
          [ ("region", Trace.S r.r_name);
            ("dirty_pages", Trace.I (List.length dirty)) ]
    end

  let checkpoint r =
    let iv = Sync.Ivar.create () in
    r.waiters <- iv :: r.waiters;
    if not r.ckpt_running then begin
      r.ckpt_running <- true;
      let rec rounds () =
        match r.waiters with
        | [] -> r.ckpt_running <- false
        | ws ->
          r.waiters <- [];
          run_checkpoint r;
          List.iter (fun w -> Sync.Ivar.fill w ()) (List.rev ws);
          rounds ()
      in
      rounds ()
    end;
    Sync.Ivar.read iv

  let last_breakdown r =
    Option.map
      (fun (stall, shadow, io, collapse) -> { stall; shadow; io; collapse })
      r.breakdown
end

(* OS state serialization: registers, FDs, kqueues, sysctl state... modeled
   as a fixed CPU cost plus scanning the non-region address space. *)
let os_state_cost = 350_000

let checkpoint_app (k : Kernel.t) =
  let trace_t0 = if Trace.is_on () then Sched.now () else 0 in
  Kernel.stop_world k;
  let dirty_by_region =
    List.map (fun r -> (r, Region.shadow_region r)) k.Kernel.regions
  in
  (* Shadow the rest of the address space (heap, stacks, code). *)
  Sched.cpu (k.Kernel.other_mapped_pages * Costs.pte_visit);
  Sched.cpu os_state_cost;
  Kernel.resume_world k;
  List.iter (fun (r, dirty) -> Region.flush_dirty r dirty) dirty_by_region;
  List.iter (fun (r, _) -> Region.collapse_region r) dirty_by_region;
  (* Collapse pass over the non-region address space as well. *)
  Sched.cpu (k.Kernel.other_mapped_pages * Costs.pte_visit);
  if Trace.is_on () then
    Trace.complete Probe.aurora_checkpoint_app
      ~dur:(Sched.now () - trace_t0)
      ~argi:("regions", List.length k.Kernel.regions)
