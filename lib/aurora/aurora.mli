(** The Aurora single-level-store baseline (SOSP '21), reproduced at the
    mechanism level the paper compares against (§2, Table 2, Fig. 3,
    Tables 9/10).

    Aurora persists memory regions with "system shadowing":

    + stop every application thread at a safe point;
    + walk the whole mapping's page tables, collecting pages dirtied since
      the previous checkpoint and applying COW protection to *all* present
      pages (the shadow object);
    + resume threads and synchronously flush the dirty pages;
    + "collapse" the shadow back into the base object — another pass whose
      cost is proportional to the mapping size, not the dirty set.

    Writes racing with an in-flight checkpoint hit the COW path and are
    redirected to fresh frames; the shadow frames keep the snapshot stable.
    A region supports one outstanding checkpoint; concurrent callers are
    flat-combined into the next round. Both properties reproduce the cost
    structure of Table 2 (stall / shadow / IO / collapse) and the
    contention behaviour Table 9 blames for Aurora's RocksDB throughput. *)

module Kernel : sig
  type t

  val create :
    aspace:Msnap_vm.Aspace.t ->
    store:Msnap_objstore.Store.t ->
    ?other_mapped_pages:int ->
    unit ->
    t
  (** [other_mapped_pages] models the rest of the process address space
      (heap, code, stacks) that an *application* checkpoint must scan and
      collapse even though no region covers it (default 64 Ki pages =
      256 MiB). *)

  val register_thread : t -> unit
  (** Declare the calling thread a participant: application threads must
      register so stop-the-world knows how many safe-point round-trips to
      pay for, and so their region writes park during the stall window. *)

  val thread_count : t -> int
end

module Region : sig
  type t

  val create : Kernel.t -> name:string -> va:int -> len:int -> t
  (** Map a persistent region at [va], backed by an object of the same
      name in the kernel's store (restored if it exists). *)

  val base : t -> int
  val length : t -> int

  val write : t -> off:int -> Bytes.t -> unit
  (** Store through the region mapping. Parks while a checkpoint has the
      world stopped. *)

  val read : t -> off:int -> len:int -> Bytes.t

  val read_into : t -> off:int -> Bytes.t -> pos:int -> len:int -> unit
  (** [read] into a caller-owned buffer — same charges, no allocation. *)

  val checkpoint : t -> unit
  (** Synchronous region checkpoint (flat-combined across callers). *)

  type breakdown = { stall : int; shadow : int; io : int; collapse : int }
  (** Nanoseconds per phase — the Table 2 decomposition. *)

  val last_breakdown : t -> breakdown option
  (** Breakdown of the region's most recent checkpoint. *)
end

val checkpoint_app : Kernel.t -> unit
(** Application checkpoint: stop the world, shadow every region *and* the
    rest of the address space, serialize OS state, flush, collapse. *)
