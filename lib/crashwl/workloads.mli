(** The scripted crash workloads — one {!Msnap_faults.Checker.workload}
    per engine, ready for the checker or the [msnap crashcheck] CLI.

    Each script runs single-threaded on a two-disk stripe, records one
    history step per acked durability point, and is deterministic in its
    command stream, so every crash point the checker visits is a
    replayable [(prefix, torn_seed)] pair. *)

val msnap_workload : Msnap_faults.Checker.workload
val objstore_workload : Msnap_faults.Checker.workload
val fs_workload : Msnap_faults.Checker.workload
val sqlite_workload : Msnap_faults.Checker.workload
val pg_workload : Msnap_faults.Checker.workload
val rocks_workload : Msnap_faults.Checker.workload

val all : Msnap_faults.Checker.workload list
(** All six, in canonical order: msnap, objstore, fs, sqlite, pg,
    rocks. *)

val by_name : string -> Msnap_faults.Checker.workload option
val names : string list
