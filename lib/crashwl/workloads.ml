(* The scripted crash workloads — one per engine.

   Each workload is deliberately small and single-threaded: the value of
   the crash matrix comes from visiting every durable boundary the
   script produces, not from making the script elaborate. Every acked
   durability point (persist, commit, fsync) records one History step
   with the full expected state, so the checker can demand that recovery
   after a crash anywhere lands on a candidate step.

   Scripts must be deterministic in their command stream: fixed key
   sets, fixed-size value cells where the engine offers them, no
   randomness, no time. *)

module Size = Msnap_util.Size
module Disk = Msnap_blockdev.Disk
module Stripe = Msnap_blockdev.Stripe
module Device = Msnap_blockdev.Device
module Store = Msnap_objstore.Store
module Phys = Msnap_vm.Phys
module Aspace = Msnap_vm.Aspace
module Fs = Msnap_fs.Fs
module Msnap = Msnap_core.Msnap
module Db = Msnap_sqlite.Db
module Backend_wal = Msnap_sqlite.Backend_wal
module Storage = Msnap_pg.Storage
module Pg = Msnap_pg.Pg
module Redo = Msnap_pg.Redo
module Rocks = Msnap_rocks.Rocks
module History = Msnap_faults.History
module Checker = Msnap_faults.Checker

(* Every workload runs on the same geometry: a two-disk stripe, so torn
   tails exercise the per-member seed derivation. *)
let mk_dev () =
  Device.of_stripe
    (Stripe.create
       [ Disk.create ~name:"d0" ~size:(Size.mib 128) ();
         Disk.create ~name:"d1" ~size:(Size.mib 128) () ])

let mk_machine dev =
  let phys = Phys.create () in
  let aspace = Aspace.create phys in
  Store.format dev;
  let k = Msnap.init ~store:(Store.mount dev) in
  Msnap.attach k aspace;
  (phys, k)

(* --- msnap: value cells in one region, one μCheckpoint per update --- *)

let msnap_region = "cwl"
let msnap_region_len = 64 * 4096

(* One cell per page: per-thread dirty tracking is page-granular. *)
let msnap_cells = List.init 6 (fun i -> (Printf.sprintf "c%d" i, i * 4096))
let msnap_steps = 30

let msnap_run dev record =
  let hist = History.create () in
  let phys, k = mk_machine dev in
  let md = Msnap.open_region k ~name:msnap_region ~len:msnap_region_len () in
  let values = Array.make (List.length msnap_cells) "" in
  let state () = List.mapi (fun i (l, _) -> (l, values.(i))) msnap_cells in
  History.mark_ready hist record;
  History.step hist record ~label:"setup" ~state:(state ());
  for s = 1 to msnap_steps do
    let i = s mod List.length msnap_cells in
    let _, off = List.nth msnap_cells i in
    let v = Printf.sprintf "s%d" s in
    Msnap.cell_write k md ~off v;
    ignore (Msnap.persist k ~region:md ());
    values.(i) <- v;
    History.step hist record ~label:(Printf.sprintf "s%d" s) ~state:(state ())
  done;
  Phys.dispose phys;
  hist

let msnap_workload =
  {
    Checker.w_name = "msnap";
    w_device = mk_dev;
    w_run = msnap_run;
    w_recoverable =
      (module (val Msnap.recoverable ~region:msnap_region
                     ~len:msnap_region_len ~cells:msnap_cells)
      : Msnap_faults.Recoverable.S);
  }

(* --- objstore: tagged-block commits to two objects --- *)

let obj_names = [ "alpha"; "beta" ]
let obj_blocks = 4
let obj_steps = 30

let objstore_run dev record =
  let hist = History.create () in
  Store.format dev;
  let st = Store.mount dev in
  let objs = List.map (fun n -> (n, Store.create st ~name:n ())) obj_names in
  let epochs = Hashtbl.create 4 in
  let tags = Hashtbl.create 16 in
  List.iter (fun (n, o) -> Hashtbl.replace epochs n (Store.epoch o)) objs;
  let state () =
    List.concat_map
      (fun (n, _) ->
        ("@" ^ n, string_of_int (Hashtbl.find epochs n))
        :: List.filter_map
             (fun i ->
               Option.map
                 (fun tag -> (n ^ ":" ^ string_of_int i, tag))
                 (Hashtbl.find_opt tags (n, i)))
             (List.init obj_blocks Fun.id))
      objs
  in
  History.mark_ready hist record;
  History.step hist record ~label:"setup" ~state:(state ());
  for s = 1 to obj_steps do
    let n, o = List.nth objs (s mod 2) in
    let idx = s / 2 mod obj_blocks in
    let tag = Printf.sprintf "%s.%d.s%d" n idx s in
    let ep = Store.commit st o [ (idx, Store.tag_page tag) ] in
    Hashtbl.replace epochs n ep;
    Hashtbl.replace tags (n, idx) tag;
    History.step hist record ~label:(Printf.sprintf "s%d" s) ~state:(state ())
  done;
  hist

let objstore_workload =
  {
    Checker.w_name = "objstore";
    w_device = mk_dev;
    w_run = objstore_run;
    w_recoverable =
      (module (val Store.recoverable ~objects:obj_names ~blocks:obj_blocks)
      : Msnap_faults.Recoverable.S);
  }

(* --- fs: append-and-fsync to two files over the FFS journal --- *)

let fs_files = [ "a.log"; "b.log" ]
let fs_steps = 30

let fs_run dev record =
  let hist = History.create () in
  let fs = Fs.mkfs dev ~kind:Fs.Ffs in
  (* mkfs is host-side; write the base snapshot the journal replays
     over before declaring readiness. *)
  Fs.sync_meta fs;
  let files = List.map (fun n -> (n, Fs.open_file fs n, Buffer.create 256)) fs_files in
  let state () =
    List.map (fun (n, _, contents) -> (n, Buffer.contents contents)) files
  in
  History.mark_ready hist record;
  History.step hist record ~label:"setup" ~state:(state ());
  for s = 1 to fs_steps do
    let _, f, contents = List.nth files (s mod 2) in
    let data = Printf.sprintf "rec-%03d;" s in
    Fs.write_sub fs f ~off:(Buffer.length contents)
      (Bytes.of_string data) ~pos:0 ~len:(String.length data);
    Fs.fsync fs f;
    Buffer.add_string contents data;
    History.step hist record ~label:(Printf.sprintf "s%d" s) ~state:(state ())
  done;
  Fs.dispose fs;
  hist

let fs_workload =
  {
    Checker.w_name = "fs";
    w_device = mk_dev;
    w_run = fs_run;
    w_recoverable =
      (module (val Fs.recoverable ~kind:Fs.Ffs ~files:fs_files)
      : Msnap_faults.Recoverable.S);
  }

(* --- sqlite: one-row transactions on the WAL backend --- *)

let sqlite_db = "db"
let sqlite_table = "t"
let sqlite_steps = 28

let sqlite_run dev record =
  let hist = History.create () in
  let fs = Fs.mkfs dev ~kind:Fs.Ffs in
  Fs.sync_meta fs;
  (* No checkpoints: the crash matrix exercises WAL replay, and the
     checkpointer's in-place db-file rewrite is a separate concern. *)
  let bw = Backend_wal.create fs ~db_name:sqlite_db ~checkpoint_threshold:max_int () in
  let db = Db.open_db (Backend_wal.backend bw) in
  let tb = Db.create_table db sqlite_table in
  let model = Hashtbl.create 16 in
  let state () =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
    |> List.sort compare
  in
  History.mark_ready hist record;
  History.step hist record ~label:"setup" ~state:(state ());
  for s = 1 to sqlite_steps do
    let key = Printf.sprintf "k%02d" (s mod 12) in
    let v = Printf.sprintf "v%d" s in
    Db.with_write_txn db (fun () -> Db.put tb ~key ~value:v);
    Hashtbl.replace model key v;
    History.step hist record ~label:(Printf.sprintf "s%d" s) ~state:(state ())
  done;
  Backend_wal.dispose bw;
  Fs.dispose fs;
  hist

let sqlite_workload =
  {
    Checker.w_name = "sqlite";
    w_device = mk_dev;
    w_run = sqlite_run;
    w_recoverable =
      (module (val Db.recoverable ~db_name:sqlite_db ~table:sqlite_table
                     ~checkpoint_threshold:max_int ())
      : Msnap_faults.Recoverable.S);
  }

(* --- pg: one insert per transaction on the buffered (WAL) variant --- *)

let pg_table = "t"
let pg_steps = 26

let pg_run dev record =
  let hist = History.create () in
  let fs = Fs.mkfs dev ~kind:Fs.Ffs in
  Fs.sync_meta fs;
  (* Huge checkpoint threshold: the heap files are never written, so
     redo replays full-page images + deltas over zeros — the classic
     WAL recovery path. *)
  let st = Storage.ffs fs ~wal_checkpoint_bytes:max_int () in
  let pg = Pg.open_db st in
  let rows = ref [] in
  History.mark_ready hist record;
  History.step hist record ~label:"setup" ~state:[];
  for s = 1 to pg_steps do
    let key = Printf.sprintf "k%03d" s in
    let v = Printf.sprintf "v%d" s in
    Pg.with_txn pg (fun txn ->
        Pg.insert pg txn ~table:pg_table ~key (key ^ "=" ^ v));
    rows := (key, v) :: !rows;
    History.step hist record ~label:(Printf.sprintf "s%d" s)
      ~state:(List.rev !rows)
  done;
  Fs.dispose fs;
  hist

let pg_workload =
  {
    Checker.w_name = "pg";
    w_device = mk_dev;
    w_run = pg_run;
    w_recoverable =
      (module (val Redo.recoverable ~table:pg_table
                     ~wal_checkpoint_bytes:max_int ())
      : Msnap_faults.Recoverable.S);
  }

(* --- rocks: WAL-free puts into the persistent skip list --- *)

let rocks_name = "cw"
let rocks_config = { Rocks.default_config with region_pages = 1024 }
let rocks_steps = 28

let rocks_run dev record =
  let hist = History.create () in
  let phys, k = mk_machine dev in
  let db = Rocks.open_db ~config:rocks_config (Rocks.Memsnap k) ~name:rocks_name in
  (* The first put persists the skip list's header page; only from here
     on is the region guaranteed recoverable. *)
  Rocks.put db ~key:"init" ~value:"1";
  let model = Hashtbl.create 16 in
  Hashtbl.replace model "init" "1";
  let state () =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
    |> List.sort compare
  in
  History.mark_ready hist record;
  History.step hist record ~label:"setup" ~state:(state ());
  for s = 1 to rocks_steps do
    let key = Printf.sprintf "k%02d" (s mod 12) in
    let v = Printf.sprintf "v%d" s in
    Rocks.put db ~key ~value:v;
    Hashtbl.replace model key v;
    History.step hist record ~label:(Printf.sprintf "s%d" s) ~state:(state ())
  done;
  Phys.dispose phys;
  hist

let rocks_workload =
  {
    Checker.w_name = "rocks";
    w_device = mk_dev;
    w_run = rocks_run;
    w_recoverable =
      (module (val Rocks.recoverable ~config:rocks_config ~name:rocks_name ())
      : Msnap_faults.Recoverable.S);
  }

let all =
  [
    msnap_workload;
    objstore_workload;
    fs_workload;
    sqlite_workload;
    pg_workload;
    rocks_workload;
  ]

let by_name name = List.find_opt (fun w -> w.Checker.w_name = name) all
let names = List.map (fun w -> w.Checker.w_name) all
