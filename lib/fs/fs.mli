(** Baseline file systems: FFS-like (journaling, in-place) and ZFS-like
    (copy-on-write).

    This is the file API the paper compares MemSnap against (Tables 6-8,
    Fig. 4-6): buffered [write]/[read] through a bounded buffer cache,
    [fsync] with the cost structure of each design, and [mmap]/[msync] for
    the PostgreSQL variants. The performance-relevant mechanics are modelled
    honestly rather than charged as constants:

    - the cache works in file-system blocks (FFS 32 KiB, ZFS 128 KiB
      records), so sub-block writes to uncached blocks pay a
      read-modify-write — the dominant cost of random IO on both systems;
    - FFS [fsync] journals, then writes dirty blocks in place with the
      limited concurrency soft-updates dependency ordering allows, then
      updates metadata;
    - ZFS [fsync] allocates fresh blocks (COW), writes data sequentially,
      then per-record indirect blocks and an uberblock;
    - both scan the file's resident cache pages first, which is why
      baseline fsync slows down as a database file grows (Fig. 5).

    Durability model: data blocks genuinely persist to the device at
    [fsync]; the volatile inode table persists on [sync_meta] (called by
    unmount). FFS additionally journals real commit records (one per
    fsync transaction) and writes parseable metadata snapshots, so an
    FFS image can be {!mount}ed after a crash: the newest snapshot plus
    the committed journal suffix reconstruct every acknowledged
    transaction's metadata. Data-block contents follow the
    metadata-journaling model — in-place rewrites of existing blocks are
    only crash-consistent for append-style workloads (the crash matrix
    exercises exactly those). ZFS remains recovery-free. *)

type t
type file

type kind = Ffs | Zfs

val mkfs : Msnap_blockdev.Device.t -> kind:kind -> t
(** Format a file system over any block device (see
    {!Msnap_blockdev.Device}); wrap a raw backend with [Device.of_disk]
    or [Device.of_stripe]. *)

exception Mount_error of string
(** Acked transactions cannot be reconstructed (journal seq gap past an
    un-snapshotted commit, or an overflowed commit record). *)

val mount : Msnap_blockdev.Device.t -> kind:kind -> t
(** Recover an FFS image after a crash: newest intact metadata snapshot
    plus replay of every younger committed journal transaction. A blank
    device mounts as an empty file system; inconsistent media raises
    {!Mount_error}. [kind] must be [Ffs]. *)

val kind : t -> kind
val fs_block_size : t -> int

val open_file : t -> string -> file
(** Open, creating if absent. *)

val exists : t -> string -> bool
val remove : t -> string -> unit

val write : t -> file -> off:int -> Bytes.t -> unit

(** [write] of [data[pos..pos+len)] — the exact charges of {!writev} of
    one slice of that length, with no slice/list allocation. For hot
    fixed-size writers that reuse one backing buffer. *)
val write_sub : t -> file -> off:int -> Bytes.t -> pos:int -> len:int -> unit
(** Buffered write (syscall + cache copy; RMW read if needed). *)

val writev : t -> file -> off:int -> Msnap_util.Slice.t list -> unit
(** Gathered buffered write of the slices' concatenation at [off]: one
    syscall charge and one cache copy of the combined payload, exactly as
    a {!write} of the same total length. The slices are consumed before
    the call returns (the page cache owns the bytes afterwards), so no
    ownership obligation outlives the call. *)

val read : t -> file -> off:int -> len:int -> Bytes.t
(** Zero-fills holes, like read(2) past sparse regions. *)

val read_into : t -> file -> off:int -> Bytes.t -> pos:int -> len:int -> unit
(** [read] into [buf[pos..pos+len)] — identical charges, no output
    allocation. Holes are zero-filled; other bytes of [buf] are
    untouched. *)

val fsync : t -> file -> unit
val fdatasync : t -> file -> unit
(** Like [fsync] minus the metadata update IO. *)

val truncate : t -> file -> int -> unit
val size : t -> file -> int

val resident_blocks : t -> file -> int
(** Cache-resident fs-blocks of this file. *)

val cache_capacity_blocks : t -> int
val set_cache_capacity : t -> int -> unit

(** {2 Memory mapping} *)

val mmap :
  t -> file -> Msnap_vm.Aspace.t -> va:int -> len:int -> Msnap_vm.Aspace.mapping
(** Map the file at [va]. Stores fault pages in from the cache/device; a
    write fault marks the backing fs-block dirty. *)

val msync : t -> file -> unit
(** Gather dirty mapped pages back into the cache and [fsync]. *)

val sync_meta : t -> unit
(** Persist the inode table (unmount-time metadata flush). *)

val dispose : t -> unit
(** End-of-run teardown: return every cache block's buffer to
    [Msnap_util.Pool]. The file system must never be used again. *)

(** {2 Statistics} *)

val bytes_written_to_disk : t -> int
val rmw_reads : t -> int
(** Read-modify-write block reads triggered by sub-block writes. *)

(**/**)

val debug_resident : t -> file -> string
(** Resident block indexes, for tests. *)

(** {2 Crash recovery ({!Msnap_faults})} *)

val recoverable :
  kind:kind -> files:string list ->
  (module Msnap_faults.Recoverable.S with type t = t)
(** The crash-recovery contract for the file system itself ([Ffs]
    only): [recover] is {!mount} ([Mount_error] becomes [Unmountable]);
    [check] reads back every tracked file's full contents and compares
    against the history's candidate steps. *)
