module Device = Msnap_blockdev.Device
module Balloc = Msnap_blockdev.Balloc
module Slice = Msnap_util.Slice
module Pool = Msnap_util.Pool
module Sched = Msnap_sim.Sched
module Sync = Msnap_sim.Sync
module Trace = Msnap_sim.Trace
module Probe = Msnap_sim.Probe
module Costs = Msnap_sim.Costs
module Aspace = Msnap_vm.Aspace
module Addr = Msnap_vm.Addr
module Phys = Msnap_vm.Phys

type kind = Ffs | Zfs

(* Device layout (4 KiB units): [0, meta_blocks) inode-table area,
   [meta_blocks, meta_blocks + journal_blocks) journal / intent log,
   the rest is file data. *)
let meta_blocks = 64
let journal_blocks = 256
let reserved_blocks = meta_blocks + journal_blocks
let dev_bs = 4096

type cached_block = {
  cb_data : Bytes.t; (* pooled: recycled when the block leaves the cache *)
  mutable cb_dirty : bool;
  mutable cb_lru : int;
  mutable cb_pin : int;
      (* holders of [cb_data] across a scheduling point: in-flight
         writeback commands and writers inside a charge+blit window *)
  mutable cb_gone : bool; (* evicted while pinned; last unpin recycles *)
}

let pin cb = cb.cb_pin <- cb.cb_pin + 1

let unpin cb =
  cb.cb_pin <- cb.cb_pin - 1;
  if cb.cb_gone && cb.cb_pin = 0 then Pool.recycle cb.cb_data

(* A block leaving the cache returns its buffer to the pool — unless a
   writer or writeback command still holds it across a scheduling point,
   in which case the last {!unpin} recycles. Pins never influence which
   block gets evicted (the victim choice feeds later RMW reads, a
   simulated value); they only defer the host-side recycle. *)
let discard_block cb =
  if cb.cb_pin = 0 then Pool.recycle cb.cb_data else cb.cb_gone <- true

type mm = {
  mm_aspace : Aspace.t;
  mm_va : int;
  mm_len : int;
  mm_dirty : (int, unit) Hashtbl.t; (* rel page -> dirtied since last msync *)
}

type file = {
  f_name : string;
  mutable f_size : int;
  f_blocks : (int, int) Hashtbl.t; (* fs-block idx -> first device block *)
  f_cache : (int, cached_block) Hashtbl.t;
  mutable f_ind_blocks : int list; (* ZFS: current indirect blocks *)
  mutable f_mmaps : mm list;
}

type t = {
  dev : Device.t;
  f_kind : kind;
  bs : int; (* fs block size in bytes *)
  alloc : Balloc.t;
  files : (string, file) Hashtbl.t;
  mutable journal_cursor : int; (* device block within the journal area *)
  mutable txn_seq : int; (* FFS: last journal transaction sequence *)
  mutable meta_slot : int; (* FFS: next snapshot slot (0 or 1) *)
  mutable lru_clock : int;
  mutable capacity : int; (* cache capacity in fs blocks, across files *)
  mutable cached_count : int;
  fsync_lock : Sync.Mutex.t;
  mutable scratch_zeros : Bytes.t;
      (* shared all-zero backing for ZFS intent records, indirect blocks
         and padding: those writes carry zeros, so every command can
         reference one read-only buffer instead of allocating. *)
  mutable scratch_journal : Bytes.t;
      (* staging for FFS journal records and commit records: real
         content, same write sizes as the zero-filled records had. Users
         write synchronously under [fsync_lock], so one buffer serves. *)
  mutable s_disk_bytes : int;
  mutable s_rmw_reads : int;
}

let block_size_of = function Ffs -> 32 * 1024 | Zfs -> 128 * 1024

let mkfs dev ~kind =
  {
    dev;
    f_kind = kind;
    bs = block_size_of kind;
    alloc =
      Balloc.create ~total_blocks:(Device.size dev / dev_bs)
        ~reserved:reserved_blocks;
    files = Hashtbl.create 16;
    journal_cursor = meta_blocks;
    txn_seq = 0;
    meta_slot = 0;
    lru_clock = 0;
    capacity = 2048;
    cached_count = 0;
    fsync_lock = Sync.Mutex.create ();
    scratch_zeros = Bytes.empty;
    scratch_journal = Bytes.empty;
    s_disk_bytes = 0;
    s_rmw_reads = 0;
  }

let kind t = t.f_kind
let fs_block_size t = t.bs

let open_file t name =
  match Hashtbl.find_opt t.files name with
  | Some f -> f
  | None ->
    let f =
      { f_name = name; f_size = 0; f_blocks = Hashtbl.create 64;
        f_cache = Hashtbl.create 64; f_ind_blocks = []; f_mmaps = [] }
    in
    Hashtbl.replace t.files name f;
    f

let exists t name = Hashtbl.mem t.files name

let remove t name =
  match Hashtbl.find_opt t.files name with
  | None -> ()
  | Some f ->
    Hashtbl.iter
      (fun _ first -> Balloc.free_now t.alloc (List.init (t.bs / dev_bs) (fun i -> first + i)))
      f.f_blocks;
    Balloc.free_now t.alloc f.f_ind_blocks;
    t.cached_count <- t.cached_count - Hashtbl.length f.f_cache;
    Hashtbl.iter (fun _ cb -> discard_block cb) f.f_cache;
    Hashtbl.remove t.files name

let size _t f = f.f_size
let resident_blocks _t f = Hashtbl.length f.f_cache
let cache_capacity_blocks t = t.capacity
let set_cache_capacity t n = t.capacity <- n

let bytes_written_to_disk t = t.s_disk_bytes
let rmw_reads t = t.s_rmw_reads

(* --- device helpers --- *)

let dev_write t ~off s =
  t.s_disk_bytes <- t.s_disk_bytes + Slice.length s;
  Device.write_slice t.dev ~off s

let dev_writev t segs =
  List.iter (fun (_, s) -> t.s_disk_bytes <- t.s_disk_bytes + Slice.length s) segs;
  Device.writev t.dev segs

let dev_read_into t ~off dst = Device.read_into t.dev ~off dst

let zero_slice t n =
  if Bytes.length t.scratch_zeros < n then begin
    (* Growth is rare and happens only between commands (every user of
       the scratch writes synchronously under [fsync_lock]), so the old
       backing can be recycled immediately. *)
    Pool.recycle t.scratch_zeros;
    t.scratch_zeros <- Pool.alloc_zeroed n
  end;
  Slice.make t.scratch_zeros ~pos:0 ~len:n

(* Claim [blocks] ring blocks for a record of [nbytes] logical bytes,
   wrapping when the tail doesn't fit. Returns the device byte offset;
   every record therefore starts on a device-block boundary. *)
let journal_place t nbytes =
  if Trace.is_on () then
    Trace.instant Probe.fs_journal ~argi:("bytes", nbytes);
  let blocks = max 1 ((nbytes + dev_bs - 1) / dev_bs) in
  if t.journal_cursor + blocks > meta_blocks + journal_blocks then
    t.journal_cursor <- meta_blocks;
  let off = t.journal_cursor * dev_bs in
  t.journal_cursor <- t.journal_cursor + blocks;
  (off, blocks)

(* ZFS intent log: content-free, as before. *)
let journal_write t nbytes =
  let off, blocks = journal_place t nbytes in
  dev_write t ~off (zero_slice t (blocks * dev_bs))

let journal_scratch t n =
  if Bytes.length t.scratch_journal < n then begin
    Pool.recycle t.scratch_journal;
    t.scratch_journal <- Pool.alloc_zeroed n
  end;
  Bytes.fill t.scratch_journal 0 n '\000';
  t.scratch_journal

(* --- FFS journal record formats ---

   The ring holds, per transaction [seq], [n] 128-byte intent entries
   (packed into whole device blocks) followed by one 512-byte commit
   record in its own block. Only commit records matter to recovery: the
   transaction's data and inode writes complete strictly before the
   commit record is issued, so a durable commit record implies durable
   data — FFS transactions are valid iff their commit record is intact,
   and the 512-byte record is sector-atomic under torn writes. Intent
   entries exist for media realism (and debugging) only.

   Write sizes are exactly those of the old zero-filled records, but
   the commit record now occupies its own ring block (the old cursor
   never advanced past it, so the next transaction overwrote it — fatal
   once recovery actually reads them). The extra block per transaction
   shifts subsequent ring offsets, and on a stripe the offset picks the
   member disk, so FFS-heavy latencies move by a hair vs the
   pre-journal-format baseline. That is a semantic fix, not drift:
   within this format, all simulated values are deterministic as
   ever. *)

let entry_magic = 0x4645534A (* "JSEF" *)
let commit_magic = 0x4643534A (* "JSCF" *)
let commit_name_max = 120
let commit_maps_off = 146
let commit_cksum_off = 504
let commit_maps_max = (commit_cksum_off - commit_maps_off) / 8 (* 44 *)
let commit_overflow = 0xFFFFFFFF

module Wire = Msnap_util.Wire

(* Intent entries for one transaction: n * 128 logical bytes. *)
let journal_entries t ~seq dirty =
  let n = List.length dirty in
  let off, blocks = journal_place t (n * 128) in
  let buf = journal_scratch t (blocks * dev_bs) in
  List.iteri
    (fun ord (idx, _) ->
      let p = ord * 128 in
      (* Entries past the first device block of a huge transaction are
         truncated silently: recovery never reads them. *)
      if p + 128 <= blocks * dev_bs then begin
        Wire.set_u32 buf p entry_magic;
        Wire.set_u32 buf (p + 4) idx;
        Wire.set_u64 buf (p + 8) seq;
        Wire.set_u64 buf (p + 16) ord
      end)
    dirty;
  dev_write t ~off (Slice.make buf ~pos:0 ~len:(blocks * dev_bs))

(* The 512-byte commit record: transaction seq, file name, new size and
   the transaction's (fs-block -> device-block) mappings. A transaction
   with more mappings than fit is stamped with an overflow marker —
   recovery refuses to mount past it rather than replay half a
   transaction. *)
let journal_commit t ~seq f dirty =
  if t.journal_cursor >= meta_blocks + journal_blocks then
    t.journal_cursor <- meta_blocks;
  let off = t.journal_cursor * dev_bs in
  t.journal_cursor <- t.journal_cursor + 1;
  let buf = journal_scratch t 512 in
  let nmaps = List.length dirty in
  Wire.set_u32 buf 0 commit_magic;
  Wire.set_u64 buf 8 seq;
  Wire.set_u64 buf 16 f.f_size;
  let name_len = String.length f.f_name in
  if name_len > commit_name_max then
    invalid_arg ("Fs: file name too long for journal: " ^ f.f_name);
  Wire.set_u16 buf 24 name_len;
  Bytes.blit_string f.f_name 0 buf 26 name_len;
  if nmaps > commit_maps_max then Wire.set_u32 buf 4 commit_overflow
  else begin
    Wire.set_u32 buf 4 nmaps;
    List.iteri
      (fun i (idx, _) ->
        let first = Hashtbl.find f.f_blocks idx in
        Wire.set_u32 buf (commit_maps_off + (i * 8)) idx;
        Wire.set_u32 buf (commit_maps_off + (i * 8) + 4) first)
      dirty
  end;
  Wire.set_u64 buf commit_cksum_off
    (Wire.checksum buf ~pos:0 ~len:commit_cksum_off);
  dev_write t ~off (Slice.make buf ~pos:0 ~len:512)

(* --- buffer cache --- *)

let evict_if_needed ?keep t =
  if t.cached_count > t.capacity then begin
    (* Drop the least-recently-used *clean* blocks across all files,
       never the block a caller is actively using ([keep]). Dirty blocks
       are pinned until writeback, so the cache can transiently exceed
       its capacity, as a real buffer cache under writeback pressure. *)
    (* Repeated min-scan instead of building and sorting a candidate
       list per miss: each round evicts the smallest
       [(cb_lru, f_name, idx)] — exactly the block the old
       [List.sort compare] put first — and evicting a clean block never
       changes the rest of the candidate set, so the evicted set is
       identical. [excess] is almost always 1, and the scan allocates
       nothing per block. *)
    let keep_cb = keep in
    let excess = t.cached_count - t.capacity in
    let continue = ref true in
    for _ = 1 to excess do
      if !continue then begin
        let best_lru = ref max_int in
        let best_f = ref None in
        let best_idx = ref 0 in
        let best_cb = ref None in
        Hashtbl.iter
          (fun _ f ->
            Hashtbl.iter
              (fun idx cb ->
                let kept =
                  match keep_cb with Some k -> k == cb | None -> false
                in
                if (not cb.cb_dirty) && not kept then
                  let better =
                    cb.cb_lru < !best_lru
                    || cb.cb_lru = !best_lru
                       &&
                       match !best_f with
                       | None -> true
                       | Some bf ->
                         let c = compare f.f_name bf.f_name in
                         c < 0 || (c = 0 && idx < !best_idx)
                  in
                  if better then begin
                    best_lru := cb.cb_lru;
                    best_f := Some f;
                    best_idx := idx;
                    best_cb := Some cb
                  end)
              f.f_cache)
          t.files;
        match !best_f with
        | None -> continue := false
        | Some f ->
          Hashtbl.remove f.f_cache !best_idx;
          t.cached_count <- t.cached_count - 1;
          Option.iter discard_block !best_cb
      end
    done
  end

let touch t cb =
  t.lru_clock <- t.lru_clock + 1;
  cb.cb_lru <- t.lru_clock

(* Get the cached block, reading it from disk when a read-modify-write
   requires the old contents ([need_old]). *)
let get_block t f idx ~need_old =
  match Hashtbl.find_opt f.f_cache idx with
  | Some cb ->
    Sched.cpu Costs.buffer_cache_lookup;
    touch t cb;
    cb
  | None ->
    Sched.cpu Costs.buffer_cache_lookup;
    let data =
      match Hashtbl.find_opt f.f_blocks idx with
      | Some first when need_old ->
        t.s_rmw_reads <- t.s_rmw_reads + 1;
        (* The device read fills the whole block, so an uninitialized
           pooled buffer is as good as the fresh [Bytes.create] was. *)
        let data = Pool.alloc t.bs in
        dev_read_into t ~off:(first * dev_bs) (Slice.of_bytes data);
        data
      | Some _ | None -> Pool.alloc_zeroed t.bs
    in
    let cb =
      { cb_data = data; cb_dirty = false; cb_lru = 0; cb_pin = 0;
        cb_gone = false }
    in
    touch t cb;
    Hashtbl.replace f.f_cache idx cb;
    t.cached_count <- t.cached_count + 1;
    evict_if_needed ~keep:cb t;
    cb

(* --- read / write --- *)

(* One buffered write of the concatenation of [slices] at [off]. The
   syscall/rangelock charge and the per-fs-block-chunk memcpy charges are
   those of a single write of the combined length, so callers can gather
   a header and a payload without materializing the frame first. *)
let writev t f ~off slices =
  let trace_t0 = if Trace.is_on () then Sched.now () else 0 in
  Sched.cpu (Costs.syscall + Costs.vfs_call + Costs.rangelock);
  let len = List.fold_left (fun a s -> a + Slice.length s) 0 slices in
  (* Cursor over the scatter list: [copy_into] drains the next [n]
     payload bytes into the cache block. *)
  let rem = ref slices and rem_off = ref 0 in
  let rec copy_into dst dst_pos n =
    if n > 0 then
      match !rem with
      | [] -> assert false
      | s :: tl ->
        let avail = Slice.length s - !rem_off in
        if avail = 0 then begin
          rem := tl;
          rem_off := 0;
          copy_into dst dst_pos n
        end
        else begin
          let k = min avail n in
          Slice.blit_to_bytes s ~src_pos:!rem_off dst ~dst_pos ~len:k;
          rem_off := !rem_off + k;
          copy_into dst (dst_pos + k) (n - k)
        end
  in
  let rec go off remaining =
    if remaining > 0 then begin
      let idx = off / t.bs in
      let within = off mod t.bs in
      let n = min remaining (t.bs - within) in
      (* Sub-block writes to on-disk blocks must read the old contents. *)
      let covers_whole = within = 0 && n = t.bs in
      let cb = get_block t f idx ~need_old:(not covers_whole) in
      (* The memcpy charge can yield; pin so that an eviction during the
         yield defers the buffer's recycle past our blit. (The write into
         an evicted block is lost either way, as before pooling.) *)
      pin cb;
      Sched.cpu (Costs.memcpy n);
      copy_into cb.cb_data within n;
      cb.cb_dirty <- true;
      unpin cb;
      go (off + n) (remaining - n)
    end
  in
  go off len;
  if off + len > f.f_size then f.f_size <- off + len;
  if Trace.is_on () then
    Trace.complete Probe.fs_write ~dur:(Sched.now () - trace_t0)
      ~argi:("bytes", len)

let write t f ~off data = writev t f ~off [ Slice.of_bytes data ]

(* Single-buffer write with the exact charges of [writev] of one slice
   of the same length, but no slice/list allocation — for hot fixed-size
   writers (the WAL append path) that reuse one backing buffer. *)
let write_sub t f ~off data ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length data then
    invalid_arg "Fs.write_sub: bad slice";
  let trace_t0 = if Trace.is_on () then Sched.now () else 0 in
  Sched.cpu (Costs.syscall + Costs.vfs_call + Costs.rangelock);
  let rec go off pos remaining =
    if remaining > 0 then begin
      let idx = off / t.bs in
      let within = off mod t.bs in
      let n = min remaining (t.bs - within) in
      let covers_whole = within = 0 && n = t.bs in
      let cb = get_block t f idx ~need_old:(not covers_whole) in
      pin cb;
      Sched.cpu (Costs.memcpy n);
      Bytes.blit data pos cb.cb_data within n;
      cb.cb_dirty <- true;
      unpin cb;
      go (off + n) (pos + n) (remaining - n)
    end
  in
  go off pos len;
  if off + len > f.f_size then f.f_size <- off + len;
  if Trace.is_on () then
    Trace.complete Probe.fs_write ~dur:(Sched.now () - trace_t0)
      ~argi:("bytes", len)

(* Read into a caller-owned buffer — the exact charges of [read], which
   is this plus the output allocation. Every chunk is either blitted from
   the cache or zero-filled (holes), so the buffer need not be zeroed on
   entry. *)
let read_into t f ~off buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Fs.read_into: bad slice";
  Sched.cpu (Costs.syscall + Costs.vfs_call);
  let rec go off pos remaining =
    if remaining > 0 then begin
      let idx = off / t.bs in
      let within = off mod t.bs in
      let n = min remaining (t.bs - within) in
      let cached = Hashtbl.mem f.f_cache idx in
      let on_disk = Hashtbl.mem f.f_blocks idx in
      if cached || on_disk then begin
        let cb = get_block t f idx ~need_old:true in
        pin cb;
        Sched.cpu (Costs.memcpy n);
        Bytes.blit cb.cb_data within buf pos n;
        unpin cb
      end
      else Bytes.fill buf pos n '\000' (* hole, like read(2) past sparse regions *);
      go (off + n) (pos + n) (remaining - n)
    end
  in
  go off pos len

let read t f ~off ~len =
  let out = Bytes.create len in
  read_into t f ~off out ~pos:0 ~len;
  out

let truncate t f newsize =
  Sched.cpu (Costs.syscall + Costs.vfs_call);
  if newsize < f.f_size then begin
    let keep_blocks = (newsize + t.bs - 1) / t.bs in
    let dropped = ref [] in
    Hashtbl.iter
      (fun idx first -> if idx >= keep_blocks then dropped := (idx, first) :: !dropped)
      f.f_blocks;
    List.iter
      (fun (idx, first) ->
        Hashtbl.remove f.f_blocks idx;
        Balloc.free_now t.alloc (List.init (t.bs / dev_bs) (fun i -> first + i)))
      !dropped;
    let drop_cache = ref [] in
    Hashtbl.iter
      (fun idx cb -> if idx >= keep_blocks then drop_cache := (idx, cb) :: !drop_cache)
      f.f_cache;
    List.iter
      (fun (idx, cb) ->
        Hashtbl.remove f.f_cache idx;
        t.cached_count <- t.cached_count - 1;
        discard_block cb)
      !drop_cache
  end;
  f.f_size <- newsize

(* --- fsync --- *)

(* Resident-page scan: fsync/msync inspects every resident page of the
   file to find the dirty ones; the cost grows with the cached footprint,
   not the dirty set (the Fig. 5 baseline effect). *)
let charge_resident_scan t f =
  let pages = Hashtbl.length f.f_cache * (t.bs / 4096) in
  Sched.cpu (pages * Costs.fsync_resident_scan_per_page)

let dirty_blocks f =
  Hashtbl.fold (fun idx cb acc -> if cb.cb_dirty then (idx, cb) :: acc else acc)
    f.f_cache []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Bytes of a block that are below EOF (tail blocks write only the used
   prefix, rounded to device blocks). *)
let used_len t f idx =
  let upto = min t.bs (f.f_size - (idx * t.bs)) in
  if upto <= 0 then 0 else (upto + dev_bs - 1) / dev_bs * dev_bs

let ensure_allocated t f idx =
  match Hashtbl.find_opt f.f_blocks idx with
  | Some first -> first
  | None ->
    let run = Balloc.alloc_run t.alloc (t.bs / dev_bs) in
    let first = List.hd run in
    Hashtbl.replace f.f_blocks idx first;
    first

(* FFS: journal intent, write blocks in place with dependency-limited
   concurrency, then metadata, then journal commit. *)
let fsync_ffs t f dirty =
  let n = List.length dirty in
  Sched.cpu (n * Costs.journal_entry);
  let seq = t.txn_seq + 1 in
  t.txn_seq <- seq;
  journal_entries t ~seq dirty;
  (* Soft-updates dependency ordering allows only shallow overlap. *)
  let qd = 2 in
  let pending = ref [] in
  let flush_pending () =
    List.iter Sync.Ivar.read !pending;
    pending := []
  in
  List.iter
    (fun (idx, cb) ->
      let first = ensure_allocated t f idx in
      let len = used_len t f idx in
      if len > 0 then begin
        let iv = Sync.Ivar.create () in
        (* Slice over the cache block itself: dirty blocks stay in the
           cache, and writeback completes before fsync returns, so the
           ownership rule holds without a staging copy. Marking the block
           clean below makes it evictable mid-writeback, so the command
           pins the buffer until the device is done with it. *)
        let data = Slice.make cb.cb_data ~pos:0 ~len in
        pin cb;
        ignore
          (Sched.spawn ~name:"ffs-write" (fun () ->
               dev_write t ~off:(first * dev_bs) data;
               Sync.Ivar.fill iv ();
               unpin cb));
        pending := iv :: !pending;
        if List.length !pending >= qd then flush_pending ()
      end;
      cb.cb_dirty <- false)
    dirty;
  flush_pending ();
  (* Inode + block bitmap update, then the journal commit record. *)
  dev_write t ~off:0 (zero_slice t dev_bs);
  journal_commit t ~seq f dirty

(* ZFS: intent log for small syncs, then COW data, indirect chain and
   uberblock. *)
let fsync_zfs t f dirty =
  let total_used =
    List.fold_left (fun a (idx, _) -> a + used_len t f idx) 0 dirty
  in
  if total_used <= 64 * 1024 then journal_write t total_used;
  (* COW: every dirty record moves to fresh blocks. *)
  let segs =
    List.map
      (fun (idx, cb) ->
        let old = Hashtbl.find_opt f.f_blocks idx in
        let run = Balloc.alloc_run t.alloc (t.bs / dev_bs) in
        let first = List.hd run in
        Hashtbl.replace f.f_blocks idx first;
        (match old with
        | Some o -> Balloc.free_now t.alloc (List.init (t.bs / dev_bs) (fun i -> o + i))
        | None -> ());
        (* Clean (hence evictable) as soon as dirty is cleared; pin the
           buffer until the vectored command below has committed it. *)
        cb.cb_dirty <- false;
        pin cb;
        let len = used_len t f idx in
        (first * dev_bs, Slice.make cb.cb_data ~pos:0 ~len:(max dev_bs len)))
      dirty
  in
  dev_writev t segs;
  List.iter (fun (_, cb) -> unpin cb) dirty;
  (* Indirect blocks: one per record (they are scattered for random
     updates), written COW as well, then the uberblock. *)
  let n = List.length dirty in
  Sched.cpu (n * Costs.cow_indirect_update);
  let nind = ((n + 15) / 16) + 1 in
  Balloc.free_now t.alloc f.f_ind_blocks;
  let ind = Balloc.alloc_run t.alloc nind in
  f.f_ind_blocks <- ind;
  dev_writev t (List.map (fun b -> (b * dev_bs, zero_slice t dev_bs)) ind);
  dev_write t ~off:(dev_bs / 2) (zero_slice t 512)

let do_fsync t f ~meta =
  ignore meta;
  let trace_t0 = if Trace.is_on () then Sched.now () else 0 in
  Sched.cpu (Costs.syscall + Costs.vfs_call);
  charge_resident_scan t f;
  let nblocks = ref 0 in
  Sync.Mutex.with_lock t.fsync_lock (fun () ->
      let dirty = dirty_blocks f in
      if dirty <> [] then begin
        nblocks := List.length dirty;
        let wb () =
          match t.f_kind with
          | Ffs -> fsync_ffs t f dirty
          | Zfs -> fsync_zfs t f dirty
        in
        if Trace.is_on () then
          Trace.with_span Probe.fs_writeback
            ~argi:("blocks", !nblocks) wb
        else wb ()
      end);
  (* Writeback made blocks clean and therefore reclaimable. *)
  evict_if_needed t;
  if Trace.is_on () then
    Trace.complete Probe.fs_fsync ~dur:(Sched.now () - trace_t0)
      ~args:[ ("file", Trace.S f.f_name); ("dirty_blocks", Trace.I !nblocks) ]

let fsync t f = do_fsync t f ~meta:true
let fdatasync t f = do_fsync t f ~meta:false

(* --- mmap --- *)

let mmap t f aspace ~va ~len =
  let dirty = Hashtbl.create 64 in
  let mm = { mm_aspace = aspace; mm_va = va; mm_len = len; mm_dirty = dirty } in
  f.f_mmaps <- mm :: f.f_mmaps;
  let pager =
    { Aspace.page_in =
        (fun rel ->
          let off = rel * Addr.page_size in
          if off >= f.f_size && not (Hashtbl.mem f.f_blocks (off / t.bs)) then `Zero
          else begin
            let cb = get_block t f (off / t.bs) ~need_old:true in
            let within = off mod t.bs in
            (* Fill the frame here instead of handing Aspace a slice over
               the cache block: the charge sequence (frame alloc, then a
               page-sized memcpy) is exactly what Aspace performs for a
               [`Slice], and doing the blit under a pin keeps the buffer
               alive if the alloc/memcpy charges yield into an eviction. *)
            pin cb;
            Fun.protect
              ~finally:(fun () -> unpin cb)
              (fun () ->
                let p = Phys.alloc (Aspace.phys aspace) in
                Sched.cpu (Costs.memcpy Addr.page_size);
                Bytes.blit cb.cb_data within p.Phys.data 0 Addr.page_size;
                `Page p)
          end)
    }
  in
  let on_write_fault (fault : Aspace.fault) =
    let rel = Aspace.mapping_of_fault_rel_page fault in
    Hashtbl.replace dirty rel ();
    Msnap_vm.Ptloc.set fault.Aspace.f_loc
      (Msnap_vm.Pte.set_writable (Msnap_vm.Ptloc.get fault.Aspace.f_loc) true)
  in
  (* Pages start read-only so that the first store faults and marks the
     backing block dirty — the classic msync dirty-tracking setup. *)
  Aspace.map aspace ~name:("mmap:" ^ f.f_name) ~va ~len ~writable:true
    ~new_pages_writable:false ~pager ~on_write_fault ()

let msync t f =
  let trace_t0 = if Trace.is_on () then Sched.now () else 0 in
  Sched.cpu Costs.syscall;
  List.iter
    (fun mm ->
      let rels = Hashtbl.fold (fun r () acc -> r :: acc) mm.mm_dirty [] in
      let rels = List.sort compare rels in
      (* Gather page contents into the cache and re-protect the pages. *)
      List.iter
        (fun rel ->
          let va = mm.mm_va + (rel * Addr.page_size) in
          let page = Aspace.page_for_read mm.mm_aspace ~va in
          let off = rel * Addr.page_size in
          let cb = get_block t f (off / t.bs) ~need_old:true in
          pin cb;
          Sched.cpu (Costs.memcpy Addr.page_size);
          Bytes.blit page.Phys.data 0 cb.cb_data (off mod t.bs) Addr.page_size;
          cb.cb_dirty <- true;
          unpin cb;
          if off + Addr.page_size > f.f_size then f.f_size <- off + Addr.page_size;
          Aspace.protect_page mm.mm_aspace ~vpn:(Addr.vpn_of_va va);
          Sched.cpu Costs.pte_update)
        rels;
      Aspace.shootdown mm.mm_aspace
        (List.map (fun rel -> Addr.vpn_of_va (mm.mm_va + (rel * Addr.page_size))) rels);
      Hashtbl.reset mm.mm_dirty)
    f.f_mmaps;
  do_fsync t f ~meta:true;
  if Trace.is_on () then
    Trace.complete Probe.fs_msync ~dur:(Sched.now () - trace_t0)
      ~args:[ ("file", Trace.S f.f_name) ]

(* --- metadata ---

   The inode-table snapshot is a real parseable record now, written
   into one of two alternating slots (device blocks 1 and 32) so a
   crash mid-snapshot always leaves the previous one intact. The write
   size is still derived from the legacy string serialization, so
   existing callers issue byte-for-byte the same IO they always did;
   only the payload and (between slots) the offset differ, neither of
   which a simulated value depends on. *)

let snap_magic = 0x50534E46 (* "FNSP" *)
let snap_flag_overflow = 1
let snap_header = 28
let snap_slot_cap = 31 * dev_bs (* slots at blocks 1 and 32 *)

(* Mappings of [f] as (first fs-block idx, first device block, count)
   extents, idx-sorted. *)
let extents_of t f =
  let step = t.bs / dev_bs in
  let maps =
    List.sort compare
      (Hashtbl.fold (fun idx first acc -> (idx, first) :: acc) f.f_blocks [])
  in
  List.rev
    (List.fold_left
       (fun acc (idx, first) ->
         match acc with
         | (i0, f0, n) :: tl when idx = i0 + n && first = f0 + (n * step) ->
           (i0, f0, n + 1) :: tl
         | _ -> (idx, first, 1) :: acc)
       [] maps)

(* Fill [buf] with the snapshot record: header, name-sorted file table,
   trailing checksum. A table that does not fit leaves an empty,
   overflow-flagged (hence unusable for recovery) snapshot. *)
let encode_snapshot t buf =
  let cap = Bytes.length buf in
  let names =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.files [])
  in
  let pos = ref snap_header in
  let ok = ref true in
  List.iter
    (fun name ->
      if !ok then begin
        let f = Hashtbl.find t.files name in
        let exts = extents_of t f in
        let need = 2 + String.length name + 8 + 4 + (12 * List.length exts) in
        if !pos + need + 8 > cap then ok := false
        else begin
          let p = !pos in
          Wire.set_u16 buf p (String.length name);
          Bytes.blit_string name 0 buf (p + 2) (String.length name);
          let p = p + 2 + String.length name in
          Wire.set_u64 buf p f.f_size;
          Wire.set_u32 buf (p + 8) (List.length exts);
          List.iteri
            (fun i (idx, first, count) ->
              let q = p + 12 + (i * 12) in
              Wire.set_u32 buf q idx;
              Wire.set_u32 buf (q + 4) first;
              Wire.set_u32 buf (q + 8) count)
            exts;
          pos := !pos + need
        end
      end)
    names;
  if not !ok then begin
    Bytes.fill buf 0 cap '\000';
    pos := snap_header
  end;
  Wire.set_u32 buf 0 snap_magic;
  Wire.set_u32 buf 4 (if !ok then 0 else snap_flag_overflow);
  Wire.set_u64 buf 8 t.txn_seq;
  Wire.set_u32 buf 16 (if !ok then List.length names else 0);
  Wire.set_u32 buf 20 t.journal_cursor;
  Wire.set_u32 buf 24 !pos;
  Wire.set_u64 buf !pos (Wire.checksum buf ~pos:0 ~len:!pos)

let sync_meta t =
  (* The legacy string serialization still determines the IO size — the
     cost model is pinned by it. *)
  let buf = Buffer.create 4096 in
  Hashtbl.iter
    (fun name f ->
      Buffer.add_string buf name;
      Buffer.add_string buf (string_of_int f.f_size);
      Hashtbl.iter (fun idx first -> Buffer.add_string buf (Printf.sprintf "%d:%d" idx first)) f.f_blocks)
    t.files;
  let len = min (Buffer.length buf) ((meta_blocks - 1) * dev_bs) in
  let data = Pool.alloc_zeroed (Msnap_util.Bits.round_up (max len dev_bs) dev_bs) in
  Fun.protect
    ~finally:(fun () -> Pool.recycle data)
    (fun () ->
      encode_snapshot t data;
      let off =
        if Bytes.length data <= snap_slot_cap then begin
          let slot = t.meta_slot in
          t.meta_slot <- 1 - slot;
          if slot = 0 then dev_bs else 32 * dev_bs
        end
        else dev_bs (* legacy-size monster snapshot: single slot *)
      in
      (* [dev_write] commits before returning, so the staging buffer can
         go straight back to the pool. *)
      dev_write t ~off (Slice.of_bytes data))

(* --- mount / recovery (FFS) --- *)

exception Mount_error of string

let mount_error fmt = Printf.ksprintf (fun s -> raise (Mount_error s)) fmt

(* (seq, cursor, slot, files) of a valid non-overflow snapshot. *)
let parse_snapshot buf ~slot =
  let len = Bytes.length buf in
  if len < snap_header + 8 then None
  else if Wire.get_u32 buf 0 <> snap_magic then None
  else
    let content_len = Wire.get_u32 buf 24 in
    if content_len < snap_header || content_len + 8 > len then None
    else if
      Wire.get_u64 buf content_len
      <> Wire.checksum buf ~pos:0 ~len:content_len
    then None
    else if Wire.get_u32 buf 4 land snap_flag_overflow <> 0 then None
    else begin
      let nfiles = Wire.get_u32 buf 16 in
      let pos = ref snap_header in
      let files = ref [] in
      (try
         for _ = 1 to nfiles do
           let name_len = Wire.get_u16 buf !pos in
           let name = Bytes.sub_string buf (!pos + 2) name_len in
           let p = !pos + 2 + name_len in
           let size = Wire.get_u64 buf p in
           let nexts = Wire.get_u32 buf (p + 8) in
           let exts =
             List.init nexts (fun i ->
                 let q = p + 12 + (i * 12) in
                 (Wire.get_u32 buf q, Wire.get_u32 buf (q + 4),
                  Wire.get_u32 buf (q + 8)))
           in
           files := (name, size, exts) :: !files;
           pos := p + 12 + (nexts * 12)
         done
       with Invalid_argument _ -> files := []);
      Some
        (Wire.get_u64 buf 8, Wire.get_u32 buf 20, slot, List.rev !files)
    end

type commit_rec = {
  jc_seq : int;
  jc_block : int; (* device block holding the record *)
  jc_name : string;
  jc_size : int;
  jc_maps : (int * int) list option; (* None = overflow marker *)
}

let parse_commit buf ~pos ~block =
  if Wire.get_u32 buf pos <> commit_magic then None
  else if
    Wire.get_u64 buf (pos + commit_cksum_off)
    <> Wire.checksum buf ~pos ~len:commit_cksum_off
  then None
  else begin
    let nmaps = Wire.get_u32 buf (pos + 4) in
    let name_len = Wire.get_u16 buf (pos + 24) in
    if name_len > commit_name_max then None
    else
      let maps =
        if nmaps = commit_overflow then None
        else
          Some
            (List.init nmaps (fun i ->
                 let q = pos + commit_maps_off + (i * 8) in
                 (Wire.get_u32 buf q, Wire.get_u32 buf (q + 4))))
      in
      Some
        {
          jc_seq = Wire.get_u64 buf (pos + 8);
          jc_block = block;
          jc_name = Bytes.sub_string buf (pos + 26) name_len;
          jc_size = Wire.get_u64 buf (pos + 16);
          jc_maps = maps;
        }
  end

(* Mount an FFS image: newest intact metadata snapshot, plus the replay
   of every committed journal transaction younger than it. Fails loudly
   ([Mount_error]) when acknowledged transactions cannot be
   reconstructed — a seq gap (ring wrap past un-snapshotted commits) or
   an overflow commit record in the replay range. A blank device mounts
   as an empty file system. *)
let mount dev ~kind =
  if kind <> Ffs then invalid_arg "Fs.mount: recovery is FFS-only";
  Sched.cpu (Costs.syscall + Costs.vfs_call);
  let t = mkfs dev ~kind in
  let step = t.bs / dev_bs in
  (* Newest usable snapshot from the two slots (slot 0 may legacy-spill
     past slot 1's blocks, so read its full possible extent). *)
  let snap =
    let s0 =
      parse_snapshot (Device.read dev ~off:dev_bs ~len:((meta_blocks - 1) * dev_bs)) ~slot:0
    in
    let s1 =
      parse_snapshot (Device.read dev ~off:(32 * dev_bs) ~len:(32 * dev_bs)) ~slot:1
    in
    match (s0, s1) with
    | None, s | s, None -> s
    | Some ((q0, _, _, _) as a), Some ((q1, _, _, _) as b) ->
      Some (if q0 > q1 then a else b)
  in
  let snap_seq, snap_cursor, snap_slot =
    match snap with
    | None -> (0, meta_blocks, None)
    | Some (seq, cursor, slot, files) ->
      List.iter
        (fun (name, size, exts) ->
          let f = open_file t name in
          f.f_size <- size;
          List.iter
            (fun (idx, first, count) ->
              for k = 0 to count - 1 do
                Hashtbl.replace f.f_blocks (idx + k) (first + (k * step));
                for j = 0 to step - 1 do
                  Balloc.mark_allocated t.alloc (first + (k * step) + j)
                done
              done)
            exts)
        files;
      (seq, cursor, Some slot)
  in
  (* Scan the whole ring for intact commit records. *)
  let jbuf =
    Device.read dev ~off:(meta_blocks * dev_bs) ~len:(journal_blocks * dev_bs)
  in
  let records = ref [] in
  for b = 0 to journal_blocks - 1 do
    match parse_commit jbuf ~pos:(b * dev_bs) ~block:(meta_blocks + b) with
    | Some r -> records := r :: !records
    | None -> ()
  done;
  let newer =
    List.sort
      (fun a b -> compare a.jc_seq b.jc_seq)
      (List.filter (fun r -> r.jc_seq > snap_seq) !records)
  in
  (* Acked transactions must replay completely and in order. *)
  let expect = ref (snap_seq + 1) in
  List.iter
    (fun r ->
      if r.jc_seq <> !expect then
        mount_error "journal gap: expected txn %d, found %d (snapshot at %d)"
          !expect r.jc_seq snap_seq;
      incr expect;
      match r.jc_maps with
      | None ->
        mount_error "journal txn %d overflowed its commit record" r.jc_seq
      | Some maps ->
        let f = open_file t r.jc_name in
        f.f_size <- r.jc_size;
        List.iter
          (fun (idx, first) ->
            Hashtbl.replace f.f_blocks idx first;
            for j = 0 to step - 1 do
              Balloc.mark_allocated t.alloc (first + j)
            done)
          maps)
    newer;
  (match List.rev newer with
  | last :: _ ->
    t.txn_seq <- last.jc_seq;
    t.journal_cursor <- last.jc_block + 1
  | [] ->
    t.txn_seq <- snap_seq;
    t.journal_cursor <-
      (if snap_cursor >= meta_blocks && snap_cursor <= meta_blocks + journal_blocks
       then snap_cursor
       else meta_blocks));
  (match snap_slot with
  | Some slot -> t.meta_slot <- 1 - slot
  | None -> t.meta_slot <- 0);
  t

(* End-of-run teardown: every cache block and the zero scratch go back to
   the buffer pool. The filesystem must never be used again. *)
let dispose t =
  Hashtbl.iter
    (fun _ f -> Hashtbl.iter (fun _ cb -> discard_block cb) f.f_cache)
    t.files;
  Hashtbl.reset t.files;
  t.cached_count <- 0;
  Pool.recycle t.scratch_zeros;
  t.scratch_zeros <- Bytes.empty;
  Pool.recycle t.scratch_journal;
  t.scratch_journal <- Bytes.empty

let debug_resident _t f =
  Hashtbl.fold (fun idx cb acc -> Printf.sprintf "%d(lru%d,%b) %s" idx cb.cb_lru cb.cb_dirty acc) f.f_cache ""

(* --- crash recovery contract --- *)

let recoverable ~kind ~files =
  (module struct
    type nonrec t = t

    let label = "fs"

    let recover dev =
      try mount dev ~kind
      with Mount_error msg -> raise (Msnap_faults.Recoverable.Unmountable msg)

    (* The recovered state is each tracked file's full contents: the FFS
       journal replays whole transactions, so every file must read back
       exactly as it did after some acked fsync. *)
    let check fs history =
      let state =
        List.map
          (fun name ->
            let f = open_file fs name in
            let n = size fs f in
            (name, Bytes.to_string (read fs f ~off:0 ~len:n)))
          files
      in
      Msnap_faults.Recoverable.check_state ~label history state

    let dispose = dispose
  end : Msnap_faults.Recoverable.S with type t = t)
