module Device = Msnap_blockdev.Device
module Balloc = Msnap_blockdev.Balloc
module Slice = Msnap_util.Slice
module Pool = Msnap_util.Pool
module Sched = Msnap_sim.Sched
module Sync = Msnap_sim.Sync
module Trace = Msnap_sim.Trace
module Probe = Msnap_sim.Probe
module Costs = Msnap_sim.Costs
module Aspace = Msnap_vm.Aspace
module Addr = Msnap_vm.Addr
module Phys = Msnap_vm.Phys

type kind = Ffs | Zfs

(* Device layout (4 KiB units): [0, meta_blocks) inode-table area,
   [meta_blocks, meta_blocks + journal_blocks) journal / intent log,
   the rest is file data. *)
let meta_blocks = 64
let journal_blocks = 256
let reserved_blocks = meta_blocks + journal_blocks
let dev_bs = 4096

type cached_block = {
  cb_data : Bytes.t; (* pooled: recycled when the block leaves the cache *)
  mutable cb_dirty : bool;
  mutable cb_lru : int;
  mutable cb_pin : int;
      (* holders of [cb_data] across a scheduling point: in-flight
         writeback commands and writers inside a charge+blit window *)
  mutable cb_gone : bool; (* evicted while pinned; last unpin recycles *)
}

let pin cb = cb.cb_pin <- cb.cb_pin + 1

let unpin cb =
  cb.cb_pin <- cb.cb_pin - 1;
  if cb.cb_gone && cb.cb_pin = 0 then Pool.recycle cb.cb_data

(* A block leaving the cache returns its buffer to the pool — unless a
   writer or writeback command still holds it across a scheduling point,
   in which case the last {!unpin} recycles. Pins never influence which
   block gets evicted (the victim choice feeds later RMW reads, a
   simulated value); they only defer the host-side recycle. *)
let discard_block cb =
  if cb.cb_pin = 0 then Pool.recycle cb.cb_data else cb.cb_gone <- true

type mm = {
  mm_aspace : Aspace.t;
  mm_va : int;
  mm_len : int;
  mm_dirty : (int, unit) Hashtbl.t; (* rel page -> dirtied since last msync *)
}

type file = {
  f_name : string;
  mutable f_size : int;
  f_blocks : (int, int) Hashtbl.t; (* fs-block idx -> first device block *)
  f_cache : (int, cached_block) Hashtbl.t;
  mutable f_ind_blocks : int list; (* ZFS: current indirect blocks *)
  mutable f_mmaps : mm list;
}

type t = {
  dev : Device.t;
  f_kind : kind;
  bs : int; (* fs block size in bytes *)
  alloc : Balloc.t;
  files : (string, file) Hashtbl.t;
  mutable journal_cursor : int; (* device block within the journal area *)
  mutable lru_clock : int;
  mutable capacity : int; (* cache capacity in fs blocks, across files *)
  mutable cached_count : int;
  fsync_lock : Sync.Mutex.t;
  mutable scratch_zeros : Bytes.t;
      (* shared all-zero backing for journal records, indirect blocks and
         metadata padding: those writes carry zeros, so every command can
         reference one read-only buffer instead of allocating. *)
  mutable s_disk_bytes : int;
  mutable s_rmw_reads : int;
}

let block_size_of = function Ffs -> 32 * 1024 | Zfs -> 128 * 1024

let mkfs dev ~kind =
  {
    dev;
    f_kind = kind;
    bs = block_size_of kind;
    alloc =
      Balloc.create ~total_blocks:(Device.size dev / dev_bs)
        ~reserved:reserved_blocks;
    files = Hashtbl.create 16;
    journal_cursor = meta_blocks;
    lru_clock = 0;
    capacity = 2048;
    cached_count = 0;
    fsync_lock = Sync.Mutex.create ();
    scratch_zeros = Bytes.empty;
    s_disk_bytes = 0;
    s_rmw_reads = 0;
  }

let kind t = t.f_kind
let fs_block_size t = t.bs

let open_file t name =
  match Hashtbl.find_opt t.files name with
  | Some f -> f
  | None ->
    let f =
      { f_name = name; f_size = 0; f_blocks = Hashtbl.create 64;
        f_cache = Hashtbl.create 64; f_ind_blocks = []; f_mmaps = [] }
    in
    Hashtbl.replace t.files name f;
    f

let exists t name = Hashtbl.mem t.files name

let remove t name =
  match Hashtbl.find_opt t.files name with
  | None -> ()
  | Some f ->
    Hashtbl.iter
      (fun _ first -> Balloc.free_now t.alloc (List.init (t.bs / dev_bs) (fun i -> first + i)))
      f.f_blocks;
    Balloc.free_now t.alloc f.f_ind_blocks;
    t.cached_count <- t.cached_count - Hashtbl.length f.f_cache;
    Hashtbl.iter (fun _ cb -> discard_block cb) f.f_cache;
    Hashtbl.remove t.files name

let size _t f = f.f_size
let resident_blocks _t f = Hashtbl.length f.f_cache
let cache_capacity_blocks t = t.capacity
let set_cache_capacity t n = t.capacity <- n

let bytes_written_to_disk t = t.s_disk_bytes
let rmw_reads t = t.s_rmw_reads

(* --- device helpers --- *)

let dev_write t ~off s =
  t.s_disk_bytes <- t.s_disk_bytes + Slice.length s;
  Device.write_slice t.dev ~off s

let dev_writev t segs =
  List.iter (fun (_, s) -> t.s_disk_bytes <- t.s_disk_bytes + Slice.length s) segs;
  Device.writev t.dev segs

let dev_read_into t ~off dst = Device.read_into t.dev ~off dst

let zero_slice t n =
  if Bytes.length t.scratch_zeros < n then begin
    (* Growth is rare and happens only between commands (every user of
       the scratch writes synchronously under [fsync_lock]), so the old
       backing can be recycled immediately. *)
    Pool.recycle t.scratch_zeros;
    t.scratch_zeros <- Pool.alloc_zeroed n
  end;
  Slice.make t.scratch_zeros ~pos:0 ~len:n

let journal_write t nbytes =
  (* Sequential append into the journal ring. *)
  if Trace.is_on () then
    Trace.instant Probe.fs_journal ~argi:("bytes", nbytes);
  let blocks = max 1 ((nbytes + dev_bs - 1) / dev_bs) in
  if t.journal_cursor + blocks > meta_blocks + journal_blocks then
    t.journal_cursor <- meta_blocks;
  let off = t.journal_cursor * dev_bs in
  t.journal_cursor <- t.journal_cursor + blocks;
  dev_write t ~off (zero_slice t (blocks * dev_bs))

let journal_commit t =
  if t.journal_cursor >= meta_blocks + journal_blocks then
    t.journal_cursor <- meta_blocks;
  let off = t.journal_cursor * dev_bs in
  dev_write t ~off (zero_slice t 512)

(* --- buffer cache --- *)

let evict_if_needed ?keep t =
  if t.cached_count > t.capacity then begin
    (* Drop the least-recently-used *clean* blocks across all files,
       never the block a caller is actively using ([keep]). Dirty blocks
       are pinned until writeback, so the cache can transiently exceed
       its capacity, as a real buffer cache under writeback pressure. *)
    (* Repeated min-scan instead of building and sorting a candidate
       list per miss: each round evicts the smallest
       [(cb_lru, f_name, idx)] — exactly the block the old
       [List.sort compare] put first — and evicting a clean block never
       changes the rest of the candidate set, so the evicted set is
       identical. [excess] is almost always 1, and the scan allocates
       nothing per block. *)
    let keep_cb = keep in
    let excess = t.cached_count - t.capacity in
    let continue = ref true in
    for _ = 1 to excess do
      if !continue then begin
        let best_lru = ref max_int in
        let best_f = ref None in
        let best_idx = ref 0 in
        let best_cb = ref None in
        Hashtbl.iter
          (fun _ f ->
            Hashtbl.iter
              (fun idx cb ->
                let kept =
                  match keep_cb with Some k -> k == cb | None -> false
                in
                if (not cb.cb_dirty) && not kept then
                  let better =
                    cb.cb_lru < !best_lru
                    || cb.cb_lru = !best_lru
                       &&
                       match !best_f with
                       | None -> true
                       | Some bf ->
                         let c = compare f.f_name bf.f_name in
                         c < 0 || (c = 0 && idx < !best_idx)
                  in
                  if better then begin
                    best_lru := cb.cb_lru;
                    best_f := Some f;
                    best_idx := idx;
                    best_cb := Some cb
                  end)
              f.f_cache)
          t.files;
        match !best_f with
        | None -> continue := false
        | Some f ->
          Hashtbl.remove f.f_cache !best_idx;
          t.cached_count <- t.cached_count - 1;
          Option.iter discard_block !best_cb
      end
    done
  end

let touch t cb =
  t.lru_clock <- t.lru_clock + 1;
  cb.cb_lru <- t.lru_clock

(* Get the cached block, reading it from disk when a read-modify-write
   requires the old contents ([need_old]). *)
let get_block t f idx ~need_old =
  match Hashtbl.find_opt f.f_cache idx with
  | Some cb ->
    Sched.cpu Costs.buffer_cache_lookup;
    touch t cb;
    cb
  | None ->
    Sched.cpu Costs.buffer_cache_lookup;
    let data =
      match Hashtbl.find_opt f.f_blocks idx with
      | Some first when need_old ->
        t.s_rmw_reads <- t.s_rmw_reads + 1;
        (* The device read fills the whole block, so an uninitialized
           pooled buffer is as good as the fresh [Bytes.create] was. *)
        let data = Pool.alloc t.bs in
        dev_read_into t ~off:(first * dev_bs) (Slice.of_bytes data);
        data
      | Some _ | None -> Pool.alloc_zeroed t.bs
    in
    let cb =
      { cb_data = data; cb_dirty = false; cb_lru = 0; cb_pin = 0;
        cb_gone = false }
    in
    touch t cb;
    Hashtbl.replace f.f_cache idx cb;
    t.cached_count <- t.cached_count + 1;
    evict_if_needed ~keep:cb t;
    cb

(* --- read / write --- *)

(* One buffered write of the concatenation of [slices] at [off]. The
   syscall/rangelock charge and the per-fs-block-chunk memcpy charges are
   those of a single write of the combined length, so callers can gather
   a header and a payload without materializing the frame first. *)
let writev t f ~off slices =
  let trace_t0 = if Trace.is_on () then Sched.now () else 0 in
  Sched.cpu (Costs.syscall + Costs.vfs_call + Costs.rangelock);
  let len = List.fold_left (fun a s -> a + Slice.length s) 0 slices in
  (* Cursor over the scatter list: [copy_into] drains the next [n]
     payload bytes into the cache block. *)
  let rem = ref slices and rem_off = ref 0 in
  let rec copy_into dst dst_pos n =
    if n > 0 then
      match !rem with
      | [] -> assert false
      | s :: tl ->
        let avail = Slice.length s - !rem_off in
        if avail = 0 then begin
          rem := tl;
          rem_off := 0;
          copy_into dst dst_pos n
        end
        else begin
          let k = min avail n in
          Slice.blit_to_bytes s ~src_pos:!rem_off dst ~dst_pos ~len:k;
          rem_off := !rem_off + k;
          copy_into dst (dst_pos + k) (n - k)
        end
  in
  let rec go off remaining =
    if remaining > 0 then begin
      let idx = off / t.bs in
      let within = off mod t.bs in
      let n = min remaining (t.bs - within) in
      (* Sub-block writes to on-disk blocks must read the old contents. *)
      let covers_whole = within = 0 && n = t.bs in
      let cb = get_block t f idx ~need_old:(not covers_whole) in
      (* The memcpy charge can yield; pin so that an eviction during the
         yield defers the buffer's recycle past our blit. (The write into
         an evicted block is lost either way, as before pooling.) *)
      pin cb;
      Sched.cpu (Costs.memcpy n);
      copy_into cb.cb_data within n;
      cb.cb_dirty <- true;
      unpin cb;
      go (off + n) (remaining - n)
    end
  in
  go off len;
  if off + len > f.f_size then f.f_size <- off + len;
  if Trace.is_on () then
    Trace.complete Probe.fs_write ~dur:(Sched.now () - trace_t0)
      ~argi:("bytes", len)

let write t f ~off data = writev t f ~off [ Slice.of_bytes data ]

(* Single-buffer write with the exact charges of [writev] of one slice
   of the same length, but no slice/list allocation — for hot fixed-size
   writers (the WAL append path) that reuse one backing buffer. *)
let write_sub t f ~off data ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length data then
    invalid_arg "Fs.write_sub: bad slice";
  let trace_t0 = if Trace.is_on () then Sched.now () else 0 in
  Sched.cpu (Costs.syscall + Costs.vfs_call + Costs.rangelock);
  let rec go off pos remaining =
    if remaining > 0 then begin
      let idx = off / t.bs in
      let within = off mod t.bs in
      let n = min remaining (t.bs - within) in
      let covers_whole = within = 0 && n = t.bs in
      let cb = get_block t f idx ~need_old:(not covers_whole) in
      pin cb;
      Sched.cpu (Costs.memcpy n);
      Bytes.blit data pos cb.cb_data within n;
      cb.cb_dirty <- true;
      unpin cb;
      go (off + n) (pos + n) (remaining - n)
    end
  in
  go off pos len;
  if off + len > f.f_size then f.f_size <- off + len;
  if Trace.is_on () then
    Trace.complete Probe.fs_write ~dur:(Sched.now () - trace_t0)
      ~argi:("bytes", len)

(* Read into a caller-owned buffer — the exact charges of [read], which
   is this plus the output allocation. Every chunk is either blitted from
   the cache or zero-filled (holes), so the buffer need not be zeroed on
   entry. *)
let read_into t f ~off buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Fs.read_into: bad slice";
  Sched.cpu (Costs.syscall + Costs.vfs_call);
  let rec go off pos remaining =
    if remaining > 0 then begin
      let idx = off / t.bs in
      let within = off mod t.bs in
      let n = min remaining (t.bs - within) in
      let cached = Hashtbl.mem f.f_cache idx in
      let on_disk = Hashtbl.mem f.f_blocks idx in
      if cached || on_disk then begin
        let cb = get_block t f idx ~need_old:true in
        pin cb;
        Sched.cpu (Costs.memcpy n);
        Bytes.blit cb.cb_data within buf pos n;
        unpin cb
      end
      else Bytes.fill buf pos n '\000' (* hole, like read(2) past sparse regions *);
      go (off + n) (pos + n) (remaining - n)
    end
  in
  go off pos len

let read t f ~off ~len =
  let out = Bytes.create len in
  read_into t f ~off out ~pos:0 ~len;
  out

let truncate t f newsize =
  Sched.cpu (Costs.syscall + Costs.vfs_call);
  if newsize < f.f_size then begin
    let keep_blocks = (newsize + t.bs - 1) / t.bs in
    let dropped = ref [] in
    Hashtbl.iter
      (fun idx first -> if idx >= keep_blocks then dropped := (idx, first) :: !dropped)
      f.f_blocks;
    List.iter
      (fun (idx, first) ->
        Hashtbl.remove f.f_blocks idx;
        Balloc.free_now t.alloc (List.init (t.bs / dev_bs) (fun i -> first + i)))
      !dropped;
    let drop_cache = ref [] in
    Hashtbl.iter
      (fun idx cb -> if idx >= keep_blocks then drop_cache := (idx, cb) :: !drop_cache)
      f.f_cache;
    List.iter
      (fun (idx, cb) ->
        Hashtbl.remove f.f_cache idx;
        t.cached_count <- t.cached_count - 1;
        discard_block cb)
      !drop_cache
  end;
  f.f_size <- newsize

(* --- fsync --- *)

(* Resident-page scan: fsync/msync inspects every resident page of the
   file to find the dirty ones; the cost grows with the cached footprint,
   not the dirty set (the Fig. 5 baseline effect). *)
let charge_resident_scan t f =
  let pages = Hashtbl.length f.f_cache * (t.bs / 4096) in
  Sched.cpu (pages * Costs.fsync_resident_scan_per_page)

let dirty_blocks f =
  Hashtbl.fold (fun idx cb acc -> if cb.cb_dirty then (idx, cb) :: acc else acc)
    f.f_cache []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Bytes of a block that are below EOF (tail blocks write only the used
   prefix, rounded to device blocks). *)
let used_len t f idx =
  let upto = min t.bs (f.f_size - (idx * t.bs)) in
  if upto <= 0 then 0 else (upto + dev_bs - 1) / dev_bs * dev_bs

let ensure_allocated t f idx =
  match Hashtbl.find_opt f.f_blocks idx with
  | Some first -> first
  | None ->
    let run = Balloc.alloc_run t.alloc (t.bs / dev_bs) in
    let first = List.hd run in
    Hashtbl.replace f.f_blocks idx first;
    first

(* FFS: journal intent, write blocks in place with dependency-limited
   concurrency, then metadata, then journal commit. *)
let fsync_ffs t f dirty =
  let n = List.length dirty in
  Sched.cpu (n * Costs.journal_entry);
  journal_write t (n * 128);
  (* Soft-updates dependency ordering allows only shallow overlap. *)
  let qd = 2 in
  let pending = ref [] in
  let flush_pending () =
    List.iter Sync.Ivar.read !pending;
    pending := []
  in
  List.iter
    (fun (idx, cb) ->
      let first = ensure_allocated t f idx in
      let len = used_len t f idx in
      if len > 0 then begin
        let iv = Sync.Ivar.create () in
        (* Slice over the cache block itself: dirty blocks stay in the
           cache, and writeback completes before fsync returns, so the
           ownership rule holds without a staging copy. Marking the block
           clean below makes it evictable mid-writeback, so the command
           pins the buffer until the device is done with it. *)
        let data = Slice.make cb.cb_data ~pos:0 ~len in
        pin cb;
        ignore
          (Sched.spawn ~name:"ffs-write" (fun () ->
               dev_write t ~off:(first * dev_bs) data;
               Sync.Ivar.fill iv ();
               unpin cb));
        pending := iv :: !pending;
        if List.length !pending >= qd then flush_pending ()
      end;
      cb.cb_dirty <- false)
    dirty;
  flush_pending ();
  (* Inode + block bitmap update, then the journal commit record. *)
  dev_write t ~off:0 (zero_slice t dev_bs);
  journal_commit t

(* ZFS: intent log for small syncs, then COW data, indirect chain and
   uberblock. *)
let fsync_zfs t f dirty =
  let total_used =
    List.fold_left (fun a (idx, _) -> a + used_len t f idx) 0 dirty
  in
  if total_used <= 64 * 1024 then journal_write t total_used;
  (* COW: every dirty record moves to fresh blocks. *)
  let segs =
    List.map
      (fun (idx, cb) ->
        let old = Hashtbl.find_opt f.f_blocks idx in
        let run = Balloc.alloc_run t.alloc (t.bs / dev_bs) in
        let first = List.hd run in
        Hashtbl.replace f.f_blocks idx first;
        (match old with
        | Some o -> Balloc.free_now t.alloc (List.init (t.bs / dev_bs) (fun i -> o + i))
        | None -> ());
        (* Clean (hence evictable) as soon as dirty is cleared; pin the
           buffer until the vectored command below has committed it. *)
        cb.cb_dirty <- false;
        pin cb;
        let len = used_len t f idx in
        (first * dev_bs, Slice.make cb.cb_data ~pos:0 ~len:(max dev_bs len)))
      dirty
  in
  dev_writev t segs;
  List.iter (fun (_, cb) -> unpin cb) dirty;
  (* Indirect blocks: one per record (they are scattered for random
     updates), written COW as well, then the uberblock. *)
  let n = List.length dirty in
  Sched.cpu (n * Costs.cow_indirect_update);
  let nind = ((n + 15) / 16) + 1 in
  Balloc.free_now t.alloc f.f_ind_blocks;
  let ind = Balloc.alloc_run t.alloc nind in
  f.f_ind_blocks <- ind;
  dev_writev t (List.map (fun b -> (b * dev_bs, zero_slice t dev_bs)) ind);
  dev_write t ~off:(dev_bs / 2) (zero_slice t 512)

let do_fsync t f ~meta =
  ignore meta;
  let trace_t0 = if Trace.is_on () then Sched.now () else 0 in
  Sched.cpu (Costs.syscall + Costs.vfs_call);
  charge_resident_scan t f;
  let nblocks = ref 0 in
  Sync.Mutex.with_lock t.fsync_lock (fun () ->
      let dirty = dirty_blocks f in
      if dirty <> [] then begin
        nblocks := List.length dirty;
        let wb () =
          match t.f_kind with
          | Ffs -> fsync_ffs t f dirty
          | Zfs -> fsync_zfs t f dirty
        in
        if Trace.is_on () then
          Trace.with_span Probe.fs_writeback
            ~argi:("blocks", !nblocks) wb
        else wb ()
      end);
  (* Writeback made blocks clean and therefore reclaimable. *)
  evict_if_needed t;
  if Trace.is_on () then
    Trace.complete Probe.fs_fsync ~dur:(Sched.now () - trace_t0)
      ~args:[ ("file", Trace.S f.f_name); ("dirty_blocks", Trace.I !nblocks) ]

let fsync t f = do_fsync t f ~meta:true
let fdatasync t f = do_fsync t f ~meta:false

(* --- mmap --- *)

let mmap t f aspace ~va ~len =
  let dirty = Hashtbl.create 64 in
  let mm = { mm_aspace = aspace; mm_va = va; mm_len = len; mm_dirty = dirty } in
  f.f_mmaps <- mm :: f.f_mmaps;
  let pager =
    { Aspace.page_in =
        (fun rel ->
          let off = rel * Addr.page_size in
          if off >= f.f_size && not (Hashtbl.mem f.f_blocks (off / t.bs)) then `Zero
          else begin
            let cb = get_block t f (off / t.bs) ~need_old:true in
            let within = off mod t.bs in
            (* Fill the frame here instead of handing Aspace a slice over
               the cache block: the charge sequence (frame alloc, then a
               page-sized memcpy) is exactly what Aspace performs for a
               [`Slice], and doing the blit under a pin keeps the buffer
               alive if the alloc/memcpy charges yield into an eviction. *)
            pin cb;
            Fun.protect
              ~finally:(fun () -> unpin cb)
              (fun () ->
                let p = Phys.alloc (Aspace.phys aspace) in
                Sched.cpu (Costs.memcpy Addr.page_size);
                Bytes.blit cb.cb_data within p.Phys.data 0 Addr.page_size;
                `Page p)
          end)
    }
  in
  let on_write_fault (fault : Aspace.fault) =
    let rel = Aspace.mapping_of_fault_rel_page fault in
    Hashtbl.replace dirty rel ();
    Msnap_vm.Ptloc.set fault.Aspace.f_loc
      (Msnap_vm.Pte.set_writable (Msnap_vm.Ptloc.get fault.Aspace.f_loc) true)
  in
  (* Pages start read-only so that the first store faults and marks the
     backing block dirty — the classic msync dirty-tracking setup. *)
  Aspace.map aspace ~name:("mmap:" ^ f.f_name) ~va ~len ~writable:true
    ~new_pages_writable:false ~pager ~on_write_fault ()

let msync t f =
  let trace_t0 = if Trace.is_on () then Sched.now () else 0 in
  Sched.cpu Costs.syscall;
  List.iter
    (fun mm ->
      let rels = Hashtbl.fold (fun r () acc -> r :: acc) mm.mm_dirty [] in
      let rels = List.sort compare rels in
      (* Gather page contents into the cache and re-protect the pages. *)
      List.iter
        (fun rel ->
          let va = mm.mm_va + (rel * Addr.page_size) in
          let page = Aspace.page_for_read mm.mm_aspace ~va in
          let off = rel * Addr.page_size in
          let cb = get_block t f (off / t.bs) ~need_old:true in
          pin cb;
          Sched.cpu (Costs.memcpy Addr.page_size);
          Bytes.blit page.Phys.data 0 cb.cb_data (off mod t.bs) Addr.page_size;
          cb.cb_dirty <- true;
          unpin cb;
          if off + Addr.page_size > f.f_size then f.f_size <- off + Addr.page_size;
          Aspace.protect_page mm.mm_aspace ~vpn:(Addr.vpn_of_va va);
          Sched.cpu Costs.pte_update)
        rels;
      Aspace.shootdown mm.mm_aspace
        (List.map (fun rel -> Addr.vpn_of_va (mm.mm_va + (rel * Addr.page_size))) rels);
      Hashtbl.reset mm.mm_dirty)
    f.f_mmaps;
  do_fsync t f ~meta:true;
  if Trace.is_on () then
    Trace.complete Probe.fs_msync ~dur:(Sched.now () - trace_t0)
      ~args:[ ("file", Trace.S f.f_name) ]

(* --- metadata --- *)

let sync_meta t =
  (* Serialize the inode table into the metadata area. The exact encoding
     is irrelevant to the cost model; the IO is what matters. *)
  let buf = Buffer.create 4096 in
  Hashtbl.iter
    (fun name f ->
      Buffer.add_string buf name;
      Buffer.add_string buf (string_of_int f.f_size);
      Hashtbl.iter (fun idx first -> Buffer.add_string buf (Printf.sprintf "%d:%d" idx first)) f.f_blocks)
    t.files;
  let len = min (Buffer.length buf) ((meta_blocks - 1) * dev_bs) in
  let data = Pool.alloc_zeroed (Msnap_util.Bits.round_up (max len dev_bs) dev_bs) in
  Fun.protect
    ~finally:(fun () -> Pool.recycle data)
    (fun () ->
      Bytes.blit_string (Buffer.contents buf) 0 data 0 len;
      (* [dev_write] commits before returning, so the staging buffer can
         go straight back to the pool. *)
      dev_write t ~off:dev_bs (Slice.of_bytes data))

(* End-of-run teardown: every cache block and the zero scratch go back to
   the buffer pool. The filesystem must never be used again. *)
let dispose t =
  Hashtbl.iter
    (fun _ f -> Hashtbl.iter (fun _ cb -> discard_block cb) f.f_cache)
    t.files;
  Hashtbl.reset t.files;
  t.cached_count <- 0;
  Pool.recycle t.scratch_zeros;
  t.scratch_zeros <- Bytes.empty

let debug_resident _t f =
  Hashtbl.fold (fun idx cb acc -> Printf.sprintf "%d(lru%d,%b) %s" idx cb.cb_lru cb.cb_dirty acc) f.f_cache ""
