module Slice = Msnap_util.Slice

module type S = sig
  type t

  val name : t -> string
  val size : t -> int
  val writev : t -> (int * Slice.t) list -> unit
  val write_slice : t -> off:int -> Slice.t -> unit
  val write : t -> off:int -> Bytes.t -> unit
  val read_into : t -> off:int -> Slice.t -> unit
  val read : t -> off:int -> len:int -> Bytes.t
  val flush : t -> unit
  val barrier : t -> unit
  val fail_power : t -> torn_seed:int -> unit
  val restore_power : t -> unit
  val stats : t -> Disk.stats
  val reset_stats : t -> unit
  val dispose : t -> unit
  val attach_record : t -> Record.t -> unit
  val detach_record : t -> unit
  val members : t -> int
  val member_size : t -> member:int -> int
  val peek : t -> member:int -> off:int -> len:int -> Bytes.t
  val poke : t -> member:int -> off:int -> data:Bytes.t -> unit
end

type t = Dev : (module S with type t = 'a) * 'a -> t

(* Both current backends make writes durable at command completion, so a
   barrier — "all prior IO on media before any later IO" — needs exactly
   a queue drain. *)
module Disk_backend = struct
  include Disk

  let barrier = Disk.flush
  let members _ = 1

  let check_member d member =
    if member <> 0 then
      invalid_arg (Printf.sprintf "%s: no member %d" (Disk.name d) member)

  let member_size d ~member =
    check_member d member;
    Disk.size d

  let peek d ~member ~off ~len =
    check_member d member;
    Disk.peek d ~off ~len

  let poke d ~member ~off ~data =
    check_member d member;
    Disk.poke d ~off ~data
end

module Stripe_backend = struct
  include Stripe

  let barrier = Stripe.flush
end

let of_disk d = Dev ((module Disk_backend), d)
let of_stripe s = Dev ((module Stripe_backend), s)

let name (Dev ((module D), d)) = D.name d
let size (Dev ((module D), d)) = D.size d
let writev (Dev ((module D), d)) segs = D.writev d segs
let write_slice (Dev ((module D), d)) ~off s = D.write_slice d ~off s
let write (Dev ((module D), d)) ~off b = D.write d ~off b
let read_into (Dev ((module D), d)) ~off s = D.read_into d ~off s
let read (Dev ((module D), d)) ~off ~len = D.read d ~off ~len
let flush (Dev ((module D), d)) = D.flush d
let barrier (Dev ((module D), d)) = D.barrier d
let fail_power (Dev ((module D), d)) ~torn_seed = D.fail_power d ~torn_seed
let restore_power (Dev ((module D), d)) = D.restore_power d
let stats (Dev ((module D), d)) = D.stats d
let reset_stats (Dev ((module D), d)) = D.reset_stats d
let dispose (Dev ((module D), d)) = D.dispose d
let attach_record (Dev ((module D), d)) r = D.attach_record d r
let detach_record (Dev ((module D), d)) = D.detach_record d
let members (Dev ((module D), d)) = D.members d
let member_size (Dev ((module D), d)) ~member = D.member_size d ~member
let peek (Dev ((module D), d)) ~member ~off ~len = D.peek d ~member ~off ~len
let poke (Dev ((module D), d)) ~member ~off ~data = D.poke d ~member ~off ~data
