module Sched = Msnap_sim.Sched
module Sync = Msnap_sim.Sync
module Size = Msnap_util.Size
module Slice = Msnap_util.Slice

type t = { disks : Disk.t array; unit_size : int }

let create ?(unit_size = Size.kib 64) disks =
  if disks = [] then invalid_arg "Stripe.create: no disks";
  let disks = Array.of_list disks in
  let sz = Disk.size disks.(0) in
  Array.iter
    (fun d ->
      if Disk.size d <> sz then invalid_arg "Stripe.create: unequal disk sizes")
    disks;
  if sz mod unit_size <> 0 then
    invalid_arg "Stripe.create: disk size not a multiple of the stripe unit";
  { disks; unit_size }

let size t = Array.fold_left (fun a d -> a + Disk.size d) 0 t.disks
let unit_size t = t.unit_size

let name t =
  String.concat "+" (Array.to_list (Array.map Disk.name t.disks))

let ndisks t = Array.length t.disks

(* Split [off, len) into (dev, dev_off, seg_off, seg_len) chunks. *)
let chunks t off len =
  let rec go acc off len seg_off =
    if len = 0 then List.rev acc
    else begin
      let stripe = off / t.unit_size in
      let within = off mod t.unit_size in
      let dev = stripe mod ndisks t in
      let dev_off = (stripe / ndisks t * t.unit_size) + within in
      let n = min len (t.unit_size - within) in
      go ((dev, dev_off, seg_off, n) :: acc) (off + n) (len - n) (seg_off + n)
    end
  in
  go [] off len 0

let check_range t off len =
  if off < 0 || len < 0 || off + len > size t then
    invalid_arg
      (Printf.sprintf "Stripe: IO out of range (off=%d len=%d size=%d)" off len
         (size t))

(* Run one job per device concurrently; propagate the first failure. *)
let fanout t per_dev jobs =
  let launch (dev, job) =
    if job = [] then None
    else begin
      let iv = Sync.Ivar.create () in
      let run () =
        let r = try Ok (per_dev t.disks.(dev) job) with e -> Error e in
        Sync.Ivar.fill iv r
      in
      ignore (Sched.spawn ~name:"stripe-io" run);
      Some iv
    end
  in
  let ivs = List.filter_map launch jobs in
  let results = List.map Sync.Ivar.read ivs in
  List.iter (function Error e -> raise e | Ok () -> ()) results

(* Write coalescing: collapse consecutive per-member segments that are
   both device-offset-adjacent and contiguous in the same backing buffer
   into one wider sub-slice. Purely host-side — the member command's
   simulated latency is charged from its total byte count either way,
   and a coalesced run commits (or tears) the exact bytes the unmerged
   sequence would: the merged slice is the same contiguous view, and
   torn prefixes advance sector-by-sector in the same order. *)
let coalesce segs =
  let rec go acc = function
    | [] -> List.rev acc
    | (o, s) :: rest -> (
      match acc with
      | (po, ps) :: tl
        when po + Slice.length ps = o
             && Slice.buf ps == Slice.buf s
             && Slice.pos ps + Slice.length ps = Slice.pos s ->
        let merged =
          Slice.make (Slice.buf ps) ~pos:(Slice.pos ps)
            ~len:(Slice.length ps + Slice.length s)
        in
        go ((po, merged) :: tl) rest
      | _ -> go ((o, s) :: acc) rest)
  in
  go [] segs

let writev t segs =
  List.iter (fun (off, s) -> check_range t off (Slice.length s)) segs;
  (* Group all chunks by device, preserving order. Each per-device
     segment is a sub-slice of the caller's slice — no payload bytes
     move here; the ownership rule carries through to the member disks. *)
  let per_dev = Array.make (ndisks t) [] in
  List.iter
    (fun (off, s) ->
      List.iter
        (fun (dev, dev_off, seg_off, n) ->
          per_dev.(dev) <- (dev_off, Slice.sub s ~pos:seg_off ~len:n) :: per_dev.(dev))
        (chunks t off (Slice.length s)))
    segs;
  let jobs =
    List.init (ndisks t) (fun dev -> (dev, coalesce (List.rev per_dev.(dev))))
  in
  fanout t (fun disk segs -> Disk.writev disk segs) jobs

let write_slice t ~off s = writev t [ (off, s) ]

let write t ~off data = writev t [ (off, Slice.of_bytes data) ]

let read_into t ~off dst =
  let len = Slice.length dst in
  check_range t off len;
  (* Each member device reads straight into its disjoint range of the
     caller-visible buffer — no per-device staging allocation. *)
  let per_dev = Array.make (ndisks t) [] in
  List.iter
    (fun (dev, dev_off, seg_off, n) ->
      per_dev.(dev) <- (dev_off, Slice.sub dst ~pos:seg_off ~len:n) :: per_dev.(dev))
    (chunks t off len);
  let jobs = List.init (ndisks t) (fun dev -> (dev, List.rev per_dev.(dev))) in
  fanout t
    (fun disk pieces ->
      List.iter (fun (dev_off, piece) -> Disk.read_into disk ~off:dev_off piece) pieces)
    jobs

let read t ~off ~len =
  let out = Bytes.create len in
  read_into t ~off (Slice.of_bytes out);
  out

let flush t = Array.iter Disk.flush t.disks

let fail_power t ~torn_seed =
  Array.iteri (fun i d -> Disk.fail_power d ~torn_seed:(torn_seed + i)) t.disks

let restore_power t = Array.iter Disk.restore_power t.disks

let stats t =
  Array.fold_left
    (fun (acc : Disk.stats) d ->
      let s = Disk.stats d in
      {
        Disk.reads = acc.reads + s.reads;
        writes = acc.writes + s.writes;
        bytes_read = acc.bytes_read + s.bytes_read;
        bytes_written = acc.bytes_written + s.bytes_written;
        busy_ns = acc.busy_ns + s.busy_ns;
      })
    { Disk.reads = 0; writes = 0; bytes_read = 0; bytes_written = 0; busy_ns = 0 }
    t.disks

let reset_stats t = Array.iter Disk.reset_stats t.disks
let dispose t = Array.iter Disk.dispose t.disks

(* --- crash-schedule capture (host-only) --- *)

(* Members register ascending, so recorded member [i] tears with seed
   [torn_seed + i] — the same mapping [fail_power] uses. *)
let attach_record t r = Array.iter (fun d -> Disk.attach_record d r) t.disks
let detach_record t = Array.iter Disk.detach_record t.disks
let members t = ndisks t
let member_size t ~member = Disk.size t.disks.(member)
let peek t ~member ~off ~len = Disk.peek t.disks.(member) ~off ~len
let poke t ~member ~off ~data = Disk.poke t.disks.(member) ~off ~data
