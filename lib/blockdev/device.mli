(** One block-device interface over every backend.

    {!Disk} (a single simulated NVMe drive) and {!Stripe} (RAID-0 over
    several) expose the same operations but distinct types, which used
    to force every consumer — the file systems, the object store, the
    bench harness — to pick a backend at compile time or duplicate
    plumbing. [Device] packages any backend implementing {!S} as a
    single first-class value, so [Fs.mkfs], [Store.format], and the
    experiment builders take {e a device}, not a particular one.

    The zero-copy contract is part of the signature: slices handed to
    {!writev}/{!write_slice} obey the ownership rule (not mutated until
    the call returns in virtual time), and {!read_into} lands in the
    caller's buffer. See {!Disk} for the full statement. *)

module Slice = Msnap_util.Slice

(** What a block-device backend must provide. Durability semantics:
    writes become durable in issue order per command; [flush] drains the
    queue; [barrier] is the ordering point consumers should use when
    they need "everything before is on media before anything after" —
    today both backends implement it as [flush], but the signature keeps
    the distinction so a future backend with native ordered commands can
    do better. *)
module type S = sig
  type t

  val name : t -> string
  val size : t -> int
  val writev : t -> (int * Slice.t) list -> unit
  val write_slice : t -> off:int -> Slice.t -> unit
  val write : t -> off:int -> Bytes.t -> unit
  val read_into : t -> off:int -> Slice.t -> unit
  val read : t -> off:int -> len:int -> Bytes.t
  val flush : t -> unit
  val barrier : t -> unit
  val fail_power : t -> torn_seed:int -> unit
  val restore_power : t -> unit
  val stats : t -> Disk.stats
  val reset_stats : t -> unit

  val dispose : t -> unit
  (** End-of-run teardown: return pooled host buffers (medium chunks) to
      [Msnap_util.Pool]. The device must be idle and never used again. *)

  (** {2 Crash-schedule capture (host-only)}

      A backend exposes its member disks — the units {!fail_power}
      tears independently — for history recording and raw-media access.
      Member [i] of a recorded run corresponds to live crash seed
      [torn_seed + i]. These operations are host work: attaching a
      recorder, peeking or poking the medium never changes a simulated
      value. *)

  val attach_record : t -> Record.t -> unit
  val detach_record : t -> unit
  val members : t -> int
  val member_size : t -> member:int -> int
  val peek : t -> member:int -> off:int -> len:int -> Bytes.t
  val poke : t -> member:int -> off:int -> data:Bytes.t -> unit
end

type t = Dev : (module S with type t = 'a) * 'a -> t
(** A backend module packed with its instance. Consumers normally use
    the forwarding functions below; the constructor is exposed so new
    backends can be packed without touching this module. *)

val of_disk : Disk.t -> t
val of_stripe : Stripe.t -> t

(** {2 Forwarders} *)

val name : t -> string
val size : t -> int
val writev : t -> (int * Slice.t) list -> unit
val write_slice : t -> off:int -> Slice.t -> unit
val write : t -> off:int -> Bytes.t -> unit
val read_into : t -> off:int -> Slice.t -> unit
val read : t -> off:int -> len:int -> Bytes.t
val flush : t -> unit
val barrier : t -> unit
val fail_power : t -> torn_seed:int -> unit
val restore_power : t -> unit
val stats : t -> Disk.stats
val reset_stats : t -> unit
val dispose : t -> unit
val attach_record : t -> Record.t -> unit
val detach_record : t -> unit
val members : t -> int
val member_size : t -> member:int -> int
val peek : t -> member:int -> off:int -> len:int -> Bytes.t
val poke : t -> member:int -> off:int -> data:Bytes.t -> unit
