(** Striped volume over several disks (RAID-0).

    The paper's testbed stripes two Intel 900P SSDs in 64 KiB blocks; this
    module reproduces that layout. IO that spans stripe units is split into
    per-device commands issued concurrently, so large sequential writes see
    the aggregate bandwidth of the member devices — the effect behind
    MemSnap beating single-outstanding-IO direct writes at large sizes in
    Table 6.

    Zero-copy: splitting produces {e sub-slices} of the caller's segments
    (no payload bytes move), so the ownership rule of {!Disk} extends to
    every write through this module — including {!write}, whose [Bytes.t]
    is wrapped, not copied. Reads through {!read_into} land directly in
    the caller's buffer, one disjoint range per member device. *)

module Slice = Msnap_util.Slice

type t

val create : ?unit_size:int -> Disk.t list -> t
(** [unit_size] defaults to 64 KiB. Requires at least one disk; all disks
    must have equal size. *)

val size : t -> int
val unit_size : t -> int

val name : t -> string
(** Member device names joined with ["+"], e.g. ["nvme0+nvme1"]. *)

val write : t -> off:int -> Bytes.t -> unit
(** Zero-copy wrapper over {!writev}: [data] is referenced, not
    snapshotted — it must not be mutated until the call returns. *)

val write_slice : t -> off:int -> Slice.t -> unit

val read : t -> off:int -> len:int -> Bytes.t

val read_into : t -> off:int -> Slice.t -> unit
(** Fill the caller's buffer directly from the member devices. *)

val flush : t -> unit

val fail_power : t -> torn_seed:int -> unit
val restore_power : t -> unit

val writev : t -> (int * Slice.t) list -> unit
(** One vectored command per member device; completes when all devices do.
    Segments obey the ownership rule. Sector-adjacent segments that are
    contiguous in the same backing buffer are coalesced into single wider
    sub-slices per member — host-only; simulated latency and committed
    (or torn) bytes are identical to the unmerged sequence. *)

val stats : t -> Disk.stats
(** Aggregated across members. *)

val reset_stats : t -> unit

val dispose : t -> unit
(** {!Disk.dispose} every member. *)

(** {2 Crash-schedule capture (host-only)}

    Members register with the recorder in ascending order — the order
    {!fail_power} tears them in, so recorded member [i] corresponds to
    live seed [torn_seed + i]. *)

val attach_record : t -> Record.t -> unit
val detach_record : t -> unit
val members : t -> int
val member_size : t -> member:int -> int
val peek : t -> member:int -> off:int -> len:int -> Bytes.t
val poke : t -> member:int -> off:int -> data:Bytes.t -> unit
