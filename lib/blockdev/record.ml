(* Crash-schedule recording: a host-side log of every durable-prefix
   boundary a device run passes through.

   A recorder is attached to a device (Device.attach_record); each member
   disk then reports two kinds of events:

   - a write command being issued (the moment it enters the disk's
     in-flight list), with an issue-time snapshot of its payload — by the
     slice ownership rule the snapshot equals the bytes the command will
     commit;
   - a command completing (write commit, flush or barrier drain), which
     defines one *boundary*: a point in the schedule where the media
     holds exactly the commits so far plus whatever in-flight commands
     would tear to.

   Everything here is host work: no scheduler calls, no simulated RNG,
   no charges. Attaching a recorder cannot change any simulated value.

   The recorder can also be *armed* with a crash point [(prefix,
   torn_seed)]: the instant boundary [prefix] is appended, every
   registered member's [fail_power] fires with seed [torn_seed + member]
   — exactly the live power failure [Msnap_faults.Image] reconstructs
   offline. *)

type seg = { g_off : int; g_data : Bytes.t }

type cmd = {
  c_member : int;
  c_segs : seg array;
  c_t0 : int; (* virtual issue time *)
  c_dur : int; (* simulated transfer duration *)
  c_issue_seq : int; (* global event sequence at issue *)
  mutable c_commit_boundary : int; (* boundary index; -1 = never committed *)
}

type boundary = {
  b_seq : int; (* global event sequence of the completion *)
  b_time : int; (* virtual time of the completion *)
  b_cmd : cmd option; (* the committed write; None for flush/barrier *)
}

type t = {
  mutable r_seq : int;
  mutable r_cmds : cmd list; (* newest first *)
  mutable r_ncmds : int;
  mutable r_bounds : boundary array;
  mutable r_nbounds : int;
  mutable r_members : (torn_seed:int -> unit) array;
  mutable r_nmembers : int;
  mutable r_armed : (int * int) option; (* (prefix, torn_seed) *)
  mutable r_fired : bool;
}

let create () =
  {
    r_seq = 0;
    r_cmds = [];
    r_ncmds = 0;
    r_bounds = Array.make 64 { b_seq = 0; b_time = 0; b_cmd = None };
    r_nbounds = 0;
    r_members = Array.make 4 (fun ~torn_seed:_ -> ());
    r_nmembers = 0;
    r_armed = None;
    r_fired = false;
  }

(* Members register in [fail_power] order (a stripe registers its disks
   ascending), so member [i]'s live tear seed is [torn_seed + i]. *)
let register t fail =
  let ix = t.r_nmembers in
  if ix = Array.length t.r_members then begin
    let bigger = Array.make (2 * ix) t.r_members.(0) in
    Array.blit t.r_members 0 bigger 0 ix;
    t.r_members <- bigger
  end;
  t.r_members.(ix) <- fail;
  t.r_nmembers <- ix + 1;
  ix

let members t = t.r_nmembers

let arm t ~prefix ~torn_seed =
  t.r_armed <- Some (prefix, torn_seed);
  t.r_fired <- false

let fired t = t.r_fired

let next_seq t =
  let s = t.r_seq in
  t.r_seq <- s + 1;
  s

let issued t ~member ~segs ~t0 ~dur =
  let segs =
    Array.of_list
      (List.map
         (fun (off, s) ->
           let len = Msnap_util.Slice.length s in
           let data = Bytes.create len in
           Msnap_util.Slice.blit_to_bytes s ~src_pos:0 data ~dst_pos:0 ~len;
           { g_off = off; g_data = data })
         segs)
  in
  let c =
    { c_member = member; c_segs = segs; c_t0 = t0; c_dur = dur;
      c_issue_seq = next_seq t; c_commit_boundary = -1 }
  in
  t.r_cmds <- c :: t.r_cmds;
  t.r_ncmds <- t.r_ncmds + 1;
  c

let push_boundary t b =
  if t.r_nbounds = Array.length t.r_bounds then begin
    let bigger = Array.make (2 * t.r_nbounds) b in
    Array.blit t.r_bounds 0 bigger 0 t.r_nbounds;
    t.r_bounds <- bigger
  end;
  t.r_bounds.(t.r_nbounds) <- b;
  t.r_nbounds <- t.r_nbounds + 1;
  match t.r_armed with
  | Some (prefix, torn_seed) when prefix = t.r_nbounds - 1 && not t.r_fired ->
    t.r_fired <- true;
    for i = 0 to t.r_nmembers - 1 do
      t.r_members.(i) ~torn_seed:(torn_seed + i)
    done
  | _ -> ()

let committed t cmd ~now =
  cmd.c_commit_boundary <- t.r_nbounds;
  push_boundary t { b_seq = next_seq t; b_time = now; b_cmd = Some cmd }

let flushed t ~member:_ ~now =
  push_boundary t { b_seq = next_seq t; b_time = now; b_cmd = None }

let boundaries t = t.r_nbounds
let commands t = t.r_ncmds
let boundary t i = t.r_bounds.(i)

(* Commands in issue order (oldest first). *)
let all_commands t = List.rev t.r_cmds
