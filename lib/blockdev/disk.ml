module Costs = Msnap_sim.Costs
module Sched = Msnap_sim.Sched
module Sync = Msnap_sim.Sync
module Trace = Msnap_sim.Trace
module Probe = Msnap_sim.Probe
module Rng = Msnap_util.Rng
module Slice = Msnap_util.Slice
module Pool = Msnap_util.Pool

exception Powered_off

(* The persistent medium, stored sparsely: chunks are materialized on
   first write, and reads of never-written ranges yield zeros. Purely a
   host-memory optimization — a simulated machine no longer costs the
   host ~1 GiB of zeroed pages up front — with contents and simulated
   costs identical to a flat zero-initialized buffer. *)
module Medium = struct
  let chunk_bits = 18 (* 256 KiB *)
  let chunk_size = 1 lsl chunk_bits

  type t = { m_size : int; chunks : Bytes.t option array }

  let create size =
    { m_size = size;
      chunks = Array.make ((size + chunk_size - 1) / chunk_size) None }

  let size m = m.m_size

  let chunk_for_write m i =
    match m.chunks.(i) with
    | Some c -> c
    | None ->
      let c = Pool.alloc_zeroed chunk_size in
      m.chunks.(i) <- Some c;
      c

  (* Return every materialized chunk to the buffer pool. Only valid once
     nothing will read the medium again (end of a bench run). *)
  let dispose m =
    Array.iteri
      (fun i c ->
        match c with
        | Some b ->
          m.chunks.(i) <- None;
          Pool.recycle b
        | None -> ())
      m.chunks

  (* Apply [f chunk_index chunk_off rel_pos len] over [off, off+len). *)
  let iter_ranges _m off len f =
    let pos = ref off and remaining = ref len in
    while !remaining > 0 do
      let i = !pos lsr chunk_bits in
      let coff = !pos land (chunk_size - 1) in
      let n = min !remaining (chunk_size - coff) in
      f i coff (!pos - off) n;
      pos := !pos + n;
      remaining := !remaining - n
    done

  let write m ~off data ~pos ~len =
    iter_ranges m off len (fun i coff rel n ->
        Bytes.blit data (pos + rel) (chunk_for_write m i) coff n)

  let read_into m ~off dst ~pos ~len =
    iter_ranges m off len (fun i coff rel n ->
        match m.chunks.(i) with
        | Some c -> Bytes.blit c coff dst (pos + rel) n
        | None -> Bytes.fill dst (pos + rel) n '\000')

  (* Write a run of exactly-adjacent slices [(abs_off, slice); ...] with
     a single two-pointer walk over chunks and segments, instead of one
     chunk-range traversal per segment. Byte effect identical to writing
     each segment in order. *)
  let write_segs m segs =
    match segs with
    | [] -> ()
    | (off0, _) :: _ ->
      let cur = ref segs in
      let pos = ref off0 in
      let continue = ref true in
      while !continue do
        match !cur with
        | [] -> continue := false
        | (o, s) :: tl ->
          let send = o + Slice.length s in
          let i = !pos lsr chunk_bits in
          let coff = !pos land (chunk_size - 1) in
          let n = min (send - !pos) (chunk_size - coff) in
          Bytes.blit (Slice.buf s)
            (Slice.pos s + (!pos - o))
            (chunk_for_write m i) coff n;
          pos := !pos + n;
          if !pos >= send then cur := tl
      done
end

type stats = {
  reads : int;
  writes : int;
  bytes_read : int;
  bytes_written : int;
  busy_ns : int;
}

type inflight = {
  segs : (int * Slice.t) list; (* (offset, data), commit order *)
  checksums : int list; (* issue-time content hashes; [] unless debugging *)
  t0 : int;
  dur : int;
  mutable torn : bool;
}

type t = {
  dname : string;
  medium : Medium.t;
  channels : Sync.Semaphore.t;
  mutable powered : bool;
  mutable inflight : inflight list;
  mutable recorder : (Record.t * int) option; (* recorder, member index *)
  mutable s_reads : int;
  mutable s_writes : int;
  mutable s_bytes_read : int;
  mutable s_bytes_written : int;
  mutable s_busy : int;
}

let create ?(name = "nvme") ~size () =
  let size = Msnap_util.Bits.round_up size Costs.sector in
  {
    dname = name;
    medium = Medium.create size;
    channels = Sync.Semaphore.create Costs.disk_channels;
    powered = true;
    inflight = [];
    recorder = None;
    s_reads = 0;
    s_writes = 0;
    s_bytes_read = 0;
    s_bytes_written = 0;
    s_busy = 0;
  }

let size t = Medium.size t.medium
let name t = t.dname

let check_power t = if not t.powered then raise Powered_off

let check_range t off len =
  if off < 0 || len < 0 || off + len > Medium.size t.medium then
    invalid_arg
      (Printf.sprintf "%s: IO out of range (off=%d len=%d size=%d)" t.dname off
         len (Medium.size t.medium))

(* The only payload copy on the write path: slice -> medium, at commit. *)
let commit_seg t (off, s) =
  Medium.write t.medium ~off (Slice.buf s) ~pos:(Slice.pos s)
    ~len:(Slice.length s)

(* Commit coalescing: maximal sector-adjacent runs of a command's
   segments go to the medium as one fused walk. Segments within a run
   cannot overlap (they are exactly adjacent) and runs are processed in
   list order, so the final bytes equal committing every segment in
   order. Host-only: the command's simulated duration was charged for
   its total size up front, fused or not. *)
let commit_segs t segs =
  let rec split_run acc endo = function
    | (o, s) :: tl when o = endo -> split_run ((o, s) :: acc) (o + Slice.length s) tl
    | rest -> (List.rev acc, rest)
  in
  let rec go = function
    | [] -> ()
    | (off, s) :: rest ->
      let run, rest = split_run [ (off, s) ] (off + Slice.length s) rest in
      (match run with
      | [ seg ] -> commit_seg t seg
      | run -> Medium.write_segs t.medium run);
      go rest
  in
  go segs

let verify_checksums t fl =
  if fl.checksums <> [] then
    List.iter2
      (fun (off, s) ck ->
        if Slice.checksum s <> ck then
          invalid_arg
            (Printf.sprintf
               "%s: ownership violation — slice at off=%d len=%d mutated \
                while its write command was in flight"
               t.dname off (Slice.length s)))
      fl.segs fl.checksums

let service t ~dur ~io =
  check_power t;
  Sync.Semaphore.acquire t.channels;
  let finally () = Sync.Semaphore.release t.channels in
  Fun.protect ~finally (fun () ->
      check_power t;
      t.s_busy <- t.s_busy + dur;
      io dur)

(* Trace one command from issue to commit, including any time queued on a
   channel. Queue depth is sampled at issue; args are only computed when
   tracing is on so the disabled path allocates nothing. Host-only. *)
let traced t probe ~bytes io =
  if not (Trace.is_on ()) then io ()
  else begin
    let t0 = Sched.now () in
    let qd =
      Costs.disk_channels - Sync.Semaphore.value t.channels
      + List.length t.inflight
    in
    match io () with
    | r ->
      Trace.complete probe ~dur:(Sched.now () - t0)
        ~args:[ ("dev", Trace.S t.dname); ("bytes", Trace.I bytes);
                ("qd_at_issue", Trace.I qd) ];
      r
    | exception exn ->
      Trace.complete probe ~dur:(Sched.now () - t0)
        ~args:[ ("dev", Trace.S t.dname); ("bytes", Trace.I bytes);
                ("qd_at_issue", Trace.I qd); ("aborted", Trace.I 1) ];
      raise exn
  end

let writev t segs =
  List.iter (fun (off, s) -> check_range t off (Slice.length s)) segs;
  let total = List.fold_left (fun a (_, s) -> a + Slice.length s) 0 segs in
  let dur = Costs.disk_base + Costs.disk_xfer total in
  traced t Probe.disk_write ~bytes:total @@ fun () ->
  service t ~dur ~io:(fun dur ->
      let checksums =
        if !Slice.debug_checks then List.map (fun (_, s) -> Slice.checksum s) segs
        else []
      in
      List.iter (fun (_, s) -> Slice.borrow s) segs;
      let fl = { segs; checksums; t0 = Sched.now (); dur; torn = false } in
      t.inflight <- fl :: t.inflight;
      (* Host-only history capture: the snapshot taken here equals the
         commit-time bytes by the slice ownership rule. *)
      let rcmd =
        match t.recorder with
        | None -> None
        | Some (r, member) ->
          Some (r, Record.issued r ~member ~segs ~t0:fl.t0 ~dur)
      in
      Sched.delay dur;
      t.inflight <- List.filter (fun f -> f != fl) t.inflight;
      if fl.torn then raise Powered_off;
      verify_checksums t fl;
      commit_segs t segs;
      List.iter (fun (_, s) -> Slice.release s) segs;
      t.s_writes <- t.s_writes + 1;
      t.s_bytes_written <- t.s_bytes_written + total;
      match rcmd with
      | None -> ()
      | Some (r, c) -> Record.committed r c ~now:(Sched.now ()))

let write_slice t ~off s = writev t [ (off, s) ]

(* Legacy byte API: snapshots the buffer at issue (one copy) so callers
   may reuse it immediately — the convenience contract the unit tests
   pin. Hot paths use the slice API and the ownership rule instead. The
   snapshot is pooled: by completion (or tear, which also commits its
   prefix before the writer resumes) the device is done with it. *)
let write t ~off data =
  let len = Bytes.length data in
  let snap = Pool.alloc len in
  Bytes.blit data 0 snap 0 len;
  Fun.protect
    ~finally:(fun () -> Pool.recycle snap)
    (fun () -> writev t [ (off, Slice.of_bytes snap) ])

let read_into t ~off dst =
  let len = Slice.length dst in
  check_range t off len;
  let dur = Costs.disk_base + Costs.disk_xfer len in
  traced t Probe.disk_read ~bytes:len @@ fun () ->
  service t ~dur ~io:(fun dur ->
      Sched.delay dur;
      t.s_reads <- t.s_reads + 1;
      t.s_bytes_read <- t.s_bytes_read + len;
      Medium.read_into t.medium ~off (Slice.buf dst) ~pos:(Slice.pos dst) ~len)

let read t ~off ~len =
  let buf = Bytes.create len in
  read_into t ~off (Slice.of_bytes buf);
  buf

let flush t =
  (* Draining the queue = acquiring every channel once. *)
  check_power t;
  traced t Probe.disk_flush ~bytes:0 @@ fun () ->
  let n = Costs.disk_channels in
  for _ = 1 to n do
    Sync.Semaphore.acquire t.channels
  done;
  for _ = 1 to n do
    Sync.Semaphore.release t.channels
  done;
  (* The drain is a durable-prefix boundary: this disk's queue is empty
     (no scheduling point separates the releases from here). *)
  match t.recorder with
  | None -> ()
  | Some (r, member) -> Record.flushed r ~member ~now:(Sched.now ())

(* The torn-sector budget of one in-flight command: whole sectors of a
   prefix whose length reflects how far the transfer had progressed,
   perturbed deterministically by the rng. Shared with
   [Msnap_faults.Image] so the offline reconstruction of a crash point
   can never drift from the live [fail_power] semantics. *)
let torn_sector_budget ~rng ~elapsed ~dur ~total_sectors =
  let frac =
    if dur <= 0 then 1.0
    else Float.min 1.0 (float_of_int elapsed /. float_of_int dur)
  in
  let base = int_of_float (frac *. float_of_int total_sectors) in
  let jitter = if total_sectors > 0 then Rng.int rng (total_sectors + 1) else 0 in
  min total_sectors (min base jitter + (max base jitter - min base jitter) / 2)

(* Tear each in-flight command: commit whole sectors of a prefix whose
   length reflects how far the transfer had progressed, perturbed
   deterministically by the seed. The ownership rule guarantees the
   slices still hold their issue-time bytes, so tearing from them here
   equals tearing from an issue-time snapshot. *)
let fail_power t ~torn_seed =
  t.powered <- false;
  let rng = Rng.create (torn_seed lxor 0x5EED) in
  let tear fl =
    fl.torn <- true;
    verify_checksums t fl;
    let elapsed = Sched.now () - fl.t0 in
    let total_sectors =
      List.fold_left
        (fun a (_, s) ->
          a + ((Slice.length s + Costs.sector - 1) / Costs.sector))
        0 fl.segs
    in
    let committed =
      torn_sector_budget ~rng ~elapsed ~dur:fl.dur ~total_sectors
    in
    (* Commit the first [committed] sectors across segments in order. *)
    let remaining = ref committed in
    List.iter
      (fun (off, s) ->
        let len = Slice.length s in
        let sectors = (len + Costs.sector - 1) / Costs.sector in
        let take = min sectors !remaining in
        remaining := !remaining - take;
        if take > 0 then begin
          let nbytes = min len (take * Costs.sector) in
          Medium.write t.medium ~off (Slice.buf s) ~pos:(Slice.pos s)
            ~len:nbytes
        end;
        Slice.release s)
      fl.segs
  in
  List.iter tear t.inflight;
  t.inflight <- []

let restore_power t = t.powered <- true

let stats t =
  {
    reads = t.s_reads;
    writes = t.s_writes;
    bytes_read = t.s_bytes_read;
    bytes_written = t.s_bytes_written;
    busy_ns = t.s_busy;
  }

let reset_stats t =
  t.s_reads <- 0;
  t.s_writes <- 0;
  t.s_bytes_read <- 0;
  t.s_bytes_written <- 0;
  t.s_busy <- 0

(* End-of-run teardown: the medium's chunks go back to the buffer pool
   so the next simulated machine reuses them. Only valid once the device
   is idle and nothing will read it again. *)
let dispose t = Medium.dispose t.medium

(* --- crash-schedule capture (host-only) --- *)

let attach_record t r =
  if t.recorder <> None then invalid_arg (t.dname ^ ": recorder already attached");
  let member = Record.register r (fun ~torn_seed -> fail_power t ~torn_seed) in
  t.recorder <- Some (r, member)

let detach_record t = t.recorder <- None

(* Raw media access for crash-image reconstruction and comparison: no
   power check, no charge, no stats — this is the test harness looking
   at the platters, not a simulated IO. *)
let peek t ~off ~len =
  let out = Bytes.create len in
  Medium.read_into t.medium ~off out ~pos:0 ~len;
  out

let poke t ~off ~data =
  Medium.write t.medium ~off data ~pos:0 ~len:(Bytes.length data)
