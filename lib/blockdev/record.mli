(** Crash-schedule recording: the host-side history a device run leaves
    behind, one entry per durable-prefix boundary.

    Attach a recorder with {!Device.attach_record} before running a
    scripted workload. Every member disk reports write issues (with an
    issue-time payload snapshot — equal to the commit-time bytes by the
    slice ownership rule) and command completions. Each completion
    (write commit, flush, barrier) is one {e boundary}: a crash point at
    which [Msnap_faults.Image] can rebuild the exact post-crash media
    image, including the seeded torn tails of the commands that were
    still in flight.

    Recording is host-only by construction: it performs no scheduler
    calls, draws no simulated randomness and charges nothing, so a
    recorded run produces byte-identical simulated values to an
    unrecorded one.

    A recorder may also be {!arm}ed with a crash point: the moment the
    given boundary is appended, every member's [fail_power] fires with
    seed [torn_seed + member] — a live crash at exactly the instant the
    offline reconstruction models. *)

type t

(** One recorded payload segment: member-disk offset plus an issue-time
    copy of the bytes. *)
type seg = { g_off : int; g_data : Bytes.t }

(** One recorded write command. *)
type cmd = {
  c_member : int;  (** member-disk index, in [fail_power] order *)
  c_segs : seg array;
  c_t0 : int;  (** virtual issue time *)
  c_dur : int;  (** simulated transfer duration *)
  c_issue_seq : int;  (** global event sequence at issue *)
  mutable c_commit_boundary : int;  (** boundary index; -1 = uncommitted *)
}

type boundary = {
  b_seq : int;  (** global event sequence of the completion *)
  b_time : int;  (** virtual completion time *)
  b_cmd : cmd option;  (** committed write; [None] for flush/barrier *)
}

val create : unit -> t

val register : t -> (torn_seed:int -> unit) -> int
(** Called by a member disk at attach time with its power-failure
    callback; returns the member index. Members register in
    [fail_power] order, so a stripe's member [i] tears with seed
    [torn_seed + i]. *)

val members : t -> int

val arm : t -> prefix:int -> torn_seed:int -> unit
(** Fire a live power failure the instant boundary [prefix] is
    appended. *)

val fired : t -> bool

(** {2 Hooks called by member disks} *)

val issued : t -> member:int -> segs:(int * Msnap_util.Slice.t) list ->
  t0:int -> dur:int -> cmd

val committed : t -> cmd -> now:int -> unit
val flushed : t -> member:int -> now:int -> unit

(** {2 Reading the history back} *)

val boundaries : t -> int
val commands : t -> int
val boundary : t -> int -> boundary
val all_commands : t -> cmd list
(** Issue order (oldest first). *)
