(** Simulated NVMe solid-state disk.

    The device stores real bytes, enforces sector-granularity write
    atomicity, models command latency ([Costs.disk_base] + transfer time)
    and limited internal parallelism ([Costs.disk_channels] concurrent
    commands; further commands queue). A power-failure hook tears writes
    that are in flight when the crash fires: a prefix of the command's
    sectors (chosen deterministically from the crash seed) reaches the
    medium, the rest keep their old contents — exactly the failure model
    the paper's crash-consistency argument relies on ("disks provide
    atomicity at the level of individual sectors").

    {2 Zero-copy write path and the ownership rule}

    The slice API ({!writev}, {!write_slice}, {!read_into}) moves no
    payload bytes at issue: the device keeps references to the caller's
    slices while the command is in flight and copies into the medium
    exactly once, at commit time. In exchange the caller promises the
    {e ownership rule}: a slice handed to a write must not be mutated
    until the command completes in virtual time. Under that rule the
    commit-time copy — and a crash tear — see precisely the bytes as
    they were at issue, preserving the issue-time-snapshot crash model.
    With [Slice.debug_checks] on, the device records a content checksum
    per segment at issue and verifies it at commit/tear, so violations
    fail loudly in tests.

    The legacy byte API ({!write}) instead snapshots by copying at issue;
    callers may reuse the buffer immediately. *)

module Slice = Msnap_util.Slice

type t

val create : ?name:string -> size:int -> unit -> t
(** [size] in bytes, rounded up to a whole sector. Contents start zeroed. *)

val size : t -> int
val name : t -> string

(** {2 IO — block until the command completes (in virtual time)} *)

val writev : t -> (int * Slice.t) list -> unit
(** Scatter/gather write: all segments are issued as one command; latency
    is one [disk_base] plus the summed transfer time, which is the benefit
    vectored IO exists to provide. Atomicity is still per-sector, and
    sectors reach the medium *in segment order* (an ordered SGL): a crash
    tears the command to a strict prefix. The object store relies on this
    to append its commit record as the final segment of one command.
    Zero-copy: segments must obey the ownership rule (see above). *)

val write_slice : t -> off:int -> Slice.t -> unit
(** [writev] of one segment. *)

val write : t -> off:int -> Bytes.t -> unit
(** Legacy convenience: snapshots [data] at issue (one copy), so the
    caller may mutate it while the IO is in flight. *)

val read_into : t -> off:int -> Slice.t -> unit
(** Read [Slice.length dst] bytes at [off] directly into the caller's
    buffer — no intermediate allocation. *)

val read : t -> off:int -> len:int -> Bytes.t

val flush : t -> unit
(** Drain the device queue (used by fsync paths). *)

(** {2 Crash injection} *)

val fail_power : t -> torn_seed:int -> unit
(** Simulate power loss: every in-flight or queued command is torn at a
    sector boundary chosen from [torn_seed]; subsequent IO raises
    [Powered_off] until {!restore_power}. *)

val restore_power : t -> unit

exception Powered_off

val torn_sector_budget :
  rng:Msnap_util.Rng.t -> elapsed:int -> dur:int -> total_sectors:int -> int
(** The number of whole sectors an in-flight command commits when power
    fails [elapsed] virtual ns into its [dur]-ns transfer — the exact
    arithmetic {!fail_power} applies, exported so the crash-schedule
    checker's offline image reconstruction cannot drift from it. Draws
    one value from [rng] iff [total_sectors > 0]. *)

(** {2 Crash-schedule capture (host-only)}

    See {!Record}. Attaching a recorder never changes a simulated
    value; [peek]/[poke] access the medium directly with no power
    check, no latency and no stats, for use by the crash checker's
    image reconstruction and the parity tests. *)

val attach_record : t -> Record.t -> unit
val detach_record : t -> unit
val peek : t -> off:int -> len:int -> Bytes.t
val poke : t -> off:int -> data:Bytes.t -> unit

(** {2 Statistics} *)

type stats = {
  reads : int;
  writes : int;
  bytes_read : int;
  bytes_written : int;
  busy_ns : int;  (** Total device-busy time across channels. *)
}

val stats : t -> stats
val reset_stats : t -> unit

val dispose : t -> unit
(** Return the medium's materialized chunks to [Msnap_util.Pool]. Only
    valid once the device is idle and will never be read again — i.e. at
    the end of a simulation run. *)
