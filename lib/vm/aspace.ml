module Costs = Msnap_sim.Costs
module Sched = Msnap_sim.Sched
module Trace = Msnap_sim.Trace
module Probe = Msnap_sim.Probe

type frame_source =
  [ `Zero
  | `Bytes of Bytes.t
  | `Slice of Msnap_util.Slice.t
  | `Page of Phys.page ]

type pager = { page_in : int -> frame_source }

type mapping = {
  m_name : string;
  start_vpn : int;
  npages : int;
  m_writable : bool;
  new_pages_writable : bool;
  pager : pager option;
  mutable on_write_fault : (fault -> unit) option;
}

and fault = {
  f_aspace : t;
  f_mapping : mapping;
  f_vpn : int;
  f_loc : Ptloc.t;
  f_page : Phys.page;
}

and t = {
  a_name : string;
  a_phys : Phys.t;
  pt : Ptable.t;
  a_tlb : Ptloc.t Tlb.t; (* payload: PTE location, or Ptloc.null *)
  (* Sorted by [start_vpn] so the per-access lookup is a binary search
     (plus a one-entry last-hit cache) instead of a linear list scan.
     Mutated only by [map]/[unmap], which are rare. *)
  mutable mappings : mapping array;
  mutable last_hit : mapping option;
}

let create ?(name = "aspace") phys =
  { a_name = name; a_phys = phys; pt = Ptable.create ();
    a_tlb = Tlb.create ~absent:Ptloc.null ();
    mappings = [||]; last_hit = None }

let name t = t.a_name
let phys t = t.a_phys
let page_table t = t.pt
let tlb t = t.a_tlb

let overlaps m ~start_vpn ~npages =
  start_vpn < m.start_vpn + m.npages && m.start_vpn < start_vpn + npages

let map t ~name ~va ~len ?(writable = true) ?(new_pages_writable = true) ?pager
    ?on_write_fault () =
  if va mod Addr.page_size <> 0 then invalid_arg "Aspace.map: unaligned va";
  if len <= 0 then invalid_arg "Aspace.map: empty mapping";
  let start_vpn = Addr.vpn_of_va va in
  let npages = Addr.pages_spanned ~off:va ~len in
  Array.iter
    (fun m ->
      if overlaps m ~start_vpn ~npages then
        invalid_arg
          (Printf.sprintf "Aspace.map: %s overlaps existing mapping %s" name
             m.m_name))
    t.mappings;
  let m =
    { m_name = name; start_vpn; npages; m_writable = writable;
      new_pages_writable; pager; on_write_fault }
  in
  let ms = Array.append t.mappings [| m |] in
  Array.sort (fun a b -> compare a.start_vpn b.start_vpn) ms;
  t.mappings <- ms;
  m

let set_write_fault_handler m h = m.on_write_fault <- h

let mapping_name m = m.m_name
let mapping_base m = Addr.va_of_vpn m.start_vpn
let mapping_len m = m.npages * Addr.page_size
let mapping_of_fault_rel_page f = f.f_vpn - f.f_mapping.start_vpn

let find_mapping t ~name =
  Array.find_opt (fun m -> m.m_name = name) t.mappings

let segfault t vpn =
  invalid_arg
    (Printf.sprintf "%s: segfault at va 0x%x (no mapping)" t.a_name
       (Addr.va_of_vpn vpn))

let mapping_of_vpn t vpn =
  match t.last_hit with
  | Some m when vpn >= m.start_vpn && vpn - m.start_vpn < m.npages -> m
  | _ ->
    (* Binary search for the mapping with the greatest start_vpn <= vpn. *)
    let ms = t.mappings in
    let lo = ref 0 and hi = ref (Array.length ms - 1) in
    let found = ref None in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let m = ms.(mid) in
      if m.start_vpn <= vpn then begin
        found := Some m;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    (match !found with
    | Some m when vpn - m.start_vpn < m.npages ->
      t.last_hit <- Some m;
      m
    | _ -> segfault t vpn)

(* Install a frame for [vpn] of mapping [m] using its pager. Charges the
   page-in fault. Returns the PTE location. *)
let page_in t m vpn =
  let trace_t0 = if Trace.is_on () then Sched.now () else 0 in
  Sched.cpu Costs.fault_entry;
  let source =
    match m.pager with
    | None -> `Zero
    | Some p -> p.page_in (vpn - m.start_vpn)
  in
  let page =
    match source with
    | `Zero -> Phys.alloc t.a_phys
    | `Bytes b ->
      let p = Phys.alloc t.a_phys in
      Sched.cpu (Costs.memcpy (Bytes.length b));
      Bytes.blit b 0 p.data 0 (min (Bytes.length b) Addr.page_size);
      p
    | `Slice s ->
      let module Slice = Msnap_util.Slice in
      let p = Phys.alloc t.a_phys in
      Sched.cpu (Costs.memcpy (Slice.length s));
      Slice.blit_to_bytes s ~src_pos:0 p.data ~dst_pos:0
        ~len:(min (Slice.length s) Addr.page_size);
      p
    | `Page p -> p
  in
  let loc = Ptable.walk t.pt vpn in
  Ptloc.set loc (Pte.make ~frame:page.Phys.frame ~writable:m.new_pages_writable);
  Phys.rmap_add page loc;
  if Trace.is_on () then
    Trace.complete Probe.vm_page_in ~dur:(Sched.now () - trace_t0)
      ~args:
        [ ("mapping", Trace.S m.m_name);
          ("rel_page", Trace.I (vpn - m.start_vpn)) ];
  loc

(* Translate [vpn], returning the PTE location. The simulated TLB alone
   decides the pt_walk charge: hit → nothing, miss → charge and install
   the entry immediately, as hardware does during the walk — BEFORE any
   page-in, because a page-in can trigger writeback protection resets
   that shoot the fresh entry down again, and later accesses must see
   that. The payload is a host-only cache of the PTE location — valid
   whenever a hit carries one, since leaves are never freed and every
   PTE-invalidation path also invalidates the TLB — letting a hit with a
   present PTE skip the host-side radix walk. *)
let translate t vpn =
  let cached =
    if Tlb.probe t.a_tlb vpn then Tlb.hit_payload t.a_tlb
    else begin
      (* Install the entry before charging the walk, exactly as the
         hardware walker fills the TLB: the charge is a scheduling
         point, and concurrent threads sharing this aspace must see the
         entry (a page-in triggered by this access can likewise shoot
         it down again before we resume). *)
      Tlb.insert t.a_tlb vpn Ptloc.null;
      if Trace.verbose () then Trace.instant Probe.vm_pt_walk;
      Sched.cpu Costs.pt_walk;
      Ptloc.null
    end
  in
  if (not (Ptloc.is_null cached)) && Pte.present (Ptloc.get cached) then cached
  else
    match Ptable.find_loc t.pt vpn with
    | Some loc when Pte.present (Ptloc.get loc) ->
      Tlb.update t.a_tlb vpn loc;
      loc
    | _ -> Ptloc.null

(* Page the vpn in and cache the fresh PTE location. The slow half of
   [translate], split out so the fast path allocates no closure. *)
let translate_miss t m vpn =
  let loc = page_in t m vpn in
  Tlb.update t.a_tlb vpn loc;
  loc

(* Resolve [vpn] for writing: page-in if absent, then run the write-fault
   path until the PTE is writable. Returns the PTE location; the page is
   one [Phys.get] away, so the hot path builds no pair. *)
let resolve_write_loc t vpn =
  let m = mapping_of_vpn t vpn in
  if not m.m_writable then
    invalid_arg
      (Printf.sprintf "%s: write to read-only mapping %s" t.a_name m.m_name);
  let loc = translate t vpn in
  let loc = if Ptloc.is_null loc then translate_miss t m vpn else loc in
  if Pte.writable (Ptloc.get loc) then loc
  else begin
    (* Minor write fault. *)
    let dispatch () =
      Sched.cpu Costs.fault_entry;
      let page = Phys.get t.a_phys (Pte.frame (Ptloc.get loc)) in
      (match m.on_write_fault with
      | Some handler ->
        handler { f_aspace = t; f_mapping = m; f_vpn = vpn; f_loc = loc;
                  f_page = page }
      | None -> Ptloc.set loc (Pte.set_writable (Ptloc.get loc) true));
      if not (Pte.writable (Ptloc.get loc)) then
        failwith
          (Printf.sprintf "%s: write fault handler left page RO (va 0x%x)"
             t.a_name (Addr.va_of_vpn vpn))
    in
    Sched.with_bucket Probe.Bucket.page_faults (fun () ->
        if not (Trace.is_on ()) then dispatch ()
        else
          Trace.with_span Probe.vm_write_fault
            ~args:[ ("mapping", Trace.S m.m_name); ("vpn", Trace.I vpn) ]
            dispatch);
    loc
  end

let resolve_write t vpn =
  let loc = resolve_write_loc t vpn in
  (Phys.get t.a_phys (Pte.frame (Ptloc.get loc)), loc)

let page_for_write t ~va = resolve_write t (Addr.vpn_of_va va)

let resolve_read t vpn =
  let m = mapping_of_vpn t vpn in
  let loc = translate t vpn in
  let loc =
    if not (Ptloc.is_null loc) then loc
    else
      Sched.with_bucket Probe.Bucket.page_faults (fun () ->
          if not (Trace.is_on ()) then translate_miss t m vpn
          else
            Trace.with_span Probe.vm_read_fault
              ~args:[ ("mapping", Trace.S m.m_name); ("vpn", Trace.I vpn) ]
              (fun () -> translate_miss t m vpn))
  in
  Phys.get t.a_phys (Pte.frame (Ptloc.get loc))

let page_for_read t ~va = resolve_read t (Addr.vpn_of_va va)

(* The copy loops are top-level recursive functions, not local
   closures: Aspace.read/write run once per storage access on the mmap
   paths, and a per-call closure is exactly the kind of hot-path
   allocation this module avoids. *)
let rec write_sub_loop t data va pos len =
  if len > 0 then begin
    let in_page = Addr.page_size - Addr.page_offset va in
    let n = min len in_page in
    (* Charge the copy before resolving: the store must land on the
       frame the translation produced, with no scheduling point in
       between — otherwise a concurrent μCheckpoint could COW the page
       away mid-copy and the bytes would hit an orphaned frame. *)
    Sched.cpu (Costs.memcpy n);
    let loc = resolve_write_loc t (Addr.vpn_of_va va) in
    let page = Phys.get t.a_phys (Pte.frame (Ptloc.get loc)) in
    Bytes.blit data pos page.Phys.data (Addr.page_offset va) n;
    write_sub_loop t data (va + n) (pos + n) (len - n)
  end

let write_sub t ~va data ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length data then
    invalid_arg "Aspace.write_sub: bad slice";
  write_sub_loop t data va pos len

let write t ~va data = write_sub t ~va data ~pos:0 ~len:(Bytes.length data)

let rec read_into_loop t buf va pos len =
  if len > 0 then begin
    let in_page = Addr.page_size - Addr.page_offset va in
    let n = min len in_page in
    Sched.cpu (Costs.memcpy n);
    let page = resolve_read t (Addr.vpn_of_va va) in
    Bytes.blit page.Phys.data (Addr.page_offset va) buf pos n;
    read_into_loop t buf (va + n) (pos + n) (len - n)
  end

let read_into t ~va buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Aspace.read_into: bad slice";
  read_into_loop t buf va pos len

let read t ~va ~len =
  let buf = Bytes.create len in
  read_into t ~va buf ~pos:0 ~len;
  buf

let protect_page t ~vpn =
  match Ptable.find_loc t.pt vpn with
  | None -> ()
  | Some loc ->
    let pte = Ptloc.get loc in
    if Pte.present pte then Ptloc.set loc (Pte.set_writable pte false)

let shootdown t vpns =
  (* Count once; both the trace arg and the cost model need the length. *)
  let n = List.length vpns in
  if Trace.is_on () then
    Trace.instant Probe.vm_shootdown ~argi:("pages", n);
  Tlb.shootdown ~n t.a_tlb vpns

let pages_of_range t ~va ~len =
  let vpn = Addr.vpn_of_va va in
  let n = Addr.pages_spanned ~off:va ~len in
  let acc = ref [] in
  ignore
    (Ptable.scan_range t.pt ~vpn ~n ~f:(fun v loc ->
         let pte = Ptloc.get loc in
         acc := (v, Phys.get t.a_phys (Pte.frame pte)) :: !acc));
  List.rev !acc

let unmap t m =
  ignore
    (Ptable.scan_range t.pt ~vpn:m.start_vpn ~n:m.npages ~f:(fun vpn loc ->
         let pte = Ptloc.get loc in
         let page = Phys.get t.a_phys (Pte.frame pte) in
         Phys.rmap_remove page loc;
         Ptloc.set loc Pte.empty;
         Tlb.invalidate_page t.a_tlb vpn;
         if Phys.rmap_is_empty page then Phys.free t.a_phys page));
  (* Drop [m] with a single counted copy — no list round-trip. *)
  let ms = t.mappings in
  let kept = ref 0 in
  Array.iter (fun m' -> if m' != m then incr kept) ms;
  if !kept < Array.length ms then begin
    let out = Array.make !kept m in
    let j = ref 0 in
    Array.iter
      (fun m' ->
        if m' != m then begin
          out.(!j) <- m';
          incr j
        end)
      ms;
    t.mappings <- out
  end;
  t.last_hit <- None
