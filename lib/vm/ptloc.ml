type t = { slots : int array; slot : int }

let make slots slot =
  assert (slot >= 0 && slot < Array.length slots);
  { slots; slot }

let get t = t.slots.(t.slot)
let set t pte = t.slots.(t.slot) <- pte

let same a b = a.slots == b.slots && a.slot = b.slot

(* Distinguished "no PTE" value, so hot paths can carry a Ptloc.t
   without [option] boxing. [get]/[set] on it raise. *)
let null = { slots = [||]; slot = -1 }
let is_null t = t.slot < 0
