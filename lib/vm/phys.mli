(** Physical memory: frame allocation and [vm_page] metadata.

    Each frame is a real 4 KiB [Bytes.t] plus the per-page metadata MemSnap
    needs: the "checkpoint in progress" flag (§3) and the reverse mappings
    used to find every page table referencing the frame.

    The frame table is a flat non-optional [page array] (with
    {!null_page} as the sentinel) and the reverse map is a small inline
    vector with O(1) swap-removal — the fault path allocates nothing
    beyond the frames themselves. *)

type page = {
  frame : int;
  data : Bytes.t;
  mutable ckpt_in_progress : bool;
  rmap : Ptloc.t Msnap_util.Fvec.t;
      (** Every PTE currently mapping this frame. Iteration order is a
          host-side artifact (swap-removal); use the [rmap_*] helpers. *)
  mutable owner : int;
      (** Thread id of the dirty-set owner, or [-1]. Used by MemSnap to
          detect property-③ violations in debug checks. *)
}

val null_page : page
(** Sentinel for flat frame tables: [frame = -1], empty data. Never
    returned by {!alloc}. *)

val is_null : page -> bool

type t

val create : unit -> t

val alloc : t -> page
(** Allocate a zeroed frame, charging [Costs.page_alloc]. *)

val free : t -> page -> unit
(** Return a frame to the free list. The caller must have removed it from
    every page table ([rmap] must be empty). *)

val get : t -> int -> page
(** Frame metadata by frame number. *)

val copy_page : t -> page -> page
(** Allocate a frame and copy [src]'s contents into it (the COW fault
    body), charging [Costs.page_copy]. *)

val live_frames : t -> int
val peak_frames : t -> int

val dispose : t -> unit
(** End-of-run teardown: return every frame's backing buffer to
    [Msnap_util.Pool]. The physical map must never be used again. *)

val rmap_add : page -> Ptloc.t -> unit

val rmap_remove : page -> Ptloc.t -> unit
(** Remove the entry for [loc] (physical PTE identity) by swapping the
    last entry into its slot: O(1), order not preserved. *)

val rmap_is_empty : page -> bool
val rmap_length : page -> int
val rmap_iter : (Ptloc.t -> unit) -> page -> unit
val rmap_clear : page -> unit
val rmap_get : page -> int -> Ptloc.t
