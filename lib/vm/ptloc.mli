(** Stable location of a page-table entry.

    MemSnap's trace buffer records "the physical address of the PTE" during
    the page fault so protection can later be reset without re-walking the
    page table from the root. In the simulator a PTE lives in a leaf-node
    slot array; the pair (array, index) is exactly as stable as the paper's
    physical address ("the OS is guaranteed not to move the PTE entry"). *)

type t = private { slots : int array; slot : int }

val make : int array -> int -> t
val get : t -> Pte.t
val set : t -> Pte.t -> unit

val same : t -> t -> bool
(** Same slot in the same leaf node (physical identity of the PTE). *)

val null : t
(** Distinguished "no PTE" sentinel: lets hot paths carry a [t] without
    [option] boxing. [get]/[set] on it raise. *)

val is_null : t -> bool
