(** Address spaces: mappings, the access path, and the write-fault hook.

    This is the simulator's equivalent of the FreeBSD [vm_map] plus the
    fault handler MemSnap extends. Every byte the databases read or write
    flows through {!write} / {!read}, which translate through the TLB and
    page tables, take minor faults on read-protected pages, and dispatch to
    the mapping's registered fault handler — the hook MemSnap uses for
    per-thread dirty-set tracking and checkpoint-in-progress COW. *)

type t

type frame_source =
  [ `Zero  (** anonymous zero-fill *)
  | `Bytes of Bytes.t  (** initial contents (copied) *)
  | `Slice of Msnap_util.Slice.t
    (** initial contents (copied from the slice — same charge as [`Bytes]
        of that length, without the caller's staging allocation) *)
  | `Page of Phys.page  (** map an existing frame (shared memory) *) ]

type pager = { page_in : int -> frame_source }
(** [page_in rel_page] supplies the initial frame for page [rel_page] of
    the mapping. *)

type mapping

type fault = {
  f_aspace : t;
  f_mapping : mapping;
  f_vpn : int;
  f_loc : Ptloc.t;
  f_page : Phys.page;
}
(** A minor write fault on a present but read-protected page. *)

val create : ?name:string -> Phys.t -> t

val name : t -> string
val phys : t -> Phys.t
val page_table : t -> Ptable.t
val tlb : t -> Ptloc.t Tlb.t
(** The TLB caches the PTE location of each translation (once resolved)
    so a simulated hit also skips the host-side radix walk. *)

val map :
  t ->
  name:string ->
  va:int ->
  len:int ->
  ?writable:bool ->
  ?new_pages_writable:bool ->
  ?pager:pager ->
  ?on_write_fault:(fault -> unit) ->
  unit ->
  mapping
(** Install a mapping of [len] bytes at page-aligned [va].
    [new_pages_writable = false] (MemSnap's configuration) makes freshly
    paged-in PTEs read-only so the first store takes a tracking fault.
    Raises [Invalid_argument] on overlap or misalignment. *)

val unmap : t -> mapping -> unit
(** Remove the mapping, dropping PTEs and freeing frames whose last
    reference this was. *)

val set_write_fault_handler : mapping -> (fault -> unit) option -> unit

val mapping_name : mapping -> string
val mapping_base : mapping -> int
val mapping_len : mapping -> int
val mapping_of_fault_rel_page : fault -> int
(** Page index of the fault within its mapping. *)

val find_mapping : t -> name:string -> mapping option

(** {2 The access path} *)

val write : t -> va:int -> Bytes.t -> unit
(** Store bytes, faulting as needed, charging TLB/fault/memcpy costs. *)

val read : t -> va:int -> len:int -> Bytes.t

val write_sub : t -> va:int -> Bytes.t -> pos:int -> len:int -> unit
val read_into : t -> va:int -> Bytes.t -> pos:int -> len:int -> unit

val page_for_write : t -> va:int -> Phys.page * Ptloc.t
(** Translate for writing: page-in and/or fault until the PTE is writable.
    Used by the access path and by tests. *)

val page_for_read : t -> va:int -> Phys.page

(** {2 Kernel-side protection operations} *)

val protect_page : t -> vpn:int -> unit
(** Clear the PTE writable bit (direct slot write; the caller charges
    cost and performs shootdowns). *)

val shootdown : t -> int list -> unit
(** TLB shootdown for the given VPNs (cost charged inside). *)

val pages_of_range : t -> va:int -> len:int -> (int * Phys.page) list
(** Present pages in the range as [(vpn, page)]. No cost charged. *)
