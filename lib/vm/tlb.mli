(** Translation lookaside buffer model.

    Tracks which translations are cached so that access costs and
    shootdowns are charged faithfully: a hit costs nothing extra, a miss
    charges a page-table walk, and protection changes must invalidate —
    selectively below [Costs.tlb_flush_threshold] pages, a full flush
    above, matching MemSnap's policy in §3.

    Each cached translation carries a host-side payload of type ['a]: the
    address space stores the {!Ptloc.t} of the PTE so a simulated TLB hit
    also skips the host-side radix-tree walk. The payload changes nothing
    simulated — hit/miss accounting and eviction are payload-blind.

    The implementation is flat (open-addressed int table + FIFO ring):
    lookup, insertion and eviction allocate nothing in steady state. On a
    miss the payload slot is the [absent] sentinel supplied at creation,
    so no [option] boxing happens on the hot path. *)

type 'a t

val create : ?entries:int -> absent:'a -> unit -> 'a t
(** Default capacity 1536 (Skylake-SP L2 STLB). FIFO replacement.
    [absent] is the payload sentinel returned by {!hit_payload} after a
    missed {!probe}. *)

val probe : 'a t -> int -> bool
(** [probe t vpn] returns [true] and counts a hit if the translation is
    cached (its payload is then available via {!hit_payload}), else
    counts a miss and returns [false]. Never inserts; the caller charges
    walk cost and calls {!insert} once it has the payload. *)

val hit_payload : 'a t -> 'a
(** Payload stashed by the immediately preceding {!probe} on this TLB
    ([absent] if it missed). Only valid until the next operation. *)

val insert : 'a t -> int -> 'a -> unit
(** Cache a translation, evicting FIFO when full. Inserting must happen
    at access time (before any page-in the access triggers), exactly as
    hardware installs the entry during the walk — a page-in can shoot
    the fresh entry down again, and later accesses must see that. *)

val update : 'a t -> int -> 'a -> unit
(** [update t vpn payload] replaces the payload iff [vpn] is still
    cached; a no-op otherwise. No eviction, no hit/miss accounting. *)

val access : 'a t -> int -> bool
(** [access t vpn] returns [true] on hit; on miss, inserts the entry
    with the [absent] payload (evicting FIFO) and returns [false].
    Convenience for payload-free TLBs; equivalent to {!probe} followed
    by {!insert} on miss. *)

val invalidate_page : 'a t -> int -> unit
val flush : 'a t -> unit

val shootdown : ?n:int -> 'a t -> int list -> unit
(** Invalidate the given pages, charging IPI + per-page costs, or a full
    flush if the list exceeds the threshold. [n], when given, must equal
    [List.length vpns] — it lets a caller that already knows the length
    avoid a second traversal. *)

val hits : 'a t -> int
val misses : 'a t -> int
