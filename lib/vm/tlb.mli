(** Translation lookaside buffer model.

    Tracks which translations are cached so that access costs and
    shootdowns are charged faithfully: a hit costs nothing extra, a miss
    charges a page-table walk, and protection changes must invalidate —
    selectively below [Costs.tlb_flush_threshold] pages, a full flush
    above, matching MemSnap's policy in §3.

    Each cached translation carries a host-side payload of type ['a]: the
    address space stores the {!Ptloc.t} of the PTE so a simulated TLB hit
    also skips the host-side radix-tree walk. The payload changes nothing
    simulated — hit/miss accounting and eviction are payload-blind. *)

type 'a t

val create : ?entries:int -> unit -> 'a t
(** Default capacity 1536 (Skylake-SP L2 STLB). FIFO replacement. *)

val find : 'a t -> int -> 'a option
(** [find t vpn] returns the cached payload on hit (counting a hit) or
    [None] (counting a miss). Never inserts; the caller charges walk cost
    and calls {!insert} once it has the payload. *)

val insert : 'a t -> int -> 'a -> unit
(** Cache a translation, evicting FIFO when full. Inserting must happen
    at access time (before any page-in the access triggers), exactly as
    hardware installs the entry during the walk — a page-in can shoot
    the fresh entry down again, and later accesses must see that. *)

val update : 'a t -> int -> 'a -> unit
(** [update t vpn payload] replaces the payload iff [vpn] is still
    cached; a no-op otherwise. No eviction, no hit/miss accounting. *)

val access : unit t -> int -> bool
(** [access t vpn] returns [true] on hit; on miss, inserts the entry
    (evicting FIFO) and returns [false]. Convenience for payload-free
    TLBs; equivalent to {!find} followed by {!insert} on miss. *)

val invalidate_page : 'a t -> int -> unit
val flush : 'a t -> unit

val shootdown : 'a t -> int list -> unit
(** Invalidate the given pages, charging IPI + per-page costs, or a full
    flush if the list exceeds the threshold. *)

val hits : 'a t -> int
val misses : 'a t -> int
