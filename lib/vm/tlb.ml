module Costs = Msnap_sim.Costs
module Sched = Msnap_sim.Sched
module Itab = Msnap_util.Itab
module Iring = Msnap_util.Iring

(* Flat TLB: an open-addressed int table for the cached translations
   plus a ring buffer for the FIFO replacement order. Lookup, insertion
   and eviction allocate nothing in steady state; hit/miss counts and
   eviction decisions are bit-for-bit those of the previous
   Hashtbl+Queue implementation (they are simulated values).

   FIFO subtleties preserved exactly: [invalidate_page] removes only
   from the table, so the ring accumulates stale vpns (and duplicates
   when a page is re-inserted); an insert at capacity pops exactly one
   ring head whether or not it is stale, so the table can transiently
   exceed capacity — just as the Queue-based version behaved. *)

type 'a t = {
  tab : 'a Itab.t;
  fifo : Iring.t;
  capacity : int;
  absent : 'a;
  mutable last : 'a; (* payload of the last probe hit, or [absent] *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(entries = 1536) ~absent () =
  {
    tab = Itab.create ~initial:entries ~absent ();
    fifo = Iring.create ~initial:entries ();
    capacity = entries;
    absent;
    last = absent;
    hits = 0;
    misses = 0;
  }

(* [probe t vpn] counts a hit or a miss and stashes the hit's payload
   for {!hit_payload}. Allocation-free: the probe/payload split replaces
   the old [find : _ -> _ option], whose [Some] boxed every hit. *)
let probe t vpn =
  let s = Itab.slot t.tab vpn in
  if s >= 0 then begin
    t.hits <- t.hits + 1;
    t.last <- Itab.slot_value t.tab s;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    t.last <- t.absent;
    false
  end

let hit_payload t = t.last

let insert t vpn payload =
  if not (Itab.mem t.tab vpn) then begin
    if Itab.length t.tab >= t.capacity then begin
      (* Pop exactly one FIFO head; it may be stale (already
         invalidated), in which case nothing leaves the table. *)
      let victim = Iring.pop t.fifo in
      if victim >= 0 then Itab.remove t.tab victim
    end;
    Iring.push t.fifo vpn
  end;
  Itab.set t.tab vpn payload

let update t vpn payload =
  let s = Itab.slot t.tab vpn in
  if s >= 0 then Itab.set_slot t.tab s payload

let access t vpn =
  if probe t vpn then true
  else begin
    insert t vpn t.absent;
    false
  end

let invalidate_page t vpn = Itab.remove t.tab vpn

let flush t =
  Itab.clear t.tab;
  Iring.clear t.fifo

let shootdown ?n t vpns =
  let n = match n with Some n -> n | None -> List.length vpns in
  if n = 0 then ()
  else if n <= Costs.tlb_flush_threshold then begin
    Sched.cpu (Costs.tlb_shootdown + (n * Costs.tlb_invalidate_page));
    List.iter (invalidate_page t) vpns
  end
  else begin
    Sched.cpu (Costs.tlb_shootdown + Costs.tlb_flush_all);
    flush t
  end

let hits t = t.hits
let misses t = t.misses
