module Costs = Msnap_sim.Costs
module Sched = Msnap_sim.Sched

type 'a t = {
  entries : (int, 'a) Hashtbl.t;
  fifo : int Queue.t;
  capacity : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(entries = 1536) () =
  { entries = Hashtbl.create entries; fifo = Queue.create (); capacity = entries;
    hits = 0; misses = 0 }

let find t vpn =
  match Hashtbl.find_opt t.entries vpn with
  | Some _ as hit ->
    t.hits <- t.hits + 1;
    hit
  | None ->
    t.misses <- t.misses + 1;
    None

let insert t vpn payload =
  if not (Hashtbl.mem t.entries vpn) then begin
    if Hashtbl.length t.entries >= t.capacity then begin
      match Queue.take_opt t.fifo with
      | Some victim -> Hashtbl.remove t.entries victim
      | None -> ()
    end;
    Queue.add vpn t.fifo
  end;
  Hashtbl.replace t.entries vpn payload

let update t vpn payload =
  if Hashtbl.mem t.entries vpn then Hashtbl.replace t.entries vpn payload

let access t vpn =
  match find t vpn with
  | Some () -> true
  | None ->
    insert t vpn ();
    false

let invalidate_page t vpn = Hashtbl.remove t.entries vpn

let flush t =
  Hashtbl.reset t.entries;
  Queue.clear t.fifo

let shootdown t vpns =
  let n = List.length vpns in
  if n = 0 then ()
  else if n <= Costs.tlb_flush_threshold then begin
    Sched.cpu (Costs.tlb_shootdown + (n * Costs.tlb_invalidate_page));
    List.iter (invalidate_page t) vpns
  end
  else begin
    Sched.cpu (Costs.tlb_shootdown + Costs.tlb_flush_all);
    flush t
  end

let hits t = t.hits
let misses t = t.misses
