module Costs = Msnap_sim.Costs
module Sched = Msnap_sim.Sched
module Fvec = Msnap_util.Fvec
module Pool = Msnap_util.Pool

type page = {
  frame : int;
  data : Bytes.t;
  mutable ckpt_in_progress : bool;
  rmap : Ptloc.t Fvec.t;
  mutable owner : int;
}

(* Distinguished sentinel so frame tables can be plain [page array]
   instead of [page option array]. Never handed out by [alloc]. *)
let null_page =
  { frame = -1; data = Bytes.empty; ckpt_in_progress = false;
    rmap = Fvec.create (); owner = -1 }

let is_null p = p.frame < 0

type t = {
  mutable pages : page array; (* [null_page] beyond [next] *)
  mutable next : int;
  free_frames : int Fvec.t; (* LIFO, like the old list-based free list *)
  mutable live : int;
  mutable peak : int;
}

let create () =
  { pages = Array.make 1024 null_page; next = 0; free_frames = Fvec.create ();
    live = 0; peak = 0 }

let bump_live t =
  t.live <- t.live + 1;
  if t.live > t.peak then t.peak <- t.live

let alloc t =
  Sched.cpu Costs.page_alloc;
  if not (Fvec.is_empty t.free_frames) then begin
    let p = t.pages.(Fvec.pop t.free_frames) in
    Bytes.fill p.data 0 Addr.page_size '\000';
    p.ckpt_in_progress <- false;
    p.owner <- -1;
    bump_live t;
    p
  end
  else begin
    let frame = t.next in
    t.next <- t.next + 1;
    if frame >= Array.length t.pages then begin
      let np = Array.make (2 * Array.length t.pages) null_page in
      Array.blit t.pages 0 np 0 (Array.length t.pages);
      t.pages <- np
    end;
    let p =
      {
        frame;
        (* Pooled: a fresh frame reuses a buffer recycled by an earlier
           run's [dispose] when one is parked. Host-only — the
           [page_alloc] charge above is identical either way. *)
        data = Pool.alloc_zeroed Addr.page_size;
        ckpt_in_progress = false;
        rmap = Fvec.create ();
        owner = -1;
      }
    in
    t.pages.(frame) <- p;
    bump_live t;
    p
  end

let free t p =
  assert (Fvec.is_empty p.rmap);
  p.ckpt_in_progress <- false;
  p.owner <- -1;
  Fvec.push t.free_frames p.frame;
  t.live <- t.live - 1

let get t frame =
  if frame < 0 || frame >= t.next then
    invalid_arg (Printf.sprintf "Phys.get: frame %d never allocated" frame)
  else t.pages.(frame)

let copy_page t src =
  let dst = alloc t in
  Sched.cpu Costs.page_copy;
  Bytes.blit src.data 0 dst.data 0 Addr.page_size;
  dst

let live_frames t = t.live
let peak_frames t = t.peak

(* End-of-run teardown: every frame's backing buffer goes back to the
   buffer pool. The physical map must never be touched again. *)
let dispose t =
  for i = 0 to t.next - 1 do
    let p = t.pages.(i) in
    if not (is_null p) then begin
      t.pages.(i) <- null_page;
      Pool.recycle p.data
    end
  done;
  t.next <- 0;
  Fvec.clear t.free_frames;
  t.live <- 0

let rmap_add page loc = Fvec.push page.rmap loc

(* O(1) swap-removal of the (unique) entry for [loc]. The old list
   version filtered order-preservingly; rmap iteration order is
   host-side only (every per-entry charge is a fixed per-PTE cost), so
   the order change is not observable in simulated values. *)
let rmap_remove page loc =
  let n = Fvec.length page.rmap in
  let rec go i =
    if i < n then
      if Ptloc.same (Fvec.get page.rmap i) loc then Fvec.swap_remove page.rmap i
      else go (i + 1)
  in
  go 0

let rmap_is_empty page = Fvec.is_empty page.rmap
let rmap_length page = Fvec.length page.rmap
let rmap_iter f page = Fvec.iter f page.rmap
let rmap_clear page = Fvec.clear page.rmap
let rmap_get page i = Fvec.get page.rmap i
