let bs = Bufmgr.block_size
let slot_base = 8
let tuple_header = 10

module Sync = Msnap_sim.Sync
module Sched = Msnap_sim.Sched

(* Per-thread scratch for the 2/4-byte header accesses: storage ops are
   scheduling points, so one shared buffer could be clobbered by another
   green thread between fill and consume — but within a thread the ops
   are sequential, so a per-tid pair of buffers makes every header
   read/write allocation-free in steady state. *)
type scratch = { s2 : Bytes.t; s4 : Bytes.t }

type t = {
  st : Storage.t;
  rel : string;
  mutable hblocks : int; (* blocks in use; block [hblocks-1] is the tail *)
  insert_lock : Sync.Mutex.t;
      (* Slot allocation spans several storage operations (each a
         scheduling point); inserts into one relation serialize the way
         PostgreSQL's buffer content locks do. *)
  scratches : (int, scratch) Hashtbl.t; (* Sched tid -> scratch *)
}

type tid = int * int

let create st ~rel =
  { st; rel; hblocks = 0; insert_lock = Sync.Mutex.create ();
    scratches = Hashtbl.create 8 }

let scratch_for t =
  let tid = Sched.tid_int (Sched.self ()) in
  match Hashtbl.find t.scratches tid with
  | s -> s
  | exception Not_found ->
    let s = { s2 = Bytes.create 2; s4 = Bytes.create 4 } in
    Hashtbl.replace t.scratches tid s;
    s

let read_u16 t ~blockno ~off =
  let b = (scratch_for t).s2 in
  Storage.read_into t.st ~rel:t.rel ~blockno ~off b ~pos:0 ~len:2;
  Bytes.get_uint16_le b 0

let read_u32 t ~blockno ~off =
  let b = (scratch_for t).s4 in
  Storage.read_into t.st ~rel:t.rel ~blockno ~off b ~pos:0 ~len:4;
  Int32.to_int (Bytes.get_int32_le b 0) land 0xffffffff

let write_u16 t ~blockno ~off v =
  let b = (scratch_for t).s2 in
  Bytes.set_uint16_le b 0 v;
  Storage.write t.st ~rel:t.rel ~blockno ~off b

let write_u32 t ~blockno ~off v =
  let b = (scratch_for t).s4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  Storage.write t.st ~rel:t.rel ~blockno ~off b

let block_meta t blockno =
  let nitems = read_u16 t ~blockno ~off:0 in
  let content = read_u16 t ~blockno ~off:2 in
  let content = if nitems = 0 && content = 0 then bs else content in
  (nitems, content)

let free_space ~nitems ~content = content - (slot_base + (2 * nitems))

(* Rebuild the volatile block count from storage after a crash: blocks
   fill front to back and a block becomes visible only once its [nitems]
   header is written, so the population is the longest prefix of blocks
   with [nitems > 0]. *)
let recover st ~rel =
  let t = create st ~rel in
  let n = ref 0 in
  let continue = ref true in
  while !continue && !n < Storage.rel_block_limit do
    if read_u16 t ~blockno:!n ~off:0 > 0 then incr n else continue := false
  done;
  t.hblocks <- !n;
  t

let insert t ~xmin data =
  let need = tuple_header + String.length data in
  if need + 2 > bs - slot_base then invalid_arg "Heap.insert: tuple too large";
  Sync.Mutex.with_lock t.insert_lock @@ fun () ->
  let blockno =
    if t.hblocks = 0 then begin
      t.hblocks <- 1;
      0
    end
    else begin
      let tail = t.hblocks - 1 in
      let nitems, content = block_meta t tail in
      if free_space ~nitems ~content >= need + 2 then tail
      else begin
        t.hblocks <- t.hblocks + 1;
        t.hblocks - 1
      end
    end
  in
  let nitems, content = block_meta t blockno in
  let off = content - need in
  let slot = nitems in
  (* Tuple body, then slot pointer, then header — three small writes, the
     realistic dirtying pattern for WAL and page tracking. *)
  let tuple = Bytes.create need in
  Bytes.set_int32_le tuple 0 (Int32.of_int xmin);
  Bytes.set_int32_le tuple 4 0l;
  Bytes.set_uint16_le tuple 8 (String.length data);
  Bytes.blit_string data 0 tuple tuple_header (String.length data);
  Storage.write t.st ~rel:t.rel ~blockno ~off tuple;
  write_u16 t ~blockno ~off:(slot_base + (2 * slot)) off;
  write_u16 t ~blockno ~off:0 (nitems + 1);
  write_u16 t ~blockno ~off:2 off;
  (blockno, slot)

let tuple_off t (blockno, slot) =
  let nitems = read_u16 t ~blockno ~off:0 in
  if blockno >= t.hblocks || slot >= nitems then None
  else Some (read_u16 t ~blockno ~off:(slot_base + (2 * slot)))

let fetch t tid =
  match tuple_off t tid with
  | None -> None
  | Some off ->
    let blockno = fst tid in
    let xmin = read_u32 t ~blockno ~off in
    let xmax = read_u32 t ~blockno ~off:(off + 4) in
    let len = read_u16 t ~blockno ~off:(off + 8) in
    let data =
      (* The read result is a fresh unaliased buffer; claim it as the
         string instead of copying. *)
      Bytes.unsafe_to_string
        (Storage.read t.st ~rel:t.rel ~blockno ~off:(off + tuple_header) ~len)
    in
    Some (xmin, xmax, data)

let set_xmax t tid xmax =
  match tuple_off t tid with
  | None -> invalid_arg "Heap.set_xmax: bad tid"
  | Some off -> write_u32 t ~blockno:(fst tid) ~off:(off + 4) xmax

let nblocks t = t.hblocks

let iter_block t blockno f =
  if blockno < t.hblocks then begin
    let nitems = read_u16 t ~blockno ~off:0 in
    for slot = 0 to nitems - 1 do
      match fetch t (blockno, slot) with
      | Some (xmin, xmax, data) -> f (blockno, slot) xmin xmax data
      | None -> ()
    done
  end
