(** Crash redo for the buffered (classic WAL) storage variant. *)

val recover :
  Msnap_fs.Fs.t -> ?wal_checkpoint_bytes:int -> unit ->
  Storage.t * int
(** Replay the WAL's longest intact prefix over a fresh buffered
    storage; returns it with the number of records applied. The heap
    files' on-disk bytes are never trusted: every replayed block is
    rebased from its full-page image first. Raises
    [Storage.Redo_unsupported] on a log written by a mapped variant. *)

(** {2 Crash recovery ({!Msnap_faults})} *)

type recovered = {
  rec_storage : Storage.t;
  rec_heap : Heap.t;
  rec_fs : Msnap_fs.Fs.t;
}
(** A buffered storage rebuilt from a post-crash device by WAL replay,
    with the tracked relation's heap re-opened over it. *)

val recoverable :
  table:string -> ?wal_checkpoint_bytes:int -> unit ->
  (module Msnap_faults.Recoverable.S with type t = recovered)
(** The crash-recovery contract for the buffered variant: [recover]
    mounts the FFS volume ([Fs.Mount_error] becomes [Unmountable]) and
    runs {!recover}; [check] dumps the relation's live tuples as
    "key=value" rows and compares against the history's candidate
    steps. *)
