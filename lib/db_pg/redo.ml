(* Crash redo for the buffered (classic WAL) variant.

   After a crash the heap files on disk may hold anything from zeros to
   torn checkpoint writes; the WAL is authoritative. [recover] opens a
   fresh buffered storage over the recovered file system and replays the
   log's longest intact checksum-chained prefix: a record's full-page
   image (logged on the first touch of a block since the last
   checkpoint) rebases the block, the delta then reapplies the write —
   so whatever garbage the crash left in the heap file is overwritten
   before it is ever read. The WAL appender resumes at the end of the
   replayed prefix. *)

module Fs = Msnap_fs.Fs

let recover fs ?wal_checkpoint_bytes () =
  let st = Storage.ffs fs ?wal_checkpoint_bytes () in
  let wal = Fs.open_file fs Storage.wal_file_name in
  let pos = ref 0 in
  let ck = ref Storage.wal_cksum_seed in
  let stop = ref false in
  let applied = ref 0 in
  while not !stop do
    match Storage.wal_read_record fs wal ~off:!pos ~cksum:!ck with
    | None -> stop := true
    | Some r ->
      (match r.Storage.r_image with
      | Some img ->
        Storage.redo_apply st ~rel:r.r_rel ~blockno:r.r_blockno ~off:0 img
      | None -> ());
      Storage.redo_apply st ~rel:r.r_rel ~blockno:r.r_blockno ~off:r.r_off
        r.r_delta;
      pos := r.Storage.r_end;
      ck := r.Storage.r_cksum;
      incr applied
  done;
  Storage.redo_restore_wal st ~off:!pos ~cksum:!ck;
  (st, !applied)

(* --- crash recovery contract --- *)

type recovered = {
  rec_storage : Storage.t;
  rec_heap : Heap.t;
  rec_fs : Fs.t;
}

let recoverable ~table ?wal_checkpoint_bytes () =
  (module struct
    type t = recovered

    let label = "pg"

    let recover dev =
      let fs =
        try Fs.mount dev ~kind:Fs.Ffs
        with Fs.Mount_error msg ->
          raise (Msnap_faults.Recoverable.Unmountable msg)
      in
      let st, _applied = recover fs ?wal_checkpoint_bytes () in
      { rec_storage = st;
        rec_heap = Heap.recover st ~rel:table;
        rec_fs = fs }

    (* The recovered state is every live ([xmax = 0]) tuple of the
       tracked relation, decoded as the "key=value" rows the crash
       workloads insert. Replayed tuples all belong to WAL-durable
       transactions, so commit status needs no (volatile) clog. *)
    let check r history =
      let state = ref [] in
      for blockno = Heap.nblocks r.rec_heap - 1 downto 0 do
        Heap.iter_block r.rec_heap blockno (fun _tid _xmin xmax data ->
            if xmax = 0 then
              match String.index_opt data '=' with
              | Some i ->
                state :=
                  ( String.sub data 0 i,
                    String.sub data (i + 1) (String.length data - i - 1) )
                  :: !state
              | None ->
                Msnap_faults.Recoverable.fail
                  "pg: tuple in block %d is not a key=value row" blockno)
      done;
      Msnap_faults.Recoverable.check_state ~label history !state

    let dispose r = Fs.dispose r.rec_fs
  end : Msnap_faults.Recoverable.S with type t = recovered)
