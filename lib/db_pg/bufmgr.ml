module Sched = Msnap_sim.Sched
module Costs = Msnap_sim.Costs
module Fvec = Msnap_util.Fvec

let block_size = 8192

type smgr = {
  s_label : string;
  s_read : rel:string -> blockno:int -> Bytes.t;
  s_write : rel:string -> blockno:int -> Bytes.t -> unit;
  s_flush : rel:string -> unit;
}

type buf = {
  b_rel : string;
  b_blockno : int;
  b_data : Bytes.t;
  mutable b_dirty : bool;
  mutable b_usage : int;
}

type t = {
  smgr : smgr;
  buffers : (string * int, buf) Hashtbl.t;
  capacity : int;
  clock : (string * int) Fvec.t;
      (* crude sweep order: insertion, newest at the END (the old list
         kept newest at the head; the sweep below walks from the end so
         the visit order — and thus every eviction decision, which is a
         simulated value — is unchanged). Removal shifts in place
         instead of rebuilding the list. *)
}

let create ?(nbuffers = 2048) smgr =
  { smgr; buffers = Hashtbl.create nbuffers; capacity = nbuffers;
    clock = Fvec.create () }

let smgr_label t = t.smgr.s_label

let evict_one t =
  (* Clock sweep: decrement usage along the ring; evict the first zero.
     Walks newest-to-oldest (end-to-start), restarting up to twice when
     the ring is exhausted without an eviction — exactly the old
     list-based traversal. Removing index [i] shifts only already
     visited elements, so the downward walk is unaffected. *)
  let rec sweep passes i =
    if i < 0 then begin
      if passes < 2 then sweep (passes + 1) (Fvec.length t.clock - 1)
    end
    else begin
      let key = Fvec.get t.clock i in
      match Hashtbl.find t.buffers key with
      | exception Not_found ->
        Fvec.remove_at t.clock i;
        sweep passes (i - 1)
      | b ->
        if b.b_usage > 0 then begin
          b.b_usage <- b.b_usage - 1;
          sweep passes (i - 1)
        end
        else begin
          if b.b_dirty then begin
            t.smgr.s_write ~rel:b.b_rel ~blockno:b.b_blockno b.b_data;
            b.b_dirty <- false
          end;
          Hashtbl.remove t.buffers key;
          Fvec.remove_at t.clock i
        end
    end
  in
  sweep 0 (Fvec.length t.clock - 1)

let read_buffer t ~rel ~blockno =
  Sched.cpu Costs.buffer_cache_lookup;
  let key = (rel, blockno) in
  match Hashtbl.find t.buffers key with
  | b ->
    b.b_usage <- min 5 (b.b_usage + 1);
    b.b_data
  | exception Not_found ->
    if Hashtbl.length t.buffers >= t.capacity then evict_one t;
    let data = t.smgr.s_read ~rel ~blockno in
    let b = { b_rel = rel; b_blockno = blockno; b_data = data; b_dirty = false; b_usage = 1 } in
    Hashtbl.replace t.buffers key b;
    Fvec.push t.clock key;
    b.b_data

let mark_dirty t ~rel ~blockno =
  match Hashtbl.find t.buffers (rel, blockno) with
  | b -> b.b_dirty <- true
  | exception Not_found -> ()

let flush_rel t ~rel =
  Hashtbl.iter
    (fun _ b ->
      if b.b_dirty && b.b_rel = rel then begin
        t.smgr.s_write ~rel:b.b_rel ~blockno:b.b_blockno b.b_data;
        b.b_dirty <- false
      end)
    t.buffers;
  t.smgr.s_flush ~rel

let flush_all t =
  let rels = Hashtbl.create 8 in
  Hashtbl.iter (fun (rel, _) _ -> Hashtbl.replace rels rel ()) t.buffers;
  Hashtbl.iter (fun rel () -> flush_rel t ~rel) rels

let dirty_count t =
  Hashtbl.fold (fun _ b acc -> if b.b_dirty then acc + 1 else acc) t.buffers 0

let resident t = Hashtbl.length t.buffers
