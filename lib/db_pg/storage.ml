module Fs = Msnap_fs.Fs
module Aspace = Msnap_vm.Aspace
module Msnap = Msnap_core.Msnap
module Sched = Msnap_sim.Sched
module Costs = Msnap_sim.Costs
module Metrics = Msnap_sim.Metrics
module Probe = Msnap_sim.Probe
module Size = Msnap_util.Size

module Wire = Msnap_util.Wire

let rel_block_limit = 4096 (* 32 MiB per relation *)
let bs = Bufmgr.block_size
let wal_record_header = 64
let mmap_arena = 0x6000 lsl 32

(* WAL record layout: u32 magic, u32 flags (bit 0 = carries a full-page
   image, bit 1 = the image bytes are real — the buffered variant has
   the post-write block in hand; the mapped variants log a zero image
   and are not redo-recoverable), u32 blockno, u32 off, u32 len, u16
   relation-name length, the name, and at offset 56 a u64 checksum over
   header[0,56) plus payloads, chained from the previous record — redo
   replays the longest intact prefix. Then [len] delta bytes and, with
   bit 0, [bs] image bytes. *)
let wal_magic = 0x5750534D (* "MSPW" *)
let wal_cksum_seed = 0x70675F77
let wal_flag_image = 1
let wal_flag_real = 2
let wal_name_max = 34
let wal_file_name = "pg_wal"

type wal = {
  w_fs : Fs.t;
  w_file : Fs.file;
  mutable w_off : int;
  mutable w_cksum : int; (* chain state after the last appended record *)
  (* Blocks whose full image was already logged since the last
     checkpoint: the full_page_writes bookkeeping. Nested rel -> blockno
     tables so the per-append membership test builds no tuple key; only
     reset/mem/replace are used, so iteration order never matters. *)
  fpw : (string, (int, unit) Hashtbl.t) Hashtbl.t;
  ckpt_bytes : int;
  mutable w_scratch : Bytes.t; (* staging for one record *)
}

let wal_create fs ckpt_bytes =
  { w_fs = fs; w_file = Fs.open_file fs wal_file_name; w_off = 0;
    w_cksum = wal_cksum_seed; fpw = Hashtbl.create 16; ckpt_bytes;
    w_scratch = Bytes.empty }

(* Append one record for a write of [data] at [(rel, blockno, off)].
   [block] is the whole block after the write (the full-page-write image
   source) when the variant has it in a buffer; record sizes are
   identical either way, so the cost model cannot tell. *)
let wal_append w ~rel ~blockno ~off ~data ~block =
  let len = Bytes.length data in
  let blocks =
    match Hashtbl.find w.fpw rel with
    | blocks -> blocks
    | exception Not_found ->
      let blocks = Hashtbl.create 256 in
      Hashtbl.replace w.fpw rel blocks;
      blocks
  in
  let image =
    if Hashtbl.mem blocks blockno then 0
    else begin
      Hashtbl.replace blocks blockno ();
      bs (* first touch since checkpoint: log the whole block *)
    end
  in
  let rec_len = wal_record_header + len + image in
  if Bytes.length w.w_scratch < rec_len then
    w.w_scratch <- Bytes.make rec_len '\000';
  let buf = w.w_scratch in
  Bytes.fill buf 0 wal_record_header '\000';
  let name_len = String.length rel in
  if name_len > wal_name_max then
    invalid_arg ("Storage: relation name too long for WAL: " ^ rel);
  let flags =
    (if image > 0 then wal_flag_image else 0)
    lor (match block with Some _ -> wal_flag_real | None -> 0)
  in
  Wire.set_u32 buf 0 wal_magic;
  Wire.set_u32 buf 4 flags;
  Wire.set_u32 buf 8 blockno;
  Wire.set_u32 buf 12 off;
  Wire.set_u32 buf 16 len;
  Wire.set_u16 buf 20 name_len;
  Bytes.blit_string rel 0 buf 22 name_len;
  Bytes.blit data 0 buf wal_record_header len;
  if image > 0 then begin
    match block with
    | Some b -> Bytes.blit b 0 buf (wal_record_header + len) bs
    | None -> Bytes.fill buf (wal_record_header + len) bs '\000'
  end;
  let ck =
    Wire.checksum buf ~pos:wal_record_header ~len:(rec_len - wal_record_header)
      ~init:(Wire.checksum buf ~pos:0 ~len:56 ~init:w.w_cksum)
  in
  Wire.set_u64 buf 56 ck;
  w.w_cksum <- ck;
  let t0 = Metrics.timed_begin () in
  Fs.write_sub w.w_fs w.w_file ~off:w.w_off buf ~pos:0 ~len:rec_len;
  Metrics.timed_end Probe.db_write t0;
  w.w_off <- w.w_off + rec_len

let wal_commit w =
  Metrics.timed Probe.db_fsync (fun () -> Fs.fdatasync w.w_fs w.w_file)

let wal_reset_after_checkpoint w =
  Hashtbl.reset w.fpw;
  Fs.truncate w.w_fs w.w_file 0;
  w.w_off <- 0;
  w.w_cksum <- wal_cksum_seed

type mapped_state = {
  m_fs : Fs.t;
  m_aspace : Aspace.t;
  m_wal : wal;
  m_rels : (string, int * Fs.file) Hashtbl.t; (* rel -> (va, file) *)
  mutable next_va : int;
  buffer_copies : bool; (* ffs-mmap pins/copies through buffer pages *)
}

type region_state = {
  k : Msnap.t;
  create_lock : Msnap_sim.Sync.Mutex.t;
  rcache : (string, Msnap.md) Hashtbl.t;
      (* rel -> open region, so the per-op descriptor lookup is one
         string-keyed find instead of an option-boxing [region_by_name] *)
}

type variant =
  | Buffered of { buf : Bufmgr.t; wal : wal }
  | Mapped of mapped_state
  | Region of region_state

type t = { v : variant; vlabel : string }

let label t = t.vlabel

let file_smgr fs =
  (* rel -> file memo: spares the "pg/" ^ rel concat and directory
     lookup per storage-manager call. Relations are never removed. *)
  let files = Hashtbl.create 8 in
  let file_of rel =
    match Hashtbl.find files rel with
    | f -> f
    | exception Not_found ->
      let f = Fs.open_file fs ("pg/" ^ rel) in
      Hashtbl.replace files rel f;
      f
  in
  {
    Bufmgr.s_label = "file";
    s_read =
      (fun ~rel ~blockno ->
        let f = file_of rel in
        if (blockno + 1) * bs <= Fs.size fs f then
          Metrics.timed Probe.db_read (fun () -> Fs.read fs f ~off:(blockno * bs) ~len:bs)
        else Bytes.make bs '\000');
    s_write =
      (fun ~rel ~blockno b ->
        let f = file_of rel in
        Metrics.timed Probe.db_write (fun () -> Fs.write fs f ~off:(blockno * bs) b));
    s_flush =
      (fun ~rel ->
        let f = file_of rel in
        Metrics.timed Probe.db_fsync (fun () -> Fs.fsync fs f));
  }

let ffs fs ?(wal_checkpoint_bytes = Size.mib 2) () =
  { v = Buffered { buf = Bufmgr.create (file_smgr fs); wal = wal_create fs wal_checkpoint_bytes };
    vlabel = "ffs" }

let mapped fs aspace ~buffer_copies ~label ~wal_checkpoint_bytes =
  { v =
      Mapped
        { m_fs = fs; m_aspace = aspace; m_wal = wal_create fs wal_checkpoint_bytes;
          m_rels = Hashtbl.create 8; next_va = mmap_arena; buffer_copies };
    vlabel = label }

let ffs_mmap fs aspace ?(wal_checkpoint_bytes = Size.mib 2) () =
  mapped fs aspace ~buffer_copies:true ~label:"ffs-mmap" ~wal_checkpoint_bytes

let ffs_mmap_bufdirect fs aspace ?(wal_checkpoint_bytes = Size.mib 2) () =
  mapped fs aspace ~buffer_copies:false ~label:"ffs-mmap-bd" ~wal_checkpoint_bytes

let memsnap k =
  (* PostgreSQL's MVCC lets one transaction flush pages carrying another's
     uncommitted appended tuples (§7.3 properties ② and ③), so strict
     per-thread exclusivity checking is off for this integration. *)
  Msnap.set_strict k false;
  { v =
      Region
        { k; create_lock = Msnap_sim.Sync.Mutex.create ();
          rcache = Hashtbl.create 8 };
    vlabel = "memsnap" }

(* Fixed mapping address of a relation in the mmap variants; the file is
   mapped on first touch. *)
let rel_va m ~rel =
  match Hashtbl.find m.m_rels rel with
  | va, _ -> va
  | exception Not_found ->
    let f = Fs.open_file m.m_fs ("pg/" ^ rel) in
    let va = m.next_va in
    m.next_va <- va + (rel_block_limit * bs);
    ignore (Fs.mmap m.m_fs f m.m_aspace ~va ~len:(rel_block_limit * bs));
    Hashtbl.replace m.m_rels rel (va, f);
    va

let region_of rs ~rel =
  match Hashtbl.find rs.rcache rel with
  | md -> md
  | exception Not_found ->
    let md =
      match Msnap.region_by_name rs.k ("pg/" ^ rel) with
      | Some md -> md
      | None ->
        (* Region creation allocates the fixed arena address and runs
           store IO; serialize concurrent first-touches of the same
           relation. *)
        Msnap_sim.Sync.Mutex.with_lock rs.create_lock (fun () ->
            match Msnap.region_by_name rs.k ("pg/" ^ rel) with
            | Some md -> md
            | None ->
              Msnap.open_region rs.k ~name:("pg/" ^ rel)
                ~len:(rel_block_limit * bs) ())
    in
    Hashtbl.replace rs.rcache rel md;
    md

let check_block blockno =
  if blockno < 0 || blockno >= rel_block_limit then
    invalid_arg "Storage: block out of range"

let read t ~rel ~blockno ~off ~len =
  check_block blockno;
  match t.v with
  | Buffered { buf; _ } ->
    let b = Bufmgr.read_buffer buf ~rel ~blockno in
    Sched.cpu (Costs.memcpy len);
    Bytes.sub b off len
  | Mapped m ->
    let va = rel_va m ~rel in
    Aspace.read m.m_aspace ~va:(va + (blockno * bs) + off) ~len
  | Region rs ->
    let md = region_of rs ~rel in
    Msnap.read rs.k md ~off:((blockno * bs) + off) ~len

(* [read] into a caller-owned buffer: identical charges, no allocation.
   Lets the heap's 2/4-byte header reads reuse a per-thread scratch. *)
let read_into t ~rel ~blockno ~off buf ~pos ~len =
  check_block blockno;
  match t.v with
  | Buffered { buf = bm; _ } ->
    let b = Bufmgr.read_buffer bm ~rel ~blockno in
    Sched.cpu (Costs.memcpy len);
    Bytes.blit b off buf pos len
  | Mapped m ->
    let va = rel_va m ~rel in
    Aspace.read_into m.m_aspace ~va:(va + (blockno * bs) + off) buf ~pos ~len
  | Region rs ->
    let md = region_of rs ~rel in
    Msnap.read_into rs.k md ~off:((blockno * bs) + off) buf ~pos ~len

let write t ~rel ~blockno ~off data =
  check_block blockno;
  let len = Bytes.length data in
  match t.v with
  | Buffered { buf; wal } ->
    let b = Bufmgr.read_buffer buf ~rel ~blockno in
    Sched.cpu (Costs.memcpy len);
    Bytes.blit data 0 b off len;
    Bufmgr.mark_dirty buf ~rel ~blockno;
    wal_append wal ~rel ~blockno ~off ~data ~block:(Some b)
  | Mapped m ->
    let va = rel_va m ~rel in
    if m.buffer_copies then
      (* ffs-mmap: the write is staged through a buffer page first. *)
      Sched.cpu (Costs.buffer_cache_lookup + Costs.memcpy len);
    Aspace.write m.m_aspace ~va:(va + (blockno * bs) + off) data;
    wal_append m.m_wal ~rel ~blockno ~off ~data ~block:None
  | Region rs ->
    let md = region_of rs ~rel in
    Msnap.write rs.k md ~off:((blockno * bs) + off) data

let commit t =
  match t.v with
  | Buffered { wal; _ } -> wal_commit wal
  | Mapped m -> wal_commit m.m_wal
  | Region { k; _ } ->
    Metrics.timed Probe.db_memsnap (fun () -> ignore (Msnap.persist k ()))

let checkpoint_tick t =
  match t.v with
  | Buffered { buf; wal } ->
    if wal.w_off >= wal.ckpt_bytes then begin
      Metrics.incr Probe.db_pg_checkpoint;
      Bufmgr.flush_all buf;
      wal_commit wal;
      wal_reset_after_checkpoint wal
    end
  | Mapped m ->
    if m.m_wal.w_off >= m.m_wal.ckpt_bytes then begin
      Metrics.incr Probe.db_pg_checkpoint;
      Hashtbl.iter (fun _ (_, f) -> Fs.msync m.m_fs f) m.m_rels;
      wal_commit m.m_wal;
      wal_reset_after_checkpoint m.m_wal
    end
  | Region _ -> ()

(* --- redo hooks (used by {!Redo}) --- *)

type wal_record = {
  r_rel : string;
  r_blockno : int;
  r_off : int;
  r_delta : Bytes.t;
  r_image : Bytes.t option; (* [Some] iff a real full-page image *)
  r_end : int; (* file offset just past this record *)
  r_cksum : int; (* chain state after this record *)
}

exception Redo_unsupported of string

(* Parse the record at [off], whose predecessor left chain state
   [cksum]. [None] when the file ends or the record fails validation.
   Raises [Redo_unsupported] on a record whose image bytes were not
   logged (the mapped variants). *)
let wal_read_record fs file ~off ~cksum =
  let fsize = Fs.size fs file in
  if off + wal_record_header > fsize then None
  else begin
    let hdr = Bytes.create wal_record_header in
    Fs.read_into fs file ~off hdr ~pos:0 ~len:wal_record_header;
    if Wire.get_u32 hdr 0 <> wal_magic then None
    else begin
      let flags = Wire.get_u32 hdr 4 in
      let blockno = Wire.get_u32 hdr 8 in
      let woff = Wire.get_u32 hdr 12 in
      let len = Wire.get_u32 hdr 16 in
      let name_len = Wire.get_u16 hdr 20 in
      let image = if flags land wal_flag_image <> 0 then bs else 0 in
      let rec_len = wal_record_header + len + image in
      if
        name_len > wal_name_max || woff + len > bs
        || blockno >= rel_block_limit || off + rec_len > fsize
      then None
      else begin
        let payload = Bytes.create (len + image) in
        Fs.read_into fs file ~off:(off + wal_record_header) payload ~pos:0
          ~len:(len + image);
        let ck =
          Wire.checksum payload ~pos:0 ~len:(len + image)
            ~init:(Wire.checksum hdr ~pos:0 ~len:56 ~init:cksum)
        in
        if Wire.get_u64 hdr 56 <> ck then None
        else if image > 0 && flags land wal_flag_real = 0 then
          raise
            (Redo_unsupported
               "pg WAL written by a mapped variant carries no images")
        else
          Some
            {
              r_rel = Bytes.sub_string hdr 22 name_len;
              r_blockno = blockno;
              r_off = woff;
              r_delta = Bytes.sub payload 0 len;
              r_image =
                (if image > 0 then Some (Bytes.sub payload len bs) else None);
              r_end = off + rec_len;
              r_cksum = ck;
            }
      end
    end
  end

(* A redo write: lands in the buffer pool like a normal write but logs
   nothing. Buffered variant only. *)
let redo_apply t ~rel ~blockno ~off data =
  check_block blockno;
  match t.v with
  | Buffered { buf; _ } ->
    let len = Bytes.length data in
    let b = Bufmgr.read_buffer buf ~rel ~blockno in
    Sched.cpu (Costs.memcpy len);
    Bytes.blit data 0 b off len;
    Bufmgr.mark_dirty buf ~rel ~blockno
  | Mapped _ | Region _ -> invalid_arg "Storage.redo_apply: buffered only"

(* Restore the WAL appender to the end of the replayed prefix so the
   recovered storage can keep committing. The full-page-write table is
   left empty: the first post-recovery touch of any block re-images it,
   as PostgreSQL does after crash redo. *)
let redo_restore_wal t ~off ~cksum =
  match t.v with
  | Buffered { wal; _ } ->
    wal.w_off <- off;
    wal.w_cksum <- cksum
  | Mapped _ | Region _ -> invalid_arg "Storage.redo_restore_wal: buffered only"
