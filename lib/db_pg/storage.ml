module Fs = Msnap_fs.Fs
module Aspace = Msnap_vm.Aspace
module Msnap = Msnap_core.Msnap
module Sched = Msnap_sim.Sched
module Costs = Msnap_sim.Costs
module Metrics = Msnap_sim.Metrics
module Probe = Msnap_sim.Probe
module Size = Msnap_util.Size

let rel_block_limit = 4096 (* 32 MiB per relation *)
let bs = Bufmgr.block_size
let wal_record_header = 64
let mmap_arena = 0x6000 lsl 32

type wal = {
  w_fs : Fs.t;
  w_file : Fs.file;
  mutable w_off : int;
  (* Blocks whose full image was already logged since the last
     checkpoint: the full_page_writes bookkeeping. *)
  fpw : (string * int, unit) Hashtbl.t;
  ckpt_bytes : int;
  mutable w_zeros : Bytes.t; (* shared backing for zero-payload records *)
}

let wal_create fs ckpt_bytes =
  { w_fs = fs; w_file = Fs.open_file fs "pg_wal"; w_off = 0;
    fpw = Hashtbl.create 1024; ckpt_bytes; w_zeros = Bytes.empty }

let wal_append w ~rel ~blockno ~len =
  let image =
    if Hashtbl.mem w.fpw (rel, blockno) then 0
    else begin
      Hashtbl.replace w.fpw (rel, blockno) ();
      bs (* first touch since checkpoint: log the whole block *)
    end
  in
  let rec_len = wal_record_header + len + image in
  (* The simulated record carries no payload; reference one shared zero
     buffer instead of allocating per append. *)
  if Bytes.length w.w_zeros < rec_len then w.w_zeros <- Bytes.make rec_len '\000';
  Metrics.timed Probe.db_write (fun () ->
      Fs.writev w.w_fs w.w_file ~off:w.w_off
        [ Msnap_util.Slice.make w.w_zeros ~pos:0 ~len:rec_len ]);
  w.w_off <- w.w_off + rec_len

let wal_commit w =
  Metrics.timed Probe.db_fsync (fun () -> Fs.fdatasync w.w_fs w.w_file)

let wal_reset_after_checkpoint w =
  Hashtbl.reset w.fpw;
  Fs.truncate w.w_fs w.w_file 0;
  w.w_off <- 0

type mapped_state = {
  m_fs : Fs.t;
  m_aspace : Aspace.t;
  m_wal : wal;
  m_rels : (string, int * Fs.file) Hashtbl.t; (* rel -> (va, file) *)
  mutable next_va : int;
  buffer_copies : bool; (* ffs-mmap pins/copies through buffer pages *)
}

type variant =
  | Buffered of { buf : Bufmgr.t; wal : wal }
  | Mapped of mapped_state
  | Region of { k : Msnap.t; create_lock : Msnap_sim.Sync.Mutex.t }

type t = { v : variant; vlabel : string }

let label t = t.vlabel

let file_smgr fs =
  {
    Bufmgr.s_label = "file";
    s_read =
      (fun ~rel ~blockno ->
        let f = Fs.open_file fs ("pg/" ^ rel) in
        if (blockno + 1) * bs <= Fs.size fs f then
          Metrics.timed Probe.db_read (fun () -> Fs.read fs f ~off:(blockno * bs) ~len:bs)
        else Bytes.make bs '\000');
    s_write =
      (fun ~rel ~blockno b ->
        let f = Fs.open_file fs ("pg/" ^ rel) in
        Metrics.timed Probe.db_write (fun () -> Fs.write fs f ~off:(blockno * bs) b));
    s_flush =
      (fun ~rel ->
        let f = Fs.open_file fs ("pg/" ^ rel) in
        Metrics.timed Probe.db_fsync (fun () -> Fs.fsync fs f));
  }

let ffs fs ?(wal_checkpoint_bytes = Size.mib 2) () =
  { v = Buffered { buf = Bufmgr.create (file_smgr fs); wal = wal_create fs wal_checkpoint_bytes };
    vlabel = "ffs" }

let mapped fs aspace ~buffer_copies ~label ~wal_checkpoint_bytes =
  { v =
      Mapped
        { m_fs = fs; m_aspace = aspace; m_wal = wal_create fs wal_checkpoint_bytes;
          m_rels = Hashtbl.create 8; next_va = mmap_arena; buffer_copies };
    vlabel = label }

let ffs_mmap fs aspace ?(wal_checkpoint_bytes = Size.mib 2) () =
  mapped fs aspace ~buffer_copies:true ~label:"ffs-mmap" ~wal_checkpoint_bytes

let ffs_mmap_bufdirect fs aspace ?(wal_checkpoint_bytes = Size.mib 2) () =
  mapped fs aspace ~buffer_copies:false ~label:"ffs-mmap-bd" ~wal_checkpoint_bytes

let memsnap k =
  (* PostgreSQL's MVCC lets one transaction flush pages carrying another's
     uncommitted appended tuples (§7.3 properties ② and ③), so strict
     per-thread exclusivity checking is off for this integration. *)
  Msnap.set_strict k false;
  { v = Region { k; create_lock = Msnap_sim.Sync.Mutex.create () };
    vlabel = "memsnap" }

(* Fixed mapping address of a relation in the mmap variants; the file is
   mapped on first touch. *)
let rel_va m ~rel =
  match Hashtbl.find_opt m.m_rels rel with
  | Some (va, _) -> va
  | None ->
    let f = Fs.open_file m.m_fs ("pg/" ^ rel) in
    let va = m.next_va in
    m.next_va <- va + (rel_block_limit * bs);
    ignore (Fs.mmap m.m_fs f m.m_aspace ~va ~len:(rel_block_limit * bs));
    Hashtbl.replace m.m_rels rel (va, f);
    va

let region_of ~(k : Msnap.t) ~create_lock ~rel =
  match Msnap.region_by_name k ("pg/" ^ rel) with
  | Some md -> md
  | None ->
    (* Region creation allocates the fixed arena address and runs store
       IO; serialize concurrent first-touches of the same relation. *)
    Msnap_sim.Sync.Mutex.with_lock create_lock (fun () ->
        match Msnap.region_by_name k ("pg/" ^ rel) with
        | Some md -> md
        | None ->
          Msnap.open_region k ~name:("pg/" ^ rel) ~len:(rel_block_limit * bs) ())

let check_block blockno =
  if blockno < 0 || blockno >= rel_block_limit then
    invalid_arg "Storage: block out of range"

let read t ~rel ~blockno ~off ~len =
  check_block blockno;
  match t.v with
  | Buffered { buf; _ } ->
    let b = Bufmgr.read_buffer buf ~rel ~blockno in
    Sched.cpu (Costs.memcpy len);
    Bytes.sub b off len
  | Mapped m ->
    let va = rel_va m ~rel in
    Aspace.read m.m_aspace ~va:(va + (blockno * bs) + off) ~len
  | Region { k; create_lock } ->
    let md = region_of ~k ~create_lock ~rel in
    Msnap.read k md ~off:((blockno * bs) + off) ~len

let write t ~rel ~blockno ~off data =
  check_block blockno;
  let len = Bytes.length data in
  match t.v with
  | Buffered { buf; wal } ->
    let b = Bufmgr.read_buffer buf ~rel ~blockno in
    Sched.cpu (Costs.memcpy len);
    Bytes.blit data 0 b off len;
    Bufmgr.mark_dirty buf ~rel ~blockno;
    wal_append wal ~rel ~blockno ~len
  | Mapped m ->
    let va = rel_va m ~rel in
    if m.buffer_copies then
      (* ffs-mmap: the write is staged through a buffer page first. *)
      Sched.cpu (Costs.buffer_cache_lookup + Costs.memcpy len);
    Aspace.write m.m_aspace ~va:(va + (blockno * bs) + off) data;
    wal_append m.m_wal ~rel ~blockno ~len
  | Region { k; create_lock } ->
    let md = region_of ~k ~create_lock ~rel in
    Msnap.write k md ~off:((blockno * bs) + off) data

let commit t =
  match t.v with
  | Buffered { wal; _ } -> wal_commit wal
  | Mapped m -> wal_commit m.m_wal
  | Region { k; _ } ->
    Metrics.timed Probe.db_memsnap (fun () -> ignore (Msnap.persist k ()))

let checkpoint_tick t =
  match t.v with
  | Buffered { buf; wal } ->
    if wal.w_off >= wal.ckpt_bytes then begin
      Metrics.incr Probe.db_pg_checkpoint;
      Bufmgr.flush_all buf;
      wal_commit wal;
      wal_reset_after_checkpoint wal
    end
  | Mapped m ->
    if m.m_wal.w_off >= m.m_wal.ckpt_bytes then begin
      Metrics.incr Probe.db_pg_checkpoint;
      Hashtbl.iter (fun _ (_, f) -> Fs.msync m.m_fs f) m.m_rels;
      wal_commit m.m_wal;
      wal_reset_after_checkpoint m.m_wal
    end
  | Region _ -> ()
