(** The four storage/persistence designs of Fig. 6, behind one interface.

    Every heap access flows through {!read}/{!write} at (relation, block,
    offset) granularity; {!commit} is the transaction durability point and
    {!checkpoint_tick} drives background flushing. The variants:

    - [ffs]: classic PostgreSQL — shared buffers over file IO, WAL with
      full-page writes fsynced at commit, periodic checkpoints that flush
      dirty buffers.
    - [ffs_mmap]: table files are memory-mapped; reads come from the
      mapping, writes still copy through the shared buffers and WAL.
    - [ffs_mmap_bufdirect]: reads *and* writes go directly to the mapping
      (no buffer copies); the WAL remains; checkpoints msync the files.
    - [memsnap]: relations are MemSnap regions accessed in place; commit
      is one [msnap_persist]; there is no WAL and no checkpointer.

    WAL traffic is recorded under Metrics ["write"]/["fsync"], persists
    under ["memsnap"], checkpoints under ["pg_checkpoint"]. *)

type t

val label : t -> string

val ffs :
  Msnap_fs.Fs.t -> ?wal_checkpoint_bytes:int -> unit -> t

val ffs_mmap :
  Msnap_fs.Fs.t -> Msnap_vm.Aspace.t -> ?wal_checkpoint_bytes:int -> unit -> t

val ffs_mmap_bufdirect :
  Msnap_fs.Fs.t -> Msnap_vm.Aspace.t -> ?wal_checkpoint_bytes:int -> unit -> t

val memsnap : Msnap_core.Msnap.t -> t

val read : t -> rel:string -> blockno:int -> off:int -> len:int -> Bytes.t

(** [read] into a caller-owned buffer — identical charges, no
    allocation. *)
val read_into :
  t -> rel:string -> blockno:int -> off:int -> Bytes.t -> pos:int -> len:int ->
  unit
val write : t -> rel:string -> blockno:int -> off:int -> Bytes.t -> unit

val commit : t -> unit
(** Durability point of the calling transaction. *)

val checkpoint_tick : t -> unit
(** Called after commits; runs a checkpoint when the WAL threshold is
    reached (no-op for memsnap). *)

val rel_block_limit : int
(** Maximum blocks per relation (fixed mapping size for the direct
    variants). *)

(**/**)

(** Redo hooks — the {!Redo} driver's interface to the WAL format. *)

type wal_record = {
  r_rel : string;
  r_blockno : int;
  r_off : int;
  r_delta : Bytes.t;
  r_image : Bytes.t option;
  r_end : int;
  r_cksum : int;
}

exception Redo_unsupported of string

val wal_file_name : string
val wal_cksum_seed : int

val wal_read_record :
  Msnap_fs.Fs.t -> Msnap_fs.Fs.file -> off:int -> cksum:int ->
  wal_record option

val redo_apply : t -> rel:string -> blockno:int -> off:int -> Bytes.t -> unit
val redo_restore_wal : t -> off:int -> cksum:int -> unit
