(** MVCC heap relations: append-only tuple storage in 8 KiB blocks.

    Tuples carry [xmin]/[xmax] transaction ids, PostgreSQL-style: an update
    never modifies a version in place — it stamps [xmax] on the old tuple
    and appends a new one. That append-only discipline is what makes the
    §7.3 MemSnap integration sound (properties ② and ③): flushing a page
    that carries another transaction's uncommitted appended tuple cannot
    corrupt anything.

    Block layout: [u16 nitems | u16 content_start | pad | slot offsets
    (u16 each from byte 8) | free | tuples growing down from the tail].
    Tuple: [u32 xmin | u32 xmax | u16 len | data]. *)

type t

type tid = int * int
(** (block number, slot). *)

val create : Storage.t -> rel:string -> t

val recover : Storage.t -> rel:string -> t
(** Open over recovered storage, rebuilding the volatile block count:
    the longest prefix of blocks whose [nitems] header is non-zero. *)

val insert : t -> xmin:int -> string -> tid

val fetch : t -> tid -> (int * int * string) option
(** [(xmin, xmax, data)]; [None] for an invalid tid. [xmax = 0] = live. *)

val set_xmax : t -> tid -> int -> unit
(** Stamp the deleting/updating transaction id on a version. *)

val nblocks : t -> int

val iter_block : t -> int -> (tid -> int -> int -> string -> unit) -> unit
(** Visit every tuple of one block as [(tid, xmin, xmax, data)]. *)
