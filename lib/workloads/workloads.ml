module Rng = Msnap_util.Rng
module Dist = Msnap_util.Dist
module Intern = Msnap_util.Intern

module Dbbench = struct
  type t = {
    nkeys : int;
    vsize : int;
    txn_bytes : int;
    pattern : [ `Seq | `Random ];
    mutable cursor : int;
  }

  let create ?(value_size = 128) ~nkeys ~txn_bytes ~pattern () =
    { nkeys; vsize = value_size; txn_bytes; pattern; cursor = 0 }

  let value_size t = t.vsize

  let next_txn t rng =
    let per_pair = 8 + t.vsize in
    let n = max 1 (t.txn_bytes / per_pair) in
    List.init n (fun _ ->
        let key =
          match t.pattern with
          | `Random -> Rng.int rng t.nkeys
          | `Seq ->
            let k = t.cursor in
            t.cursor <- (t.cursor + 1) mod t.nkeys;
            k
        in
        (* Only 26 distinct value contents per run: hand out the interned
           copy instead of a fresh String.make per pair. *)
        (key, Intern.fill t.vsize (Char.chr (65 + (key mod 26)))))

end

module Tatp = struct
  type op =
    | Get_subscriber_data of int
    | Get_new_destination of int
    | Get_access_data of int
    | Update_subscriber_data of int
    | Update_location of int
    | Insert_call_forwarding of int
    | Delete_call_forwarding of int

  (* Standard TATP mix, in percent. *)
  let next ~subscribers rng =
    let s = Rng.int rng subscribers in
    let p = Rng.int rng 100 in
    if p < 35 then Get_subscriber_data s
    else if p < 45 then Get_new_destination s
    else if p < 80 then Get_access_data s
    else if p < 82 then Update_subscriber_data s
    else if p < 96 then Update_location s
    else if p < 98 then Insert_call_forwarding s
    else Delete_call_forwarding s

  let is_write = function
    | Get_subscriber_data _ | Get_new_destination _ | Get_access_data _ -> false
    | Update_subscriber_data _ | Update_location _ | Insert_call_forwarding _
    | Delete_call_forwarding _ -> true
end

module Mixgraph = struct
  type op =
    | Get of int
    | Put of int * string
    | Seek of int * int

  type t = {
    nkeys : int;
    vsize : int;
    get_dist : Dist.t;
    put_dist : Dist.t;
  }

  let create ?(value_size = 100) ~nkeys () =
    { nkeys; vsize = value_size; get_dist = Dist.uniform nkeys;
      put_dist = Dist.pareto nkeys }

  let next t rng =
    let p = Rng.int rng 100 in
    if p < 83 then Get (Dist.sample t.get_dist rng)
    else if p < 97 then
      let k = Dist.sample t.put_dist rng in
      Put (k, Intern.fill t.vsize (Char.chr (97 + (k mod 26))))
    else Seek (Dist.sample t.get_dist rng, 10 + Rng.int rng 40)
end

module Tpcc = struct
  type txn =
    | New_order of { w : int; d : int; c : int; items : (int * int) list }
    | Payment of { w : int; d : int; c : int; amount : int }
    | Order_status of { w : int; d : int; c : int }
    | Delivery of { w : int; carrier : int }
    | Stock_level of { w : int; d : int; threshold : int }

  let districts_per_warehouse = 10
  let customers_per_district = 300
  let items = 1000

  let next ~warehouses rng =
    let w = Rng.int rng warehouses in
    let d = Rng.int rng districts_per_warehouse in
    let c = Rng.int rng customers_per_district in
    let p = Rng.int rng 100 in
    if p < 45 then begin
      let nlines = 5 + Rng.int rng 11 in
      let lines =
        List.init nlines (fun _ -> (Rng.int rng items, 1 + Rng.int rng 10))
      in
      New_order { w; d; c; items = lines }
    end
    else if p < 88 then Payment { w; d; c; amount = 1 + Rng.int rng 5000 }
    else if p < 92 then Order_status { w; d; c }
    else if p < 96 then Delivery { w; carrier = 1 + Rng.int rng 10 }
    else Stock_level { w; d; threshold = 10 + Rng.int rng 10 }

  let is_write = function
    | New_order _ | Payment _ | Delivery _ -> true
    | Order_status _ | Stock_level _ -> false
end
