(** The crash-schedule model checker: record one crash-free run of a
    scripted workload, then systematically crash it at every durable
    boundary (with seeded torn tails) and demand that the engine's
    recovery lands on a candidate step of the value history.

    Every crash point is the replayable integer pair
    [(prefix, torn_seed)]; checking is deterministic host work, so a
    [-j] run produces bit-for-bit the serial report. *)

type workload = {
  w_name : string;
  w_device : unit -> Msnap_blockdev.Device.t;
  w_run :
    Msnap_blockdev.Device.t -> Msnap_blockdev.Record.t -> History.t;
  w_recoverable : (module Recoverable.S);
}

type failure = { f_prefix : int; f_torn_seed : int; f_msg : string }

type report = {
  r_workload : string;
  r_boundaries : int;
  r_steps : int;
  r_points : int;
  r_failures : failure list;
}

type opts = {
  seeds : int list;
  max_points : int;
  sample_seed : int;
  jobs : int;
}

val default_opts : opts
(** [{seeds = [1;2;3]; max_points = 600; sample_seed = 1; jobs = 0}] *)

val record_run :
  workload -> Msnap_blockdev.Record.t * History.t
(** The recording pass alone (one [Sched.run]); exposed for tests. *)

val points : boundaries:int -> opts:opts -> (int * int) list
(** The crash points the checker will visit, canonical order:
    exhaustive cross product when it fits [max_points], else a seeded
    reservoir sample. *)

val check_point :
  workload -> Msnap_blockdev.Record.t -> History.t ->
  prefix:int -> torn_seed:int -> failure option
(** Check one crash point in its own simulation cell. *)

val run : ?opts:opts -> workload -> report

val pp_failure : string -> failure -> string
val pp_report : report -> string
