(* The one recovery contract every engine implements. Engine libraries
   expose factory functions returning a packed [(module S)] whose
   closure carries engine configuration (region names, filesystem kind,
   database names), so the checker and the crashcheck CLI drive msnap,
   the object store, sqlite, rocks, pg and the file system through the
   same three calls. *)

exception Unmountable of string
(* [recover] found no consistent on-media state to mount. Acceptable
   only for crashes before the workload's [History.ready] point
   (formatting still in flight); a failure anywhere else. *)

exception Check_failed of string
(* The recovered state matches no candidate step of the history. *)

module type S = sig
  type t

  val label : string

  val recover : Msnap_blockdev.Device.t -> t
  (* Mount and recover the engine from the raw post-crash device.
     Raises [Unmountable] when no consistent state exists on media. *)

  val check : t -> History.t -> unit
  (* Verify the recovered state equals some candidate step of the
     history (the crash boundary is [History.boundary]). Raises
     [Check_failed]. *)

  val dispose : t -> unit
  (* Host-side teardown of whatever [recover] built (the device itself
     is disposed by the caller). *)
end

let fail fmt = Printf.ksprintf (fun s -> raise (Check_failed s)) fmt

(* Shared helper: does the recovered key-value state match some
   candidate step? Raises [Check_failed] with the floor and recovered
   state otherwise. [state] must use the same encoding the workload's
   steps used. *)
let check_state ~label history state =
  let matches step =
    let sort = List.sort compare in
    sort step.History.s_state = sort state
  in
  if not (List.exists matches (History.candidates history)) then
    fail "%s: recovered state at boundary %d matches no step >= %d: %s"
      label (History.boundary history)
      (History.lower_bound history)
      (History.pp_state state)
