(** The value history of a scripted crash workload.

    A workload appends one {!step} per durably-acknowledged operation
    (transaction commit, persist, fsync), carrying the full expected
    engine state at that point and the number of device boundaries the
    attached {!Msnap_blockdev.Record} had captured when the ack
    returned. The checker later crashes the schedule at boundary [k]
    and asks the engine's [check] to show the recovered state equals
    {e some} candidate step: acked work may never be lost (steps below
    {!lower_bound} are excluded), while unacked-but-complete work may
    surface (steps above it are allowed).

    Convention: a workload calls {!mark_ready} and records its first
    step (the post-setup state) as soon as setup completes, so every
    boundary at or after {!ready} has at least one candidate. *)

type step = {
  s_label : string;
  s_state : (string * string) list;
  s_acked : int;
}

type t

val create : unit -> t

val mark_ready : t -> Msnap_blockdev.Record.t -> unit
(** Boundaries before this point may legitimately be unmountable
    (formatting was still in flight). *)

val step :
  t -> Msnap_blockdev.Record.t -> label:string ->
  state:(string * string) list -> unit
(** Record one acked operation and the full expected state after it. *)

val steps : t -> step array
val nsteps : t -> int
val ready : t -> int

val set_boundary : t -> int -> unit
(** Set by the checker before calling an engine's [check]: the boundary
    index the media image was crashed at. *)

val boundary : t -> int

val with_boundary : t -> int -> t
(** A shallow copy carrying its own boundary — what the checker hands to
    parallel check tasks so they never mutate the shared history. *)

val lower_bound : t -> int
(** Newest step acked at or before {!boundary} (-1 if none): recovery
    may not surface anything older. *)

val candidates : t -> step list
(** The acceptable recovered states for {!boundary}, oldest first. *)

val pp_state : (string * string) list -> string
