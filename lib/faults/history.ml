module Record = Msnap_blockdev.Record

type step = {
  s_label : string;
  s_state : (string * string) list; (* full expected state after the ack *)
  s_acked : int; (* boundary count when the durable ack returned *)
}

type t = {
  mutable h_steps : step list; (* newest first *)
  mutable h_nsteps : int;
  mutable h_ready : int; (* boundary count once setup finished; -1 = never *)
  mutable h_boundary : int; (* crash boundary under check; set by the checker *)
}

let create () = { h_steps = []; h_nsteps = 0; h_ready = -1; h_boundary = -1 }

let mark_ready t record = t.h_ready <- Record.boundaries record

let step t record ~label ~state =
  let s =
    { s_label = label; s_state = state; s_acked = Record.boundaries record }
  in
  t.h_steps <- s :: t.h_steps;
  t.h_nsteps <- t.h_nsteps + 1

let steps t = Array.of_list (List.rev t.h_steps)
let nsteps t = t.h_nsteps
let ready t = t.h_ready

let set_boundary t b = t.h_boundary <- b
let boundary t = t.h_boundary

(* Shallow copy with its own boundary: check tasks running in parallel
   each get one, so the shared recorded history is never mutated. *)
let with_boundary t b =
  { h_steps = t.h_steps; h_nsteps = t.h_nsteps; h_ready = t.h_ready;
    h_boundary = b }

(* Index of the newest step whose ack preceded the crash boundary: the
   recovery floor. -1 when the crash predates every ack. *)
let lower_bound t =
  let rec go best i = function
    | [] -> best
    | s :: tl ->
      let best = if s.s_acked <= t.h_boundary && i > best then i else best in
      go best (i - 1) tl
  in
  go (-1) (t.h_nsteps - 1) t.h_steps

(* The candidate states a correct recovery may surface: every step from
   the floor up (a crash can expose unacked-but-complete work, never
   lose acked work). *)
let candidates t =
  let all = steps t in
  let lb = max 0 (lower_bound t) in
  Array.to_list (Array.sub all lb (Array.length all - lb))

let pp_state state =
  String.concat "; "
    (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) state)
