(** Offline reconstruction of post-crash media images.

    Replays a recorded schedule's committed payloads and seeded torn
    tails onto a fresh device, producing bytes identical to a live
    [Device.fail_power ~torn_seed] at the same boundary (pinned by the
    parity property in [test/test_faults.ml]). Host work only. *)

val materialize :
  Msnap_blockdev.Record.t -> prefix:int -> torn_seed:int ->
  Msnap_blockdev.Device.t -> unit
(** [materialize record ~prefix ~torn_seed dev] rebuilds onto [dev] the
    exact media image of a power failure at recorded boundary [prefix]
    with the given tear seed. [dev] must be a fresh device with the
    recorded run's geometry. Raises [Invalid_argument] when [prefix] is
    out of range. *)
