(* Offline reconstruction of the post-crash media image at a recorded
   boundary.

   [materialize record ~prefix ~torn_seed dev] replays onto [dev] (a
   fresh device with the recorded run's geometry) exactly what a live
   [Device.fail_power ~torn_seed] at boundary [prefix] would have left
   on media:

   - the payloads of every command committed at boundaries 0..prefix,
     applied in boundary (commit) order — later commits overwrite
     earlier ones, as on the live medium;
   - for each member disk, the seeded torn prefixes of the commands
     still in flight at the boundary, newest-issued first (the disk's
     in-flight list is a cons list), drawn from the same rng stream
     [Rng.create ((torn_seed + member) lxor 0x5EED)] with the torn
     budget computed by [Disk.torn_sector_budget] — the function the
     live tear path itself calls, so the two can never drift.

   A command that commits *at* boundary [prefix] is durable, not torn:
   the live crash hook runs after the committing thread has left the
   in-flight list. Everything here is host work on the raw medium
   ([Device.poke]); no simulated IO is issued. *)

module Device = Msnap_blockdev.Device
module Disk = Msnap_blockdev.Disk
module Record = Msnap_blockdev.Record
module Rng = Msnap_util.Rng

let sector = Msnap_sim.Costs.sector

let seg_sectors (s : Record.seg) =
  (Bytes.length s.g_data + sector - 1) / sector

(* In-flight commands of [member] at boundary [prefix], newest-issued
   first — the order the live tear walks the disk's cons list. *)
let inflight_at record ~prefix ~member =
  let b = Record.boundary record prefix in
  List.filter
    (fun (c : Record.cmd) ->
      c.c_member = member && c.c_issue_seq < b.b_seq
      && (c.c_commit_boundary = -1 || c.c_commit_boundary > prefix))
    (List.rev (Record.all_commands record))

let apply_committed dev record ~prefix =
  for i = 0 to prefix do
    match (Record.boundary record i).b_cmd with
    | None -> ()
    | Some c ->
      Array.iter
        (fun (s : Record.seg) ->
          Device.poke dev ~member:c.c_member ~off:s.g_off ~data:s.g_data)
        c.c_segs
  done

let apply_torn dev record ~prefix ~torn_seed =
  let b = Record.boundary record prefix in
  for member = 0 to Record.members record - 1 do
    let rng = Rng.create ((torn_seed + member) lxor 0x5EED) in
    List.iter
      (fun (c : Record.cmd) ->
        let elapsed = b.b_time - c.c_t0 in
        let total_sectors =
          Array.fold_left (fun a s -> a + seg_sectors s) 0 c.c_segs
        in
        let budget =
          Disk.torn_sector_budget ~rng ~elapsed ~dur:c.c_dur ~total_sectors
        in
        let remaining = ref budget in
        Array.iter
          (fun (s : Record.seg) ->
            let sectors = seg_sectors s in
            let take = min sectors !remaining in
            remaining := !remaining - take;
            if take > 0 then begin
              let nbytes = min (Bytes.length s.g_data) (take * sector) in
              Device.poke dev ~member ~off:s.g_off
                ~data:(Bytes.sub s.g_data 0 nbytes)
            end)
          c.c_segs)
      (inflight_at record ~prefix ~member)
  done

let materialize record ~prefix ~torn_seed dev =
  if prefix < 0 || prefix >= Record.boundaries record then
    invalid_arg
      (Printf.sprintf "Image.materialize: boundary %d of %d" prefix
         (Record.boundaries record));
  apply_committed dev record ~prefix;
  apply_torn dev record ~prefix ~torn_seed
