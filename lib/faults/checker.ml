(* The crash-schedule model checker.

   One recording pass runs the scripted workload crash-free under
   [Sched.run] with a recorder attached, yielding the boundary/command
   history and the workload's value history. The checker then picks
   crash points — every [(boundary, torn_seed)] pair when the space is
   small, a seeded reservoir sample otherwise — and for each point, in
   its own [Sched.run] cell: materializes the post-crash image on a
   fresh device, runs the engine's [Recoverable.recover], and checks
   the invariant against the history's candidate steps.

   Every point is pure host-deterministic work keyed only by
   [(prefix, torn_seed)], so a failure report is a replayable
   reproducer, and results are collected in submission order — the
   [-j 2] run prints bit-for-bit what the serial run prints. *)

module Device = Msnap_blockdev.Device
module Record = Msnap_blockdev.Record
module Sched = Msnap_sim.Sched
module Rng = Msnap_util.Rng
module Taskpool = Msnap_util.Taskpool

type workload = {
  w_name : string;
  w_device : unit -> Device.t;
      (* a fresh device with the same geometry, every call *)
  w_run : Device.t -> Record.t -> History.t;
      (* the scripted workload; must run crash-free and call
         [History.mark_ready] + [History.step] as it goes *)
  w_recoverable : (module Recoverable.S);
}

type failure = { f_prefix : int; f_torn_seed : int; f_msg : string }

type report = {
  r_workload : string;
  r_boundaries : int;
  r_steps : int;
  r_points : int;
  r_failures : failure list;
}

type opts = {
  seeds : int list;  (* torn seeds tried at each boundary *)
  max_points : int;  (* sampling kicks in above this *)
  sample_seed : int;
  jobs : int;  (* worker domains; 0 = inline/serial *)
}

let default_opts = { seeds = [ 1; 2; 3 ]; max_points = 600; sample_seed = 1; jobs = 0 }

(* The recording pass: one crash-free simulated run of the workload
   with the recorder attached. *)
let record_run w =
  Sched.run (fun () ->
      let dev = w.w_device () in
      let record = Record.create () in
      Device.attach_record dev record;
      let hist = w.w_run dev record in
      Device.detach_record dev;
      Device.dispose dev;
      (record, hist))

(* Crash points in canonical order: boundary-major, seed-minor.
   Exhaustive when the space fits in [max_points]; otherwise a seeded
   reservoir sample of exactly [max_points] points, re-sorted so the
   schedule order (and hence the output) stays canonical. *)
let points ~boundaries ~opts =
  let nseeds = List.length opts.seeds in
  let total = boundaries * nseeds in
  if total <= opts.max_points then
    List.concat_map
      (fun prefix -> List.map (fun s -> (prefix, s)) opts.seeds)
      (List.init boundaries Fun.id)
  else begin
    let rng = Rng.create opts.sample_seed in
    let res = Array.make opts.max_points (0, 0) in
    let i = ref 0 in
    for prefix = 0 to boundaries - 1 do
      List.iter
        (fun s ->
          if !i < opts.max_points then res.(!i) <- (prefix, s)
          else begin
            let j = Rng.int rng (!i + 1) in
            if j < opts.max_points then res.(j) <- (prefix, s)
          end;
          incr i)
        opts.seeds
    done;
    List.sort_uniq compare (Array.to_list res)
  end

(* One crash point, in its own simulation cell: reconstruct the image,
   recover, check. Returns [None] on success. *)
let check_point w record hist ~prefix ~torn_seed =
  let fail msg = Some { f_prefix = prefix; f_torn_seed = torn_seed; f_msg = msg } in
  Sched.run (fun () ->
      let dev = w.w_device () in
      Fun.protect
        ~finally:(fun () -> Device.dispose dev)
        (fun () ->
          Image.materialize record ~prefix ~torn_seed dev;
          let module R = (val w.w_recoverable : Recoverable.S) in
          let hist = History.with_boundary hist prefix in
          let before_ready = prefix < History.ready hist in
          match R.recover dev with
          | exception Recoverable.Unmountable msg ->
            if before_ready then None
            else fail (Printf.sprintf "unmountable: %s" msg)
          | exception exn ->
            fail (Printf.sprintf "recover raised %s" (Printexc.to_string exn))
          | st ->
            Fun.protect
              ~finally:(fun () -> R.dispose st)
              (fun () ->
                if before_ready then None
                else
                  match R.check st hist with
                  | () -> None
                  | exception Recoverable.Check_failed msg -> fail msg
                  | exception exn ->
                    fail
                      (Printf.sprintf "check raised %s"
                         (Printexc.to_string exn)))))

let run ?(opts = default_opts) w =
  if opts.jobs > 0 then Taskpool.ensure_workers opts.jobs;
  let record, hist = record_run w in
  let boundaries = Record.boundaries record in
  let pts = points ~boundaries ~opts in
  (* Submit every point, await in submission order: with zero workers
     this runs serially inline; with workers the collected results are
     identical because each point is pure in (prefix, torn_seed). *)
  let tasks =
    List.map
      (fun (prefix, torn_seed) ->
        Taskpool.submit (fun () -> check_point w record hist ~prefix ~torn_seed))
      pts
  in
  let failures = List.filter_map Taskpool.await tasks in
  {
    r_workload = w.w_name;
    r_boundaries = boundaries;
    r_steps = History.nsteps hist;
    r_points = List.length pts;
    r_failures = failures;
  }

let pp_failure w f =
  Printf.sprintf "FAIL %s prefix=%d torn_seed=%d: %s" w f.f_prefix
    f.f_torn_seed f.f_msg

let pp_report r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "crashcheck %-10s %4d boundaries %3d steps %4d points %s\n"
       r.r_workload r.r_boundaries r.r_steps r.r_points
       (match r.r_failures with
       | [] -> "ok"
       | fs -> Printf.sprintf "%d FAILURES" (List.length fs)));
  List.iter
    (fun f -> Buffer.add_string b (pp_failure r.r_workload f ^ "\n"))
    r.r_failures;
  Buffer.contents b
