(* Growable flat vector. The hot-path replacement for [_ list] fields
   that are mutated in place: push is amortized O(1), removal is O(1)
   swap-with-last (order is NOT preserved — only use where iteration
   order is not a simulated value), and the backing array is reused
   across clears so steady-state operation allocates nothing.

   The empty vector holds no backing array at all ([data] is [[||]]):
   the first [push] allocates the storage seeded with the pushed value,
   so no dummy element is ever needed and polymorphic vectors work for
   any element type. *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let clear t = t.len <- 0
(* Note: [clear] keeps references to dropped elements alive until they
   are overwritten. Use [reset] when the elements must become
   collectable. *)

let reset t =
  t.data <- [||];
  t.len <- 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Fvec.get";
  Array.unsafe_get t.data i

let set t i v =
  if i < 0 || i >= t.len then invalid_arg "Fvec.set";
  Array.unsafe_set t.data i v

let push t v =
  let cap = Array.length t.data in
  if t.len = cap then
    if cap = 0 then t.data <- Array.make 8 v
    else begin
      let data = Array.make (2 * cap) v in
      Array.blit t.data 0 data 0 cap;
      t.data <- data
    end;
  Array.unsafe_set t.data t.len v;
  t.len <- t.len + 1

(* Remove index [i] by moving the last element into its slot. O(1),
   does not preserve order. *)
let swap_remove t i =
  if i < 0 || i >= t.len then invalid_arg "Fvec.swap_remove";
  let last = t.len - 1 in
  Array.unsafe_set t.data i (Array.unsafe_get t.data last);
  t.len <- last

(* Remove index [i] by shifting the tail left. O(n) but allocation-free;
   preserves order, for vectors whose order is a simulated value. *)
let remove_at t i =
  if i < 0 || i >= t.len then invalid_arg "Fvec.remove_at";
  let last = t.len - 1 in
  if i < last then Array.blit t.data (i + 1) t.data i (last - i);
  t.len <- last

let pop t =
  if t.len = 0 then invalid_arg "Fvec.pop";
  t.len <- t.len - 1;
  Array.unsafe_get t.data t.len

(* Find the first index holding [v] (physical equality), or -1. *)
let index_phys t v =
  let rec go i = if i >= t.len then -1
    else if Array.unsafe_get t.data i == v then i
    else go (i + 1)
  in
  go 0

let iter f t =
  for i = 0 to t.len - 1 do f (Array.unsafe_get t.data i) done

let exists f t =
  let rec go i =
    i < t.len && (f (Array.unsafe_get t.data i) || go (i + 1))
  in
  go 0

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(i) :: acc) in
  go (t.len - 1) []
