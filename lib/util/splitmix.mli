(** splitmix64's finalizer over unboxed 32-bit halves — the shared,
    allocation-free 64-bit core under {!Rng} (draws) and {!Wire}
    (on-media checksums). A 64-bit quantity is carried as two untagged
    native ints holding its high and low 32 bits; results land in a
    caller-supplied 2-cell scratch array ([out.(0)] = high, [out.(1)] =
    low) because OCaml cannot return an unboxed pair.

    Bit-exact with the boxed Int64 formulation (see the differential
    suites in test_util.ml): RNG sequences and checksum bytes are
    simulated values, so this module changes host cost only. *)

val mask32 : int
(** [0xFFFFFFFF]. *)

val mix : int -> int -> int array -> unit
(** [mix hi lo out] applies the splitmix64 finalizer to the 64-bit value
    [(hi, lo)]. *)

val mix_add : int -> int -> int -> int -> int array -> unit
(** [mix_add a_hi a_lo b_hi b_lo out] is [mix] of the 64-bit sum
    [a + b] (mod 2^64). *)
