(* Allocation-free key/value rendering for the workload drivers.

   The bench drivers format millions of keys per experiment
   ("w%04d-d%02d-c%05d", "%020d", ...). [Printf.sprintf] allocates a
   format interpreter, an internal buffer and intermediate boxes on
   every call; rendering into a per-domain scratch buffer instead makes
   the only allocation the final string — and for bounded keyspaces
   {!table} precomputes even that, so the steady-state driver allocates
   nothing per key. Host-only: keys are byte-identical with the sprintf
   originals (differential-tested in test_util.ml), so engine charges
   and on-media bytes cannot move. *)

type t = { mutable buf : Bytes.t; mutable len : int }

let scratch_key : t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { buf = Bytes.create 64; len = 0 })

(* One scratch per domain. Simulated threads are fibers multiplexed on
   their domain, but rendering never crosses a scheduling point
   (plain byte writes only), so a render is atomic with respect to
   other fibers; don't hold a scratch across [Sched] calls. *)
let scratch () =
  let t = Domain.DLS.get scratch_key in
  t.len <- 0;
  t

let ensure t n =
  let cap = Bytes.length t.buf in
  if t.len + n > cap then begin
    let buf = Bytes.create (max (t.len + n) (2 * cap)) in
    Bytes.blit t.buf 0 buf 0 t.len;
    t.buf <- buf
  end

let lit t s =
  let n = String.length s in
  ensure t n;
  Bytes.blit_string s 0 t.buf t.len n;
  t.len <- t.len + n

let char t c =
  ensure t 1;
  Bytes.unsafe_set t.buf t.len c;
  t.len <- t.len + 1

let rec digits v = if v < 10 then 1 else 1 + digits (v / 10)

(* [dec t ~width v] renders [v] in decimal, zero-padded to [width]
   (wider values keep all their digits) — exactly
   [Printf.sprintf "%0*d" width v]. [~width:0] is plain ["%d"]. *)
let rec dec t ~width v =
  if v < 0 then begin
    (* "%05d" (-42) = "-0042": the sign counts against the width. Route
       min_int through a (cold, allocating) sprintf rather than negate. *)
    if v = min_int then lit t (Printf.sprintf "%0*d" width v)
    else begin
      char t '-';
      dec_abs t ~width:(max 0 (width - 1)) (-v)
    end
  end
  else dec_abs t ~width v

and dec_abs t ~width v =
  let n = max width (digits v) in
  ensure t n;
  let base = t.len in
  t.len <- base + n;
  let v = ref v in
  for i = n - 1 downto 0 do
    Bytes.unsafe_set t.buf (base + i) (Char.unsafe_chr (48 + (!v mod 10)));
    v := !v / 10
  done

let str t = Bytes.sub_string t.buf 0 t.len

(* Precomputed key table for a bounded keyspace: [f] renders key [i]
   into the given scratch. Strings are immutable, so a table built once
   (typically at module init) is safe to share across domains. *)
let table n f =
  Array.init n (fun i ->
      let b = scratch () in
      f b i;
      str b)
