(** Size-classed, per-domain free lists of large [Bytes.t] buffers.

    The data plane's big allocations — 4 KiB page frames, FS cache
    blocks, WAL/journal staging, object-store payload copies, disk
    medium chunks — are all long-lived enough to land on the major heap,
    and PRs 2/4 left them as the dominant host cost. The pool recycles
    them explicitly: [alloc] pops a parked buffer of the exact size when
    one is available (a {e hit}), otherwise falls back to [Bytes.create]
    (a {e miss}); [recycle] parks a buffer for reuse once its owner is
    done with it.

    {2 Rules}

    - Pooling is host-only. A pooled buffer carries no simulated cost of
      its own; every [Sched.cpu] charge made around an allocation must
      be identical whether the buffer came from the free list or from
      [Bytes.create].
    - [alloc] has [Bytes.create] semantics: the contents are
      unspecified. Callers that relied on [Bytes.make n '\000'] must
      use [alloc_zeroed] (or fill explicitly).
    - A buffer may be recycled only by its unique owner, only once, and
      never while any live reference can still read or write it. For
      device-visible buffers the Slice ownership rule marks the safe
      point: recycle at (or after) command completion, never while a
      slice over the buffer is lent to an in-flight command.
    - Buffers smaller than [min_pooled] are not pooled: [alloc] is a
      plain [Bytes.create] and [recycle] a no-op. Small buffers are
      minor-heap business the GC already handles well.

    Free lists are per-domain ([Domain.DLS]), like [Metrics]: bench
    experiments running on a `-j` pool never contend or share buffers
    across domains.

    {2 Debug checks}

    Under {!debug_checks} (the same switch as [Slice.debug_checks]) the
    pool poisons every recycled buffer and re-verifies the poison when
    the buffer is next handed out, so a stale writer that mutates a
    buffer after recycling it is caught at the next [alloc]; recycling
    the same buffer twice raises immediately. Both raise {!Violation}. *)

type class_stats = {
  cs_size : int;  (** class buffer size in bytes (classes are exact-size) *)
  cs_hits : int;  (** allocs served from the free list *)
  cs_misses : int;  (** allocs that fell back to [Bytes.create] *)
  cs_recycles : int;  (** buffers returned *)
  cs_outstanding : int;  (** allocs minus recycles (still with callers) *)
  cs_retained : int;  (** buffers currently parked on the free list *)
  cs_dropped : int;  (** recycles dropped because the class was at cap *)
}

type totals = {
  t_hits : int;
  t_misses : int;
  t_recycles : int;
  t_outstanding : int;
  t_retained_bytes : int;
}

exception Violation of string
(** Raised under {!debug_checks} on a double recycle or on a mutation of
    a buffer after it was recycled (use-after-recycle). *)

val min_pooled : int
(** Smallest buffer size the pool manages (4096 bytes). *)

val debug_checks : bool ref
(** The same ref as [Slice.debug_checks] — one switch arms every
    data-plane integrity check. *)

val alloc : int -> Bytes.t
(** [alloc n] returns a buffer of exactly [n] bytes with {e unspecified}
    contents ([Bytes.create] semantics; poisoned under debug). *)

val alloc_zeroed : int -> Bytes.t
(** [alloc n] followed by a zero fill — drop-in for [Bytes.make n '\000']. *)

val recycle : Bytes.t -> unit
(** Park a buffer for reuse by a later [alloc] of the same size. The
    caller must own the buffer exclusively and must not touch it again.
    No-op for buffers smaller than [min_pooled]. *)

val stats : unit -> class_stats list
(** Per-class counters for this domain, sorted by class size. *)

val totals : unit -> totals
(** Aggregate counters for this domain. *)

val clear : unit -> unit
(** Drop every parked buffer (they fall back to the GC) and reset the
    counters. Test isolation helper. *)

type event = Hit | Miss | Recycle

val set_observer : (event -> int -> unit) -> unit
(** [set_observer f] installs a process-wide hook called as [f ev size]
    on every pooled alloc/recycle. The sim layer uses it to mirror pool
    activity into [Probe]/[Metrics] counters; host-only. Install before
    spawning domains. *)
