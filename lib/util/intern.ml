(* Content-addressed value tables for the workload drivers.

   Dbbench and Mixgraph write [String.make vsize c] values with only 26
   distinct contents per run, and TATP re-renders the same bounded row
   strings per op; allocating each occurrence fresh made the drivers
   the dominant minor-heap users. Interning hands back one canonical
   copy per distinct content. OCaml strings are immutable and the
   engines copy values into their own media buffers rather than retain
   them, so sharing is safe and the written bytes are identical —
   host-only by construction.

   Tables are per-domain (Domain.DLS): cells run concurrently on the
   bench pool and a lock-free domain-local table costs at most one
   extra copy of each value per domain. *)

let fill_key : (int, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

(* [fill n c] = [String.make n c], allocated once per distinct [(n, c)]
   per domain. The int-keyed table makes a hit allocation-free. *)
let fill n c =
  let tbl = Domain.DLS.get fill_key in
  let k = (n lsl 8) lor Char.code c in
  match Hashtbl.find_opt tbl k with
  | Some s -> s
  | None ->
    let s = String.make n c in
    Hashtbl.add tbl k s;
    s

(* [memo ~max f] memoizes [f] over the bounded keyspace [0..max-1]
   (out-of-range keys fall through to [f] uncached). Lazy counterpart
   of {!Keyfmt.table}: each row is rendered at most once per domain,
   on first use. *)
let memo ~max f =
  let key : string option array Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Array.make max None)
  in
  fun i ->
    if i < 0 || i >= max then f i
    else
      let tbl = Domain.DLS.get key in
      match Array.unsafe_get tbl i with
      | Some s -> s
      | None ->
        let s = f i in
        Array.unsafe_set tbl i (Some s);
        s
