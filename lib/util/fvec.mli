(** Growable flat vector with O(1) swap-removal.

    Replaces [_ list ref] fields on hot paths: the backing array is
    reused across [clear]s, so steady-state push/remove cycles allocate
    nothing. Removal swaps the last element in, so iteration order is
    not stable — only use where order is not a simulated value. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Set the length to 0, keeping the backing array (and references to
    dropped elements, until overwritten). *)

val reset : 'a t -> unit
(** [clear] plus dropping the backing array, making elements
    collectable. *)

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit

val swap_remove : 'a t -> int -> unit
(** Remove index [i] by moving the last element into its slot. O(1);
    does not preserve order. *)

val remove_at : 'a t -> int -> unit
(** Remove index [i] by shifting the tail left. O(n), allocation-free;
    preserves order — for vectors whose order is a simulated value. *)

val pop : 'a t -> 'a
(** Remove and return the last element. Raises [Invalid_argument] when
    empty. *)

val index_phys : 'a t -> 'a -> int
(** First index holding the argument (physical equality), or -1. *)

val iter : ('a -> unit) -> 'a t -> unit
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
