(** Open-addressed hash table with non-negative int keys.

    The allocation-free replacement for [(int, _) Hashtbl.t] on hot
    paths: a miss returns the [absent] sentinel supplied at creation
    (no [option] boxing), and insertion only allocates when the table
    grows. Keys must be [>= 0].

    Iteration order is a host-side artifact of the hash layout and
    must never feed a simulated value. *)

type 'a t

val create : ?initial:int -> absent:'a -> unit -> 'a t
val length : 'a t -> int
val mem : 'a t -> int -> bool

val find : 'a t -> int -> 'a
(** Value bound to the key, or the [absent] sentinel. Allocation-free. *)

val slot : 'a t -> int -> int
(** Opaque slot handle for the key, or [-1] if not present. Valid only
    until the next mutation of the table. *)

val slot_value : 'a t -> int -> 'a
(** Payload at a slot handle returned by {!slot}. *)

val set_slot : 'a t -> int -> 'a -> unit
(** Replace the payload at a slot handle returned by {!slot}. *)

val set : 'a t -> int -> 'a -> unit
val remove : 'a t -> int -> unit
val clear : 'a t -> unit

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** Host-side only: order depends on the hash layout. *)
