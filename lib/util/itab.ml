(* Open-addressed hash table with non-negative int keys and a flat
   payload array. The hot-path replacement for [(int, _) Hashtbl.t]:
   lookup allocates nothing (a miss returns the [absent] sentinel
   supplied at creation instead of an [option]), insertion only
   allocates when the table grows, and the storage is reused across
   [clear]s.

   Linear probing over a power-of-two capacity; key slots use -1 for
   "never used" and -2 for "deleted" (tombstone), so client keys must
   be >= 0. Iteration order is a host-side artifact of the hash layout
   and must never feed a simulated value. *)

type 'a t = {
  mutable keys : int array; (* -1 empty, -2 tombstone, else the key *)
  mutable vals : 'a array;
  mutable len : int; (* live entries *)
  mutable used : int; (* live entries + tombstones *)
  absent : 'a; (* returned on miss; seeds the payload array *)
}

let k_empty = -1
let k_tomb = -2

let rec pow2_at_least n c = if c >= n then c else pow2_at_least n (2 * c)

let create ?(initial = 16) ~absent () =
  let cap = pow2_at_least (max 8 initial) 8 in
  {
    keys = Array.make cap k_empty;
    vals = Array.make cap absent;
    len = 0;
    used = 0;
    absent;
  }

let length t = t.len

(* Multiplicative hash: keys are often small dense ints (vpns, rel
   pages), so spread the low bits before masking. *)
let hash k cap_mask = (k * 0x9E3779B1) land cap_mask

(* Slot holding [k], or -1 if not present. *)
let find_slot t k =
  let mask = Array.length t.keys - 1 in
  let rec go i =
    let kk = Array.unsafe_get t.keys i in
    if kk = k then i
    else if kk = k_empty then -1
    else go ((i + 1) land mask)
  in
  go (hash k mask)

let mem t k = if k < 0 then false else find_slot t k >= 0

(* Slot handles: [find_slot]'s result stays valid until the next
   mutation of the table and lets a caller split "is it present?" from
   "read/write the payload" without hashing twice or boxing a result. *)
let slot t k = if k < 0 then -1 else find_slot t k
let slot_value t s = Array.unsafe_get t.vals s
let set_slot t s v = Array.unsafe_set t.vals s v

let find t k =
  if k < 0 then t.absent
  else
    let s = find_slot t k in
    if s < 0 then t.absent else Array.unsafe_get t.vals s

let resize t =
  let old_keys = t.keys and old_vals = t.vals in
  let old_cap = Array.length old_keys in
  (* Grow only when at least half the slots are live; otherwise the
     table is mostly tombstones and rehashing in place reclaims them. *)
  let cap = if 2 * t.len >= old_cap then 2 * old_cap else old_cap in
  t.keys <- Array.make cap k_empty;
  t.vals <- Array.make cap t.absent;
  t.used <- t.len;
  let mask = cap - 1 in
  for i = 0 to old_cap - 1 do
    let k = Array.unsafe_get old_keys i in
    if k >= 0 then begin
      let rec place j =
        if Array.unsafe_get t.keys j = k_empty then begin
          Array.unsafe_set t.keys j k;
          Array.unsafe_set t.vals j (Array.unsafe_get old_vals i)
        end
        else place ((j + 1) land mask)
      in
      place (hash k mask)
    end
  done

let set t k v =
  if k < 0 then invalid_arg "Itab.set: negative key";
  let cap = Array.length t.keys in
  if 4 * (t.used + 1) > 3 * cap then resize t;
  let mask = Array.length t.keys - 1 in
  let rec go i tomb =
    let kk = Array.unsafe_get t.keys i in
    if kk = k then Array.unsafe_set t.vals i v
    else if kk = k_empty then begin
      let dst = if tomb >= 0 then tomb else i in
      if dst = i then t.used <- t.used + 1;
      Array.unsafe_set t.keys dst k;
      Array.unsafe_set t.vals dst v;
      t.len <- t.len + 1
    end
    else if kk = k_tomb && tomb < 0 then go ((i + 1) land mask) i
    else go ((i + 1) land mask) tomb
  in
  go (hash k mask) (-1)

let remove t k =
  if k >= 0 then begin
    let s = find_slot t k in
    if s >= 0 then begin
      Array.unsafe_set t.keys s k_tomb;
      Array.unsafe_set t.vals s t.absent;
      t.len <- t.len - 1
    end
  end

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) k_empty;
  Array.fill t.vals 0 (Array.length t.vals) t.absent;
  t.len <- 0;
  t.used <- 0

(* Host-side only: iteration order depends on the hash layout. *)
let iter f t =
  for i = 0 to Array.length t.keys - 1 do
    let k = Array.unsafe_get t.keys i in
    if k >= 0 then f k (Array.unsafe_get t.vals i)
  done
