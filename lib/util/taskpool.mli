(** A process-wide fork/join pool over OCaml 5 domains.

    There is exactly one pool per process, so a single [-j N] budget
    bounds every domain doing simulation work: the bench runner submits
    whole experiments as {!Heavy} tasks and each experiment submits its
    independent [Sched.run] measurements as {!Light} cells — both drain
    on the same [N] domains (workers plus the submitting domain, which
    helps while it {!await}s).

    Determinism contract: the pool schedules {e host} work only. A task
    body must be self-contained with respect to domain-local state —
    the simulation cell layer ([Msnap_sim.Cell]) guarantees this by
    swapping every [Domain.DLS] store around the body — so which domain
    runs a task, and when, can never change a simulated value.

    With zero workers, tasks run inline at {!await} in program order:
    serial execution is the degenerate case, not a separate code
    path. *)

type cls =
  | Light  (** a simulation cell: anyone may help run it *)
  | Heavy
      (** a whole experiment: only picked up by domains that are not
          already inside a task, so experiments never nest *)

type 'a task

val submit : ?cls:cls -> (unit -> 'a) -> 'a task
(** Enqueue [f] (default {!Light}). With zero workers nothing runs
    until {!await}. *)

val await : 'a task -> 'a
(** Block until the task finished, returning its result or re-raising
    its exception (with the original backtrace). Never idles while
    eligible queued work exists: it runs its own task inline if no one
    claimed it yet, and otherwise helps with queued tasks — {!Light}
    ones only if the calling domain is itself inside a task. Must not
    be called from inside a simulation ([Sched.run]). *)

val ensure_workers : int -> unit
(** Grow the pool to at least [n] worker domains (never shrinks).
    [ensure_workers 0] is a no-op: the pool then runs everything
    inline at {!await}. *)

val worker_count : unit -> int

val on_worker_init : (unit -> unit) -> unit
(** Register a hook run by every {e future} worker domain before it
    processes tasks (e.g. pre-warming the domain-local buffer pool).
    Call before {!ensure_workers}. *)

val shutdown : unit -> unit
(** Drain every queued task, join all worker domains, and reset the
    pool (a later {!ensure_workers} restarts it). Call after all tasks
    are awaited — and always before process exit once workers were
    started, so no domain outlives [main]. *)
