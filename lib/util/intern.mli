(** Content-addressed value tables for the workload drivers.

    One canonical copy per distinct content, per domain. Safe because
    strings are immutable and the engines copy values into their own
    buffers rather than retain them; the written bytes are identical
    (content-identity is qcheck-pinned in test_util.ml). *)

val fill : int -> char -> string
(** [fill n c] is [String.make n c], allocated once per distinct
    [(n, c)] per domain; a hit allocates nothing. *)

val memo : max:int -> (int -> string) -> int -> string
(** [memo ~max f] memoizes [f] over [0..max-1] per domain, rendering
    each entry at most once on first use. Out-of-range keys fall
    through to [f] uncached. Apply partially ([let g = memo ~max f]):
    each call of [memo] itself allocates a fresh table key. *)
