(** Growable ring buffer of ints — a flat [int Queue.t] with O(1)
    push/pop that never allocates per element. *)

type t

val create : ?initial:int -> unit -> t
val length : t -> int
val is_empty : t -> bool
val push : t -> int -> unit

val peek : t -> int
(** Oldest element without removing it, or [-1] when empty. *)

val pop : t -> int
(** Oldest element, or [-1] when empty. *)

val clear : t -> unit
