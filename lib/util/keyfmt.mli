(** Allocation-free key/value rendering for the workload drivers.

    A render writes into a per-domain scratch buffer; the only
    allocation is the final {!str} result, and {!table} precomputes
    whole bounded keyspaces so steady-state drivers allocate nothing
    per key. Byte-identical with the [Printf.sprintf] grammars it
    replaces (see the differential suite in test_util.ml) — host-only
    by construction. *)

type t
(** A render in progress over per-domain scratch. *)

val scratch : unit -> t
(** The calling domain's scratch, reset to empty. Do not hold one
    across a scheduling point ([Sched.cpu], IO, [force]): fibers on the
    same domain share it. *)

val lit : t -> string -> unit
(** Append a literal. *)

val char : t -> char -> unit
(** Append one character. *)

val dec : t -> width:int -> int -> unit
(** [dec t ~width v] appends [Printf.sprintf "%0*d" width v]:
    zero-padded fixed-width decimal, keeping all digits when [v] is
    wider. [~width:0] is plain ["%d"]. *)

val str : t -> string
(** Materialize the rendered bytes (the render's one allocation). *)

val table : int -> (t -> int -> unit) -> string array
(** [table n f] precomputes keys [0..n-1], rendering key [i] with
    [f scratch i]. Immutable strings: safe to build once at module init
    and share across domains. *)
