(* A process-wide fork/join pool over OCaml 5 domains.

   One pool for the whole process: the bench runner's `-j N` budget
   covers both experiment-level tasks and the fine-grained simulation
   cells they submit, so N is the total number of domains doing
   simulation work, never N experiments times M cells.

   Design notes:

   - Tasks are *claimed*, not dequeued: a task's thunk is taken under
     the pool lock, and queue entries whose thunk is already gone are
     dropped lazily when a scan meets them. This makes "run my own
     task inline at await" race-free — whoever takes the thunk runs
     it, everyone else sees an empty slot.

   - Each submitter has a deque (keyed by a domain-local lane id; all
     non-worker domains share lane 0). Owners pop newest-first,
     thieves steal oldest-first, so cross-domain execution starts in
     submission order while a domain draining its own backlog stays
     cache-hot.

   - [await] never blocks while eligible work exists: it first claims
     its own task, then helps with other queued tasks. A domain that
     is already inside a task only helps [Light] tasks — an experiment
     must never nest another whole experiment (and its domain-local
     metrics/trace teardown) in the middle of its own measurement
     window. Light tasks are required to be self-contained with
     respect to domain-local state; the simulation cell layer
     guarantees this by swapping every DLS store around the cell body.

   - Zero workers is a valid configuration: tasks then run inline at
     [await], preserving serial execution order exactly. *)

type cls = Light | Heavy

type packed = Job : 'a cell -> packed

and 'a cell = {
  mutable thunk : (unit -> 'a) option; (* Some until claimed *)
  mutable result : ('a, exn * Printexc.raw_backtrace) result option;
  j_cls : cls;
}

type 'a task = 'a cell

let lock = Mutex.create ()
let cond = Condition.create ()

(* lanes.(0) = every non-worker domain; lanes.(i) = worker i. Deques
   are newest-first lists. *)
let lanes : packed list ref array ref = ref [| ref [] |]
let lane_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

(* Is this domain currently executing a pool task? Selects which
   classes [await] may help with. *)
let in_task_key : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref false)

let workers : unit Domain.t list ref = ref []
let n_workers = ref 0
let stopping = ref false
let init_hooks : (unit -> unit) list ref = ref []

let worker_count () =
  Mutex.lock lock;
  let n = !n_workers in
  Mutex.unlock lock;
  n

let on_worker_init f = init_hooks := f :: !init_hooks

(* Remove the first claimable entry of [l] (skipping, and dropping,
   entries whose thunk is already claimed). Returns it plus the
   remaining list. *)
let rec extract ~only_light l =
  match l with
  | [] -> (None, [])
  | (Job c as j) :: rest ->
    if c.thunk = None then extract ~only_light rest
    else if (not only_light) || c.j_cls = Light then (Some j, rest)
    else
      let found, rest' = extract ~only_light rest in
      (found, j :: rest')

(* Newest-first (the owner's end). *)
let take_front ~only_light d =
  let found, rest = extract ~only_light !d in
  d := rest;
  found

(* Oldest-first (the stealing end). *)
let take_back ~only_light d =
  let found, rev_rest = extract ~only_light (List.rev !d) in
  d := List.rev rev_rest;
  found

(* Claim a runnable thunk; caller must hold [lock]. Returns a closure
   to run *outside* the lock. *)
let find_work ~only_light ~lane =
  let ls = !lanes in
  let n = Array.length ls in
  let found =
    match
      if lane < n then take_front ~only_light ls.(lane) else None
    with
    | Some _ as s -> s
    | None ->
      let rec scan i =
        if i >= n then None
        else if i = lane then scan (i + 1)
        else
          match take_back ~only_light ls.(i) with
          | Some _ as s -> s
          | None -> scan (i + 1)
      in
      scan 0
  in
  match found with
  | None -> None
  | Some (Job c) ->
    let f = Option.get c.thunk in
    c.thunk <- None;
    Some
      (fun () ->
        let in_task = Domain.DLS.get in_task_key in
        let saved = !in_task in
        in_task := true;
        let r =
          match f () with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ())
        in
        in_task := saved;
        Mutex.lock lock;
        c.result <- Some r;
        Condition.broadcast cond;
        Mutex.unlock lock)

let worker_main lane () =
  Domain.DLS.set lane_key lane;
  List.iter (fun f -> f ()) (List.rev !init_hooks);
  Mutex.lock lock;
  let rec loop () =
    match find_work ~only_light:false ~lane with
    | Some run ->
      Mutex.unlock lock;
      run ();
      Mutex.lock lock;
      loop ()
    | None ->
      (* Drain everything before honoring shutdown: no lost tasks. *)
      if !stopping then ()
      else begin
        Condition.wait cond lock;
        loop ()
      end
  in
  loop ();
  Mutex.unlock lock

let ensure_workers n =
  Mutex.lock lock;
  let have = !n_workers in
  if n > have then begin
    lanes :=
      Array.init (n + 1) (fun i ->
          if i < Array.length !lanes then !lanes.(i) else ref []);
    for i = have + 1 to n do
      workers := Domain.spawn (worker_main i) :: !workers;
      n_workers := i
    done
  end;
  Mutex.unlock lock

let submit ?(cls = Light) f =
  let c = { thunk = Some f; result = None; j_cls = cls } in
  Mutex.lock lock;
  let lane = Domain.DLS.get lane_key in
  let ls = !lanes in
  let d = if lane < Array.length ls then ls.(lane) else ls.(0) in
  d := Job c :: !d;
  Condition.broadcast cond;
  Mutex.unlock lock;
  c

let await c =
  Mutex.lock lock;
  let lane = Domain.DLS.get lane_key in
  let rec wait () =
    match c.result with
    | Some r ->
      Mutex.unlock lock;
      (match r with
      | Ok v -> v
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
    | None ->
      if c.thunk <> None then begin
        (* Not started yet: run it inline, whatever its class — it is
           ours, so it cannot nest a foreign experiment. *)
        let f = Option.get c.thunk in
        c.thunk <- None;
        Mutex.unlock lock;
        let in_task = Domain.DLS.get in_task_key in
        let saved = !in_task in
        in_task := true;
        let r =
          match f () with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ())
        in
        in_task := saved;
        Mutex.lock lock;
        c.result <- Some r;
        Condition.broadcast cond;
        wait ()
      end
      else begin
        (* In flight elsewhere: help with queued work instead of
           spinning. Inside a task, help only Light (cell) tasks. *)
        let only_light = !(Domain.DLS.get in_task_key) in
        match find_work ~only_light ~lane with
        | Some run ->
          Mutex.unlock lock;
          run ();
          Mutex.lock lock;
          wait ()
        | None ->
          Condition.wait cond lock;
          wait ()
      end
  in
  wait ()

let shutdown () =
  Mutex.lock lock;
  stopping := true;
  Condition.broadcast cond;
  let ds = !workers in
  workers := [];
  Mutex.unlock lock;
  List.iter Domain.join ds;
  Mutex.lock lock;
  stopping := false;
  n_workers := 0;
  lanes := [| (!lanes).(0) |];
  Mutex.unlock lock
