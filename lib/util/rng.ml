(* splitmix64 carried as two untagged 32-bit halves. The simulator draws
   from Rng.t inside every workload inner loop; the boxed-Int64
   formulation allocated ~a dozen minor words per draw. State and
   results live in native ints (plus a reusable 2-cell scratch for the
   {!Splitmix} mix output), so a draw allocates nothing. Sequences are
   bit-exact with the Int64 original — RNG draws are simulated values —
   pinned by the differential suite in test_util.ml. *)

let mask32 = Splitmix.mask32

type t = { mutable hi : int; mutable lo : int; out : int array }

(* golden gamma 0x9E3779B97F4A7C15 *)
let gamma_hi = 0x9E3779B9
let gamma_lo = 0x7F4A7C15

let create seed =
  (* Matches Int64.of_int: asr sign-extends negative seeds into the
     high half exactly as two's complement does. *)
  { hi = (seed asr 32) land mask32; lo = seed land mask32; out = [| 0; 0 |] }

(* state += gamma; mix state into t.out. *)
let[@inline] step t =
  let s = t.lo + gamma_lo in
  t.lo <- s land mask32;
  t.hi <- (t.hi + gamma_hi + (s lsr 32)) land mask32;
  Splitmix.mix t.hi t.lo t.out

let bits64 t =
  step t;
  Int64.logor
    (Int64.shift_left (Int64.of_int t.out.(0)) 32)
    (Int64.of_int t.out.(1))

let split t =
  step t;
  { hi = t.out.(0); lo = t.out.(1); out = [| 0; 0 |] }

let int t bound =
  assert (bound > 0);
  step t;
  (* Low 62 bits, i.e. [Int64.to_int (bits64 t) land max_int]. *)
  let v = ((t.out.(0) land 0x3FFFFFFF) lsl 32) lor t.out.(1) in
  v mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t =
  step t;
  (* bits64 >>> 11 is a 53-bit value; exact in both int64 and float. *)
  let v = (t.out.(0) lsl 21) lor (t.out.(1) lsr 11) in
  float_of_int v *. 0x1p-53

let bool t =
  step t;
  t.out.(1) land 1 = 1

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let fill t b ~pos ~len =
  for i = pos to pos + len - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (int t 256))
  done

let bytes t n =
  let b = Bytes.create n in
  fill t b ~pos:0 ~len:n;
  b

let string t n =
  let b = Bytes.create n in
  fill t b ~pos:0 ~len:n;
  Bytes.unsafe_to_string b
