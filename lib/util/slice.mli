(** Byte slices: a view [{buf; pos; len}] into a [Bytes.t], the currency
    of the zero-copy data plane.

    Every layer of the IO stack (block device, stripe, object store, file
    system) passes slices instead of copying payloads into staging
    buffers, so a page frame travels from the application to the disk
    medium with exactly one copy — the commit-time blit into the medium.

    {2 The ownership rule}

    A slice handed to a device write ([Disk.writev] and everything built
    on it) must not be mutated until the command completes in virtual
    time. The device logically snapshots the bytes at issue — the crash
    model tears an in-flight command to a sector prefix {e of the bytes
    as they were at issue} — but physically reads them at commit time;
    the ownership rule is what makes the two equivalent. MemSnap upholds
    it with its checkpoint-in-progress COW (an in-flight page frame is
    never mutated in place; writers are redirected to a fresh frame), the
    file systems by keeping dirty cache blocks pinned until their
    writeback command completes.

    Devices {!borrow} each slice at issue and {!release} it at
    completion. When {!debug_checks} is on, mutating a borrowed slice
    through this module raises {!Borrowed}, and the device additionally
    verifies a content checksum at commit time, so a violation anywhere
    (even via a raw alias of [buf]) is caught in tests. *)

type t

exception Borrowed of string

val make : Bytes.t -> pos:int -> len:int -> t
(** View of [buf.[pos .. pos+len-1]]. Raises [Invalid_argument] when out
    of bounds. *)

val of_bytes : Bytes.t -> t
(** Whole-buffer view; no copy. *)

val of_string : string -> t
(** Read-only view of a string; no copy. The slice aliases the string's
    storage, so mutating operations on it are forbidden (enforced when
    {!debug_checks} is on; undefined behaviour otherwise). *)

val sub : t -> pos:int -> len:int -> t
(** Sub-view, relative to the slice. No copy. *)

val buf : t -> Bytes.t
val pos : t -> int
val length : t -> int

val to_bytes : t -> Bytes.t
(** Copy out. *)

val to_string : t -> string

val blit_to_bytes : t -> src_pos:int -> Bytes.t -> dst_pos:int -> len:int -> unit
(** Copy out of the slice (always allowed — reads don't need ownership). *)

val blit_from_bytes : Bytes.t -> src_pos:int -> t -> dst_pos:int -> len:int -> unit
(** Copy into the slice. Checked mutation: raises {!Borrowed} when
    {!debug_checks} is on and the slice is borrowed. *)

val fill : t -> char -> unit
(** Checked mutation (see {!blit_from_bytes}). *)

(** {2 Borrow discipline} *)

val debug_checks : bool ref
(** Default [false]. Turn on in tests: checked mutations of borrowed
    slices raise, and devices verify content checksums at commit. *)

val borrow : t -> unit
(** Mark the slice lent out to an in-flight command. Cheap (one integer
    increment); called by devices at issue. *)

val release : t -> unit
(** Return the borrow; called by devices at completion (or tear). *)

val borrows : t -> int

val checksum : t -> int
(** Content hash used by devices under {!debug_checks} to detect
    ownership-rule violations that bypass this module. Host-only: never
    feeds simulated state. *)
