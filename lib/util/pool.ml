type class_stats = {
  cs_size : int;
  cs_hits : int;
  cs_misses : int;
  cs_recycles : int;
  cs_outstanding : int;
  cs_retained : int;
  cs_dropped : int;
}

type totals = {
  t_hits : int;
  t_misses : int;
  t_recycles : int;
  t_outstanding : int;
  t_retained_bytes : int;
}

exception Violation of string

let min_pooled = 4096

(* Retaining more than this per class stops paying: excess recycles are
   dropped to the GC instead of parked. 256 MiB covers the largest
   single-run working set in the bench suite (a fully-written 128 MiB
   file's worth of 256 KiB medium chunks) without letting a pathological
   caller pin unbounded host memory. *)
let max_retained_bytes_per_class = 256 * 1024 * 1024

let debug_checks = Slice.debug_checks
let poison = '\xa5'

type cls = {
  c_size : int;
  c_cap : int;
  (* Free buffers as a stack over a growable array: pushing/popping
     allocates nothing (no list cells on the hot path). *)
  mutable c_free : Bytes.t array;
  mutable c_poisoned : bool array; (* parallel: parked under debug_checks *)
  mutable c_len : int;
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_recycles : int;
  mutable c_outstanding : int;
  mutable c_dropped : int;
}

type store = { classes : (int, cls) Hashtbl.t }

let store_key : store Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { classes = Hashtbl.create 16 })

let store () = Domain.DLS.get store_key

type event = Hit | Miss | Recycle

let observer : (event -> int -> unit) ref = ref (fun _ _ -> ())
let set_observer f = observer := f

let cls_for size =
  let s = store () in
  match Hashtbl.find_opt s.classes size with
  | Some c -> c
  | None ->
    let c =
      {
        c_size = size;
        c_cap = max 8 (max_retained_bytes_per_class / size);
        c_free = [||];
        c_poisoned = [||];
        c_len = 0;
        c_hits = 0;
        c_misses = 0;
        c_recycles = 0;
        c_outstanding = 0;
        c_dropped = 0;
      }
    in
    Hashtbl.add s.classes size c;
    c

let check_poison c b =
  let n = Bytes.length b in
  let rec go i =
    if i < n then
      if Bytes.unsafe_get b i <> poison then
        raise
          (Violation
             (Printf.sprintf
                "Pool.alloc: %d-byte pooled buffer was mutated after being \
                 recycled (byte %d): a stale reference wrote through it \
                 (use-after-recycle)"
                c.c_size i))
      else go (i + 1)
  in
  go 0

let alloc n =
  if n < min_pooled then Bytes.create n
  else begin
    let c = cls_for n in
    if c.c_len > 0 then begin
      c.c_len <- c.c_len - 1;
      let b = c.c_free.(c.c_len) in
      c.c_free.(c.c_len) <- Bytes.empty;
      c.c_hits <- c.c_hits + 1;
      c.c_outstanding <- c.c_outstanding + 1;
      if !debug_checks && c.c_poisoned.(c.c_len) then check_poison c b;
      !observer Hit n;
      b
    end
    else begin
      c.c_misses <- c.c_misses + 1;
      c.c_outstanding <- c.c_outstanding + 1;
      !observer Miss n;
      Bytes.create n
    end
  end

let alloc_zeroed n =
  if n < min_pooled then Bytes.make n '\000'
  else begin
    let b = alloc n in
    Bytes.fill b 0 n '\000';
    b
  end

let recycle b =
  let n = Bytes.length b in
  if n >= min_pooled then begin
    let c = cls_for n in
    if !debug_checks then begin
      for i = 0 to c.c_len - 1 do
        if c.c_free.(i) == b then
          raise
            (Violation
               (Printf.sprintf
                  "Pool.recycle: %d-byte buffer recycled twice (still parked \
                   on the free list)"
                  n))
      done;
      Bytes.fill b 0 n poison
    end;
    c.c_recycles <- c.c_recycles + 1;
    c.c_outstanding <- c.c_outstanding - 1;
    if c.c_len >= c.c_cap then c.c_dropped <- c.c_dropped + 1
    else begin
      if c.c_len >= Array.length c.c_free then begin
        let cap = max 8 (2 * Array.length c.c_free) in
        let nf = Array.make cap Bytes.empty in
        let np = Array.make cap false in
        Array.blit c.c_free 0 nf 0 c.c_len;
        Array.blit c.c_poisoned 0 np 0 c.c_len;
        c.c_free <- nf;
        c.c_poisoned <- np
      end;
      c.c_free.(c.c_len) <- b;
      c.c_poisoned.(c.c_len) <- !debug_checks;
      c.c_len <- c.c_len + 1
    end;
    !observer Recycle n
  end

let stats () =
  Hashtbl.fold
    (fun _ c acc ->
      {
        cs_size = c.c_size;
        cs_hits = c.c_hits;
        cs_misses = c.c_misses;
        cs_recycles = c.c_recycles;
        cs_outstanding = c.c_outstanding;
        cs_retained = c.c_len;
        cs_dropped = c.c_dropped;
      }
      :: acc)
    (store ()).classes []
  |> List.sort (fun a b -> compare a.cs_size b.cs_size)

let totals () =
  Hashtbl.fold
    (fun _ c t ->
      {
        t_hits = t.t_hits + c.c_hits;
        t_misses = t.t_misses + c.c_misses;
        t_recycles = t.t_recycles + c.c_recycles;
        t_outstanding = t.t_outstanding + c.c_outstanding;
        t_retained_bytes = t.t_retained_bytes + (c.c_len * c.c_size);
      })
    (store ()).classes
    {
      t_hits = 0;
      t_misses = 0;
      t_recycles = 0;
      t_outstanding = 0;
      t_retained_bytes = 0;
    }

let clear () = Hashtbl.reset (store ()).classes
