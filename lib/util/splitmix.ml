(* The splitmix64 finalizer on unboxed 32-bit halves.

   Both the RNG ({!Rng}) and the on-media checksum ({!Wire.checksum})
   run one full mix per drawn value / per 8 bytes hashed, deep inside
   simulation hot loops. [Int64] arithmetic boxes every intermediate,
   which made these two functions the dominant minor-heap allocators of
   the WAL-backed experiments; carrying a 64-bit quantity as two
   untagged native ints (its 32-bit halves) makes a mix allocate
   nothing. Every step is bit-exact with the Int64 original — pinned by
   the qcheck differential suites in test_util.ml, because RNG draw
   sequences and on-media checksum bytes are simulated values that must
   not move. *)

let mask32 = 0xFFFFFFFF

(* z ^= z >>> s for 0 < s < 32, in halves. *)
let[@inline] xsr_hi hi s = hi lxor (hi lsr s)

let[@inline] xsr_lo hi lo s =
  lo lxor (((lo lsr s) lor ((hi lsl (32 - s)) land mask32)) land mask32)

(* 64-bit multiply (mod 2^64) in halves. 16-bit limbs keep the partial
   products of the low word inside OCaml's 63-bit int range; the cross
   terms feed only the high word, where native-int wraparound (mod 2^63)
   preserves the 32 bits that are kept. [mul64_lo] returns up to 34 bits:
   the low 32 of the product plus the carry into the high half, which the
   caller passes to [mul64_hi]. *)
let[@inline] mul64_lo al bl =
  let al0 = al land 0xFFFF and al1 = al lsr 16 in
  let bl0 = bl land 0xFFFF and bl1 = bl lsr 16 in
  (al0 * bl0)
  + ((((al0 * bl1) land 0xFFFF) + ((al1 * bl0) land 0xFFFF)) lsl 16)

let[@inline] mul64_hi ah al bh bl carry =
  let al0 = al land 0xFFFF and al1 = al lsr 16 in
  let bl0 = bl land 0xFFFF and bl1 = bl lsr 16 in
  ((al1 * bl1) + ((al0 * bl1) lsr 16) + ((al1 * bl0) lsr 16) + carry
  + (al * bh) + (ah * bl))
  land mask32

(* splitmix64's two multiplicative constants. *)
let c1_hi = 0xBF58476D
let c1_lo = 0x1CE4E5B9
let c2_hi = 0x94D049BB
let c2_lo = 0x133111EB

(* One full mix: z ^= z >>> 30; z *= C1; z ^= z >>> 27; z *= C2;
   z ^= z >>> 31. The result lands in [out.(0)] (high half) and
   [out.(1)] (low half): OCaml cannot return an unboxed pair, so the
   caller supplies a reusable 2-cell scratch. *)
let mix hi lo out =
  let lo1 = xsr_lo hi lo 30 and hi1 = xsr_hi hi 30 in
  let t = mul64_lo lo1 c1_lo in
  let lo2 = t land mask32 in
  let hi2 = mul64_hi hi1 lo1 c1_hi c1_lo (t lsr 32) in
  let lo3 = xsr_lo hi2 lo2 27 and hi3 = xsr_hi hi2 27 in
  let t = mul64_lo lo3 c2_lo in
  let lo4 = t land mask32 in
  let hi4 = mul64_hi hi3 lo3 c2_hi c2_lo (t lsr 32) in
  out.(0) <- xsr_hi hi4 31;
  out.(1) <- xsr_lo hi4 lo4 31

(* mix (a + b) where both are 64-bit values in halves. *)
let[@inline] mix_add a_hi a_lo b_hi b_lo out =
  let s = a_lo + b_lo in
  mix ((a_hi + b_hi + (s lsr 32)) land mask32) (s land mask32) out
