(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows through seeded [Rng.t] values so
    that every experiment is reproducible bit-for-bit. The generator is
    splitmix64, which is fast, has a full 64-bit state, and supports cheap
    splitting for independent per-thread streams. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val fill : t -> Bytes.t -> pos:int -> len:int -> unit
(** [fill t b ~pos ~len] overwrites [len] bytes of [b] at [pos] with
    random bytes; draw-for-draw identical to {!bytes}. *)

val bytes : t -> int -> Bytes.t
(** [bytes t n] is [n] random bytes. *)

val string : t -> int -> string
(** [string t n] is [n] random bytes as a string, without the extra
    copy of [bytes t n |> Bytes.to_string]. Same draw sequence. *)
