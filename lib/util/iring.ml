(* Growable ring buffer of ints — a flat [int Queue.t] that never
   allocates per element. Used for FIFO orders on hot paths (e.g. TLB
   eviction): push/pop are O(1) and reuse the backing array. *)

type t = { mutable data : int array; mutable head : int; mutable len : int }

let create ?(initial = 16) () =
  { data = Array.make (max 2 initial) 0; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) 0 in
  (* Unwrap: oldest element lands at index 0. *)
  let tail1 = min t.len (cap - t.head) in
  Array.blit t.data t.head data 0 tail1;
  Array.blit t.data 0 data tail1 (t.len - tail1);
  t.data <- data;
  t.head <- 0

let push t v =
  let cap = Array.length t.data in
  if t.len = cap then grow t;
  let cap = Array.length t.data in
  let i = t.head + t.len in
  let i = if i >= cap then i - cap else i in
  Array.unsafe_set t.data i v;
  t.len <- t.len + 1

(* The oldest element without removing it, or -1 when empty. *)
let peek t = if t.len = 0 then -1 else Array.unsafe_get t.data t.head

(* Pop the oldest element, or -1 when empty. *)
let pop t =
  if t.len = 0 then -1
  else begin
    let v = Array.unsafe_get t.data t.head in
    let h = t.head + 1 in
    t.head <- (if h = Array.length t.data then 0 else h);
    t.len <- t.len - 1;
    v
  end

let clear t =
  t.head <- 0;
  t.len <- 0
