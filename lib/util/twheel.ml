(* Hierarchical timing wheel: the scheduler's run queue.

   A monotone priority queue over integer timestamps with FIFO order
   among equal priorities — the exact (prio, seq) lexicographic order of
   the binary heap it replaces (Msnap_sim.Pq, kept as the reference
   implementation for the differential tests) — but allocation-free in
   steady state. Entries live in a struct-of-arrays arena (int columns
   for prio and seq, one value column); each occupied wheel slot is a
   FIFO ring (Iring) of arena indices, so push recycles an arena slot
   and appends one int, and pop_min removes one int: no per-entry boxing
   and no O(log n) sifting.

   Layout: 13 levels of 32 slots each (5-bit digits, 65 bits >= the 63
   significant bits of an OCaml int). An entry with priority [p] is
   filed by the most-significant base-32 digit in which [p] differs from
   the wheel's current [base] (level 0 when none differs above digit 0):
   level selection depends only on [p] and [base], never on *when* the
   entry was pushed, so two entries with equal priority always sit in
   the same ring, in push order, at every moment of the wheel's life.
   That is the stability argument: cascades drain a ring front-to-back
   and re-file, preserving relative order, and a level-0 ring holds
   exactly one priority (all higher digits equal base's), so popping
   ring-FIFO is exactly (prio, seq) order. A delta-based wheel (level
   from [p - now]) would not have this property.

   Occupancy is tracked by one 32-bit bitmap per level plus a 13-bit
   bitmap of non-empty levels, so finding the minimum is a couple of
   count-trailing-zeros scans. [min_prio] cascades on demand: it
   advances [base] to the window of the lowest occupied upper slot and
   re-files that slot's entries into lower levels until the minimum
   reaches level 0.

   Monotonicity contract: [push] requires prio >= the last value
   returned by [min_prio]/[pop_min] (the wheel's notion of "now").
   The scheduler maintains this by construction — events are always
   scheduled at or after the current virtual clock. *)

let w_bits = 5
let w = 1 lsl w_bits (* 32 slots per level *)
let levels_max = 13

type level = {
  mutable occ : int; (* bitmap of non-empty slots *)
  rings : Iring.t array; (* per-slot FIFO of arena indices *)
}

(* Shared placeholder for unmaterialized levels. Never mutated (multiple
   wheels on multiple domains may hold it); [get_level] replaces the
   array element with a fresh level on first use. *)
let empty_level = { occ = 0; rings = [||] }

type 'a t = {
  (* struct-of-arrays arena *)
  mutable prio : int array;
  mutable seq : int array;
  mutable vals : 'a array;
  free : Iring.t; (* recycled arena indices *)
  mutable next_slot : int; (* bump allocator high-water mark *)
  mutable next_seq : int;
  mutable count : int;
  mutable base : int; (* floor of the current level-0 window *)
  mutable lvl_occ : int; (* bitmap of levels with occupied slots *)
  (* Exact minimum stored priority (-1 when empty), maintained
     incrementally so [min_prio] is a pure O(1) read: the scheduler's
     delay fast path probes it on every cpu/delay call, and a probe
     that cascaded (advancing [base]) mid-run could race ahead of the
     virtual clock and make pushes at the current time look "in the
     past". Cheap to keep exact: push is a compare, and after a pop the
     new minimum is either the next level-0 slot (one bitmap scan) or
     the minimum of the lowest occupied slot's ring (a scan the
     imminent cascade of that ring would pay for anyway). *)
  mutable cmin : int;
  levels : level array;
  dummy : 'a; (* parked in freed value cells; never observed *)
  (* Order audit under Slice.debug_checks: last popped (prio, seq). *)
  mutable last_prio : int;
  mutable last_seq : int;
}

let create ?(initial = 64) () =
  let initial = max 2 initial in
  let dummy : 'a = Obj.magic 0 in
  {
    prio = Array.make initial 0;
    seq = Array.make initial 0;
    vals = Array.make initial dummy;
    free = Iring.create ~initial:16 ();
    next_slot = 0;
    next_seq = 0;
    count = 0;
    base = 0;
    lvl_occ = 0;
    cmin = -1;
    levels = Array.make levels_max empty_level;
    dummy;
    last_prio = min_int;
    last_seq = min_int;
  }

let length t = t.count
let is_empty t = t.count = 0

(* Count trailing zeros of a non-zero bitmap (<= 32 bits), via a byte
   table: the min-scan runs once per event, so no bit-by-bit loops. *)
let tz8 =
  Array.init 256 (fun i ->
      if i = 0 then 8
      else begin
        let n = ref 0 in
        let v = ref i in
        while !v land 1 = 0 do
          incr n;
          v := !v lsr 1
        done;
        !n
      end)

let ctz m =
  if m land 0xff <> 0 then Array.unsafe_get tz8 (m land 0xff)
  else if (m lsr 8) land 0xff <> 0 then
    8 + Array.unsafe_get tz8 ((m lsr 8) land 0xff)
  else if (m lsr 16) land 0xff <> 0 then
    16 + Array.unsafe_get tz8 ((m lsr 16) land 0xff)
  else 24 + Array.unsafe_get tz8 ((m lsr 24) land 0xff)

let get_level t k =
  let l = Array.unsafe_get t.levels k in
  if l != empty_level then l
  else begin
    let l = { occ = 0; rings = Array.init w (fun _ -> Iring.create ~initial:4 ()) } in
    Array.unsafe_set t.levels k l;
    l
  end

(* Level of the most-significant base-32 digit where [p] differs from
   [base]: a digit count on [p lxor base]. *)
let rec level_of x k = if x < w then k else level_of (x lsr w_bits) (k + 1)

(* File arena entry [idx] into the wheel according to its priority and
   the current base. Shared by push and cascade, so filing is a pure
   function of (prio, base) — the stability invariant. *)
let place t idx =
  let p = Array.unsafe_get t.prio idx in
  let k = level_of (p lxor t.base) 0 in
  let l = get_level t k in
  let s = (p lsr (k * w_bits)) land (w - 1) in
  Iring.push (Array.unsafe_get l.rings s) idx;
  l.occ <- l.occ lor (1 lsl s);
  t.lvl_occ <- t.lvl_occ lor (1 lsl k)

let grow t =
  let cap = Array.length t.prio in
  let ncap = 2 * cap in
  let np = Array.make ncap 0 in
  let ns = Array.make ncap 0 in
  let nv = Array.make ncap t.dummy in
  Array.blit t.prio 0 np 0 cap;
  Array.blit t.seq 0 ns 0 cap;
  Array.blit t.vals 0 nv 0 cap;
  t.prio <- np;
  t.seq <- ns;
  t.vals <- nv

let push t ~prio v =
  if prio < t.base then invalid_arg "Twheel.push: priority is in the past";
  let idx =
    if Iring.is_empty t.free then begin
      if t.next_slot = Array.length t.prio then grow t;
      let i = t.next_slot in
      t.next_slot <- i + 1;
      i
    end
    else Iring.pop t.free
  in
  Array.unsafe_set t.prio idx prio;
  Array.unsafe_set t.seq idx t.next_seq;
  t.next_seq <- t.next_seq + 1;
  Array.unsafe_set t.vals idx v;
  place t idx;
  if t.count = 0 || prio < t.cmin then t.cmin <- prio;
  t.count <- t.count + 1

(* Cascade until the global minimum sits at level 0; return its
   priority. Requires count > 0. Terminates: each cascaded entry
   re-files at a strictly lower level (after the base advance, its xor
   with base has no bits at or above the cascaded digit). *)
let rec settle t =
  let k = ctz t.lvl_occ in
  if k = 0 then begin
    let l0 = Array.unsafe_get t.levels 0 in
    (t.base land lnot (w - 1)) lor ctz l0.occ
  end
  else begin
    let l = Array.unsafe_get t.levels k in
    let s = ctz l.occ in
    let shift = k * w_bits in
    (* Advance base into the cascaded slot's window: digits above k
       unchanged, digit k := s, digits below zeroed. All remaining
       entries are >= this floor (slot s was the lowest occupied slot of
       the lowest occupied level). *)
    t.base <- (t.base land lnot ((1 lsl (shift + w_bits)) - 1)) lor (s lsl shift);
    l.occ <- l.occ land lnot (1 lsl s);
    if l.occ = 0 then t.lvl_occ <- t.lvl_occ land lnot (1 lsl k);
    let ring = Array.unsafe_get l.rings s in
    let n = Iring.length ring in
    for _ = 1 to n do
      place t (Iring.pop ring)
    done;
    settle t
  end

let min_prio t = t.cmin

(* Minimum priority in [ring], by rotating it in place (pop n, push n:
   FIFO order is restored after a full rotation). Allocation-free. *)
let rec scan_ring t ring n m =
  if n = 0 then m
  else begin
    let idx = Iring.pop ring in
    let p = Array.unsafe_get t.prio idx in
    Iring.push ring idx;
    scan_ring t ring (n - 1) (if p < m then p else m)
  end

(* Recompute [cmin] after a pop. If level 0 is still occupied its lowest
   slot is the global minimum (upper-level entries all exceed the
   level-0 window). Otherwise the minimum lives in the lowest occupied
   slot of the lowest occupied level — its ring must be scanned, but
   the very next pop's cascade drains that ring anyway, so the scan at
   most doubles work already owed. *)
let refresh_min t =
  if t.count = 0 then t.cmin <- -1
  else begin
    let l0 = Array.unsafe_get t.levels 0 in
    if l0.occ <> 0 then t.cmin <- (t.base land lnot (w - 1)) lor ctz l0.occ
    else begin
      let k = ctz t.lvl_occ in
      let l = Array.unsafe_get t.levels k in
      let s = ctz l.occ in
      let ring = Array.unsafe_get l.rings s in
      t.cmin <- scan_ring t ring (Iring.length ring) max_int
    end
  end

let pop_min t =
  if t.count = 0 then invalid_arg "Twheel.pop_min: empty";
  let m = settle t in
  if !Slice.debug_checks && m <> t.cmin then
    failwith
      (Printf.sprintf "Twheel: cached min %d disagrees with settle %d" t.cmin m);
  let l0 = Array.unsafe_get t.levels 0 in
  let s = ctz l0.occ in
  let ring = Array.unsafe_get l0.rings s in
  let idx = Iring.pop ring in
  if Iring.is_empty ring then begin
    l0.occ <- l0.occ land lnot (1 lsl s);
    if l0.occ = 0 then t.lvl_occ <- t.lvl_occ land lnot 1
  end;
  t.count <- t.count - 1;
  let v = Array.unsafe_get t.vals idx in
  Array.unsafe_set t.vals idx t.dummy;
  Iring.push t.free idx;
  refresh_min t;
  if !Slice.debug_checks then begin
    let p = Array.unsafe_get t.prio idx in
    let q = Array.unsafe_get t.seq idx in
    if p < t.last_prio || (p = t.last_prio && q <= t.last_seq) then
      failwith
        (Printf.sprintf
           "Twheel: order violation: popped (%d,%d) after (%d,%d)" p q
           t.last_prio t.last_seq);
    t.last_prio <- p;
    t.last_seq <- q
  end;
  v
