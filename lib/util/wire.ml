(* Little-endian field codecs plus a 64-bit content checksum for the
   on-media record formats (FFS journal, sqlite WAL frames, pg WAL
   records, metadata snapshots). Host-only helpers: encoding and
   decoding never touch the scheduler. *)

let get_u16 b off = Bytes.get_uint16_le b off
let set_u16 b off v = Bytes.set_uint16_le b off v
let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF
let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

(* 62-bit non-negative payloads (sizes, sequence numbers): the sign bit
   and OCaml's tag bit are never needed on media. *)
let get_u64 b off = Int64.to_int (Bytes.get_int64_le b off) land max_int
let set_u64 b off v = Bytes.set_int64_le b off (Int64.of_int v)

let mask32 = Splitmix.mask32

(* splitmix64-fed fold over the bytes, word at a time; the result is a
   non-negative OCaml int so it round-trips through {!set_u64}. An
   [init] chains checksums (each WAL frame mixes in its predecessor's).

   The checksum runs over every journaled byte — one full mix per 8-byte
   word of every WAL frame and journal record — so the fold works on
   unboxed 32-bit halves ({!Splitmix}): the only allocation per call is
   the 2-cell scratch, never per word. Bit-exact with the seed's Int64
   fold (qcheck-pinned in test_util.ml); the media format must not
   move. *)
let checksum ?(init = 0x5DEECE66D) b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Wire.checksum";
  let out = [| 0; 0 |] in
  (* h = mix64 init; init is a non-negative int (<= 2^62 - 1). *)
  Splitmix.mix (init lsr 32) (init land mask32) out;
  let h_hi = ref out.(0) and h_lo = ref out.(1) in
  let full = len / 8 in
  for i = 0 to full - 1 do
    let o = pos + (i * 8) in
    (* Little-endian 64-bit word in halves (16-bit reads stay untagged). *)
    let w_lo =
      Bytes.get_uint16_le b o lor (Bytes.get_uint16_le b (o + 2) lsl 16)
    in
    let w_hi =
      Bytes.get_uint16_le b (o + 4) lor (Bytes.get_uint16_le b (o + 6) lsl 16)
    in
    Splitmix.mix_add !h_hi !h_lo w_hi w_lo out;
    h_hi := out.(0);
    h_lo := out.(1)
  done;
  let word = ref 0 in
  for i = pos + (full * 8) to pos + len - 1 do
    word := (!word lsl 8) lor Char.code (Bytes.get b i)
  done;
  if len mod 8 <> 0 then begin
    (* word < 2^56, non-negative. *)
    Splitmix.mix_add !h_hi !h_lo (!word lsr 32) (!word land mask32) out;
    h_hi := out.(0);
    h_lo := out.(1)
  end;
  (* Fold in the length, then keep the low 62 bits (a non-negative
     OCaml int), exactly as [Int64.to_int _ land max_int] did. *)
  Splitmix.mix_add !h_hi !h_lo (len lsr 32) (len land mask32) out;
  ((out.(0) land 0x3FFFFFFF) lsl 32) lor out.(1)
