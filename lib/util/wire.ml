(* Little-endian field codecs plus a 64-bit content checksum for the
   on-media record formats (FFS journal, sqlite WAL frames, pg WAL
   records, metadata snapshots). Host-only helpers: encoding and
   decoding never touch the scheduler. *)

let get_u16 b off = Bytes.get_uint16_le b off
let set_u16 b off v = Bytes.set_uint16_le b off v
let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF
let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

(* 62-bit non-negative payloads (sizes, sequence numbers): the sign bit
   and OCaml's tag bit are never needed on media. *)
let get_u64 b off = Int64.to_int (Bytes.get_int64_le b off) land max_int
let set_u64 b off v = Bytes.set_int64_le b off (Int64.of_int v)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* splitmix64-fed fold over the bytes, word at a time; the result is a
   non-negative OCaml int so it round-trips through {!set_u64}. An
   [init] chains checksums (each WAL frame mixes in its predecessor's). *)
let checksum ?(init = 0x5DEECE66D) b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Wire.checksum";
  let h = ref (mix64 (Int64.of_int init)) in
  let word = ref 0 in
  let full = len / 8 in
  for i = 0 to full - 1 do
    h := mix64 (Int64.add !h (Bytes.get_int64_le b (pos + (i * 8))))
  done;
  for i = pos + (full * 8) to pos + len - 1 do
    word := (!word lsl 8) lor Char.code (Bytes.get b i)
  done;
  if len mod 8 <> 0 then h := mix64 (Int64.add !h (Int64.of_int !word));
  Int64.to_int (mix64 (Int64.add !h (Int64.of_int len))) land max_int
