(* Buckets: values < 64 are exact; above that, each power of two is split
   into 32 linear sub-buckets, giving <= ~3% relative bucket width. *)

let sub_bits = 5
let sub_count = 1 lsl sub_bits (* 32 *)
let linear_limit = 64

type t = {
  mutable count : int;
  sum : float array;
      (* one-element float array: unboxed in-place accumulation, where a
         mutable float field in this mixed record would box every set *)
  mutable max_v : int;
  mutable min_v : int;
  buckets : int array;
}

let bucket_count = linear_limit + (64 * sub_count)

let create () =
  { count = 0; sum = [| 0.0 |]; max_v = 0; min_v = max_int; buckets = Array.make bucket_count 0 }

let index_of v =
  if v < linear_limit then v
  else
    let msb = 62 - Bits.clz v in
    (* v in [2^msb, 2^(msb+1)); sub-bucket from the next bits *)
    let msb = if msb < 0 then 0 else msb in
    let sub = (v lsr (msb - sub_bits)) land (sub_count - 1) in
    linear_limit + (msb * sub_count) + sub

let value_of idx =
  if idx < linear_limit then idx
  else
    let idx = idx - linear_limit in
    let msb = idx / sub_count in
    let sub = idx mod sub_count in
    (* Upper edge of the bucket. *)
    (1 lsl msb) + ((sub + 1) lsl (msb - sub_bits)) - 1

let add t v =
  let v = if v < 0 then 0 else v in
  t.count <- t.count + 1;
  t.sum.(0) <- t.sum.(0) +. float_of_int v;
  if v > t.max_v then t.max_v <- v;
  if v < t.min_v then t.min_v <- v;
  let i = index_of v in
  t.buckets.(i) <- t.buckets.(i) + 1

let merge dst src =
  dst.count <- dst.count + src.count;
  dst.sum.(0) <- dst.sum.(0) +. src.sum.(0);
  if src.max_v > dst.max_v then dst.max_v <- src.max_v;
  if src.min_v < dst.min_v then dst.min_v <- src.min_v;
  for i = 0 to bucket_count - 1 do
    dst.buckets.(i) <- dst.buckets.(i) + src.buckets.(i)
  done

let count t = t.count
let mean t = if t.count = 0 then 0.0 else t.sum.(0) /. float_of_int t.count
let max_value t = t.max_v
let min_value t = if t.count = 0 then 0 else t.min_v

let percentile t p =
  if t.count = 0 then 0
  else begin
    let target =
      let f = Float.of_int t.count *. p /. 100.0 in
      let n = int_of_float (Float.ceil f) in
      if n < 1 then 1 else if n > t.count then t.count else n
    in
    let rec scan i seen =
      if i >= bucket_count then t.max_v
      else
        let seen = seen + t.buckets.(i) in
        if seen >= target then min (value_of i) t.max_v else scan (i + 1) seen
    in
    scan 0 0
  end

let clear t =
  t.count <- 0;
  t.sum.(0) <- 0.0;
  t.max_v <- 0;
  t.min_v <- max_int;
  Array.fill t.buckets 0 bucket_count 0
