(** Hierarchical timing wheel: a monotone priority queue over integer
    timestamps with FIFO order among equal priorities — the same
    (prio, seq) lexicographic order as the binary heap it replaces
    ([Msnap_sim.Pq], kept as the reference implementation), but
    allocation-free in steady state. Entries live in a recycled
    struct-of-arrays arena; wheel slots are FIFO rings of arena
    indices; occupancy bitmaps make the min-scan a couple of
    count-trailing-zeros lookups.

    Monotonicity contract: {!push} requires [prio >=] the last value
    returned by {!min_prio}/{!pop_min} (the wheel's notion of "now");
    [Invalid_argument] otherwise. The scheduler satisfies this by
    construction: events are scheduled at or after the virtual clock.

    Under [Slice.debug_checks], every pop is audited against the
    previous one for strict (prio, seq) order. *)

type 'a t

val create : ?initial:int -> unit -> 'a t
(** [initial] sizes the arena (it grows by doubling). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> prio:int -> 'a -> unit
(** O(1). FIFO among equal priorities. *)

val min_prio : 'a t -> int
(** Exact priority of the next entry, or [-1] when empty. Pure O(1)
    (a cached-minimum read): safe to probe at any time, in particular
    from the scheduler's delay fast path between pops. *)

val pop_min : 'a t -> 'a
(** Remove and return the next entry: lowest priority, FIFO among
    equals. Cascades upper wheel levels on demand (amortized O(1) per
    event over a run), advancing the wheel's "now" up to the popped
    priority. Allocation-free. [Invalid_argument] when empty. *)
