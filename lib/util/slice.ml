type t = { s_buf : Bytes.t; s_pos : int; s_len : int; mutable s_borrows : int }

exception Borrowed of string

let make buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg
      (Printf.sprintf "Slice.make: pos=%d len=%d over %d bytes" pos len
         (Bytes.length buf));
  { s_buf = buf; s_pos = pos; s_len = len; s_borrows = 0 }

let of_bytes b = { s_buf = b; s_pos = 0; s_len = Bytes.length b; s_borrows = 0 }

(* Safe because every consumer treats slices as read-only sources unless
   it goes through the checked mutation API below, which refuses to touch
   a string-backed slice when checks are on. *)
let of_string s = of_bytes (Bytes.unsafe_of_string s)

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.s_len then
    invalid_arg
      (Printf.sprintf "Slice.sub: pos=%d len=%d over slice of %d" pos len t.s_len);
  { s_buf = t.s_buf; s_pos = t.s_pos + pos; s_len = len; s_borrows = 0 }

let buf t = t.s_buf
let pos t = t.s_pos
let length t = t.s_len

let to_bytes t = Bytes.sub t.s_buf t.s_pos t.s_len
let to_string t = Bytes.sub_string t.s_buf t.s_pos t.s_len

let blit_to_bytes t ~src_pos dst ~dst_pos ~len =
  if src_pos < 0 || len < 0 || src_pos + len > t.s_len then
    invalid_arg "Slice.blit_to_bytes: bad range";
  Bytes.blit t.s_buf (t.s_pos + src_pos) dst dst_pos len

(* --- borrow discipline --- *)

let debug_checks = ref false

let borrow t = t.s_borrows <- t.s_borrows + 1
let release t = if t.s_borrows > 0 then t.s_borrows <- t.s_borrows - 1
let borrows t = t.s_borrows

let check_mutable t op =
  if !debug_checks && t.s_borrows > 0 then
    raise
      (Borrowed
         (Printf.sprintf
            "Slice.%s: slice is lent to %d in-flight command(s); the \
             ownership rule forbids mutation until they complete"
            op t.s_borrows))

let blit_from_bytes src ~src_pos t ~dst_pos ~len =
  if dst_pos < 0 || len < 0 || dst_pos + len > t.s_len then
    invalid_arg "Slice.blit_from_bytes: bad range";
  check_mutable t "blit_from_bytes";
  Bytes.blit src src_pos t.s_buf (t.s_pos + dst_pos) len

let fill t c =
  check_mutable t "fill";
  Bytes.fill t.s_buf t.s_pos t.s_len c

(* FNV-1a. Only run under [debug_checks]; host-only, never feeds
   simulated state, so it need not be fast or collision-hardened. *)
let checksum t =
  let h = ref 0x3bf29ce484222325 (* FNV basis truncated to 63-bit int *) in
  for i = t.s_pos to t.s_pos + t.s_len - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get t.s_buf i)) * 0x100000001b3
  done;
  !h
