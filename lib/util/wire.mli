(** Little-endian field codecs and a 64-bit content checksum for
    on-media record formats (journal records, WAL frames, metadata
    snapshots). Host-only. *)

val get_u16 : Bytes.t -> int -> int
val set_u16 : Bytes.t -> int -> int -> unit
val get_u32 : Bytes.t -> int -> int
val set_u32 : Bytes.t -> int -> int -> unit

val get_u64 : Bytes.t -> int -> int
val set_u64 : Bytes.t -> int -> int -> unit
(** 62-bit non-negative payloads (sizes, sequence numbers). *)

val checksum : ?init:int -> Bytes.t -> pos:int -> len:int -> int
(** Deterministic splitmix64 fold over [b[pos..pos+len)], returned as a
    non-negative int. [init] chains checksums across records. *)
