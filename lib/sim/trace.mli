(** Host-only structured tracing over virtual time.

    When enabled, the simulator records spans (begin/end over virtual
    time), instant events, and flow links into a per-domain in-memory
    buffer, which exports as Chrome [trace_event] JSON (load it in
    [chrome://tracing] or [https://ui.perfetto.dev]). Events carry the
    current virtual timestamp, the green thread that emitted them, the
    {!Probe} they were emitted through (whose subsystem becomes the
    trace category), and optional key/value arguments.

    {b Tracing is host observability only.} No function in this module
    advances the virtual clock, charges CPU accounting, or touches any
    simulated state: with tracing on or off, serial or [-j N], every
    simulated number is byte-identical ("host work may change, simulated
    work may not"). The determinism suite enforces this.

    {b Zero cost when disabled.} Every emit function first reads one
    domain-local flag and returns. Call sites that compute arguments
    must guard with {!is_on} so the argument list is never allocated on
    the disabled path.

    The buffer is bounded ({!enable}'s [?limit]); once full, further
    events are counted in {!type-dump}[.d_dropped] and reported in the
    export metadata rather than silently discarded. The per-probe
    summary keeps accumulating past the cap, so {!summary} totals remain
    exact even for runs that overflow the buffer. *)

type arg = I of int | S of string | F of float
type args = (string * arg) list
type flow_phase = Flow_start | Flow_step | Flow_end

(** {2 Time and thread sources}

    [Trace] sits below [Sched] in the module graph, so the scheduler
    injects its clock and current-thread accessors at module-init time.
    Outside a [Sched.run] the sources report time 0 and thread
    [(-1, "host")]. *)

val set_time_source : (unit -> int) -> unit

val set_thread_source : tid:(unit -> int) -> tname:(unit -> string) -> unit
(** The thread source is split: [tid] runs on every stored event (and
    must be allocation-free — it returns an unboxed int); [tname] runs
    only the first time a given tid stores an event. *)

(** {2 Control (domain-local)} *)

val enable : ?limit:int -> ?verbose:bool -> unit -> unit
(** Start recording on the calling domain with an empty buffer.
    [limit] caps the number of buffered events (default [1_048_576]);
    [verbose] additionally records high-volume events such as per-walk
    page-table instants (default [false]). *)

val disable : unit -> unit
(** Stop recording. The buffer survives until the next {!enable} so it
    can still be {!dump}ed. *)

val is_on : unit -> bool
val verbose : unit -> bool
(** [is_on () && verbose flag] — gate for high-volume events. *)

val now : unit -> int
(** Current trace timestamp (ns): the virtual clock plus a per-domain
    base that advances across [Sched.run]s so consecutive runs occupy
    disjoint intervals of the exported timeline. Returns 0 when tracing
    is off — cheap enough to call unconditionally for a span's start. *)

val new_flow : unit -> int
(** Fresh flow id (domain-local, unique within an export). Flows link
    causally-related events across threads — e.g. one μCheckpoint's
    first fault → PTE reset → device commit → durable epoch. *)

(** {2 Emitting}

    All no-ops when disabled. *)

val instant :
  ?args:args -> ?argi:string * int -> ?flow:int * flow_phase -> Probe.t -> unit
(** A zero-duration event at the current time. [argi] is the flat fast
    path for the common single-int argument (e.g. [("bytes", n)]): it
    lands in two unboxed columns instead of allocating an [args] list
    per event, and exports identically to [~args:[(k, I v)]]. Pass a
    shared literal key. *)

val complete :
  ?args:args ->
  ?argi:string * int ->
  ?flow:int * flow_phase ->
  Probe.t ->
  dur:int ->
  unit
(** A span of [dur] ns ending now. Call sites measure with virtual-time
    deltas ([Sched.now () - t0]) and report the duration here; the
    span's start is reconstructed against the trace timeline. *)

val with_span :
  ?args:args ->
  ?argi:string * int ->
  ?flow:int * flow_phase ->
  Probe.t ->
  (unit -> 'a) ->
  'a
(** Run the callback inside a span. The span is recorded even if the
    callback raises (the exception is re-raised). When disabled this is
    exactly [f ()]. *)

val counter : Probe.t -> int -> unit
(** A counter track sample (rendered as a stacked chart). *)

(** {2 Cell isolation}

    Used by [Msnap_sim.Cell]: a parallel simulation cell records into a
    private store over a private base-0 timeline, spliced back into the
    submitting experiment's store at force time in submission order, so
    the export is identical in shape whether cells ran serially or on
    worker domains. *)

type snapshot

val buffer_limit : unit -> int
(** The current store's event cap (propagated into cell stores). *)

val cell_begin : enabled:bool -> verbose:bool -> limit:int -> snapshot
(** Install a fresh store on this domain (recording iff [enabled]);
    returns the displaced one. *)

val cell_end : snapshot -> snapshot
(** Restore the displaced store; returns the cell's store (recording
    stopped) for a later {!cell_merge}. *)

val cell_merge : shift:int -> snapshot -> unit
(** Splice a finished cell's events into the current store: timestamps
    shifted by [shift] ns, flow ids rebased past the current store's,
    per-probe summary stats added exactly (even past the buffer cap —
    events that don't fit count as dropped). The snapshot must not be
    used again. *)

(** {2 Collecting}

    The live buffer is structs-of-arrays (one int column per event
    field) so the emit path allocates nothing; a {!type-dump} snapshots
    those columns. {!events} materializes the conventional
    array-of-records view on demand — cold-path only. *)

type event = {
  ev_probe : Probe.t;
  ev_ts : int;           (** start, ns on the trace timeline *)
  ev_dur : int;          (** span duration; [-1] for instants, [-2] for counters *)
  ev_tid : int;
  ev_tname : string;
  ev_args : args;
  ev_flow : (int * flow_phase) option;
}

type dump = {
  d_count : int;              (** events kept in the buffer *)
  d_dropped : int;            (** events past the buffer cap *)
  d_summary : (string * string * int * int * int) list;
      (** (subsystem, name, count, total span ns, max span ns),
          sorted by subsystem then name; exact even past the cap *)
  d_probe : int array;        (** {!Probe.id} per event, in emission order *)
  d_ts : int array;
  d_dur : int array;
  d_tid : int array;
  d_args : args array;
  d_ak : string array;        (** single-int-arg fast path: key, [""] = none *)
  d_av : int array;           (** single-int-arg fast path: value *)
  d_flow : int array;         (** packed: [0] none, else [id*4 + phase] *)
  d_tnames : (int, string) Hashtbl.t;  (** first-seen name per tid *)
}

val event_count : unit -> int
val dropped : unit -> int

val dump : unit -> dump
(** Take the calling domain's buffer: the columns move into the dump
    without copying and the live buffer is left empty (a later
    {!enable} or further emission regrows it). Per-probe summary
    stats and the dropped count are not reset. *)

val events : dump -> event array
(** Materialize the record-per-event view of a dump's columns. *)

val export_json : out_channel -> dump -> unit
(** Write Chrome [trace_event] JSON: complete ("X") and instant ("i")
    events, counter ("C") tracks, flow ("s"/"t"/"f") links, and
    thread-name metadata. Timestamps are microseconds with ns precision
    kept in the fraction. *)

val render_summary : dump -> string
(** Human-readable per-subsystem table: span counts, total and max
    virtual-time per probe — the numbers that reconcile against
    [Sched.account_report] buckets. *)
