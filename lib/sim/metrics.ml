module Histogram = Msnap_util.Histogram

(* Counters and histograms are domain-local so that experiments running in
   parallel bench domains cannot observe each other's samples. Within a
   domain the behavior is identical to the old process-global tables.
   Storage is keyed by the probe's wire name, so two probes that share a
   name address the same counter regardless of subsystem. *)
type store = {
  counters : (string, int ref) Hashtbl.t;
  hists : (string, Histogram.t) Hashtbl.t;
}

let store_key : store Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { counters = Hashtbl.create 32; hists = Hashtbl.create 32 })

let store () = Domain.DLS.get store_key

let reset () =
  let s = store () in
  Hashtbl.reset s.counters;
  Hashtbl.reset s.hists

let incr_name ?(by = 1) name =
  let s = store () in
  match Hashtbl.find s.counters name with
  | r -> r := !r + by
  | exception Not_found -> Hashtbl.add s.counters name (ref by)

let count_name name =
  match Hashtbl.find_opt (store ()).counters name with
  | Some r -> !r
  | None -> 0

let get_hist name =
  let s = store () in
  match Hashtbl.find s.hists name with
  | h -> h
  | exception Not_found ->
    let h = Histogram.create () in
    Hashtbl.add s.hists name h;
    h

let add_sample_name name ns =
  incr_name name;
  Histogram.add (get_hist name) ns

let hist_name name = Hashtbl.find_opt (store ()).hists name
let mean_ns_name name = match hist_name name with Some h -> Histogram.mean h | None -> 0.0
let samples_name name = match hist_name name with Some h -> Histogram.count h | None -> 0

let incr ?by p = incr_name ?by (Probe.name p)
let count p = count_name (Probe.name p)
let add_sample p ns = add_sample_name (Probe.name p) ns
let hist p = hist_name (Probe.name p)
let mean_ns p = mean_ns_name (Probe.name p)
let samples p = samples_name (Probe.name p)

let counters () =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) (store ()).counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- cell isolation (see Msnap_sim.Cell) ---

   A cell runs with a private store so that (a) its samples cannot leak
   into whatever experiment happens to share the domain, and (b) the
   experiment sees the cell's samples only at force time, in submission
   order, regardless of which domain ran the body when. *)

type snapshot = store

let cell_begin () =
  let saved = store () in
  Domain.DLS.set store_key
    { counters = Hashtbl.create 32; hists = Hashtbl.create 32 };
  saved

let cell_end saved =
  let cell = store () in
  Domain.DLS.set store_key saved;
  cell

let cell_merge cell =
  let s = store () in
  Hashtbl.iter
    (fun name r ->
      match Hashtbl.find s.counters name with
      | cur -> cur := !cur + !r
      | exception Not_found -> Hashtbl.add s.counters name (ref !r))
    cell.counters;
  Hashtbl.iter
    (fun name h ->
      match Hashtbl.find s.hists name with
      | cur -> Histogram.merge cur h
      | exception Not_found -> Hashtbl.add s.hists name h)
    cell.hists

(* Closure-free form of {!timed} for hot call sites: bracket the section
   with [timed_begin]/[timed_end] instead of wrapping it in a lambda. *)
let timed_begin () = Sched.now ()

let timed_end p t0 =
  let dt = Sched.now () - t0 in
  add_sample p dt;
  (* The probe carries its subsystem, so every timed section doubles as a
     correctly-categorized trace span when tracing is on. Host-only. *)
  Trace.complete p ~dur:dt

let timed p f =
  let t0 = timed_begin () in
  let r = f () in
  timed_end p t0;
  r


(* Mirror buffer-pool activity into the (domain-local) counters, so pool
   behaviour shows up next to every other probe. Installed once at link
   time; the hook itself is host-only and the counts depend on pool
   warmth, so determinism comparisons ignore "pool.*" keys. *)
let () =
  Msnap_util.Pool.set_observer (fun ev _size ->
      match ev with
      | Msnap_util.Pool.Hit -> incr Probe.pool_hit
      | Msnap_util.Pool.Miss -> incr Probe.pool_miss
      | Msnap_util.Pool.Recycle -> incr Probe.pool_recycle)
