module Histogram = Msnap_util.Histogram

(* Counters and histograms are domain-local so that experiments running in
   parallel bench domains cannot observe each other's samples. Within a
   domain the behavior is identical to the old process-global tables. *)
type store = {
  counters : (string, int ref) Hashtbl.t;
  hists : (string, Histogram.t) Hashtbl.t;
}

let store_key : store Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { counters = Hashtbl.create 32; hists = Hashtbl.create 32 })

let store () = Domain.DLS.get store_key

let reset () =
  let s = store () in
  Hashtbl.reset s.counters;
  Hashtbl.reset s.hists

let incr ?(by = 1) name =
  let s = store () in
  match Hashtbl.find_opt s.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add s.counters name (ref by)

let count name =
  match Hashtbl.find_opt (store ()).counters name with
  | Some r -> !r
  | None -> 0

let get_hist name =
  let s = store () in
  match Hashtbl.find_opt s.hists name with
  | Some h -> h
  | None ->
    let h = Histogram.create () in
    Hashtbl.add s.hists name h;
    h

let add_sample name ns =
  incr name;
  Histogram.add (get_hist name) ns

let hist name = Hashtbl.find_opt (store ()).hists name

let mean_ns name =
  match hist name with Some h -> Histogram.mean h | None -> 0.0

let samples name =
  match hist name with Some h -> Histogram.count h | None -> 0

let counters () =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) (store ()).counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let timed name f =
  let t0 = Sched.now () in
  let r = f () in
  add_sample name (Sched.now () - t0);
  r
