module Taskpool = Msnap_util.Taskpool

(* What a finished cell hands back to the forcing experiment, besides
   its value: everything the body recorded into per-domain stores, plus
   how far it advanced its private trace timeline. *)
type 'a outcome = {
  o_value : 'a;
  o_metrics : Metrics.snapshot;
  o_trace : Trace.snapshot;
  o_advance : int;
}

type 'a t = {
  task : 'a outcome Taskpool.task;
  mutable forced : 'a option; (* merge exactly once *)
}

let submit f =
  (* Capture the submitting domain's trace configuration: the body may
     run on a worker whose own trace state is unrelated. *)
  let traced = Trace.is_on () in
  let tverbose = Trace.verbose () in
  let tlimit = Trace.buffer_limit () in
  let body () =
    if Sched.running () then
      invalid_arg "Cell: task pool reached into a live simulation";
    (* Full domain-local isolation: fresh Metrics and Trace stores, a
       base-0 trace timeline. The swap — not just a reset — is what
       makes cells safe to run on a domain that is mid-experiment
       (await-helping): the host's stores are untouched underneath. *)
    let saved_base = Sched.trace_base () in
    Sched.set_trace_base 0;
    let saved_m = Metrics.cell_begin () in
    let saved_t = Trace.cell_begin ~enabled:traced ~verbose:tverbose ~limit:tlimit in
    match f () with
    | v ->
      let advance = Sched.trace_base () in
      let tr = Trace.cell_end saved_t in
      let mt = Metrics.cell_end saved_m in
      Sched.set_trace_base saved_base;
      { o_value = v; o_metrics = mt; o_trace = tr; o_advance = advance }
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      ignore (Trace.cell_end saved_t);
      ignore (Metrics.cell_end saved_m);
      Sched.set_trace_base saved_base;
      Printexc.raise_with_backtrace e bt
  in
  { task = Taskpool.submit ~cls:Taskpool.Light body; forced = None }

let force c =
  match c.forced with
  | Some v -> v
  | None ->
    if Sched.running () then
      invalid_arg "Cell.force: called inside Sched.run";
    let o = Taskpool.await c.task in
    (* Splice the cell's recordings into this domain's stores exactly
       where a serial run would have put them: the trace timeline
       resumes at the current base and advances by what the cell's own
       runs consumed, and metrics fold in submission (= force) order. *)
    let base = Sched.trace_base () in
    Trace.cell_merge ~shift:base o.o_trace;
    Sched.set_trace_base (base + o.o_advance);
    Metrics.cell_merge o.o_metrics;
    c.forced <- Some o.o_value;
    o.o_value
