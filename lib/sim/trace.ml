type arg = I of int | S of string | F of float
type args = (string * arg) list
type flow_phase = Flow_start | Flow_step | Flow_end

(* AoS view, materialized only by {!events} for tests and tools; the
   store itself is structs-of-arrays (below) so the emit path writes
   six unboxed column slots instead of allocating a record. *)
type event = {
  ev_probe : Probe.t;
  ev_ts : int;
  ev_dur : int; (* -1 instant, -2 counter *)
  ev_tid : int;
  ev_tname : string;
  ev_args : args;
  ev_flow : (int * flow_phase) option;
}

(* Flow links are packed into one int column: 0 for none, else
   [id * 4 + phase + 1] (phase codes 1..3 in the low bits). *)
let pack_flow = function
  | None -> 0
  | Some (id, phase) ->
    let ph =
      match phase with Flow_start -> 1 | Flow_step -> 2 | Flow_end -> 3
    in
    (id * 4) + ph

let unpack_flow packed =
  if packed = 0 then None
  else
    let phase =
      match packed land 3 with
      | 1 -> Flow_start
      | 2 -> Flow_step
      | _ -> Flow_end
    in
    Some (packed lsr 2, phase)

type store = {
  mutable enabled : bool;
  mutable verbose : bool;
  mutable limit : int;
  (* Event buffer as parallel columns, grown together. The args column
     is almost always the immediate [[]]; flow is packed (see above). *)
  mutable b_probe : int array; (* Probe.id *)
  mutable b_ts : int array;
  mutable b_dur : int array;
  mutable b_tid : int array;
  mutable b_args : args array;
  (* Fast path for the overwhelmingly common single-int argument
     (e.g. ("bytes", I n)): two flat columns instead of a boxed
     cons/tuple/I chain per event. [""] = none; the key is expected to
     be a shared literal, so storing it allocates nothing. *)
  mutable b_ak : string array;
  mutable b_av : int array;
  mutable b_flow : int array;
  mutable len : int;
  mutable dropped : int;
  mutable next_flow : int;
  (* First-seen name per tid, registered when an event is stored. *)
  tnames : (int, string) Hashtbl.t;
  (* Per-probe running totals indexed by [Probe.id], kept at emit time
     so the summary stays exact even when the buffer hits its cap. An
     int-indexed array load replaces the old hashed-tuple lookup. *)
  mutable st_count : int array;
  mutable st_total : int array;
  mutable st_max : int array;
}

let store_key : store Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        enabled = false;
        verbose = false;
        limit = 1 lsl 20;
        b_probe = [||];
        b_ts = [||];
        b_dur = [||];
        b_tid = [||];
        b_args = [||];
        b_ak = [||];
        b_av = [||];
        b_flow = [||];
        len = 0;
        dropped = 0;
        next_flow = 0;
        tnames = Hashtbl.create 32;
        st_count = [||];
        st_total = [||];
        st_max = [||];
      })

let store () = Domain.DLS.get store_key

(* Injected by Sched at module-init time; identity fallbacks keep Trace
   usable (as a no-op timeline) outside any simulation. The thread
   source is split into id and name halves so the per-event call
   returns an unboxed int instead of a fresh tuple; the name half runs
   only the first time a tid stores an event. *)
let time_source : (unit -> int) ref = ref (fun () -> 0)
let thread_id_source : (unit -> int) ref = ref (fun () -> -1)
let thread_name_source : (unit -> string) ref = ref (fun () -> "host")
let set_time_source f = time_source := f

let set_thread_source ~tid ~tname =
  thread_id_source := tid;
  thread_name_source := tname

let enable ?(limit = 1 lsl 20) ?(verbose = false) () =
  let s = store () in
  s.enabled <- true;
  s.verbose <- verbose;
  s.limit <- limit;
  s.b_probe <- [||];
  s.b_ts <- [||];
  s.b_dur <- [||];
  s.b_tid <- [||];
  s.b_args <- [||];
  s.b_ak <- [||];
  s.b_av <- [||];
  s.b_flow <- [||];
  s.len <- 0;
  s.dropped <- 0;
  s.next_flow <- 0;
  Hashtbl.reset s.tnames;
  s.st_count <- [||];
  s.st_total <- [||];
  s.st_max <- [||]

let disable () = (store ()).enabled <- false
let is_on () = (store ()).enabled
let verbose () =
  let s = store () in
  s.enabled && s.verbose

let now () = if (store ()).enabled then !time_source () else 0

let new_flow () =
  let s = store () in
  s.next_flow <- s.next_flow + 1;
  s.next_flow

let ensure_stats s =
  let n = Probe.count () in
  let grow a =
    let na = Array.make n 0 in
    Array.blit a 0 na 0 (Array.length a);
    na
  in
  s.st_count <- grow s.st_count;
  s.st_total <- grow s.st_total;
  s.st_max <- grow s.st_max

let grow_buf s =
  let cap = max 1024 (min s.limit (2 * Array.length s.b_probe)) in
  let grow_int a =
    let na = Array.make cap 0 in
    Array.blit a 0 na 0 s.len;
    na
  in
  let na = Array.make cap [] in
  Array.blit s.b_args 0 na 0 s.len;
  let nk = Array.make cap "" in
  Array.blit s.b_ak 0 nk 0 s.len;
  s.b_probe <- grow_int s.b_probe;
  s.b_ts <- grow_int s.b_ts;
  s.b_dur <- grow_int s.b_dur;
  s.b_tid <- grow_int s.b_tid;
  s.b_args <- na;
  s.b_ak <- nk;
  s.b_av <- grow_int s.b_av;
  s.b_flow <- grow_int s.b_flow

let emit s ?(args = []) ?(argi = ("", 0)) ?flow probe ~ts ~dur =
  let pid = Probe.id probe in
  if pid >= Array.length s.st_count then ensure_stats s;
  s.st_count.(pid) <- s.st_count.(pid) + 1;
  if dur > 0 then begin
    s.st_total.(pid) <- s.st_total.(pid) + dur;
    if dur > s.st_max.(pid) then s.st_max.(pid) <- dur
  end;
  if s.len >= s.limit then s.dropped <- s.dropped + 1
  else begin
    if s.len >= Array.length s.b_probe then grow_buf s;
    let i = s.len in
    s.len <- i + 1;
    let tid = !thread_id_source () in
    s.b_probe.(i) <- pid;
    s.b_ts.(i) <- ts;
    s.b_dur.(i) <- dur;
    s.b_tid.(i) <- tid;
    s.b_args.(i) <- args;
    s.b_ak.(i) <- fst argi;
    s.b_av.(i) <- snd argi;
    s.b_flow.(i) <- pack_flow flow;
    if not (Hashtbl.mem s.tnames tid) then
      Hashtbl.add s.tnames tid (!thread_name_source ())
  end

let instant ?args ?argi ?flow probe =
  let s = store () in
  if s.enabled then
    emit s ?args ?argi ?flow probe ~ts:(!time_source ()) ~dur:(-1)

let complete ?args ?argi ?flow probe ~dur =
  let s = store () in
  if s.enabled then
    emit s ?args ?argi ?flow probe ~ts:(!time_source () - dur) ~dur

let with_span ?args ?argi ?flow probe f =
  let s = store () in
  if not s.enabled then f ()
  else begin
    let t0 = !time_source () in
    match f () with
    | r ->
      emit s ?args ?argi ?flow probe ~ts:t0 ~dur:(!time_source () - t0);
      r
    | exception exn ->
      emit s ?args ?argi ?flow probe ~ts:t0 ~dur:(!time_source () - t0);
      raise exn
  end

let counter probe v =
  let s = store () in
  if s.enabled then
    emit s ~args:[ (Probe.name probe, I v) ] probe ~ts:(!time_source ())
      ~dur:(-2)

(* --- cell isolation (see Msnap_sim.Cell) ---

   A simulation cell records into a private store over a private base-0
   timeline; at force time the submitting experiment splices the cell's
   events into its own store with a timestamp shift, remapped flow ids,
   and an exact per-probe stats merge — so an exported trace is
   identical in shape whether the cells ran serially or on workers. *)

type snapshot = store

let buffer_limit () = (store ()).limit

let cell_begin ~enabled ~verbose ~limit =
  let saved = store () in
  Domain.DLS.set store_key
    {
      enabled;
      verbose;
      limit;
      b_probe = [||];
      b_ts = [||];
      b_dur = [||];
      b_tid = [||];
      b_args = [||];
      b_ak = [||];
      b_av = [||];
      b_flow = [||];
      len = 0;
      dropped = 0;
      next_flow = 0;
      tnames = Hashtbl.create 32;
      st_count = [||];
      st_total = [||];
      st_max = [||];
    };
  saved

let cell_end saved =
  let cell = store () in
  cell.enabled <- false;
  Domain.DLS.set store_key saved;
  cell

let cell_merge ~shift cell =
  let s = store () in
  if Array.length cell.st_count > 0 then begin
    if Array.length s.st_count < Array.length cell.st_count then
      ensure_stats s;
    Array.iteri
      (fun i c ->
        if c > 0 then begin
          s.st_count.(i) <- s.st_count.(i) + c;
          s.st_total.(i) <- s.st_total.(i) + cell.st_total.(i);
          if cell.st_max.(i) > s.st_max.(i) then s.st_max.(i) <- cell.st_max.(i)
        end)
      cell.st_count
  end;
  s.dropped <- s.dropped + cell.dropped;
  (* Flow ids are only unique within a store; rebase the cell's ids
     past everything already issued here. *)
  let fbase = s.next_flow in
  s.next_flow <- s.next_flow + cell.next_flow;
  for i = 0 to cell.len - 1 do
    if s.len >= s.limit then s.dropped <- s.dropped + 1
    else begin
      if s.len >= Array.length s.b_probe then grow_buf s;
      let j = s.len in
      s.len <- j + 1;
      let tid = cell.b_tid.(i) in
      s.b_probe.(j) <- cell.b_probe.(i);
      s.b_ts.(j) <- cell.b_ts.(i) + shift;
      s.b_dur.(j) <- cell.b_dur.(i);
      s.b_tid.(j) <- tid;
      s.b_args.(j) <- cell.b_args.(i);
      s.b_ak.(j) <- cell.b_ak.(i);
      s.b_av.(j) <- cell.b_av.(i);
      (let packed = cell.b_flow.(i) in
       s.b_flow.(j) <-
         (if packed = 0 then 0
          else (((packed lsr 2) + fbase) * 4) lor (packed land 3)));
      if not (Hashtbl.mem s.tnames tid) then
        Hashtbl.add s.tnames tid
          (try Hashtbl.find cell.tnames tid with Not_found -> "?")
    end
  done

type dump = {
  d_count : int;
  d_dropped : int;
  d_summary : (string * string * int * int * int) list;
  d_probe : int array;
  d_ts : int array;
  d_dur : int array;
  d_tid : int array;
  d_args : args array;
  d_ak : string array;
  d_av : int array;
  d_flow : int array;
  d_tnames : (int, string) Hashtbl.t;
}

let event_count () = (store ()).len
let dropped () = (store ()).dropped

let dump () =
  let s = store () in
  let summary = ref [] in
  for i = Array.length s.st_count - 1 downto 0 do
    if s.st_count.(i) > 0 then begin
      let p = Probe.of_id i in
      summary :=
        ( Probe.subsystem_name (Probe.subsystem p),
          Probe.name p,
          s.st_count.(i),
          s.st_total.(i),
          s.st_max.(i) )
        :: !summary
    end
  done;
  (* Transfer the columns instead of copying: a capped buffer is ~48 MB
     of arrays, and snapshotting it inside the export window forced
     major-GC slices proportional to whatever heap the run had built up.
     Consumers only read the first [d_count] slots; the store starts
     over empty (the next [enable] regrows lazily). *)
  let d =
    {
      d_count = s.len;
      d_dropped = s.dropped;
      d_summary = List.sort compare !summary;
      d_probe = s.b_probe;
      d_ts = s.b_ts;
      d_dur = s.b_dur;
      d_tid = s.b_tid;
      d_args = s.b_args;
      d_ak = s.b_ak;
      d_av = s.b_av;
      d_flow = s.b_flow;
      d_tnames = Hashtbl.copy s.tnames;
    }
  in
  s.b_probe <- [||];
  s.b_ts <- [||];
  s.b_dur <- [||];
  s.b_tid <- [||];
  s.b_args <- [||];
  s.b_ak <- [||];
  s.b_av <- [||];
  s.b_flow <- [||];
  s.len <- 0;
  d

let tname d tid = try Hashtbl.find d.d_tnames tid with Not_found -> "?"

let events d =
  Array.init d.d_count (fun i ->
      {
        ev_probe = Probe.of_id d.d_probe.(i);
        ev_ts = d.d_ts.(i);
        ev_dur = d.d_dur.(i);
        ev_tid = d.d_tid.(i);
        ev_tname = tname d d.d_tid.(i);
        ev_args =
          (if d.d_ak.(i) <> "" then [ (d.d_ak.(i), I d.d_av.(i)) ]
           else d.d_args.(i));
        ev_flow = unpack_flow d.d_flow.(i);
      })

(* ---- Chrome trace_event export ---------------------------------------- *)

let json_escape b str =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    str

let add_str b s =
  Buffer.add_char b '"';
  json_escape b s;
  Buffer.add_char b '"'

(* Decimal emission without [string_of_int]/[sprintf]: at ~4 records per
   event the formatted strings dominated export allocation. *)
let add_int b n =
  if n = 0 then Buffer.add_char b '0'
  else begin
    let n = if n < 0 then (Buffer.add_char b '-'; -n) else n in
    let rec go n =
      if n > 0 then begin
        go (n / 10);
        Buffer.add_char b (Char.chr (Char.code '0' + (n mod 10)))
      end
    in
    go n
  end

(* ns -> Chrome's microsecond floats, ns precision in the fraction *)
let add_us b ns =
  add_int b (ns / 1000);
  Buffer.add_char b '.';
  let f = abs ns mod 1000 in
  Buffer.add_char b (Char.chr (Char.code '0' + (f / 100)));
  Buffer.add_char b (Char.chr (Char.code '0' + (f / 10 mod 10)));
  Buffer.add_char b (Char.chr (Char.code '0' + (f mod 10)))

let add_args b args =
  Buffer.add_string b "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      add_str b k;
      Buffer.add_char b ':';
      match v with
      | I n -> add_int b n
      | F f -> Buffer.add_string b (Printf.sprintf "%g" f)
      | S s -> add_str b s)
    args;
  Buffer.add_string b "}"

let add_common b ~name ~cat ~ph ~ts ~tid =
  Buffer.add_string b "{\"name\":";
  add_str b name;
  Buffer.add_string b ",\"cat\":";
  add_str b cat;
  Buffer.add_string b ",\"ph\":\"";
  Buffer.add_string b ph;
  Buffer.add_string b "\",\"ts\":";
  add_us b ts;
  Buffer.add_string b ",\"pid\":1,\"tid\":";
  add_int b tid

let export_json oc d =
  let b = Buffer.create (1 lsl 16) in
  let first = ref true in
  let next () =
    if !first then first := false else Buffer.add_string b ",\n  ";
    if Buffer.length b > 1 lsl 15 then begin
      Buffer.output_buffer oc b;
      Buffer.clear b
    end
  in
  Buffer.add_string b "{\"traceEvents\":[\n  ";
  (* Thread-name metadata: one per distinct tid, in first-event order. *)
  let named = Hashtbl.create 32 in
  for i = 0 to d.d_count - 1 do
    let tid = d.d_tid.(i) in
    if not (Hashtbl.mem named tid) then begin
      Hashtbl.add named tid ();
      next ();
      add_common b ~name:"thread_name" ~cat:"__metadata" ~ph:"M" ~ts:0 ~tid;
      Buffer.add_string b ",\"args\":{\"name\":";
      add_str b (Printf.sprintf "%s (%d)" (tname d tid) tid);
      Buffer.add_string b "}}"
    end
  done;
  (* Everything before "ts" is constant per (probe, phase): name, cat
     and ph need escaping exactly once, then each record starts with a
     single memcpy of the cached prefix. At ~1M+ records per capped
     trace this halves the encoder's work. *)
  let prefixes = Hashtbl.create 256 in
  let prefix_of pid ph_code ph =
    let key = (pid * 4) + ph_code in
    match Hashtbl.find prefixes key with
    | p -> p
    | exception Not_found ->
      let probe = Probe.of_id pid in
      let pb = Buffer.create 64 in
      Buffer.add_string pb "{\"name\":";
      add_str pb (Probe.name probe);
      Buffer.add_string pb ",\"cat\":";
      add_str pb (Probe.subsystem_name (Probe.subsystem probe));
      Buffer.add_string pb ",\"ph\":\"";
      Buffer.add_string pb ph;
      Buffer.add_string pb "\",\"ts\":";
      let p = Buffer.contents pb in
      Hashtbl.add prefixes key p;
      p
  in
  let flow_prefix ph =
    "{\"name\":\"ucheckpoint\",\"cat\":\"msnap\",\"ph\":\"" ^ ph
    ^ "\",\"ts\":"
  in
  let flow_s = flow_prefix "s"
  and flow_t = flow_prefix "t"
  and flow_f = flow_prefix "f" in
  for i = 0 to d.d_count - 1 do
    let pid = d.d_probe.(i) in
    let ts = d.d_ts.(i) and dur = d.d_dur.(i) and tid = d.d_tid.(i) in
    next ();
    let finish_common () =
      Buffer.add_string b ",\"pid\":1,\"tid\":";
      add_int b tid
    in
    (match dur with
    | -1 ->
      Buffer.add_string b (prefix_of pid 1 "i");
      add_us b ts;
      finish_common ();
      Buffer.add_string b ",\"s\":\"t\""
    | -2 ->
      Buffer.add_string b (prefix_of pid 2 "C");
      add_us b ts;
      finish_common ()
    | dur ->
      Buffer.add_string b (prefix_of pid 0 "X");
      add_us b ts;
      finish_common ();
      Buffer.add_string b ",\"dur\":";
      add_us b dur);
    let ak = d.d_ak.(i) in
    if ak <> "" then begin
      (* column fast path: same bytes as [add_args [(ak, I v)]] *)
      Buffer.add_string b ",\"args\":{";
      add_str b ak;
      Buffer.add_char b ':';
      add_int b d.d_av.(i);
      Buffer.add_string b "}"
    end
    else begin
      let args = d.d_args.(i) in
      if args <> [] then begin
        Buffer.add_string b ",\"args\":";
        add_args b args
      end
    end;
    Buffer.add_string b "}";
    (* Flow link riding on this event: a separate s/t/f record at the
       same instant, bound to the enclosing slice. All records of one
       flow share name/cat/id — that is what Chrome draws arrows
       between. *)
    let packed = d.d_flow.(i) in
    if packed <> 0 then begin
      let id = packed lsr 2 in
      let ph = packed land 3 in
      let ts = if dur > 0 then ts + dur else ts in
      next ();
      Buffer.add_string b
        (match ph with 1 -> flow_s | 2 -> flow_t | _ -> flow_f);
      add_us b ts;
      Buffer.add_string b ",\"pid\":1,\"tid\":";
      add_int b tid;
      Buffer.add_string b ",\"id\":";
      add_int b id;
      if ph <> 1 && ph <> 2 then Buffer.add_string b ",\"bp\":\"e\"";
      Buffer.add_string b "}"
    end
  done;
  Buffer.add_string b "\n],\n";
  Buffer.add_string b "\"displayTimeUnit\":\"ns\",\n";
  Buffer.add_string b
    (Printf.sprintf
       "\"otherData\":{\"tool\":\"memsnap-sim\",\"events\":%d,\"dropped\":%d}}\n"
       d.d_count d.d_dropped);
  Buffer.output_buffer oc b

let render_summary d =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "subsystem  probe                        count    total(us)      max(us)\n";
  let last_sub = ref "" in
  List.iter
    (fun (sub, name, count, total, max_ns) ->
      if sub <> !last_sub && !last_sub <> "" then Buffer.add_char b '\n';
      last_sub := sub;
      Buffer.add_string b
        (Printf.sprintf "%-10s %-26s %7d %12.3f %12.3f\n" sub name count
           (float_of_int total /. 1e3)
           (float_of_int max_ns /. 1e3)))
    d.d_summary;
  if d.d_dropped > 0 then
    Buffer.add_string b
      (Printf.sprintf "(%d events dropped past the buffer cap)\n" d.d_dropped);
  Buffer.contents b
