type arg = I of int | S of string | F of float
type args = (string * arg) list
type flow_phase = Flow_start | Flow_step | Flow_end

type event = {
  ev_probe : Probe.t;
  ev_ts : int;
  ev_dur : int; (* -1 instant, -2 counter *)
  ev_tid : int;
  ev_tname : string;
  ev_args : args;
  ev_flow : (int * flow_phase) option;
}

(* Per-(subsystem, name) running totals, kept at emit time so the
   summary stays exact even when the event buffer hits its cap. *)
type stat = { mutable st_count : int; mutable st_total : int; mutable st_max : int }

type store = {
  mutable enabled : bool;
  mutable verbose : bool;
  mutable limit : int;
  mutable buf : event array;
  mutable len : int;
  mutable dropped : int;
  mutable next_flow : int;
  stats : (string * string, stat) Hashtbl.t;
}

let store_key : store Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        enabled = false;
        verbose = false;
        limit = 1 lsl 20;
        buf = [||];
        len = 0;
        dropped = 0;
        next_flow = 0;
        stats = Hashtbl.create 64;
      })

let store () = Domain.DLS.get store_key

(* Injected by Sched at module-init time; identity fallbacks keep Trace
   usable (as a no-op timeline) outside any simulation. *)
let time_source : (unit -> int) ref = ref (fun () -> 0)
let thread_source : (unit -> int * string) ref = ref (fun () -> (-1, "host"))
let set_time_source f = time_source := f
let set_thread_source f = thread_source := f

let enable ?(limit = 1 lsl 20) ?(verbose = false) () =
  let s = store () in
  s.enabled <- true;
  s.verbose <- verbose;
  s.limit <- limit;
  s.buf <- [||];
  s.len <- 0;
  s.dropped <- 0;
  s.next_flow <- 0;
  Hashtbl.reset s.stats

let disable () = (store ()).enabled <- false
let is_on () = (store ()).enabled
let verbose () =
  let s = store () in
  s.enabled && s.verbose

let now () = if (store ()).enabled then !time_source () else 0

let new_flow () =
  let s = store () in
  s.next_flow <- s.next_flow + 1;
  s.next_flow

let bump_stat s probe dur =
  let key = (Probe.subsystem_name (Probe.subsystem probe), Probe.name probe) in
  let st =
    match Hashtbl.find_opt s.stats key with
    | Some st -> st
    | None ->
      let st = { st_count = 0; st_total = 0; st_max = 0 } in
      Hashtbl.add s.stats key st;
      st
  in
  st.st_count <- st.st_count + 1;
  if dur > 0 then begin
    st.st_total <- st.st_total + dur;
    if dur > st.st_max then st.st_max <- dur
  end

let push s ev =
  if s.len >= s.limit then s.dropped <- s.dropped + 1
  else begin
    if s.len >= Array.length s.buf then begin
      let cap = max 1024 (min s.limit (2 * Array.length s.buf)) in
      let nb = Array.make cap ev in
      Array.blit s.buf 0 nb 0 s.len;
      s.buf <- nb
    end;
    s.buf.(s.len) <- ev;
    s.len <- s.len + 1
  end

let emit s ?(args = []) ?flow probe ~ts ~dur =
  let tid, tname = !thread_source () in
  bump_stat s probe dur;
  push s
    { ev_probe = probe; ev_ts = ts; ev_dur = dur; ev_tid = tid;
      ev_tname = tname; ev_args = args; ev_flow = flow }

let instant ?args ?flow probe =
  let s = store () in
  if s.enabled then emit s ?args ?flow probe ~ts:(!time_source ()) ~dur:(-1)

let complete ?args ?flow probe ~dur =
  let s = store () in
  if s.enabled then
    emit s ?args ?flow probe ~ts:(!time_source () - dur) ~dur

let with_span ?args ?flow probe f =
  let s = store () in
  if not s.enabled then f ()
  else begin
    let t0 = !time_source () in
    match f () with
    | r ->
      emit s ?args ?flow probe ~ts:t0 ~dur:(!time_source () - t0);
      r
    | exception exn ->
      emit s ?args ?flow probe ~ts:t0 ~dur:(!time_source () - t0);
      raise exn
  end

let counter probe v =
  let s = store () in
  if s.enabled then
    emit s ~args:[ (Probe.name probe, I v) ] probe ~ts:(!time_source ())
      ~dur:(-2)

type dump = {
  d_events : event array;
  d_dropped : int;
  d_summary : (string * string * int * int * int) list;
}

let event_count () = (store ()).len
let dropped () = (store ()).dropped

let dump () =
  let s = store () in
  let summary =
    Hashtbl.fold
      (fun (sub, name) st acc ->
        (sub, name, st.st_count, st.st_total, st.st_max) :: acc)
      s.stats []
    |> List.sort compare
  in
  { d_events = Array.sub s.buf 0 s.len; d_dropped = s.dropped;
    d_summary = summary }

(* ---- Chrome trace_event export ---------------------------------------- *)

let json_escape b str =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    str

let add_str b s =
  Buffer.add_char b '"';
  json_escape b s;
  Buffer.add_char b '"'

(* ns -> Chrome's microsecond floats, ns precision in the fraction *)
let add_us b ns =
  Buffer.add_string b (string_of_int (ns / 1000));
  Buffer.add_char b '.';
  Buffer.add_string b (Printf.sprintf "%03d" (abs ns mod 1000))

let add_args b args =
  Buffer.add_string b "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      add_str b k;
      Buffer.add_char b ':';
      match v with
      | I n -> Buffer.add_string b (string_of_int n)
      | F f -> Buffer.add_string b (Printf.sprintf "%g" f)
      | S s -> add_str b s)
    args;
  Buffer.add_string b "}"

let add_common b ~name ~cat ~ph ~ts ~tid =
  Buffer.add_string b "{\"name\":";
  add_str b name;
  Buffer.add_string b ",\"cat\":";
  add_str b cat;
  Buffer.add_string b ",\"ph\":\"";
  Buffer.add_string b ph;
  Buffer.add_string b "\",\"ts\":";
  add_us b ts;
  Buffer.add_string b ",\"pid\":1,\"tid\":";
  Buffer.add_string b (string_of_int tid)

let export_json oc d =
  let b = Buffer.create (1 lsl 16) in
  let first = ref true in
  let next () =
    if !first then first := false else Buffer.add_string b ",\n  ";
    if Buffer.length b > 1 lsl 15 then begin
      Buffer.output_buffer oc b;
      Buffer.clear b
    end
  in
  Buffer.add_string b "{\"traceEvents\":[\n  ";
  (* Thread-name metadata: one per distinct (tid, tname) seen. *)
  let named = Hashtbl.create 32 in
  Array.iter
    (fun ev ->
      if not (Hashtbl.mem named ev.ev_tid) then begin
        Hashtbl.add named ev.ev_tid ev.ev_tname;
        next ();
        add_common b ~name:"thread_name" ~cat:"__metadata" ~ph:"M" ~ts:0
          ~tid:ev.ev_tid;
        Buffer.add_string b ",\"args\":{\"name\":";
        add_str b (Printf.sprintf "%s (%d)" ev.ev_tname ev.ev_tid);
        Buffer.add_string b "}}"
      end)
    d.d_events;
  Array.iter
    (fun ev ->
      let name = Probe.name ev.ev_probe in
      let cat = Probe.subsystem_name (Probe.subsystem ev.ev_probe) in
      next ();
      (match ev.ev_dur with
      | -1 ->
        add_common b ~name ~cat ~ph:"i" ~ts:ev.ev_ts ~tid:ev.ev_tid;
        Buffer.add_string b ",\"s\":\"t\""
      | -2 -> add_common b ~name ~cat ~ph:"C" ~ts:ev.ev_ts ~tid:ev.ev_tid
      | dur ->
        add_common b ~name ~cat ~ph:"X" ~ts:ev.ev_ts ~tid:ev.ev_tid;
        Buffer.add_string b ",\"dur\":";
        add_us b dur);
      if ev.ev_args <> [] then begin
        Buffer.add_string b ",\"args\":";
        add_args b ev.ev_args
      end;
      Buffer.add_string b "}";
      (* Flow link riding on this event: a separate s/t/f record at the
         same instant, bound to the enclosing slice. All records of one
         flow share name/cat/id — that is what Chrome draws arrows
         between. *)
      match ev.ev_flow with
      | None -> ()
      | Some (id, phase) ->
        let ph =
          match phase with
          | Flow_start -> "s"
          | Flow_step -> "t"
          | Flow_end -> "f"
        in
        let ts = if ev.ev_dur > 0 then ev.ev_ts + ev.ev_dur else ev.ev_ts in
        next ();
        add_common b ~name:"ucheckpoint" ~cat:"msnap" ~ph ~ts ~tid:ev.ev_tid;
        Buffer.add_string b ",\"id\":";
        Buffer.add_string b (string_of_int id);
        if phase = Flow_end then Buffer.add_string b ",\"bp\":\"e\"";
        Buffer.add_string b "}")
    d.d_events;
  Buffer.add_string b "\n],\n";
  Buffer.add_string b "\"displayTimeUnit\":\"ns\",\n";
  Buffer.add_string b
    (Printf.sprintf
       "\"otherData\":{\"tool\":\"memsnap-sim\",\"events\":%d,\"dropped\":%d}}\n"
       (Array.length d.d_events) d.d_dropped);
  Buffer.output_buffer oc b

let render_summary d =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "subsystem  probe                        count    total(us)      max(us)\n";
  let last_sub = ref "" in
  List.iter
    (fun (sub, name, count, total, max_ns) ->
      if sub <> !last_sub && !last_sub <> "" then Buffer.add_char b '\n';
      last_sub := sub;
      Buffer.add_string b
        (Printf.sprintf "%-10s %-26s %7d %12.3f %12.3f\n" sub name count
           (float_of_int total /. 1e3)
           (float_of_int max_ns /. 1e3)))
    d.d_summary;
  if d.d_dropped > 0 then
    Buffer.add_string b
      (Printf.sprintf "(%d events dropped past the buffer cap)\n" d.d_dropped);
  Buffer.contents b
