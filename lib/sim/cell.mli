(** Parallel simulation cells: independent [Sched.run] measurements
    executed on the [Msnap_util.Taskpool] domains while their results
    are consumed in program order.

    A cell is the unit of intra-experiment parallelism. Each cell body
    is one (or more) self-contained deterministic simulation — own
    seeds, own machines, no shared mutable state — so {e which} domain
    runs it and {e when} are pure host decisions. The cell layer makes
    that safe by construction:

    - the body runs with fresh domain-local [Metrics] and [Trace]
      stores and a base-0 trace timeline, swapped in around the body
      and swapped back out after, so a worker (or an await-helping
      experiment domain) never leaks cell state into whatever else it
      was doing;
    - {!force} splices the cell's recordings back into the calling
      domain's stores in force order, exactly where a serial run would
      have put them.

    With zero pool workers a cell runs inline at {!force} — serial
    execution is the degenerate case, and its observable output is the
    contract: parallel runs must be byte-identical to it.

    Do not call {!submit} or {!force} from inside [Sched.run], and do
    not call {!force} from inside another cell's body: cells are
    siblings, not a nesting structure. *)

type 'a t

val submit : (unit -> 'a) -> 'a t
(** Queue the body on the task pool. Tracing configuration (on/off,
    verbosity, buffer cap) is inherited from the submitting domain at
    submit time. *)

val force : 'a t -> 'a
(** Wait for the body (running it inline if no domain picked it up),
    merge its metrics/trace recordings into this domain, and return
    its value. Idempotent: only the first call merges. Re-raises the
    body's exception, in which case the cell's recordings are
    discarded. *)
