(** Typed instrumentation points.

    Every counter, latency histogram, CPU-accounting bucket, and trace
    span in the simulator is identified by a probe: a value carrying the
    subsystem it belongs to and its wire name. Using first-class values
    instead of raw strings makes instrumentation typos compile errors
    and gives the {!Trace} subsystem a category for free — a span
    emitted through a [Db] probe lands on the "db" track of the Chrome
    trace without the call site saying so.

    The well-known probes below cover every metric the bench harness
    reads; their [name]s are exactly the strings the seed used, so
    rendered tables and [Metrics.counters] output are unchanged by the
    migration. [make] is the escape hatch for ad-hoc names (tests,
    one-off experiments). *)

type subsystem =
  | Sched
  | Vm
  | Blockdev
  | Fs
  | Objstore
  | Msnap
  | Aurora
  | Db
  | Host  (** anything outside the simulated stack (tests, harness) *)

val subsystem_name : subsystem -> string
(** Lower-case wire name ("sched", "vm", ..., "db", "host"); used as the
    Chrome trace category. *)

type t

val make : subsystem -> string -> t
(** Ad-hoc probe. Probes are interned by (subsystem, name): two [make]
    calls with the same name return the same probe (and so address the
    same counter/histogram). *)

val name : t -> string
(** The wire name — what {!Metrics.counters} reports and what appears as
    the event name in exported traces. *)

val to_string : t -> string
(** ["subsystem/name"], for diagnostics. *)

val subsystem : t -> subsystem

val id : t -> int
(** Dense id assigned at interning time, for flat per-probe tables
    (Trace's emit-time stats). Stable within a process. *)

val count : unit -> int
(** Number of distinct probes interned so far; ids are [0..count()-1]. *)

val of_id : int -> t
(** Inverse of {!id}. *)

(** {2 Well-known probes}

    Grouped by subsystem. The [Db] group keeps the historical flat names
    ("fsync", "write", ...) because Tables 7/9 render them verbatim. *)

(* db engines *)
val db_fsync : t            (* "fsync" *)
val db_write : t            (* "write" *)
val db_read : t             (* "read" *)
val db_memsnap : t          (* "memsnap" — msync(MS_SNAP) calls issued by a DB *)
val db_checkpoint : t       (* "checkpoint" *)
val db_memtable_flush : t   (* "memtable_flush" *)
val db_compaction : t       (* "compaction" *)
val db_pg_checkpoint : t    (* "pg_checkpoint" *)

(* msnap core *)
val msnap_persist : t            (* "msnap_persist" *)
val msnap_persist_reset : t      (* "msnap_persist.reset" *)
val msnap_persist_initiate : t   (* "msnap_persist.initiate" *)
val msnap_persist_wait : t       (* "msnap_persist.wait" *)
val msnap_persist_total : t      (* "msnap_persist.total" *)
val msnap_wait : t               (* "msnap_wait" *)
val msnap_first_fault : t        (* "msnap.first_fault" — flow start *)
val msnap_take_dirty : t         (* "msnap.take_dirty" — flow step *)
val msnap_pte_reset : t          (* "msnap.pte_reset" — flow step *)
val msnap_durable : t            (* "msnap.durable" — flow end *)

(* object store *)
val objstore_commits : t         (* "objstore.commits" *)
val objstore_flush : t           (* "objstore.flush" — group-commit drain span *)
val objstore_commit_queued : t   (* "objstore.commit_queued" *)
val objstore_device_commit : t   (* "objstore.device_commit" — flow step *)

(* vm *)
val vm_write_fault : t   (* "vm.write_fault" *)
val vm_read_fault : t    (* "vm.read_fault" *)
val vm_page_in : t       (* "vm.page_in" *)
val vm_pt_walk : t       (* "vm.pt_walk" — verbose-only instant *)
val vm_shootdown : t     (* "vm.tlb_shootdown" *)

(* scheduler *)
val sched_spawn : t      (* "sched.spawn" *)
val sched_block : t      (* "sched.block" *)
val sched_wake : t       (* "sched.wake" *)
val sched_thread : t     (* "sched.thread" — whole-lifetime span *)

(* block device *)
val disk_write : t       (* "disk.write" *)
val disk_read : t        (* "disk.read" *)
val disk_flush : t       (* "disk.flush" *)

(* file systems *)
val fs_write : t         (* "fs.write" *)
val fs_fsync : t         (* "fs.fsync" *)
val fs_journal : t       (* "fs.journal" *)
val fs_writeback : t     (* "fs.writeback" *)
val fs_msync : t         (* "fs.msync" *)

(* aurora *)
val aurora_checkpoint : t      (* "aurora.checkpoint" *)
val aurora_stall : t           (* "aurora.stall" *)
val aurora_shadow : t          (* "aurora.shadow" *)
val aurora_io : t              (* "aurora.io" *)
val aurora_collapse : t        (* "aurora.collapse" *)
val aurora_checkpoint_app : t  (* "aurora.checkpoint_app" *)
val aurora_cow_fault : t       (* "aurora.cow_fault" *)

(* host-side buffer pool (mirrored from [Msnap_util.Pool] by [Metrics]).
   Counts depend on pool warmth — host state, not simulated state — so
   determinism comparisons must ignore "pool.*" counters. *)
val pool_hit : t               (* "pool.hit" *)
val pool_miss : t              (* "pool.miss" *)
val pool_recycle : t           (* "pool.recycle" *)

(** {2 CPU-accounting buckets}

    Typed keys for {!Sched.with_bucket}. Bucket names are what
    {!Sched.account_report} reports, so the constants keep the seed's
    exact strings. *)
module Bucket : sig
  type t

  val name : t -> string

  val id : t -> int
  (** Dense id in [0..count-1]; indexes the scheduler's flat per-bucket
      accounting array. ["user"] is id 0 (every thread's initial
      bucket). *)

  val of_id : int -> t
  (** Inverse of {!id}. *)

  val count : int
  (** Number of buckets. *)

  val user : t          (* "user" *)
  val io : t            (* "io" *)
  val log : t           (* "log" *)
  val write : t         (* "write" *)
  val fsync : t         (* "fsync" *)
  val read : t          (* "read" *)
  val memsnap : t       (* "memsnap" *)
  val memsnap_flush : t (* "memsnap flush" *)
  val page_faults : t   (* "page faults" *)
end
