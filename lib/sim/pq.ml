(* Binary min-heap over (prio, seq): the scheduler's original run queue,
   kept as the reference implementation for the timing wheel that
   replaced it (Msnap_util.Twheel — see the differential suite in
   test/test_util.ml, which pins the wheel to this heap pop for pop).
   Not on the hot path anymore. *)

type 'a entry = { prio : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

(* Placeholder for unused slots so they never pin a popped entry (and its
   captured closure/continuation) live. Never read: [size] bounds all
   accesses. *)
let dummy_entry : unit entry = { prio = 0; seq = 0; value = () }
let dummy () : 'a entry = Obj.magic dummy_entry

let create () = { data = [||]; size = 0; next_seq = 0 }

let is_empty t = t.size = 0
let length t = t.size

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow t =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nd = Array.make ncap (dummy ()) in
    Array.blit t.data 0 nd 0 t.size;
    t.data <- nd
  end

let push t ~prio value =
  let e = { prio; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  grow t;
  let i = ref t.size in
  t.size <- t.size + 1;
  t.data.(!i) <- e;
  (* sift up *)
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less t.data.(!i) t.data.(parent) then begin
      let tmp = t.data.(parent) in
      t.data.(parent) <- t.data.(!i);
      t.data.(!i) <- tmp;
      i := parent
    end
    else continue_ := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      t.data.(t.size) <- dummy ();
      (* sift down *)
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && less t.data.(l) t.data.(!smallest) then smallest := l;
        if r < t.size && less t.data.(r) t.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.data.(!smallest) in
          t.data.(!smallest) <- t.data.(!i);
          t.data.(!i) <- tmp;
          i := !smallest
        end
        else continue_ := false
      done
    end
    else t.data.(0) <- dummy ();
    Some top.value
  end

let min_prio t = if t.size = 0 then None else Some t.data.(0).prio
