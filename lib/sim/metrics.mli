(** Counters and latency histograms for experiment reporting, keyed by
    typed {!Probe}s.

    The case studies instrument their persistence calls
    ([Probe.db_fsync], [Probe.db_write], [Probe.db_memsnap], ...)
    through this registry; the benchmark harness reads the totals to
    regenerate the paper's syscall-count tables (Tables 7 and 9).
    Storage is keyed by the probe's wire name, so reported output is
    identical to the historical string-keyed registry.

    State is domain-local — call {!reset} between experiments. Every
    entry point takes a typed {!Probe}; use {!Probe.make} for ad-hoc
    names (tests, one-off experiments). *)

val reset : unit -> unit

val incr : ?by:int -> Probe.t -> unit
(** Bump a counter. *)

val count : Probe.t -> int
(** Current value (0 if never bumped). *)

val add_sample : Probe.t -> int -> unit
(** Record one latency sample (ns); also bumps the implicit op counter
    of the same name. *)

val hist : Probe.t -> Msnap_util.Histogram.t option

val mean_ns : Probe.t -> float
(** Mean of the samples recorded under a probe (0 if none). *)

val samples : Probe.t -> int

val counters : unit -> (string * int) list
(** All counters, sorted by name. *)

(** {2 Cell isolation}

    Used by [Msnap_sim.Cell] to give each parallel simulation cell a
    private registry, merged back into the submitting experiment's
    registry at force time in submission order (counters add,
    histograms fold sample-exactly). Bracket, don't interleave. *)

type snapshot

val cell_begin : unit -> snapshot
(** Install a fresh empty store on this domain; returns the displaced
    one. *)

val cell_end : snapshot -> snapshot
(** Restore the displaced store; returns the cell's store for a later
    {!cell_merge}. *)

val cell_merge : snapshot -> unit
(** Fold a finished cell's counters and histograms into the current
    store. The snapshot must not be used again. *)

val timed : Probe.t -> (unit -> 'a) -> 'a
(** Run the callback, recording its elapsed virtual time as a sample.
    When tracing is enabled, also emits the section as a trace span in
    the probe's subsystem category. *)

val timed_begin : unit -> int
val timed_end : Probe.t -> int -> unit
(** Closure-free bracket form of {!timed} for hot call sites:
    [let t0 = timed_begin () in ...; timed_end probe t0]. Not recorded
    if the section raises (same as {!timed}). *)

