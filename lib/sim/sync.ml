(* All primitives park through Sched.Waitq: an intrusive FIFO whose
   links live inside the (pooled) wakers, so blocking allocates nothing
   beyond the suspend closure. Wake orders are exactly the seed's:
   Mutex/Condition/Semaphore/Ivar/Channel all FIFO. *)

module Waitq = Sched.Waitq

module Mutex = struct
  type t = { mutable locked : bool; waiters : Waitq.t }

  let create () = { locked = false; waiters = Waitq.create () }

  let lock t =
    if not t.locked then t.locked <- true
    else Sched.suspend (fun w -> Waitq.add t.waiters w)
  (* Ownership passes directly to the woken waiter: [locked] stays true. *)

  let unlock t =
    if not t.locked then invalid_arg "Mutex.unlock: not locked";
    if Waitq.is_empty t.waiters then t.locked <- false
    else Sched.wake (Waitq.take t.waiters)

  let try_lock t =
    if t.locked then false
    else begin
      t.locked <- true;
      true
    end

  let with_lock t f =
    lock t;
    Fun.protect ~finally:(fun () -> unlock t) f

  let is_locked t = t.locked
end

module Condition = struct
  type t = { waiters : Waitq.t }

  let create () = { waiters = Waitq.create () }

  let wait t m =
    (* Park first, then release the mutex, so a signal between unlock and
       park cannot be lost. Sched.suspend registers synchronously. *)
    Sched.suspend (fun w ->
        Waitq.add t.waiters w;
        Mutex.unlock m);
    Mutex.lock m

  let signal t =
    if not (Waitq.is_empty t.waiters) then Sched.wake (Waitq.take t.waiters)

  let broadcast t =
    (* Waking never runs the woken thread (it only schedules it), so
       draining in place is equivalent to the seed's snapshot-then-wake. *)
    Waitq.wake_all t.waiters
end

module Semaphore = struct
  type t = { mutable count : int; waiters : Waitq.t }

  let create n =
    assert (n >= 0);
    { count = n; waiters = Waitq.create () }

  let acquire t =
    if t.count > 0 then t.count <- t.count - 1
    else Sched.suspend (fun w -> Waitq.add t.waiters w)
  (* The released permit passes directly to the woken waiter. *)

  let release t =
    if Waitq.is_empty t.waiters then t.count <- t.count + 1
    else Sched.wake (Waitq.take t.waiters)

  let try_acquire t =
    if t.count > 0 then begin
      t.count <- t.count - 1;
      true
    end
    else false

  let value t = t.count
end

module Ivar = struct
  type 'a t = { mutable value : 'a option; waiters : Waitq.t }

  let create () = { value = None; waiters = Waitq.create () }

  let fill t v =
    if t.value <> None then invalid_arg "Ivar.fill: already filled";
    t.value <- Some v;
    Waitq.wake_all t.waiters

  let read t =
    match t.value with
    | Some v -> v
    | None ->
      Sched.suspend (fun w -> Waitq.add t.waiters w);
      (match t.value with
      | Some v -> v
      | None -> assert false)

  let is_filled t = t.value <> None
  let peek t = t.value
end

module Channel = struct
  type 'a t = {
    items : 'a Queue.t;
    capacity : int;
    senders : Waitq.t;
    receivers : Waitq.t;
  }

  let create ~capacity =
    assert (capacity > 0);
    { items = Queue.create (); capacity;
      senders = Waitq.create (); receivers = Waitq.create () }

  let wake_one q = if not (Waitq.is_empty q) then Sched.wake (Waitq.take q)

  let rec send t v =
    if Queue.length t.items < t.capacity then begin
      Queue.add v t.items;
      wake_one t.receivers
    end
    else begin
      Sched.suspend (fun w -> Waitq.add t.senders w);
      send t v
    end

  let rec recv t =
    match Queue.take_opt t.items with
    | Some v ->
      wake_one t.senders;
      v
    | None ->
      Sched.suspend (fun w -> Waitq.add t.receivers w);
      recv t

  let try_recv t =
    match Queue.take_opt t.items with
    | Some v ->
      wake_one t.senders;
      Some v
    | None -> None

  let length t = Queue.length t.items
end
