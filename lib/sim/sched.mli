(** Deterministic discrete-event scheduler with green threads.

    Every component of the reproduction — the VM subsystem, the block
    device, the file systems, the databases — runs on this scheduler. Time
    is virtual (integer nanoseconds) and only advances when a thread
    declares that work costs time ({!cpu}) or sleeps ({!delay}); together
    with the seeded PRNGs this makes every experiment bit-for-bit
    reproducible.

    Threads are one-shot effect-handler coroutines (OCaml 5 [Effect.Deep]).
    There is no parallelism: exactly one thread runs at a time and runs
    until it blocks, so the simulated kernel code can use plain mutable
    state between scheduling points — just like a uniprocessor kernel with
    interrupts disabled. Contention and concurrency *over time* are still
    modelled faithfully because threads interleave at every [cpu]/[delay]/
    blocking call. *)

type tid

exception Deadlock of string
(** Raised by {!run} when no thread is runnable but some have not finished. *)

exception Violation of string
(** Raised (only under [Msnap_util.Slice.debug_checks]) when a stale
    waker is woken — i.e. after its thread already resumed. With checks
    off, wakers are recycled through a per-engine free list at resume
    time, so a stale wake would silently target the wrong parked thread;
    under checks the free list is disabled, released wakers are
    poisoned, and the bug surfaces here. *)

val run : (unit -> 'a) -> 'a
(** [run main] executes [main] as the first thread of a fresh simulation and
    returns its result once every spawned thread has finished. Resets the
    clock and CPU accounting. Not reentrant. *)

val now : unit -> int
(** Current virtual time in nanoseconds. Must be called inside {!run}. *)

val running : unit -> bool
(** Is a simulation active on this domain? *)

val trace_base : unit -> int
val set_trace_base : int -> unit
(** The domain-local trace-timeline base: each finished {!run} advances
    it past its final clock so consecutive runs occupy disjoint
    intervals of an exported trace. Exposed for the cell layer
    ([Msnap_sim.Cell]), which gives each cell a private base-0 timeline
    and splices it back into the forcing domain's timeline in
    submission order. Host-only state. *)

val spawn : ?name:string -> (unit -> unit) -> tid
(** Start a new thread at the current time. *)

val join : tid -> unit
(** Block until the thread finishes. Reraises nothing: a thread failure
    aborts the whole simulation. *)

val self : unit -> tid
val tid_int : tid -> int
val name : tid -> string

val delay : int -> unit
(** Let virtual time pass without consuming CPU (e.g. waiting on a device). *)

val cpu : int -> unit
(** Spend CPU time: advances the clock and charges the current accounting
    bucket (see {!with_bucket}). *)

val yield : unit -> unit
(** Reschedule at the same instant behind already-runnable threads. *)

(** {2 Low-level blocking} *)

type waker
(** A one-shot capability to make a suspended thread runnable again. *)

val suspend : (waker -> unit) -> unit
(** [suspend f] parks the calling thread and hands [f] the waker. Used to
    build mutexes, condition variables and IO completion. *)

val wake : waker -> unit
(** Make the parked thread runnable at the current virtual time. Waking
    an already-woken waker before its thread resumes is a no-op; waking
    it after the thread resumed is a bug (wakers are pooled and may
    already belong to another park), detected under
    [Msnap_util.Slice.debug_checks] — see {!Violation}. *)

(** Intrusive FIFO queue of parked wakers: the building block for the
    {!Msnap_sim.Sync} primitives. Links live inside the waker, so
    enqueue/dequeue allocate nothing. A waker must sit in at most one
    Waitq at a time, and must be removed (taken) before it is woken. *)
module Waitq : sig
  type t

  val create : unit -> t
  val is_empty : t -> bool

  val add : t -> waker -> unit
  (** Append (FIFO). *)

  val take : t -> waker
  (** Remove and return the oldest waker; [Invalid_argument] if empty. *)

  val wake_all : t -> unit
  (** Drain the queue, waking each waker in FIFO order. *)
end

(** {2 CPU accounting} *)

val with_bucket : Probe.Bucket.t -> (unit -> 'a) -> 'a
(** Attribute all {!cpu} time spent in the callback (on this thread) to the
    named bucket. Nests; the innermost bucket wins. *)

val bucket : unit -> string
(** Current bucket name (["user"] at top level). *)

val account_report : unit -> (string * int) list
(** Total {!cpu} nanoseconds charged per bucket this run, sorted by name. *)

val account_total : unit -> int
(** Sum across buckets. *)

(** {2 Host-side statistics} *)

val host_counters : unit -> int * int * int * int
(** [(events, ctx_switches, waker_allocs, waker_reuses)] — cumulative
    totals for this domain over all completed runs: run-queue events
    executed, pops that handed the CPU to a different thread, wakers
    freshly allocated, and wakers recycled from the free list. Host
    observability only (BENCH_sim.json); deliberately not Metrics
    counters, so they can never appear in determinism digests. *)
