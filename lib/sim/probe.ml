type subsystem =
  | Sched
  | Vm
  | Blockdev
  | Fs
  | Objstore
  | Msnap
  | Aurora
  | Db
  | Host

let subsystem_name = function
  | Sched -> "sched"
  | Vm -> "vm"
  | Blockdev -> "blockdev"
  | Fs -> "fs"
  | Objstore -> "objstore"
  | Msnap -> "msnap"
  | Aurora -> "aurora"
  | Db -> "db"
  | Host -> "host"

type t = { p_sub : subsystem; p_name : string; p_id : int }

(* Probes are interned by (subsystem, name): repeated [make] calls with
   the same name return the same value, so the dense [id] can key flat
   per-probe stats arrays (Trace keeps its emit-time summary there —
   an int-indexed array load instead of a hashed tuple per event). *)
let intern_lock = Mutex.create ()
let interned : (string, t) Hashtbl.t = Hashtbl.create 128
let by_id : t array ref = ref [||]
let next_id = ref 0

let make p_sub p_name =
  let key = subsystem_name p_sub ^ "/" ^ p_name in
  Mutex.lock intern_lock;
  let p =
    match Hashtbl.find_opt interned key with
    | Some p -> p
    | None ->
      let p = { p_sub; p_name; p_id = !next_id } in
      incr next_id;
      Hashtbl.add interned key p;
      let n = Array.length !by_id in
      if p.p_id >= n then begin
        let nb = Array.make (max 64 (2 * max 1 n)) p in
        Array.blit !by_id 0 nb 0 n;
        by_id := nb
      end;
      !by_id.(p.p_id) <- p;
      p
  in
  Mutex.unlock intern_lock;
  p

let name p = p.p_name
let subsystem p = p.p_sub
let to_string p = subsystem_name p.p_sub ^ "/" ^ p.p_name
let id p = p.p_id
let count () = !next_id
let of_id i = !by_id.(i)

(* db engines: flat historical names, rendered verbatim by Tables 7/9 *)
let db_fsync = make Db "fsync"
let db_write = make Db "write"
let db_read = make Db "read"
let db_memsnap = make Db "memsnap"
let db_checkpoint = make Db "checkpoint"
let db_memtable_flush = make Db "memtable_flush"
let db_compaction = make Db "compaction"
let db_pg_checkpoint = make Db "pg_checkpoint"

(* msnap core *)
let msnap_persist = make Msnap "msnap_persist"
let msnap_persist_reset = make Msnap "msnap_persist.reset"
let msnap_persist_initiate = make Msnap "msnap_persist.initiate"
let msnap_persist_wait = make Msnap "msnap_persist.wait"
let msnap_persist_total = make Msnap "msnap_persist.total"
let msnap_wait = make Msnap "msnap_wait"
let msnap_first_fault = make Msnap "msnap.first_fault"
let msnap_take_dirty = make Msnap "msnap.take_dirty"
let msnap_pte_reset = make Msnap "msnap.pte_reset"
let msnap_durable = make Msnap "msnap.durable"

(* object store *)
let objstore_commits = make Objstore "objstore.commits"
let objstore_flush = make Objstore "objstore.flush"
let objstore_commit_queued = make Objstore "objstore.commit_queued"
let objstore_device_commit = make Objstore "objstore.device_commit"

(* vm *)
let vm_write_fault = make Vm "vm.write_fault"
let vm_read_fault = make Vm "vm.read_fault"
let vm_page_in = make Vm "vm.page_in"
let vm_pt_walk = make Vm "vm.pt_walk"
let vm_shootdown = make Vm "vm.tlb_shootdown"

(* scheduler *)
let sched_spawn = make Sched "sched.spawn"
let sched_block = make Sched "sched.block"
let sched_wake = make Sched "sched.wake"
let sched_thread = make Sched "sched.thread"

(* block device *)
let disk_write = make Blockdev "disk.write"
let disk_read = make Blockdev "disk.read"
let disk_flush = make Blockdev "disk.flush"

(* file systems *)
let fs_write = make Fs "fs.write"
let fs_fsync = make Fs "fs.fsync"
let fs_journal = make Fs "fs.journal"
let fs_writeback = make Fs "fs.writeback"
let fs_msync = make Fs "fs.msync"

(* aurora *)
let aurora_checkpoint = make Aurora "aurora.checkpoint"
let aurora_stall = make Aurora "aurora.stall"
let aurora_shadow = make Aurora "aurora.shadow"
let aurora_io = make Aurora "aurora.io"
let aurora_collapse = make Aurora "aurora.collapse"
let aurora_checkpoint_app = make Aurora "aurora.checkpoint_app"
let aurora_cow_fault = make Aurora "aurora.cow_fault"

(* host-side buffer pool (Msnap_util.Pool). Hit/miss ratios depend on
   pool warmth — host state — so these counters are excluded from
   determinism comparisons; they exist for observability only. *)
let pool_hit = make Host "pool.hit"
let pool_miss = make Host "pool.miss"
let pool_recycle = make Host "pool.recycle"

module Bucket = struct
  (* Dense ids: the scheduler keeps per-bucket CPU counters in a flat
     int array indexed by these, so with_bucket enter/exit and the cpu
     hot path never touch a hash table. "user" must stay id 0 — it is
     every thread's initial bucket. *)
  type t = int

  let names =
    [| "user"; "io"; "log"; "write"; "fsync"; "read"; "memsnap";
       "memsnap flush"; "page faults" |]

  let count = Array.length names
  let id b = b
  let of_id i = i
  let name b = names.(b)
  let user = 0
  let io = 1
  let log = 2
  let write = 3
  let fsync = 4
  let read = 5
  let memsnap = 6
  let memsnap_flush = 7
  let page_faults = 8
end
