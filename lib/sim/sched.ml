type thread = {
  id : int;
  tname : string;
  (* Virtual spawn time, kept only so tracing can emit a whole-lifetime
     span at thread exit. Deterministic state, host-only consumer. *)
  spawned : int;
  mutable finished : bool;
  mutable joiners : waker list;
  mutable acct : string;
  (* Cached counter cell for [acct] in the engine's bucket table, so the
     [cpu] hot path skips the Hashtbl lookup. [None] until first charge;
     invalidated whenever [acct] changes (with_bucket enter/exit). *)
  mutable acct_cell : int ref option;
}

and waker = {
  w_thread : thread;
  mutable fired : bool;
  (* The parked continuation lives in the waker itself, making [wake]
     O(1) instead of scanning an engine-wide association list. *)
  mutable w_action : (unit -> unit) option;
  w_engine : engine;
}

and engine = {
  mutable clock : int;
  runq : (unit -> unit) Pq.t;
  mutable live : int;
  mutable cur : thread option;
  mutable next_tid : int;
  mutable failure : exn option;
  buckets : (string, int ref) Hashtbl.t;
  (* All currently-parked wakers (most recent first), kept only for
     deadlock reporting. Fired wakers are pruned lazily, amortized O(1),
     so the list stays proportional to the number of parked threads. *)
  mutable parked : waker list;
  mutable parked_len : int;
  mutable parked_live : int;
}

type tid = thread

exception Deadlock of string

type _ Effect.t +=
  | Delay : int -> unit Effect.t
  | Suspend : (waker -> unit) -> unit Effect.t

(* One engine slot per domain: each domain can host an independent
   Sched.run, which is what lets the bench harness fan experiments out
   over a domain pool. *)
let engine_key : engine option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let engine_slot () = Domain.DLS.get engine_key

(* Trace-timeline base: accumulated final clocks of completed runs on
   this domain, so consecutive Sched.runs occupy disjoint intervals of
   the exported trace instead of overlapping at t=0. Host-only. *)
let trace_base_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let () =
  Trace.set_time_source (fun () ->
      let base = !(Domain.DLS.get trace_base_key) in
      match !(engine_slot ()) with Some e -> base + e.clock | None -> base);
  Trace.set_thread_source
    ~tid:(fun () ->
      match !(engine_slot ()) with
      | Some e -> ( match e.cur with Some t -> t.id | None -> -1)
      | None -> -1)
    ~tname:(fun () ->
      match !(engine_slot ()) with
      | Some e -> ( match e.cur with Some t -> t.tname | None -> "scheduler")
      | None -> "host")

let engine () =
  match !(engine_slot ()) with
  | Some e -> e
  | None -> invalid_arg "Sched: not inside Sched.run"

let now () = (engine ()).clock

let self () =
  match (engine ()).cur with
  | Some t -> t
  | None -> invalid_arg "Sched.self: no current thread"

let tid_int t = t.id
let name t = t.tname

let schedule e ~at action = Pq.push e.runq ~prio:at action

let prune_parked e =
  if e.parked_len > 64 && e.parked_len > 2 * e.parked_live then begin
    e.parked <- List.filter (fun w -> not w.fired) e.parked;
    e.parked_len <- e.parked_live
  end

let wake w =
  if not w.fired then begin
    w.fired <- true;
    let e = w.w_engine in
    if Trace.verbose () then
      Trace.instant Probe.sched_wake
        ~args:[ ("tid", Trace.I w.w_thread.id); ("thread", Trace.S w.w_thread.tname) ];
    (match w.w_action with
    | Some act ->
      w.w_action <- None;
      schedule e ~at:e.clock act
    | None -> ());
    e.parked_live <- e.parked_live - 1;
    prune_parked e
  end

(* Run [body] as a coroutine belonging to [t]. Each effect performed by the
   body enqueues its continuation and unwinds to the scheduler loop. *)
let start_thread e t body =
  let open Effect.Deep in
  let resume_as t k () =
    e.cur <- Some t;
    continue k ()
  in
  let handler =
    {
      retc =
        (fun () ->
          t.finished <- true;
          e.live <- e.live - 1;
          if Trace.is_on () then
            Trace.complete Probe.sched_thread ~dur:(e.clock - t.spawned)
              ~args:[ ("thread", Trace.S t.tname) ];
          let js = t.joiners in
          t.joiners <- [];
          List.iter wake js);
      exnc =
        (fun exn ->
          t.finished <- true;
          e.live <- e.live - 1;
          if e.failure = None then e.failure <- Some exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay ns ->
            Some
              (fun (k : (a, unit) continuation) ->
                schedule e ~at:(e.clock + ns) (resume_as t k))
          | Suspend f ->
            Some
              (fun (k : (a, unit) continuation) ->
                if Trace.verbose () then
                  Trace.instant Probe.sched_block
                    ~args:[ ("thread", Trace.S t.tname) ];
                let w =
                  { w_thread = t; fired = false;
                    w_action = Some (resume_as t k); w_engine = e }
                in
                e.parked <- w :: e.parked;
                e.parked_len <- e.parked_len + 1;
                e.parked_live <- e.parked_live + 1;
                f w)
          | _ -> None);
    }
  in
  match_with body () handler

let suspend f = Effect.perform (Suspend f)

(* Fast path: when no queued action is scheduled at or before the target
   time, performing the Delay effect would enqueue our continuation and
   immediately pop it back (the tie-break seq ordering guarantees we run
   before anything later queued at the same instant), so advancing the
   clock inline is semantically identical and skips the continuation
   capture plus two heap operations. *)
let advance e ns =
  let target = e.clock + ns in
  match Pq.min_prio e.runq with
  | Some p when p <= target -> Effect.perform (Delay ns)
  | _ -> e.clock <- target

let delay ns = if ns > 0 then advance (engine ()) ns
let yield () = Effect.perform (Delay 0)

let spawn ?(name = "thread") body =
  let e = engine () in
  let t =
    {
      id = e.next_tid;
      tname = name;
      spawned = e.clock;
      finished = false;
      joiners = [];
      acct = "user";
      acct_cell = None;
    }
  in
  e.next_tid <- e.next_tid + 1;
  e.live <- e.live + 1;
  if Trace.verbose () then
    Trace.instant Probe.sched_spawn
      ~args:[ ("tid", Trace.I t.id); ("thread", Trace.S name) ];
  schedule e ~at:e.clock (fun () ->
      e.cur <- Some t;
      start_thread e t body);
  t

let join target =
  if not target.finished then
    suspend (fun w -> target.joiners <- w :: target.joiners)

let bucket () = (self ()).acct

let bucket_cell e name =
  match Hashtbl.find_opt e.buckets name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add e.buckets name r;
    r

let cpu ns =
  if ns > 0 then begin
    let e = engine () in
    let t =
      match e.cur with
      | Some t -> t
      | None -> invalid_arg "Sched.cpu: no current thread"
    in
    let cell =
      match t.acct_cell with
      | Some c -> c
      | None ->
        let c = bucket_cell e t.acct in
        t.acct_cell <- Some c;
        c
    in
    cell := !cell + ns;
    advance e ns
  end

let with_bucket_name name f =
  let t = self () in
  let saved = t.acct in
  let saved_cell = t.acct_cell in
  t.acct <- name;
  t.acct_cell <- None;
  Fun.protect
    ~finally:(fun () ->
      t.acct <- saved;
      t.acct_cell <- saved_cell)
    f

let with_bucket b f = with_bucket_name (Probe.Bucket.name b) f

let account_report () =
  let e = engine () in
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) e.buckets []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let account_total () =
  List.fold_left (fun acc (_, v) -> acc + v) 0 (account_report ())

let running () = !(engine_slot ()) <> None
let trace_base () = !(Domain.DLS.get trace_base_key)
let set_trace_base v = Domain.DLS.get trace_base_key := v

let run main =
  let slot = engine_slot () in
  if !slot <> None then invalid_arg "Sched.run: nested run";
  let e =
    {
      clock = 0;
      runq = Pq.create ();
      live = 0;
      cur = None;
      next_tid = 0;
      failure = None;
      buckets = Hashtbl.create 17;
      parked = [];
      parked_len = 0;
      parked_live = 0;
    }
  in
  slot := Some e;
  let result = ref None in
  ignore (spawn ~name:"main" (fun () -> result := Some (main ())));
  let finalize () =
    (* Advance the host-only trace timeline past this run (plus a gap so
       back-to-back runs are visually distinct in the export). *)
    let base = Domain.DLS.get trace_base_key in
    base := !base + e.clock + 1_000;
    slot := None
  in
  let deadlock () =
    let parked =
      List.filter_map
        (fun w -> if w.fired then None else Some w.w_thread.tname)
        e.parked
    in
    finalize ();
    raise
      (Deadlock
         (Printf.sprintf "%d thread(s) blocked forever: %s" e.live
            (String.concat ", " parked)))
  in
  let rec loop () =
    if e.failure <> None then ()
    else
      match Pq.min_prio e.runq with
      | None -> if e.live > 0 then deadlock ()
      | Some at ->
        if at > e.clock then e.clock <- at;
        (match Pq.pop e.runq with
        | Some action -> action ()
        | None -> assert false);
        loop ()
  in
  (try loop ()
   with exn ->
     finalize ();
     raise exn);
  let failure = e.failure in
  finalize ();
  match failure with
  | Some exn -> raise exn
  | None -> (
    match !result with
    | Some v -> v
    | None -> failwith "Sched.run: main thread did not complete")
