module Twheel = Msnap_util.Twheel

(* Waker life cycle. A waker is acquired from the engine free list when
   a thread parks (Suspend) or sleeps (Delay), carries the parked
   continuation, and is released back to the free list the moment its
   continuation is resumed — so steady-state parking allocates nothing.
   Under Msnap_util.Slice.debug_checks the free list is disabled and
   released wakers are poisoned instead: waking one raises {!Violation},
   turning use-after-resume bugs into hard failures. *)
let st_free = 0 (* on the free list *)
let st_parked = 1 (* suspended; in the parked dlist; wake will fire it *)
let st_timer = 2 (* carrying a Delay continuation; not wakeable *)
let st_fired = 3 (* woken; resume scheduled but not yet run *)
let st_poisoned = 4 (* released under debug_checks; any wake is a bug *)
let st_nil = 5 (* sentinels *)

type thread = {
  id : int;
  tname : string;
  (* Virtual spawn time, kept only so tracing can emit a whole-lifetime
     span at thread exit. Deterministic state, host-only consumer. *)
  spawned : int;
  mutable finished : bool;
  (* Intrusive LIFO stack of joiner wakers linked through [w_qnext],
     [nil_waker]-terminated — same wake order as the seed's cons list. *)
  mutable joiners : waker;
  (* Current CPU-accounting bucket as a dense Probe.Bucket id, indexing
     the engine's flat [buckets] array: with_bucket enter/exit and the
     cpu hot path are a plain int store, no hash lookups. *)
  mutable acct : int;
}

and waker = {
  mutable w_thread : thread;
  mutable w_state : int;
  (* The parked continuation lives in the waker itself, making [wake]
     O(1); [dummy_k] while the waker is free. *)
  mutable w_k : (unit, unit) Effect.Deep.continuation;
  w_engine : engine;
  (* Preallocated resume closure, pushed on the run queue at wake time.
     It reads [w_thread]/[w_k] when it runs, so one closure serves every
     reincarnation of this waker. *)
  w_resume : unit -> unit;
  (* Doubly-linked parked list (engine sentinel [parked]) while parked,
     for O(1) unlink at wake and deadlock reporting; [w_next] doubles as
     the free-list link while free. *)
  mutable w_prev : waker;
  mutable w_next : waker;
  (* Singly-linked FIFO link for Waitq (sync primitives) and the
     joiners stack. *)
  mutable w_qnext : waker;
}

and engine = {
  mutable clock : int;
  runq : (unit -> unit) Twheel.t;
  mutable live : int;
  mutable cur : thread; (* [t_none] when the scheduler itself runs *)
  t_none : thread;
  mutable next_tid : int;
  mutable failure : exn option;
  (* Per-bucket CPU ns, indexed by Probe.Bucket.id. *)
  buckets : int array;
  (* Sentinel of the parked-waker dlist, most recently parked first. *)
  parked : waker;
  mutable free_wakers : waker; (* free list, [nil_waker]-terminated *)
  (* Host-only statistics, flushed to the domain totals at finalize. *)
  mutable last_tid : int;
  mutable ev : int; (* run-queue pops *)
  mutable ctx : int; (* pops that handed the CPU to a different thread *)
  mutable walloc : int; (* wakers freshly allocated *)
  mutable wreuse : int; (* wakers reused from the free list *)
}

type tid = thread

exception Deadlock of string
exception Violation of string

type _ Effect.t +=
  | Delay : int -> unit Effect.t
  | Suspend : (waker -> unit) -> unit Effect.t

let dummy_k : (unit, unit) Effect.Deep.continuation = Obj.magic 0

(* Global nil sentinel terminating free lists, wait queues and joiner
   stacks. Shared across engines and domains, so its fields are NEVER
   written — every list operation checks for it by physical equality
   before touching links. *)
let nil_runq : (unit -> unit) Twheel.t = Twheel.create ~initial:2 ()

let rec nil_thread =
  { id = -1; tname = "scheduler"; spawned = 0; finished = true;
    joiners = nil_waker; acct = 0 }

and nil_engine =
  { clock = 0; runq = nil_runq; live = 0; cur = nil_thread;
    t_none = nil_thread; next_tid = 0; failure = None; buckets = [||];
    parked = nil_waker; free_wakers = nil_waker; last_tid = 0; ev = 0;
    ctx = 0; walloc = 0; wreuse = 0 }

and nil_waker =
  { w_thread = nil_thread; w_state = 5 (* st_nil *); w_k = dummy_k;
    w_engine = nil_engine; w_resume = ignore; w_prev = nil_waker;
    w_next = nil_waker; w_qnext = nil_waker }

(* One engine slot per domain: each domain can host an independent
   Sched.run, which is what lets the bench harness fan experiments out
   over a domain pool. *)
let engine_key : engine option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let engine_slot () = Domain.DLS.get engine_key

(* Trace-timeline base: accumulated final clocks of completed runs on
   this domain, so consecutive Sched.runs occupy disjoint intervals of
   the exported trace instead of overlapping at t=0. Host-only. *)
let trace_base_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

(* Cumulative host-side scheduler statistics per domain (events
   executed, context switches, waker allocation/reuse). Pure host
   observability for BENCH_sim.json — deliberately not Metrics
   counters, so they can never leak into determinism digests. *)
type host_stats = {
  mutable hs_events : int;
  mutable hs_ctx : int;
  mutable hs_walloc : int;
  mutable hs_wreuse : int;
}

let host_stats_key : host_stats Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { hs_events = 0; hs_ctx = 0; hs_walloc = 0; hs_wreuse = 0 })

let host_counters () =
  let s = Domain.DLS.get host_stats_key in
  (s.hs_events, s.hs_ctx, s.hs_walloc, s.hs_wreuse)

let () =
  Trace.set_time_source (fun () ->
      let base = !(Domain.DLS.get trace_base_key) in
      match !(engine_slot ()) with Some e -> base + e.clock | None -> base);
  (* [cur] is [t_none] (id -1, "scheduler") between threads, so the
     sources need no option branch. *)
  Trace.set_thread_source
    ~tid:(fun () ->
      match !(engine_slot ()) with Some e -> e.cur.id | None -> -1)
    ~tname:(fun () ->
      match !(engine_slot ()) with Some e -> e.cur.tname | None -> "host")

let engine () =
  match !(engine_slot ()) with
  | Some e -> e
  | None -> invalid_arg "Sched: not inside Sched.run"

let now () = (engine ()).clock

let self () =
  let e = engine () in
  if e.cur == e.t_none then invalid_arg "Sched.self: no current thread";
  e.cur

let tid_int t = t.id
let name t = t.tname

let schedule e ~at action = Twheel.push e.runq ~prio:at action

(* --- waker pool --- *)

let park_link e w =
  let s = e.parked in
  let n = s.w_next in
  w.w_prev <- s;
  w.w_next <- n;
  n.w_prev <- w;
  s.w_next <- w

let park_unlink w =
  w.w_prev.w_next <- w.w_next;
  w.w_next.w_prev <- w.w_prev;
  w.w_prev <- nil_waker;
  w.w_next <- nil_waker

let release_waker e w =
  w.w_k <- dummy_k;
  w.w_thread <- e.t_none;
  if !Msnap_util.Slice.debug_checks then w.w_state <- st_poisoned
  else begin
    w.w_state <- st_free;
    w.w_next <- e.free_wakers;
    e.free_wakers <- w
  end

let resume_thread e t =
  if t.id <> e.last_tid then begin
    e.ctx <- e.ctx + 1;
    e.last_tid <- t.id
  end;
  e.cur <- t

(* Body of every waker's preallocated [w_resume] closure: recycle the
   waker first (the resumed thread may re-park through it immediately),
   then hand the CPU to the parked thread. *)
let run_waker w =
  let e = w.w_engine in
  let t = w.w_thread in
  let k = w.w_k in
  release_waker e w;
  resume_thread e t;
  Effect.Deep.continue k ()

let fresh_waker e t =
  e.walloc <- e.walloc + 1;
  let rec w =
    { w_thread = t; w_state = st_free; w_k = dummy_k; w_engine = e;
      w_resume = (fun () -> run_waker w); w_prev = nil_waker;
      w_next = nil_waker; w_qnext = nil_waker }
  in
  w

let acquire_waker e t =
  let w = e.free_wakers in
  if w == nil_waker then fresh_waker e t
  else begin
    e.free_wakers <- w.w_next;
    w.w_next <- nil_waker;
    w.w_thread <- t;
    e.wreuse <- e.wreuse + 1;
    w
  end

let wake w =
  if w.w_state = st_parked then begin
    w.w_state <- st_fired;
    let e = w.w_engine in
    park_unlink w;
    if Trace.verbose () then
      Trace.instant Probe.sched_wake
        ~args:[ ("tid", Trace.I w.w_thread.id); ("thread", Trace.S w.w_thread.tname) ];
    schedule e ~at:e.clock w.w_resume
  end
  else if w.w_state <> st_fired && !Msnap_util.Slice.debug_checks then
    (* Waking after the thread already resumed would (silently) do
       nothing in release builds because the waker has moved on; under
       debug_checks the released waker was poisoned so the stale wake is
       caught here instead. *)
    raise
      (Violation
         (Printf.sprintf "Sched.wake: stale waker (state %d): thread already resumed"
            w.w_state))

(* --- wait queues (intrusive, allocation-free) --- *)

module Waitq = struct
  type nonrec t = { mutable head : waker; mutable tail : waker }

  let create () = { head = nil_waker; tail = nil_waker }
  let is_empty q = q.head == nil_waker

  let add q w =
    w.w_qnext <- nil_waker;
    if q.head == nil_waker then begin
      q.head <- w;
      q.tail <- w
    end
    else begin
      q.tail.w_qnext <- w;
      q.tail <- w
    end

  let take q =
    let w = q.head in
    if w == nil_waker then invalid_arg "Sched.Waitq.take: empty";
    let n = w.w_qnext in
    q.head <- n;
    if n == nil_waker then q.tail <- nil_waker;
    w.w_qnext <- nil_waker;
    w

  let wake_all q =
    while not (is_empty q) do
      wake (take q)
    done
end

(* Run [body] as a coroutine belonging to [t]. Each effect performed by the
   body parks its continuation in a pooled waker and unwinds to the
   scheduler loop. *)
let start_thread e t body =
  let open Effect.Deep in
  let handler =
    {
      retc =
        (fun () ->
          t.finished <- true;
          e.live <- e.live - 1;
          if Trace.is_on () then
            Trace.complete Probe.sched_thread ~dur:(e.clock - t.spawned)
              ~args:[ ("thread", Trace.S t.tname) ];
          let rec wake_joiners w =
            if w != nil_waker then begin
              let next = w.w_qnext in
              w.w_qnext <- nil_waker;
              wake w;
              wake_joiners next
            end
          in
          let js = t.joiners in
          t.joiners <- nil_waker;
          wake_joiners js);
      exnc =
        (fun exn ->
          t.finished <- true;
          e.live <- e.live - 1;
          if e.failure = None then e.failure <- Some exn);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay ns ->
            Some
              (fun (k : (a, unit) continuation) ->
                let w = acquire_waker e t in
                w.w_state <- st_timer;
                w.w_k <- k;
                schedule e ~at:(e.clock + ns) w.w_resume)
          | Suspend f ->
            Some
              (fun (k : (a, unit) continuation) ->
                if Trace.verbose () then
                  Trace.instant Probe.sched_block
                    ~args:[ ("thread", Trace.S t.tname) ];
                let w = acquire_waker e t in
                w.w_state <- st_parked;
                w.w_k <- k;
                park_link e w;
                f w)
          | _ -> None);
    }
  in
  match_with body () handler

let suspend f = Effect.perform (Suspend f)

(* Fast path: when the wheel holds nothing scheduled at or before the
   target time, performing the Delay effect would park our continuation
   and immediately pop it back (the tie-break seq ordering guarantees we
   run before anything later queued at the same instant), so advancing
   the clock inline is semantically identical and skips the continuation
   capture plus two wheel operations. [Twheel.min_prio] is a pure O(1)
   cached-minimum read, so this probe costs what the heap's peek did. *)
let advance e ns =
  let target = e.clock + ns in
  let p = Twheel.min_prio e.runq in
  if p >= 0 && p <= target then Effect.perform (Delay ns)
  else e.clock <- target

let delay ns = if ns > 0 then advance (engine ()) ns
let yield () = Effect.perform (Delay 0)

let spawn ?(name = "thread") body =
  let e = engine () in
  let t =
    {
      id = e.next_tid;
      tname = name;
      spawned = e.clock;
      finished = false;
      joiners = nil_waker;
      acct = 0 (* Probe.Bucket.user *);
    }
  in
  e.next_tid <- e.next_tid + 1;
  e.live <- e.live + 1;
  if Trace.verbose () then
    Trace.instant Probe.sched_spawn
      ~args:[ ("tid", Trace.I t.id); ("thread", Trace.S name) ];
  schedule e ~at:e.clock (fun () ->
      resume_thread e t;
      start_thread e t body);
  t

let join target =
  if not target.finished then
    suspend (fun w ->
        w.w_qnext <- target.joiners;
        target.joiners <- w)

let bucket () = Probe.Bucket.name (Probe.Bucket.of_id (self ()).acct)

let cpu ns =
  if ns > 0 then begin
    let e = engine () in
    let t = e.cur in
    if t == e.t_none then invalid_arg "Sched.cpu: no current thread";
    let b = e.buckets in
    let i = t.acct in
    Array.unsafe_set b i (Array.unsafe_get b i + ns);
    advance e ns
  end

let with_bucket b f =
  let t = self () in
  let saved = t.acct in
  t.acct <- Probe.Bucket.id b;
  Fun.protect ~finally:(fun () -> t.acct <- saved) f

let account_report () =
  let e = engine () in
  let acc = ref [] in
  for i = Probe.Bucket.count - 1 downto 0 do
    let v = e.buckets.(i) in
    if v <> 0 then acc := (Probe.Bucket.name (Probe.Bucket.of_id i), v) :: !acc
  done;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

let account_total () =
  List.fold_left (fun acc (_, v) -> acc + v) 0 (account_report ())

let running () = !(engine_slot ()) <> None
let trace_base () = !(Domain.DLS.get trace_base_key)
let set_trace_base v = Domain.DLS.get trace_base_key := v

let run main =
  let slot = engine_slot () in
  if !slot <> None then invalid_arg "Sched.run: nested run";
  let t_none =
    { id = -1; tname = "scheduler"; spawned = 0; finished = true;
      joiners = nil_waker; acct = 0 }
  in
  let runq = Twheel.create () in
  let buckets = Array.make Probe.Bucket.count 0 in
  let rec e =
    { clock = 0; runq; live = 0; cur = t_none; t_none; next_tid = 0;
      failure = None; buckets; parked = psent; free_wakers = nil_waker;
      last_tid = min_int; ev = 0; ctx = 0; walloc = 0; wreuse = 0 }
  and psent =
    { w_thread = t_none; w_state = st_nil; w_k = dummy_k; w_engine = e;
      w_resume = ignore; w_prev = psent; w_next = psent;
      w_qnext = nil_waker }
  in
  slot := Some e;
  let result = ref None in
  ignore (spawn ~name:"main" (fun () -> result := Some (main ())));
  let finalize () =
    (* Advance the host-only trace timeline past this run (plus a gap so
       back-to-back runs are visually distinct in the export). *)
    let base = Domain.DLS.get trace_base_key in
    base := !base + e.clock + 1_000;
    let s = Domain.DLS.get host_stats_key in
    s.hs_events <- s.hs_events + e.ev;
    s.hs_ctx <- s.hs_ctx + e.ctx;
    s.hs_walloc <- s.hs_walloc + e.walloc;
    s.hs_wreuse <- s.hs_wreuse + e.wreuse;
    slot := None
  in
  let deadlock () =
    (* Walk the parked dlist: most recently parked first, same order as
       the seed's cons list. *)
    let buf = Buffer.create 64 in
    let rec go w first =
      if w != psent then begin
        if not first then Buffer.add_string buf ", ";
        Buffer.add_string buf w.w_thread.tname;
        go w.w_next false
      end
    in
    go psent.w_next true;
    let live = e.live in
    let names = Buffer.contents buf in
    finalize ();
    raise
      (Deadlock
         (Printf.sprintf "%d thread(s) blocked forever: %s" live names))
  in
  let rec loop () =
    if e.failure <> None then ()
    else begin
      let at = Twheel.min_prio e.runq in
      if at < 0 then begin if e.live > 0 then deadlock () end
      else begin
        if at > e.clock then e.clock <- at;
        e.ev <- e.ev + 1;
        (Twheel.pop_min e.runq) ();
        loop ()
      end
    end
  in
  (try loop ()
   with exn ->
     finalize ();
     raise exn);
  let failure = e.failure in
  finalize ();
  match failure with
  | Some exn -> raise exn
  | None -> (
    match !result with
    | Some v -> v
    | None -> failwith "Sched.run: main thread did not complete")
