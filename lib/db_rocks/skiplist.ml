module Sched = Msnap_sim.Sched
module Rng = Msnap_util.Rng

let max_level = 12

(* Links point at a per-list sentinel [nil] instead of holding
   [node option]: the hot search loop chases bare pointers with no
   Some-boxing, and end-of-level is a physical-equality test. [nil]'s
   key is never compared — every probe guards [n != nil] first — and
   its empty [next] makes an accidental dereference an immediate
   error. *)
type node = {
  key : string;
  mutable value : string;
  mutable deleted : bool;
  next : node array; (* length = node's level *)
}

type t = {
  head : node;
  nil : node;
  (* Reusable predecessor scratch for the mutators ([insert]/[delete]).
     Mutations must be externally serialized (Rocks runs them under the
     write-group lock) — but a mutator may yield at [Sched.cpu] while
     readers run: [find]/[iter_from]/[iter] never touch this scratch. *)
  path : node array;
  rng : Rng.t;
  mutable level : int;
  mutable count : int;
  mutable bytes : int;
}

(* Userspace cost of one pointer chase + comparison. *)
let hop_cost = 25

let create ?(seed = 0x5C1B) () =
  let nil = { key = ""; value = ""; deleted = false; next = [||] } in
  let head =
    { key = ""; value = ""; deleted = false;
      next = Array.make max_level nil }
  in
  {
    head;
    nil;
    path = Array.make max_level head;
    rng = Rng.create seed;
    level = 1;
    count = 0;
    bytes = 0;
  }

let random_level t =
  let rec go l = if l < max_level && Rng.int t.rng 4 = 0 then go (l + 1) else l in
  go 1

(* Level-0 predecessor of [key]: the full descent, charging one
   [hop_cost] per probe including each level's failing one — the same
   charge sequence as the seed's path walk. Allocation-free; used by
   the read paths, which must not share the mutator scratch. *)
let pred0 t key =
  let nil = t.nil in
  let x = ref t.head in
  for lvl = t.level - 1 downto 0 do
    let continue_ = ref true in
    while !continue_ do
      Sched.cpu hop_cost;
      let n = (!x).next.(lvl) in
      if n != nil && n.key < key then x := n else continue_ := false
    done
  done;
  !x

(* Predecessors of [key] at every level, in the per-list scratch.
   Mutators only; see [path]. *)
let find_path t key =
  let update = t.path in
  (* Levels the walk won't visit must read as [head]: an insert that
     grows the list links them directly off the head. *)
  for i = t.level to max_level - 1 do
    update.(i) <- t.head
  done;
  let nil = t.nil in
  let x = ref t.head in
  for lvl = t.level - 1 downto 0 do
    let continue_ = ref true in
    while !continue_ do
      Sched.cpu hop_cost;
      let n = (!x).next.(lvl) in
      if n != nil && n.key < key then x := n else continue_ := false
    done;
    update.(lvl) <- !x
  done;
  update

let insert t ~key ~value =
  let update = find_path t key in
  let n = update.(0).next.(0) in
  if n != t.nil && n.key = key then begin
    t.bytes <- t.bytes + String.length value - String.length n.value;
    n.value <- value;
    if n.deleted then begin
      n.deleted <- false;
      t.count <- t.count + 1
    end
  end
  else begin
    let lvl = random_level t in
    if lvl > t.level then t.level <- lvl (* head already covers all levels *);
    let node = { key; value; deleted = false; next = Array.make lvl t.nil } in
    for i = 0 to lvl - 1 do
      node.next.(i) <- update.(i).next.(i);
      update.(i).next.(i) <- node
    done;
    t.count <- t.count + 1;
    t.bytes <- t.bytes + String.length key + String.length value + (16 * lvl)
  end

let find t key =
  let n = (pred0 t key).next.(0) in
  if n != t.nil && n.key = key && not n.deleted then Some n.value else None

let delete t key =
  let n = (pred0 t key).next.(0) in
  if n != t.nil && n.key = key && not n.deleted then begin
    (* Logical delete: the node stays linked (the seed behaviour). *)
    n.deleted <- true;
    t.count <- t.count - 1;
    true
  end
  else false

let iter_from t key f =
  let nil = t.nil in
  let rec visit n =
    if n != nil then begin
      Sched.cpu hop_cost;
      if n.deleted then visit n.next.(0)
      else if f n.key n.value then visit n.next.(0)
    end
  in
  visit (pred0 t key).next.(0)

let iter t f =
  let nil = t.nil in
  let rec go n =
    if n != nil then begin
      if not n.deleted then f n.key n.value;
      go n.next.(0)
    end
  in
  go t.head.next.(0)

let count t = t.count
let approximate_bytes t = t.bytes

let clear t =
  Array.fill t.head.next 0 max_level t.nil;
  t.level <- 1;
  t.count <- 0;
  t.bytes <- 0
