module Fs = Msnap_fs.Fs
module Msnap = Msnap_core.Msnap
module Aurora = Msnap_aurora.Aurora
module Sync = Msnap_sim.Sync
module Metrics = Msnap_sim.Metrics
module Probe = Msnap_sim.Probe
module Store = Msnap_objstore.Store
module Phys = Msnap_vm.Phys
module Aspace = Msnap_vm.Aspace
module Recoverable = Msnap_faults.Recoverable

type backend =
  | Baseline of Msnap_fs.Fs.t
  | Memsnap of Msnap_core.Msnap.t
  | Aurora of Msnap_aurora.Aurora.Kernel.t

type config = {
  memtable_flush_bytes : int;
  region_pages : int;
}

let default_config =
  { memtable_flush_bytes = 4 * 1024 * 1024; region_pages = 65536 }

let wal_record_header = 24
let aurora_region_base = 0x5800 lsl 32

(* MemTable entries carry a tag so deletes can flow into SSTable
   tombstones: 'V' value, 'D' delete. *)
let enc_value v = "V" ^ v
let enc_tombstone = "D"

let dec = function
  | "" -> None
  | s -> if s.[0] = 'V' then Some (String.sub s 1 (String.length s - 1)) else None

type baseline_state = {
  fs : Fs.t;
  wal : Fs.file;
  mutable wal_size : int;
  mutable wal_zeros : Bytes.t; (* shared backing for zero-payload records *)
  memtable : Skiplist.t;
  lsm : Lsm.t;
  lock : Sync.Mutex.t;
  flush_bytes : int;
  mutable n_flushes : int;
  (* RocksDB-style write groups: concurrent committers queue and a leader
     performs one WAL append + fsync for the whole group. *)
  mutable wg_queue : ((string * string) list * unit Sync.Ivar.t) list;
  mutable wg_leader_active : bool;
}

type region_state = {
  ps : Pskiplist.t;
  plabel : string;
}

type state =
  | B of baseline_state
  | R of region_state

type t = { st : state; db_name : string }

let region_ops_of_msnap k md =
  {
    Pskiplist.ro_write = (fun ~off b -> Msnap.write k md ~off b);
    ro_read_into =
      (fun ~off buf ~pos ~len -> Msnap.read_into k md ~off buf ~pos ~len);
    ro_persist =
      (fun () ->
        Metrics.timed Probe.db_memsnap (fun () ->
            ignore (Msnap.persist k ~region:md ())));
    ro_pages = Msnap.length md / 4096;
  }

let region_ops_of_aurora r =
  {
    Pskiplist.ro_write = (fun ~off b -> Aurora.Region.write r ~off b);
    ro_read_into =
      (fun ~off buf ~pos ~len -> Aurora.Region.read_into r ~off buf ~pos ~len);
    ro_persist =
      (fun () -> Metrics.timed Probe.db_checkpoint (fun () -> Aurora.Region.checkpoint r));
    ro_pages = Aurora.Region.length r / 4096;
  }

let open_state ~recovering ?(config = default_config) backend ~name =
  match backend with
  | Baseline fs ->
    B
      {
        fs;
        wal = Fs.open_file fs (name ^ ".wal");
        wal_size = 0;
        wal_zeros = Bytes.empty;
        memtable = Skiplist.create ();
        lsm = Lsm.create fs ~name;
        lock = Sync.Mutex.create ();
        flush_bytes = config.memtable_flush_bytes;
        n_flushes = 0;
        wg_queue = [];
        wg_leader_active = false;
      }
  | Memsnap k ->
    let md =
      Msnap.open_region k ~name:("rocks/" ^ name)
        ~len:(config.region_pages * 4096) ()
    in
    let ops = region_ops_of_msnap k md in
    let ps = if recovering then Pskiplist.recover ops else Pskiplist.create ops in
    R { ps; plabel = "memsnap" }
  | Aurora k ->
    let r =
      Aurora.Region.create k ~name:("rocks/" ^ name) ~va:aurora_region_base
        ~len:(config.region_pages * 4096)
    in
    let ops = region_ops_of_aurora r in
    let ps = if recovering then Pskiplist.recover ops else Pskiplist.create ops in
    R { ps; plabel = "aurora" }

let open_db ?config backend ~name =
  { st = open_state ~recovering:false ?config backend ~name; db_name = name }

(* --- baseline paths --- *)

let record_serialize_cost = 350

let wal_append b pairs =
  let module Sched = Msnap_sim.Sched in
  List.iter
    (fun (k, v) ->
      let len = wal_record_header + String.length k + String.length v in
      (* Serializing the record is userspace "Log" work; the write and the
         fsync are kernel time (the Table 1 split). *)
      Sched.with_bucket Probe.Bucket.log (fun () -> Sched.cpu record_serialize_cost);
      (* The simulated record carries no payload; reference one shared
         zero buffer instead of allocating per append. *)
      if Bytes.length b.wal_zeros < len then b.wal_zeros <- Bytes.make len '\000';
      Sched.with_bucket Probe.Bucket.write (fun () ->
          Metrics.timed Probe.db_write (fun () ->
              Fs.write_sub b.fs b.wal ~off:b.wal_size b.wal_zeros ~pos:0 ~len));
      b.wal_size <- b.wal_size + len)
    pairs;
  Msnap_sim.Sched.with_bucket Probe.Bucket.fsync (fun () ->
      Metrics.timed Probe.db_fsync (fun () -> Fs.fdatasync b.fs b.wal))

let maybe_flush b =
  if Skiplist.approximate_bytes b.memtable >= b.flush_bytes then begin
    b.n_flushes <- b.n_flushes + 1;
    Metrics.incr Probe.db_memtable_flush;
    let pairs = ref [] in
    (* Include tombstones: walk raw entries via iter (live) is not
       enough, so decode from the tagged values. *)
    Skiplist.iter b.memtable (fun k tagged ->
        let v = if tagged = enc_tombstone then None else dec tagged in
        pairs := (k, v) :: !pairs);
    Lsm.add_run b.lsm (List.rev !pairs);
    Skiplist.clear b.memtable;
    Fs.truncate b.fs b.wal 0;
    Metrics.timed Probe.db_fsync (fun () -> Fs.fdatasync b.fs b.wal);
    b.wal_size <- 0
  end

(* Write-group commit: enqueue; the first arrival leads, draining the
   queue with one WAL append + fsync per round. *)
let rec wg_drain b =
  match b.wg_queue with
  | [] -> b.wg_leader_active <- false
  | batch ->
    b.wg_queue <- [];
    let batch = List.rev batch in
    let records = List.concat_map (fun (pairs, _) -> pairs) batch in
    Sync.Mutex.with_lock b.lock (fun () ->
        wal_append b records;
        List.iter
          (fun (k, v) -> Skiplist.insert b.memtable ~key:k ~value:v)
          records;
        maybe_flush b);
    List.iter (fun (_, iv) -> Sync.Ivar.fill iv ()) batch;
    wg_drain b

let baseline_put_tagged b tagged_pairs =
  let iv = Sync.Ivar.create () in
  b.wg_queue <- (tagged_pairs, iv) :: b.wg_queue;
  if not b.wg_leader_active then begin
    b.wg_leader_active <- true;
    wg_drain b
  end;
  Sync.Ivar.read iv

let baseline_put_batch b pairs =
  baseline_put_tagged b (List.map (fun (k, v) -> (k, enc_value v)) pairs)

let baseline_delete b key = baseline_put_tagged b [ (key, enc_tombstone) ]

let baseline_get b key =
  match Skiplist.find b.memtable key with
  | Some tagged -> if tagged = enc_tombstone then None else dec tagged
  | None -> (
    match Lsm.get b.lsm key with
    | None -> None
    | Some None -> None
    | Some (Some v) -> Some v)

let baseline_seek b key ~n =
  (* Merge the MemTable window with the LSM window, MemTable winning. *)
  let tbl = Hashtbl.create 64 in
  let taken = ref 0 in
  Skiplist.iter_from b.memtable key (fun k tagged ->
      if !taken < 2 * n then begin
        Hashtbl.replace tbl k (if tagged = enc_tombstone then None else dec tagged);
        incr taken;
        true
      end
      else false);
  List.iter
    (fun (k, v) -> if not (Hashtbl.mem tbl k) then Hashtbl.add tbl k (Some v))
    (Lsm.collect_from b.lsm key ~n:(2 * n));
  Hashtbl.fold
    (fun k v acc -> match v with Some v -> (k, v) :: acc | None -> acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.filteri (fun i _ -> i < n)

(* --- public API --- *)

let put t ~key ~value =
  match t.st with
  | B b -> baseline_put_batch b [ (key, value) ]
  | R r -> Pskiplist.insert r.ps ~key ~value

let put_batch t pairs =
  match t.st with
  | B b -> baseline_put_batch b pairs
  | R r -> Pskiplist.insert_batch r.ps pairs

let get t key =
  match t.st with
  | B b -> baseline_get b key
  | R r -> Pskiplist.find r.ps key

let delete t key =
  match t.st with
  | B b -> baseline_delete b key
  | R r -> ignore (Pskiplist.delete r.ps key)

let seek t key ~n =
  match t.st with
  | B b -> baseline_seek b key ~n
  | R r ->
    let acc = ref [] in
    let taken = ref 0 in
    Pskiplist.iter_from r.ps key (fun k v ->
        if !taken < n then begin
          acc := (k, v) :: !acc;
          incr taken;
          true
        end
        else false);
    List.rev !acc

let count t =
  match t.st with
  | B b ->
    (* Test-only: merge everything (small datasets). *)
    let tbl = Hashtbl.create 1024 in
    (match b.lsm with
    | lsm ->
      List.iter
        (fun (k, v) -> Hashtbl.replace tbl k (Some v))
        (Lsm.collect_from lsm "" ~n:max_int));
    Skiplist.iter b.memtable (fun k tagged ->
        Hashtbl.replace tbl k (if tagged = enc_tombstone then None else dec tagged));
    Hashtbl.fold (fun _ v acc -> if v = None then acc else acc + 1) tbl 0
  | R r -> Pskiplist.count r.ps

let backend_label t =
  match t.st with B _ -> "wal+lsm" | R r -> r.plabel

let flushes t = match t.st with B b -> b.n_flushes | R _ -> 0
let compactions t = match t.st with B b -> Lsm.compactions b.lsm | R _ -> 0

(* --- crash recovery --- *)

type recovered = { db : t; teardown : unit -> unit }

(* The full recovered state, sorted by key — what a history step records. *)
let dump db = seek db "" ~n:max_int

let recoverable ?(config = default_config) ~name () =
  (module struct
    type t = recovered

    let label = "rocks"

    (* Rebuild the whole machine from the raw post-crash device: mount
       the object store, boot a fresh MemSnap kernel over it, remap the
       region and recompute the skip pointers from the persisted list.
       The baseline would replay its WAL; recovery is only modelled for
       the region-backed design, which is what the paper's crash
       experiments exercise. *)
    let recover dev =
      let phys = Phys.create () in
      let aspace = Aspace.create phys in
      let store =
        try Store.mount dev
        with Store.Corrupt msg ->
          Phys.dispose phys;
          raise (Recoverable.Unmountable msg)
      in
      let k = Msnap.init ~store in
      Msnap.attach k aspace;
      let db =
        { st = open_state ~recovering:true ~config (Memsnap k) ~name;
          db_name = name }
      in
      { db; teardown = (fun () -> Phys.dispose phys) }

    let check r history =
      Recoverable.check_state ~label history (dump r.db)

    let dispose r = r.teardown ()
  end : Msnap_faults.Recoverable.S with type t = recovered)
