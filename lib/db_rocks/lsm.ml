module Fs = Msnap_fs.Fs
module Metrics = Msnap_sim.Metrics
module Probe = Msnap_sim.Probe

let l0_trigger = 4

type t = {
  fs : Fs.t;
  lsm_name : string;
  mutable l0 : Sstable.t list; (* newest first *)
  mutable l1 : Sstable.t option;
  mutable next_file : int;
  mutable n_compactions : int;
}

let create fs ~name =
  { fs; lsm_name = name; l0 = []; l1 = None; next_file = 0; n_compactions = 0 }

let fresh_name t =
  let n = Printf.sprintf "%s-%06d.sst" t.lsm_name t.next_file in
  t.next_file <- t.next_file + 1;
  n

(* Merge runs (given newest first) into one sorted list; newer entries
   shadow older ones; tombstones are dropped from the result when
   [drop_tombstones]. *)
let merge_runs ~drop_tombstones runs =
  let tbl = Hashtbl.create 1024 in
  (* Apply oldest first so newer overwrite. *)
  List.iter
    (fun run -> Sstable.iter run (fun k v -> Hashtbl.replace tbl k v))
    (List.rev runs);
  Hashtbl.fold
    (fun k v acc ->
      match v with
      | None when drop_tombstones -> acc
      | v -> (k, v) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let compact t =
  t.n_compactions <- t.n_compactions + 1;
  Metrics.incr Probe.db_compaction;
  let runs = t.l0 @ Option.to_list t.l1 in
  let merged = merge_runs ~drop_tombstones:true runs in
  let olds = runs in
  t.l0 <- [];
  t.l1 <-
    (if merged = [] then None
     else Some (Sstable.build t.fs ~name:(fresh_name t) merged));
  List.iter Sstable.remove olds

let add_run t pairs =
  if pairs <> [] then begin
    let run = Sstable.build t.fs ~name:(fresh_name t) pairs in
    t.l0 <- run :: t.l0;
    if List.length t.l0 >= l0_trigger then compact t
  end

let get t key =
  let rec probe = function
    | [] -> (
      match t.l1 with
      | None -> None
      | Some run -> Sstable.get run key)
    | run :: rest -> (
      match Sstable.get run key with
      | Some v -> Some v
      | None -> probe rest)
  in
  probe t.l0

let collect_from t key ~n =
  let runs = t.l0 @ Option.to_list t.l1 in
  (* Collect extra candidates per run so newest-first shadowing and
     tombstones cannot starve the window. *)
  let per_run = if n > max_int / 2 then max_int else n * 2 in
  (* Precedence: a key's value comes from the newest run containing it. *)
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun run ->
      let taken = ref 0 in
      try
        Sstable.iter run (fun k v ->
            if k >= key && !taken < per_run then begin
              if not (Hashtbl.mem tbl k) then Hashtbl.add tbl k v;
              incr taken
            end
            else if !taken >= per_run then raise Exit)
      with Exit -> ())
    runs;
  Hashtbl.fold
    (fun k v acc -> match v with None -> acc | Some v -> (k, v) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.filteri (fun i _ -> i < n)

let l0_runs t = List.length t.l0
let compactions t = t.n_compactions

let total_bytes t =
  List.fold_left (fun a r -> a + Sstable.bytes r) 0 (t.l0 @ Option.to_list t.l1)
