(** The key-value store: RocksDB-style API over three persistence designs.

    - {b Baseline} (§2's WAL-and-checkpoint): every Put appends to a WAL
      file and fsyncs, then inserts into a volatile skip-list MemTable;
      full MemTables flush to SSTables feeding a compacting LSM tree.
    - {b MemSnap} (§7.2): the MemTable is a {!Pskiplist} in a persistent
      region; Put inserts and issues one [msnap_persist]. No WAL, no
      SSTables, no compaction.
    - {b Aurora}: the same persistent skip list, persisted by a
      synchronous Aurora region checkpoint per write — the Table 9/10
      comparison point.

    [put_batch] is the WriteCommitted transaction unit: all writes land in
    the MemTable and become durable atomically. *)

type t

type backend =
  | Baseline of Msnap_fs.Fs.t
  | Memsnap of Msnap_core.Msnap.t
  | Aurora of Msnap_aurora.Aurora.Kernel.t

type config = {
  memtable_flush_bytes : int;  (** Baseline: flush threshold. *)
  region_pages : int;  (** Memsnap/Aurora: MemTable region capacity. *)
}

val default_config : config

val open_db : ?config:config -> backend -> name:string -> t

type recovered = { db : t; teardown : unit -> unit }
(** A database rebuilt from a post-crash device, with the host-side
    teardown for the machine [recover] booted around it. *)

val recoverable :
  ?config:config -> name:string -> unit ->
  (module Msnap_faults.Recoverable.S with type t = recovered)
(** The crash-recovery contract for the MemSnap-backed design: [recover]
    mounts the object store on the raw device, boots a fresh kernel,
    remaps the region and rebuilds the skip pointers from the persisted
    list ({!Msnap_faults.Recoverable.Unmountable} when no valid
    superblock survives). [check] compares the full key-value contents
    against the history's candidate steps. The baseline would replay its
    WAL; recovery is only modelled for the region-backed design, which
    is what the paper's crash experiments exercise. *)

val put : t -> key:string -> value:string -> unit
val put_batch : t -> (string * string) list -> unit
val get : t -> string -> string option
val delete : t -> string -> unit
val seek : t -> string -> n:int -> (string * string) list

val count : t -> int
val backend_label : t -> string
val flushes : t -> int
val compactions : t -> int
