module Fs = Msnap_fs.Fs
module Pool = Msnap_util.Pool

let index_stride = 64

(* Record: u16 klen | u16 vlen (0xFFFF = tombstone) | key | value *)
let tombstone_tag = 0xFFFF

type t = {
  fs : Fs.t;
  file : Fs.file;
  sst_name : string;
  sst_count : int;
  sst_bytes : int;
  sst_min : string;
  sst_max : string;
  (* Sparse index: (first key of segment, offset, byte length). *)
  index : (string * int * int) array;
}

let encode_record buf key value =
  let klen = String.length key in
  Buffer.add_uint16_le buf klen;
  (match value with
  | None -> Buffer.add_uint16_le buf tombstone_tag
  | Some v -> Buffer.add_uint16_le buf (String.length v));
  Buffer.add_string buf key;
  match value with None -> () | Some v -> Buffer.add_string buf v

let build fs ~name pairs =
  assert (pairs <> []);
  let segments = ref [] in
  let buf = Buffer.create 65536 in
  let seg_start = ref 0 in
  let seg_key = ref "" in
  let in_seg = ref 0 in
  let flush_segment () =
    if !in_seg > 0 then begin
      segments := (!seg_key, !seg_start, Buffer.length buf - !seg_start) :: !segments;
      seg_start := Buffer.length buf;
      in_seg := 0
    end
  in
  List.iter
    (fun (k, v) ->
      if !in_seg = 0 then seg_key := k;
      encode_record buf k v;
      incr in_seg;
      if !in_seg >= index_stride then flush_segment ())
    pairs;
  flush_segment ();
  let data = Buffer.to_bytes buf in
  let file = Fs.open_file fs name in
  Fs.write fs file ~off:0 data;
  Fs.fsync fs file;
  let min_key = fst (List.hd pairs) in
  let max_key = fst (List.nth pairs (List.length pairs - 1)) in
  {
    fs;
    file;
    sst_name = name;
    sst_count = List.length pairs;
    sst_bytes = Bytes.length data;
    sst_min = min_key;
    sst_max = max_key;
    index = Array.of_list (List.rev !segments);
  }

let name t = t.sst_name
let count t = t.sst_count
let bytes t = t.sst_bytes
let min_key t = t.sst_min
let max_key t = t.sst_max

let decode_segment seg =
  let pos = ref 0 in
  let out = ref [] in
  while !pos < Bytes.length seg do
    let klen = Bytes.get_uint16_le seg !pos in
    let vtag = Bytes.get_uint16_le seg (!pos + 2) in
    let key = Bytes.sub_string seg (!pos + 4) klen in
    if vtag = tombstone_tag then begin
      out := (key, None) :: !out;
      pos := !pos + 4 + klen
    end
    else begin
      let value = Bytes.sub_string seg (!pos + 4 + klen) vtag in
      out := (key, Some value) :: !out;
      pos := !pos + 4 + klen + vtag
    end
  done;
  List.rev !out

(* Last segment whose first key is <= key. *)
let segment_for t key =
  let n = Array.length t.index in
  let rec go lo hi =
    if lo >= hi then lo - 1
    else begin
      let mid = (lo + hi) / 2 in
      let k, _, _ = t.index.(mid) in
      if k <= key then go (mid + 1) hi else go lo mid
    end
  in
  let i = go 0 n in
  if i < 0 then None else Some t.index.(i)

let get t key =
  if key < t.sst_min || key > t.sst_max then None
  else
    match segment_for t key with
    | None -> None
    | Some (_, off, len) ->
      (* Pooled staging: the segment bytes only live until decoded. *)
      let seg = Pool.alloc len in
      Fun.protect
        ~finally:(fun () -> Pool.recycle seg)
        (fun () ->
          Fs.read_into t.fs t.file ~off seg ~pos:0 ~len;
          let rec find = function
            | [] -> None
            | (k, v) :: rest ->
              if k = key then Some v else if k > key then None else find rest
          in
          find (decode_segment seg))

let iter t f =
  Array.iter
    (fun (_, off, len) ->
      let seg = Pool.alloc len in
      Fun.protect
        ~finally:(fun () -> Pool.recycle seg)
        (fun () ->
          Fs.read_into t.fs t.file ~off seg ~pos:0 ~len;
          List.iter (fun (k, v) -> f k v) (decode_segment seg)))
    t.index

let remove t = Fs.remove t.fs t.sst_name
