(** Persistent skip list — the paper's §7.2 MemSnap MemTable.

    Each node occupies its own 4 KiB page of a persistent region
    (property ②: one data-structure node per OS page), holding the key,
    the value and the [next] link of the underlying singly linked list.
    Skip pointers are deliberately *volatile*: only the linked list needs
    crash consistency, and the index is recomputed from it at recovery —
    the optimization §7.2 describes.

    An insert dirties exactly two pages (the new node and its
    predecessor's [next] field); an in-place update dirties one. Each node
    carries a lock that the writer holds from the pointer update until the
    μCheckpoint commits, the paper's replacement for RocksDB's CAS
    (property ③).

    The structure is storage-agnostic: it talks to its region through
    {!region_ops}, so the same code runs over MemSnap (persist =
    [msnap_persist]) and Aurora (persist = region checkpoint). *)

type region_ops = {
  ro_write : off:int -> Bytes.t -> unit;
  ro_read_into : off:int -> Bytes.t -> pos:int -> len:int -> unit;
      (** Read into a caller-owned buffer — keys and values come back in
          a single copy (the buffer becomes the result string). *)
  ro_persist : unit -> unit;
      (** Make the calling thread's writes durable (one transaction). *)
  ro_pages : int;  (** Region capacity in pages. *)
}

type t

val create : ?seed:int -> region_ops -> t
(** Initialize a fresh list (writes and persists the head sentinel). *)

val recover : ?seed:int -> region_ops -> t
(** Rebuild from a persisted region: traverses the linked list and
    recomputes the skip-pointer index. *)

val insert : t -> key:string -> value:string -> unit
(** Insert or update, then persist — one μCheckpoint per call. *)

val insert_batch : t -> (string * string) list -> unit
(** WriteCommitted batch: apply all pairs, then persist once —
    the transaction's atomic unit. *)

val find : t -> string -> string option
val delete : t -> string -> bool

val iter_from : t -> string -> (string -> string -> bool) -> unit
val count : t -> int
val node_pages : t -> int
(** Pages consumed (monotonic bump allocation). *)

val max_pair_size : int
