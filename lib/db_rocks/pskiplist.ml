module Sched = Msnap_sim.Sched
module Sync = Msnap_sim.Sync
module Rng = Msnap_util.Rng

type region_ops = {
  ro_write : off:int -> Bytes.t -> unit;
  ro_read_into : off:int -> Bytes.t -> pos:int -> len:int -> unit;
  ro_persist : unit -> unit;
  ro_pages : int;
}

let page = 4096
let header = 16
let max_pair_size = page - header
let max_level = 12
let hop_cost = 25

(* Node page: u16 klen | u16 vlen | u32 next(id+1, 0 = nil) | u8 in_use |
   pad to 16 | key | value. *)

type vnode = {
  id : int;
  key : string;
  lock : Sync.Mutex.t;
  mutable nexts : vnode option array;
}

type t = {
  ops : region_ops;
  head : vnode;
  rng : Rng.t;
  mutable level : int;
  mutable count : int;
  mutable next_id : int;
}

let node_off id = id * page

let mk_vnode id key lvl =
  { id; key; lock = Sync.Mutex.create (); nexts = Array.make lvl None }

let random_level t =
  let rec go l = if l < max_level && Rng.int t.rng 4 = 0 then go (l + 1) else l in
  go 1

(* Encode/decode buffers are per-op, not per-list: region ops charge
   [Sched.cpu] (and Aurora writes can park for a checkpoint), so a
   fiber may yield inside one with the buffer still lent out — a shared
   scratch would be clobbered by the next fiber's op. Each buffer is
   sized exactly (the simulated transfer length must not change); only
   the 7 header pad bytes need zeroing, the blits cover the rest. *)
let write_node t ~id ~key ~value ~next_id =
  let klen = String.length key and vlen = String.length value in
  if klen + vlen > max_pair_size then invalid_arg "Pskiplist: pair too large";
  let b = Bytes.create (header + klen + vlen) in
  Bytes.set_uint16_le b 0 klen;
  Bytes.set_uint16_le b 2 vlen;
  Bytes.set_int32_le b 4 (Int32.of_int (next_id + 1));
  Bytes.set_uint8 b 8 1;
  Bytes.fill b 9 (header - 9) '\000';
  Bytes.blit_string key 0 b header klen;
  Bytes.blit_string value 0 b (header + klen) vlen;
  t.ops.ro_write ~off:(node_off id) b

let write_next_field t ~id ~next_id =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int (next_id + 1));
  t.ops.ro_write ~off:(node_off id + 4) b

let read_node_header t id =
  let b = Bytes.create header in
  t.ops.ro_read_into ~off:(node_off id) b ~pos:0 ~len:header;
  let klen = Bytes.get_uint16_le b 0 in
  let vlen = Bytes.get_uint16_le b 2 in
  let next = Int32.to_int (Bytes.get_int32_le b 4) - 1 in
  let in_use = Bytes.get_uint8 b 8 = 1 in
  (klen, vlen, next, in_use)

(* Single-copy string reads: the region copies straight into the
   result buffer, which becomes the string (the seed's ro_read +
   [Bytes.to_string] copied twice and allocated twice). *)
let read_string t ~off ~len =
  let b = Bytes.create len in
  t.ops.ro_read_into ~off b ~pos:0 ~len;
  Bytes.unsafe_to_string b

let read_key t id klen = read_string t ~off:(node_off id + header) ~len:klen

let read_value t id =
  let klen, vlen, _, _ = read_node_header t id in
  read_string t ~off:(node_off id + header + klen) ~len:vlen

let create ?(seed = 0x5C1B) ops =
  let t =
    { ops; head = mk_vnode 0 "" max_level; rng = Rng.create seed; level = 1;
      count = 0; next_id = 1 }
  in
  write_node t ~id:0 ~key:"" ~value:"" ~next_id:(-1);
  t.ops.ro_persist ();
  t

(* Predecessors at every level (volatile index walk). *)
let find_path t key =
  let update = Array.make max_level t.head in
  let x = ref t.head in
  for lvl = t.level - 1 downto 0 do
    let continue_ = ref true in
    while !continue_ do
      Sched.cpu hop_cost;
      match !x.nexts.(lvl) with
      | Some n when n.key < key -> x := n
      | Some _ | None -> continue_ := false
    done;
    update.(lvl) <- !x
  done;
  update

(* Link [node] into the volatile index below [lvl] along [update]. *)
let link_volatile t node lvl update =
  if lvl > t.level then t.level <- lvl;
  for i = 0 to lvl - 1 do
    node.nexts.(i) <- update.(i).nexts.(i);
    update.(i).nexts.(i) <- Some node
  done

(* Validate the path still holds after taking the predecessor's lock
   (another insert may have slipped in between). *)
let path_valid update key =
  let prev = update.(0) in
  match prev.nexts.(0) with
  | Some n -> n.key >= key
  | None -> true

(* Per-node locks are taken in ascending key order across a batch (the
   batch is sorted), which makes the discipline deadlock-free; [held]
   records locks already owned so a shared predecessor is not re-locked. *)
let lock_if_new held (m : Sync.Mutex.t) =
  if not (List.memq m !held) then begin
    Sync.Mutex.lock m;
    held := m :: !held
  end

(* Apply one write, accumulating into [held] the locks that must stay
   taken until the μCheckpoint commits — the paper's per-node locking
   discipline (property ③). *)
let apply t ~held ~key ~value =
  let rec attempt () =
    let update = find_path t key in
    let prev = update.(0) in
    match prev.nexts.(0) with
    | Some n when n.key = key -> (
      (* In-place update: one dirty page. Re-validate reachability after
         taking the lock — a racing delete may have unlinked the node. *)
      lock_if_new held n.lock;
      let update' = find_path t key in
      match update'.(0).nexts.(0) with
      | Some m when m == n ->
        let _, _, next, _ = read_node_header t n.id in
        write_node t ~id:n.id ~key ~value ~next_id:next
      | Some _ | None -> attempt ())
    | _ ->
      lock_if_new held prev.lock;
      if not (path_valid update key) then attempt ()
      else begin
        if t.next_id >= t.ops.ro_pages then
          failwith "Pskiplist: region full";
        let id = t.next_id in
        t.next_id <- id + 1;
        let lvl = random_level t in
        let node = mk_vnode id key lvl in
        lock_if_new held node.lock;
        let next_id =
          match prev.nexts.(0) with Some n -> n.id | None -> -1
        in
        (* New node first, then the predecessor's next field: exactly the
           two pages this transaction dirties. *)
        write_node t ~id ~key ~value ~next_id;
        write_next_field t ~id:prev.id ~next_id:id;
        link_volatile t node lvl update;
        t.count <- t.count + 1
      end
  in
  attempt ()

let insert_batch t pairs =
  (* Ascending key order gives a global lock order (see [apply]); the
     last write wins for duplicate keys within a batch. *)
  let module M = Map.Make (String) in
  let merged = List.fold_left (fun m (k, v) -> M.add k v m) M.empty pairs in
  let held = ref [] in
  M.iter (fun key value -> apply t ~held ~key ~value) merged;
  t.ops.ro_persist ();
  List.iter Sync.Mutex.unlock !held

let insert t ~key ~value = insert_batch t [ (key, value) ]

let find t key =
  let update = find_path t key in
  match update.(0).nexts.(0) with
  | Some n when n.key = key -> Some (read_value t n.id)
  | Some _ | None -> None

let delete t key =
  let rec attempt () =
    let update = find_path t key in
    let prev = update.(0) in
    match prev.nexts.(0) with
    | Some n when n.key = key ->
      Sync.Mutex.lock prev.lock;
      if not (match prev.nexts.(0) with
              | Some n' -> n' == n
              | None -> false)
      then begin
        Sync.Mutex.unlock prev.lock;
        attempt ()
      end
      else begin
        let next_id = match n.nexts.(0) with Some s -> s.id | None -> -1 in
        write_next_field t ~id:prev.id ~next_id;
        (* Unlink at every level of the volatile index. *)
        for i = 0 to t.level - 1 do
          match update.(i).nexts.(i) with
          | Some m when m == n -> update.(i).nexts.(i) <- n.nexts.(i)
          | Some _ | None -> ()
        done;
        t.count <- t.count - 1;
        t.ops.ro_persist ();
        Sync.Mutex.unlock prev.lock;
        true
      end
    | Some _ | None -> false
  in
  attempt ()

let iter_from t key f =
  let update = find_path t key in
  let rec visit = function
    | None -> ()
    | Some n ->
      Sched.cpu hop_cost;
      if f n.key (read_value t n.id) then visit n.nexts.(0)
  in
  visit update.(0).nexts.(0)

let count t = t.count
let node_pages t = t.next_id

(* Rebuild the volatile index by walking the persisted linked list — the
   §7.2 recovery path ("traverses the linked list nodes to recompute skip
   pointers"). *)
let recover ?(seed = 0x5C1B) ops =
  let t =
    { ops; head = mk_vnode 0 "" max_level; rng = Rng.create seed; level = 1;
      count = 0; next_id = 1 }
  in
  let tails = Array.make max_level t.head in
  let rec walk id =
    if id >= 0 then begin
      if id >= t.next_id then t.next_id <- id + 1;
      let klen, _, next, in_use = read_node_header t id in
      if in_use && id <> 0 then begin
        let key = read_key t id klen in
        let lvl = random_level t in
        if lvl > t.level then t.level <- lvl;
        let node = mk_vnode id key lvl in
        for i = 0 to lvl - 1 do
          tails.(i).nexts.(i) <- Some node;
          tails.(i) <- node
        done;
        t.count <- t.count + 1
      end;
      walk next
    end
  in
  let _, _, first, _ = read_node_header t 0 in
  walk first;
  t
