module Fs = Msnap_fs.Fs
module Metrics = Msnap_sim.Metrics
module Probe = Msnap_sim.Probe
module Size = Msnap_util.Size
module Pool = Msnap_util.Pool

let frame_header = 24 (* SQLite WAL frame header bytes *)

module Slice = Msnap_util.Slice
module Wire = Msnap_util.Wire

(* Frame header layout: u32 magic, u32 pgno, u32 flags (bit 0 = commit,
   set on a transaction's last frame), u64 chain checksum at offset 12
   (over the payload chained from the previous frame's checksum, then
   the header's first 12 bytes), 4 spare zero bytes. The chain makes a
   frame valid only when every frame before it is, so recovery finds the
   longest intact prefix and applies it up to the last commit flag —
   transaction atomicity over a torn log tail. *)
let wal_magic = 0x4C57534D (* "MSWL" *)
let wal_cksum_seed = 0x57414C00

type t = {
  fs : Fs.t;
  db_file : Fs.file;
  wal_file : Fs.file;
  (* The WAL index: latest logged image per page. Doubles as the "WAL as
     cache" role the paper describes. *)
  wal_frames : (int, Bytes.t) Hashtbl.t;
  mutable wal_size : int;
  mutable wal_cksum : int; (* chain state after the last appended frame *)
  hdr : Bytes.t; (* staging for one frame header; consumed per append *)
  threshold : int;
  mutable ckpts : int;
}

let create fs ~db_name ?(checkpoint_threshold = Size.mib 4) () =
  {
    fs;
    db_file = Fs.open_file fs db_name;
    wal_file = Fs.open_file fs (db_name ^ "-wal");
    wal_frames = Hashtbl.create 1024;
    wal_size = 0;
    wal_cksum = wal_cksum_seed;
    hdr = Bytes.create frame_header;
    threshold = checkpoint_threshold;
    ckpts = 0;
  }

(* The chain checksum a frame for [pgno]/[flags]/[payload] must carry
   after a predecessor with chain state [prev]. Also fills [t.hdr]. *)
let seal_frame t ~pgno ~flags payload =
  Bytes.fill t.hdr 0 frame_header '\000';
  Wire.set_u32 t.hdr 0 wal_magic;
  Wire.set_u32 t.hdr 4 pgno;
  Wire.set_u32 t.hdr 8 flags;
  let ck =
    Wire.checksum t.hdr ~pos:0 ~len:12
      ~init:
        (Wire.checksum payload ~pos:0 ~len:(Bytes.length payload)
           ~init:t.wal_cksum)
  in
  Wire.set_u64 t.hdr 12 ck;
  t.wal_cksum <- ck

module Sched = Msnap_sim.Sched

(* Pooled page copy (the caller — the pager cache — takes ownership). *)
let copy_page b =
  let c = Pool.alloc Page.size in
  Bytes.blit b 0 c 0 Page.size;
  c

let read_page t pgno =
  match Hashtbl.find_opt t.wal_frames pgno with
  | Some b -> Some (copy_page b)
  | None ->
    let off = (pgno - 1) * Page.size in
    if off + Page.size > Fs.size t.fs t.db_file then None
    else
      Some
        (Sched.with_bucket Probe.Bucket.read (fun () ->
             Metrics.timed Probe.db_read (fun () ->
                 let b = Pool.alloc Page.size in
                 Fs.read_into t.fs t.db_file ~off b ~pos:0 ~len:Page.size;
                 b)))

let checkpoint t =
  t.ckpts <- t.ckpts + 1;
  (* Copy every logged page into the database file, in page order —
     random IO from the file system's point of view. *)
  let pages =
    Hashtbl.fold (fun pgno b acc -> (pgno, b) :: acc) t.wal_frames []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (pgno, b) ->
      Sched.with_bucket Probe.Bucket.write (fun () ->
          Metrics.timed Probe.db_write (fun () ->
              Fs.write t.fs t.db_file ~off:((pgno - 1) * Page.size) b)))
    pages;
  Sched.with_bucket Probe.Bucket.fsync (fun () ->
      Metrics.timed Probe.db_fsync (fun () -> Fs.fsync t.fs t.db_file);
      Metrics.timed Probe.db_fsync (fun () -> Fs.fsync t.fs t.wal_file));
  Fs.truncate t.fs t.wal_file 0;
  Hashtbl.iter (fun _ b -> Pool.recycle b) t.wal_frames;
  Hashtbl.reset t.wal_frames;
  t.wal_size <- 0;
  t.wal_cksum <- wal_cksum_seed

let commit t pages =
  (* Append one frame per page, then fsync the WAL: the transaction's
     durability point. The last frame carries the commit flag. *)
  let nframes = List.length pages in
  List.iteri
    (fun i (pgno, b) ->
      let flags = if i = nframes - 1 then 1 else 0 in
      seal_frame t ~pgno ~flags b;
      Sched.with_bucket Probe.Bucket.write (fun () ->
          Metrics.timed Probe.db_write (fun () ->
              (* [Fs.writev] consumes the slices before returning, so the
                 header staging buffer is reusable on the next frame. *)
              Fs.writev t.fs t.wal_file ~off:t.wal_size
                [ Slice.of_bytes t.hdr; Slice.of_bytes b ]));
      t.wal_size <- t.wal_size + frame_header + Page.size;
      (* A newer image supersedes the logged frame; its buffer has no
         other holders ([read_page] hands out copies). *)
      (match Hashtbl.find_opt t.wal_frames pgno with
      | Some old -> Pool.recycle old
      | None -> ());
      Hashtbl.replace t.wal_frames pgno (copy_page b))
    pages;
  Sched.with_bucket Probe.Bucket.fsync (fun () ->
      Metrics.timed Probe.db_fsync (fun () -> Fs.fsync t.fs t.wal_file));
  if t.wal_size >= t.threshold then checkpoint t

let backend t =
  {
    Pager.b_label = "wal+checkpoint";
    b_read_page = read_page t;
    b_commit = commit t;
  }

let checkpoints_done t = t.ckpts
let wal_bytes t = t.wal_size

(* Crash recovery: rebuild the WAL index from the recovered log file.
   Frames are applied in log order while the checksum chain holds, but
   only up to the last commit-flagged frame — a transaction whose tail
   frames (or commit frame) are torn contributes nothing. *)
let recover fs ~db_name ?checkpoint_threshold () =
  let t = create fs ~db_name ?checkpoint_threshold () in
  let frame = frame_header + Page.size in
  let len = Fs.size fs t.wal_file in
  let buf = Bytes.create frame in
  let pos = ref 0 in
  let ck = ref wal_cksum_seed in
  let valid_end = ref 0 in
  let valid_ck = ref wal_cksum_seed in
  (* Frames of the transaction being parsed, promoted at commit. *)
  let pending = ref [] in
  let promote () =
    List.iter
      (fun (pgno, b) ->
        (match Hashtbl.find_opt t.wal_frames pgno with
        | Some old -> Pool.recycle old
        | None -> ());
        Hashtbl.replace t.wal_frames pgno b)
      (List.rev !pending);
    pending := []
  in
  (try
     while !pos + frame <= len do
       Fs.read_into fs t.wal_file ~off:!pos buf ~pos:0 ~len:frame;
       if Wire.get_u32 buf 0 <> wal_magic then raise Exit;
       let pgno = Wire.get_u32 buf 4 in
       let flags = Wire.get_u32 buf 8 in
       let expect =
         (* The checksum field itself (bytes [12, 20)) is outside both
            sums. *)
         Wire.checksum buf ~pos:0 ~len:12
           ~init:(Wire.checksum buf ~pos:frame_header ~len:Page.size ~init:!ck)
       in
       if Wire.get_u64 buf 12 <> expect then raise Exit;
       ck := expect;
       let page = Pool.alloc Page.size in
       Bytes.blit buf frame_header page 0 Page.size;
       pending := (pgno, page) :: !pending;
       pos := !pos + frame;
       if flags land 1 <> 0 then begin
         promote ();
         valid_end := !pos;
         valid_ck := !ck
       end
     done
   with Exit -> ());
  List.iter (fun (_, b) -> Pool.recycle b) !pending;
  t.wal_size <- !valid_end;
  t.wal_cksum <- !valid_ck;
  t

(* Host-side teardown: frames still logged but not yet checkpointed go
   back to the pool (the WAL file's blocks belong to the Fs and are
   returned by [Fs.dispose]). *)
let dispose t =
  Hashtbl.iter (fun _ b -> Pool.recycle b) t.wal_frames;
  Hashtbl.reset t.wal_frames;
  t.wal_size <- 0
