module Fs = Msnap_fs.Fs
module Metrics = Msnap_sim.Metrics
module Probe = Msnap_sim.Probe
module Size = Msnap_util.Size
module Pool = Msnap_util.Pool

let frame_header = 24 (* SQLite WAL frame header bytes *)

module Slice = Msnap_util.Slice

(* The simulated frame header carries no payload (all zeros), so every
   append shares this one read-only buffer instead of staging a fresh
   [frame_header + Page.size] copy per frame. *)
let zero_header = Slice.of_string (String.make frame_header '\000')

type t = {
  fs : Fs.t;
  db_file : Fs.file;
  wal_file : Fs.file;
  (* The WAL index: latest logged image per page. Doubles as the "WAL as
     cache" role the paper describes. *)
  wal_frames : (int, Bytes.t) Hashtbl.t;
  mutable wal_size : int;
  threshold : int;
  mutable ckpts : int;
}

let create fs ~db_name ?(checkpoint_threshold = Size.mib 4) () =
  {
    fs;
    db_file = Fs.open_file fs db_name;
    wal_file = Fs.open_file fs (db_name ^ "-wal");
    wal_frames = Hashtbl.create 1024;
    wal_size = 0;
    threshold = checkpoint_threshold;
    ckpts = 0;
  }

module Sched = Msnap_sim.Sched

(* Pooled page copy (the caller — the pager cache — takes ownership). *)
let copy_page b =
  let c = Pool.alloc Page.size in
  Bytes.blit b 0 c 0 Page.size;
  c

let read_page t pgno =
  match Hashtbl.find_opt t.wal_frames pgno with
  | Some b -> Some (copy_page b)
  | None ->
    let off = (pgno - 1) * Page.size in
    if off + Page.size > Fs.size t.fs t.db_file then None
    else
      Some
        (Sched.with_bucket Probe.Bucket.read (fun () ->
             Metrics.timed Probe.db_read (fun () ->
                 let b = Pool.alloc Page.size in
                 Fs.read_into t.fs t.db_file ~off b ~pos:0 ~len:Page.size;
                 b)))

let checkpoint t =
  t.ckpts <- t.ckpts + 1;
  (* Copy every logged page into the database file, in page order —
     random IO from the file system's point of view. *)
  let pages =
    Hashtbl.fold (fun pgno b acc -> (pgno, b) :: acc) t.wal_frames []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (pgno, b) ->
      Sched.with_bucket Probe.Bucket.write (fun () ->
          Metrics.timed Probe.db_write (fun () ->
              Fs.write t.fs t.db_file ~off:((pgno - 1) * Page.size) b)))
    pages;
  Sched.with_bucket Probe.Bucket.fsync (fun () ->
      Metrics.timed Probe.db_fsync (fun () -> Fs.fsync t.fs t.db_file);
      Metrics.timed Probe.db_fsync (fun () -> Fs.fsync t.fs t.wal_file));
  Fs.truncate t.fs t.wal_file 0;
  Hashtbl.iter (fun _ b -> Pool.recycle b) t.wal_frames;
  Hashtbl.reset t.wal_frames;
  t.wal_size <- 0

let commit t pages =
  (* Append one frame per page, then fsync the WAL: the transaction's
     durability point. *)
  List.iter
    (fun (pgno, b) ->
      Sched.with_bucket Probe.Bucket.write (fun () ->
          Metrics.timed Probe.db_write (fun () ->
              Fs.writev t.fs t.wal_file ~off:t.wal_size
                [ zero_header; Slice.of_bytes b ]));
      t.wal_size <- t.wal_size + frame_header + Page.size;
      (* A newer image supersedes the logged frame; its buffer has no
         other holders ([read_page] hands out copies). *)
      (match Hashtbl.find_opt t.wal_frames pgno with
      | Some old -> Pool.recycle old
      | None -> ());
      Hashtbl.replace t.wal_frames pgno (copy_page b))
    pages;
  Sched.with_bucket Probe.Bucket.fsync (fun () ->
      Metrics.timed Probe.db_fsync (fun () -> Fs.fsync t.fs t.wal_file));
  if t.wal_size >= t.threshold then checkpoint t

let backend t =
  {
    Pager.b_label = "wal+checkpoint";
    b_read_page = read_page t;
    b_commit = commit t;
  }

let checkpoints_done t = t.ckpts
let wal_bytes t = t.wal_size

(* Host-side teardown: frames still logged but not yet checkpointed go
   back to the pool (the WAL file's blocks belong to the Fs and are
   returned by [Fs.dispose]). *)
let dispose t =
  Hashtbl.iter (fun _ b -> Pool.recycle b) t.wal_frames;
  Hashtbl.reset t.wal_frames;
  t.wal_size <- 0
