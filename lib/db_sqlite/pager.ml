module Sched = Msnap_sim.Sched
module Sync = Msnap_sim.Sync
module Pool = Msnap_util.Pool

type backend = {
  b_label : string;
  b_read_page : int -> Bytes.t option;
  b_commit : (int * Bytes.t) list -> unit;
}

type txn = {
  dirty : (int, unit) Hashtbl.t;
  undo : (int, Bytes.t) Hashtbl.t; (* pre-images for rollback *)
  mutable new_pages : int list;
  hwm_at_begin : int;
}

type t = {
  backend : backend;
  cache : (int, Bytes.t) Hashtbl.t;
  mutable hwm : int; (* highest allocated page number *)
  mutable txn : txn option;
  write_lock : Sync.Mutex.t;
}

(* Userspace cost of a page-cache probe (hash + pin). *)
let cache_probe_cost = 120

let create backend =
  let t =
    { backend; cache = Hashtbl.create 1024; hwm = 1; txn = None;
      write_lock = Sync.Mutex.create () }
  in
  (* Page 1 always exists (database header / catalog). *)
  (match backend.b_read_page 1 with
  | Some b -> Hashtbl.replace t.cache 1 b
  | None -> Hashtbl.replace t.cache 1 (Pool.alloc_zeroed Page.size));
  t

let backend_label t = t.backend.b_label

let begin_write t =
  Sync.Mutex.lock t.write_lock;
  assert (t.txn = None);
  t.txn <-
    Some
      { dirty = Hashtbl.create 16; undo = Hashtbl.create 16; new_pages = [];
        hwm_at_begin = t.hwm }

let the_txn t =
  match t.txn with
  | Some txn -> txn
  | None -> invalid_arg "Pager: no open transaction"

let get_page t pgno =
  Sched.cpu cache_probe_cost;
  match Hashtbl.find_opt t.cache pgno with
  | Some b -> b
  | None ->
    let b =
      match t.backend.b_read_page pgno with
      | Some b -> b
      | None -> Pool.alloc_zeroed Page.size
    in
    Hashtbl.replace t.cache pgno b;
    if pgno > t.hwm then t.hwm <- pgno;
    b

let page_for_write t pgno =
  let txn = the_txn t in
  let b = get_page t pgno in
  if not (Hashtbl.mem txn.dirty pgno) then begin
    Hashtbl.replace txn.dirty pgno ();
    (* Pooled pre-image: private to the transaction, recycled when commit
       discards the undo log (rollback promotes it into the cache
       instead). *)
    let pre = Pool.alloc Page.size in
    Bytes.blit b 0 pre 0 Page.size;
    Hashtbl.replace txn.undo pgno pre
  end;
  b

let alloc_page t =
  let txn = the_txn t in
  t.hwm <- t.hwm + 1;
  let pgno = t.hwm in
  Hashtbl.replace t.cache pgno (Pool.alloc_zeroed Page.size);
  Hashtbl.replace txn.dirty pgno ();
  txn.new_pages <- pgno :: txn.new_pages;
  pgno

let commit t =
  let txn = the_txn t in
  let pages =
    Hashtbl.fold (fun pgno () acc -> (pgno, Hashtbl.find t.cache pgno) :: acc)
      txn.dirty []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  if pages <> [] then t.backend.b_commit pages;
  Hashtbl.iter (fun _ pre -> Pool.recycle pre) txn.undo;
  t.txn <- None;
  Sync.Mutex.unlock t.write_lock

let rollback t =
  let txn = the_txn t in
  Hashtbl.iter
    (fun pgno pre ->
      (* The promoted pre-image replaces the mutated cache buffer, which
         nothing else references — recycle it. *)
      (match Hashtbl.find_opt t.cache pgno with
      | Some cur when cur != pre -> Pool.recycle cur
      | _ -> ());
      Hashtbl.replace t.cache pgno pre)
    txn.undo;
  List.iter
    (fun pgno ->
      (* Pages allocated by the aborted transaction never made it to the
         backend; their zeroed buffers go straight back. New pages have
         no undo entry (alloc_page marks them dirty), so this cannot
         double-recycle a promoted pre-image. *)
      (match Hashtbl.find_opt t.cache pgno with
      | Some b -> Pool.recycle b
      | None -> ());
      Hashtbl.remove t.cache pgno)
    txn.new_pages;
  t.hwm <- txn.hwm_at_begin;
  (* New pages above the pre-txn high-water mark are abandoned; the page
     numbers are not reused, like SQLite's freelist-less fast path. *)
  t.txn <- None;
  Sync.Mutex.unlock t.write_lock

let in_txn t = t.txn <> None
let npages t = t.hwm

(* End-of-run teardown: the page cache holds one pooled buffer per page
   ever touched — for a TATP-sized database that is tens of thousands
   of 4 KiB buffers, by far the largest pooled working set in the
   bench. Returning them lets the next experiment on this domain run
   nearly miss-free. *)
let dispose t =
  if t.txn <> None then invalid_arg "Pager.dispose: open transaction";
  Hashtbl.iter (fun _ b -> Pool.recycle b) t.cache;
  Hashtbl.reset t.cache

let restore_hwm t hwm = if hwm > t.hwm then t.hwm <- hwm

let hwm_changed_in_txn t =
  match t.txn with Some txn -> t.hwm <> txn.hwm_at_begin | None -> false
let cached_pages t = Hashtbl.length t.cache

let dirty_pages t =
  match t.txn with Some txn -> Hashtbl.length txn.dirty | None -> 0
