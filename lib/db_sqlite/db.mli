(** The embedded database: tables over B-trees, SQLite-style layering.

    The "upper layer": named tables (each a B-tree), single-writer
    transactions, and a catalog persisted in page 1. Everything durable
    flows through the pager's backend, so the same database runs over the
    WAL-file baseline or the MemSnap plugin unchanged. *)

type t
type table

val open_db : Pager.backend -> t
(** Create or recover: reads the catalog from page 1 if the backend has
    one. *)

val pager : t -> Pager.t

val with_write_txn : t -> (unit -> 'a) -> 'a
(** Run under the database write lock; commits on return, rolls back on
    exception. Catalog/page-count changes are folded into the same
    transaction. *)

val create_table : t -> string -> table
(** Create (or return the existing) table. Opens its own transaction if
    none is active. *)

val table : t -> string -> table option
val table_names : t -> string list

(** {2 Row operations — call inside [with_write_txn] for writes} *)

val put : table -> key:string -> value:string -> unit
val get : table -> string -> string option
val delete : table -> string -> bool
val iter_range : table -> ?lo:string -> ?hi:string -> (string -> string -> unit) -> unit
val count : table -> int

val key_of_int : int -> string
(** Big-endian fixed-width encoding: numeric order = byte order. *)

val int_of_key : string -> int

(** {2 Crash recovery ({!Msnap_faults})} *)

type recovered = {
  rec_db : t;
  rec_backend : Backend_wal.t;
  rec_fs : Msnap_fs.Fs.t;
}
(** A database rebuilt from a post-crash device: mounted file system,
    WAL-replayed backend, and the database opened over it. *)

val recoverable :
  db_name:string -> table:string -> ?checkpoint_threshold:int -> unit ->
  (module Msnap_faults.Recoverable.S with type t = recovered)
(** The crash-recovery contract for the WAL backend: [recover] mounts
    the FFS volume ([Fs.Mount_error] becomes [Unmountable]) and replays
    the WAL's longest intact committed prefix; [check] dumps the
    tracked table's rows and compares against the history's candidate
    steps. *)
