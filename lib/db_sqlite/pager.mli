(** The storage engine's page layer: cache, transactions, and a pluggable
    persistence backend.

    The paper's SQLite integration swaps the Unix file module for a
    MemSnap plugin while the B-tree and pager logic stay untouched (§7.1).
    This pager reproduces that seam: all durable IO goes through a
    {!backend} record, with {!Backend_wal} (WAL file + checkpoint over the
    file API) and {!Backend_msnap} (persistent region + [msnap_persist])
    as the two implementations.

    Concurrency follows SQLite: one writer at a time ({!begin_write} takes
    the database write lock), readers unrestricted. Transactions are
    undo-logged in memory so [rollback] restores pre-images. *)

type t

type backend = {
  b_label : string;
  b_read_page : int -> Bytes.t option;
      (** Fetch a page image from durable storage ([None] = never
          written). *)
  b_commit : (int * Bytes.t) list -> unit;
      (** Durably commit the transaction's page images, atomically. *)
}

val create : backend -> t

val backend_label : t -> string

(** {2 Transactions} *)

val begin_write : t -> unit
val commit : t -> unit
val rollback : t -> unit
val in_txn : t -> bool

(** {2 Page access} *)

val get_page : t -> int -> Bytes.t
(** Read-only view (do not mutate without {!page_for_write}). *)

val page_for_write : t -> int -> Bytes.t
(** The same bytes, registered in the transaction's dirty set with an
    undo image. Requires an open transaction. *)

val alloc_page : t -> int
(** New page number (starts dirty, zeroed). Requires a transaction. *)

val npages : t -> int

val cached_pages : t -> int

val dirty_pages : t -> int
(** Dirty set size of the open transaction. *)

val restore_hwm : t -> int -> unit
(** Raise the high-water mark while recovering the catalog. *)

val hwm_changed_in_txn : t -> bool
(** Did the open transaction allocate pages? *)

val dispose : t -> unit
(** Return every cached page buffer to [Msnap_util.Pool] and empty the
    cache. Host-side teardown for the bench harness; call only with no
    open transaction, after the simulation is done with the
    database. *)
