(** Baseline persistence: SQLite's WAL-and-checkpoint over the file API.

    Commit appends one frame per dirty page to the WAL file and fsyncs it.
    When the WAL passes the checkpoint threshold (4 MiB of frames, the
    SQLite default the paper cites), the latest version of every logged
    page is copied into the database file, both files are fsynced, and the
    WAL is truncated — the random-IO storm Table 7 measures.

    System calls are recorded under the Metrics names ["write"], ["read"],
    ["fsync"] so the harness can print the Table 7 columns. *)

type t

val create : Msnap_fs.Fs.t -> db_name:string -> ?checkpoint_threshold:int -> unit -> t

val recover : Msnap_fs.Fs.t -> db_name:string -> ?checkpoint_threshold:int -> unit -> t
(** Open over a crash-recovered file system: rebuilds the WAL index
    from the log's longest intact checksum-chained prefix, applying
    frames only up to the last commit-flagged one — a transaction with
    a torn tail contributes nothing. *)

val backend : t -> Pager.backend

val checkpoints_done : t -> int
val wal_bytes : t -> int

val dispose : t -> unit
(** Return un-checkpointed WAL frame buffers to [Msnap_util.Pool].
    Host-side teardown; the backend must not be used afterwards. *)
