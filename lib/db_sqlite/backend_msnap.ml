module Msnap = Msnap_core.Msnap
module Metrics = Msnap_sim.Metrics
module Probe = Msnap_sim.Probe

type t = { k : Msnap.t; md : Msnap.md }

let create k ~db_name ~max_pages =
  let md =
    Msnap.open_region k ~name:("sqlite/" ^ db_name)
      ~len:(max_pages * Page.size) ()
  in
  { k; md }

let read_page t pgno =
  if pgno * Page.size > Msnap.length t.md then None
  else begin
    (* Pooled output buffer (the pager cache takes ownership);
       [read_into] carries the same charges as [read]. *)
    let b = Msnap_util.Pool.alloc Page.size in
    Msnap.read_into t.k t.md ~off:((pgno - 1) * Page.size) b ~pos:0
      ~len:Page.size;
    Some b
  end

let commit t pages =
  Metrics.timed Probe.db_memsnap (fun () ->
      List.iter
        (fun (pgno, b) -> Msnap.write t.k t.md ~off:((pgno - 1) * Page.size) b)
        pages;
      ignore (Msnap.persist t.k ~region:t.md ()))

let backend t =
  { Pager.b_label = "memsnap"; b_read_page = read_page t; b_commit = commit t }

let region t = t.md
