type table = { tbl_name : string; tree : Btree.t }

type t = {
  pgr : Pager.t;
  tables : (string, table) Hashtbl.t;
  mutable catalog_dirty : bool;
}

let magic = 0x4D53514Cl (* "MSQL" *)

let meta_page = 1

(* Page 1: u32 magic, u32 page count, u16 table count, then per table
   [u8 name length; name; u32 root]. *)
let write_catalog t =
  let b = Pager.page_for_write t.pgr meta_page in
  Bytes.fill b 0 Page.size '\000';
  Bytes.set_int32_le b 0 magic;
  Bytes.set_int32_le b 4 (Int32.of_int (Pager.npages t.pgr));
  Bytes.set_uint16_le b 8 (Hashtbl.length t.tables);
  let pos = ref 10 in
  Hashtbl.iter
    (fun name tbl ->
      Bytes.set_uint8 b !pos (String.length name);
      Bytes.blit_string name 0 b (!pos + 1) (String.length name);
      Bytes.set_int32_le b (!pos + 1 + String.length name)
        (Int32.of_int (Btree.root tbl.tree));
      pos := !pos + 1 + String.length name + 4)
    t.tables;
  t.catalog_dirty <- false

let read_catalog t =
  let b = Pager.get_page t.pgr meta_page in
  if Bytes.get_int32_le b 0 <> magic then ()
  else begin
    let npages = Int32.to_int (Bytes.get_int32_le b 4) in
    Pager.restore_hwm t.pgr npages;
    let ntables = Bytes.get_uint16_le b 8 in
    let pos = ref 10 in
    for _ = 1 to ntables do
      let nlen = Bytes.get_uint8 b !pos in
      let name = Bytes.sub_string b (!pos + 1) nlen in
      let root = Int32.to_int (Bytes.get_int32_le b (!pos + 1 + nlen)) in
      pos := !pos + 1 + nlen + 4;
      Hashtbl.replace t.tables name
        { tbl_name = name; tree = Btree.open_tree t.pgr ~root }
    done
  end

let open_db backend =
  let pgr = Pager.create backend in
  let t = { pgr; tables = Hashtbl.create 8; catalog_dirty = false } in
  read_catalog t;
  t

let pager t = t.pgr

let finish_txn t =
  (* Fold catalog / page-count changes into the committing transaction so
     recovery sees a consistent header. *)
  if t.catalog_dirty || Pager.hwm_changed_in_txn t.pgr then write_catalog t;
  Pager.commit t.pgr

let with_write_txn t f =
  Pager.begin_write t.pgr;
  match f () with
  | v ->
    finish_txn t;
    v
  | exception exn ->
    Pager.rollback t.pgr;
    raise exn

let create_table t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> tbl
  | None ->
    let make () =
      let tree = Btree.create t.pgr in
      let tbl = { tbl_name = name; tree } in
      Hashtbl.replace t.tables name tbl;
      t.catalog_dirty <- true;
      tbl
    in
    if Pager.in_txn t.pgr then make () else with_write_txn t make

let table t name = Hashtbl.find_opt t.tables name

let table_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables [] |> List.sort compare

let put tbl ~key ~value = Btree.insert tbl.tree ~key ~value
let get tbl key = Btree.find tbl.tree key
let delete tbl key = Btree.delete tbl.tree key
let iter_range tbl ?lo ?hi f = Btree.iter_range tbl.tree ?lo ?hi f
let count tbl = Btree.count tbl.tree

let key_of_int v =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.of_int v);
  Bytes.to_string b

let int_of_key s = Int64.to_int (String.get_int64_be s 0)

(* --- crash recovery contract --- *)

type recovered = {
  rec_db : t;
  rec_backend : Backend_wal.t;
  rec_fs : Msnap_fs.Fs.t;
}

let recoverable ~db_name ~table:tbl_name ?checkpoint_threshold () =
  (module struct
    type t = recovered

    let label = "sqlite"

    (* Mount the file system, replay the WAL's longest intact committed
       prefix over the db file, and open the database on the recovered
       pager backend. *)
    let recover dev =
      let fs =
        try Msnap_fs.Fs.mount dev ~kind:Msnap_fs.Fs.Ffs
        with Msnap_fs.Fs.Mount_error msg ->
          raise (Msnap_faults.Recoverable.Unmountable msg)
      in
      let bw = Backend_wal.recover fs ~db_name ?checkpoint_threshold () in
      { rec_db = open_db (Backend_wal.backend bw);
        rec_backend = bw;
        rec_fs = fs }

    (* The recovered state is the tracked table's full contents; a
       table missing from the catalog dumps as empty (the pre-creation
       steps record no rows). *)
    let check r history =
      let state =
        match table r.rec_db tbl_name with
        | None -> []
        | Some tb ->
          let acc = ref [] in
          iter_range tb (fun k v -> acc := (k, v) :: !acc);
          List.rev !acc
      in
      Msnap_faults.Recoverable.check_state ~label history state

    let dispose r =
      Backend_wal.dispose r.rec_backend;
      Msnap_fs.Fs.dispose r.rec_fs
  end : Msnap_faults.Recoverable.S with type t = recovered)
