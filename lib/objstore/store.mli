(** The COW object store backing MemSnap μCheckpoints.

    A key-value store of named objects, each an independently-versioned COW
    radix tree of 4 KiB blocks (§3, "Persisting MemSnap Regions"). It does
    direct IO — no buffer cache, no POSIX file semantics — and commits a
    μCheckpoint in two device steps:

    + one vectored write placing new data blocks and the COW node path into
      free space (sequential when space allows);
    + one atomic sector write flipping the object header to the new radix
      root and epoch.

    Crashes anywhere leave the previous epoch intact: every object is
    restorable from its last committed header independent of any global
    state. Objects carry a monotonic epoch so concurrent μCheckpoints to
    different objects never serialize on each other; commits to the same
    object are ordered by a per-object lock. *)

type t
type obj

exception Corrupt of string

val format : Msnap_blockdev.Device.t -> unit
(** Initialize an empty store on the volume (any {!Msnap_blockdev.Device}
    backend). *)

val mount : Msnap_blockdev.Device.t -> t
(** Recover: pick the newest valid superblock, load the directory and
    object headers, and rebuild the allocator by walking every tree.
    Raises [Corrupt] when no valid superblock exists. *)

val device : t -> Msnap_blockdev.Device.t

val create : t -> name:string -> ?meta:int -> unit -> obj
(** Create an empty object (durable before returning). Raises
    [Invalid_argument] if the name exists. *)

val open_obj : t -> name:string -> obj option
val delete : t -> obj -> unit
val list_objects : t -> string list

val obj_name : obj -> string
val epoch : obj -> int
val size_bytes : obj -> int
val meta : obj -> int
val set_meta : t -> obj -> int -> unit
(** Durable metadata update (one header write). *)

(** {2 μCheckpoint commits} *)

type ticket
(** Completion handle of an in-flight commit. *)

val commit : t -> obj -> (int * Bytes.t) list -> int
(** [commit t obj pages] durably applies [(page_index, 4 KiB image)] pairs
    as one atomic checkpoint and returns the new epoch. Zero-copy: the
    scatter/gather list references the page frames directly, so the
    buffers must not change until the commit is durable (MemSnap
    guarantees this with its checkpoint-in-progress COW — the ownership
    rule of the data plane). Raises if the device fails mid-commit —
    the store itself stays consistent (the previous epoch is intact). *)

val commit_async : ?flow:int -> t -> obj -> (int * Bytes.t) list -> int * ticket
(** Initiate the commit and return [(epoch, ticket)] after the CPU-side
    setup; the IO proceeds on a worker thread. [flow] (a
    [Msnap_sim.Trace.new_flow] id, 0 = none) links the commit's trace
    events into the originating μCheckpoint's flow; it has no effect on
    simulation. *)

val wait : ticket -> unit
(** Block until the commit is durable; re-raises its failure if any. *)

val read_block : t -> obj -> int -> Bytes.t option
(** Read back one 4 KiB block ([None] = hole). Charged device read. *)

val read_block_into : t -> obj -> int -> Bytes.t -> bool
(** Read one block directly into the caller's 4 KiB buffer (typically a
    page frame), avoiding the staging allocation of {!read_block}.
    Returns [false] (buffer untouched) on a hole. *)

val grow : t -> obj -> size_bytes:int -> unit
(** Record a larger logical size (next header commit persists it). *)

(** {2 Introspection} *)

val free_blocks : t -> int
val nodes_written : t -> int
(** Total COW tree nodes written since mount (write-amplification metric). *)

val data_blocks_written : t -> int

(** {2 Crash recovery ({!Msnap_faults})} *)

val tag_page : string -> Bytes.t
(** A fresh one-block page carrying a length-prefixed tag — what crash
    workloads commit so {!page_tag} can identify the block's writer. *)

val page_tag : Bytes.t -> string option
(** [None] when the length prefix is out of range (garbage media). *)

val recoverable :
  objects:string list -> blocks:int ->
  (module Msnap_faults.Recoverable.S with type t = t)
(** The crash-recovery contract for the store itself: [recover] is
    {!mount} ([Corrupt] becomes [Unmountable]); [check] dumps, for each
    tracked object, its epoch (pair [("@name", epoch)]) and the tag of
    every populated block below [blocks] (pair [("name:idx", tag)]),
    and compares against the history's candidate steps. *)
