(** COW radix trees mapping object block index to disk block address.

    The paper's object store keeps each object's data in a copy-on-write
    radix tree ("block based, no extent fragmentation under frequent
    snapshots"). A μCheckpoint produces a *batch* COW update: new data
    blocks are attached, every node on a path to a change is rewritten to
    fresh blocks, and the replaced nodes are reported for deferred freeing.
    Nothing is persisted here — the caller writes the returned node images
    and flips the object header.

    Node images are read through an abstract [read_node] callback so the
    module does not depend on the device. *)

type node = int array
(** 512 block pointers; 0 = hole. *)

val node_to_bytes : node -> Bytes.t

val node_to_bytes_into : node -> Bytes.t -> unit
(** Serialize into a caller-provided (e.g. pooled) block-sized buffer. *)

val node_of_bytes : Bytes.t -> node

val capacity : height:int -> int
(** Data blocks addressable by a tree of the given height (height 0 = 0). *)

val height_for : int -> int
(** Minimal height whose capacity covers indexes [0 .. n-1]. *)

type update_result = {
  new_root : int;
  new_height : int;
  node_writes : (int * node) list;  (** fresh blocks, to persist *)
  freed : int list;  (** superseded node blocks and data blocks *)
  nodes_visited : int;  (** for CPU cost accounting *)
}

val update_batch :
  read_node:(int -> node) ->
  alloc:(int -> int list) ->
  root:int ->
  height:int ->
  (int * int) list ->
  update_result
(** [update_batch ~read_node ~alloc ~root ~height updates] applies
    [(index, data_block)] pairs. [alloc n] must return [n] fresh blocks. *)

val lookup :
  read_node:(int -> node) -> root:int -> height:int -> int -> int
(** Data block for an index, or [0] for a hole. *)

val iter :
  read_node:(int -> node) ->
  root:int ->
  height:int ->
  f:(index:int -> block:int -> unit) ->
  unit
(** Visit every present data block. *)

val iter_nodes :
  read_node:(int -> node) -> root:int -> height:int -> f:(int -> unit) -> unit
(** Visit every tree-node block (used to rebuild the allocator at mount). *)
