module Device = Msnap_blockdev.Device
module Slice = Msnap_util.Slice
module Pool = Msnap_util.Pool
module Sync = Msnap_sim.Sync
module Sched = Msnap_sim.Sched
module Costs = Msnap_sim.Costs
module Metrics = Msnap_sim.Metrics
module Trace = Msnap_sim.Trace
module Probe = Msnap_sim.Probe

exception Corrupt of string

type ticket = (unit, exn) result Sync.Ivar.t

type pending = {
  p_updates : (int * int) list; (* (page index, data block) *)
  p_segs : (int * Slice.t) list;
      (* device segments carrying the data: slices straight over the
         caller's page frames (ownership rule: stable until durable) *)
  p_ivar : ticket;
  p_epoch : int;
  p_size : int; (* logical size implied by this commit *)
  p_flow : int; (* trace flow id linking this Î¼Checkpoint's events; 0 = none *)
}

type obj = {
  header_block : int;
  mutable hdr : Layout.header;
  mutable next_epoch : int;
  mutable queue : pending list; (* reversed arrival order *)
  mutable committing : bool;
  mutable deleted : bool;
}

type t = {
  dev : Device.t;
  alloc : Alloc.t;
  cache : (int, Radix.node) Hashtbl.t;
  mutable sb : Layout.superblock;
  objects : (string, obj) Hashtbl.t;
  meta_lock : Sync.Mutex.t;
  mutable next_obj_id : int;
  mutable s_nodes_written : int;
  mutable s_data_written : int;
}

let bsz = Layout.block_size

let block_off b = b * bsz

let write_block dev b bytes = Device.write dev ~off:(block_off b) bytes
let read_block_raw dev b = Device.read dev ~off:(block_off b) ~len:bsz

let read_block_raw_into dev b dst =
  Device.read_into dev ~off:(block_off b) (Slice.of_bytes dst)

(* Headers and superblocks occupy the first sector of their block; the
   single-sector write is what makes the commit atomic. *)
let write_commit_sector dev b bytes =
  assert (Bytes.length bytes = 512);
  Device.write dev ~off:(block_off b) bytes

let read_commit_sector dev b = Device.read dev ~off:(block_off b) ~len:512

let device t = t.dev

let read_node t b =
  match Hashtbl.find_opt t.cache b with
  | Some n -> n
  | None ->
    (* Pooled staging: the raw block bytes only live until they are
       parsed into the cached int-array node. *)
    let staging = Pool.alloc bsz in
    let n =
      Fun.protect
        ~finally:(fun () -> Pool.recycle staging)
        (fun () ->
          read_block_raw_into t.dev b staging;
          Radix.node_of_bytes staging)
    in
    Hashtbl.replace t.cache b n;
    n

(* --- formatting and mount --- *)

let total_blocks_of dev = Device.size dev / bsz

let write_superblock t =
  let gen = t.sb.Layout.generation + 1 in
  let sb = { t.sb with Layout.generation = gen } in
  let slot = gen mod Layout.sb_blocks in
  write_commit_sector t.dev slot (Layout.superblock_to_bytes sb);
  t.sb <- sb

let format dev =
  let sb =
    { Layout.generation = 1; directory_block = 0;
      total_blocks = total_blocks_of dev }
  in
  write_commit_sector dev 1 (Layout.superblock_to_bytes sb);
  (* Invalidate slot 0 in case the volume held an older store. *)
  write_commit_sector dev 0 (Bytes.make 512 '\000')

let load_superblock dev =
  let candidates =
    List.filter_map
      (fun slot -> Layout.superblock_of_bytes (read_commit_sector dev slot))
      [ 0; 1 ]
  in
  match candidates with
  | [] -> raise (Corrupt "no valid superblock")
  | l ->
    List.fold_left
      (fun best sb ->
        if sb.Layout.generation > best.Layout.generation then sb else best)
      (List.hd l) l

let mount dev =
  let sb = load_superblock dev in
  let t =
    {
      dev;
      alloc = Alloc.create ~total_blocks:sb.Layout.total_blocks;
      cache = Hashtbl.create 1024;
      sb;
      objects = Hashtbl.create 16;
      meta_lock = Sync.Mutex.create ();
      next_obj_id = 1;
      s_nodes_written = 0;
      s_data_written = 0;
    }
  in
  if sb.Layout.directory_block <> 0 then begin
    Alloc.mark_allocated t.alloc sb.Layout.directory_block;
    let entries =
      Layout.directory_of_bytes (read_block_raw dev sb.Layout.directory_block)
    in
    List.iter
      (fun (name, hblock) ->
        Alloc.mark_allocated t.alloc hblock;
        match Layout.header_of_bytes (read_commit_sector dev hblock) with
        | None ->
          raise (Corrupt (Printf.sprintf "object %s: bad header" name))
        | Some hdr ->
          if hdr.Layout.obj_id >= t.next_obj_id then
            t.next_obj_id <- hdr.Layout.obj_id + 1;
          Radix.iter_nodes ~read_node:(read_node t) ~root:hdr.Layout.root_block
            ~height:hdr.Layout.height ~f:(Alloc.mark_allocated t.alloc);
          Radix.iter ~read_node:(read_node t) ~root:hdr.Layout.root_block
            ~height:hdr.Layout.height ~f:(fun ~index:_ ~block ->
              Alloc.mark_allocated t.alloc block);
          Hashtbl.replace t.objects name
            { header_block = hblock; hdr; next_epoch = hdr.Layout.epoch + 1;
              queue = []; committing = false; deleted = false })
      entries
  end;
  t

(* --- directory management --- *)

let directory_entries t =
  Hashtbl.fold
    (fun name o acc -> if o.deleted then acc else (name, o.header_block) :: acc)
    t.objects []
  |> List.sort compare

(* Rewrite the directory COW-style and flip the superblock. Caller holds
   [meta_lock]. *)
let persist_directory t =
  let old = t.sb.Layout.directory_block in
  let entries = directory_entries t in
  if entries = [] then begin
    t.sb <- { t.sb with Layout.directory_block = 0 };
    write_superblock t
  end
  else begin
    let nb = List.hd (Alloc.alloc_run t.alloc 1) in
    write_block t.dev nb (Layout.directory_to_bytes entries);
    t.sb <- { t.sb with Layout.directory_block = nb };
    write_superblock t
  end;
  if old <> 0 then begin
    Alloc.free_deferred t.alloc [ old ];
    Alloc.apply_deferred t.alloc
  end

let create t ~name ?(meta = 0) () =
  Sync.Mutex.with_lock t.meta_lock (fun () ->
      (match Hashtbl.find_opt t.objects name with
      | Some o when not o.deleted ->
        invalid_arg (Printf.sprintf "Store.create: %s exists" name)
      | _ -> ());
      if List.length (directory_entries t) >= Layout.max_directory_entries then
        invalid_arg "Store.create: directory full";
      let hblock = List.hd (Alloc.alloc_run t.alloc 1) in
      let hdr =
        { Layout.obj_id = t.next_obj_id; obj_name = name; epoch = 0;
          root_block = 0; height = 0; size_bytes = 0; meta }
      in
      t.next_obj_id <- t.next_obj_id + 1;
      write_commit_sector t.dev hblock (Layout.header_to_bytes hdr);
      let o =
        { header_block = hblock; hdr; next_epoch = 1; queue = [];
          committing = false; deleted = false }
      in
      Hashtbl.replace t.objects name o;
      persist_directory t;
      o)

let open_obj t ~name =
  match Hashtbl.find_opt t.objects name with
  | Some o when not o.deleted -> Some o
  | _ -> None

let delete t o =
  Sync.Mutex.with_lock t.meta_lock (fun () ->
      if o.deleted then invalid_arg "Store.delete: already deleted";
      o.deleted <- true;
      Hashtbl.remove t.objects o.hdr.Layout.obj_name;
      persist_directory t;
      (* Reclaim the object's blocks. *)
      let freed = ref [ o.header_block ] in
      Radix.iter_nodes ~read_node:(read_node t) ~root:o.hdr.Layout.root_block
        ~height:o.hdr.Layout.height ~f:(fun b -> freed := b :: !freed);
      Radix.iter ~read_node:(read_node t) ~root:o.hdr.Layout.root_block
        ~height:o.hdr.Layout.height ~f:(fun ~index:_ ~block ->
          freed := block :: !freed);
      Alloc.free_deferred t.alloc !freed;
      Alloc.apply_deferred t.alloc;
      List.iter (Hashtbl.remove t.cache) !freed)

let list_objects t = List.map fst (directory_entries t)

let obj_name o = o.hdr.Layout.obj_name
let epoch o = o.hdr.Layout.epoch
let size_bytes o = o.hdr.Layout.size_bytes
let meta o = o.hdr.Layout.meta

let write_header t o hdr =
  write_commit_sector t.dev o.header_block (Layout.header_to_bytes hdr);
  o.hdr <- hdr

let set_meta t o meta =
  Sync.Mutex.with_lock t.meta_lock (fun () ->
      write_header t o { o.hdr with Layout.meta })

(* --- μCheckpoint commits --- *)

(* Drain the object's pending queue: one combined COW tree update, one
   vectored node write, one header flip per batch. Runs until the queue is
   empty; new commits arriving during IO join the next batch (group
   commit / flat combining). *)
let rec drain t o =
  match o.queue with
  | [] -> o.committing <- false
  | _ ->
    let batch = List.rev o.queue in
    o.queue <- [];
    match drain_batch t o batch with
    | () -> drain t o
    | exception exn ->
      (* Device failure mid-batch: the previous epoch is still intact on
         disk; report the failure to every waiter, including commits that
         queued up behind this batch. *)
      let stranded = List.rev o.queue in
      o.queue <- [];
      o.committing <- false;
      List.iter (fun p -> Sync.Ivar.fill p.p_ivar (Error exn)) (batch @ stranded)

and drain_batch t o batch =
  Sched.with_bucket Probe.Bucket.memsnap_flush @@ fun () ->
    let trace_t0 = if Trace.is_on () then Sched.now () else 0 in
    let updates = List.concat_map (fun p -> p.p_updates) batch in
    let epoch = List.fold_left (fun a p -> max a p.p_epoch) 0 batch in
    let size =
      List.fold_left (fun a p -> max a p.p_size) o.hdr.Layout.size_bytes batch
    in
    let result =
      Radix.update_batch ~read_node:(read_node t)
        ~alloc:(Alloc.alloc_run t.alloc) ~root:o.hdr.Layout.root_block
        ~height:o.hdr.Layout.height updates
    in
    Sched.cpu (result.Radix.nodes_visited * Costs.cow_node_cpu);
    t.s_nodes_written <- t.s_nodes_written + List.length result.Radix.node_writes;
    (* Insert fresh nodes into the cache before they hit the device so
       concurrent readers of *other* objects never see stale views; this
       object is protected by [committing]. *)
    List.iter
      (fun (b, n) -> Hashtbl.replace t.cache b n)
      result.Radix.node_writes;
    (* Node payloads are pooled: they only need to outlive the vectored
       write below (the cache holds the parsed int-array nodes). *)
    let node_segs =
      List.map
        (fun (b, n) ->
          let buf = Pool.alloc bsz in
          Radix.node_to_bytes_into n buf;
          (block_off b, Slice.of_bytes buf))
        result.Radix.node_writes
    in
    (* One vectored command carries every data page and COW node of the
       batch; the header flip is a second, dependent command. Built as
       data segments in batch order with the node segments as the tail,
       directly — no intermediate concat + append copy.

       Write coalescing: sort the batch by device offset once. Every
       segment targets a freshly COW-allocated block, so offsets are
       distinct and the sort is a pure reordering within one command —
       same total bytes, same single latency charge — but it turns
       [Alloc.alloc_run]'s contiguous runs into sector-adjacent runs the
       device and stripe layers merge into fused commits. A torn command
       leaves the previous epoch intact either way: nothing in this
       command is reachable until the header flip after it. *)
    let segs =
      List.sort
        (fun (a, _) (b, _) -> compare (a : int) b)
        (List.fold_right (fun p acc -> p.p_segs @ acc) batch node_segs)
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun (_, s) -> Pool.recycle (Slice.buf s)) node_segs)
      (fun () -> Device.writev t.dev segs);
    write_header t o
      { o.hdr with
        Layout.epoch;
        root_block = result.Radix.new_root;
        height = result.Radix.new_height;
        size_bytes = size };
    if Trace.is_on () then begin
      (* The header flip just made the batch durable: step every linked
         μCheckpoint flow through the device commit at this instant. *)
      List.iter
        (fun p ->
          if p.p_flow <> 0 then
            Trace.instant Probe.objstore_device_commit
              ~flow:(p.p_flow, Trace.Flow_step)
              ~argi:("epoch", epoch))
        batch;
      Trace.complete Probe.objstore_flush ~dur:(Sched.now () - trace_t0)
        ~args:
          [ ("object", Trace.S o.hdr.Layout.obj_name);
            ("commits", Trace.I (List.length batch));
            ("pages", Trace.I (List.length updates));
            ("nodes", Trace.I (List.length node_segs));
            ("epoch", Trace.I epoch) ]
    end;
    Alloc.free_deferred t.alloc result.Radix.freed;
    Alloc.apply_deferred t.alloc;
    List.iter (Hashtbl.remove t.cache) result.Radix.freed;
    List.iter (fun p -> Sync.Ivar.fill p.p_ivar (Ok ())) batch

let commit_async ?(flow = 0) t o pages =
  if o.deleted then invalid_arg "Store.commit: deleted object";
  let iv = Sync.Ivar.create () in
  match pages with
  | [] ->
    Sync.Ivar.fill iv (Ok ());
    (epoch o, iv)
  | _ ->
    let epoch = o.next_epoch in
    o.next_epoch <- epoch + 1;
    Metrics.incr Probe.objstore_commits;
    let npages = List.length pages in
    if Trace.is_on () then
      Trace.instant Probe.objstore_commit_queued
        ?flow:(if flow <> 0 then Some (flow, Trace.Flow_step) else None)
        ~args:
          [ ("object", Trace.S o.hdr.Layout.obj_name);
            ("pages", Trace.I npages); ("epoch", Trace.I epoch) ];
    Sched.cpu (npages * Costs.io_initiate);
    t.s_data_written <- t.s_data_written + npages;
    let worker () =
      try
        let data_blocks = Alloc.alloc_run t.alloc npages in
        (* One pass over the dirty pages builds the index->block updates
           and the device segments together and folds the size — the
           lists are identical to the old two [map2]s over the pair. *)
        let size = ref 0 in
        let rec build pages blocks =
          match (pages, blocks) with
          | [], [] -> ([], [])
          | (idx, data) :: ps, b :: bs ->
            if (idx + 1) * bsz > !size then size := (idx + 1) * bsz;
            let updates, segs = build ps bs in
            ( (idx, b) :: updates,
              (block_off b, Slice.of_bytes data) :: segs )
          | _ -> assert false (* alloc_run returned [npages] blocks *)
        in
        let updates, segs = build pages data_blocks in
        let size = !size in
        o.queue <- { p_updates = updates; p_segs = segs; p_ivar = iv;
                     p_epoch = epoch; p_size = size; p_flow = flow } :: o.queue;
        if not o.committing then begin
          o.committing <- true;
          drain t o
        end
      with exn -> Sync.Ivar.fill iv (Error exn)
    in
    ignore (Sched.spawn ~name:"objstore-commit" worker);
    (epoch, iv)

let wait iv =
  match Sync.Ivar.read iv with Ok () -> () | Error exn -> raise exn

let commit t o pages =
  let epoch, iv = commit_async t o pages in
  wait iv;
  epoch

let read_block t o idx =
  let b =
    Radix.lookup ~read_node:(read_node t) ~root:o.hdr.Layout.root_block
      ~height:o.hdr.Layout.height idx
  in
  if b = 0 then None else Some (read_block_raw t.dev b)

let read_block_into t o idx dst =
  if Bytes.length dst <> bsz then
    invalid_arg "Store.read_block_into: buffer must be one block";
  let b =
    Radix.lookup ~read_node:(read_node t) ~root:o.hdr.Layout.root_block
      ~height:o.hdr.Layout.height idx
  in
  if b = 0 then false
  else begin
    read_block_raw_into t.dev b dst;
    true
  end

let grow t o ~size_bytes =
  ignore t;
  if size_bytes > o.hdr.Layout.size_bytes then
    o.hdr <- { o.hdr with Layout.size_bytes }

let free_blocks t = Alloc.free_blocks t.alloc
let nodes_written t = t.s_nodes_written
let data_blocks_written t = t.s_data_written

(* --- crash recovery contract --- *)

(* Tag pages for crash workloads: a full block whose first bytes are a
   u16 length + payload, so a recovered block identifies which commit
   wrote it. *)

let tag_page tag =
  if String.length tag > bsz - 2 then invalid_arg "Store.tag_page: too long";
  let b = Bytes.make bsz '\000' in
  Bytes.set_uint16_le b 0 (String.length tag);
  Bytes.blit_string tag 0 b 2 (String.length tag);
  b

let page_tag b =
  if Bytes.length b <> bsz then None
  else
    let n = Bytes.get_uint16_le b 0 in
    if n > bsz - 2 then None else Some (Bytes.sub_string b 2 n)

let recoverable ~objects ~blocks =
  (module struct
    type nonrec t = t

    let label = "objstore"

    let recover dev =
      try mount dev
      with Corrupt msg -> raise (Msnap_faults.Recoverable.Unmountable msg)

    (* The recovered state of each tracked object: its committed epoch
       (["@name"]) plus the tag of every populated block — commits are
       atomic header flips, so both must come from the same step. *)
    let check st history =
      let state =
        List.concat_map
          (fun name ->
            match open_obj st ~name with
            | None -> []
            | Some o ->
              ("@" ^ name, string_of_int (epoch o))
              :: List.filter_map
                   (fun i ->
                     match read_block st o i with
                     | None -> None
                     | Some b -> (
                       match page_tag b with
                       | Some tag ->
                         Some (name ^ ":" ^ string_of_int i, tag)
                       | None ->
                         Msnap_faults.Recoverable.fail
                           "objstore: %s block %d has a garbage tag" name i))
                   (List.init blocks Fun.id))
          objects
      in
      Msnap_faults.Recoverable.check_state ~label history state

    let dispose _ = ()
  end : Msnap_faults.Recoverable.S with type t = t)
