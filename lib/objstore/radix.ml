type node = int array

let fanout = Layout.radix_fanout

let node_to_bytes_into n b =
  Bytes.fill b 0 Layout.block_size '\000';
  Array.iteri (fun i v -> Bytes.set_int64_le b (i * 8) (Int64.of_int v)) n

let node_to_bytes n =
  let b = Bytes.create Layout.block_size in
  node_to_bytes_into n b;
  b

let node_of_bytes b =
  Array.init fanout (fun i -> Int64.to_int (Bytes.get_int64_le b (i * 8)))

let capacity ~height =
  if height <= 0 then 0
  else begin
    let rec pow acc n = if n = 0 then acc else pow (acc * fanout) (n - 1) in
    pow 1 height
  end

let height_for n =
  let rec go h = if capacity ~height:h >= n then h else go (h + 1) in
  if n <= 0 then 0 else go 1

type update_result = {
  new_root : int;
  new_height : int;
  node_writes : (int * node) list;
  freed : int list;
  nodes_visited : int;
}

(* A subtree being COWed is either a real on-disk node (possibly absent) or
   a "grown" virtual level: when the tree height grows, the old root becomes
   the leftmost descendant of the new root, and every level between them is
   a virtual node whose only child is slot 0. *)
type subtree = Block of int | Grown

let update_batch ~read_node ~alloc ~root ~height updates =
  match updates with
  | [] -> { new_root = root; new_height = height; node_writes = []; freed = [];
            nodes_visited = 0 }
  | _ ->
    let max_idx = List.fold_left (fun a (i, _) -> max a i) 0 updates in
    let needed_height = max (height_for (max_idx + 1)) (max height 1) in
    let orig_height = height and orig_root = root in
    let writes = ref [] in
    let freed = ref [] in
    let visited = ref 0 in
    let fresh contents =
      match alloc 1 with
      | [ b ] ->
        writes := (b, contents) :: !writes;
        b
      | _ -> assert false
    in
    (* COW-update [src] at [level] (1 = leaf whose entries are data
       blocks). [ups] indexes are relative to this subtree. Returns the
       fresh block holding the updated node. *)
    let rec cow level src ups =
      incr visited;
      let entries, old_block =
        match src with
        | Block 0 -> (Array.make fanout 0, 0)
        | Block b -> (Array.copy (read_node b), b)
        | Grown -> (Array.make fanout 0, 0)
      in
      if level = 1 then
        List.iter
          (fun (idx, data) ->
            assert (idx >= 0 && idx < fanout);
            if entries.(idx) <> 0 then freed := entries.(idx) :: !freed;
            entries.(idx) <- data)
          ups
      else begin
        let span = capacity ~height:(level - 1) in
        let groups = Hashtbl.create 8 in
        let slots = ref [] in
        let touch slot =
          if not (Hashtbl.mem groups slot) then begin
            Hashtbl.add groups slot (ref []);
            slots := slot :: !slots
          end
        in
        (* A grown level must always rewrite slot 0 to link the old tree
           in, even if no update lands there. *)
        (match src with
        | Grown when orig_root <> 0 -> touch 0
        | Grown | Block _ -> ());
        List.iter
          (fun (idx, data) ->
            let slot = idx / span in
            touch slot;
            let l = Hashtbl.find groups slot in
            l := (idx mod span, data) :: !l)
          ups;
        List.iter
          (fun slot ->
            let rel_ups = List.rev !(Hashtbl.find groups slot) in
            let child_src =
              match src with
              | Grown when slot = 0 ->
                if level - 1 > orig_height then Grown else Block orig_root
              | Grown -> Block 0
              | Block _ -> Block entries.(slot)
            in
            (* Linking the unmodified old tree in does not rewrite it. *)
            if rel_ups = [] then begin
              match child_src with
              | Block b -> entries.(slot) <- b
              | Grown -> entries.(slot) <- cow (level - 1) child_src []
            end
            else entries.(slot) <- cow (level - 1) child_src rel_ups)
          (List.rev !slots)
      end;
      if old_block <> 0 then freed := old_block :: !freed;
      fresh entries
    in
    let top_src =
      if orig_root = 0 then Block 0
      else if needed_height = orig_height then Block orig_root
      else Grown
    in
    let new_root = cow needed_height top_src updates in
    { new_root; new_height = needed_height; node_writes = List.rev !writes;
      freed = !freed; nodes_visited = !visited }

let lookup ~read_node ~root ~height idx =
  if root = 0 || idx < 0 || idx >= capacity ~height then 0
  else begin
    let rec go level block idx =
      if block = 0 then 0
      else if level = 1 then (read_node block).(idx)
      else begin
        let span = capacity ~height:(level - 1) in
        go (level - 1) (read_node block).(idx / span) (idx mod span)
      end
    in
    go height root idx
  end

let iter ~read_node ~root ~height ~f =
  if root <> 0 then begin
    let rec go level block base =
      if block <> 0 then begin
        let entries = read_node block in
        if level = 1 then
          Array.iteri (fun i b -> if b <> 0 then f ~index:(base + i) ~block:b) entries
        else begin
          let span = capacity ~height:(level - 1) in
          Array.iteri (fun i b -> if b <> 0 then go (level - 1) b (base + (i * span))) entries
        end
      end
    in
    go height root 0
  end

let iter_nodes ~read_node ~root ~height ~f =
  if root <> 0 then begin
    let rec go level block =
      if block <> 0 then begin
        f block;
        if level > 1 then Array.iter (fun b -> go (level - 1) b) (read_node block)
      end
    in
    go height root
  end
