(* Microbenchmark experiments: Table 6 (persistence API latency), Fig. 1
   (page-protection strategies), Table 5 (msnap_persist breakdown),
   Table 2 / Table 10 (Aurora vs MemSnap cost structure), Fig. 3
   (checkpoint latency vs dirty-set size). *)

open Env
module Protect = Msnap_vm.Protect
module Ptable = Msnap_vm.Ptable

let page = 4096

(* --- Table 6 --- *)

let sizes_small = [ 4; 8; 16; 32; 64 ] (* KiB, where direct IO is measured *)
let sizes_all = [ 4; 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 ]

let direct_disk_latency kib =
  Sched.run (fun () ->
      let dev = mk_dev () in
      let rng = Rng.create 1 in
      (* One shared payload for every iteration: contents are irrelevant
         (charges depend only on length, nothing reads the device back)
         and Device.write snapshots the bytes, so reuse is host-only. *)
      let payload = Bytes.create (Size.kib kib) in
      time_mean ~iters:10 (fun () ->
          let off =
            Rng.int rng (Device.size dev / Size.kib kib) * Size.kib kib
          in
          Device.write dev ~off payload))

(* write + fsync of [kib] KiB, sequential append or random 4 KiB pages
   into a large cold file. *)
let fsync_latency kind ~pattern kib =
  Sched.run (fun () ->
      let _, fs = mk_fs kind in
      Fs.set_cache_capacity fs 16;
      let f = Fs.open_file fs "bench" in
      let file_mib = 128 in
      (* Preallocate so random writes RMW cold blocks. *)
      let block = Bytes.make (Fs.fs_block_size fs) 'p' in
      for i = 0 to (Size.mib file_mib / Fs.fs_block_size fs) - 1 do
        Fs.write fs f ~off:(i * Fs.fs_block_size fs) block;
        if i mod 4 = 3 then Fs.fsync fs f
      done;
      Fs.fsync fs f;
      let rng = Rng.create 2 in
      let cursor = ref 0 in
      (* Shared workload buffers: Fs.write copies into the buffer cache,
         so reusing one payload across iterations is host-only. *)
      let seq_buf = Bytes.create (Size.kib kib) in
      let page_buf = Bytes.create page in
      let one () =
        (match pattern with
        | `Seq ->
          Fs.write fs f ~off:!cursor seq_buf;
          cursor := (!cursor + Size.kib kib) mod Size.mib file_mib
        | `Random ->
          for _ = 1 to Size.kib kib / page do
            let off = Rng.int rng (Size.mib file_mib / page) * page in
            Fs.write fs f ~off page_buf
          done);
        (* The bench plays the application here, so the fsync under test
           carries the app-level probe (db category in traces). *)
        Metrics.timed Probe.db_fsync (fun () -> Fs.fsync fs f)
      in
      time_mean ~iters:8 one)

let memsnap_latency ~mode kib =
  Sched.run (fun () ->
      let _, k, _, _ = mk_msnap () in
      let region_pages = 65536 in
      let md = Msnap.open_region k ~name:"bench" ~len:(region_pages * page) () in
      let rng = Rng.create 3 in
      (* Time the msnap_persist call itself (the dirtying stores are the
         application's in-memory work, like the paper's methodology). *)
      let total = ref 0 in
      let iters = 8 in
      for _ = 1 to iters do
        dirty_random_pages k md rng ~region_pages ~pages:(Size.kib kib / page);
        let t0 = Sched.now () in
        Metrics.timed Probe.db_memsnap (fun () ->
            match mode with
            | `Sync -> ignore (Msnap.persist k ~region:md ())
            | `Async -> ignore (Msnap.persist k ~region:md ~mode:`Async ()));
        total := !total + (Sched.now () - t0);
        Sched.delay 5_000_000 (* drain async IO between iterations *)
      done;
      !total / iters)

let table6 () =
  section "Table 6: latency of persistence APIs (us)";
  let t =
    Tbl.create ~title:"write+flush latency by API"
      ~headers:
        [ "Size"; "Disk"; "FFS seq"; "ZFS seq"; "FFS rand"; "ZFS rand";
          "memsnap sync"; "memsnap async" ]
  in
  (* Every measurement is an independent simulation: declare the whole
     row-major grid as cells up front (71 of them), then force in the
     same order to print. The pool runs them concurrently; values and
     output are identical to the serial nested loop. *)
  let rows =
    List.map
      (fun kib ->
        let direct =
          if List.mem kib sizes_small then
            Some (cell (fun () -> direct_disk_latency kib))
          else None
        in
        let ffs_seq = cell (fun () -> fsync_latency Fs.Ffs ~pattern:`Seq kib) in
        let zfs_seq = cell (fun () -> fsync_latency Fs.Zfs ~pattern:`Seq kib) in
        let ffs_rand =
          cell (fun () -> fsync_latency Fs.Ffs ~pattern:`Random kib)
        in
        let zfs_rand =
          cell (fun () -> fsync_latency Fs.Zfs ~pattern:`Random kib)
        in
        let ms_sync = cell (fun () -> memsnap_latency ~mode:`Sync kib) in
        let ms_async = cell (fun () -> memsnap_latency ~mode:`Async kib) in
        (kib, direct, [ ffs_seq; zfs_seq; ffs_rand; zfs_rand; ms_sync; ms_async ]))
      sizes_all
  in
  List.iter
    (fun (kib, direct, cells) ->
      let direct =
        match direct with
        | Some c -> Tbl.us_short (force c)
        | None -> "N/A"
      in
      Tbl.row t
        (Size.pp (Size.kib kib) :: direct
        :: List.map (fun c -> Tbl.us_short (force c)) cells))
    rows;
  Tbl.note t "paper (4K): disk 17, FFS seq 70, ZFS seq 64, FFS rand 156, ZFS rand 232, memsnap 34/6";
  Tbl.note t "paper (64K): disk 44, FFS seq 134, ZFS seq 137, FFS rand 1.9K, ZFS rand 2.9K, memsnap 50/6";
  print_table t

(* --- Figure 1 --- *)

let fig1 () =
  section "Figure 1: re-protecting the dirty set (1 GiB mapping)";
  let t =
    Tbl.create ~title:"protection reset latency (us)"
      ~headers:[ "Dirty set"; "scan mapping"; "per-page walk"; "trace buffer" ]
  in
  let mapping_pages = 262144 (* 1 GiB *) in
  let run strategy dirty_pages =
    Sched.run (fun () ->
        let phys = Phys.create () in
        on_dispose (fun () -> Phys.dispose phys);
        let a = Aspace.create phys in
        let va = 0x4000_0000_0000 in
        let dirty = ref [] in
        let handler (f : Aspace.fault) =
          Msnap_vm.Ptloc.set f.Aspace.f_loc
            (Msnap_vm.Pte.set_writable (Msnap_vm.Ptloc.get f.Aspace.f_loc) true);
          dirty := (f.Aspace.f_vpn, f.Aspace.f_loc) :: !dirty
        in
        ignore
          (Aspace.map a ~name:"m" ~va ~len:(mapping_pages * page)
             ~new_pages_writable:false ~on_write_fault:handler ());
        (* Instantiate the mapping's page-table leaves the way a resident
           1 GiB heap would have them, without materializing 1 GiB of
           frames. *)
        let pt = Aspace.page_table a in
        let base_vpn = Addr.vpn_of_va va in
        for leaf = 0 to (mapping_pages / 512) - 1 do
          ignore (Ptable.walk pt (base_vpn + (leaf * 512)))
        done;
        let stride = mapping_pages / dirty_pages in
        for i = 0 to dirty_pages - 1 do
          Aspace.write a ~va:(va + (i * stride * page)) (Bytes.make 8 'd')
        done;
        let d = List.rev !dirty in
        let t0 = Sched.now () in
        ignore
          (match strategy with
          | `Scan -> Protect.scan_mapping a ~mapping_va:va ~mapping_len:(mapping_pages * page) d
          | `Walk -> Protect.per_page_walk a d
          | `Trace -> Protect.trace_buffer a d);
        Sched.now () - t0)
  in
  List.iter
    (fun dirty_kib ->
      let pages = Size.kib dirty_kib / page in
      Tbl.row t
        [
          Size.pp (Size.kib dirty_kib);
          Tbl.us_short (run `Scan pages);
          Tbl.us_short (run `Walk pages);
          Tbl.us_short (run `Trace pages);
        ])
    [ 4; 64; 512; 4096 ];
  Tbl.note t "paper: baseline large even for 4 KiB; per-page grows with the dirty set; trace buffer ~nothing";
  print_table t

(* --- Table 5 --- *)

let table5 () =
  section "Table 5: breakdown of msnap_persist (64 KiB dirty)";
  Sched.run (fun () ->
      Metrics.reset ();
      let _, k, _, _ = mk_msnap () in
      let region_pages = 65536 in
      let md = Msnap.open_region k ~name:"bench" ~len:(region_pages * page) () in
      let rng = Rng.create 4 in
      for _ = 1 to 20 do
        dirty_random_pages k md rng ~region_pages ~pages:16;
        ignore (Msnap.persist k ~region:md ())
      done;
      let t =
        Tbl.create ~title:"msnap_persist phases"
          ~headers:[ "Operation"; "mean (us)"; "paper (us)" ]
      in
      Tbl.row t [ "Resetting tracking"; Tbl.us (int_of_float (Metrics.mean_ns Probe.msnap_persist_reset)); "5.1" ];
      Tbl.row t [ "Initiating writes"; Tbl.us (int_of_float (Metrics.mean_ns Probe.msnap_persist_initiate)); "6.5" ];
      Tbl.row t [ "Waiting on IO"; Tbl.us (int_of_float (Metrics.mean_ns Probe.msnap_persist_wait)); "39.7" ];
      Tbl.row t [ "Total"; Tbl.us (int_of_float (Metrics.mean_ns Probe.msnap_persist_total)); "51.4" ];
      print_table t)

(* --- Table 2 / Table 10 --- *)

(* A populated Aurora region checkpointing a 64 KiB dirty set. *)
let aurora_breakdown () =
  Sched.run (fun () ->
      let _, k, _ = mk_aurora () in
      (* The paper measures during RocksDB's 12-thread dbbench: the stall
         pays one safe-point round-trip per application thread. *)
      for _ = 1 to 12 do
        Aurora.Kernel.register_thread k
      done;
      let pages = 4096 in
      let r =
        Aurora.Region.create k ~name:"bench" ~va:0x5000_0000_0000
          ~len:(pages * page)
      in
      for i = 0 to pages - 1 do
        Aurora.Region.write r ~off:(i * page) (Bytes.make 16 'p')
      done;
      Aurora.Region.checkpoint r;
      let rng = Rng.create 5 in
      for _ = 1 to 5 do
        for _ = 1 to 16 do
          Aurora.Region.write r ~off:(Rng.int rng pages * page) (Bytes.make 64 'd')
        done;
        Aurora.Region.checkpoint r
      done;
      match Aurora.Region.last_breakdown r with
      | Some b -> b
      | None -> failwith "no breakdown")

let table2 () =
  section "Table 2: Aurora region checkpoint breakdown (64 KiB dirty)";
  let b = aurora_breakdown () in
  let t = Tbl.create ~title:"latency by phase" ~headers:[ "Phase"; "us"; "paper (us)" ] in
  Tbl.row t [ "Waiting for calls (stall)"; Tbl.us b.Aurora.Region.stall; "26.7" ];
  Tbl.row t [ "Applying COW (shadowing)"; Tbl.us b.Aurora.Region.shadow; "79.8" ];
  Tbl.row t [ "Flush IO"; Tbl.us b.Aurora.Region.io; "27.9" ];
  Tbl.row t [ "Removing COW (collapse)"; Tbl.us b.Aurora.Region.collapse; "91.7" ];
  Tbl.row t
    [ "Total";
      Tbl.us (b.Aurora.Region.stall + b.Aurora.Region.shadow + b.Aurora.Region.io + b.Aurora.Region.collapse);
      "208.1" ];
  print_table t

let table10 () =
  section "Table 10: MemSnap vs Aurora persistence cost";
  Metrics.reset ();
  let ms_reset, ms_io, ms_total =
    Sched.run (fun () ->
        Metrics.reset ();
        let _, k, _, _ = mk_msnap () in
        let md = Msnap.open_region k ~name:"bench" ~len:(65536 * page) () in
        let rng = Rng.create 6 in
        for _ = 1 to 20 do
          dirty_random_pages k md rng ~region_pages:65536 ~pages:16;
          ignore (Msnap.persist k ~region:md ())
        done;
        ( Metrics.mean_ns Probe.msnap_persist_reset,
          Metrics.mean_ns Probe.msnap_persist_wait,
          Metrics.mean_ns Probe.msnap_persist_total ))
  in
  let b = aurora_breakdown () in
  let t =
    Tbl.create ~title:"64 KiB persist, per phase (us)"
      ~headers:[ "Operation"; "MemSnap"; "Aurora" ]
  in
  let us_f v = Tbl.us (int_of_float v) in
  Tbl.row t [ "Waiting for calls"; "N/A"; Tbl.us b.Aurora.Region.stall ];
  Tbl.row t [ "Applying COW"; us_f ms_reset; Tbl.us b.Aurora.Region.shadow ];
  Tbl.row t [ "Flush IO"; us_f ms_io; Tbl.us b.Aurora.Region.io ];
  Tbl.row t [ "Removing COW"; "N/A"; Tbl.us b.Aurora.Region.collapse ];
  Tbl.row t
    [ "Total"; us_f ms_total;
      Tbl.us (b.Aurora.Region.stall + b.Aurora.Region.shadow + b.Aurora.Region.io + b.Aurora.Region.collapse) ];
  Tbl.note t "paper: memsnap 5.1 / 46.3 / 51.4; aurora 26.7 / 79.8 / 27.9 / 91.7 / 208.1";
  print_table t

(* --- Figure 3 --- *)

let fig3 () =
  section "Figure 3: MemSnap vs Aurora checkpointing latency";
  let t =
    Tbl.create ~title:"synchronous persist latency (us), random dirty sets"
      ~headers:[ "Dirty set"; "memsnap"; "aurora region"; "aurora app" ]
  in
  let region_pages = 8192 (* 32 MiB populated *) in
  let memsnap_t dirty_pages =
    Sched.run (fun () ->
        let _, k, _, _ = mk_msnap () in
        let md = Msnap.open_region k ~name:"bench" ~len:(region_pages * page) () in
        (* populate *)
        for i = 0 to region_pages - 1 do
          Msnap.write k md ~off:(i * page) (Bytes.make 16 'p')
        done;
        ignore (Msnap.persist k ~region:md ());
        let rng = Rng.create 7 in
        time_mean ~iters:5 (fun () ->
            dirty_random_pages k md rng ~region_pages ~pages:dirty_pages;
            ignore (Msnap.persist k ~region:md ())))
  in
  let aurora_t ~app dirty_pages =
    Sched.run (fun () ->
        let _, k, _ = mk_aurora () in
        Aurora.Kernel.register_thread k;
        let r =
          Aurora.Region.create k ~name:"bench" ~va:0x5000_0000_0000
            ~len:(region_pages * page)
        in
        for i = 0 to region_pages - 1 do
          Aurora.Region.write r ~off:(i * page) (Bytes.make 16 'p')
        done;
        Aurora.Region.checkpoint r;
        let rng = Rng.create 8 in
        time_mean ~iters:5 (fun () ->
            let chosen = Hashtbl.create dirty_pages in
            while Hashtbl.length chosen < dirty_pages do
              Hashtbl.replace chosen (Rng.int rng region_pages) ()
            done;
            Hashtbl.iter
              (fun p () -> Aurora.Region.write r ~off:(p * page) (Bytes.make 64 'd'))
              chosen;
            if app then Aurora.checkpoint_app k else Aurora.Region.checkpoint r))
  in
  let rows =
    List.map
      (fun kib ->
        let pages = Size.kib kib / page in
        let ms = cell (fun () -> memsnap_t pages) in
        let au_region = cell (fun () -> aurora_t ~app:false pages) in
        let au_app = cell (fun () -> aurora_t ~app:true pages) in
        (kib, [ ms; au_region; au_app ]))
      [ 4; 16; 64; 256; 1024 ]
  in
  List.iter
    (fun (kib, cells) ->
      Tbl.row t
        (Size.pp (Size.kib kib) :: List.map (fun c -> Tbl.us_short (force c)) cells))
    rows;
  Tbl.note t "paper: memsnap ~7x faster than region ckpt (small IOs), up to 60x vs app ckpt";
  print_table t
