(* RocksDB case study (§7.2): Table 1 (CPU breakdown of the baseline) and
   Table 9 (MixGraph throughput/latency across memsnap / WAL / Aurora). *)

open Env
module Rocks = Msnap_rocks.Rocks
module Mixgraph = Msnap_workloads.Workloads.Mixgraph

let nkeys = 8_192
let prefill = 4_096
let value_size = 100
let threads = 12

(* The whole keyspace is bounded, so the "%020d" keys are a precomputed
   table (shared across cells/domains: immutable strings) and the mix
   loop never formats. *)
let key_table = Keyfmt.table nkeys (fun b i -> Keyfmt.dec b ~width:20 i)
let key_of i = Array.unsafe_get key_table i

(* Thread names, hoisted out of the spawn loop. *)
let thread_names =
  Keyfmt.table threads (fun b t ->
      Keyfmt.lit b "mix";
      Keyfmt.dec b ~width:0 t)

let mk_db backend =
  let config =
    { Rocks.memtable_flush_bytes = Size.mib 1; region_pages = 3 * nkeys }
  in
  match backend with
  | `Baseline ->
    let _, fs = mk_fs Fs.Ffs in
    Rocks.open_db ~config (Rocks.Baseline fs) ~name:"mix"
  | `Memsnap ->
    let _, k, _, _ = mk_msnap () in
    Rocks.open_db ~config (Rocks.Memsnap k) ~name:"mix"
  | `Aurora ->
    let _, k, _ = mk_aurora () in
    Aurora.Kernel.register_thread k;
    Rocks.open_db ~config (Rocks.Aurora k) ~name:"mix"

let prefill_db db =
  let rng = Rng.create 17 in
  let i = ref 0 in
  while !i < prefill do
    let n = min 64 (prefill - !i) in
    Rocks.put_batch db
      (List.init n (fun j ->
           (key_of (!i + j), Msnap_util.Rng.string rng value_size)));
    i := !i + n
  done

type result = {
  kops : float;
  avg_ns : int;
  p99_ns : int;
  wall_s : float;
  cpu : (string * float) list;
  calls : (string * float * int) list;
}

let run_mixgraph backend ~ops =
  Sched.run (fun () ->
      Metrics.reset ();
      let db = mk_db backend in
      prefill_db db;
      let wl = Mixgraph.create ~value_size ~nkeys () in
      let hist = Histogram.create () in
      let t0 = Sched.now () in
      let per_thread = ops / threads in
      let ts =
        List.init threads (fun t ->
            Sched.spawn ~name:(Array.unsafe_get thread_names t) (fun () ->
                let rng = Rng.create (1000 + t) in
                for _ = 1 to per_thread do
                  let s = Sched.now () in
                  (match Mixgraph.next wl rng with
                  | Mixgraph.Get k -> ignore (Rocks.get db (key_of k))
                  | Mixgraph.Put (k, v) -> Rocks.put db ~key:(key_of k) ~value:v
                  | Mixgraph.Seek (k, n) -> ignore (Rocks.seek db (key_of k) ~n));
                  Histogram.add hist (Sched.now () - s)
                done))
      in
      List.iter Sched.join ts;
      let wall = Sched.now () - t0 in
      {
        kops = float_of_int ops /. 1e3 /. (float_of_int wall /. 1e9);
        avg_ns = int_of_float (Histogram.mean hist);
        p99_ns = Histogram.percentile hist 99.0;
        wall_s = float_of_int wall /. 1e9;
        cpu = cpu_percent (Sched.account_report ());
        calls =
          List.map metric_row
            [ Probe.db_memsnap; Probe.db_fsync; Probe.db_write;
              Probe.db_checkpoint ];
      })

let ops = 24_000

let table1 () =
  section "Table 1: baseline RocksDB CPU breakdown (MixGraph)";
  let r = run_mixgraph `Baseline ~ops in
  let t = Tbl.create ~title:"share of CPU time" ~headers:[ "Task"; "% time" ] in
  let show name label =
    match List.assoc_opt name r.cpu with
    | Some v -> Tbl.row t [ label; Tbl.pct v ]
    | None -> ()
  in
  show "user" "Tx memory + other userspace";
  show "log" "Log (WAL append + serialization)";
  show "fsync" "fsync";
  show "write" "write syscalls";
  show "read" "read syscalls";
  show "page faults" "page faults";
  Tbl.note t "paper: only 18.3% of time is the in-memory transaction; ~40% of total is persistence";
  print_table t

let table9 () =
  section "Table 9: RocksDB MixGraph comparison";
  (* The three MixGraph runs are independent simulations: one cell each,
     forced in the serial order (memsnap, baseline, Aurora). *)
  let c_ms = cell (fun () -> run_mixgraph `Memsnap ~ops) in
  let c_base = cell (fun () -> run_mixgraph `Baseline ~ops) in
  let c_au = cell (fun () -> run_mixgraph `Aurora ~ops) in
  let ms = force c_ms in
  let base = force c_base in
  let au = force c_au in
  let t =
    Tbl.create ~title:(Printf.sprintf "%d ops, %d threads" ops threads)
      ~headers:[ "Configuration"; "Kops"; "Avg (us)"; "99th (us)" ]
  in
  let row label r =
    Tbl.row t
      [ label; Printf.sprintf "%.1f" r.kops; Tbl.us r.avg_ns; Tbl.us_short r.p99_ns ]
  in
  row "memsnap" ms;
  row "Baseline+WAL" base;
  row "Aurora" au;
  Tbl.note t "paper: memsnap 420.7 Kops / 138.9us avg; baseline 388.0 / 162.7; aurora 91.8 / 751.9";
  print_table t;
  let t2 =
    Tbl.create ~title:"persistence-related calls"
      ~headers:[ "System call"; "Latency (us)"; "Total count" ]
  in
  let call r name label =
    match List.find_opt (fun (n, _, _) -> n = name) r.calls with
    | Some (_, mean, count) when count > 0 ->
      Tbl.row t2 [ label; Tbl.us (int_of_float mean); Tbl.kcount count ]
    | _ -> ()
  in
  call ms "memsnap" "memsnap (msnap_persist)";
  call base "fsync" "fsync (baseline)";
  call base "write" "write (baseline)";
  call au "checkpoint" "checkpoint (Aurora)";
  Tbl.note t2 "paper: memsnap 51.4us/208K, fsync 63.1us/190K, write 19.4us/191K, checkpoint 204us/89K";
  print_table t2
