(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation. Run everything with `dune exec bench/main.exe`, one
   experiment with `-e table6` etc., and fan independent experiments out
   over a pool of OCaml 5 domains with `-j N`. Each experiment is a
   self-contained simulation (own Sched.run, seeded RNGs, domain-local
   metrics), so parallel runs produce byte-identical stdout to serial
   ones; per-experiment host wall-clock is recorded in BENCH_sim.json so
   simulator-throughput regressions show up in review.

   `--trace PATH` records a Chrome trace_event timeline of every
   experiment (see Msnap_sim.Trace). Tracing is host-side observability:
   it cannot perturb any simulated value, so traced and untraced runs
   print identical tables. The per-experiment summary and event counts go
   to stderr / BENCH_sim.json, never stdout. *)

module Trace = Msnap_sim.Trace

let experiments =
  [
    ("table1", ("RocksDB baseline CPU breakdown", Exp_rocks.table1));
    ("table2", ("Aurora region checkpoint breakdown", Exp_micro.table2));
    ("fig1", ("page-protection strategies", Exp_micro.fig1));
    ("table5", ("msnap_persist breakdown", Exp_micro.table5));
    ("table6", ("persistence API latency", Exp_micro.table6));
    ("fig3", ("MemSnap vs Aurora checkpoint latency", Exp_micro.fig3));
    ("table7", ("SQLite dbbench syscalls", Exp_sqlite.table7));
    ("table8", ("SQLite dbbench CPU + wall clock", Exp_sqlite.table8));
    ("fig4", ("SQLite txn latency vs size", Exp_sqlite.fig4));
    ("fig5", ("SQLite TATP throughput vs DB size", Exp_sqlite.fig5));
    ("table9", ("RocksDB MixGraph comparison", Exp_rocks.table9));
    ("table10", ("MemSnap vs Aurora persist cost", Exp_micro.table10));
    ("fig6", ("PostgreSQL TPC-C variants", Exp_pg.fig6));
    ("bechamel", ("wall-clock micro-suite", Bechamel_suite.run));
  ]

(* Experiments that measure host wall-clock must run alone: concurrent
   domains both skew their numbers and break Bechamel's GC-stabilization
   loop ("Unable to stabilize the number of live words"). The -j pool
   runs them serially after it drains. *)
let serial_only name = name = "bechamel"

let select names =
  match names with
  | [] -> experiments
  | names ->
    List.map
      (fun name ->
        match List.assoc_opt name experiments with
        | Some exp -> (name, exp)
        | None ->
          Printf.eprintf "unknown experiment %s; available: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
      names

type timing = {
  t_name : string;
  t_wall_s : float;
  t_minor_words : float; (* minor-heap allocation during the experiment *)
  t_major_words : float; (* words allocated directly on the major heap *)
  t_pool_hits : int; (* buffer-pool hits during the experiment *)
  t_pool_misses : int; (* buffer-pool misses (fresh major-heap buffers) *)
  t_sched_events : int; (* scheduler run-queue events executed *)
  t_ctx_switches : int; (* events that handed the CPU to another thread *)
  t_trace_events : int; (* events exported; 0 when tracing is off *)
  t_trace_dropped : int; (* events past the buffer cap, counted not kept *)
  t_trace_s : float; (* host seconds spent dumping + exporting the trace *)
  t_cell_wall_s : float list; (* per-cell host wall, in force order *)
}

let pool_hit_rate t =
  let total = t.t_pool_hits + t.t_pool_misses in
  if total = 0 then 0.0 else float_of_int t.t_pool_hits /. float_of_int total

(* One trace file per experiment: with a single -e the file is exactly
   PATH; otherwise the experiment name is spliced in before ".json". *)
let trace_path_for ~trace ~multi name =
  match trace with
  | None -> None
  | Some path ->
    if not multi then Some path
    else (
      match Filename.chop_suffix_opt ~suffix:".json" path with
      | Some base -> Some (Printf.sprintf "%s.%s.json" base name)
      | None -> Some (Printf.sprintf "%s.%s" path name))

(* Time [f] inside a host accounting frame (Env.frame_begin/end). The
   frame's exclusive deltas plus the deltas of the cells this
   experiment forced — wherever those cells actually ran — attribute
   allocation and pool traffic to this experiment even when its domain
   helped run other tasks while awaiting, or its cells ran on workers.
   Wall clock stays the raw elapsed span: the experiment's critical
   path. Trace collection and export happen right here, on whichever
   domain ran the experiment (cells merge into this domain's buffer at
   force time). *)
let timed ?trace_path name f =
  if trace_path <> None then Trace.enable ();
  Env.frame_begin ();
  let t0 = Unix.gettimeofday () in
  f ();
  let wall = Unix.gettimeofday () -. t0 in
  let host, cells = Env.frame_end () in
  let trace_events, trace_dropped, trace_s =
    match trace_path with
    | None -> (0, 0, 0.0)
    | Some path ->
      let e0 = Unix.gettimeofday () in
      Trace.disable ();
      let d = Trace.dump () in
      let oc = open_out path in
      Trace.export_json oc d;
      close_out oc;
      let n = d.Trace.d_count in
      (* stderr only: stdout must stay byte-identical with tracing off. *)
      Printf.eprintf "[trace] %s: %d events (%d dropped) -> %s\n%s%!" name n
        d.Trace.d_dropped path
        (Trace.render_summary d);
      if d.Trace.d_dropped > 0 then
        Printf.eprintf
          "[trace] WARNING: %s dropped %d events past the buffer cap — the \
           exported timeline is truncated (per-probe summary totals remain \
           exact)\n%!"
          name d.Trace.d_dropped;
      (n, d.Trace.d_dropped, Unix.gettimeofday () -. e0)
  in
  let sumf sel = List.fold_left (fun a c -> a +. sel c) 0.0 cells in
  let sumi sel = List.fold_left (fun a c -> a + sel c) 0 cells in
  {
    t_name = name;
    t_wall_s = wall;
    t_minor_words = host.Env.h_minor +. sumf (fun c -> c.Env.h_minor);
    t_major_words = host.Env.h_major +. sumf (fun c -> c.Env.h_major);
    t_pool_hits = host.Env.h_hits + sumi (fun c -> c.Env.h_hits);
    t_pool_misses = host.Env.h_misses + sumi (fun c -> c.Env.h_misses);
    t_sched_events = host.Env.h_sched_ev + sumi (fun c -> c.Env.h_sched_ev);
    t_ctx_switches = host.Env.h_ctx_sw + sumi (fun c -> c.Env.h_ctx_sw);
    t_trace_events = trace_events;
    t_trace_dropped = trace_dropped;
    t_trace_s = trace_s;
    t_cell_wall_s = List.map (fun c -> c.Env.h_wall_s) cells;
  }

(* Run [selected] serially on this domain, printing as we go. *)
let run_serial ~trace selected =
  let multi = List.length selected > 1 in
  List.map
    (fun (name, (_, f)) ->
      timed ?trace_path:(trace_path_for ~trace ~multi name) name f)
    selected

(* Run [selected] on the shared task pool with a total budget of [jobs]
   domains: jobs-1 workers plus this one, which helps while awaiting.
   Experiments are Heavy tasks; the cells they submit are Light tasks
   on the same pool, so -j N bounds all simulation work at once. Output
   is captured per experiment and printed in experiment order once
   everything finished, so stdout is byte-identical to a serial run. *)
let run_parallel ~trace jobs selected =
  let module Taskpool = Msnap_util.Taskpool in
  let arr = Array.of_list selected in
  let n = Array.length arr in
  let multi = n > 1 in
  let outputs = Array.make n "" in
  let times =
    Array.make n
      { t_name = ""; t_wall_s = 0.0; t_minor_words = 0.0; t_major_words = 0.0;
        t_pool_hits = 0; t_pool_misses = 0;
        t_sched_events = 0; t_ctx_switches = 0;
        t_trace_events = 0; t_trace_dropped = 0; t_trace_s = 0.0;
        t_cell_wall_s = [] }
  in
  let run_one i =
    let name, (_, f) = arr.(i) in
    let buf = Buffer.create 4096 in
    times.(i) <-
      timed ?trace_path:(trace_path_for ~trace ~multi name) name (fun () ->
          Env.captured buf f);
    outputs.(i) <- Buffer.contents buf
  in
  Taskpool.on_worker_init Env.warm;
  Taskpool.ensure_workers (jobs - 1);
  let tasks =
    Array.mapi
      (fun i (name, _) ->
        if serial_only name then None
        else Some (Taskpool.submit ~cls:Taskpool.Heavy (fun () -> run_one i)))
      arr
  in
  Array.iter (function Some t -> Taskpool.await t | None -> ()) tasks;
  (* Wall-clock-sensitive experiments run alone, after the pool drains
     and its domains are joined. *)
  Taskpool.shutdown ();
  Array.iteri (fun i (name, _) -> if serial_only name then run_one i) arr;
  Array.iter print_string outputs;
  Array.to_list times

let write_timings ~path ~jobs ~total timings =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"schema\": \"memsnap-bench-sim/7\",\n";
  p "  \"jobs\": %d,\n" jobs;
  (* Cells share the experiment pool, so the budgets coincide; the field
     is separate so readers need not infer it from "jobs". *)
  p "  \"cell_jobs\": %d,\n" jobs;
  p "  \"total_wall_s\": %.3f,\n" total;
  p "  \"experiments\": [\n";
  List.iteri
    (fun i t ->
      p
        "    { \"name\": %S, \"wall_s\": %.3f, \"minor_words\": %.0f, \
         \"major_words\": %.0f, \"pool_hits\": %d, \"pool_misses\": %d, \
         \"pool_hit_rate\": %.3f, \"sched_events\": %d, \
         \"ctx_switches\": %d, \"trace_events\": %d, \
         \"trace_dropped\": %d, \"trace_overhead_s\": %.3f, \
         \"cells\": %d, \"cell_wall_s\": [%s] }%s\n"
        t.t_name t.t_wall_s t.t_minor_words t.t_major_words t.t_pool_hits
        t.t_pool_misses (pool_hit_rate t) t.t_sched_events t.t_ctx_switches
        t.t_trace_events t.t_trace_dropped t.t_trace_s
        (List.length t.t_cell_wall_s)
        (String.concat ", "
           (List.map (fun w -> Printf.sprintf "%.3f" w) t.t_cell_wall_s))
        (if i = List.length timings - 1 then "" else ","))
    timings;
  p "  ]\n}\n";
  close_out oc

let run names jobs timings_path trace partial =
  let selected = select names in
  (* A subset run would silently replace full-suite results with a file
     missing most experiments; require an explicit opt-in. *)
  if
    List.length selected < List.length experiments
    && Sys.file_exists timings_path
    && not partial
  then begin
    Printf.eprintf
      "[bench] refusing to overwrite %s: only %d of %d experiments selected. \
       Pass --partial to allow, or --timings PATH to write elsewhere.\n%!"
      timings_path (List.length selected)
      (List.length experiments);
    exit 2
  end;
  if names = [] then
    print_endline "MemSnap reproduction: regenerating every table and figure";
  (* Park the machine-building buffer classes before any timed window
     (workers do the same via Taskpool.on_worker_init). *)
  Env.warm ();
  let t0 = Unix.gettimeofday () in
  let timings =
    if jobs <= 1 then run_serial ~trace selected
    else run_parallel ~trace jobs selected
  in
  let total = Unix.gettimeofday () -. t0 in
  write_timings ~path:timings_path ~jobs:(max 1 jobs) ~total timings;
  print_endline "\ndone.";
  Printf.eprintf "[bench] %.1fs wall (%d job%s); timings -> %s\n%!" total
    (max 1 jobs)
    (if jobs > 1 then "s" else "")
    timings_path

open Cmdliner

let names =
  Arg.(value & opt_all string [] & info [ "e"; "experiment" ]
         ~doc:"Experiment id (table1..table10, fig1..fig6, bechamel). \
               Repeatable; default runs all.")

let jobs =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ]
         ~doc:"Run experiments on a pool of $(docv) OCaml domains. Output \
               order and every simulated value are identical to -j 1; only \
               host wall-clock changes.")

let timings_path =
  Arg.(value & opt string "BENCH_sim.json" & info [ "timings" ]
         ~doc:"Where to write per-experiment wall-clock timings (JSON).")

let partial =
  Arg.(value & flag & info [ "partial" ]
         ~doc:"Allow overwriting the timings file when only a subset of \
               experiments is selected (the file then covers just that \
               subset).")

let trace =
  Arg.(value & opt (some string) None & info [ "trace" ]
         ~doc:"Record a Chrome trace_event timeline to $(docv) (load in \
               chrome://tracing or ui.perfetto.dev). With several \
               experiments selected, one file per experiment with the \
               name spliced in. Host-side only: simulated values are \
               byte-identical with tracing on or off." ~docv:"PATH")

let cmd =
  Cmd.v
    (Cmd.info "memsnap-bench"
       ~doc:"Reproduce the MemSnap paper's evaluation tables and figures")
    Term.(const run $ names $ jobs $ timings_path $ trace $ partial)

let () = exit (Cmd.eval cmd)
