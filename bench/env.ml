(* Shared machine builders and reporting helpers for the experiment
   harness. Every experiment runs on a fresh simulated machine: two
   striped NVMe devices (the paper's testbed layout), physical memory, one
   or more address spaces, and whichever persistence stack it measures. *)

(* --- end-of-run disposal ---

   Machine builders register teardown hooks that return pooled buffers
   (page frames, file-system cache blocks, disk medium chunks) to
   [Msnap_util.Pool] when the simulation finishes, so the next experiment
   on this domain reuses them instead of allocating fresh. Host-only:
   disposal runs after the simulated clock has stopped. *)

let disposals_key : (unit -> unit) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let on_dispose f =
  let slot = Domain.DLS.get disposals_key in
  slot := f :: !slot

module Sched = struct
  include Msnap_sim.Sched

  (* Run a simulation, then tear down what the machine builders
     registered. On an abnormal exit (e.g. a simulated power failure
     propagating out) the hooks are discarded without running: buffer
     ownership may be mid-transfer, and leaking to the GC is always
     safe. *)
  let run f =
    let slot = Domain.DLS.get disposals_key in
    match Msnap_sim.Sched.run f with
    | v ->
      List.iter (fun d -> d ()) !slot;
      slot := [];
      v
    | exception e ->
      slot := [];
      raise e
end

module Sync = Msnap_sim.Sync
module Costs = Msnap_sim.Costs
module Metrics = Msnap_sim.Metrics
module Probe = Msnap_sim.Probe
module Rng = Msnap_util.Rng
module Size = Msnap_util.Size
module Tbl = Msnap_util.Tbl
module Histogram = Msnap_util.Histogram
module Disk = Msnap_blockdev.Disk
module Stripe = Msnap_blockdev.Stripe
module Device = Msnap_blockdev.Device
module Store = Msnap_objstore.Store
module Phys = Msnap_vm.Phys
module Aspace = Msnap_vm.Aspace
module Addr = Msnap_vm.Addr
module Fs = Msnap_fs.Fs
module Msnap = Msnap_core.Msnap
module Aurora = Msnap_aurora.Aurora

let dev_mib = 512

let mk_dev ?(mib = dev_mib) () =
  let dev =
    Device.of_stripe
      (Stripe.create [ Disk.create ~name:"nvme0" ~size:(Size.mib mib) ();
        Disk.create ~name:"nvme1" ~size:(Size.mib mib) () ])
  in
  on_dispose (fun () -> Device.dispose dev);
  dev

let mk_fs ?mib kind =
  let dev = mk_dev ?mib () in
  let fs = Fs.mkfs dev ~kind in
  on_dispose (fun () -> Fs.dispose fs);
  (dev, fs)

(* A machine with a MemSnap kernel: (device, kernel, aspace, phys). *)
let mk_msnap ?mib () =
  let dev = mk_dev ?mib () in
  let phys = Phys.create () in
  on_dispose (fun () -> Phys.dispose phys);
  let aspace = Aspace.create phys in
  Store.format dev;
  let store = Store.mount dev in
  let k = Msnap.init ~store in
  Msnap.attach k aspace;
  (dev, k, aspace, phys)

let mk_aurora ?mib ?other_mapped_pages () =
  let dev = mk_dev ?mib () in
  let phys = Phys.create () in
  on_dispose (fun () -> Phys.dispose phys);
  let aspace = Aspace.create phys in
  Store.format dev;
  let store = Store.mount dev in
  (dev, Aurora.Kernel.create ~aspace ~store ?other_mapped_pages (), aspace)

(* Dirty [pages] distinct random 4 KiB pages of a MemSnap region. *)
let dirty_random_pages k md rng ~region_pages ~pages =
  let chosen = Hashtbl.create pages in
  while Hashtbl.length chosen < pages do
    Hashtbl.replace chosen (Rng.int rng region_pages) ()
  done;
  Hashtbl.iter
    (fun p () -> Msnap.write k md ~off:(p * 4096) (Bytes.make 64 'd'))
    chosen

(* Mean of [iters] timed runs of [f]. *)
let time_mean ~iters f =
  let total = ref 0 in
  for _ = 1 to iters do
    let t0 = Sched.now () in
    f ();
    total := !total + (Sched.now () - t0)
  done;
  !total / iters

let sim_seconds () = float_of_int (Sched.now ()) /. 1e9

let throughput_kops ~ops =
  float_of_int ops /. 1e3 /. sim_seconds ()

(* Report CPU buckets as percentages of total charged CPU. *)
let cpu_percent report =
  let total = List.fold_left (fun a (_, v) -> a + v) 0 report in
  List.map
    (fun (name, v) ->
      (name, 100.0 *. float_of_int v /. float_of_int (max 1 total)))
    report

let metric_row p =
  (Probe.name p, Metrics.mean_ns p, Metrics.samples p)

(* --- output routing ---

   Experiments never print to stdout directly: everything goes through
   [emit], which either writes straight to stdout (serial runs) or into a
   per-domain capture buffer (parallel runs, see main.ml). The parallel
   runner prints the buffers in experiment order afterwards, so `-j N`
   produces byte-identical stdout to a serial run. *)

let out_key : Buffer.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let emit s =
  match !(Domain.DLS.get out_key) with
  | Some b -> Buffer.add_string b s
  | None ->
    print_string s;
    flush stdout

let printf fmt = Printf.ksprintf emit fmt

let print_table t = emit (Tbl.render t ^ "\n")

(* Run [f ()] with all [emit] output (on this domain) captured in [buf]. *)
let captured buf f =
  let slot = Domain.DLS.get out_key in
  let saved = !slot in
  slot := Some buf;
  Fun.protect ~finally:(fun () -> slot := saved) f

let section title = printf "\n=== %s ===\n" title
