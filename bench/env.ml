(* Shared machine builders and reporting helpers for the experiment
   harness. Every experiment runs on a fresh simulated machine: two
   striped NVMe devices (the paper's testbed layout), physical memory, one
   or more address spaces, and whichever persistence stack it measures. *)

(* --- end-of-run disposal ---

   Machine builders register teardown hooks that return pooled buffers
   (page frames, file-system cache blocks, disk medium chunks) to
   [Msnap_util.Pool] when the simulation finishes, so the next experiment
   on this domain reuses them instead of allocating fresh. Host-only:
   disposal runs after the simulated clock has stopped. *)

let disposals_key : (unit -> unit) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let on_dispose f =
  let slot = Domain.DLS.get disposals_key in
  slot := f :: !slot

module Sched = struct
  include Msnap_sim.Sched

  (* Run a simulation, then tear down what the machine builders
     registered. On an abnormal exit (e.g. a simulated power failure
     propagating out) the hooks are discarded without running: buffer
     ownership may be mid-transfer, and leaking to the GC is always
     safe. *)
  let run f =
    let slot = Domain.DLS.get disposals_key in
    match Msnap_sim.Sched.run f with
    | v ->
      List.iter (fun d -> d ()) !slot;
      slot := [];
      v
    | exception e ->
      slot := [];
      raise e
end

module Sync = Msnap_sim.Sync
module Costs = Msnap_sim.Costs
module Metrics = Msnap_sim.Metrics
module Probe = Msnap_sim.Probe
module Rng = Msnap_util.Rng
module Keyfmt = Msnap_util.Keyfmt
module Intern = Msnap_util.Intern
module Size = Msnap_util.Size
module Tbl = Msnap_util.Tbl
module Histogram = Msnap_util.Histogram
module Disk = Msnap_blockdev.Disk
module Stripe = Msnap_blockdev.Stripe
module Device = Msnap_blockdev.Device
module Store = Msnap_objstore.Store
module Phys = Msnap_vm.Phys
module Aspace = Msnap_vm.Aspace
module Addr = Msnap_vm.Addr
module Fs = Msnap_fs.Fs
module Msnap = Msnap_core.Msnap
module Aurora = Msnap_aurora.Aurora

let dev_mib = 512

let mk_dev ?(mib = dev_mib) () =
  let dev =
    Device.of_stripe
      (Stripe.create [ Disk.create ~name:"nvme0" ~size:(Size.mib mib) ();
        Disk.create ~name:"nvme1" ~size:(Size.mib mib) () ])
  in
  on_dispose (fun () -> Device.dispose dev);
  dev

let mk_fs ?mib kind =
  let dev = mk_dev ?mib () in
  let fs = Fs.mkfs dev ~kind in
  on_dispose (fun () -> Fs.dispose fs);
  (dev, fs)

(* A machine with a MemSnap kernel: (device, kernel, aspace, phys). *)
let mk_msnap ?mib () =
  let dev = mk_dev ?mib () in
  let phys = Phys.create () in
  on_dispose (fun () -> Phys.dispose phys);
  let aspace = Aspace.create phys in
  Store.format dev;
  let store = Store.mount dev in
  let k = Msnap.init ~store in
  Msnap.attach k aspace;
  (dev, k, aspace, phys)

let mk_aurora ?mib ?other_mapped_pages () =
  let dev = mk_dev ?mib () in
  let phys = Phys.create () in
  on_dispose (fun () -> Phys.dispose phys);
  let aspace = Aspace.create phys in
  Store.format dev;
  let store = Store.mount dev in
  (dev, Aurora.Kernel.create ~aspace ~store ?other_mapped_pages (), aspace)

(* Dirty [pages] distinct random 4 KiB pages of a MemSnap region. *)
let dirty_random_pages k md rng ~region_pages ~pages =
  let chosen = Hashtbl.create pages in
  while Hashtbl.length chosen < pages do
    Hashtbl.replace chosen (Rng.int rng region_pages) ()
  done;
  Hashtbl.iter
    (fun p () -> Msnap.write k md ~off:(p * 4096) (Bytes.make 64 'd'))
    chosen

(* Mean of [iters] timed runs of [f]. *)
let time_mean ~iters f =
  let total = ref 0 in
  for _ = 1 to iters do
    let t0 = Sched.now () in
    f ();
    total := !total + (Sched.now () - t0)
  done;
  !total / iters

let sim_seconds () = float_of_int (Sched.now ()) /. 1e9

let throughput_kops ~ops =
  float_of_int ops /. 1e3 /. sim_seconds ()

(* Report CPU buckets as percentages of total charged CPU. *)
let cpu_percent report =
  let total = List.fold_left (fun a (_, v) -> a + v) 0 report in
  List.map
    (fun (name, v) ->
      (name, 100.0 *. float_of_int v /. float_of_int (max 1 total)))
    report

let metric_row p =
  (Probe.name p, Metrics.mean_ns p, Metrics.samples p)

(* --- output routing ---

   Experiments never print to stdout directly: everything goes through
   [emit], which either writes straight to stdout (serial runs) or into a
   per-domain capture buffer (parallel runs, see main.ml). The parallel
   runner prints the buffers in experiment order afterwards, so `-j N`
   produces byte-identical stdout to a serial run. *)

let out_key : Buffer.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let emit s =
  match !(Domain.DLS.get out_key) with
  | Some b -> Buffer.add_string b s
  | None ->
    print_string s;
    flush stdout

let printf fmt = Printf.ksprintf emit fmt

let print_table t = emit (Tbl.render t ^ "\n")

(* Run [f ()] with all [emit] output (on this domain) captured in [buf]. *)
let captured buf f =
  let slot = Domain.DLS.get out_key in
  let saved = !slot in
  slot := Some buf;
  Fun.protect ~finally:(fun () -> slot := saved) f

let section title = printf "\n=== %s ===\n" title

(* --- host accounting frames ---

   Per-experiment wall/allocation/pool numbers in BENCH_sim.json must
   stay attributable to *that* experiment even though a domain awaiting
   its own cells helps run other tasks (its own cells, or another
   experiment's). A frame brackets a region of host work; closing it
   yields deltas exclusive of any frame nested inside it (a helped
   task opens its own frame), and records which cells were forced under
   it so the experiment can add exactly its own cells' costs back in —
   wherever those cells actually ran. *)

type hostm = {
  h_wall_s : float;
  h_minor : float;
  h_major : float;
  h_hits : int;
  h_misses : int;
  h_sched_ev : int; (* scheduler run-queue events executed *)
  h_ctx_sw : int; (* pops that handed the CPU to a different thread *)
}

type frame = {
  fr_t0 : float;
  fr_minor0 : float;
  fr_major0 : float;
  fr_hits0 : int;
  fr_misses0 : int;
  fr_ev0 : int;
  fr_ctx0 : int;
  (* raw totals of directly-nested frames, to subtract *)
  mutable fr_n_wall : float;
  mutable fr_n_minor : float;
  mutable fr_n_major : float;
  mutable fr_n_hits : int;
  mutable fr_n_misses : int;
  mutable fr_n_ev : int;
  mutable fr_n_ctx : int;
  mutable fr_cells : hostm list; (* forced under this frame, reversed *)
}

module Pool = Msnap_util.Pool

let frames_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let frame_begin () =
  (* [Gc.counters] (unlike [Gc.quick_stat]'s word counts, which are
     process-wide in OCaml 5) is domain-local, so frames measure only
     this domain's allocation no matter what other domains do
     concurrently. *)
  let minor, _, major = Gc.counters () in
  let p = Pool.totals () in
  let ev0, ctx0, _, _ = Sched.host_counters () in
  let fr =
    {
      fr_t0 = Unix.gettimeofday ();
      fr_minor0 = minor;
      fr_major0 = major;
      fr_hits0 = p.Pool.t_hits;
      fr_misses0 = p.Pool.t_misses;
      fr_ev0 = ev0;
      fr_ctx0 = ctx0;
      fr_n_wall = 0.0;
      fr_n_minor = 0.0;
      fr_n_major = 0.0;
      fr_n_hits = 0;
      fr_n_misses = 0;
      fr_n_ev = 0;
      fr_n_ctx = 0;
      fr_cells = [];
    }
  in
  let slot = Domain.DLS.get frames_key in
  slot := fr :: !slot

(* Returns (exclusive host deltas, cells forced under the frame in
   force order). *)
let frame_end () =
  let slot = Domain.DLS.get frames_key in
  match !slot with
  | [] -> invalid_arg "Env.frame_end: no open frame"
  | fr :: rest ->
    slot := rest;
    let minor1, _, major1 = Gc.counters () in
    let p = Pool.totals () in
    let ev1, ctx1, _, _ = Sched.host_counters () in
    let wall = Unix.gettimeofday () -. fr.fr_t0 in
    let minor = minor1 -. fr.fr_minor0 in
    let major = major1 -. fr.fr_major0 in
    let hits = p.Pool.t_hits - fr.fr_hits0 in
    let misses = p.Pool.t_misses - fr.fr_misses0 in
    let ev = ev1 - fr.fr_ev0 in
    let ctx = ctx1 - fr.fr_ctx0 in
    (match rest with
    | parent :: _ ->
      parent.fr_n_wall <- parent.fr_n_wall +. wall;
      parent.fr_n_minor <- parent.fr_n_minor +. minor;
      parent.fr_n_major <- parent.fr_n_major +. major;
      parent.fr_n_hits <- parent.fr_n_hits + hits;
      parent.fr_n_misses <- parent.fr_n_misses + misses;
      parent.fr_n_ev <- parent.fr_n_ev + ev;
      parent.fr_n_ctx <- parent.fr_n_ctx + ctx
    | [] -> ());
    ( {
        h_wall_s = wall -. fr.fr_n_wall;
        h_minor = minor -. fr.fr_n_minor;
        h_major = major -. fr.fr_n_major;
        h_hits = hits - fr.fr_n_hits;
        h_misses = misses - fr.fr_n_misses;
        h_sched_ev = ev - fr.fr_n_ev;
        h_ctx_sw = ctx - fr.fr_n_ctx;
      },
      List.rev fr.fr_cells )

(* --- simulation cells ---

   [cell f] declares one independent measurement — [f] must be a
   self-contained deterministic simulation (fixed seeds, own machines,
   no state shared with other cells or the enclosing experiment) — and
   queues it on the task pool. [force] waits for it, replays its [emit]
   output here, folds its metrics/trace into this domain (in force
   order — see Msnap_sim.Cell), books its host costs to the enclosing
   frame, and returns its value. With zero pool workers the body runs
   inline at [force]: `-j 1` is exactly the old serial execution. *)

module Cell = Msnap_sim.Cell
module Taskpool = Msnap_util.Taskpool

type 'a cell_outcome = { co_v : 'a; co_out : string; co_host : hostm }
type 'a pending = 'a cell_outcome Cell.t

let cell f : _ pending =
  Cell.submit (fun () ->
      frame_begin ();
      let buf = Buffer.create 256 in
      let slot = Domain.DLS.get disposals_key in
      let saved = !slot in
      slot := [];
      match captured buf f with
      | v ->
        slot := saved;
        let host, _ = frame_end () in
        { co_v = v; co_out = Buffer.contents buf; co_host = host }
      | exception e ->
        slot := saved;
        ignore (frame_end ());
        raise e)

let force (p : _ pending) =
  let o = Cell.force p in
  emit o.co_out;
  (match !(Domain.DLS.get frames_key) with
  | fr :: _ -> fr.fr_cells <- o.co_host :: fr.fr_cells
  | [] -> ());
  o.co_v

(* --- buffer-pool pre-warming ---

   Single-shot experiments (table1 runs one simulation) otherwise pay a
   miss for every buffer of their working set: nothing was ever
   recycled on a cold domain. Build-and-dispose a small file-system
   machine and a small MemSnap machine once per domain, outside any
   accounting frame, so the first real experiment finds the machine-
   building size classes (fs cache blocks, disk medium chunks, page
   frames) already parked. Host-only: pool warmth affects hit/miss
   counters, never a simulated value. *)

let warm () =
  (* The deepest single-run consumer of the 4 KiB class is table2's
     Aurora breakdown: a 4096-page region plus its CoW shadows and
     object-store staging, all live at once before anything is
     recycled. Park that many frames directly — building (and
     simulating) a machine that size just to throw it away would dwarf
     the rest of warm(). Alloc-then-recycle of distinct buffers, so
     the class really retains [page_frames] of them. *)
  let page_frames = 8 * 1024 in
  let bufs = Array.init page_frames (fun _ -> Pool.alloc Addr.page_size) in
  Array.iter Pool.recycle bufs;
  ignore
    (Sched.run (fun () ->
         let _, fs = mk_fs Fs.Ffs in
         let f = Fs.open_file fs "warm" in
         let bs = Fs.fs_block_size fs in
         let block = Bytes.make bs 'w' in
         for i = 0 to 127 do
           Fs.write fs f ~off:(i * bs) block
         done;
         Fs.fsync fs f));
  ignore
    (Sched.run (fun () ->
         let _, k, _, _ = mk_msnap () in
         let md = Msnap.open_region k ~name:"warm" ~len:(Size.mib 1) () in
         let b = Bytes.make 64 'w' in
         for i = 0 to 255 do
           Msnap.write k md ~off:(i * 4096) b
         done;
         ignore (Msnap.persist k ~region:md ())))
